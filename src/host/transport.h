#pragma once
// Transport framework: flow descriptors, per-flow sender/receiver state
// machines, and the factory the experiment harness uses to instantiate a
// reliability scheme (GBN / IRN / MP-RDMA / RACK-TLP / Timeout / DCP).
//
// Senders are *pulled* by the host NIC scheduler (see rnic_scheduler.h),
// mirroring how a real RNIC's QP scheduler arbitrates among active QPs:
// the NIC asks each active QP whether it has an eligible packet (window
// open, pacing timer expired) and transmits one packet per grant.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "cc/cc.h"
#include "cc/dcqcn.h"
#include "net/packet.h"
#include "sim/logger.h"
#include "sim/simulator.h"

namespace dcp {

class Host;

struct FlowSpec {
  FlowId id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint64_t bytes = 0;
  Time start_time = 0;
  RdmaOp op = RdmaOp::kWrite;
  /// Message granularity: the flow is posted as ceil(bytes / msg_bytes)
  /// WQEs.  0 means one message for the whole flow.
  std::uint64_t msg_bytes = 0;
  std::uint16_t sport = 0;  // ECMP entropy, assigned by the network
  int group = -1;           // workload tag (incast victim, collective group)
  bool background = true;
};

struct TransportConfig {
  std::uint32_t mtu_payload = 1000;
  CcConfig cc;
  // Retransmission timers.
  Time rto_high = microseconds(320);
  Time rto_low = microseconds(100);
  std::uint32_t rto_low_threshold_pkts = 3;  // few outstanding -> RTOlow (IRN)
  // Delayed-ACK style coalescing for cumulative ACK schemes; 0 = per packet.
  std::uint32_t ack_per_packets = 1;
  // DCP specifics.
  Time dcp_msg_timeout = milliseconds(1);    // coarse-grained fallback (§4.5)
  std::uint32_t retrans_batch = 16;          // RetransQ entries per PCIe fetch
  Time pcie_rtt = microseconds(1);           // host memory round trip
  std::uint32_t outstanding_msgs = 8;        // NCCL-style per-QP cap
  // §4.5 orthogonality: swap the bitmap-free counters for a traditional
  // per-packet bitmap at the DCP receiver (same protocol, more memory).
  bool dcp_bitmap_receiver = false;
  std::uint32_t path_count = 8;              // MP-RDMA virtual paths
  std::uint32_t mp_ooo_window_pkts = 64;     // MP-RDMA receiver OOO tolerance
  // TCP software-stack proxy (Fig 8): host processing rate + latency.
  Bandwidth sw_stack_rate = Bandwidth::gbps(30);
  Time sw_stack_delay = microseconds(8);
  // FEC transport (transports/fec.h): (k, m) parity-group geometry, the
  // fire-and-forget stream window (0 = fall back to the CC window) and the
  // receiver's quiet-period NACK delay (0 = rto_low).
  std::uint32_t fec_k = 8;
  std::uint32_t fec_m = 2;
  std::uint64_t fec_stream_window_bytes = 0;
  Time fec_nack_delay = 0;
};

struct SenderStats {
  std::uint64_t data_packets_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t retransmitted_packets = 0;
  std::uint64_t spurious_retransmissions = 0;  // retransmitted but not lost
  std::uint64_t timeouts = 0;
  std::uint64_t ho_received = 0;
  std::uint64_t cnp_received = 0;
  std::uint64_t parity_packets_sent = 0;  // FEC redundancy overhead
};

/// Per-flow sender state machine.  Subclasses implement the protocol; the
/// base handles CC pacing and NIC integration.
class SenderTransport {
 public:
  SenderTransport(Simulator& sim, Host& host, FlowSpec spec, TransportConfig cfg);
  virtual ~SenderTransport() = default;
  SenderTransport(const SenderTransport&) = delete;
  SenderTransport& operator=(const SenderTransport&) = delete;

  /// Activates the flow (registers with the NIC scheduler).
  void start();

  /// Control-plane packet (ACK/SACK/NACK/CNP/bounced HO) arriving from the
  /// network.
  virtual void on_packet(Packet pkt) = 0;

  /// All data delivered and acknowledged.
  virtual bool done() const = 0;

  // --- NIC pull interface --------------------------------------------------
  bool has_packet(Time now);
  /// Earliest time a packet could become eligible purely by pacing;
  /// kTimeInfinity when blocked on protocol events (ACKs).
  Time next_eligible(Time now);
  /// Dequeues the next packet; only valid after has_packet() returned true.
  Packet next_packet();

  const FlowSpec& spec() const { return spec_; }
  const SenderStats& stats() const { return stats_; }
  CongestionControl& cc() { return *cc_; }
  Time start_time() const { return started_at_; }

  /// Checkpoint hook (sim/snapshot.h): base fields + CC + protocol state
  /// (checkpoint_extra).  Transports without snapshot support fail the
  /// stream, which callers surface as "scheme not snapshottable".
  void checkpoint(StateIO& io);

 protected:
  virtual bool protocol_has_packet() = 0;
  virtual Packet protocol_next_packet() = 0;
  virtual void on_start() {}
  /// Protocol-specific state; the default marks the scheme unsupported.
  virtual void checkpoint_extra(StateIO& io);

  /// Notifies the NIC that this sender may have become eligible (e.g. an
  /// ACK opened the window).
  void kick_nic();
  /// Marks the flow finished: deregisters from the NIC and fires the
  /// network completion hook.
  void finish();

  /// Total packets in this flow given the MTU.
  std::uint32_t total_packets() const { return total_pkts_; }
  std::uint32_t payload_of(std::uint32_t psn) const;
  /// Builds a data packet skeleton for the given PSN (addressing, sizes,
  /// ECN capability); protocol fills sequence specifics.
  Packet make_data_packet(std::uint32_t psn, std::uint32_t header_bytes);

  Simulator& sim_;
  Host& host_;
  FlowSpec spec_;
  TransportConfig cfg_;
  std::unique_ptr<CongestionControl> cc_;
  SenderStats stats_;
  Time started_at_ = -1;
  bool finished_ = false;

 private:
  Time next_allowed_ = 0;  // CC pacing gate
  std::uint32_t total_pkts_ = 0;
};

struct ReceiverStats {
  std::uint64_t data_packets = 0;
  std::uint64_t duplicate_packets = 0;
  std::uint64_t out_of_order_packets = 0;
  std::uint64_t bytes_received = 0;   // unique payload bytes
  std::uint64_t ho_received = 0;
  std::uint64_t acks_sent = 0;
  // FEC recovery split: chunks reconstructed by parity decode vs chunks
  // that needed a NACK'd retransmission to arrive.
  std::uint64_t decode_recovered_packets = 0;
  std::uint64_t nack_recovered_packets = 0;
};

/// Per-flow receiver state machine.
class ReceiverTransport {
 public:
  ReceiverTransport(Simulator& sim, Host& host, FlowSpec spec, TransportConfig cfg);
  virtual ~ReceiverTransport() = default;
  ReceiverTransport(const ReceiverTransport&) = delete;
  ReceiverTransport& operator=(const ReceiverTransport&) = delete;

  virtual void on_packet(Packet pkt) = 0;
  virtual bool complete() const = 0;

  const FlowSpec& spec() const { return spec_; }
  const ReceiverStats& stats() const { return stats_; }

  /// Checkpoint hook (sim/snapshot.h); see SenderTransport::checkpoint.
  void checkpoint(StateIO& io);

 protected:
  /// Protocol-specific state; the default marks the scheme unsupported.
  virtual void checkpoint_extra(StateIO& io);
  /// Sends a control packet (ACK/SACK/CNP/bounced HO) back toward the
  /// sender through the NIC's high-priority control queue.
  void send_control(Packet pkt);
  /// Builds a control packet skeleton addressed to the sender.
  Packet make_control(PktType type, std::uint32_t wire_bytes);
  /// Fires the network's receiver-completion hook (exactly once).
  void mark_complete();

  std::uint32_t total_packets() const { return total_pkts_; }

  Simulator& sim_;
  Host& host_;
  FlowSpec spec_;
  TransportConfig cfg_;
  ReceiverStats stats_;
  CnpGenerator cnp_;
  bool ecn_enabled_ = false;

 private:
  bool completion_fired_ = false;
  std::uint32_t total_pkts_ = 0;
};

/// Instantiates the two ends of a flow for a given scheme.
class TransportFactory {
 public:
  virtual ~TransportFactory() = default;
  virtual std::unique_ptr<SenderTransport> make_sender(Simulator& sim, Host& host,
                                                       const FlowSpec& spec,
                                                       const TransportConfig& cfg) = 0;
  virtual std::unique_ptr<ReceiverTransport> make_receiver(Simulator& sim, Host& host,
                                                           const FlowSpec& spec,
                                                           const TransportConfig& cfg) = 0;
  virtual std::string name() const = 0;
};

}  // namespace dcp
