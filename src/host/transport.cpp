#include "host/transport.h"

#include "check/observer.h"
#include "host/host.h"
#include "sim/snapshot.h"

namespace dcp {

SenderTransport::SenderTransport(Simulator& sim, Host& host, FlowSpec spec,
                                 TransportConfig cfg)
    : sim_(sim),
      host_(host),
      spec_(spec),
      cfg_(cfg),
      cc_(make_cc(sim, cfg.cc)) {
  const std::uint64_t mtu = cfg_.mtu_payload;
  total_pkts_ = static_cast<std::uint32_t>((spec_.bytes + mtu - 1) / mtu);
  if (total_pkts_ == 0) total_pkts_ = 1;  // zero-byte message still sends one packet
}

void SenderTransport::start() {
  started_at_ = sim_.now();
  on_start();
  host_.nic().register_sender(this);
}

bool SenderTransport::has_packet(Time now) {
  if (finished_) return false;
  if (now < next_allowed_) return false;
  return protocol_has_packet();
}

Time SenderTransport::next_eligible(Time now) {
  if (finished_ || !protocol_has_packet()) return kTimeInfinity;
  return next_allowed_ > now ? next_allowed_ : now;
}

Packet SenderTransport::next_packet() {
  Packet p = protocol_next_packet();
  p.sent_at = sim_.now();
  p.sport = spec_.sport;
  // CC pacing: space this QP's next injection at its current rate.  At line
  // rate the gap equals the serialization time, so pacing is a no-op and
  // the NIC round-robin governs.
  const Bandwidth r = cc_->rate();
  next_allowed_ = sim_.now() + r.serialize(p.wire_bytes);
  stats_.bytes_sent += p.payload_bytes;
  if (p.type == PktType::kData) {
    stats_.data_packets_sent++;
    if (p.is_retransmit) stats_.retransmitted_packets++;
  }
  return p;
}

void SenderTransport::kick_nic() { host_.nic().kick(); }

void SenderTransport::finish() {
  // Duplicate calls are idiomatic here — every ACK that confirms completion
  // may call finish() (a spurious retransmit earns a duplicate final ACK),
  // so the observer only sees the application-visible transition.  The
  // receiver-side hook is the strict one (see mark_complete).
  if (finished_) return;
  finished_ = true;
  if (CheckObserver* ob = sim_.check_observer()) ob->on_tx_complete(spec_.id);
  host_.nic().deregister_sender(this);
  if (host_.on_sender_done) host_.on_sender_done(spec_.id);
}

std::uint32_t SenderTransport::payload_of(std::uint32_t psn) const {
  if (spec_.bytes == 0) return 0;
  const std::uint64_t mtu = cfg_.mtu_payload;
  const std::uint64_t offset = static_cast<std::uint64_t>(psn) * mtu;
  const std::uint64_t left = spec_.bytes - offset;
  return static_cast<std::uint32_t>(left < mtu ? left : mtu);
}

Packet SenderTransport::make_data_packet(std::uint32_t psn, std::uint32_t header_bytes) {
  Packet p;
  p.src = spec_.src;
  p.dst = spec_.dst;
  p.flow = spec_.id;
  p.type = PktType::kData;
  p.op = spec_.op;
  p.psn = psn;
  p.payload_bytes = payload_of(psn);
  p.wire_bytes = p.payload_bytes + header_bytes;
  p.ecn_capable = true;
  p.last_of_flow = (psn + 1 == total_pkts_);
  p.queue_class = QueueClass::kData;
  return p;
}

ReceiverTransport::ReceiverTransport(Simulator& sim, Host& host, FlowSpec spec,
                                     TransportConfig cfg)
    : sim_(sim),
      host_(host),
      spec_(spec),
      cfg_(cfg),
      cnp_(cfg.cc.dcqcn.cnp_min_interval),
      ecn_enabled_(cfg.cc.type == CcConfig::Type::kDcqcn) {
  const std::uint64_t mtu = cfg_.mtu_payload;
  total_pkts_ = static_cast<std::uint32_t>((spec_.bytes + mtu - 1) / mtu);
  if (total_pkts_ == 0) total_pkts_ = 1;
}

void ReceiverTransport::send_control(Packet pkt) {
  stats_.acks_sent++;
  host_.nic().send_control(std::move(pkt));
  // Control sends can fire outside a packet dispatch (keepalive timers), so
  // this mutation point journals itself in sharded runs.
  if (host_.stat_journal_on()) host_.journal_receiver_stats(spec_.id);
}

Packet ReceiverTransport::make_control(PktType type, std::uint32_t wire_bytes) {
  Packet p;
  p.src = spec_.dst;  // we are the destination end
  p.dst = spec_.src;
  p.flow = spec_.id;
  p.type = type;
  p.wire_bytes = wire_bytes;
  p.queue_class = QueueClass::kData;
  return p;
}

void ReceiverTransport::mark_complete() {
  // Every call is reported, ahead of the guard (see SenderTransport::finish).
  if (CheckObserver* ob = sim_.check_observer()) ob->on_rx_complete(spec_.id);
  if (completion_fired_) return;
  completion_fired_ = true;
  if (host_.on_receiver_done) host_.on_receiver_done(spec_.id);
}

void SenderTransport::checkpoint(StateIO& io) {
  io.label(0x5E4D00u);
  io.pod(stats_);
  io.pod(started_at_);
  io.pod(finished_);
  io.pod(next_allowed_);
  cc_->checkpoint(io);
  checkpoint_extra(io);
}

void SenderTransport::checkpoint_extra(StateIO& io) {
  io.fail("snapshot unsupported for this sender transport");
}

void ReceiverTransport::checkpoint(StateIO& io) {
  io.label(0x4ECF00u);
  io.pod(stats_);
  io.pod(completion_fired_);
  cnp_.checkpoint(io);
  checkpoint_extra(io);
}

void ReceiverTransport::checkpoint_extra(StateIO& io) {
  io.fail("snapshot unsupported for this receiver transport");
}

}  // namespace dcp
