#include "host/rnic_scheduler.h"

#include "host/host.h"
#include "sim/snapshot.h"

#include <algorithm>

#include "check/observer.h"

namespace dcp {

void RnicScheduler::send_control(Packet pkt) {
  control_q_.push_back(PacketPtr::make(std::move(pkt)));
  kick();
}

void RnicScheduler::register_sender(SenderTransport* s) {
  senders_.push_back(s);
  kick();
}

void RnicScheduler::deregister_sender(SenderTransport* s) {
  auto it = std::find(senders_.begin(), senders_.end(), s);
  if (it == senders_.end()) return;
  const std::size_t idx = static_cast<std::size_t>(it - senders_.begin());
  senders_.erase(it);
  if (rr_ > idx) --rr_;
  if (!senders_.empty()) rr_ %= senders_.size();
}

void RnicScheduler::set_paused(bool paused) {
  paused_ = paused;
  if (!paused_) kick();
}

void RnicScheduler::transmit(PacketPtr pkt) {
  tx_packets_++;
  tx_bytes_ += pkt->wire_bytes;
  if (CheckObserver* ob = sim_.check_observer()) ob->on_host_send(*pkt);
  const Time ser = channel_.serialization(pkt->wire_bytes);
  channel_.deliver(std::move(pkt), ser);
  transmitting_ = true;
  tx_done_.arm(ser);
}

void RnicScheduler::kick() {
  if (transmitting_ || paused_) return;
  wakeup_.cancel();

  // Stage 1: control packets (strict priority).
  if (!control_q_.empty()) {
    PacketPtr pkt = std::move(control_q_.front());
    control_q_.pop_front();
    transmit(std::move(pkt));
    return;
  }

  // Stage 2: round-robin over active QPs with an eligible packet.
  const Time now = sim_.now();
  const std::size_t n = senders_.size();
  for (std::size_t i = 0; i < n; ++i) {
    SenderTransport* s = senders_[(rr_ + i) % n];
    if (s->has_packet(now)) {
      rr_ = (rr_ + i + 1) % n;
      // Injection point: the one Packet copy of the datapath, into a
      // pooled slot the rest of the path moves by handle.
      transmit(PacketPtr::make(s->next_packet()));
      return;
    }
  }

  // Nothing eligible now; wake up when the earliest pacing gate opens.
  Time earliest = kTimeInfinity;
  for (SenderTransport* s : senders_) {
    earliest = std::min(earliest, s->next_eligible(now));
  }
  if (earliest != kTimeInfinity && earliest > now) {
    wakeup_.arm_at(earliest);
  }
}


void RnicScheduler::checkpoint(StateIO& io, Host& host) {
  io.label(0x121Cu);
  channel_.checkpoint(io);
  // Control queue: flat packet records in FIFO order.
  std::uint64_t nq = control_q_.size();
  io.pod(nq);
  if (io.saving()) {
    for (auto& p : control_q_) {
      Packet flat(*p);
      io.pod(flat);
    }
  } else {
    if (!control_q_.empty()) {
      io.fail("restore target NIC has queued control packets");
      return;
    }
    for (std::uint64_t i = 0; i < nq && io.ok(); ++i) {
      Packet flat;
      io.pod(flat);
      control_q_.push_back(PacketPtr::make(flat));
    }
  }
  // Active QP list, as flow ids in round-robin order.
  std::uint64_t ns = senders_.size();
  io.pod(ns);
  if (io.saving()) {
    for (auto* s : senders_) {
      FlowId id = s->spec().id;
      io.pod(id);
    }
  } else {
    senders_.clear();
    for (std::uint64_t i = 0; i < ns && io.ok(); ++i) {
      FlowId id = 0;
      io.pod(id);
      SenderTransport* s = host.sender(id);
      if (s == nullptr) {
        io.fail("active sender missing from restore target");
        return;
      }
      senders_.push_back(s);
    }
  }
  io.pod(rr_);
  io.pod(transmitting_);
  io.pod(paused_);
  io.pod(tx_packets_);
  io.pod(tx_bytes_);
  io.timer(tx_done_);
  io.timer(wakeup_);
}

}  // namespace dcp
