#pragma once
// The host-side RNIC transmit scheduler.
//
// Models the QP arbitration of an RNIC's Tx pipeline: a strict-priority
// control stage (ACKs, CNPs, bounced header-only packets) over a
// round-robin data stage that pulls one packet at a time from active QPs
// whose window and pacing allow it.  The wire runs at NIC line rate; a
// QP's own CC rate gates its eligibility, not the wire.

#include <cstdint>
#include <deque>
#include <vector>

#include "host/transport.h"
#include "net/channel.h"
#include "sim/simulator.h"

namespace dcp {

class Host;
class StateIO;

class RnicScheduler {
 public:
  RnicScheduler(Simulator& sim, Bandwidth bw, Time propagation)
      : sim_(sim), channel_(sim, bw, propagation) {}

  Channel& channel() { return channel_; }
  Bandwidth line_rate() const { return channel_.bandwidth(); }

  /// Queues a control packet (strict priority over data).  Pools the
  /// packet immediately; it rides the pooled path from here to the peer.
  void send_control(Packet pkt);

  void register_sender(SenderTransport* s);
  void deregister_sender(SenderTransport* s);

  /// Re-evaluates eligibility; called whenever window/pacing state changes.
  void kick();

  /// PFC PAUSE/RESUME from the attached switch.
  void set_paused(bool paused);

  std::uint64_t tx_packets() const { return tx_packets_; }
  std::uint64_t tx_bytes() const { return tx_bytes_; }
  std::size_t active_senders() const { return senders_.size(); }

  /// Checkpoint hook (sim/snapshot.h).  The active-QP list is saved as
  /// flow ids and re-resolved through `host` on load (transport pointers
  /// are rebuilt before the NIC state is overlaid); control packets ride
  /// flat records; both timers keep their exact heap keys.
  void checkpoint(StateIO& io, Host& host);

 private:
  void transmit(PacketPtr pkt);

  Simulator& sim_;
  Channel channel_;
  std::deque<PacketPtr> control_q_;
  std::vector<SenderTransport*> senders_;
  std::size_t rr_ = 0;
  bool transmitting_ = false;
  bool paused_ = false;
  std::uint64_t tx_packets_ = 0;
  std::uint64_t tx_bytes_ = 0;
  // Both timers fire at NIC-clock rates, so they keep persistent slots.
  Timer tx_done_{sim_, [this] {
    transmitting_ = false;
    kick();
  }};
  Timer wakeup_{sim_, [this] { kick(); }};
};

}  // namespace dcp
