#pragma once
// An end host: one NIC (uplink to its leaf switch) plus the per-flow
// sender/receiver transports living on it.

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "host/rnic_scheduler.h"
#include "host/transport.h"
#include "net/node.h"

namespace dcp {

class StateIO;

class Host final : public Node {
 public:
  Host(Simulator& sim, Logger& log, NodeId id, std::string name, Bandwidth nic_bw,
       Time link_propagation)
      : Node(sim, log, id, std::move(name), NodeKind::kHost),
        nic_(sim, nic_bw, link_propagation) {}

  RnicScheduler& nic() { return nic_; }
  void connect(Node* sw, std::uint32_t sw_port) { nic_.channel().connect(sw, sw_port); }

  using Node::receive;
  /// Virtual path (DCP_DEVIRT=0 / custom callers): same body as the
  /// statically-dispatched entry, so outputs are bit-identical.
  void receive(PacketPtr pkt, std::uint32_t in_port) override { receive_fast(std::move(pkt), in_port); }
  /// Statically-dispatched delivery entry (Channel::dispatch_receive casts
  /// to the final type and calls this non-virtually).  Gathers the flat
  /// packet once — the cold record's only read on the delivery path — and
  /// hands it to the transport state machines by value.
  void receive_fast(PacketPtr pkt, std::uint32_t in_port);

  void add_sender(std::unique_ptr<SenderTransport> s);
  void add_receiver(std::unique_ptr<ReceiverTransport> r);
  SenderTransport* sender(FlowId id);
  ReceiverTransport* receiver(FlowId id);

  /// All transports living on this host (live sampling, e.g. the recovery
  /// statistics collector).  Transports persist after flow completion, so
  /// iterating these covers finished flows too.
  const std::unordered_map<FlowId, std::unique_ptr<SenderTransport>>& senders() const {
    return senders_;
  }
  const std::unordered_map<FlowId, std::unique_ptr<ReceiverTransport>>& receivers() const {
    return receivers_;
  }

  /// Fired when a sender considers its flow fully acknowledged.
  std::function<void(FlowId)> on_sender_done;
  /// Fired when a receiver has every byte of the flow.
  std::function<void(FlowId)> on_receiver_done;

  std::uint64_t unroutable_packets() const { return unroutable_; }

  /// Checkpoint hook (sim/snapshot.h): every per-flow transport (sorted by
  /// flow id), the NIC scheduler, and the receiver-stat journal.  The MRU
  /// transport memo is reset on load rather than saved (pure cache).
  void checkpoint(StateIO& io);

  // --- Sharded-run receiver-stat journal ---------------------------------
  // A sharded run finalizes flows at window barriers, but the FlowRecord
  // must capture the receiver's stats exactly as they stood at the
  // finalizing event's (t, seq) — the receiver's shard may already have
  // executed past that point within the same window.  With the journal on,
  // every mutation point (receiver packet dispatch here, control sends in
  // ReceiverTransport::send_control) snapshots the stats keyed by the
  // event executing on this host's shard.

  void enable_stat_journal() { journal_on_ = true; }
  bool stat_journal_on() const { return journal_on_; }
  /// Appends a snapshot of flow `id`'s receiver stats keyed by the current
  /// event; provisional stamps are committed by remap_stat_journal().
  void journal_receiver_stats(FlowId id);
  /// Latest snapshot strictly before finalize key (t, seq); keys are
  /// globally unique so "at or before" is equivalent.  Falls back to the
  /// live stats when nothing has been journaled for the flow.
  ReceiverStats journal_stats_at(FlowId id, Time t, std::uint64_t seq);
  /// Barrier: commit provisional stamps (window remap hook).
  void remap_stat_journal(const SeqRemap& remap);
  /// Barrier, after finalizations: drop entries no future finalize can
  /// key into.  Under adaptive windows effects past the commit frontier
  /// stay deferred, so every snapshot with t > frontier is kept along with
  /// each flow's latest entry at or below it (any later finalize key is
  /// strictly above the frontier).  kTimeInfinity reduces to "latest per
  /// flow".
  void prune_stat_journal(Time frontier);

 private:
  RnicScheduler nic_;
  std::unordered_map<FlowId, std::unique_ptr<SenderTransport>> senders_;
  std::unordered_map<FlowId, std::unique_ptr<ReceiverTransport>> receivers_;
  // MRU memo of the maps above (hit on nearly every delivery — packets of
  // one flow arrive in trains).  Pure cache: transport addresses are
  // stable, and add_* invalidates.
  FlowId last_sender_id_ = UINT64_MAX;
  SenderTransport* last_sender_ = nullptr;
  FlowId last_receiver_id_ = UINT64_MAX;
  ReceiverTransport* last_receiver_ = nullptr;
  std::uint64_t unroutable_ = 0;

  struct StatSnap {
    Time t;
    std::uint64_t seq;
    ReceiverStats stats;
  };
  bool journal_on_ = false;
  // Entries per flow are appended in execution order, which is ascending
  // committed (t, seq) — the window remap is order-preserving.
  std::unordered_map<FlowId, std::vector<StatSnap>> journal_;
};

}  // namespace dcp
