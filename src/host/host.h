#pragma once
// An end host: one NIC (uplink to its leaf switch) plus the per-flow
// sender/receiver transports living on it.

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "host/rnic_scheduler.h"
#include "host/transport.h"
#include "net/node.h"

namespace dcp {

class Host final : public Node {
 public:
  Host(Simulator& sim, Logger& log, NodeId id, std::string name, Bandwidth nic_bw,
       Time link_propagation)
      : Node(sim, log, id, std::move(name)), nic_(sim, nic_bw, link_propagation) {}

  RnicScheduler& nic() { return nic_; }
  void connect(Node* sw, std::uint32_t sw_port) { nic_.channel().connect(sw, sw_port); }

  using Node::receive;
  void receive(PacketPtr pkt, std::uint32_t in_port) override;

  void add_sender(std::unique_ptr<SenderTransport> s);
  void add_receiver(std::unique_ptr<ReceiverTransport> r);
  SenderTransport* sender(FlowId id);
  ReceiverTransport* receiver(FlowId id);

  /// All transports living on this host (live sampling, e.g. the recovery
  /// statistics collector).  Transports persist after flow completion, so
  /// iterating these covers finished flows too.
  const std::unordered_map<FlowId, std::unique_ptr<SenderTransport>>& senders() const {
    return senders_;
  }
  const std::unordered_map<FlowId, std::unique_ptr<ReceiverTransport>>& receivers() const {
    return receivers_;
  }

  /// Fired when a sender considers its flow fully acknowledged.
  std::function<void(FlowId)> on_sender_done;
  /// Fired when a receiver has every byte of the flow.
  std::function<void(FlowId)> on_receiver_done;

  std::uint64_t unroutable_packets() const { return unroutable_; }

 private:
  RnicScheduler nic_;
  std::unordered_map<FlowId, std::unique_ptr<SenderTransport>> senders_;
  std::unordered_map<FlowId, std::unique_ptr<ReceiverTransport>> receivers_;
  // MRU memo of the maps above (hit on nearly every delivery — packets of
  // one flow arrive in trains).  Pure cache: transport addresses are
  // stable, and add_* invalidates.
  FlowId last_sender_id_ = UINT64_MAX;
  SenderTransport* last_sender_ = nullptr;
  FlowId last_receiver_id_ = UINT64_MAX;
  ReceiverTransport* last_receiver_ = nullptr;
  std::uint64_t unroutable_ = 0;
};

}  // namespace dcp
