#include "host/host.h"

#include "check/observer.h"

namespace dcp {

void Host::receive_fast(PacketPtr pkt, std::uint32_t in_port) {
  maybe_trace(*pkt, in_port);
  (void)in_port;
  if (pkt->type == PktType::kPfcPause || pkt->type == PktType::kPfcResume) {
    nic_.set_paused(pkt->type == PktType::kPfcPause);
    return;
  }

  // End of the pooled path: gather the flat packet (the delivery's one
  // cold-record read), return the slot, and hand the value to the
  // transport state machines.
  Packet flat(*pkt);
  pkt.reset();
  if (CheckObserver* ob = sim_.check_observer()) ob->on_host_deliver(id(), flat);

  const FlowId flow = flat.flow;
  switch (flat.type) {
    case PktType::kData: {
      if (auto* r = receiver(flow)) {
        r->on_packet(std::move(flat));
        if (journal_on_) journal_receiver_stats(flow);
        return;
      }
      break;
    }
    case PktType::kAck:
    case PktType::kSack:
    case PktType::kNack:
    case PktType::kCnp: {
      if (auto* s = sender(flow)) {
        s->on_packet(std::move(flat));
        return;
      }
      break;
    }
    case PktType::kHeaderOnly: {
      // First leg (switch -> receiver): the receiver bounces it back.
      // Second leg (receiver -> sender): drives HO-based retransmission.
      if (auto* r = receiver(flow)) {
        r->on_packet(std::move(flat));
        if (journal_on_) journal_receiver_stats(flow);
        return;
      }
      if (auto* s = sender(flow)) {
        s->on_packet(std::move(flat));
        return;
      }
      break;
    }
    default:
      break;
  }
  if (CheckObserver* ob = sim_.check_observer()) {
    ob->on_drop(DropSite::kHostUnroutable, id(), flat);
  }
  unroutable_++;
}

void Host::add_sender(std::unique_ptr<SenderTransport> s) {
  senders_[s->spec().id] = std::move(s);
  last_sender_ = nullptr;  // the id may have been re-bound
}

void Host::add_receiver(std::unique_ptr<ReceiverTransport> r) {
  receivers_[r->spec().id] = std::move(r);
  last_receiver_ = nullptr;
}

SenderTransport* Host::sender(FlowId id) {
  if (id == last_sender_id_ && last_sender_ != nullptr) return last_sender_;
  auto it = senders_.find(id);
  if (it == senders_.end()) return nullptr;
  last_sender_id_ = id;
  last_sender_ = it->second.get();
  return last_sender_;
}

void Host::journal_receiver_stats(FlowId id) {
  ReceiverTransport* r = receiver(id);
  if (r == nullptr) return;
  std::vector<StatSnap>& log = journal_[id];
  const Time t = sim_.current_event_time();
  const std::uint64_t seq = sim_.current_event_seq();
  if (!log.empty() && log.back().t == t && log.back().seq == seq) {
    log.back().stats = r->stats();  // same event touched the stats twice
    return;
  }
  log.push_back(StatSnap{t, seq, r->stats()});
}

ReceiverStats Host::journal_stats_at(FlowId id, Time t, std::uint64_t seq) {
  auto it = journal_.find(id);
  if (it != journal_.end()) {
    const std::vector<StatSnap>& log = it->second;
    for (std::size_t i = log.size(); i > 0; --i) {
      const StatSnap& s = log[i - 1];
      if (s.t < t || (s.t == t && s.seq <= seq)) return s.stats;
    }
  }
  ReceiverTransport* r = receiver(id);
  return r != nullptr ? r->stats() : ReceiverStats{};
}

void Host::remap_stat_journal(const SeqRemap& remap) {
  for (auto& [id, log] : journal_) {
    for (StatSnap& s : log) s.seq = remap(s.seq);
  }
}

void Host::prune_stat_journal() {
  for (auto& [id, log] : journal_) {
    if (log.size() > 1) log.erase(log.begin(), log.end() - 1);
  }
}

ReceiverTransport* Host::receiver(FlowId id) {
  if (id == last_receiver_id_ && last_receiver_ != nullptr) return last_receiver_;
  auto it = receivers_.find(id);
  if (it == receivers_.end()) return nullptr;
  last_receiver_id_ = id;
  last_receiver_ = it->second.get();
  return last_receiver_;
}

}  // namespace dcp
