#include "host/host.h"

#include <algorithm>

#include "sim/snapshot.h"

#include "check/observer.h"

namespace dcp {

void Host::receive_fast(PacketPtr pkt, std::uint32_t in_port) {
  maybe_trace(*pkt, in_port);
  (void)in_port;
  if (pkt->type == PktType::kPfcPause || pkt->type == PktType::kPfcResume) {
    nic_.set_paused(pkt->type == PktType::kPfcPause);
    return;
  }

  // End of the pooled path: gather the flat packet (the delivery's one
  // cold-record read), return the slot, and hand the value to the
  // transport state machines.
  Packet flat(*pkt);
  pkt.reset();
  if (CheckObserver* ob = sim_.check_observer()) ob->on_host_deliver(id(), flat);

  const FlowId flow = flat.flow;
  switch (flat.type) {
    case PktType::kData: {
      if (auto* r = receiver(flow)) {
        r->on_packet(std::move(flat));
        if (journal_on_) journal_receiver_stats(flow);
        return;
      }
      break;
    }
    case PktType::kAck:
    case PktType::kSack:
    case PktType::kNack:
    case PktType::kCnp: {
      if (auto* s = sender(flow)) {
        s->on_packet(std::move(flat));
        return;
      }
      break;
    }
    case PktType::kHeaderOnly: {
      // First leg (switch -> receiver): the receiver bounces it back.
      // Second leg (receiver -> sender): drives HO-based retransmission.
      if (auto* r = receiver(flow)) {
        r->on_packet(std::move(flat));
        if (journal_on_) journal_receiver_stats(flow);
        return;
      }
      if (auto* s = sender(flow)) {
        s->on_packet(std::move(flat));
        return;
      }
      break;
    }
    default:
      break;
  }
  if (CheckObserver* ob = sim_.check_observer()) {
    ob->on_drop(DropSite::kHostUnroutable, id(), flat);
  }
  unroutable_++;
}

void Host::add_sender(std::unique_ptr<SenderTransport> s) {
  senders_[s->spec().id] = std::move(s);
  last_sender_ = nullptr;  // the id may have been re-bound
}

void Host::add_receiver(std::unique_ptr<ReceiverTransport> r) {
  receivers_[r->spec().id] = std::move(r);
  last_receiver_ = nullptr;
}

SenderTransport* Host::sender(FlowId id) {
  if (id == last_sender_id_ && last_sender_ != nullptr) return last_sender_;
  auto it = senders_.find(id);
  if (it == senders_.end()) return nullptr;
  last_sender_id_ = id;
  last_sender_ = it->second.get();
  return last_sender_;
}

void Host::journal_receiver_stats(FlowId id) {
  ReceiverTransport* r = receiver(id);
  if (r == nullptr) return;
  std::vector<StatSnap>& log = journal_[id];
  const Time t = sim_.current_event_time();
  const std::uint64_t seq = sim_.current_event_seq();
  if (!log.empty() && log.back().t == t && log.back().seq == seq) {
    log.back().stats = r->stats();  // same event touched the stats twice
    return;
  }
  log.push_back(StatSnap{t, seq, r->stats()});
}

ReceiverStats Host::journal_stats_at(FlowId id, Time t, std::uint64_t seq) {
  auto it = journal_.find(id);
  if (it != journal_.end()) {
    const std::vector<StatSnap>& log = it->second;
    for (std::size_t i = log.size(); i > 0; --i) {
      const StatSnap& s = log[i - 1];
      if (s.t < t || (s.t == t && s.seq <= seq)) return s.stats;
    }
  }
  ReceiverTransport* r = receiver(id);
  return r != nullptr ? r->stats() : ReceiverStats{};
}

void Host::remap_stat_journal(const SeqRemap& remap) {
  for (auto& [id, log] : journal_) {
    for (StatSnap& s : log) s.seq = remap(s.seq);
  }
}

void Host::prune_stat_journal(Time frontier) {
  for (auto& [id, log] : journal_) {
    if (log.size() <= 1) continue;
    // Entries ascend in (t, seq); keep everything past the frontier (a
    // deferred finalize may still key into it) plus the latest at-or-below
    // entry, which any frontier-straddling lookup falls back to.
    std::size_t first_after = log.size();
    for (std::size_t i = 0; i < log.size(); ++i) {
      if (log[i].t > frontier) {
        first_after = i;
        break;
      }
    }
    if (first_after > 1) log.erase(log.begin(), log.begin() + (first_after - 1));
  }
}

ReceiverTransport* Host::receiver(FlowId id) {
  if (id == last_receiver_id_ && last_receiver_ != nullptr) return last_receiver_;
  auto it = receivers_.find(id);
  if (it == receivers_.end()) return nullptr;
  last_receiver_id_ = id;
  last_receiver_ = it->second.get();
  return last_receiver_;
}


void Host::checkpoint(StateIO& io) {
  io.label(0x4057u);
  // Transports exist in the rebuild (created at start_flow setup), so both
  // directions walk the same sorted id list and the per-id counts must
  // match exactly.
  auto walk = [&io](auto& map, const char* what) {
    std::vector<FlowId> ids;
    ids.reserve(map.size());
    for (auto& kv : map) ids.push_back(kv.first);
    std::sort(ids.begin(), ids.end());
    std::uint64_t n = ids.size();
    io.pod(n);
    if (!io.saving() && n != ids.size()) {
      io.fail(std::string("transport count mismatch: ") + what);
      return;
    }
    for (FlowId id : ids) {
      FlowId rid = id;
      io.pod(rid);
      if (!io.ok()) return;
      if (!io.saving() && rid != id) {
        io.fail(std::string("transport id mismatch: ") + what);
        return;
      }
      map.at(id)->checkpoint(io);
      if (!io.ok()) return;
    }
  };
  walk(senders_, "senders");
  if (!io.ok()) return;
  walk(receivers_, "receivers");
  if (!io.ok()) return;
  nic_.checkpoint(io, *this);
  io.pod(unroutable_);
  // Receiver-stat journal (sharded runs): per flow, ascending (t, seq).
  std::vector<FlowId> jids;
  jids.reserve(journal_.size());
  for (auto& kv : journal_) jids.push_back(kv.first);
  std::sort(jids.begin(), jids.end());
  std::uint64_t jn = jids.size();
  io.pod(jn);
  if (io.saving()) {
    for (FlowId id : jids) {
      FlowId rid = id;
      io.pod(rid);
      auto& v = journal_.at(id);
      std::uint64_t vn = v.size();
      io.pod(vn);
      for (auto& snap : v) {
        io.pod(snap.t);
        io.seq(snap.seq);
        io.pod(snap.stats);
      }
    }
  } else {
    journal_.clear();
    for (std::uint64_t i = 0; i < jn && io.ok(); ++i) {
      FlowId id = 0;
      io.pod(id);
      std::uint64_t vn = 0;
      io.pod(vn);
      auto& v = journal_[id];
      v.reserve(vn);
      for (std::uint64_t k = 0; k < vn && io.ok(); ++k) {
        StatSnap snap{};
        io.pod(snap.t);
        io.seq(snap.seq);
        io.pod(snap.stats);
        v.push_back(snap);
      }
    }
    last_sender_id_ = UINT64_MAX;
    last_sender_ = nullptr;
    last_receiver_id_ = UINT64_MAX;
    last_receiver_ = nullptr;
  }
}

}  // namespace dcp
