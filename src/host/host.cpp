#include "host/host.h"

#include "check/observer.h"

namespace dcp {

void Host::receive(PacketPtr pkt, std::uint32_t in_port) {
  maybe_trace(*pkt, in_port);
  (void)in_port;
  if (pkt->type == PktType::kPfcPause || pkt->type == PktType::kPfcResume) {
    nic_.set_paused(pkt->type == PktType::kPfcPause);
    return;
  }
  if (CheckObserver* ob = sim_.check_observer()) ob->on_host_deliver(id(), *pkt);

  // End of the pooled path: the transport state machines take the packet
  // by value (one final move out of the pool slot).
  switch (pkt->type) {
    case PktType::kData: {
      if (auto* r = receiver(pkt->flow)) {
        r->on_packet(std::move(*pkt));
        return;
      }
      break;
    }
    case PktType::kAck:
    case PktType::kSack:
    case PktType::kNack:
    case PktType::kCnp: {
      if (auto* s = sender(pkt->flow)) {
        s->on_packet(std::move(*pkt));
        return;
      }
      break;
    }
    case PktType::kHeaderOnly: {
      // First leg (switch -> receiver): the receiver bounces it back.
      // Second leg (receiver -> sender): drives HO-based retransmission.
      if (auto* r = receiver(pkt->flow)) {
        r->on_packet(std::move(*pkt));
        return;
      }
      if (auto* s = sender(pkt->flow)) {
        s->on_packet(std::move(*pkt));
        return;
      }
      break;
    }
    default:
      break;
  }
  if (CheckObserver* ob = sim_.check_observer()) {
    ob->on_drop(DropSite::kHostUnroutable, id(), *pkt);
  }
  unroutable_++;
}

void Host::add_sender(std::unique_ptr<SenderTransport> s) {
  senders_[s->spec().id] = std::move(s);
  last_sender_ = nullptr;  // the id may have been re-bound
}

void Host::add_receiver(std::unique_ptr<ReceiverTransport> r) {
  receivers_[r->spec().id] = std::move(r);
  last_receiver_ = nullptr;
}

SenderTransport* Host::sender(FlowId id) {
  if (id == last_sender_id_ && last_sender_ != nullptr) return last_sender_;
  auto it = senders_.find(id);
  if (it == senders_.end()) return nullptr;
  last_sender_id_ = id;
  last_sender_ = it->second.get();
  return last_sender_;
}

ReceiverTransport* Host::receiver(FlowId id) {
  if (id == last_receiver_id_ && last_receiver_ != nullptr) return last_receiver_;
  auto it = receivers_.find(id);
  if (it == receivers_.end()) return nullptr;
  last_receiver_id_ = id;
  last_receiver_ = it->second.get();
  return last_receiver_;
}

}  // namespace dcp
