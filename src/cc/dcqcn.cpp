#include "cc/dcqcn.h"

#include "sim/snapshot.h"

namespace dcp {

DcqcnRp::DcqcnRp(Simulator& sim, Bandwidth line_rate, std::uint64_t window, DcqcnParams p)
    : sim_(sim),
      p_(p),
      line_gbps_(line_rate.as_gbps()),
      window_(window),
      rc_gbps_(line_rate.as_gbps()),
      rt_gbps_(line_rate.as_gbps()) {}

void DcqcnRp::arm_alpha_timer() { alpha_timer_.arm_deadline(p_.alpha_timer); }

void DcqcnRp::on_alpha_timer() {
  alpha_ *= (1.0 - p_.g);
  // Once alpha has decayed to irrelevance and the rate is restored there
  // is nothing left to do; stop so an idle simulation can drain.
  if (alpha_ > 1e-3 || rc_gbps_ < line_gbps_ * 0.999) arm_alpha_timer();
}

void DcqcnRp::arm_rate_timer() { rate_timer_.arm_deadline(p_.rate_increase_timer); }

void DcqcnRp::on_rate_timer() {
  ++rate_timer_events_;
  increase_event();
  if (rc_gbps_ < line_gbps_ * 0.999) arm_rate_timer();
}

void DcqcnRp::cut_rate() {
  rt_gbps_ = rc_gbps_;
  rc_gbps_ = std::max(p_.min_rate_gbps, rc_gbps_ * (1.0 - alpha_ / 2.0));
  rate_timer_events_ = 0;
  byte_counter_events_ = 0;
  bytes_since_event_ = 0;
}

void DcqcnRp::on_cnp() {
  alpha_ = (1.0 - p_.g) * alpha_ + p_.g;
  cut_rate();
  arm_alpha_timer();
  arm_rate_timer();
}

void DcqcnRp::on_ack(std::uint64_t newly_acked_bytes) {
  // Byte-counter stage advance (paper: BC increments every B bytes sent; we
  // approximate with acked bytes, which tracks sent bytes at steady state).
  bytes_since_event_ += newly_acked_bytes;
  if (bytes_since_event_ >= p_.byte_counter) {
    bytes_since_event_ = 0;
    ++byte_counter_events_;
    increase_event();
  }
}

void DcqcnRp::increase_event() {
  const int stage = std::min(rate_timer_events_, byte_counter_events_);
  if (stage < p_.fast_recovery_rounds) {
    // Fast recovery: halve the gap toward the target rate.
  } else if (std::max(rate_timer_events_, byte_counter_events_) <
             2 * p_.fast_recovery_rounds) {
    rt_gbps_ = std::min(line_gbps_, rt_gbps_ + p_.rai_gbps);  // additive
  } else {
    rt_gbps_ = std::min(line_gbps_, rt_gbps_ + p_.rhai_gbps);  // hyper
  }
  rc_gbps_ = (rt_gbps_ + rc_gbps_) / 2.0;
}

void DcqcnRp::on_timeout() {
  // An RTO is a strong congestion signal; restart from target = current.
  alpha_ = 1.0;
  cut_rate();
  arm_alpha_timer();
  arm_rate_timer();
}

void DcqcnRp::checkpoint(StateIO& io) {
  io.label(0xDCC41u);
  io.pod(rc_gbps_);
  io.pod(rt_gbps_);
  io.pod(alpha_);
  io.pod(rate_timer_events_);
  io.pod(byte_counter_events_);
  io.pod(bytes_since_event_);
  io.timer(alpha_timer_);
  io.timer(rate_timer_);
}

}  // namespace dcp
