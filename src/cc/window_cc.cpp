#include "cc/cc.h"

// StaticWindowCc is header-only; this TU anchors the library target.
