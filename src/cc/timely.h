#pragma once
// TIMELY (Mittal et al., SIGCOMM 2015): RTT-gradient congestion control.
//
// Included to exercise the paper's claim that DCP's reliability machinery
// is compatible with *any* CC scheme (§3, §7 "Congestion Control for
// DCP"): TIMELY is delay-based and needs no switch support at all (not
// even ECN) — ACKs echo the data packet's transmit timestamp and the
// sender adjusts its rate from the smoothed RTT gradient.

#include <algorithm>

#include "cc/cc.h"

namespace dcp {

class TimelyCc final : public CongestionControl {
 public:
  TimelyCc(Bandwidth line_rate, std::uint64_t window, TimelyParams p)
      : p_(p),
        line_gbps_(line_rate.as_gbps()),
        window_(window),
        rate_gbps_(line_rate.as_gbps()) {}

  Bandwidth rate() const override { return Bandwidth::gbps(rate_gbps_); }
  std::uint64_t window_bytes() const override { return window_; }

  void on_rtt_sample(Time rtt) override;
  void on_timeout() override {
    rate_gbps_ = std::max(p_.min_rate_gbps, rate_gbps_ * p_.beta);
  }

  double current_rate_gbps() const { return rate_gbps_; }
  double normalized_gradient() const { return gradient_; }

  /// Rate/gradient scalars (no timers).
  void checkpoint(StateIO& io) override;

 private:
  TimelyParams p_;
  double line_gbps_;
  std::uint64_t window_;
  double rate_gbps_;
  Time prev_rtt_ = -1;
  double rtt_diff_ = 0.0;   // EWMA of consecutive RTT differences (us)
  double gradient_ = 0.0;   // rtt_diff / min_rtt
  int neg_gradient_streak_ = 0;
};

}  // namespace dcp
