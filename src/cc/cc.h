#pragma once
// Congestion-control interface for sender transports.
//
// DCP deliberately decouples reliability from congestion control (paper
// §3, §4.3): the retransmission machinery works with any CC.  We model CC
// as a rate/window provider the sender consults when pacing packets.

#include <cstdint>
#include <memory>

#include "net/packet.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace dcp {

class StateIO;

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  /// Current sending rate; senders space packets at wire_bytes / rate.
  virtual Bandwidth rate() const = 0;

  /// Cap on unacknowledged bytes (flow control); kNoWindowCap = unlimited.
  virtual std::uint64_t window_bytes() const = 0;

  virtual void on_ack(std::uint64_t newly_acked_bytes) { (void)newly_acked_bytes; }
  /// RTT sample from an ACK echoing the data packet's transmit timestamp
  /// (consumed by delay-based CCs such as TIMELY).
  virtual void on_rtt_sample(Time rtt) { (void)rtt; }
  virtual void on_cnp() {}
  virtual void on_ecn_echo() {}
  virtual void on_timeout() {}

  /// Checkpoint hook (sim/snapshot.h): CCs with runtime state (DCQCN,
  /// TIMELY) override; stateless CCs have nothing to save.
  virtual void checkpoint(StateIO& io) { (void)io; }

  static constexpr std::uint64_t kNoWindowCap = UINT64_MAX;
};

/// Uncontrolled: line rate, fixed window (the paper's "BDP-based flow
/// control" used by IRN and by DCP-without-CC).
class StaticWindowCc final : public CongestionControl {
 public:
  StaticWindowCc(Bandwidth line_rate, std::uint64_t window)
      : rate_(line_rate), window_(window) {}
  Bandwidth rate() const override { return rate_; }
  std::uint64_t window_bytes() const override { return window_; }

 private:
  Bandwidth rate_;
  std::uint64_t window_;
};

struct DcqcnParams {
  double g = 1.0 / 16.0;              // alpha EWMA gain
  Time alpha_timer = microseconds(55);
  Time rate_increase_timer = microseconds(55);
  std::uint64_t byte_counter = 1024 * 1024;  // 100G-scale: events come fast
  double rai_gbps = 1.0;              // additive increase step
  double rhai_gbps = 5.0;             // hyper increase step
  int fast_recovery_rounds = 5;       // F in the DCQCN paper
  double min_rate_gbps = 0.1;
  Time cnp_min_interval = microseconds(50);  // NP-side CNP pacing
};

struct TimelyParams {
  Time t_low = microseconds(30);    // below: additive increase
  Time t_high = microseconds(150);  // above: multiplicative decrease
  Time min_rtt = microseconds(8);
  double ewma_alpha = 0.46;         // gradient smoothing
  double beta = 0.8;                // multiplicative decrease factor
  double rai_gbps = 1.0;            // additive increase step
  int hai_threshold = 5;            // negative-gradient streak for HAI mode
  double min_rate_gbps = 0.5;
};

struct CcConfig {
  enum class Type { kStaticWindow, kDcqcn, kTimely } type = Type::kStaticWindow;
  Bandwidth line_rate = Bandwidth::gbps(100);
  std::uint64_t window_bytes = 150 * 1024;  // ~BDP for 100G * 12us
  DcqcnParams dcqcn;
  TimelyParams timely;
};

/// Builds a CC instance; DCQCN needs the simulator for its timers.
std::unique_ptr<CongestionControl> make_cc(Simulator& sim, const CcConfig& cfg);

}  // namespace dcp
