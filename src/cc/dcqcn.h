#pragma once
// DCQCN reaction point (sender-side rate machine), after Zhu et al.,
// SIGCOMM 2015.  The notification point (receiver-side CNP pacing) is the
// small CnpGenerator helper, embedded in receiver transports.

#include <algorithm>
#include <cstdint>

#include "cc/cc.h"
#include "sim/simulator.h"

namespace dcp {

class DcqcnRp final : public CongestionControl {
 public:
  DcqcnRp(Simulator& sim, Bandwidth line_rate, std::uint64_t window, DcqcnParams p);

  Bandwidth rate() const override { return Bandwidth::gbps(rc_gbps_); }
  std::uint64_t window_bytes() const override { return window_; }

  void on_cnp() override;
  void on_ack(std::uint64_t newly_acked_bytes) override;
  void on_timeout() override;

  double alpha() const { return alpha_; }
  double current_rate_gbps() const { return rc_gbps_; }

  /// Rate machine scalars + the two deadline timers' heap arms.
  void checkpoint(StateIO& io) override;

 private:
  void cut_rate();
  void increase_event();
  void arm_alpha_timer();
  void arm_rate_timer();
  void on_alpha_timer();
  void on_rate_timer();

  Simulator& sim_;
  DcqcnParams p_;
  double line_gbps_;
  std::uint64_t window_;

  double rc_gbps_;       // current rate
  double rt_gbps_;       // target rate
  double alpha_ = 1.0;
  int rate_timer_events_ = 0;   // T in the paper
  int byte_counter_events_ = 0; // BC in the paper
  std::uint64_t bytes_since_event_ = 0;
  // Deadline-class: every CNP re-arms both timers, but they fire at most
  // once per period — the classic push-the-deadline-forward pattern.
  Timer alpha_timer_{sim_, [this] { on_alpha_timer(); }};
  Timer rate_timer_{sim_, [this] { on_rate_timer(); }};
};

/// Receiver-side CNP pacing: at most one CNP per flow per interval.
class CnpGenerator {
 public:
  explicit CnpGenerator(Time min_interval = microseconds(50)) : interval_(min_interval) {}

  /// Called when an ECN-CE data packet arrives; true = emit a CNP now.
  bool should_send(Time now) {
    if (last_ == -1 || now - last_ >= interval_) {
      last_ = now;
      return true;
    }
    return false;
  }

  /// Checkpoint hook: the pacing clock is the only runtime state.
  template <typename IO>
  void checkpoint(IO& io) {
    io.pod(last_);
  }

 private:
  Time interval_;
  Time last_ = -1;
};

}  // namespace dcp
