#include "cc/cc.h"

#include "cc/dcqcn.h"
#include "cc/timely.h"

namespace dcp {

std::unique_ptr<CongestionControl> make_cc(Simulator& sim, const CcConfig& cfg) {
  switch (cfg.type) {
    case CcConfig::Type::kStaticWindow:
      return std::make_unique<StaticWindowCc>(cfg.line_rate, cfg.window_bytes);
    case CcConfig::Type::kDcqcn:
      return std::make_unique<DcqcnRp>(sim, cfg.line_rate, cfg.window_bytes, cfg.dcqcn);
    case CcConfig::Type::kTimely:
      return std::make_unique<TimelyCc>(cfg.line_rate, cfg.window_bytes, cfg.timely);
  }
  return nullptr;
}

}  // namespace dcp
