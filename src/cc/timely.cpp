#include "cc/timely.h"

#include "sim/snapshot.h"

namespace dcp {

void TimelyCc::on_rtt_sample(Time rtt) {
  if (prev_rtt_ < 0) {
    prev_rtt_ = rtt;
    return;
  }
  const double new_diff_us = to_us(rtt - prev_rtt_);
  prev_rtt_ = rtt;
  rtt_diff_ = (1.0 - p_.ewma_alpha) * rtt_diff_ + p_.ewma_alpha * new_diff_us;
  gradient_ = rtt_diff_ / to_us(p_.min_rtt);

  if (rtt < p_.t_low) {
    // Far below target: additive increase regardless of gradient.
    rate_gbps_ = std::min(line_gbps_, rate_gbps_ + p_.rai_gbps);
    ++neg_gradient_streak_;
    return;
  }
  if (rtt > p_.t_high) {
    // Way above target: multiplicative decrease bounded by T_high/rtt.
    const double factor =
        std::max(p_.beta, 1.0 - p_.beta * (1.0 - to_us(p_.t_high) / to_us(rtt)));
    rate_gbps_ = std::max(p_.min_rate_gbps, rate_gbps_ * factor);
    neg_gradient_streak_ = 0;
    return;
  }
  if (gradient_ <= 0) {
    ++neg_gradient_streak_;
    const double step =
        neg_gradient_streak_ >= p_.hai_threshold ? 5.0 * p_.rai_gbps : p_.rai_gbps;
    rate_gbps_ = std::min(line_gbps_, rate_gbps_ + step);
  } else {
    neg_gradient_streak_ = 0;
    rate_gbps_ =
        std::max(p_.min_rate_gbps, rate_gbps_ * (1.0 - p_.beta * std::min(gradient_, 1.0)));
  }
}

void TimelyCc::checkpoint(StateIO& io) {
  io.label(0x713E1Bu);
  io.pod(rate_gbps_);
  io.pod(prev_rtt_);
  io.pod(rtt_diff_);
  io.pod(gradient_);
  io.pod(neg_gradient_streak_);
}

}  // namespace dcp
