#include "net/wire.h"

#include <cstring>

namespace dcp::wire {
namespace {

constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
constexpr std::uint8_t kIpProtoUdp = 17;
constexpr std::uint16_t kRoceUdpPort = 4791;

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& buf) : buf_(buf) {}
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u24(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u48(std::uint64_t v) {
    u16(static_cast<std::uint16_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }

 private:
  std::vector<std::uint8_t>& buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> b) : b_(b) {}
  bool ok() const { return ok_; }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return ok_ ? b_.size() - pos_ : 0; }

  std::uint8_t u8() { return ok_ && need(1) ? b_[pos_++] : fail8(); }
  std::uint16_t u16() {
    if (!ok_ || !need(2)) return fail8();
    const std::uint16_t v = static_cast<std::uint16_t>((b_[pos_] << 8) | b_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u24() {
    if (!ok_ || !need(3)) return fail8();
    const std::uint32_t v = (static_cast<std::uint32_t>(b_[pos_]) << 16) |
                            (static_cast<std::uint32_t>(b_[pos_ + 1]) << 8) | b_[pos_ + 2];
    pos_ += 3;
    return v;
  }
  std::uint32_t u32() {
    const std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }
  std::uint64_t u48() {
    const std::uint64_t hi = u16();
    return (hi << 32) | u32();
  }
  std::uint64_t u64() {
    const std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }
  void skip(std::size_t n) {
    if (!need(n)) return;
    pos_ += n;
  }

 private:
  bool need(std::size_t n) {
    if (pos_ + n > b_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }
  std::uint8_t fail8() {
    ok_ = false;
    return 0;
  }
  std::span<const std::uint8_t> b_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

BthOpcode opcode_of(const Packet& pkt) {
  switch (pkt.type) {
    case PktType::kHeaderOnly:
      return BthOpcode::kDcpHeaderOnly;
    case PktType::kCnp:
      return BthOpcode::kDcpCnp;
    case PktType::kAck:
    case PktType::kSack:
    case PktType::kNack:
      return BthOpcode::kRcAck;
    default:
      break;
  }
  switch (pkt.op) {
    case RdmaOp::kWrite:
      return BthOpcode::kRcWriteOnly;
    case RdmaOp::kWriteWithImm:
      return BthOpcode::kRcWriteOnlyImm;
    case RdmaOp::kSend:
      return BthOpcode::kRcSendOnly;
  }
  return BthOpcode::kRcWriteOnly;
}

bool has_reth_header(const Packet& pkt) {
  // DCP carries the RETH in EVERY data packet of one-sided operations
  // (§4.4); trimming strips everything beyond the 57-byte base header, so
  // header-only packets have neither RETH nor SSN.
  return pkt.type == PktType::kData && pkt.op != RdmaOp::kSend;
}

bool has_ssn_header(const Packet& pkt) {
  return pkt.type == PktType::kData && pkt.op != RdmaOp::kWrite;
}

bool is_ack_like(const Packet& pkt) {
  return pkt.type == PktType::kAck || pkt.type == PktType::kSack || pkt.type == PktType::kNack;
}

}  // namespace

std::uint32_t ip_of_node(NodeId id) {
  return (10u << 24) | ((id >> 8) << 16) | ((id & 0xFF) << 8) | 1u;
}

std::uint64_t mac_of_node(NodeId id) {
  // Locally administered unicast OUI 0x02:44:43 ("DC"), low 24 bits = id.
  return (0x024443ull << 24) | (id & 0xFFFFFFu);
}

std::uint16_t ipv4_checksum(std::span<const std::uint8_t> header20) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < header20.size(); i += 2) {
    sum += static_cast<std::uint32_t>((header20[i] << 8) | header20[i + 1]);
  }
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::uint32_t header_bytes(const Packet& pkt) {
  std::uint32_t n = HeaderSizes::kEth + HeaderSizes::kIp + HeaderSizes::kUdp + HeaderSizes::kBth;
  if (pkt.type == PktType::kCnp) return n;  // CNP: bare BTH
  if (is_ack_like(pkt)) {
    return n + HeaderSizes::kAeth + HeaderSizes::kEmsn;  // 61 (kDcpAck)
  }
  n += HeaderSizes::kMsn;  // data & HO carry the MSN extension (57 base)
  if (has_reth_header(pkt)) n += HeaderSizes::kReth;
  if (has_ssn_header(pkt)) n += HeaderSizes::kSsn;
  return n;
}

std::vector<std::uint8_t> encode(const Packet& pkt, bool include_payload) {
  std::vector<std::uint8_t> out;
  const std::uint32_t hdr = header_bytes(pkt);
  const std::uint32_t payload = include_payload ? pkt.payload_bytes : 0;
  out.reserve(hdr + payload);
  Writer w(out);

  // --- Ethernet (14) ------------------------------------------------------
  w.u48(mac_of_node(pkt.dst));
  w.u48(mac_of_node(pkt.src));
  w.u16(kEtherTypeIpv4);

  // --- IPv4 (20) ----------------------------------------------------------
  const std::size_t ip_start = out.size();
  const std::uint16_t ip_total =
      static_cast<std::uint16_t>(hdr - HeaderSizes::kEth + pkt.payload_bytes);
  w.u8(0x45);  // version 4, IHL 5
  // ToS: ECN bits in [1:0] per RFC 3168 are used for ECT/CE; DCP claims two
  // *DSCP* bits for its tag (paper: "two bits in the ToS field").  We put
  // the DCP tag in DSCP[1:0] (ToS bits 3:2) and ECN in ToS bits 1:0.
  const std::uint8_t ecn_bits = pkt.ecn_ce ? 0b11 : (pkt.ecn_capable ? 0b10 : 0b00);
  w.u8(static_cast<std::uint8_t>((static_cast<std::uint8_t>(pkt.tag) << 2) | ecn_bits));
  w.u16(ip_total);
  w.u16(static_cast<std::uint16_t>(pkt.uid));  // IP id: diagnostic
  w.u16(0x4000);                               // DF
  w.u8(64);                                    // TTL
  w.u8(kIpProtoUdp);
  w.u16(0);  // checksum placeholder
  w.u32(ip_of_node(pkt.src));
  w.u32(ip_of_node(pkt.dst));
  const std::uint16_t csum =
      ipv4_checksum(std::span<const std::uint8_t>(out.data() + ip_start, HeaderSizes::kIp));
  out[ip_start + 10] = static_cast<std::uint8_t>(csum >> 8);
  out[ip_start + 11] = static_cast<std::uint8_t>(csum);

  // --- UDP (8) -------------------------------------------------------------
  w.u16(pkt.sport);
  w.u16(kRoceUdpPort);
  w.u16(static_cast<std::uint16_t>(ip_total - HeaderSizes::kIp));
  w.u16(0);  // RoCEv2 leaves the UDP checksum 0

  // --- BTH (12) -------------------------------------------------------------
  w.u8(static_cast<std::uint8_t>(opcode_of(pkt)));
  w.u8(pkt.last_of_msg ? 0x80 : 0x00);  // SE bit marks message boundary
  w.u16(0xFFFF);                        // pkey: default partition
  w.u8(pkt.retry_no);                   // BTH reserved byte carries sRetryNo
  w.u24(static_cast<std::uint32_t>(pkt.flow) & 0xFFFFFF);  // dest QPN
  w.u8(pkt.last_of_flow ? 0x80 : 0x00);                    // AckReq on tail
  w.u24(pkt.psn & 0xFFFFFF);

  if (pkt.type == PktType::kCnp) return out;

  if (is_ack_like(pkt)) {
    // --- AETH (4): syndrome + 24-bit MSN field (carries rcnt credit) ------
    std::uint8_t syndrome = 0x00;  // ACK
    if (pkt.type == PktType::kNack) syndrome = 0x60;      // NAK sequence error
    if (pkt.type == PktType::kSack) syndrome = 0x20;      // vendor: SACK
    w.u8(syndrome);
    w.u24(pkt.ack_psn & 0xFFFFFF);
    // --- eMSN (3): DCP extension ------------------------------------------
    w.u24(pkt.type == PktType::kSack ? (pkt.sack_psn & 0xFFFFFF) : (pkt.emsn & 0xFFFFFF));
    return out;
  }

  // --- MSN (3): DCP extension, in every data/HO packet ---------------------
  w.u24(pkt.msn & 0xFFFFFF);

  if (has_reth_header(pkt)) {
    // --- RETH (16): vaddr(8) rkey(4) length(4) -----------------------------
    w.u64(pkt.remote_addr);
    w.u32(0xDC00DC00u);  // rkey (fixed in simulation)
    w.u32(pkt.payload_bytes);
  }
  if (has_ssn_header(pkt)) {
    w.u24(pkt.ssn & 0xFFFFFF);  // --- SSN (3): DCP extension ---------------
  }

  if (include_payload) out.resize(out.size() + pkt.payload_bytes, 0);
  return out;
}

std::optional<Packet> decode(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  Packet pkt;

  // Ethernet.
  const std::uint64_t dst_mac = r.u48();
  const std::uint64_t src_mac = r.u48();
  if (r.u16() != kEtherTypeIpv4) return std::nullopt;

  // IPv4.
  const std::size_t ip_start = r.pos();
  if (r.u8() != 0x45) return std::nullopt;
  const std::uint8_t tos = r.u8();
  pkt.tag = static_cast<DcpTag>((tos >> 2) & 0b11);
  pkt.ecn_ce = (tos & 0b11) == 0b11;
  pkt.ecn_capable = (tos & 0b11) != 0b00;
  const std::uint16_t ip_total = r.u16();
  pkt.uid = r.u16();
  r.skip(2);  // flags/frag
  r.skip(1);  // ttl
  if (r.u8() != kIpProtoUdp) return std::nullopt;
  const std::uint16_t stored_csum = r.u16();
  const std::uint32_t src_ip = r.u32();
  const std::uint32_t dst_ip = r.u32();
  if (!r.ok()) return std::nullopt;
  // Verify the checksum (recompute with the field zeroed).
  std::uint8_t hdr_copy[HeaderSizes::kIp];
  std::memcpy(hdr_copy, bytes.data() + ip_start, HeaderSizes::kIp);
  hdr_copy[10] = hdr_copy[11] = 0;
  if (ipv4_checksum(hdr_copy) != stored_csum) return std::nullopt;
  pkt.src = static_cast<NodeId>(((src_ip >> 16) & 0xFF) << 8 | ((src_ip >> 8) & 0xFF));
  pkt.dst = static_cast<NodeId>(((dst_ip >> 16) & 0xFF) << 8 | ((dst_ip >> 8) & 0xFF));
  if (mac_of_node(pkt.src) != src_mac || mac_of_node(pkt.dst) != dst_mac) return std::nullopt;

  // UDP.
  pkt.sport = r.u16();
  if (r.u16() != kRoceUdpPort) return std::nullopt;
  r.skip(4);  // len + csum

  // BTH.
  const auto opcode = static_cast<BthOpcode>(r.u8());
  const std::uint8_t se = r.u8();
  r.skip(2);  // pkey
  pkt.retry_no = r.u8();
  pkt.flow = r.u24();
  const std::uint8_t ackreq = r.u8();
  pkt.psn = r.u24();
  if (!r.ok()) return std::nullopt;
  pkt.last_of_msg = (se & 0x80) != 0;
  pkt.last_of_flow = (ackreq & 0x80) != 0;

  switch (opcode) {
    case BthOpcode::kDcpCnp:
      pkt.type = PktType::kCnp;
      pkt.wire_bytes = static_cast<std::uint32_t>(HeaderSizes::kEth + ip_total);
      return r.ok() ? std::optional<Packet>(pkt) : std::nullopt;

    case BthOpcode::kRcAck: {
      const std::uint8_t syndrome = r.u8();
      const std::uint32_t aeth_msn = r.u24();
      const std::uint32_t ext = r.u24();
      if (!r.ok()) return std::nullopt;
      pkt.ack_psn = aeth_msn;
      if (syndrome == 0x60) {
        pkt.type = PktType::kNack;
      } else if (syndrome == 0x20) {
        pkt.type = PktType::kSack;
        pkt.sack_psn = ext;
      } else {
        pkt.type = PktType::kAck;
        pkt.emsn = ext;
      }
      pkt.wire_bytes = static_cast<std::uint32_t>(HeaderSizes::kEth + ip_total);
      return pkt;
    }

    case BthOpcode::kDcpHeaderOnly:
    case BthOpcode::kRcWriteOnly:
    case BthOpcode::kRcWriteOnlyImm:
    case BthOpcode::kRcSendOnly:
      break;

    default:
      return std::nullopt;
  }

  pkt.type = opcode == BthOpcode::kDcpHeaderOnly ? PktType::kHeaderOnly : PktType::kData;
  pkt.op = opcode == BthOpcode::kRcSendOnly
               ? RdmaOp::kSend
               : (opcode == BthOpcode::kRcWriteOnlyImm ? RdmaOp::kWriteWithImm : RdmaOp::kWrite);
  pkt.msn = r.u24();
  if (has_reth_header(pkt)) {
    pkt.remote_addr = r.u64();
    r.skip(4);  // rkey
    pkt.payload_bytes = r.u32();
    pkt.has_reth = true;
  }
  if (has_ssn_header(pkt)) pkt.ssn = r.u24();
  if (!r.ok()) return std::nullopt;
  if (pkt.type == PktType::kHeaderOnly) pkt.queue_class = QueueClass::kControl;
  pkt.wire_bytes = static_cast<std::uint32_t>(HeaderSizes::kEth + ip_total);
  return pkt;
}

}  // namespace dcp::wire
