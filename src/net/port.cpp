#include "net/port.h"

// For the static select/charge dispatch below: DwrrPolicy's bodies are
// header-inline, so including it here adds no link dependency on the
// switch library.
#include "sim/snapshot.h"
#include "switch/scheduler.h"

namespace dcp {

void Port::checkpoint(StateIO& io) {
  io.label(0x9047u);
  channel_.checkpoint(io);
  io.fixed(queues_, [](StateIO& s, FifoQueue& q) { q.checkpoint(s); });
  io.pod(paused_);
  io.pod(transmitting_);
  io.pod(stats_);
  policy_->checkpoint(io);
  io.timer(tx_done_);
}

void Port::enqueue(PacketPtr pkt) {
  const int c = static_cast<int>(pkt->queue_class);
  queues_[c].push(std::move(pkt));
  stats_.enqueued_packets++;
  try_transmit();
}

void Port::send_oob(Packet pkt) {
  channel_.deliver(std::move(pkt), channel_.serialization(HeaderSizes::kPfcFrame));
}

void Port::set_paused(int queue_class, bool paused) {
  if (paused_[queue_class] == paused) return;
  paused_[queue_class] = paused;
  if (!paused) try_transmit();
}

std::uint64_t Port::total_queued_bytes() const {
  std::uint64_t total = 0;
  for (const auto& q : queues_) total += q.bytes();
  return total;
}

void Port::try_transmit() {
  if (transmitting_) return;
  // Static dispatch on the policy tag cached at construction: both concrete
  // policies are final with header-visible bodies, so the scheduling
  // decision inlines here instead of taking two virtual hops per packet.
  int c;
  switch (policy_kind_) {
    case SchedulerPolicy::Kind::kDwrr:
      c = static_cast<DwrrPolicy*>(policy_.get())->select(queues_, paused_);
      break;
    case SchedulerPolicy::Kind::kStrict:
      c = static_cast<StrictPriorityPolicy*>(policy_.get())->select(queues_, paused_);
      break;
    default:
      c = policy_->select(queues_, paused_);
      break;
  }
  if (c < 0) return;

  PacketPtr pkt = queues_[c].pop();
  switch (policy_kind_) {
    case SchedulerPolicy::Kind::kDwrr:
      static_cast<DwrrPolicy*>(policy_.get())->charge(c, pkt->wire_bytes);
      break;
    case SchedulerPolicy::Kind::kStrict:
      break;  // strict priority keeps no deficit state
    default:
      policy_->charge(c, pkt->wire_bytes);
      break;
  }
  stats_.tx_packets++;
  stats_.tx_bytes += pkt->wire_bytes;
  stats_.tx_packets_by_class[c]++;
  if (dequeue_fn_ != nullptr) dequeue_fn_(dequeue_ctx_, *pkt);

  const Time ser = channel_.serialization(pkt->wire_bytes);
  channel_.deliver(std::move(pkt), ser);
  transmitting_ = true;
  tx_done_.arm(ser);
}

}  // namespace dcp
