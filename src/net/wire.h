#pragma once
// Byte-exact wire format for the RoCEv2 + DCP headers of Fig. 4.
//
// The simulator itself moves metadata structs, but a credible RNIC design
// must pin down the actual encoding: this module serializes/parses the
// packet headers exactly as the FPGA/P4 prototypes would emit them —
// Ethernet / IPv4 (DCP tag in the two low ToS bits) / UDP / BTH (sRetryNo
// in the reserved byte) / MSN, plus RETH for one-sided ops, SSN for
// two-sided ops, and AETH + eMSN for DCP ACKs.  The encoded sizes are, by
// construction, the HeaderSizes constants the rest of the library uses —
// including the 57-byte header-only packet the paper's §4.2 footnote
// derives.
//
// Network byte order (big-endian) throughout, as on the wire.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.h"

namespace dcp::wire {

/// RoCEv2 BTH opcodes (RC transport class), the subset DCP uses, plus
/// vendor-space opcodes for DCP's control packets.
enum class BthOpcode : std::uint8_t {
  kRcWriteOnly = 0x0A,       // RDMA WRITE Only
  kRcWriteOnlyImm = 0x0B,    // RDMA WRITE Only with Immediate
  kRcSendOnly = 0x04,        // SEND Only
  kRcAck = 0x11,             // Acknowledge
  kDcpHeaderOnly = 0xC0,     // vendor: trimmed header-only packet
  kDcpCnp = 0x81,            // CNP (RoCEv2 CNP opcode)
};

/// Encodes the full header (+ zero-filled payload placeholder if
/// `include_payload`); returns the raw bytes.
std::vector<std::uint8_t> encode(const Packet& pkt, bool include_payload = false);

/// Parses a packet from raw bytes.  Returns std::nullopt on malformed
/// input (truncated headers, bad version, unknown opcode, checksum
/// mismatch).
std::optional<Packet> decode(std::span<const std::uint8_t> bytes);

/// Header length (bytes) the encoder will emit for this packet.
std::uint32_t header_bytes(const Packet& pkt);

/// The IPv4 header checksum (RFC 791) over a 20-byte header.
std::uint16_t ipv4_checksum(std::span<const std::uint8_t> header20);

/// Synthetic addressing used on the simulated wire: node ids map to
/// 10.(id>>8).(id&255).1 and a locally administered MAC.
std::uint32_t ip_of_node(NodeId id);
std::uint64_t mac_of_node(NodeId id);  // 48 bits used

}  // namespace dcp::wire
