#include "net/lane.h"

namespace dcp {

LanePool& LanePool::local() {
  thread_local LanePool pool;
  return pool;
}

void LanePool::grow() {
  chunks_.push_back(std::make_unique<LaneRecord[]>(kChunkRecords));
  LaneRecord* base = chunks_.back().get();
  free_.reserve(free_.size() + kChunkRecords);
  // Reversed so the lowest address is handed out first.
  for (std::size_t i = kChunkRecords; i > 0; --i) {
    free_.push_back(base + i - 1);
  }
}

}  // namespace dcp
