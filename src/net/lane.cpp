#include "net/lane.h"

#include "net/pool_retire.h"

namespace dcp {

LanePool& LanePool::local() {
  thread_local LanePool pool;
  return pool;
}

LanePool::~LanePool() {
  if (chunks_.empty() && free_.empty()) return;
  RetiredSlabs<LaneRecord>::instance().donate(std::move(chunks_), std::move(free_));
}

void LanePool::grow() {
  const std::size_t got = RetiredSlabs<LaneRecord>::instance().reclaim(free_, next_chunk_);
  if (got > 0) {
    reclaimed_ += got;
    slots_ += got;
    return;
  }
  const std::size_t n = next_chunk_;
  chunks_.push_back(std::make_unique<LaneRecord[]>(n));
  LaneRecord* base = chunks_.back().get();
  free_.reserve(free_.size() + n);
  // Reversed so the lowest address is handed out first.
  for (std::size_t i = n; i > 0; --i) {
    free_.push_back(base + i - 1);
  }
  slots_ += n;
  if (next_chunk_ < kMaxChunkRecords) next_chunk_ *= 2;
}

}  // namespace dcp
