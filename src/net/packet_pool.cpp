#include "net/packet_pool.h"

#include "net/pool_retire.h"

namespace dcp {

PacketPool& PacketPool::local() {
  thread_local PacketPool pool;
  return pool;
}

PacketPool::~PacketPool() {
  // Slots this pool handed out may still be in flight on other threads
  // (shard teardown releases them on the coordinator) — the slabs must
  // outlive this thread.  A never-grown pool has nothing to donate, and
  // skipping the call keeps process exit from constructing the store.
  if (chunks_.empty() && free_.empty()) return;
  RetiredSlabs<Packet>::instance().donate(std::move(chunks_), std::move(free_));
}

void PacketPool::grow() {
  const std::size_t got = RetiredSlabs<Packet>::instance().reclaim(free_, kChunkPackets);
  if (got > 0) {
    reclaimed_ += got;
    return;
  }
  chunks_.push_back(std::make_unique<Packet[]>(kChunkPackets));
  Packet* base = chunks_.back().get();
  free_.reserve(free_.size() + kChunkPackets);
  // Reversed so the lowest address is handed out first.
  for (std::size_t i = kChunkPackets; i > 0; --i) {
    free_.push_back(base + i - 1);
  }
}

}  // namespace dcp
