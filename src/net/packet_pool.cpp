#include "net/packet_pool.h"

namespace dcp {

PacketPool& PacketPool::local() {
  thread_local PacketPool pool;
  return pool;
}

void PacketPool::grow() {
  chunks_.push_back(std::make_unique<Packet[]>(kChunkPackets));
  Packet* base = chunks_.back().get();
  free_.reserve(free_.size() + kChunkPackets);
  // Reversed so the lowest address is handed out first.
  for (std::size_t i = kChunkPackets; i > 0; --i) {
    free_.push_back(base + i - 1);
  }
}

}  // namespace dcp
