#include "net/packet_pool.h"

#include "net/pool_retire.h"

namespace dcp {

PacketPool& PacketPool::local() {
  thread_local PacketPool pool;
  return pool;
}

PacketPool::~PacketPool() {
  // Slots this pool handed out may still be in flight on other threads
  // (shard teardown releases them on the coordinator) — the slabs must
  // outlive this thread.  A never-grown pool has nothing to donate, and
  // skipping the call keeps process exit from constructing the store.
  if (chunks_.empty() && free_.empty()) return;
  RetiredSlabs<PacketHot>::instance().donate(std::move(chunks_), std::move(free_));
  // The cold slabs are reached only through hot slots' cold_slot pointers;
  // park them in their own store so the pairings stay valid for the life
  // of the process (no free slots of their own to offer).
  if (!cold_chunks_.empty()) {
    RetiredSlabs<PacketCold>::instance().donate(std::move(cold_chunks_), {});
  }
}

void PacketPool::grow() {
  // Retired hot slots arrive with their cold_slot pairing intact (the
  // paired cold slabs are parked alive in the cold retired store).
  const std::size_t got = RetiredSlabs<PacketHot>::instance().reclaim(free_, next_chunk_);
  if (got > 0) {
    reclaimed_ += got;
    slots_ += got;
    return;
  }
  const std::size_t n = next_chunk_;
  chunks_.push_back(std::make_unique<PacketHot[]>(n));
  cold_chunks_.push_back(std::make_unique<PacketCold[]>(n));
  PacketHot* base = chunks_.back().get();
  PacketCold* cold = cold_chunks_.back().get();
  free_.reserve(free_.size() + n);
  // Reversed so the lowest address is handed out first.
  for (std::size_t i = n; i > 0; --i) {
    base[i - 1].cold_slot = cold + (i - 1);
    free_.push_back(base + i - 1);
  }
  slots_ += n;
  if (next_chunk_ < kMaxChunkPackets) next_chunk_ *= 2;
}

}  // namespace dcp
