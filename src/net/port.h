#pragma once
// An egress port: a set of per-class FIFO queues, a scheduling policy,
// per-class PFC pause state, and the outgoing Channel it drives.
//
// The port is a pull model: whenever the wire goes idle it asks the
// scheduler which queue to serve next.  Switches install a DWRR scheduler
// (control queue weighted over data, paper §4.2); hosts use strict
// priority (ACK/HO bounce over data).

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/channel.h"
#include "net/packet.h"
#include "net/queue.h"
#include "sim/simulator.h"

namespace dcp {

/// Chooses which queue class an egress port serves next.
class SchedulerPolicy {
 public:
  /// Concrete-type tag, resolved once at Port construction: the per-packet
  /// transmit path static-dispatches select()/charge() on it (the same
  /// {kind, ptr} devirtualization as Channel -> Node delivery).  Custom
  /// policies keep the default kGeneric and take the virtual hop.
  enum class Kind : std::uint8_t { kGeneric, kStrict, kDwrr };
  virtual ~SchedulerPolicy() = default;
  virtual Kind kind() const { return Kind::kGeneric; }

  /// Returns the index of the queue to serve, or -1 if nothing is eligible.
  /// `paused[i]` means class i must not be served (PFC).
  virtual int select(const std::vector<FifoQueue>& queues,
                     const std::array<bool, kNumQueueClasses>& paused) = 0;

  /// Informs the policy how many bytes the selected queue transmitted (for
  /// deficit accounting).
  virtual void charge(int queue, std::uint32_t bytes) {
    (void)queue;
    (void)bytes;
  }

  /// Checkpoint hook (sim/snapshot.h): policies with mutable round state
  /// (DWRR deficits) override; stateless policies have nothing to save.
  virtual void checkpoint(StateIO& io) { (void)io; }
};

/// Serves the lowest-index non-empty queue (class 0 first).  With a single
/// class this is plain FIFO.
class StrictPriorityPolicy final : public SchedulerPolicy {
 public:
  /// `high_first` lists class indices from highest to lowest priority.
  explicit StrictPriorityPolicy(std::vector<int> high_first) : order_(std::move(high_first)) {}
  StrictPriorityPolicy() : order_{0, 1} {}

  Kind kind() const override { return Kind::kStrict; }

  int select(const std::vector<FifoQueue>& queues,
             const std::array<bool, kNumQueueClasses>& paused) override {
    for (int c : order_) {
      if (static_cast<std::size_t>(c) < queues.size() && !queues[c].empty() && !paused[c]) {
        return c;
      }
    }
    return -1;
  }

 private:
  std::vector<int> order_;
};

class Port {
 public:
  struct Stats {
    std::uint64_t tx_packets = 0;
    std::uint64_t tx_bytes = 0;
    std::array<std::uint64_t, kNumQueueClasses> tx_packets_by_class{};
    std::uint64_t enqueued_packets = 0;
  };

  Port(Simulator& sim, Bandwidth bw, Time propagation,
       std::unique_ptr<SchedulerPolicy> policy)
      : sim_(sim),
        channel_(sim, bw, propagation),
        policy_(std::move(policy)),
        policy_kind_(policy_->kind()),
        queues_(kNumQueueClasses) {}

  Channel& channel() { return channel_; }
  const Channel& channel() const { return channel_; }
  void connect(Node* dst, std::uint32_t dst_port) { channel_.connect(dst, dst_port); }

  /// Queues a packet in its queue class and kicks the wire if idle.
  void enqueue(PacketPtr pkt);
  void enqueue(Packet pkt) { enqueue(PacketPtr::make(std::move(pkt))); }

  /// Sends a frame "out of band": it reaches the peer after its own
  /// serialization + propagation but does not occupy the wire or any queue.
  /// Used for PFC PAUSE/RESUME frames, which real NIC/switch MACs transmit
  /// with absolute precedence.
  void send_oob(Packet pkt);

  /// PFC pause state for a queue class.
  void set_paused(int queue_class, bool paused);
  bool paused(int queue_class) const { return paused_[queue_class]; }

  const FifoQueue& queue(int c) const { return queues_[c]; }
  std::uint64_t queued_bytes(int c) const { return queues_[c].bytes(); }
  std::uint64_t total_queued_bytes() const;
  bool idle() const { return !transmitting_; }
  const Stats& stats() const { return stats_; }

  /// Invoked with every packet the port dequeues for transmission, before
  /// it hits the wire.  The owner (switch) uses it to release shared-buffer
  /// and PFC ingress accounting.  A raw (fn, ctx) pair rather than a
  /// std::function: this fires once per transmitted packet on the hot path.
  using DequeueHook = void (*)(void* ctx, const PacketHot&);
  void set_dequeue_hook(DequeueHook fn, void* ctx) {
    dequeue_fn_ = fn;
    dequeue_ctx_ = ctx;
  }

  /// Checkpoint hook (sim/snapshot.h): queues, pause state, transmit state,
  /// stats, the scheduler's round state, the serialization timer's arm and
  /// the outgoing channel.
  void checkpoint(StateIO& io);

 private:
  void try_transmit();

  DequeueHook dequeue_fn_ = nullptr;
  void* dequeue_ctx_ = nullptr;
  Simulator& sim_;
  Channel channel_;
  std::unique_ptr<SchedulerPolicy> policy_;
  // Cached policy_->kind(): try_transmit static-dispatches on it so the
  // DWRR/strict select bodies inline into the transmit path.
  SchedulerPolicy::Kind policy_kind_;
  std::vector<FifoQueue> queues_;
  std::array<bool, kNumQueueClasses> paused_{};
  bool transmitting_ = false;
  Stats stats_;
  // Serialization-done: fires once per transmitted frame, so it keeps a
  // persistent slot — re-arming is a heap insert only.
  Timer tx_done_{sim_, [this] {
    transmitting_ = false;
    try_transmit();
  }};
};

}  // namespace dcp
