#pragma once
// The simulated packet and the RoCEv2 + DCP header model.
//
// We do not carry payload bytes — only sizes — but every header field the
// protocols actually consult is modeled explicitly, including the DCP
// extensions of Fig. 4: the 2-bit DCP tag in the IP ToS field, the MSN,
// the SSN for two-sided operations, sRetryNo in data packets, eMSN in ACKs,
// and the RETH carried in *every* packet of a Write (not just the first).
//
// Layout: the pooled datapath stores each packet as two records (see
// PacketPool).  PacketHot is the single cache line the switch, port, queue
// and lane-scheduler code touches per hop; PacketCold holds the fields only
// the host transports read (RETH, DCP sequencing beyond the PSN, tracing
// bookkeeping), fetched once at delivery.  The flat Packet struct remains
// the by-value API for transports, tests and tools — an implicit gather
// constructor from PacketHot keeps existing call sites compiling, and
// PacketHot::assign() is the scatter at injection time.

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace dcp {

using NodeId = std::uint32_t;
using FlowId = std::uint64_t;
inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// 2-bit tag in the IP ToS field (paper §4.2).
enum class DcpTag : std::uint8_t {
  kNonDcp = 0b00,      // dropped when over threshold
  kAck = 0b01,         // DCP ACK; dropped when over threshold
  kData = 0b10,        // trimmed to header-only when over threshold
  kHeaderOnly = 0b11,  // enqueued into the control queue, never trimmed
};

enum class PktType : std::uint8_t {
  kData,        // payload-carrying data packet
  kAck,         // cumulative ACK (GBN/DCP eMSN ACK/TCP ACK)
  kSack,        // selective ACK (IRN)
  kNack,        // NAK/duplicate indication (GBN)
  kCnp,         // DCQCN congestion notification packet
  kHeaderOnly,  // trimmed data packet (switch -> receiver -> sender)
  kPfcPause,    // PFC PAUSE frame (hop-local)
  kPfcResume,   // PFC RESUME frame (hop-local)
};

/// RDMA operation carried by a data packet.
enum class RdmaOp : std::uint8_t { kWrite, kWriteWithImm, kSend };

/// Header byte sizes (paper §4.2 footnote: 57 B = 14 MAC + 20 IP + 8 UDP +
/// 12 BTH + 3 MSN).
struct HeaderSizes {
  static constexpr std::uint32_t kEth = 14;
  static constexpr std::uint32_t kIp = 20;
  static constexpr std::uint32_t kUdp = 8;
  static constexpr std::uint32_t kBth = 12;
  static constexpr std::uint32_t kMsn = 3;        // DCP MSN field
  static constexpr std::uint32_t kReth = 16;      // remote address + rkey + len
  static constexpr std::uint32_t kSsn = 3;        // DCP SSN field (two-sided)
  static constexpr std::uint32_t kAeth = 4;
  static constexpr std::uint32_t kEmsn = 3;       // DCP eMSN in ACKs

  static constexpr std::uint32_t kRoceData = kEth + kIp + kUdp + kBth;       // 54
  static constexpr std::uint32_t kDcpHeaderOnly = kRoceData + kMsn;          // 57
  static constexpr std::uint32_t kRoceAck = kEth + kIp + kUdp + kBth + kAeth;  // 58
  static constexpr std::uint32_t kDcpAck = kRoceAck + kEmsn;                 // 61
  static constexpr std::uint32_t kPfcFrame = 64;
  static constexpr std::uint32_t kCnp = kRoceAck;
};

/// Queue class at switch egress ports.
enum class QueueClass : std::uint8_t {
  kData = 0,     // normal data queue (lossy under DCP; lossless under PFC)
  kControl = 1,  // DCP control queue for header-only packets
};
inline constexpr int kNumQueueClasses = 2;

/// The fields no switch, port or lane touches: DCP sequencing beyond the
/// PSN/ACK pair, the RETH, and tracing bookkeeping.  Lives in its own pool
/// slab, permanently paired with a PacketHot slot, and is initialized
/// lazily — a packet that dies in the fabric never writes these bytes.
/// Fields are grouped by size so the record packs without padding.
struct PacketCold {
  std::uint64_t remote_addr = 0;  // RETH address (order-tolerant reception, §4.4)
  Time echo_ts = -1;              // ACKs echo the data packet's send time (RTT)
  Time sent_at = 0;               // when the sender injected it
  std::uint64_t uid = 0;          // unique per transmission (debugging/tracing)
  std::uint32_t msn = 0;          // message sequence number (DCP)
  std::uint32_t ssn = 0;          // send sequence number (two-sided ops)
  std::uint32_t sack_psn = 0;     // PSN selectively acknowledged (IRN SACK)
  std::uint32_t emsn = 0;         // DCP ACK: expected MSN
  RdmaOp op = RdmaOp::kWrite;
  std::uint8_t retry_no = 0;      // DCP sRetryNo (timeout round)
  bool last_of_msg = false;
  bool last_of_flow = false;
  bool has_reth = false;          // RETH present (every DCP Write packet)
  bool is_retransmit = false;
};

struct PacketHot;

/// The flat by-value packet: the union of the hot and cold records, used
/// by transports, wire codecs, observers, tests and tools.  Fields are
/// ordered by size (8/4/2/1 bytes) so the struct carries zero padding.
struct Packet {
  // ---- 8-byte fields -----------------------------------------------------
  FlowId flow = 0;                // flow / QP identifier (globally unique)
  std::uint64_t remote_addr = 0;  // RETH address (order-tolerant reception)
  Time echo_ts = -1;              // ACKs echo the data packet's send time (RTT)
  Time sent_at = 0;               // when the sender injected it
  std::uint64_t uid = 0;          // unique per transmission (debugging/tracing)

  // ---- 4-byte fields -----------------------------------------------------
  NodeId src = kInvalidNode;        // originating host
  NodeId dst = kInvalidNode;        // destination host
  std::uint32_t wire_bytes = 0;     // total size on the wire
  std::uint32_t payload_bytes = 0;  // application bytes carried
  std::uint32_t psn = 0;            // packet sequence number within the flow
  std::uint32_t msn = 0;            // message sequence number (DCP)
  std::uint32_t ssn = 0;            // send sequence number (two-sided ops)
  std::uint32_t ack_psn = 0;        // cumulative ACK / expected PSN
  std::uint32_t sack_psn = 0;       // PSN selectively acknowledged (IRN SACK)
  std::uint32_t emsn = 0;           // DCP ACK: expected MSN
  std::uint32_t path_id = 0;        // entropy value; MP-RDMA virtual path
  // Switch-internal: ingress port the packet was buffered against (for
  // shared-buffer / PFC accounting).  Reset at every hop.
  std::uint32_t acct_in_port = UINT32_MAX;

  // ---- 2-byte fields -----------------------------------------------------
  std::uint16_t sport = 0;     // UDP source port (ECMP entropy)
  std::uint16_t dport = 4791;  // RoCEv2

  // ---- 1-byte fields -----------------------------------------------------
  PktType type = PktType::kData;
  DcpTag tag = DcpTag::kNonDcp;
  RdmaOp op = RdmaOp::kWrite;
  QueueClass queue_class = QueueClass::kData;
  std::uint8_t pause_class = 0;  // PFC frames: the paused priority class
  std::uint8_t retry_no = 0;     // DCP sRetryNo (timeout round)
  bool last_of_msg = false;
  bool last_of_flow = false;
  bool has_reth = false;  // RETH present (every DCP Write packet)
  bool ecn_capable = false;
  bool ecn_ce = false;  // CE mark applied by a switch
  bool is_retransmit = false;

  Packet() = default;
  /// Gather from a pooled hot/cold pair.  Implicit on purpose: it keeps
  /// every `const Packet&` call site (observers, trace hooks, transports
  /// taking the packet by value) compiling against a PacketHot, while the
  /// hot path stays explicit about where the gather happens.
  Packet(const PacketHot& h);  // NOLINT(google-explicit-constructor)

  bool is_control() const { return type != PktType::kData; }

  std::string brief() const;
};

/// Count of lazy cold-record initializations on the calling thread —
/// incremented by PacketHot::cold() only.  Test hook: proves the fabric
/// path never touches the cold record (see tests/test_packet_layout.cpp).
inline std::uint64_t& packet_cold_init_count() {
  thread_local std::uint64_t n = 0;
  return n;
}

/// The per-hop packet record: exactly the bytes switch classification,
/// egress queuing and the lane scheduler read, packed into one cache line.
/// `cold_slot` points at the permanently-paired PacketCold in the pool's
/// parallel slab; `cold_valid` says whether that record holds this
/// packet's data yet (PacketPool only initializes the hot record on
/// acquire — the cold record initializes lazily via cold() or eagerly via
/// assign()).
struct alignas(64) PacketHot {
  // ---- 8-byte fields -----------------------------------------------------
  FlowId flow = 0;
  PacketCold* cold_slot = nullptr;  // pool-owned pairing; never reassigned

  // ---- 4-byte fields -----------------------------------------------------
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t wire_bytes = 0;
  std::uint32_t payload_bytes = 0;
  std::uint32_t psn = 0;
  std::uint32_t ack_psn = 0;
  std::uint32_t path_id = 0;
  std::uint32_t acct_in_port = UINT32_MAX;

  // ---- 2-byte fields -----------------------------------------------------
  std::uint16_t sport = 0;
  std::uint16_t dport = 4791;

  // ---- 1-byte fields -----------------------------------------------------
  PktType type = PktType::kData;
  DcpTag tag = DcpTag::kNonDcp;
  QueueClass queue_class = QueueClass::kData;
  std::uint8_t pause_class = 0;
  bool ecn_capable = false;
  bool ecn_ce = false;
  bool cold_valid = false;
  // 5 bytes of tail padding up to the 64-byte alignment; adding a field
  // beyond them doubles sizeof and trips the static_assert below.

  bool is_control() const { return type != PktType::kData; }

  /// Resets the hot record to a fresh packet's defaults.  The cold record
  /// is NOT written — cold_valid=false makes cold() (and the gather)
  /// treat it as all-defaults, so a blank acquire costs one cache line.
  void init_hot() {
    PacketCold* keep = cold_slot;
    *this = PacketHot{};
    cold_slot = keep;
  }

  /// The paired cold record, initialized to defaults on first touch.
  PacketCold& cold() {
    if (!cold_valid) {
      *cold_slot = PacketCold{};
      cold_valid = true;
      ++packet_cold_init_count();
    }
    return *cold_slot;
  }

  /// Full scatter from a flat packet (the one copy a packet's lifetime
  /// pays, at injection into the pooled datapath).
  void assign(const Packet& f) {
    flow = f.flow;
    src = f.src;
    dst = f.dst;
    wire_bytes = f.wire_bytes;
    payload_bytes = f.payload_bytes;
    psn = f.psn;
    ack_psn = f.ack_psn;
    path_id = f.path_id;
    acct_in_port = f.acct_in_port;
    sport = f.sport;
    dport = f.dport;
    type = f.type;
    tag = f.tag;
    queue_class = f.queue_class;
    pause_class = f.pause_class;
    ecn_capable = f.ecn_capable;
    ecn_ce = f.ecn_ce;
    PacketCold& c = *cold_slot;
    c.remote_addr = f.remote_addr;
    c.echo_ts = f.echo_ts;
    c.sent_at = f.sent_at;
    c.uid = f.uid;
    c.msn = f.msn;
    c.ssn = f.ssn;
    c.sack_psn = f.sack_psn;
    c.emsn = f.emsn;
    c.op = f.op;
    c.retry_no = f.retry_no;
    c.last_of_msg = f.last_of_msg;
    c.last_of_flow = f.last_of_flow;
    c.has_reth = f.has_reth;
    c.is_retransmit = f.is_retransmit;
    cold_valid = true;
  }

  std::string brief() const { return Packet(*this).brief(); }
};

inline Packet::Packet(const PacketHot& h)
    : flow(h.flow),
      src(h.src),
      dst(h.dst),
      wire_bytes(h.wire_bytes),
      payload_bytes(h.payload_bytes),
      psn(h.psn),
      ack_psn(h.ack_psn),
      path_id(h.path_id),
      acct_in_port(h.acct_in_port),
      sport(h.sport),
      dport(h.dport),
      type(h.type),
      tag(h.tag),
      queue_class(h.queue_class),
      pause_class(h.pause_class),
      ecn_capable(h.ecn_capable),
      ecn_ce(h.ecn_ce) {
  // A never-touched cold record gathers as the defaults it would have been
  // initialized to — without mutating the pooled slot.
  if (h.cold_valid) {
    const PacketCold& c = *h.cold_slot;
    remote_addr = c.remote_addr;
    echo_ts = c.echo_ts;
    sent_at = c.sent_at;
    uid = c.uid;
    msn = c.msn;
    ssn = c.ssn;
    sack_psn = c.sack_psn;
    emsn = c.emsn;
    op = c.op;
    retry_no = c.retry_no;
    last_of_msg = c.last_of_msg;
    last_of_flow = c.last_of_flow;
    has_reth = c.has_reth;
    is_retransmit = c.is_retransmit;
  }
}

// The layout contract the hot path is built on.  Growth fails the build
// loudly instead of silently fattening every hop (alignas(64) rounds any
// overflow straight to 128).
static_assert(sizeof(PacketHot) == 64, "PacketHot must stay one cache line");
static_assert(alignof(PacketHot) == 64, "PacketHot must be cache-line aligned");
static_assert(sizeof(PacketCold) == 56, "PacketCold grew — check field packing");
static_assert(sizeof(Packet) == 104, "Packet grew or picked up padding");

/// Builds the ECMP hash input from the 5-tuple plus the path entropy field.
std::uint64_t ecmp_key(const Packet& p);
std::uint64_t ecmp_key(const PacketHot& p);

}  // namespace dcp
