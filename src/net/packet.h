#pragma once
// The simulated packet and the RoCEv2 + DCP header model.
//
// We do not carry payload bytes — only sizes — but every header field the
// protocols actually consult is modeled explicitly, including the DCP
// extensions of Fig. 4: the 2-bit DCP tag in the IP ToS field, the MSN,
// the SSN for two-sided operations, sRetryNo in data packets, eMSN in ACKs,
// and the RETH carried in *every* packet of a Write (not just the first).

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace dcp {

using NodeId = std::uint32_t;
using FlowId = std::uint64_t;
inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// 2-bit tag in the IP ToS field (paper §4.2).
enum class DcpTag : std::uint8_t {
  kNonDcp = 0b00,      // dropped when over threshold
  kAck = 0b01,         // DCP ACK; dropped when over threshold
  kData = 0b10,        // trimmed to header-only when over threshold
  kHeaderOnly = 0b11,  // enqueued into the control queue, never trimmed
};

enum class PktType : std::uint8_t {
  kData,        // payload-carrying data packet
  kAck,         // cumulative ACK (GBN/DCP eMSN ACK/TCP ACK)
  kSack,        // selective ACK (IRN)
  kNack,        // NAK/duplicate indication (GBN)
  kCnp,         // DCQCN congestion notification packet
  kHeaderOnly,  // trimmed data packet (switch -> receiver -> sender)
  kPfcPause,    // PFC PAUSE frame (hop-local)
  kPfcResume,   // PFC RESUME frame (hop-local)
};

/// RDMA operation carried by a data packet.
enum class RdmaOp : std::uint8_t { kWrite, kWriteWithImm, kSend };

/// Header byte sizes (paper §4.2 footnote: 57 B = 14 MAC + 20 IP + 8 UDP +
/// 12 BTH + 3 MSN).
struct HeaderSizes {
  static constexpr std::uint32_t kEth = 14;
  static constexpr std::uint32_t kIp = 20;
  static constexpr std::uint32_t kUdp = 8;
  static constexpr std::uint32_t kBth = 12;
  static constexpr std::uint32_t kMsn = 3;        // DCP MSN field
  static constexpr std::uint32_t kReth = 16;      // remote address + rkey + len
  static constexpr std::uint32_t kSsn = 3;        // DCP SSN field (two-sided)
  static constexpr std::uint32_t kAeth = 4;
  static constexpr std::uint32_t kEmsn = 3;       // DCP eMSN in ACKs

  static constexpr std::uint32_t kRoceData = kEth + kIp + kUdp + kBth;       // 54
  static constexpr std::uint32_t kDcpHeaderOnly = kRoceData + kMsn;          // 57
  static constexpr std::uint32_t kRoceAck = kEth + kIp + kUdp + kBth + kAeth;  // 58
  static constexpr std::uint32_t kDcpAck = kRoceAck + kEmsn;                 // 61
  static constexpr std::uint32_t kPfcFrame = 64;
  static constexpr std::uint32_t kCnp = kRoceAck;
};

/// Queue class at switch egress ports.
enum class QueueClass : std::uint8_t {
  kData = 0,     // normal data queue (lossy under DCP; lossless under PFC)
  kControl = 1,  // DCP control queue for header-only packets
};
inline constexpr int kNumQueueClasses = 2;

struct Packet {
  // ---- Addressing -------------------------------------------------------
  NodeId src = kInvalidNode;  // originating host
  NodeId dst = kInvalidNode;  // destination host
  std::uint16_t sport = 0;    // UDP source port (ECMP entropy)
  std::uint16_t dport = 4791; // RoCEv2
  FlowId flow = 0;            // flow / QP identifier (globally unique)

  // ---- Classification ---------------------------------------------------
  PktType type = PktType::kData;
  DcpTag tag = DcpTag::kNonDcp;
  RdmaOp op = RdmaOp::kWrite;
  QueueClass queue_class = QueueClass::kData;
  std::uint8_t pfc_class = 0;  // PFC priority class

  // ---- Sizes ------------------------------------------------------------
  std::uint32_t wire_bytes = 0;     // total size on the wire
  std::uint32_t payload_bytes = 0;  // application bytes carried

  // ---- Sequencing -------------------------------------------------------
  std::uint32_t psn = 0;       // packet sequence number within the flow
  std::uint32_t msn = 0;       // message sequence number (DCP)
  std::uint32_t ssn = 0;       // send sequence number (two-sided ops)
  std::uint32_t ack_psn = 0;   // cumulative ACK / expected PSN
  std::uint32_t sack_psn = 0;  // PSN selectively acknowledged (IRN SACK)
  std::uint32_t emsn = 0;      // DCP ACK: expected MSN
  std::uint8_t retry_no = 0;   // DCP sRetryNo (timeout round)
  Time echo_ts = -1;           // ACKs echo the data packet's send time (RTT)
  bool last_of_msg = false;
  bool last_of_flow = false;

  // ---- Order-tolerant reception (paper §4.4) ----------------------------
  bool has_reth = false;        // RETH present (every DCP Write packet)
  std::uint64_t remote_addr = 0;

  // ---- Congestion signalling --------------------------------------------
  bool ecn_capable = false;
  bool ecn_ce = false;  // CE mark applied by a switch

  // ---- Load balancing ---------------------------------------------------
  std::uint32_t path_id = 0;  // entropy value; MP-RDMA virtual path

  // ---- PFC frames (hop-local) -------------------------------------------
  std::uint8_t pause_class = 0;
  bool pause_on = false;

  // ---- Bookkeeping ------------------------------------------------------
  Time sent_at = 0;        // when the sender injected it
  std::uint64_t uid = 0;   // unique per transmission (debugging/tracing)
  bool is_retransmit = false;
  // Switch-internal: ingress port the packet was buffered against (for
  // shared-buffer / PFC accounting).  Reset at every hop.
  std::uint32_t acct_in_port = UINT32_MAX;

  bool is_control() const {
    return type != PktType::kData;
  }

  std::string brief() const;
};

/// Builds the ECMP hash input from the 5-tuple plus the path entropy field.
std::uint64_t ecmp_key(const Packet& p);

}  // namespace dcp
