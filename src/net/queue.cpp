#include "net/queue.h"

// Header-only today; this TU anchors the library target.
