#include "net/packet.h"

#include <cstdio>

#include "sim/rng.h"

namespace dcp {

std::string Packet::brief() const {
  const char* t = "?";
  switch (type) {
    case PktType::kData: t = "DATA"; break;
    case PktType::kAck: t = "ACK"; break;
    case PktType::kSack: t = "SACK"; break;
    case PktType::kNack: t = "NACK"; break;
    case PktType::kCnp: t = "CNP"; break;
    case PktType::kHeaderOnly: t = "HO"; break;
    case PktType::kPfcPause: t = "PAUSE"; break;
    case PktType::kPfcResume: t = "RESUME"; break;
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s flow=%llu %u->%u psn=%u msn=%u %uB", t,
                static_cast<unsigned long long>(flow), src, dst, psn, msn, wire_bytes);
  return buf;
}

namespace {

// Both packet representations carry the same 5-tuple; keying on a template
// keeps the two overloads bit-identical by construction.
template <typename P>
std::uint64_t ecmp_key_impl(const P& p) {
  std::uint64_t k = (static_cast<std::uint64_t>(p.src) << 32) | p.dst;
  k = mix64(k ^ (static_cast<std::uint64_t>(p.sport) << 16 | p.dport));
  k = mix64(k ^ p.flow);
  k = mix64(k ^ p.path_id);
  return k;
}

}  // namespace

std::uint64_t ecmp_key(const Packet& p) { return ecmp_key_impl(p); }
std::uint64_t ecmp_key(const PacketHot& p) { return ecmp_key_impl(p); }

}  // namespace dcp
