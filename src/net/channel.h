#pragma once
// A unidirectional point-to-point wire: fixed bandwidth + propagation delay.
// A full-duplex cable is two Channels.  The egress Port drives the channel
// (it decides when transmission starts); the Channel schedules delivery at
// the far end.

#include <cstdint>
#include <utility>

#include "net/node.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace dcp {

class Channel {
 public:
  Channel(Simulator& sim, Bandwidth bw, Time propagation)
      : sim_(sim), bw_(bw), propagation_(propagation) {}

  void connect(Node* dst, std::uint32_t dst_port) {
    dst_ = dst;
    dst_port_ = dst_port;
  }

  Bandwidth bandwidth() const { return bw_; }
  Time propagation() const { return propagation_; }
  Time serialization(std::uint32_t bytes) const { return bw_.serialize(bytes); }
  Node* peer() const { return dst_; }
  std::uint32_t peer_port() const { return dst_port_; }

  /// Schedules delivery of `pkt` at the far end, `extra` (typically the
  /// serialization time) plus the propagation delay from now.  The pooled
  /// handle rides inside the event inline — no per-hop allocation or
  /// Packet copy.
  void deliver(PacketPtr pkt, Time extra);
  void deliver(Packet pkt, Time extra) { deliver(PacketPtr::make(std::move(pkt)), extra); }

  /// A downed channel discards everything handed to it (cut fiber).
  void set_up(bool up) { up_ = up; }
  bool up() const { return up_; }

  std::uint64_t delivered_packets() const { return delivered_packets_; }
  std::uint64_t delivered_bytes() const { return delivered_bytes_; }
  std::uint64_t discarded_packets() const { return discarded_packets_; }

 private:
  Simulator& sim_;
  Bandwidth bw_;
  Time propagation_;
  Node* dst_ = nullptr;
  std::uint32_t dst_port_ = 0;
  bool up_ = true;
  std::uint64_t delivered_packets_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t discarded_packets_ = 0;
};

}  // namespace dcp
