#pragma once
// A unidirectional point-to-point wire: fixed bandwidth + propagation delay.
// A full-duplex cable is two Channels.  The egress Port drives the channel
// (it decides when transmission starts); the Channel schedules delivery at
// the far end.
//
// Delivery lane (the two-level scheduler's first level): a fixed-rate,
// fixed-latency wire delivers strictly FIFO, so instead of one heap entry
// per in-flight packet the channel parks packets in an intrusive FIFO of
// LaneRecords — each stamped at deliver() time with its absolute arrival
// time and a global tie-break sequence — and keeps only the lane HEAD in
// the simulator heap, via a persistent Timer keyed with the head's exact
// (t, seq).  Heap size becomes O(active links) instead of O(packets in
// flight), and outputs stay bit-identical to the plain path because every
// delivery consumes exactly one sequence number, exactly as schedule()
// would have at the same call site (see docs/architecture.md, "Two-level
// scheduler").  DCP_LANES=0 (or Simulator::set_use_lanes(false)) selects
// the plain one-event-per-packet path.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "check/observer.h"
#include "net/lane.h"
#include "net/node.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace dcp {

class StateIO;

/// One cross-shard delivery riding a cut channel (see sim/shard.h): the
/// packet is copied by value so the source shard's pool slot never leaves
/// its owning thread.  `seq` is provisional until the window barrier
/// remaps it; the destination shard re-pools the bytes on arrival.
/// Also reused as the plain-path (DCP_LANES=0) in-flight record, so every
/// wire occupancy is a serializable (t, seq, packet) tuple.
struct CrossRecord {
  Time t = 0;
  std::uint64_t seq = 0;
  std::uint32_t epoch = 0;
  bool corrupt = false;
  Packet pkt;
};

/// Fault state a FaultInjector (src/fault) installs on a channel.  The
/// struct is owned by the injector; the channel only holds a pointer, so
/// the fault-free fast path costs one null check.  All probability draws
/// come from `rng` — a stream dedicated to fault decisions — so enabling
/// faults never perturbs workload or switch randomness.
struct ChannelFault {
  double drop_rate = 0.0;     // BER-style loss: packet vanishes at the wire
  double corrupt_rate = 0.0;  // CRC failure: consumes the wire, dies at the far end
  int blackhole_refs = 0;     // > 0: silently discards everything (port stays routed)
  Rng* rng = nullptr;
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t blackholed = 0;

  bool active() const { return drop_rate > 0.0 || corrupt_rate > 0.0 || blackhole_refs > 0; }
};

class Channel {
 public:
  Channel(Simulator& sim, Bandwidth bw, Time propagation)
      : sim_(sim), bw_(bw), propagation_(propagation) {}
  ~Channel();

  void connect(Node* dst, std::uint32_t dst_port) {
    dst_ = dst;
    dst_port_ = dst_port;
    // Wiring-time resolution of the endpoint's concrete type: delivery
    // static-dispatches on this tag (see dispatch_receive) so the switch
    // classification inlines into the arrival path.
    dst_kind_ = dst->kind();
  }

  Bandwidth bandwidth() const { return bw_; }
  Time propagation() const { return propagation_; }
  Time serialization(std::uint32_t bytes) const { return bw_.serialize(bytes); }
  Node* peer() const { return dst_; }
  std::uint32_t peer_port() const { return dst_port_; }

  /// Schedules delivery of `pkt` at the far end, `extra` (typically the
  /// serialization time) plus the propagation delay from now.  The pooled
  /// handle rides inside a lane record (or the event inline on the plain
  /// path) — no per-hop allocation or Packet copy.  Inline: this is the
  /// per-hop injection point (once per transmit from Port and the RNIC).
  void deliver(PacketPtr pkt, Time extra) {
    // `extra` is the caller's serialization backlog; a negative value would
    // deliver before the wire was even driven.
    assert(extra >= 0 && "Channel::deliver called with negative extra time");
    if (!up_ || (fault_ != nullptr && fault_->active()) || cross_dst_sim_ != nullptr ||
        !sim_.use_lanes()) {
      deliver_slow(std::move(pkt), extra);
      return;
    }
    delivered_packets_++;
    delivered_bytes_ += pkt->wire_bytes;
    LaneRecord* r = LanePool::local().acquire();
    r->t = sim_.now() + extra + propagation_;
    r->seq = sim_.alloc_event_seq();
    r->pkt = pkt.release_raw();
    r->next = nullptr;
    r->epoch = cut_epoch_;
    r->corrupt = false;
    lane_insert(r);
  }
  void deliver(Packet pkt, Time extra) { deliver(PacketPtr::make(std::move(pkt)), extra); }

  /// A downed channel discards everything handed to it (cut fiber).
  /// Packets already on the wire at cut time follow the in-flight policy
  /// below: by default they still arrive (the photons are past the cut);
  /// with drop-in-flight they are lost too (cut at the far-end connector).
  void set_up(bool up) {
    if (!up && up_ && drop_in_flight_on_cut_) cut_epoch_++;
    up_ = up;
  }
  bool up() const { return up_; }

  /// In-flight policy for set_up(false).  Default false: packets already
  /// handed to the wire are delivered (what tests/test_failures.cpp relies
  /// on — a cut only discards *subsequent* traffic).  True: a cut also
  /// kills everything currently propagating, counted in in_flight_dropped().
  /// The cut itself is O(1) in both modes: lane records are doomed lazily
  /// (their send-time epoch no longer matches) and still reach the head at
  /// their stamped times, where they account exactly like the plain path.
  void set_drop_in_flight_on_cut(bool drop) { drop_in_flight_on_cut_ = drop; }
  bool drop_in_flight_on_cut() const { return drop_in_flight_on_cut_; }

  /// Fault-injection state (see ChannelFault).  Pass nullptr to detach.
  void set_fault(ChannelFault* f) { fault_ = f; }
  ChannelFault* fault() const { return fault_; }

  std::uint64_t delivered_packets() const { return delivered_packets_; }
  std::uint64_t delivered_bytes() const { return delivered_bytes_; }
  std::uint64_t discarded_packets() const { return discarded_packets_; }
  std::uint64_t in_flight_dropped() const { return in_flight_dropped_; }

  /// Packets currently parked in the delivery lane (0 on the plain path).
  std::size_t lane_pending() const { return lane_len_; }
  /// Lane records doomed by a drop-in-flight cut but not yet fired.
  std::size_t lane_doomed_pending() const;

  // --- Cross-shard cut edges (see sim/shard.h) -----------------------------
  // A channel whose endpoints live on different shards becomes a mailbox:
  // deliver() stamps one sequence (exactly like the lane path) and parks a
  // CrossRecord in the source-thread outbox; at the window barrier the
  // coordinator remaps the stamps, sorts the batch by (t, seq) and merges
  // it into the destination-side inbox FIFO in one pass.  Like a delivery
  // lane, only the inbox HEAD occupies the destination heap — a persistent
  // timer keyed with the head's exact (t, seq), re-armed as records pop —
  // so each record still costs exactly one fired event and accounting is
  // bit-identical to the serial paths, without one heap insert per record
  // at the barrier.

  /// Puts the channel in shard mode.  `dst_sim` is the destination shard's
  /// simulator for cut edges, nullptr for shard-internal channels (which
  /// only need their parked lane stamps remapped at barriers).
  void enable_shard_mode(Simulator* dst_sim);
  bool cross_shard() const { return cross_dst_sim_ != nullptr; }
  /// Barrier-only: commits outbox stamps and hands the batch to the
  /// destination shard (runs on the coordinator with all shards parked).
  /// Returns the number of records moved — the ShardGroup's mailbox-
  /// pressure signal for adaptive window sizing.
  std::size_t drain_cross(const SeqRemap& remap);
  std::size_t cross_pending() const {
    return outbox_.size() + (inbox_.size() - inbox_head_);
  }

  /// Checkpoint hook (sim/snapshot.h): scalar counters, parked lane
  /// records, plain-path in-flight records and cross-shard inbox records
  /// (each a (t, seq, packet) tuple re-pushed via push_keyed on load).
  /// Must run at a barrier-safe point: the outbox is empty there.
  void checkpoint(StateIO& io);

 private:
  /// Everything deliver()'s fast path punts on: downed wire, active fault
  /// state (drop/corrupt/blackhole draws), cross-shard cut edges and the
  /// DCP_LANES=0 plain path.
  void deliver_slow(PacketPtr pkt, Time extra);
  /// Far-end arrival: shared by the lane head firing and the plain-path
  /// closure, so both modes run the identical drop/corrupt/receive logic.
  void arrive(PacketPtr p, std::uint32_t epoch, bool corrupt);
  /// Hands the packet to the endpoint: a {kind, ptr} static dispatch to
  /// the final receive_fast entries, or the virtual Node::receive hop when
  /// devirtualization is off (DCP_DEVIRT=0) or the peer is a custom node.
  void dispatch_receive(PacketPtr p, Simulator& sim);
  void lane_insert(LaneRecord* r) {
    ++lane_len_;
    if (lane_head_ == nullptr) {
      lane_head_ = lane_tail_ = r;
      lane_timer_.arm_keyed_abs(r->t, r->seq);
      return;
    }
    if (lane_tail_->t <= r->t) {
      // FIFO fast path: queue-driven traffic arrives in serialization order,
      // and at equal times r's fresher sequence number keeps it behind.
      lane_tail_->next = r;
      lane_tail_ = r;
      return;
    }
    lane_insert_ooo(r);
  }
  void lane_insert_ooo(LaneRecord* r);
  void fire_lane();
  void cross_arrive_next();
  void plain_arrive_next();

  Simulator& sim_;
  Bandwidth bw_;
  Time propagation_;
  Node* dst_ = nullptr;
  std::uint32_t dst_port_ = 0;
  NodeKind dst_kind_ = NodeKind::kOther;
  bool up_ = true;
  bool drop_in_flight_on_cut_ = false;
  std::uint32_t cut_epoch_ = 0;  // bumped by drop-in-flight cuts
  ChannelFault* fault_ = nullptr;
  std::uint64_t delivered_packets_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t discarded_packets_ = 0;
  std::uint64_t in_flight_dropped_ = 0;

  // Cross-shard mailbox: outbox_ is appended by the source shard thread
  // during windows; inbox_ is kept sorted ascending by (t, seq) from
  // inbox_head_ on, merged into by the barrier coordinator and consumed
  // front-to-back by the destination shard thread via cross_timer_ — the
  // phases never overlap, and the barrier's release/acquire pair publishes
  // each side's writes to the other.
  Simulator* cross_dst_sim_ = nullptr;
  std::vector<CrossRecord> outbox_;
  std::vector<CrossRecord> inbox_;
  std::size_t inbox_head_ = 0;
  // Persistent keyed timer on the DESTINATION shard's simulator mirroring
  // the inbox head (created by enable_shard_mode — the destination is not
  // known at construction).
  std::unique_ptr<Timer> cross_timer_;

  // Plain-path (DCP_LANES=0) in-flight frames: a (t, seq) min-heap popped
  // by plain_arrive_next(), one keyed heap event per record.  Keeping the
  // packet in an inspectable record instead of an event closure is what
  // makes the wire serializable.
  std::vector<CrossRecord> inflight_;

  // Delivery lane: intrusive FIFO, earliest first; the head's (t, seq) is
  // mirrored by lane_timer_ whenever the lane is non-empty.
  LaneRecord* lane_head_ = nullptr;
  LaneRecord* lane_tail_ = nullptr;
  std::size_t lane_len_ = 0;
  Timer lane_timer_{sim_, [this] { fire_lane(); }};
};

}  // namespace dcp
