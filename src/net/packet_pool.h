#pragma once
// A freelist pool of pooled packet records and the owning handle that
// moves them through the datapath.
//
// The seed simulator copied the ~130-byte Packet struct at every stage of
// every hop: into the egress FifoQueue, out of it, into the delivery
// closure (which std::function heap-allocated), and into the receiver.
// With the pool, a packet is materialized once at injection and then a
// single 8-byte PacketPtr travels through queues, events, and channels;
// dropping a packet (tail-drop, link down, trim-refused) is just letting
// the handle die, which recycles the slot.
//
// Storage is structure-of-arrays: each pool slot is a PacketHot (one
// cache line — everything the switch/port/lane path reads) permanently
// paired with a PacketCold in a parallel slab (host-transport fields,
// initialized lazily).  A blank acquire writes only the hot line; the
// cold record is first touched at injection (assign) or on demand
// (cold()) — a packet that dies in the fabric never pulls its cold line
// into cache.
//
// The pool is thread-local: simulations on the same thread share one
// freelist (harmless — packets are pure value state and nothing in the
// simulator depends on slot addresses), while simulations on different
// threads never contend.  Slabs are chunked and never shrink, so the
// steady-state acquire/release cycle performs zero heap allocations.
//
// Thread exit does NOT free the slabs: a shard worker's packets can still
// be in flight when the ShardGroup joins the thread (teardown releases
// them on the coordinator, into *its* freelist), so a dying pool donates
// its slabs and unclaimed slots to a process-wide retired store that new
// pools draw from before allocating fresh slabs.  Donated hot slots keep
// their cold_slot pairing; the paired cold slabs park in the cold store
// purely to stay alive.  See pool_retire.h.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "net/packet.h"

namespace dcp {

class PacketPool {
 public:
  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t releases = 0;
    std::size_t slots = 0;    // total slots ever allocated
    std::size_t in_use = 0;   // currently checked out
  };

  /// The calling thread's pool.
  static PacketPool& local();

  PacketPool() = default;
  ~PacketPool();
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  PacketHot* acquire() {
    if (free_.empty()) grow();
    PacketHot* p = free_.back();
    free_.pop_back();
    ++acquires_;
    return p;
  }

  void release(PacketHot* p) {
    ++releases_;
    free_.push_back(p);
  }

  Stats stats() const {
    // Cross-thread teardown releases can park foreign-slab slots in this
    // freelist, so clamp rather than underflow.
    return Stats{acquires_, releases_, slots_,
                 free_.size() >= slots_ ? 0 : slots_ - free_.size()};
  }

  /// Slab footprint of every slot this pool has ever acquired (hot + cold
  /// records, including slots adopted from the retired store — their slabs
  /// live elsewhere but the memory is held on this pool's behalf).
  std::uint64_t arena_bytes() const {
    return static_cast<std::uint64_t>(slots_) * (sizeof(PacketHot) + sizeof(PacketCold));
  }

 private:
  // Chunks grow geometrically (512 slots doubling to a 64Ki cap): a 10k-host
  // fat-tree with ~1M packets in flight takes ~30 slab allocations instead
  // of ~2000, while small runs keep the historical one-page footprint.
  static constexpr std::size_t kChunkPackets = 512;
  static constexpr std::size_t kMaxChunkPackets = 65536;

  void grow();

  std::vector<std::unique_ptr<PacketHot[]>> chunks_;
  // Parallel slabs: chunk i's slot j is paired with cold_chunks_[i][j] at
  // allocation time and the pairing never changes.
  std::vector<std::unique_ptr<PacketCold[]>> cold_chunks_;
  std::vector<PacketHot*> free_;
  std::size_t slots_ = 0;        // owned + reclaimed (chunk sizes vary)
  std::size_t next_chunk_ = kChunkPackets;
  std::size_t reclaimed_ = 0;  // slots adopted from the retired store
  std::uint64_t acquires_ = 0;
  std::uint64_t releases_ = 0;
};

/// Move-only owning handle to a pooled packet.  8 bytes; returns the slot
/// to the thread-local pool when it goes out of scope.  Dereferencing
/// yields the hot record; `Packet flat(*ptr)` gathers the full packet and
/// `ptr->cold()` reaches the cold fields directly.
class PacketPtr {
 public:
  PacketPtr() = default;

  /// A fresh default packet from the pool.  Initializes the HOT record
  /// only — the cold record stays untouched until cold()/assign() (a
  /// packet dropped in the fabric never writes those bytes).
  static PacketPtr make() {
    PacketPtr p(PacketPool::local().acquire());
    p.p_->init_hot();
    return p;
  }

  /// A pooled copy of `src` (the one full scatter a packet's lifetime
  /// pays, at injection into the datapath).
  static PacketPtr make(const Packet& src) {
    PacketPtr p(PacketPool::local().acquire());
    p.p_->assign(src);
    return p;
  }
  static PacketPtr make(Packet&& src) { return make(static_cast<const Packet&>(src)); }

  PacketPtr(PacketPtr&& other) noexcept : p_(other.p_) { other.p_ = nullptr; }
  PacketPtr& operator=(PacketPtr&& other) noexcept {
    if (this != &other) {
      reset();
      p_ = other.p_;
      other.p_ = nullptr;
    }
    return *this;
  }
  PacketPtr(const PacketPtr&) = delete;
  PacketPtr& operator=(const PacketPtr&) = delete;
  ~PacketPtr() { reset(); }

  void reset() {
    if (p_ != nullptr) {
      PacketPool::local().release(p_);
      p_ = nullptr;
    }
  }

  PacketHot& operator*() const { return *p_; }
  PacketHot* operator->() const { return p_; }
  PacketHot* get() const { return p_; }
  explicit operator bool() const { return p_ != nullptr; }

  /// Detaches the raw pooled pointer without releasing it — for intrusive
  /// structures (delivery-lane records) that park packets outside a handle.
  /// The caller owns the slot until it re-wraps it with adopt().
  PacketHot* release_raw() {
    PacketHot* p = p_;
    p_ = nullptr;
    return p;
  }

  /// Re-wraps a pointer previously taken via release_raw().
  static PacketPtr adopt(PacketHot* p) { return PacketPtr(p); }

 private:
  explicit PacketPtr(PacketHot* p) : p_(p) {}

  PacketHot* p_ = nullptr;
};

static_assert(std::is_trivially_copyable_v<Packet> &&
                  std::is_trivially_copyable_v<PacketHot> &&
                  std::is_trivially_copyable_v<PacketCold>,
              "packet records must stay plain value types: the pool recycles "
              "slots by assignment and never runs destructors");

}  // namespace dcp
