#pragma once
// A freelist pool of Packet objects and the owning handle that moves them
// through the datapath.
//
// The seed simulator copied the ~130-byte Packet struct at every stage of
// every hop: into the egress FifoQueue, out of it, into the delivery
// closure (which std::function heap-allocated), and into the receiver.
// With the pool, a packet is materialized once at injection and then a
// single 8-byte PacketPtr travels through queues, events, and channels;
// dropping a packet (tail-drop, link down, trim-refused) is just letting
// the handle die, which recycles the slot.
//
// The pool is thread-local: simulations on the same thread share one
// freelist (harmless — packets are pure value state and nothing in the
// simulator depends on slot addresses), while simulations on different
// threads never contend.  Slabs are chunked and never shrink, so the
// steady-state acquire/release cycle performs zero heap allocations.
//
// Thread exit does NOT free the slabs: a shard worker's packets can still
// be in flight when the ShardGroup joins the thread (teardown releases
// them on the coordinator, into *its* freelist), so a dying pool donates
// its slabs and unclaimed slots to a process-wide retired store that new
// pools draw from before allocating fresh slabs.  See pool_retire.h.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "net/packet.h"

namespace dcp {

class PacketPool {
 public:
  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t releases = 0;
    std::size_t slots = 0;    // total slots ever allocated
    std::size_t in_use = 0;   // currently checked out
  };

  /// The calling thread's pool.
  static PacketPool& local();

  PacketPool() = default;
  ~PacketPool();
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  Packet* acquire() {
    if (free_.empty()) grow();
    Packet* p = free_.back();
    free_.pop_back();
    ++acquires_;
    return p;
  }

  void release(Packet* p) {
    ++releases_;
    free_.push_back(p);
  }

  Stats stats() const {
    // Cross-thread teardown releases can park foreign-slab slots in this
    // freelist, so clamp rather than underflow.
    const std::size_t slots = chunks_.size() * kChunkPackets + reclaimed_;
    return Stats{acquires_, releases_, slots,
                 free_.size() >= slots ? 0 : slots - free_.size()};
  }

 private:
  static constexpr std::size_t kChunkPackets = 512;

  void grow();

  std::vector<std::unique_ptr<Packet[]>> chunks_;
  std::vector<Packet*> free_;
  std::size_t reclaimed_ = 0;  // slots adopted from the retired store
  std::uint64_t acquires_ = 0;
  std::uint64_t releases_ = 0;
};

/// Move-only owning handle to a pooled Packet.  8 bytes; returns the
/// packet to the thread-local pool when it goes out of scope.
class PacketPtr {
 public:
  PacketPtr() = default;

  /// A fresh default-initialized packet from the pool.
  static PacketPtr make() {
    PacketPtr p(PacketPool::local().acquire());
    *p.p_ = Packet{};
    return p;
  }

  /// A pooled copy of `src` (the one copy a packet's lifetime pays, at
  /// injection into the datapath).
  static PacketPtr make(Packet&& src) {
    PacketPtr p(PacketPool::local().acquire());
    *p.p_ = src;
    return p;
  }
  static PacketPtr make(const Packet& src) {
    PacketPtr p(PacketPool::local().acquire());
    *p.p_ = src;
    return p;
  }

  PacketPtr(PacketPtr&& other) noexcept : p_(other.p_) { other.p_ = nullptr; }
  PacketPtr& operator=(PacketPtr&& other) noexcept {
    if (this != &other) {
      reset();
      p_ = other.p_;
      other.p_ = nullptr;
    }
    return *this;
  }
  PacketPtr(const PacketPtr&) = delete;
  PacketPtr& operator=(const PacketPtr&) = delete;
  ~PacketPtr() { reset(); }

  void reset() {
    if (p_ != nullptr) {
      PacketPool::local().release(p_);
      p_ = nullptr;
    }
  }

  Packet& operator*() const { return *p_; }
  Packet* operator->() const { return p_; }
  Packet* get() const { return p_; }
  explicit operator bool() const { return p_ != nullptr; }

  /// Detaches the raw pooled pointer without releasing it — for intrusive
  /// structures (delivery-lane records) that park packets outside a handle.
  /// The caller owns the slot until it re-wraps it with adopt().
  Packet* release_raw() {
    Packet* p = p_;
    p_ = nullptr;
    return p;
  }

  /// Re-wraps a pointer previously taken via release_raw().
  static PacketPtr adopt(Packet* p) { return PacketPtr(p); }

 private:
  explicit PacketPtr(Packet* p) : p_(p) {}

  Packet* p_ = nullptr;
};

static_assert(std::is_trivially_copyable_v<Packet>,
              "Packet must stay a plain value type: the pool recycles slots "
              "by assignment and never runs destructors");

}  // namespace dcp
