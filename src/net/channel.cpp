#include "net/channel.h"

#include <algorithm>
#include <cassert>

#include "check/observer.h"
#include "sim/snapshot.h"
// The two concrete datapath endpoints, for the static dispatch in
// dispatch_receive (both are final; their receive_fast entries are
// header-visible so switch classification inlines into delivery).
#include "host/host.h"
#include "switch/switch.h"

namespace dcp {

void Channel::dispatch_receive(PacketPtr p, Simulator& sim) {
  // `sim` is the simulator executing this arrival (the destination shard's
  // on cut edges); DCP_DEVIRT is process-wide, so every shard agrees.
  if (sim.use_devirt()) {
    switch (dst_kind_) {
      case NodeKind::kSwitch:
        static_cast<Switch*>(dst_)->receive_fast(std::move(p), dst_port_);
        return;
      case NodeKind::kHost:
        static_cast<Host*>(dst_)->receive_fast(std::move(p), dst_port_);
        return;
      case NodeKind::kOther:
        break;  // test sinks / tools: only the virtual hop exists
    }
  }
  dst_->receive(std::move(p), dst_port_);
}

Channel::~Channel() {
  // Drain parked records so their packet slots return to the pool.  The
  // lane timer's own slot is released by its member destructor afterwards.
  LaneRecord* r = lane_head_;
  while (r != nullptr) {
    LaneRecord* next = r->next;
    PacketPtr::adopt(r->pkt);  // handle dies immediately, recycling the slot
    LanePool::local().release(r);
    r = next;
  }
}

void Channel::deliver_slow(PacketPtr pkt, Time extra) {
  if (!up_) {
    if (CheckObserver* ob = sim_.check_observer()) {
      ob->on_drop(DropSite::kWireDown, kInvalidNode, *pkt);
    }
    discarded_packets_++;
    return;  // the dying handle recycles the packet
  }
  if (fault_ != nullptr && fault_->active()) {
    if (fault_->blackhole_refs > 0) {
      if (CheckObserver* ob = sim_.check_observer()) {
        ob->on_drop(DropSite::kWireBlackhole, kInvalidNode, *pkt);
      }
      fault_->blackholed++;
      discarded_packets_++;
      return;
    }
    if (fault_->drop_rate > 0.0 && fault_->rng->chance(fault_->drop_rate)) {
      if (CheckObserver* ob = sim_.check_observer()) {
        ob->on_drop(DropSite::kWireRandom, kInvalidNode, *pkt);
      }
      fault_->dropped++;
      discarded_packets_++;
      return;
    }
  }
  // Corruption is decided now (deterministic draw order) but takes effect at
  // the far end: the frame occupies the wire, then fails CRC on arrival.
  const bool corrupt =
      fault_ != nullptr && fault_->corrupt_rate > 0.0 && fault_->rng->chance(fault_->corrupt_rate);
  delivered_packets_++;
  delivered_bytes_ += pkt->wire_bytes;
  const std::uint32_t epoch = cut_epoch_;

  if (cross_dst_sim_ != nullptr) {
    // Cut edge: copy the packet out of the source shard's pool and park it
    // until the barrier.  One sequence per delivery, same as both paths
    // below, keeps the merged order bit-identical to the serial run.
    CrossRecord cr;
    cr.t = sim_.now() + extra + propagation_;
    cr.seq = sim_.alloc_event_seq();
    cr.epoch = epoch;
    cr.corrupt = corrupt;
    cr.pkt = *pkt;
    outbox_.push_back(std::move(cr));
    return;  // the dying handle recycles the source-side slot
  }

  if (!sim_.use_lanes()) {
    // Plain path: one heap entry per packet.  The packet parks in an
    // in-flight record rather than the event closure (so a snapshot can
    // serialize the wire); the explicit alloc_event_seq consumes exactly
    // the sequence schedule() would have, keeping firing order identical.
    CrossRecord cr;
    cr.t = sim_.now() + extra + propagation_;
    cr.seq = sim_.alloc_event_seq();
    cr.epoch = epoch;
    cr.corrupt = corrupt;
    cr.pkt = *pkt;
    const Time t = cr.t;
    const std::uint64_t seq = cr.seq;
    inflight_.push_back(std::move(cr));
    std::push_heap(inflight_.begin(), inflight_.end(), [](const CrossRecord& a, const CrossRecord& b) {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    });
    sim_.schedule_cross(t, seq, [this] { plain_arrive_next(); });
    return;
  }

  LaneRecord* r = LanePool::local().acquire();
  r->t = sim_.now() + extra + propagation_;
  r->seq = sim_.alloc_event_seq();
  r->pkt = pkt.release_raw();
  r->next = nullptr;
  r->epoch = epoch;
  r->corrupt = corrupt;
  lane_insert(r);
}

void Channel::arrive(PacketPtr p, std::uint32_t epoch, bool corrupt) {
  if (epoch != cut_epoch_) {
    if (CheckObserver* ob = sim_.check_observer()) {
      ob->on_drop(DropSite::kWireCutInFlight, kInvalidNode, *p);
    }
    in_flight_dropped_++;  // a drop-in-flight cut happened mid-wire
    return;
  }
  if (corrupt) {
    if (CheckObserver* ob = sim_.check_observer()) {
      ob->on_drop(DropSite::kWireCorrupt, kInvalidNode, *p);
    }
    if (fault_ != nullptr) fault_->corrupted++;
    return;
  }
  dispatch_receive(std::move(p), sim_);
}

void Channel::lane_insert_ooo(LaneRecord* r) {
  // Reached only from lane_insert's inline fast paths: the lane is
  // non-empty and r lands strictly before the tail.
  if (r->t < lane_head_->t) {
    // An out-of-band frame (PFC PAUSE via Port::send_oob) overtaking the
    // in-flight backlog: new head, so the heap mirror must be re-keyed.
    r->next = lane_head_;
    lane_head_ = r;
    lane_timer_.arm_keyed_abs(r->t, r->seq);
    return;
  }
  // Rare middle insert (short OOB frame landing between queued MTU frames):
  // after the last record with t <= r->t, preserving FIFO among equal times.
  LaneRecord* n = lane_head_;
  while (n->next != nullptr && n->next->t <= r->t) n = n->next;
  r->next = n->next;
  n->next = r;
}

void Channel::fire_lane() {
  LaneRecord* r = lane_head_;
  for (;;) {
    // Pop, then re-arm for the remaining head BEFORE running the arrival
    // path: arrivals can re-enter deliver() on this same channel (zero-
    // propagation loops), and lane_insert relies on "head present => timer
    // armed with the head's key".
    lane_head_ = r->next;
    if (lane_head_ == nullptr) {
      lane_tail_ = nullptr;
    } else {
      lane_timer_.arm_keyed_abs(lane_head_->t, lane_head_->seq);
    }
    --lane_len_;
    const std::uint32_t epoch = r->epoch;
    const bool corrupt = r->corrupt;
    PacketPtr p = PacketPtr::adopt(r->pkt);
    r->pkt = nullptr;
    LanePool::local().release(r);
    arrive(std::move(p), epoch, corrupt);

    // Same-time run coalescing: deliver the next record without a heap
    // round trip iff it is due NOW, the run loop was not stopped, and
    // nothing else anywhere in the simulation precedes it.  The armed
    // timer IS the candidate heap top, so it is pulled out before probing.
    LaneRecord* next = lane_head_;
    if (next == nullptr || next->t != sim_.now() || sim_.stop_requested()) return;
    lane_timer_.cancel();
    if (!sim_.lane_may_run(next->t, next->seq)) {
      lane_timer_.arm_keyed_abs(next->t, next->seq);
      return;
    }
    sim_.note_coalesced_event(next->t, next->seq);  // the plain heap would have popped one event
    r = next;
  }
}

void Channel::enable_shard_mode(Simulator* dst_sim) {
  cross_dst_sim_ = dst_sim;
  if (dst_sim != nullptr && cross_timer_ == nullptr) {
    cross_timer_ = std::make_unique<Timer>(*dst_sim, [this] { cross_arrive_next(); });
  }
  // Parked lane and plain-path in-flight records carry window-provisional
  // stamps; commit them at every barrier (the heap mirror is rewritten by
  // end_shard_window; the per-shard remap is order-preserving, so the
  // inflight_ heap stays valid in place).
  sim_.add_seq_remap_hook([this](const SeqRemap& remap) {
    for (LaneRecord* r = lane_head_; r != nullptr; r = r->next) r->seq = remap(r->seq);
    for (CrossRecord& r : inflight_) r.seq = remap(r.seq);
  });
}

void Channel::plain_arrive_next() {
  // Events fire in (t, seq) order and each maps to exactly one record, so
  // the minimum remaining record is the one this event was scheduled for.
  auto later = [](const CrossRecord& a, const CrossRecord& b) {
    return a.t != b.t ? a.t > b.t : a.seq > b.seq;
  };
  assert(!inflight_.empty());
  std::pop_heap(inflight_.begin(), inflight_.end(), later);
  CrossRecord rec = std::move(inflight_.back());
  inflight_.pop_back();
  arrive(PacketPtr::make(std::move(rec.pkt)), rec.epoch, rec.corrupt);
}

std::size_t Channel::drain_cross(const SeqRemap& remap) {
  const std::size_t moved = outbox_.size();
  if (moved == 0) return 0;
  auto earlier = [](const CrossRecord& a, const CrossRecord& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  };
  // Commit the window's stamps, then sort the batch once: delivery times
  // are near-monotone (the clock advances; only serialization backlog
  // reorders), so this is almost always a no-op pass.
  for (CrossRecord& r : outbox_) r.seq = remap(r.seq);
  std::sort(outbox_.begin(), outbox_.end(), earlier);
  // Drop the consumed prefix, then splice the batch in one merge pass —
  // leftover records (arrival times beyond the windows run so far) stay
  // sorted relative to the newcomers.
  if (inbox_head_ > 0) {
    inbox_.erase(inbox_.begin(), inbox_.begin() + static_cast<std::ptrdiff_t>(inbox_head_));
    inbox_head_ = 0;
  }
  const std::size_t mid = inbox_.size();
  inbox_.insert(inbox_.end(), std::make_move_iterator(outbox_.begin()),
                std::make_move_iterator(outbox_.end()));
  std::inplace_merge(inbox_.begin(), inbox_.begin() + static_cast<std::ptrdiff_t>(mid),
                     inbox_.end(), earlier);
  outbox_.clear();
  // Mirror the (possibly new) head: one heap entry per channel, not per
  // record.  Re-arming with an existing key never consumes a sequence.
  cross_timer_->arm_keyed_abs(inbox_.front().t, inbox_.front().seq);
  return moved;
}

void Channel::cross_arrive_next() {
  // The timer fires with the head's exact (t, seq); re-arm for the next
  // record BEFORE dispatching, preserving "records pending => timer armed
  // with the head's key".
  assert(inbox_head_ < inbox_.size());
  CrossRecord rec = std::move(inbox_[inbox_head_]);
  ++inbox_head_;
  if (inbox_head_ == inbox_.size()) {
    inbox_.clear();
    inbox_head_ = 0;
  } else {
    cross_timer_->arm_keyed_abs(inbox_[inbox_head_].t, inbox_[inbox_head_].seq);
  }
  // Re-pool on the destination shard's thread, then run the shared far-end
  // logic.  Observer hooks go through the destination simulator: that is
  // the one executing this event.
  PacketPtr p = PacketPtr::make(std::move(rec.pkt));
  if (rec.epoch != cut_epoch_) {
    if (CheckObserver* ob = cross_dst_sim_->check_observer()) {
      ob->on_drop(DropSite::kWireCutInFlight, kInvalidNode, *p);
    }
    in_flight_dropped_++;
    return;
  }
  if (rec.corrupt) {
    if (CheckObserver* ob = cross_dst_sim_->check_observer()) {
      ob->on_drop(DropSite::kWireCorrupt, kInvalidNode, *p);
    }
    if (fault_ != nullptr) fault_->corrupted++;
    return;
  }
  dispatch_receive(std::move(p), *cross_dst_sim_);
}

void Channel::checkpoint(StateIO& io) {
  io.label(0xC4A17E1u);
  io.pod(up_);
  io.pod(drop_in_flight_on_cut_);
  io.pod(cut_epoch_);
  io.pod(delivered_packets_);
  io.pod(delivered_bytes_);
  io.pod(discarded_packets_);
  io.pod(in_flight_dropped_);
  if (io.saving() && !outbox_.empty()) {
    io.fail("channel outbox non-empty at snapshot (not a barrier-safe point)");
    return;
  }

  // Delivery lane, in FIFO order.  The lane timer's arm is derivable (it
  // always mirrors the head's key), so it is re-armed rather than saved.
  std::uint64_t n = lane_len_;
  io.pod(n);
  if (io.saving()) {
    for (LaneRecord* r = lane_head_; r != nullptr; r = r->next) {
      Time t = r->t;
      std::uint64_t seq = r->seq;
      std::uint32_t epoch = r->epoch;
      std::uint8_t corrupt = r->corrupt ? 1 : 0;
      Packet flat(*r->pkt);
      io.pod(t);
      io.seq(seq);
      io.pod(epoch);
      io.pod(corrupt);
      io.pod(flat);
    }
  } else {
    if (lane_head_ != nullptr) {
      io.fail("restore target lane non-empty");
      return;
    }
    for (std::uint64_t i = 0; i < n && io.ok(); ++i) {
      Time t = 0;
      std::uint64_t seq = 0;
      std::uint32_t epoch = 0;
      std::uint8_t corrupt = 0;
      Packet flat;
      io.pod(t);
      io.seq(seq);
      io.pod(epoch);
      io.pod(corrupt);
      io.pod(flat);
      if (!io.ok()) break;
      LaneRecord* r = LanePool::local().acquire();
      r->t = t;
      r->seq = seq;
      r->epoch = epoch;
      r->corrupt = corrupt != 0;
      r->pkt = PacketPtr::make(flat).release_raw();
      r->next = nullptr;
      if (lane_head_ == nullptr) {
        lane_head_ = lane_tail_ = r;
      } else {
        lane_tail_->next = r;
        lane_tail_ = r;
      }
      ++lane_len_;
    }
    if (io.ok() && lane_head_ != nullptr) {
      lane_timer_.arm_keyed_abs(lane_head_->t, lane_head_->seq);
    }
  }

  // Plain-path in-flight records and the cross-shard inbox: serialized
  // sorted ascending by (t, seq) — a sorted array is a valid heap under
  // the max-`later` comparator (and the canonical inbox FIFO order), so
  // the load-side arrangement is canonical and a re-save reproduces the
  // image byte-for-byte.
  auto rec_io = [&io](CrossRecord& r) {
    io.pod(r.t);
    io.seq(r.seq);
    io.pod(r.epoch);
    io.pod(r.corrupt);
    io.pod(r.pkt);
  };
  auto sorted_save = [&](std::vector<CrossRecord>& heap) {
    std::vector<CrossRecord> recs = heap;
    std::sort(recs.begin(), recs.end(), [](const CrossRecord& a, const CrossRecord& b) {
      return a.t != b.t ? a.t < b.t : a.seq < b.seq;
    });
    std::uint64_t m = recs.size();
    io.pod(m);
    for (CrossRecord& r : recs) rec_io(r);
  };
  auto plain_load = [&](std::vector<CrossRecord>& heap) {
    std::uint64_t m = 0;
    io.pod(m);
    if (!io.ok()) return;
    if (!heap.empty()) {
      io.fail("restore target wire non-empty");
      return;
    }
    for (std::uint64_t i = 0; i < m && io.ok(); ++i) {
      CrossRecord r;
      rec_io(r);
      if (!io.ok()) break;
      sim_.schedule_cross(r.t, r.seq, [this] { plain_arrive_next(); });
      heap.push_back(std::move(r));
    }
  };
  if (io.saving()) {
    sorted_save(inflight_);
    // The consumed prefix is dead state; the live suffix is already in
    // canonical ascending order.
    std::uint64_t m = inbox_.size() - inbox_head_;
    io.pod(m);
    for (std::size_t i = inbox_head_; i < inbox_.size(); ++i) rec_io(inbox_[i]);
  } else {
    plain_load(inflight_);
    std::uint64_t m = 0;
    io.pod(m);
    if (io.ok() && (!inbox_.empty() || inbox_head_ != 0)) {
      io.fail("restore target wire non-empty");
    }
    for (std::uint64_t i = 0; i < m && io.ok(); ++i) {
      CrossRecord r;
      rec_io(r);
      if (!io.ok()) break;
      if (cross_timer_ == nullptr) {
        io.fail("cross records without a destination shard");
        break;
      }
      inbox_.push_back(std::move(r));
    }
    // One heap entry mirrors the head, exactly as drain_cross leaves it.
    if (io.ok() && !inbox_.empty()) {
      cross_timer_->arm_keyed_abs(inbox_.front().t, inbox_.front().seq);
    }
  }
}

std::size_t Channel::lane_doomed_pending() const {
  std::size_t doomed = 0;
  for (const LaneRecord* r = lane_head_; r != nullptr; r = r->next) {
    if (r->epoch != cut_epoch_) ++doomed;
  }
  return doomed;
}

}  // namespace dcp
