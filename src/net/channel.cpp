#include "net/channel.h"

namespace dcp {

void Channel::deliver(PacketPtr pkt, Time extra) {
  if (!up_) {
    discarded_packets_++;
    return;  // the dying handle recycles the packet
  }
  delivered_packets_++;
  delivered_bytes_ += pkt->wire_bytes;
  sim_.schedule(extra + propagation_,
                [dst = dst_, port = dst_port_, p = std::move(pkt)]() mutable {
                  dst->receive(std::move(p), port);
                });
}

}  // namespace dcp
