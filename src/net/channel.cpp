#include "net/channel.h"

namespace dcp {

void Channel::deliver(Packet pkt, Time extra) {
  if (!up_) {
    discarded_packets_++;
    return;
  }
  delivered_packets_++;
  delivered_bytes_ += pkt.wire_bytes;
  Node* dst = dst_;
  const std::uint32_t port = dst_port_;
  sim_.schedule(extra + propagation_, [dst, port, p = std::move(pkt)]() mutable {
    dst->receive(std::move(p), port);
  });
}

}  // namespace dcp
