#include "net/channel.h"

#include "check/observer.h"

namespace dcp {

void Channel::deliver(PacketPtr pkt, Time extra) {
  if (!up_) {
    if (CheckObserver* ob = sim_.check_observer()) {
      ob->on_drop(DropSite::kWireDown, kInvalidNode, *pkt);
    }
    discarded_packets_++;
    return;  // the dying handle recycles the packet
  }
  if (fault_ != nullptr && fault_->active()) {
    if (fault_->blackhole_refs > 0) {
      if (CheckObserver* ob = sim_.check_observer()) {
        ob->on_drop(DropSite::kWireBlackhole, kInvalidNode, *pkt);
      }
      fault_->blackholed++;
      discarded_packets_++;
      return;
    }
    if (fault_->drop_rate > 0.0 && fault_->rng->chance(fault_->drop_rate)) {
      if (CheckObserver* ob = sim_.check_observer()) {
        ob->on_drop(DropSite::kWireRandom, kInvalidNode, *pkt);
      }
      fault_->dropped++;
      discarded_packets_++;
      return;
    }
  }
  // Corruption is decided now (deterministic draw order) but takes effect at
  // the far end: the frame occupies the wire, then fails CRC on arrival.
  const bool corrupt =
      fault_ != nullptr && fault_->corrupt_rate > 0.0 && fault_->rng->chance(fault_->corrupt_rate);
  delivered_packets_++;
  delivered_bytes_ += pkt->wire_bytes;
  const std::uint32_t epoch = cut_epoch_;
  sim_.schedule(extra + propagation_,
                [this, epoch, corrupt, p = std::move(pkt)]() mutable {
                  if (epoch != cut_epoch_) {
                    if (CheckObserver* ob = sim_.check_observer()) {
                      ob->on_drop(DropSite::kWireCutInFlight, kInvalidNode, *p);
                    }
                    in_flight_dropped_++;  // a drop-in-flight cut happened mid-wire
                    return;
                  }
                  if (corrupt) {
                    if (CheckObserver* ob = sim_.check_observer()) {
                      ob->on_drop(DropSite::kWireCorrupt, kInvalidNode, *p);
                    }
                    if (fault_ != nullptr) fault_->corrupted++;
                    return;
                  }
                  dst_->receive(std::move(p), dst_port_);
                });
}

}  // namespace dcp
