#include "net/channel.h"

#include <algorithm>
#include <cassert>

#include "check/observer.h"
// The two concrete datapath endpoints, for the static dispatch in
// dispatch_receive (both are final; their receive_fast entries are
// header-visible so switch classification inlines into delivery).
#include "host/host.h"
#include "switch/switch.h"

namespace dcp {

void Channel::dispatch_receive(PacketPtr p, Simulator& sim) {
  // `sim` is the simulator executing this arrival (the destination shard's
  // on cut edges); DCP_DEVIRT is process-wide, so every shard agrees.
  if (sim.use_devirt()) {
    switch (dst_kind_) {
      case NodeKind::kSwitch:
        static_cast<Switch*>(dst_)->receive_fast(std::move(p), dst_port_);
        return;
      case NodeKind::kHost:
        static_cast<Host*>(dst_)->receive_fast(std::move(p), dst_port_);
        return;
      case NodeKind::kOther:
        break;  // test sinks / tools: only the virtual hop exists
    }
  }
  dst_->receive(std::move(p), dst_port_);
}

Channel::~Channel() {
  // Drain parked records so their packet slots return to the pool.  The
  // lane timer's own slot is released by its member destructor afterwards.
  LaneRecord* r = lane_head_;
  while (r != nullptr) {
    LaneRecord* next = r->next;
    PacketPtr::adopt(r->pkt);  // handle dies immediately, recycling the slot
    LanePool::local().release(r);
    r = next;
  }
}

void Channel::deliver_slow(PacketPtr pkt, Time extra) {
  if (!up_) {
    if (CheckObserver* ob = sim_.check_observer()) {
      ob->on_drop(DropSite::kWireDown, kInvalidNode, *pkt);
    }
    discarded_packets_++;
    return;  // the dying handle recycles the packet
  }
  if (fault_ != nullptr && fault_->active()) {
    if (fault_->blackhole_refs > 0) {
      if (CheckObserver* ob = sim_.check_observer()) {
        ob->on_drop(DropSite::kWireBlackhole, kInvalidNode, *pkt);
      }
      fault_->blackholed++;
      discarded_packets_++;
      return;
    }
    if (fault_->drop_rate > 0.0 && fault_->rng->chance(fault_->drop_rate)) {
      if (CheckObserver* ob = sim_.check_observer()) {
        ob->on_drop(DropSite::kWireRandom, kInvalidNode, *pkt);
      }
      fault_->dropped++;
      discarded_packets_++;
      return;
    }
  }
  // Corruption is decided now (deterministic draw order) but takes effect at
  // the far end: the frame occupies the wire, then fails CRC on arrival.
  const bool corrupt =
      fault_ != nullptr && fault_->corrupt_rate > 0.0 && fault_->rng->chance(fault_->corrupt_rate);
  delivered_packets_++;
  delivered_bytes_ += pkt->wire_bytes;
  const std::uint32_t epoch = cut_epoch_;

  if (cross_dst_sim_ != nullptr) {
    // Cut edge: copy the packet out of the source shard's pool and park it
    // until the barrier.  One sequence per delivery, same as both paths
    // below, keeps the merged order bit-identical to the serial run.
    CrossRecord cr;
    cr.t = sim_.now() + extra + propagation_;
    cr.seq = sim_.alloc_event_seq();
    cr.epoch = epoch;
    cr.corrupt = corrupt;
    cr.pkt = *pkt;
    outbox_.push_back(std::move(cr));
    return;  // the dying handle recycles the source-side slot
  }

  if (!sim_.use_lanes()) {
    // Plain path: one heap entry per packet (consumes one sequence number
    // inside schedule(), same as the lane stamp below).
    sim_.schedule(extra + propagation_, [this, epoch, corrupt, p = std::move(pkt)]() mutable {
      arrive(std::move(p), epoch, corrupt);
    });
    return;
  }

  LaneRecord* r = LanePool::local().acquire();
  r->t = sim_.now() + extra + propagation_;
  r->seq = sim_.alloc_event_seq();
  r->pkt = pkt.release_raw();
  r->next = nullptr;
  r->epoch = epoch;
  r->corrupt = corrupt;
  lane_insert(r);
}

void Channel::arrive(PacketPtr p, std::uint32_t epoch, bool corrupt) {
  if (epoch != cut_epoch_) {
    if (CheckObserver* ob = sim_.check_observer()) {
      ob->on_drop(DropSite::kWireCutInFlight, kInvalidNode, *p);
    }
    in_flight_dropped_++;  // a drop-in-flight cut happened mid-wire
    return;
  }
  if (corrupt) {
    if (CheckObserver* ob = sim_.check_observer()) {
      ob->on_drop(DropSite::kWireCorrupt, kInvalidNode, *p);
    }
    if (fault_ != nullptr) fault_->corrupted++;
    return;
  }
  dispatch_receive(std::move(p), sim_);
}

void Channel::lane_insert_ooo(LaneRecord* r) {
  // Reached only from lane_insert's inline fast paths: the lane is
  // non-empty and r lands strictly before the tail.
  if (r->t < lane_head_->t) {
    // An out-of-band frame (PFC PAUSE via Port::send_oob) overtaking the
    // in-flight backlog: new head, so the heap mirror must be re-keyed.
    r->next = lane_head_;
    lane_head_ = r;
    lane_timer_.arm_keyed_abs(r->t, r->seq);
    return;
  }
  // Rare middle insert (short OOB frame landing between queued MTU frames):
  // after the last record with t <= r->t, preserving FIFO among equal times.
  LaneRecord* n = lane_head_;
  while (n->next != nullptr && n->next->t <= r->t) n = n->next;
  r->next = n->next;
  n->next = r;
}

void Channel::fire_lane() {
  LaneRecord* r = lane_head_;
  for (;;) {
    // Pop, then re-arm for the remaining head BEFORE running the arrival
    // path: arrivals can re-enter deliver() on this same channel (zero-
    // propagation loops), and lane_insert relies on "head present => timer
    // armed with the head's key".
    lane_head_ = r->next;
    if (lane_head_ == nullptr) {
      lane_tail_ = nullptr;
    } else {
      lane_timer_.arm_keyed_abs(lane_head_->t, lane_head_->seq);
    }
    --lane_len_;
    const std::uint32_t epoch = r->epoch;
    const bool corrupt = r->corrupt;
    PacketPtr p = PacketPtr::adopt(r->pkt);
    r->pkt = nullptr;
    LanePool::local().release(r);
    arrive(std::move(p), epoch, corrupt);

    // Same-time run coalescing: deliver the next record without a heap
    // round trip iff it is due NOW, the run loop was not stopped, and
    // nothing else anywhere in the simulation precedes it.  The armed
    // timer IS the candidate heap top, so it is pulled out before probing.
    LaneRecord* next = lane_head_;
    if (next == nullptr || next->t != sim_.now() || sim_.stop_requested()) return;
    lane_timer_.cancel();
    if (!sim_.lane_may_run(next->t, next->seq)) {
      lane_timer_.arm_keyed_abs(next->t, next->seq);
      return;
    }
    sim_.note_coalesced_event(next->t, next->seq);  // the plain heap would have popped one event
    r = next;
  }
}

void Channel::enable_shard_mode(Simulator* dst_sim) {
  cross_dst_sim_ = dst_sim;
  // Parked lane records carry window-provisional stamps; commit them at
  // every barrier (the heap mirror is rewritten by end_shard_window).
  sim_.add_seq_remap_hook([this](const SeqRemap& remap) {
    for (LaneRecord* r = lane_head_; r != nullptr; r = r->next) r->seq = remap(r->seq);
  });
}

void Channel::drain_cross(const SeqRemap& remap) {
  auto later = [](const CrossRecord& a, const CrossRecord& b) {
    return a.t != b.t ? a.t > b.t : a.seq > b.seq;
  };
  for (CrossRecord& r : outbox_) {
    r.seq = remap(r.seq);
    cross_dst_sim_->schedule_cross(r.t, r.seq, [this] { cross_arrive_next(); });
    inbox_.push_back(std::move(r));
    std::push_heap(inbox_.begin(), inbox_.end(), later);
  }
  outbox_.clear();
}

void Channel::cross_arrive_next() {
  // Events fire in (t, seq) order and each maps to exactly one record, so
  // the minimum remaining record is the one this event was scheduled for.
  auto later = [](const CrossRecord& a, const CrossRecord& b) {
    return a.t != b.t ? a.t > b.t : a.seq > b.seq;
  };
  assert(!inbox_.empty());
  std::pop_heap(inbox_.begin(), inbox_.end(), later);
  CrossRecord rec = std::move(inbox_.back());
  inbox_.pop_back();
  // Re-pool on the destination shard's thread, then run the shared far-end
  // logic.  Observer hooks go through the destination simulator: that is
  // the one executing this event.
  PacketPtr p = PacketPtr::make(std::move(rec.pkt));
  if (rec.epoch != cut_epoch_) {
    if (CheckObserver* ob = cross_dst_sim_->check_observer()) {
      ob->on_drop(DropSite::kWireCutInFlight, kInvalidNode, *p);
    }
    in_flight_dropped_++;
    return;
  }
  if (rec.corrupt) {
    if (CheckObserver* ob = cross_dst_sim_->check_observer()) {
      ob->on_drop(DropSite::kWireCorrupt, kInvalidNode, *p);
    }
    if (fault_ != nullptr) fault_->corrupted++;
    return;
  }
  dispatch_receive(std::move(p), *cross_dst_sim_);
}

std::size_t Channel::lane_doomed_pending() const {
  std::size_t doomed = 0;
  for (const LaneRecord* r = lane_head_; r != nullptr; r = r->next) {
    if (r->epoch != cut_epoch_) ++doomed;
  }
  return doomed;
}

}  // namespace dcp
