#pragma once
// Base class for anything attached to the network graph (hosts, switches).

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "net/packet.h"
#include "net/packet_pool.h"
#include "sim/logger.h"
#include "sim/simulator.h"

namespace dcp {

/// Concrete datapath type of a Node, cached by Channel at connect() time
/// so delivery can static-dispatch to Switch/Host::receive_fast instead of
/// the virtual hop (kOther — test sinks, tools — keeps the virtual path).
enum class NodeKind : std::uint8_t { kOther = 0, kHost = 1, kSwitch = 2 };

class Node {
 public:
  Node(Simulator& sim, Logger& log, NodeId id, std::string name)
      : Node(sim, log, id, std::move(name), NodeKind::kOther) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  NodeKind kind() const { return kind_; }
  /// The simulator driving this node — in a sharded run, the node's shard.
  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }

  /// Delivery of a pooled packet arriving on `in_port`.  The node owns the
  /// handle from here on: forwarding moves it onward, dropping just lets
  /// it die (the slot returns to the pool).
  virtual void receive(PacketPtr pkt, std::uint32_t in_port) = 0;

  /// Convenience for tests and tools that build packets by value: pools
  /// the packet and forwards to the virtual overload.  Subclasses pull
  /// both into scope with `using Node::receive;`.
  void receive(Packet pkt, std::uint32_t in_port) {
    receive(PacketPtr::make(std::move(pkt)), in_port);
  }

  /// Optional per-node observation hook, invoked for every packet the node
  /// receives (before processing).  Installed by diagnostic tooling such
  /// as PacketTracer; nullptr in normal operation.
  std::function<void(const Node&, const Packet&, std::uint32_t)> trace_hook;

 protected:
  Node(Simulator& sim, Logger& log, NodeId id, std::string name, NodeKind kind)
      : sim_(sim), log_(log), id_(id), name_(std::move(name)), kind_(kind) {}

  void maybe_trace(const Packet& pkt, std::uint32_t in_port) const {
    if (trace_hook) trace_hook(*this, pkt, in_port);
  }
  /// Hot-path variant: the flat gather happens only once a hook is
  /// actually installed.
  void maybe_trace(const PacketHot& pkt, std::uint32_t in_port) const {
    if (trace_hook) trace_hook(*this, Packet(pkt), in_port);
  }

  Simulator& sim_;
  Logger& log_;

 private:
  NodeId id_;
  std::string name_;
  NodeKind kind_ = NodeKind::kOther;
};

}  // namespace dcp
