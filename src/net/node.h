#pragma once
// Base class for anything attached to the network graph (hosts, switches).

#include <cstdint>
#include <string>
#include <utility>

#include "net/packet.h"
#include "sim/logger.h"
#include "sim/simulator.h"

namespace dcp {

class Node {
 public:
  Node(Simulator& sim, Logger& log, NodeId id, std::string name)
      : sim_(sim), log_(log), id_(id), name_(std::move(name)) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Delivery of a packet arriving on `in_port`.
  virtual void receive(Packet pkt, std::uint32_t in_port) = 0;

  /// Optional per-node observation hook, invoked for every packet the node
  /// receives (before processing).  Installed by diagnostic tooling such
  /// as PacketTracer; nullptr in normal operation.
  std::function<void(const Node&, const Packet&, std::uint32_t)> trace_hook;

 protected:
  void maybe_trace(const Packet& pkt, std::uint32_t in_port) const {
    if (trace_hook) trace_hook(*this, pkt, in_port);
  }

  Simulator& sim_;
  Logger& log_;

 private:
  NodeId id_;
  std::string name_;
};

}  // namespace dcp
