#pragma once
// FIFO packet queue with byte accounting, used for every egress queue class.
// Stores pooled packet handles: pushing and popping moves 8 bytes, not the
// ~130-byte Packet struct.

#include <cstdint>
#include <deque>
#include <utility>

#include "net/packet.h"
#include "net/packet_pool.h"

namespace dcp {

class FifoQueue {
 public:
  void push(PacketPtr pkt) {
    bytes_ += pkt->wire_bytes;
    max_bytes_seen_ = bytes_ > max_bytes_seen_ ? bytes_ : max_bytes_seen_;
    q_.push_back(std::move(pkt));
  }
  /// Convenience for tests/benches that build packets by value.
  void push(Packet pkt) { push(PacketPtr::make(std::move(pkt))); }

  PacketPtr pop() {
    PacketPtr p = std::move(q_.front());
    q_.pop_front();
    bytes_ -= p->wire_bytes;
    return p;
  }

  const PacketHot& front() const { return *q_.front(); }
  bool empty() const { return q_.empty(); }
  std::size_t packets() const { return q_.size(); }
  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t max_bytes_seen() const { return max_bytes_seen_; }

  /// Checkpoint hook (sim/snapshot.h): queued packets in FIFO order as
  /// flat records; byte accounting is rebuilt by re-pushing.
  template <typename IO>
  void checkpoint(IO& io) {
    std::uint64_t n = q_.size();
    io.pod(n);
    if (io.saving()) {
      for (PacketPtr& p : q_) {
        Packet flat(*p);
        io.pod(flat);
      }
    } else {
      if (!q_.empty()) {
        io.fail("restore target FIFO queue non-empty");
        return;
      }
      for (std::uint64_t i = 0; i < n && io.ok(); ++i) {
        Packet flat;
        io.pod(flat);
        if (io.ok()) push(PacketPtr::make(flat));
      }
    }
    io.pod(max_bytes_seen_);
  }

 private:
  std::deque<PacketPtr> q_;
  std::uint64_t bytes_ = 0;
  std::uint64_t max_bytes_seen_ = 0;
};

}  // namespace dcp
