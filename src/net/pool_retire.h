#pragma once
// Process-wide retired store backing the thread-local slab pools
// (PacketPool, LanePool).
//
// A pool's slots can outlive its thread: shard workers allocate packets
// and lane records that are still parked in queues when the ShardGroup
// joins the thread, and teardown then releases them on the coordinator —
// into the *coordinator's* freelist.  If the dying thread's pool freed its
// slabs, those freelist entries would dangle.  So a dying pool donates its
// slabs (and the slots it still holds) here instead, keeping every
// outstanding pointer valid for the life of the process; new pools
// reclaim retired slots before allocating fresh slabs, so repeatedly
// creating and destroying shard groups recycles memory rather than
// accumulating it.
//
// All calls are cold (pool growth and thread exit), so one mutex is fine.

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

namespace dcp {

template <typename T>
class RetiredSlabs {
 public:
  static RetiredSlabs& instance() {
    static RetiredSlabs r;
    return r;
  }

  /// Takes ownership of a dying pool's slabs and unclaimed slots.
  void donate(std::vector<std::unique_ptr<T[]>>&& chunks, std::vector<T*>&& free) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& c : chunks) chunks_.push_back(std::move(c));
    free_.insert(free_.end(), free.begin(), free.end());
  }

  /// Moves up to `max` retired slots into `out`; returns how many moved.
  /// The backing slabs stay owned here — the reclaiming pool must never
  /// free them.
  std::size_t reclaim(std::vector<T*>& out, std::size_t max) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t n = free_.size() < max ? free_.size() : max;
    out.insert(out.end(), free_.end() - static_cast<std::ptrdiff_t>(n), free_.end());
    free_.resize(free_.size() - n);
    return n;
  }

 private:
  RetiredSlabs() = default;

  std::mutex mu_;
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<T*> free_;
};

}  // namespace dcp
