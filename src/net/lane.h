#pragma once
// Delivery-lane records: the per-link FIFO nodes of the two-level scheduler.
//
// A Channel with fixed bandwidth and propagation delivers strictly FIFO, so
// per-packet entries in the global heap are wasted ordering work.  Instead
// each in-flight packet becomes a LaneRecord — stamped at deliver() time
// with its absolute arrival time and a global tie-break sequence — linked
// into the channel's intrusive FIFO.  Only the lane head occupies the heap
// (via a persistent Timer keyed with the head's exact (t, seq)), so heap
// size tracks active links, not packets in flight.
//
// Records come from a thread-local chunked freelist (same idiom as
// PacketPool): steady-state traffic performs zero heap allocations, and
// simulations on different threads never contend.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "sim/time.h"

namespace dcp {

/// One in-flight packet parked in a channel's delivery lane.  The record
/// owns its pooled slot (taken from PacketPtr via release_raw) until the
/// lane fires or drains it.
struct LaneRecord {
  Time t = 0;                // absolute delivery time at the far end
  std::uint64_t seq = 0;     // global tie-break, stamped at deliver() time
  PacketHot* pkt = nullptr;  // pooled packet (owned while parked)
  LaneRecord* next = nullptr;
  std::uint32_t epoch = 0;  // channel cut_epoch_ at send; mismatch = doomed
  bool corrupt = false;     // CRC failure decided at send, applied at arrival
};

/// Thread-local freelist of LaneRecords (chunked slabs, never shrink).
/// Like PacketPool, a dying thread's pool donates its slabs to the
/// process-wide retired store (pool_retire.h): records it handed out can
/// still be parked in lanes when a shard worker exits and are released
/// later on the coordinator's thread.
class LanePool {
 public:
  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t releases = 0;
    std::size_t slots = 0;
    std::size_t in_use = 0;
  };

  /// The calling thread's pool.
  static LanePool& local();

  LanePool() = default;
  ~LanePool();
  LanePool(const LanePool&) = delete;
  LanePool& operator=(const LanePool&) = delete;

  LaneRecord* acquire() {
    if (free_.empty()) grow();
    LaneRecord* r = free_.back();
    free_.pop_back();
    ++acquires_;
    return r;
  }

  void release(LaneRecord* r) {
    ++releases_;
    free_.push_back(r);
  }

  Stats stats() const {
    // Cross-thread teardown releases can park foreign-slab records here,
    // so clamp rather than underflow.
    return Stats{acquires_, releases_, slots_,
                 free_.size() >= slots_ ? 0 : slots_ - free_.size()};
  }

  /// Slab footprint of every record this pool has ever acquired (including
  /// records adopted from the retired store).
  std::uint64_t arena_bytes() const {
    return static_cast<std::uint64_t>(slots_) * sizeof(LaneRecord);
  }

 private:
  // Geometric chunk growth (512 doubling to 64Ki), same rationale as
  // PacketPool: large fat-trees park hundreds of thousands of records.
  static constexpr std::size_t kChunkRecords = 512;
  static constexpr std::size_t kMaxChunkRecords = 65536;

  void grow();

  std::vector<std::unique_ptr<LaneRecord[]>> chunks_;
  std::vector<LaneRecord*> free_;
  std::size_t slots_ = 0;        // owned + reclaimed (chunk sizes vary)
  std::size_t next_chunk_ = kChunkRecords;
  std::size_t reclaimed_ = 0;  // slots adopted from the retired store
  std::uint64_t acquires_ = 0;
  std::uint64_t releases_ = 0;
};

}  // namespace dcp
