#pragma once
// Exact percentile computation over collected samples.

#include <algorithm>
#include <cstdint>
#include <vector>

namespace dcp {

class PercentileEstimator {
 public:
  void add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double v : samples_) s += v;
    return s / static_cast<double>(samples_.size());
  }

  /// p in [0, 100].  Nearest-rank on the sorted samples.
  double percentile(double p) {
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    if (p <= 0.0) return samples_.front();
    if (p >= 100.0) return samples_.back();
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= samples_.size()) return samples_.back();
    return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
  }

  double min() {
    return percentile(0);
  }
  double max() {
    return percentile(100);
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

}  // namespace dcp
