#include "stats/fct_stats.h"

namespace dcp {

SizeClass size_class_of(std::uint64_t bytes) {
  if (bytes <= 50 * 1024) return SizeClass::kSmall;
  if (bytes <= 2 * 1024 * 1024) return SizeClass::kMedium;
  return SizeClass::kLarge;
}

const char* size_class_name(SizeClass c) {
  switch (c) {
    case SizeClass::kSmall: return "Small (0~50KB)";
    case SizeClass::kMedium: return "Medium (50KB~2MB)";
    case SizeClass::kLarge: return "Large (>2MB)";
  }
  return "?";
}

std::vector<std::uint64_t> FctStats::default_edges() {
  // The flow-size ticks the paper uses on the Fig. 13 x-axis (in bytes).
  return {3'000,     6'000,     9'000,     20'000,    24'000,    29'000,    40'000,
          50'000,    61'000,    73'000,    117'000,   218'000,   614'000,   1'021'000,
          1'507'000, 1'991'000, 3'494'000, 5'109'000, 8'674'000, 29'995'000};
}

FctStats::FctStats(std::vector<std::uint64_t> edges) {
  std::uint64_t lo = 0;
  for (std::uint64_t hi : edges) {
    buckets_.push_back(FctBucket{lo, hi, {}});
    lo = hi;
  }
  buckets_.push_back(FctBucket{lo, UINT64_MAX, {}});
}

void FctStats::add(const FlowRecord& rec, Time ideal_fct) {
  if (!rec.complete() || ideal_fct <= 0) return;
  const double slowdown =
      static_cast<double>(rec.fct()) / static_cast<double>(ideal_fct);
  const double clamped = slowdown < 1.0 ? 1.0 : slowdown;
  overall_.add(clamped);
  ++count_;
  for (auto& b : buckets_) {
    if (rec.spec.bytes >= b.lo && rec.spec.bytes < b.hi) {
      b.slowdown.add(clamped);
      break;
    }
  }
}

std::vector<double> FctStats::per_bucket_percentile(double p) {
  std::vector<double> out;
  out.reserve(buckets_.size());
  for (auto& b : buckets_) out.push_back(b.slowdown.empty() ? 0.0 : b.slowdown.percentile(p));
  return out;
}

std::vector<std::uint64_t> FctStats::bucket_edges() const {
  std::vector<std::uint64_t> out;
  for (const auto& b : buckets_) out.push_back(b.hi);
  return out;
}

}  // namespace dcp
