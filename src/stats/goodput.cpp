#include "stats/goodput.h"

// Header-only today; this TU anchors the library target.
