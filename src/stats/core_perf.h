#pragma once
// Simulator-core performance accounting: how fast the substrate itself
// chews through events, independent of what the experiment measures.
// Every harness runner fills one of these so regressions in the event
// core show up in any experiment, and bench_core emits them as
// BENCH_core.json for before/after comparisons.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dcp {

class Simulator;
class ShardGroup;

/// Events processed and wall-clock time of one simulation run, plus the
/// run's thread-local allocation behaviour (PacketPool handouts and the
/// EventQueue slab) so per-worker allocation is observable when trials
/// fan out across a sweep pool.
struct CorePerf {
  std::uint64_t events_processed = 0;
  double wall_seconds = 0.0;
  std::uint64_t pool_acquires = 0;  // PacketPool handouts during the window
  std::size_t pool_slots = 0;       // executing thread's pool capacity after
  std::size_t event_slots = 0;      // the run's EventQueue slab capacity
  // Slab-arena footprint after the window (packet hot/cold, lane and event
  // records over every shard — see ShardGroup::arena_bytes) and the
  // process's peak RSS, so bench_core can gate memory alongside ev/s.
  std::uint64_t arena_bytes = 0;
  std::uint64_t peak_rss_bytes = 0;

  double events_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(events_processed) / wall_seconds : 0.0;
  }
};

/// Measures a window of simulation: construct before run(), call finish()
/// after — on the same thread, since the PacketPool counters it samples
/// are thread-local.  Captures deltas so nested/partial runs compose.
class CorePerfTimer {
 public:
  explicit CorePerfTimer(const Simulator& sim);
  /// Group-wide window: events_processed sums over every shard; the pool
  /// and slab counters remain the caller thread's (shard 0's) view, since
  /// other shards' pools are thread-local to their workers.
  explicit CorePerfTimer(const ShardGroup& group);

  /// Stops the clock and returns the window's CorePerf.
  CorePerf finish() const;

 private:
  const Simulator* sim_ = nullptr;
  const ShardGroup* group_ = nullptr;
  std::uint64_t events_at_start_;
  std::uint64_t pool_acquires_at_start_;
  std::chrono::steady_clock::time_point wall_start_;
};

/// Thread-safe CorePerf accumulator: trials finishing on different sweep
/// workers add() concurrently; total() is the suite-wide view.  Events,
/// wall seconds (aggregate busy time, not elapsed) and pool acquires are
/// summed; slot capacities take the max, since trials on the same worker
/// share one thread-local pool and summing would double-count it.
class CorePerfAggregator {
 public:
  void add(const CorePerf& p);
  CorePerf total() const;
  std::uint64_t trials() const;

 private:
  mutable std::mutex m_;
  CorePerf total_;
  std::uint64_t trials_ = 0;
};

/// One named measurement in BENCH_core.json, optionally with the baseline
/// (seed) throughput recorded alongside for a speedup column.
struct CorePerfEntry {
  std::string name;
  CorePerf perf;
  double baseline_events_per_sec = 0.0;  // 0 = no recorded baseline
  // Execution-environment metadata for parallel measurements (0 = serial
  // entry, fields omitted from the JSON).  A sharded number is meaningless
  // without knowing how many event cores ran and how much hardware the box
  // offered, so the committed BENCH_core.json records both.
  unsigned shards = 0;
  unsigned hardware_threads = 0;
};

/// Serial-vs-parallel suite measurement: the same sweep run with one job
/// and with the full pool ("suite_parallel" in BENCH_core.json).
struct SuiteParallelEntry {
  std::size_t trials = 0;
  unsigned jobs = 0;
  double serial_wall_seconds = 0.0;
  double parallel_wall_seconds = 0.0;
  bool bit_identical = false;  // parallel results matched serial exactly

  double speedup() const {
    return parallel_wall_seconds > 0.0 ? serial_wall_seconds / parallel_wall_seconds : 0.0;
  }
};

/// Writes entries as a JSON document ({"benchmarks": [...]}), with an
/// optional "suite_parallel" object.  Returns false if the file could not
/// be opened.
bool export_core_perf_json(const std::string& path, const std::vector<CorePerfEntry>& entries,
                           const SuiteParallelEntry* suite = nullptr);

}  // namespace dcp
