#pragma once
// Simulator-core performance accounting: how fast the substrate itself
// chews through events, independent of what the experiment measures.
// Every harness runner fills one of these so regressions in the event
// core show up in any experiment, and bench_core emits them as
// BENCH_core.json for before/after comparisons.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace dcp {

class Simulator;

/// Events processed and wall-clock time of one simulation run.
struct CorePerf {
  std::uint64_t events_processed = 0;
  double wall_seconds = 0.0;

  double events_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(events_processed) / wall_seconds : 0.0;
  }
};

/// Measures a window of simulation: construct before run(), call finish()
/// after.  Captures the event-count delta so nested/partial runs compose.
class CorePerfTimer {
 public:
  explicit CorePerfTimer(const Simulator& sim);

  /// Stops the clock and returns the window's CorePerf.
  CorePerf finish() const;

 private:
  const Simulator& sim_;
  std::uint64_t events_at_start_;
  std::chrono::steady_clock::time_point wall_start_;
};

/// One named measurement in BENCH_core.json, optionally with the baseline
/// (seed) throughput recorded alongside for a speedup column.
struct CorePerfEntry {
  std::string name;
  CorePerf perf;
  double baseline_events_per_sec = 0.0;  // 0 = no recorded baseline
};

/// Writes entries as a JSON document ({"benchmarks": [...]}).  Returns
/// false if the file could not be opened.
bool export_core_perf_json(const std::string& path, const std::vector<CorePerfEntry>& entries);

}  // namespace dcp
