#include "stats/percentile.h"

// Header-only today; this TU anchors the library target.
