#include "stats/core_perf.h"

#include <cstdio>

#include "sim/simulator.h"

namespace dcp {

CorePerfTimer::CorePerfTimer(const Simulator& sim)
    : sim_(sim),
      events_at_start_(sim.events_processed()),
      wall_start_(std::chrono::steady_clock::now()) {}

CorePerf CorePerfTimer::finish() const {
  CorePerf p;
  p.events_processed = sim_.events_processed() - events_at_start_;
  p.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start_).count();
  return p;
}

bool export_core_perf_json(const std::string& path, const std::vector<CorePerfEntry>& entries) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const CorePerfEntry& e = entries[i];
    std::fprintf(f,
                 "    {\n"
                 "      \"name\": \"%s\",\n"
                 "      \"events_processed\": %llu,\n"
                 "      \"wall_seconds\": %.6f,\n"
                 "      \"events_per_sec\": %.0f",
                 e.name.c_str(), static_cast<unsigned long long>(e.perf.events_processed),
                 e.perf.wall_seconds, e.perf.events_per_sec());
    if (e.baseline_events_per_sec > 0.0) {
      std::fprintf(f,
                   ",\n"
                   "      \"seed_events_per_sec\": %.0f,\n"
                   "      \"speedup_vs_seed\": %.2f",
                   e.baseline_events_per_sec,
                   e.perf.events_per_sec() / e.baseline_events_per_sec);
    }
    std::fprintf(f, "\n    }%s\n", i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace dcp
