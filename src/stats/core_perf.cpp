#include "stats/core_perf.h"

#include <algorithm>
#include <cstdio>

#include <sys/resource.h>

#include "net/lane.h"
#include "net/packet_pool.h"
#include "sim/shard.h"
#include "sim/simulator.h"

namespace dcp {

namespace {

std::uint64_t peak_rss_bytes() {
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

}  // namespace

CorePerfTimer::CorePerfTimer(const Simulator& sim)
    : sim_(&sim),
      events_at_start_(sim.events_processed()),
      pool_acquires_at_start_(PacketPool::local().stats().acquires),
      wall_start_(std::chrono::steady_clock::now()) {}

CorePerfTimer::CorePerfTimer(const ShardGroup& group)
    : group_(&group),
      events_at_start_(group.events_processed()),
      pool_acquires_at_start_(PacketPool::local().stats().acquires),
      wall_start_(std::chrono::steady_clock::now()) {}

CorePerf CorePerfTimer::finish() const {
  const PacketPool::Stats pool = PacketPool::local().stats();
  CorePerf p;
  const std::uint64_t events =
      group_ != nullptr ? group_->events_processed() : sim_->events_processed();
  p.events_processed = events - events_at_start_;
  p.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start_).count();
  p.pool_acquires = pool.acquires - pool_acquires_at_start_;
  p.pool_slots = pool.slots;
  p.event_slots = group_ != nullptr ? group_->sim(0).event_slots_allocated()
                                    : sim_->event_slots_allocated();
  // Absolute footprints, not deltas: slabs never shrink, so the post-run
  // value IS the run's high-water mark (workers published theirs at the
  // last barrier; the serial case reads this thread's pools directly).
  p.arena_bytes = group_ != nullptr
                      ? group_->arena_bytes()
                      : PacketPool::local().arena_bytes() + LanePool::local().arena_bytes() +
                            sim_->event_arena_bytes();
  p.peak_rss_bytes = peak_rss_bytes();
  return p;
}

void CorePerfAggregator::add(const CorePerf& p) {
  std::lock_guard<std::mutex> lk(m_);
  total_.events_processed += p.events_processed;
  total_.wall_seconds += p.wall_seconds;
  total_.pool_acquires += p.pool_acquires;
  total_.pool_slots = std::max(total_.pool_slots, p.pool_slots);
  total_.event_slots = std::max(total_.event_slots, p.event_slots);
  total_.arena_bytes = std::max(total_.arena_bytes, p.arena_bytes);
  total_.peak_rss_bytes = std::max(total_.peak_rss_bytes, p.peak_rss_bytes);
  ++trials_;
}

CorePerf CorePerfAggregator::total() const {
  std::lock_guard<std::mutex> lk(m_);
  return total_;
}

std::uint64_t CorePerfAggregator::trials() const {
  std::lock_guard<std::mutex> lk(m_);
  return trials_;
}

bool export_core_perf_json(const std::string& path, const std::vector<CorePerfEntry>& entries,
                           const SuiteParallelEntry* suite) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const CorePerfEntry& e = entries[i];
    std::fprintf(f,
                 "    {\n"
                 "      \"name\": \"%s\",\n"
                 "      \"events_processed\": %llu,\n"
                 "      \"wall_seconds\": %.6f,\n"
                 "      \"events_per_sec\": %.0f",
                 e.name.c_str(), static_cast<unsigned long long>(e.perf.events_processed),
                 e.perf.wall_seconds, e.perf.events_per_sec());
    if (e.baseline_events_per_sec > 0.0) {
      std::fprintf(f,
                   ",\n"
                   "      \"seed_events_per_sec\": %.0f,\n"
                   "      \"speedup_vs_seed\": %.2f",
                   e.baseline_events_per_sec,
                   e.perf.events_per_sec() / e.baseline_events_per_sec);
    }
    if (e.perf.arena_bytes > 0) {
      std::fprintf(f,
                   ",\n"
                   "      \"arena_bytes\": %llu",
                   static_cast<unsigned long long>(e.perf.arena_bytes));
    }
    if (e.perf.peak_rss_bytes > 0) {
      std::fprintf(f,
                   ",\n"
                   "      \"peak_rss_bytes\": %llu",
                   static_cast<unsigned long long>(e.perf.peak_rss_bytes));
    }
    if (e.shards > 0) {
      std::fprintf(f,
                   ",\n"
                   "      \"shards\": %u,\n"
                   "      \"hardware_threads\": %u",
                   e.shards, e.hardware_threads);
    }
    std::fprintf(f, "\n    }%s\n", i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
  if (suite != nullptr) {
    std::fprintf(f,
                 ",\n  \"suite_parallel\": {\n"
                 "    \"trials\": %llu,\n"
                 "    \"jobs\": %u,\n"
                 "    \"serial_wall_seconds\": %.6f,\n"
                 "    \"parallel_wall_seconds\": %.6f,\n"
                 "    \"speedup\": %.2f,\n"
                 "    \"bit_identical\": %s\n"
                 "  }",
                 static_cast<unsigned long long>(suite->trials), suite->jobs,
                 suite->serial_wall_seconds, suite->parallel_wall_seconds, suite->speedup(),
                 suite->bit_identical ? "true" : "false");
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace dcp
