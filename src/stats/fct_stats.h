#pragma once
// Flow-completion-time aggregation: slowdown computation and per-size
// bucketing, matching how the paper reports Figs. 1, 13, 15, 16.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "stats/percentile.h"
#include "topo/network.h"

namespace dcp {

/// The paper's flow-size classes (Fig. 1b).
enum class SizeClass { kSmall, kMedium, kLarge };  // <50KB, 50KB..2MB, >2MB
SizeClass size_class_of(std::uint64_t bytes);
const char* size_class_name(SizeClass c);

struct FctBucket {
  std::uint64_t lo = 0;  // inclusive
  std::uint64_t hi = 0;  // exclusive
  PercentileEstimator slowdown;
};

class FctStats {
 public:
  /// `edges` are bucket upper bounds in bytes (ascending); a final
  /// catch-all bucket is added automatically.
  explicit FctStats(std::vector<std::uint64_t> edges);
  FctStats() : FctStats(default_edges()) {}

  /// The paper's Fig.13 x-axis (KB sizes from the WebSearch CDF).
  static std::vector<std::uint64_t> default_edges();

  void add(const FlowRecord& rec, Time ideal_fct);

  std::size_t flows() const { return count_; }
  PercentileEstimator& overall() { return overall_; }
  std::vector<FctBucket>& buckets() { return buckets_; }

  /// Percentile of slowdown per bucket; rows with no samples report 0.
  std::vector<double> per_bucket_percentile(double p);
  std::vector<std::uint64_t> bucket_edges() const;

 private:
  std::vector<FctBucket> buckets_;
  PercentileEstimator overall_;
  std::size_t count_ = 0;
};

}  // namespace dcp
