#pragma once
// Periodic fabric telemetry: samples switch queue depths, shared-buffer
// occupancy and link utilization over time.  Useful for debugging
// experiments ("why did the tail explode at t=4ms?") and for the queue-
// depth columns some ablations report.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "stats/percentile.h"
#include "switch/switch.h"
#include "topo/network.h"

namespace dcp {

struct TelemetrySample {
  Time t = 0;
  std::uint64_t max_data_queue = 0;   // deepest data queue in the fabric
  std::uint64_t max_ctrl_queue = 0;   // deepest control queue
  std::uint64_t total_buffered = 0;   // sum of shared-buffer occupancy
  std::uint64_t tx_bytes_delta = 0;   // bytes transmitted since last sample
};

class FabricTelemetry {
 public:
  /// Starts sampling every `interval` until `stop()` or the sim drains.
  FabricTelemetry(Network& net, Time interval = microseconds(10));
  ~FabricTelemetry();
  FabricTelemetry(const FabricTelemetry&) = delete;
  FabricTelemetry& operator=(const FabricTelemetry&) = delete;

  void stop();

  const std::vector<TelemetrySample>& samples() const { return samples_; }

  /// Peak data-queue depth observed across all samples.
  std::uint64_t peak_data_queue() const;
  /// Mean fabric throughput (Gbps) across the sampled window.
  double mean_throughput_gbps() const;
  /// Percentile of the per-sample max data queue depth.
  double data_queue_percentile(double p) const;

 private:
  void sample();
  void arm();

  Network& net_;
  Time interval_;
  EventId ev_ = kInvalidEvent;
  bool stopped_ = false;
  std::uint64_t last_tx_bytes_ = 0;
  std::vector<TelemetrySample> samples_;
};

}  // namespace dcp
