#pragma once
// CSV export of experiment results so users can plot with their tool of
// choice: per-flow records, FCT-slowdown bucket series, and telemetry
// time series.

#include <string>

#include "stats/fct_stats.h"
#include "stats/telemetry.h"
#include "topo/network.h"

namespace dcp {

/// Writes one row per flow: id, src, dst, bytes, start/rx/tx times,
/// slowdown (vs the network's ideal FCT) and the sender/receiver counters.
/// Returns false if the file could not be opened.
bool export_flow_records_csv(const Network& net, const std::string& path);

/// Writes the per-bucket percentile series of an FctStats: one row per
/// bucket with the requested percentiles as columns.
bool export_fct_buckets_csv(FctStats& stats, const std::string& path,
                            const std::vector<double>& percentiles = {50, 95, 99});

/// Writes the telemetry time series (one row per sample).
bool export_telemetry_csv(const FabricTelemetry& tel, const std::string& path);

}  // namespace dcp
