#pragma once
// Packet tracing: records every hop of (optionally filtered) packets as
// they traverse the fabric — the simulator's answer to a pcap.  Used by
// tests to verify multi-hop paths (e.g. the HO trim -> receiver -> sender
// bounce) and by users to debug experiments.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "topo/network.h"

namespace dcp {

struct TraceEvent {
  Time t = 0;
  NodeId node = kInvalidNode;
  std::string node_name;
  std::uint32_t in_port = 0;
  // Snapshot of the interesting packet fields.
  PktType type = PktType::kData;
  DcpTag tag = DcpTag::kNonDcp;
  FlowId flow = 0;
  std::uint32_t psn = 0;
  std::uint32_t msn = 0;
  std::uint32_t wire_bytes = 0;
};

class PacketTracer {
 public:
  /// Attaches to every node currently in the network.  `flow_filter` = 0
  /// records everything; otherwise only that flow.  `max_events` bounds
  /// memory (recording stops silently at the cap).
  PacketTracer(Network& net, FlowId flow_filter = 0, std::size_t max_events = 100'000);
  ~PacketTracer();
  PacketTracer(const PacketTracer&) = delete;
  PacketTracer& operator=(const PacketTracer&) = delete;

  void detach();

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Events of one flow in time order (the recorded order).
  std::vector<TraceEvent> flow_events(FlowId flow) const;

  /// The sequence of node ids a specific (flow, psn, type) visited.
  std::vector<NodeId> path_of(FlowId flow, std::uint32_t psn, PktType type) const;

  /// Renders a human-readable hop listing (for debugging).
  std::string dump(std::size_t limit = 50) const;

 private:
  void record(const Node& node, const Packet& pkt, std::uint32_t in_port);

  Network& net_;
  FlowId filter_;
  std::size_t cap_;
  std::vector<TraceEvent> events_;
};

}  // namespace dcp
