#include "stats/recovery_stats.h"

#include <algorithm>
#include <cstdio>

#include "host/host.h"

namespace dcp {

RecoveryStats::RecoveryStats(Network& net, Time interval, double recover_threshold)
    : net_(net), interval_(interval), threshold_(recover_threshold) {
  samples_.push_back(snapshot());  // t=0 anchor
  arm();
}

RecoveryStats::~RecoveryStats() { stop(); }

void RecoveryStats::stop() {
  stopped_ = true;
  if (ev_ != kInvalidEvent) {
    net_.sim().cancel(ev_);
    ev_ = kInvalidEvent;
  }
}

void RecoveryStats::arm() {
  ev_ = net_.sim().schedule(interval_, [this] {
    ev_ = kInvalidEvent;
    if (stopped_) return;
    samples_.push_back(snapshot());
    arm();
  });
}

RecoveryStats::Sample RecoveryStats::snapshot() const {
  Sample s;
  s.t = net_.sim().now();
  for (const auto& h : net_.hosts()) {
    for (const auto& [id, rx] : h->receivers()) s.rx_bytes += rx->stats().bytes_received;
    for (const auto& [id, tx] : h->senders()) {
      s.spurious += tx->stats().spurious_retransmissions;
      s.timeouts += tx->stats().timeouts;
    }
  }
  return s;
}

double RecoveryStats::goodput_gbps(std::size_t i) const {
  if (i == 0 || i >= samples_.size()) return 0.0;
  const Time dt = samples_[i].t - samples_[i - 1].t;
  if (dt <= 0) return 0.0;
  const std::uint64_t bytes = samples_[i].rx_bytes - samples_[i - 1].rx_bytes;
  return static_cast<double>(bytes) * 8.0 / (static_cast<double>(dt) / kSecond) / 1e9;
}

std::size_t RecoveryStats::begin_episode(std::string label, Time t) {
  Episode e;
  e.label = std::move(label);
  e.start = t;
  episodes_.push_back(std::move(e));
  return episodes_.size() - 1;
}

void RecoveryStats::end_episode(std::size_t idx, Time t) {
  if (idx < episodes_.size()) episodes_[idx].end = t;
}

void RecoveryStats::finalize() {
  stop();
  samples_.push_back(snapshot());  // final state

  // Pre-fault baseline window: up to 8 intervals immediately before onset.
  constexpr std::size_t kBaselineWindow = 8;

  for (Episode& e : episodes_) {
    // Locate the first sample at/after onset.
    std::size_t onset = 1;
    while (onset < samples_.size() && samples_[onset].t < e.start) ++onset;

    double base_sum = 0.0;
    std::size_t base_n = 0;
    for (std::size_t i = onset; i-- > 1 && base_n < kBaselineWindow;) {
      base_sum += goodput_gbps(i);
      base_n++;
    }
    if (base_n > 0) {
      e.baseline_gbps = base_sum / static_cast<double>(base_n);
    } else {
      // Fault at t=0: fall back to the peak over the whole run.
      for (std::size_t i = 1; i < samples_.size(); ++i) {
        e.baseline_gbps = std::max(e.baseline_gbps, goodput_gbps(i));
      }
    }

    const double bar = threshold_ * e.baseline_gbps;
    e.dip_gbps = e.baseline_gbps;
    std::size_t recover_i = 0;
    for (std::size_t i = std::max<std::size_t>(onset, 1); i < samples_.size(); ++i) {
      const double g = goodput_gbps(i);
      if (e.baseline_gbps <= 0.0 || g >= bar) {
        recover_i = i;
        e.recovered = true;
        break;
      }
      e.dip_gbps = std::min(e.dip_gbps, g);
      e.dip_duration += samples_[i].t - samples_[i - 1].t;
    }
    if (e.recovered) {
      e.time_to_recover = std::max<Time>(0, samples_[recover_i].t - e.start);
    }
    if (e.baseline_gbps > 0.0) {
      e.dip_frac = std::clamp(1.0 - e.dip_gbps / e.baseline_gbps, 0.0, 1.0);
    }

    // Counter deltas over [onset, recovery] (or to the end of the run).
    const Sample& from = samples_[onset > 0 ? onset - 1 : 0];
    const Sample& to = samples_[e.recovered ? recover_i : samples_.size() - 1];
    e.spurious_retx = to.spurious - from.spurious;
    e.timeouts = to.timeouts - from.timeouts;
  }
}

std::vector<std::string> RecoveryStats::table_headers() {
  return {"Episode", "Baseline Gbps", "Dip Gbps", "Dip %", "Dip dur us",
          "TTR us",  "Spurious",      "Timeouts"};
}

std::vector<std::vector<std::string>> RecoveryStats::table_rows(
    const std::vector<Episode>& episodes) {
  std::vector<std::vector<std::string>> rows;
  char buf[48];
  for (const Episode& e : episodes) {
    std::vector<std::string> row;
    row.push_back(e.label);
    std::snprintf(buf, sizeof(buf), "%.2f", e.baseline_gbps);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", e.dip_gbps);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f%%", e.dip_frac * 100.0);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", to_us(e.dip_duration));
    row.push_back(buf);
    if (e.recovered) {
      std::snprintf(buf, sizeof(buf), "%.1f", to_us(e.time_to_recover));
      row.push_back(buf);
    } else {
      row.push_back("never");
    }
    row.push_back(std::to_string(e.spurious_retx));
    row.push_back(std::to_string(e.timeouts));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace dcp
