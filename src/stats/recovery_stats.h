#pragma once
// RecoveryStats: per-fault-episode recovery metrics.
//
// The collector samples application-level goodput (unique bytes landed at
// receiver transports) and the fleet-wide retransmission counters on a
// fixed simulated-time cadence.  Fault episodes are registered generically
// by whoever injects the faults (see FaultInjector::on_fault_start); after
// the run, finalize() turns the sample series into per-episode metrics:
//
//   time_to_recover   first time after fault onset that goodput is back at
//                     >= threshold x the pre-fault baseline
//   dip_frac          depth of the goodput dip, 1 - min/baseline in [0,1]
//   dip_duration      total sampled time below the recovery threshold
//   spurious_retx     spurious retransmissions attributable to the episode
//   timeouts          retry-counter escalations (coarse timeout firings)
//
// Sampling is read-only — it never mutates simulation state — so attaching
// a collector does not perturb results.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "topo/network.h"

namespace dcp {

class RecoveryStats {
 public:
  struct Episode {
    std::string label;
    Time start = 0;
    Time end = -1;  // fault reverted; -1 = active until the end of the run
    // Computed by finalize():
    double baseline_gbps = 0.0;  // mean goodput over the pre-fault window
    double dip_gbps = 0.0;       // lowest goodput sample before recovery
    double dip_frac = 0.0;       // 1 - dip/baseline, clamped to [0, 1]
    Time dip_duration = 0;       // sampled time spent below threshold
    Time time_to_recover = -1;   // recover instant - start; -1 = never
    bool recovered = false;
    std::uint64_t spurious_retx = 0;
    std::uint64_t timeouts = 0;
  };

  /// Starts sampling every `interval`; recovery means goodput back at
  /// `recover_threshold` x baseline.
  explicit RecoveryStats(Network& net, Time interval = microseconds(20),
                         double recover_threshold = 0.9);
  ~RecoveryStats();
  RecoveryStats(const RecoveryStats&) = delete;
  RecoveryStats& operator=(const RecoveryStats&) = delete;

  /// Registers the onset of fault episode; returns its index.
  std::size_t begin_episode(std::string label, Time t);
  /// Marks episode `idx` reverted at `t`.
  void end_episode(std::size_t idx, Time t);

  void stop();
  /// Stops sampling and computes per-episode metrics; call after the run.
  void finalize();

  const std::vector<Episode>& episodes() const { return episodes_; }

  /// Table headers/rows for the harness report (one row per episode).
  /// Static so results that carry copied episodes can render them too.
  static std::vector<std::string> table_headers();
  static std::vector<std::vector<std::string>> table_rows(const std::vector<Episode>& episodes);
  std::vector<std::vector<std::string>> table_rows() const { return table_rows(episodes_); }

 private:
  struct Sample {
    Time t = 0;
    std::uint64_t rx_bytes = 0;   // cumulative unique receiver bytes
    std::uint64_t spurious = 0;   // cumulative spurious retransmissions
    std::uint64_t timeouts = 0;   // cumulative sender timeouts
  };

  void arm();
  Sample snapshot() const;
  double goodput_gbps(std::size_t i) const;  // between samples i-1 and i

  Network& net_;
  Time interval_;
  double threshold_;
  EventId ev_ = kInvalidEvent;
  bool stopped_ = false;
  std::vector<Sample> samples_;
  std::vector<Episode> episodes_;
};

}  // namespace dcp
