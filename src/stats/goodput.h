#pragma once
// Goodput measurement for long-running flows (Figs. 10, 11, 17 and the
// long-haul experiment).

#include <cstdint>

#include "sim/time.h"
#include "topo/network.h"

namespace dcp {

/// Application-level goodput of a completed flow in Gbps.
inline double flow_goodput_gbps(const FlowRecord& rec) {
  if (!rec.complete() || rec.fct() <= 0) return 0.0;
  return static_cast<double>(rec.spec.bytes) * 8.0 / (static_cast<double>(rec.fct()) / kSecond) /
         1e9;
}

/// Receiver-side goodput (useful when the last ACK dominates a short run).
inline double flow_rx_goodput_gbps(const FlowRecord& rec) {
  if (rec.rx_done < 0 || rec.rx_fct() <= 0) return 0.0;
  return static_cast<double>(rec.spec.bytes) * 8.0 /
         (static_cast<double>(rec.rx_fct()) / kSecond) / 1e9;
}

}  // namespace dcp
