#include "stats/telemetry.h"

#include <algorithm>

namespace dcp {

FabricTelemetry::FabricTelemetry(Network& net, Time interval)
    : net_(net), interval_(interval) {
  arm();
}

FabricTelemetry::~FabricTelemetry() { stop(); }

void FabricTelemetry::stop() {
  stopped_ = true;
  if (ev_ != kInvalidEvent) {
    net_.sim().cancel(ev_);
    ev_ = kInvalidEvent;
  }
}

void FabricTelemetry::arm() {
  ev_ = net_.sim().schedule(interval_, [this] {
    ev_ = kInvalidEvent;
    if (stopped_) return;
    sample();
    arm();
  });
}

void FabricTelemetry::sample() {
  TelemetrySample s;
  s.t = net_.sim().now();
  std::uint64_t tx_total = 0;
  for (const auto& sw : net_.switches()) {
    s.total_buffered += sw->buffer().used();
    for (std::uint32_t p = 0; p < sw->num_ports(); ++p) {
      const Port& port = sw->port(p);
      s.max_data_queue =
          std::max(s.max_data_queue, port.queued_bytes(static_cast<int>(QueueClass::kData)));
      s.max_ctrl_queue =
          std::max(s.max_ctrl_queue, port.queued_bytes(static_cast<int>(QueueClass::kControl)));
      tx_total += port.stats().tx_bytes;
    }
  }
  s.tx_bytes_delta = tx_total - last_tx_bytes_;
  last_tx_bytes_ = tx_total;
  samples_.push_back(s);
}

std::uint64_t FabricTelemetry::peak_data_queue() const {
  std::uint64_t peak = 0;
  for (const auto& s : samples_) peak = std::max(peak, s.max_data_queue);
  return peak;
}

double FabricTelemetry::mean_throughput_gbps() const {
  if (samples_.size() < 2) return 0.0;
  std::uint64_t bytes = 0;
  for (std::size_t i = 1; i < samples_.size(); ++i) bytes += samples_[i].tx_bytes_delta;
  const Time span = samples_.back().t - samples_.front().t;
  if (span <= 0) return 0.0;
  return static_cast<double>(bytes) * 8.0 / (static_cast<double>(span) / kSecond) / 1e9;
}

double FabricTelemetry::data_queue_percentile(double p) const {
  PercentileEstimator pe;
  for (const auto& s : samples_) pe.add(static_cast<double>(s.max_data_queue));
  return pe.percentile(p);
}

}  // namespace dcp
