#include "stats/trace.h"

#include <cstdio>

namespace dcp {

PacketTracer::PacketTracer(Network& net, FlowId flow_filter, std::size_t max_events)
    : net_(net), filter_(flow_filter), cap_(max_events) {
  auto hook = [this](const Node& node, const Packet& pkt, std::uint32_t in_port) {
    record(node, pkt, in_port);
  };
  for (const auto& h : net_.hosts()) h->trace_hook = hook;
  for (const auto& s : net_.switches()) s->trace_hook = hook;
}

PacketTracer::~PacketTracer() { detach(); }

void PacketTracer::detach() {
  for (const auto& h : net_.hosts()) h->trace_hook = nullptr;
  for (const auto& s : net_.switches()) s->trace_hook = nullptr;
}

void PacketTracer::record(const Node& node, const Packet& pkt, std::uint32_t in_port) {
  if (filter_ != 0 && pkt.flow != filter_) return;
  if (events_.size() >= cap_) return;
  TraceEvent e;
  e.t = node.sim().now();  // the node's own shard clock, exact in sharded runs
  e.node = node.id();
  e.node_name = node.name();
  e.in_port = in_port;
  e.type = pkt.type;
  e.tag = pkt.tag;
  e.flow = pkt.flow;
  e.psn = pkt.psn;
  e.msn = pkt.msn;
  e.wire_bytes = pkt.wire_bytes;
  events_.push_back(std::move(e));
}

std::vector<TraceEvent> PacketTracer::flow_events(FlowId flow) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.flow == flow) out.push_back(e);
  }
  return out;
}

std::vector<NodeId> PacketTracer::path_of(FlowId flow, std::uint32_t psn, PktType type) const {
  std::vector<NodeId> out;
  for (const auto& e : events_) {
    if (e.flow == flow && e.psn == psn && e.type == type) out.push_back(e.node);
  }
  return out;
}

std::string PacketTracer::dump(std::size_t limit) const {
  std::string out;
  char line[160];
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (n++ >= limit) {
      out += "  ... (truncated)\n";
      break;
    }
    const char* type = "?";
    switch (e.type) {
      case PktType::kData: type = "DATA"; break;
      case PktType::kAck: type = "ACK"; break;
      case PktType::kSack: type = "SACK"; break;
      case PktType::kNack: type = "NACK"; break;
      case PktType::kCnp: type = "CNP"; break;
      case PktType::kHeaderOnly: type = "HO"; break;
      case PktType::kPfcPause: type = "PAUSE"; break;
      case PktType::kPfcResume: type = "RESUME"; break;
    }
    std::snprintf(line, sizeof(line), "  %10.3fus  %-8s port=%u  %-5s flow=%llu psn=%u msn=%u %uB\n",
                  to_us(e.t), e.node_name.c_str(), e.in_port, type,
                  static_cast<unsigned long long>(e.flow), e.psn, e.msn, e.wire_bytes);
    out += line;
  }
  return out;
}

}  // namespace dcp
