#include "stats/csv_export.h"

#include <cstdio>
#include <memory>

namespace dcp {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

bool export_flow_records_csv(const Network& net, const std::string& path) {
  File f(std::fopen(path.c_str(), "w"));
  if (!f) return false;
  std::fprintf(f.get(),
               "flow,src,dst,bytes,start_us,rx_done_us,tx_done_us,fct_us,slowdown,"
               "pkts_sent,retransmitted,timeouts,ho_received,duplicates,ooo,acks\n");
  for (const FlowRecord& rec : net.records()) {
    const double fct_us = rec.complete() ? to_us(rec.fct()) : -1.0;
    double slowdown = -1.0;
    if (rec.complete()) {
      const Time ideal = net.ideal_fct(rec.spec.src, rec.spec.dst, rec.spec.bytes);
      if (ideal > 0) slowdown = static_cast<double>(rec.fct()) / static_cast<double>(ideal);
    }
    std::fprintf(f.get(),
                 "%llu,%u,%u,%llu,%.3f,%.3f,%.3f,%.3f,%.4f,%llu,%llu,%llu,%llu,%llu,%llu,%llu\n",
                 static_cast<unsigned long long>(rec.spec.id), rec.spec.src, rec.spec.dst,
                 static_cast<unsigned long long>(rec.spec.bytes), to_us(rec.spec.start_time),
                 rec.rx_done >= 0 ? to_us(rec.rx_done) : -1.0,
                 rec.tx_done >= 0 ? to_us(rec.tx_done) : -1.0, fct_us, slowdown,
                 static_cast<unsigned long long>(rec.sender.data_packets_sent),
                 static_cast<unsigned long long>(rec.sender.retransmitted_packets),
                 static_cast<unsigned long long>(rec.sender.timeouts),
                 static_cast<unsigned long long>(rec.sender.ho_received),
                 static_cast<unsigned long long>(rec.receiver.duplicate_packets),
                 static_cast<unsigned long long>(rec.receiver.out_of_order_packets),
                 static_cast<unsigned long long>(rec.receiver.acks_sent));
  }
  return true;
}

bool export_fct_buckets_csv(FctStats& stats, const std::string& path,
                            const std::vector<double>& percentiles) {
  File f(std::fopen(path.c_str(), "w"));
  if (!f) return false;
  std::fprintf(f.get(), "bucket_hi_bytes,flows");
  for (double p : percentiles) std::fprintf(f.get(), ",p%g", p);
  std::fprintf(f.get(), "\n");
  const auto edges = stats.bucket_edges();
  for (std::size_t b = 0; b < stats.buckets().size(); ++b) {
    auto& bucket = stats.buckets()[b];
    if (bucket.slowdown.empty()) continue;
    if (edges[b] == UINT64_MAX) {
      std::fprintf(f.get(), "inf,%zu", bucket.slowdown.count());
    } else {
      std::fprintf(f.get(), "%llu,%zu", static_cast<unsigned long long>(edges[b]),
                   bucket.slowdown.count());
    }
    for (double p : percentiles) std::fprintf(f.get(), ",%.4f", bucket.slowdown.percentile(p));
    std::fprintf(f.get(), "\n");
  }
  return true;
}

bool export_telemetry_csv(const FabricTelemetry& tel, const std::string& path) {
  File f(std::fopen(path.c_str(), "w"));
  if (!f) return false;
  std::fprintf(f.get(), "t_us,max_data_queue,max_ctrl_queue,total_buffered,tx_bytes_delta\n");
  for (const TelemetrySample& s : tel.samples()) {
    std::fprintf(f.get(), "%.3f,%llu,%llu,%llu,%llu\n", to_us(s.t),
                 static_cast<unsigned long long>(s.max_data_queue),
                 static_cast<unsigned long long>(s.max_ctrl_queue),
                 static_cast<unsigned long long>(s.total_buffered),
                 static_cast<unsigned long long>(s.tx_bytes_delta));
  }
  return true;
}

}  // namespace dcp
