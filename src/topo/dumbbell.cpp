#include "topo/dumbbell.h"

namespace dcp {

BackToBack build_back_to_back(Network& net, Bandwidth bw, Time prop) {
  BackToBack t;
  t.a = net.add_host("hA", bw, prop);
  t.b = net.add_host("hB", bw, prop);
  net.direct_link(t.a, t.b);
  net.path_info = [bw, prop](NodeId, NodeId) {
    PathInfo pi;
    pi.bottleneck = bw;
    pi.one_way_delay = prop;
    pi.hops = 1;
    return pi;
  };
  return t;
}

Star build_star(Network& net, int hosts, const SwitchConfig& cfg, Bandwidth bw, Time prop) {
  Star t;
  t.sw = net.add_switch("sw", cfg);
  for (int i = 0; i < hosts; ++i) {
    Host* h = net.add_host("h" + std::to_string(i), bw, prop);
    net.attach(h, t.sw, bw, prop);
    t.hosts.push_back(h);
  }
  net.path_info = [bw, prop](NodeId, NodeId) {
    PathInfo pi;
    pi.bottleneck = bw;
    pi.one_way_delay = 2 * prop;
    pi.hops = 2;
    return pi;
  };
  return t;
}

}  // namespace dcp
