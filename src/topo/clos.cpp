#include "topo/clos.h"

#include <algorithm>

namespace dcp {

PfcConfig derive_pfc_thresholds(std::uint64_t buffer_bytes,
                                const std::vector<std::pair<Bandwidth, Time>>& ports) {
  PfcConfig pfc;
  pfc.enabled = true;
  // Headroom per port: a PAUSE takes one propagation to reach the upstream
  // and the upstream may have one propagation's worth already in flight,
  // plus one MTU in serialization each way.
  std::uint64_t headroom_total = 0;
  for (const auto& [bw, prop] : ports) {
    const double bytes_per_ps = 1.0 / static_cast<double>(bw.ps_per_byte);
    headroom_total +=
        static_cast<std::uint64_t>(2.0 * static_cast<double>(prop) * bytes_per_ps) + 2 * 2048;
  }
  const std::uint64_t usable = buffer_bytes > headroom_total ? buffer_bytes - headroom_total : 0;
  const std::uint64_t per_port =
      ports.empty() ? buffer_bytes : std::max<std::uint64_t>(usable / ports.size(), 16 * 1024);
  pfc.xoff_bytes = per_port;
  pfc.xon_bytes = per_port > 16 * 1024 ? per_port - 8 * 1024 : per_port / 2;
  return pfc;
}

ClosTopology build_clos(Network& net, ClosParams p) {
  ClosTopology topo;
  topo.params = p;

  // Derive PFC thresholds from the port mix if PFC is requested.
  if (p.sw.pfc.enabled) {
    std::vector<std::pair<Bandwidth, Time>> leaf_ports;
    for (int i = 0; i < p.hosts_per_leaf; ++i) leaf_ports.emplace_back(p.link, p.host_link_delay);
    for (int i = 0; i < p.spines; ++i) leaf_ports.emplace_back(p.link, p.leaf_spine_delay);
    p.sw.pfc = derive_pfc_thresholds(p.sw.buffer_bytes, leaf_ports);
    p.sw.pfc.enabled = true;
  }

  // Shard partitioning (no-op at shard_count() == 1): each leaf plus its
  // hosts forms a contiguous group mapped to one shard, spines spread
  // round-robin — so every cut edge is a leaf<->spine link and the
  // lookahead is p.leaf_spine_delay.
  const int ns = net.shard_count();
  for (int s = 0; s < p.spines; ++s) {
    net.set_build_shard(s % ns);
    topo.spines.push_back(net.add_switch("spine" + std::to_string(s), p.sw));
  }
  for (int l = 0; l < p.leaves; ++l) {
    net.set_build_shard(static_cast<int>(static_cast<long long>(l) * ns / p.leaves));
    Switch* leaf = net.add_switch("leaf" + std::to_string(l), p.sw);
    topo.leaves.push_back(leaf);
    for (int h = 0; h < p.hosts_per_leaf; ++h) {
      Host* host = net.add_host("h" + std::to_string(l) + "_" + std::to_string(h), p.link,
                                p.host_link_delay);
      net.attach(host, leaf, p.link, p.host_link_delay);
      topo.hosts.push_back(host);
    }
  }
  net.set_build_shard(0);

  // Leaf <-> spine full mesh.
  std::vector<std::vector<std::uint32_t>> leaf_uplink(p.leaves);   // [leaf][spine] -> port
  std::vector<std::vector<std::uint32_t>> spine_down(p.spines);    // [spine][leaf] -> port
  for (int l = 0; l < p.leaves; ++l) {
    leaf_uplink[l].resize(p.spines);
    for (int s = 0; s < p.spines; ++s) {
      auto [pl, ps] = net.link(topo.leaves[l], topo.spines[s], p.link, p.leaf_spine_delay);
      leaf_uplink[l][s] = pl;
      if (spine_down[s].size() < static_cast<std::size_t>(p.leaves)) {
        spine_down[s].resize(p.leaves);
      }
      spine_down[s][l] = ps;
    }
  }

  // Routes: leaves reach remote hosts through any spine; spines reach each
  // host through its leaf.
  for (int l = 0; l < p.leaves; ++l) {
    for (int hi = 0; hi < p.num_hosts(); ++hi) {
      if (topo.leaf_of(hi) == l) continue;  // direct host routes added by attach()
      for (int s = 0; s < p.spines; ++s) {
        topo.leaves[l]->routes().add_route(topo.hosts[hi]->id(), leaf_uplink[l][s]);
      }
    }
  }
  for (int s = 0; s < p.spines; ++s) {
    for (int hi = 0; hi < p.num_hosts(); ++hi) {
      topo.spines[s]->routes().add_route(topo.hosts[hi]->id(), spine_down[s][topo.leaf_of(hi)]);
    }
  }

  // Path metadata for ideal-FCT normalization.  Host ids are allocated in
  // ascending order, so same-leaf membership is recoverable by index.
  const int hpl = p.hosts_per_leaf;
  const Time hd = p.host_link_delay;
  const Time sd = p.leaf_spine_delay;
  const Bandwidth bw = p.link;
  std::vector<NodeId> host_ids;
  host_ids.reserve(topo.hosts.size());
  for (auto* h : topo.hosts) host_ids.push_back(h->id());
  net.path_info = [host_ids, hpl, hd, sd, bw](NodeId a, NodeId b) {
    PathInfo pi;
    pi.bottleneck = bw;
    auto index_of = [&host_ids](NodeId id) -> int {
      auto it = std::lower_bound(host_ids.begin(), host_ids.end(), id);
      return it != host_ids.end() && *it == id
                 ? static_cast<int>(it - host_ids.begin())
                 : -1;
    };
    const int ia = index_of(a);
    const int ib = index_of(b);
    if (ia >= 0 && ib >= 0 && ia / hpl == ib / hpl) {
      pi.one_way_delay = 2 * hd;
      pi.hops = 2;
    } else {
      pi.one_way_delay = 2 * hd + 2 * sd;
      pi.hops = 4;
    }
    return pi;
  };

  return topo;
}

}  // namespace dcp
