#include "topo/wan.h"

#include <algorithm>
#include <cassert>

namespace dcp {

WanTopology build_wan(Network& net, WanParams p) {
  assert(p.regions >= 2 && p.regions <= 8 && "WAN topology supports 2-8 regions");
  WanTopology topo;
  topo.params = p;

  // One natural shard per region (no-op when shard_count() == 1): a region
  // switch and its hosts stay on one core, the WAN mesh forming the cut.
  auto shard_of = [&](int region) {
    return net.shard_count() > 1 ? region % net.shard_count() : 0;
  };

  for (int r = 0; r < p.regions; ++r) {
    net.set_build_shard(shard_of(r));
    topo.region_sw.push_back(net.add_switch("region" + std::to_string(r), p.sw));
    for (int i = 0; i < p.hosts_per_region; ++i) {
      Host* h = net.add_host("r" + std::to_string(r) + "h" + std::to_string(i), p.host_link,
                             p.host_link_delay);
      net.attach(h, topo.region_sw[r], p.host_link, p.host_link_delay);
      topo.hosts.push_back(h);
    }
  }
  net.set_build_shard(0);

  // Full mesh of inter-region wires.  cross[a][b] is the port on region a's
  // switch whose channel leads to region b.
  std::vector<std::vector<std::uint32_t>> cross(p.regions,
                                                std::vector<std::uint32_t>(p.regions, 0));
  for (int a = 0; a < p.regions; ++a) {
    for (int b = a + 1; b < p.regions; ++b) {
      auto [pa, pb] = net.link(topo.region_sw[a], topo.region_sw[b], p.wan_link, p.wan_delay);
      cross[a][b] = pa;
      cross[b][a] = pb;
      if (p.wan_loss_rate > 0.0) {
        // Ambient loss, one independent substream per wire direction.  The
        // fault struct must outlive the run at a stable address (channels
        // keep a raw pointer), hence the unique_ptr store on the topology.
        const std::uint64_t tag =
            (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
        for (int dir = 0; dir < 2; ++dir) {
          auto wf = std::make_unique<WanTopology::WireFault>(
              mix64(p.wan_seed ^ mix64(tag * 2 + dir)));
          wf->fault.drop_rate = p.wan_loss_rate;
          Switch* src = dir == 0 ? topo.region_sw[a] : topo.region_sw[b];
          const std::uint32_t port = dir == 0 ? cross[a][b] : cross[b][a];
          src->port(port).channel().set_fault(&wf->fault);
          topo.wire_faults.push_back(std::move(wf));
        }
      }
    }
  }

  // Remote-region hosts route over the direct wire (single-path WAN: no
  // ECMP spraying across regions, which matches long-haul reality).
  for (int r = 0; r < p.regions; ++r) {
    for (int other = 0; other < p.regions; ++other) {
      if (other == r) continue;
      for (int i = 0; i < p.hosts_per_region; ++i) {
        const NodeId hid = topo.hosts[other * p.hosts_per_region + i]->id();
        topo.region_sw[r]->routes().add_route(hid, cross[r][other]);
      }
    }
  }

  const Time hd = p.host_link_delay;
  const Time wd = p.wan_delay;
  const int hpr = p.hosts_per_region;
  const Bandwidth host_bw = p.host_link;
  const Bandwidth wan_bw = p.wan_link;
  std::vector<NodeId> host_ids;
  for (auto* h : topo.hosts) host_ids.push_back(h->id());
  net.path_info = [host_ids, hpr, hd, wd, host_bw, wan_bw](NodeId a, NodeId b) {
    PathInfo pi;
    auto idx = [&host_ids](NodeId id) {
      auto it = std::lower_bound(host_ids.begin(), host_ids.end(), id);
      return it != host_ids.end() && *it == id ? static_cast<int>(it - host_ids.begin()) : -1;
    };
    const int ia = idx(a);
    const int ib = idx(b);
    const bool same_region = ia >= 0 && ib >= 0 && ia / hpr == ib / hpr;
    if (same_region) {
      pi.bottleneck = host_bw;
      pi.one_way_delay = 2 * hd;
      pi.hops = 2;
    } else {
      pi.bottleneck = host_bw.ps_per_byte > wan_bw.ps_per_byte ? host_bw : wan_bw;
      pi.one_way_delay = 2 * hd + wd;
      pi.hops = 3;
    }
    return pi;
  };

  return topo;
}

}  // namespace dcp
