#pragma once
// The paper's testbed (Fig. 9): two switches, 8 hosts each, connected by
// parallel cross-switch links.  Fig. 11 uses unequal cross-link capacities
// (1:1, 1:4, 1:10); Fig. 10/17 inject loss at switch 1.

#include <vector>

#include "topo/network.h"

namespace dcp {

struct TestbedParams {
  int hosts_per_switch = 8;
  Bandwidth host_link = Bandwidth::gbps(100);
  /// One entry per cross-switch link; the paper's default is 8 × 100 Gbps.
  std::vector<Bandwidth> cross_links = std::vector<Bandwidth>(8, Bandwidth::gbps(100));
  Time host_link_delay = microseconds(1);
  Time cross_link_delay = microseconds(1);  // 50 us models the 10 km fiber
  SwitchConfig sw;
};

struct TestbedTopology {
  TestbedParams params;
  std::vector<Host*> hosts;  // [0, hps) on switch 1; [hps, 2*hps) on switch 2
  Switch* sw1 = nullptr;
  Switch* sw2 = nullptr;
};

TestbedTopology build_testbed(Network& net, TestbedParams params);

}  // namespace dcp
