#include "topo/testbed.h"

#include <algorithm>

namespace dcp {

TestbedTopology build_testbed(Network& net, TestbedParams p) {
  TestbedTopology topo;
  topo.params = p;

  // Two natural shards (no-op when shard_count() == 1): each switch and
  // its hosts on one side, the cross links forming the cut.
  const int sw2_shard = net.shard_count() > 1 ? 1 : 0;
  net.set_build_shard(0);
  topo.sw1 = net.add_switch("sw1", p.sw);
  net.set_build_shard(sw2_shard);
  topo.sw2 = net.add_switch("sw2", p.sw);

  for (int i = 0; i < 2 * p.hosts_per_switch; ++i) {
    const bool side1 = i < p.hosts_per_switch;
    Switch* sw = side1 ? topo.sw1 : topo.sw2;
    net.set_build_shard(side1 ? 0 : sw2_shard);
    Host* h = net.add_host("h" + std::to_string(i), p.host_link, p.host_link_delay);
    net.attach(h, sw, p.host_link, p.host_link_delay);
    topo.hosts.push_back(h);
  }
  net.set_build_shard(0);

  std::vector<std::uint32_t> sw1_cross, sw2_cross;
  for (const Bandwidth bw : p.cross_links) {
    auto [p1, p2] = net.link(topo.sw1, topo.sw2, bw, p.cross_link_delay);
    sw1_cross.push_back(p1);
    sw2_cross.push_back(p2);
  }

  for (int i = 0; i < 2 * p.hosts_per_switch; ++i) {
    const bool on_sw1 = i < p.hosts_per_switch;
    const NodeId hid = topo.hosts[i]->id();
    // Remote switch reaches this host over every cross link.
    const auto& cross = on_sw1 ? sw2_cross : sw1_cross;
    Switch* remote = on_sw1 ? topo.sw2 : topo.sw1;
    for (std::uint32_t port : cross) remote->routes().add_route(hid, port);
  }

  const Time hd = p.host_link_delay;
  const Time cd = p.cross_link_delay;
  const int hps = p.hosts_per_switch;
  const Bandwidth bw = p.host_link;
  std::vector<NodeId> host_ids;
  for (auto* h : topo.hosts) host_ids.push_back(h->id());
  net.path_info = [host_ids, hps, hd, cd, bw](NodeId a, NodeId b) {
    PathInfo pi;
    pi.bottleneck = bw;
    auto idx = [&host_ids](NodeId id) {
      auto it = std::lower_bound(host_ids.begin(), host_ids.end(), id);
      return it != host_ids.end() && *it == id ? static_cast<int>(it - host_ids.begin()) : -1;
    };
    const int ia = idx(a);
    const int ib = idx(b);
    const bool same_side = ia >= 0 && ib >= 0 && (ia < hps) == (ib < hps);
    if (same_side) {
      pi.one_way_delay = 2 * hd;
      pi.hops = 2;
    } else {
      pi.one_way_delay = 2 * hd + cd;
      pi.hops = 3;
    }
    return pi;
  };

  return topo;
}

}  // namespace dcp
