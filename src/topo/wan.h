#pragma once
// WAN topology: 2-8 regions of hosts, each behind one region switch, the
// switches bridged by a full mesh of high-RTT, lossy, huge-BDP inter-region
// links.  The scenario axis beyond the paper's datacenter scope: ms-scale
// propagation makes PFC and packet trimming structurally impossible, and a
// ChannelFault on each direction of every inter-region wire models the
// ambient loss (1-20%) that the FEC tier is built for.  Regions shard
// naturally (one region per event core, the WAN links forming the cut).

#include <memory>
#include <vector>

#include "net/channel.h"
#include "topo/network.h"

namespace dcp {

struct WanParams {
  int regions = 3;  // 2..8
  int hosts_per_region = 4;
  Bandwidth host_link = Bandwidth::gbps(100);
  Time host_link_delay = microseconds(1);
  Bandwidth wan_link = Bandwidth::gbps(100);
  /// One-way propagation of every inter-region link.  25 ms is a
  /// continental span; at 100 Gbps that is a ~312 MB BDP per direction.
  Time wan_delay = milliseconds(25);
  /// Ambient random loss applied independently to each direction of each
  /// inter-region link (0 = clean wires and the no-fault fast path).
  double wan_loss_rate = 0.0;
  std::uint64_t wan_seed = 1;
  SwitchConfig sw;
};

struct WanTopology {
  /// Loss state for one direction of one inter-region wire.  Owned here
  /// (channels only hold pointers) with a dedicated Rng substream per
  /// direction, so draws stay deterministic per wire regardless of event
  /// interleaving across shards.
  struct WireFault {
    ChannelFault fault;
    Rng rng;
    explicit WireFault(std::uint64_t seed) : rng(seed) { fault.rng = &rng; }
  };

  WanParams params;
  std::vector<Host*> hosts;          // region r owns [r*hpr, (r+1)*hpr)
  std::vector<Switch*> region_sw;    // one per region
  std::vector<std::unique_ptr<WireFault>> wire_faults;

  int region_of_host(int host_index) const { return host_index / params.hosts_per_region; }

  /// Sum of random-loss drops across every inter-region wire direction.
  std::uint64_t wire_dropped() const {
    std::uint64_t n = 0;
    for (const auto& wf : wire_faults) n += wf->fault.dropped;
    return n;
  }
};

WanTopology build_wan(Network& net, WanParams params);

}  // namespace dcp
