#pragma once
// Two-layer CLOS (leaf-spine) topology, the simulation fabric of §6.2:
// 16 spines × 16 leaves × 16 hosts/leaf = 256 servers, every link 100 Gbps.
// Scaled-down variants keep the same structure for fast benches/tests.

#include <vector>

#include "topo/network.h"

namespace dcp {

struct ClosParams {
  int spines = 4;
  int leaves = 4;
  int hosts_per_leaf = 4;
  Bandwidth link = Bandwidth::gbps(100);
  Time host_link_delay = microseconds(1);
  Time leaf_spine_delay = microseconds(1);  // 500 us / 5 ms for cross-DC
  SwitchConfig sw;  // applied to every switch (PFC thresholds auto-derived)

  int num_hosts() const { return leaves * hosts_per_leaf; }
};

struct ClosTopology {
  ClosParams params;
  std::vector<Host*> hosts;
  std::vector<Switch*> leaves;
  std::vector<Switch*> spines;

  int leaf_of(int host_index) const { return host_index / params.hosts_per_leaf; }
};

/// Builds the fabric inside `net`, installs routes and path_info.
ClosTopology build_clos(Network& net, ClosParams params);

/// Derives PFC Xoff/Xon so that headroom for every port's in-flight bytes
/// is reserved out of the shared buffer (PFC-safety; see Table 1 logic).
PfcConfig derive_pfc_thresholds(std::uint64_t buffer_bytes,
                                const std::vector<std::pair<Bandwidth, Time>>& ports);

}  // namespace dcp
