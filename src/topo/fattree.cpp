#include "topo/fattree.h"

#include <algorithm>
#include <cassert>

namespace dcp {

FatTreeTopology build_fattree(Network& net, FatTreeParams p) {
  assert(p.k % 2 == 0 && "fat-tree arity must be even");
  FatTreeTopology topo;
  topo.params = p;
  const int half = p.k / 2;

  // Core switches.
  for (int c = 0; c < p.cores(); ++c) {
    topo.core.push_back(net.add_switch("core" + std::to_string(c), p.sw));
  }

  topo.edge.resize(static_cast<std::size_t>(p.pods()));
  topo.agg.resize(static_cast<std::size_t>(p.pods()));

  // Pods: edge + aggregation switches, hosts under edges.
  for (int pod = 0; pod < p.pods(); ++pod) {
    for (int i = 0; i < half; ++i) {
      topo.agg[static_cast<std::size_t>(pod)].push_back(
          net.add_switch("agg" + std::to_string(pod) + "_" + std::to_string(i), p.sw));
    }
    for (int i = 0; i < half; ++i) {
      Switch* e = net.add_switch("edge" + std::to_string(pod) + "_" + std::to_string(i), p.sw);
      topo.edge[static_cast<std::size_t>(pod)].push_back(e);
      for (int h = 0; h < half; ++h) {
        Host* host = net.add_host(
            "h" + std::to_string(pod) + "_" + std::to_string(i) + "_" + std::to_string(h),
            p.link, p.link_delay);
        net.attach(host, e, p.link, p.link_delay);
        topo.hosts.push_back(host);
      }
    }
  }

  // Edge <-> agg full mesh within each pod.
  // edge_up[pod][e][a] = port on edge e toward agg a, and vice versa.
  std::vector<std::vector<std::vector<std::uint32_t>>> edge_up(
      static_cast<std::size_t>(p.pods()));
  std::vector<std::vector<std::vector<std::uint32_t>>> agg_down(
      static_cast<std::size_t>(p.pods()));
  for (int pod = 0; pod < p.pods(); ++pod) {
    auto& eu = edge_up[static_cast<std::size_t>(pod)];
    auto& ad = agg_down[static_cast<std::size_t>(pod)];
    eu.assign(static_cast<std::size_t>(half), std::vector<std::uint32_t>(half));
    ad.assign(static_cast<std::size_t>(half), std::vector<std::uint32_t>(half));
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) {
        auto [pe, pa] = net.link(topo.edge[static_cast<std::size_t>(pod)][e],
                                 topo.agg[static_cast<std::size_t>(pod)][a], p.link, p.link_delay);
        eu[static_cast<std::size_t>(e)][static_cast<std::size_t>(a)] = pe;
        ad[static_cast<std::size_t>(a)][static_cast<std::size_t>(e)] = pa;
      }
    }
  }

  // Agg <-> core: aggregation switch a of every pod connects to cores
  // [a*half, (a+1)*half).
  std::vector<std::vector<std::uint32_t>> agg_up(
      static_cast<std::size_t>(p.pods() * half));  // [pod*half+a][j] port to core a*half+j
  std::vector<std::vector<std::uint32_t>> core_down(static_cast<std::size_t>(p.cores()));
  for (auto& v : core_down) v.resize(static_cast<std::size_t>(p.pods()));
  for (int pod = 0; pod < p.pods(); ++pod) {
    for (int a = 0; a < half; ++a) {
      auto& up = agg_up[static_cast<std::size_t>(pod * half + a)];
      up.resize(static_cast<std::size_t>(half));
      for (int j = 0; j < half; ++j) {
        const int c = a * half + j;
        auto [pa, pc] = net.link(topo.agg[static_cast<std::size_t>(pod)][a],
                                 topo.core[static_cast<std::size_t>(c)], p.link, p.link_delay);
        up[static_cast<std::size_t>(j)] = pa;
        core_down[static_cast<std::size_t>(c)][static_cast<std::size_t>(pod)] = pc;
      }
    }
  }

  // Routes.
  const int hosts_per_pod = half * half;
  for (int hi = 0; hi < p.hosts(); ++hi) {
    const NodeId hid = topo.hosts[static_cast<std::size_t>(hi)]->id();
    const int hpod = topo.pod_of(hi);
    const int hedge = topo.edge_of(hi);

    // Edge switches: same edge -> direct (installed by attach); other edges
    // go up to any agg in the pod.
    for (int pod = 0; pod < p.pods(); ++pod) {
      for (int e = 0; e < half; ++e) {
        if (pod == hpod && e == hedge) continue;
        for (int a = 0; a < half; ++a) {
          topo.edge[static_cast<std::size_t>(pod)][e]->routes().add_route(
              hid, edge_up[static_cast<std::size_t>(pod)][static_cast<std::size_t>(e)]
                          [static_cast<std::size_t>(a)]);
        }
      }
    }
    // Aggregation switches: same pod -> down to the host's edge; other pods
    // -> up to any of this agg's cores.
    for (int pod = 0; pod < p.pods(); ++pod) {
      for (int a = 0; a < half; ++a) {
        Switch* sw = topo.agg[static_cast<std::size_t>(pod)][a];
        if (pod == hpod) {
          sw->routes().add_route(
              hid, agg_down[static_cast<std::size_t>(pod)][static_cast<std::size_t>(a)]
                           [static_cast<std::size_t>(hedge)]);
        } else {
          for (std::uint32_t port : agg_up[static_cast<std::size_t>(pod * half + a)]) {
            sw->routes().add_route(hid, port);
          }
        }
      }
    }
    // Core switches: down to the host's pod.
    for (int c = 0; c < p.cores(); ++c) {
      topo.core[static_cast<std::size_t>(c)]->routes().add_route(
          hid, core_down[static_cast<std::size_t>(c)][static_cast<std::size_t>(hpod)]);
    }
  }

  // Path metadata.
  std::vector<NodeId> host_ids;
  for (auto* h : topo.hosts) host_ids.push_back(h->id());
  const Time d = p.link_delay;
  const Bandwidth bw = p.link;
  const int hpp = hosts_per_pod;
  net.path_info = [host_ids, half, hpp, d, bw](NodeId a, NodeId b) {
    PathInfo pi;
    pi.bottleneck = bw;
    auto idx = [&host_ids](NodeId id) {
      auto it = std::lower_bound(host_ids.begin(), host_ids.end(), id);
      return it != host_ids.end() && *it == id ? static_cast<int>(it - host_ids.begin()) : -1;
    };
    const int ia = idx(a);
    const int ib = idx(b);
    if (ia >= 0 && ib >= 0) {
      if (ia / half == ib / half) {  // same edge switch
        pi.one_way_delay = 2 * d;
        pi.hops = 2;
        return pi;
      }
      if (ia / hpp == ib / hpp) {  // same pod, via aggregation
        pi.one_way_delay = 4 * d;
        pi.hops = 4;
        return pi;
      }
    }
    pi.one_way_delay = 6 * d;  // via core
    pi.hops = 6;
    return pi;
  };

  return topo;
}

}  // namespace dcp
