#include "topo/fattree.h"

#include <algorithm>
#include <cassert>

namespace dcp {

FatTreeTopology build_fattree(Network& net, FatTreeParams p) {
  assert(p.k % 2 == 0 && "fat-tree arity must be even");
  FatTreeTopology topo;
  topo.params = p;
  const int half = p.k / 2;
  const int shards = net.shard_count();

  // Route cache sized for the concurrent (flow, hop) population: 4 slots
  // per host absorbs both directions of a couple of active flows per host
  // without evictions.  Clamped so small trees keep the historical default
  // and giant ones stay a few hundred KB per switch.
  SwitchConfig swcfg = p.sw;
  if (p.route_cache_slots != 0) {
    swcfg.route_cache_slots = p.route_cache_slots;
  } else {
    const std::uint64_t want = static_cast<std::uint64_t>(p.hosts()) * 4;
    swcfg.route_cache_slots = static_cast<std::uint32_t>(
        std::clamp<std::uint64_t>(want, RouteCache::kDefaultSlots, 8192));
  }

  // Core switches, spread round-robin across shards: every agg<->core link
  // is then the (only) shard cut, so the conservative lookahead equals one
  // link propagation.
  for (int c = 0; c < p.cores(); ++c) {
    net.set_build_shard(shards > 0 ? c % shards : 0);
    topo.core.push_back(net.add_switch("core" + std::to_string(c), swcfg));
  }

  topo.edge.resize(static_cast<std::size_t>(p.pods()));
  topo.agg.resize(static_cast<std::size_t>(p.pods()));

  // Pods: edge + aggregation switches, hosts under edges.  A pod is placed
  // whole on one shard (pod*shards/pods), so edge<->agg and host<->edge
  // links never cross shards.
  for (int pod = 0; pod < p.pods(); ++pod) {
    net.set_build_shard(pod * shards / p.pods());
    for (int i = 0; i < half; ++i) {
      topo.agg[static_cast<std::size_t>(pod)].push_back(
          net.add_switch("agg" + std::to_string(pod) + "_" + std::to_string(i), swcfg));
    }
    for (int i = 0; i < half; ++i) {
      Switch* e = net.add_switch("edge" + std::to_string(pod) + "_" + std::to_string(i), swcfg);
      topo.edge[static_cast<std::size_t>(pod)].push_back(e);
      for (int h = 0; h < half; ++h) {
        Host* host = net.add_host(
            "h" + std::to_string(pod) + "_" + std::to_string(i) + "_" + std::to_string(h),
            p.link, p.link_delay);
        net.attach(host, e, p.link, p.link_delay);
        topo.hosts.push_back(host);
      }
    }
  }
  net.set_build_shard(0);

  // Edge <-> agg full mesh within each pod.
  // edge_up[pod][e][a] = port on edge e toward agg a, and vice versa.
  std::vector<std::vector<std::vector<std::uint32_t>>> edge_up(
      static_cast<std::size_t>(p.pods()));
  std::vector<std::vector<std::vector<std::uint32_t>>> agg_down(
      static_cast<std::size_t>(p.pods()));
  for (int pod = 0; pod < p.pods(); ++pod) {
    auto& eu = edge_up[static_cast<std::size_t>(pod)];
    auto& ad = agg_down[static_cast<std::size_t>(pod)];
    eu.assign(static_cast<std::size_t>(half), std::vector<std::uint32_t>(half));
    ad.assign(static_cast<std::size_t>(half), std::vector<std::uint32_t>(half));
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) {
        auto [pe, pa] = net.link(topo.edge[static_cast<std::size_t>(pod)][e],
                                 topo.agg[static_cast<std::size_t>(pod)][a], p.link, p.link_delay);
        eu[static_cast<std::size_t>(e)][static_cast<std::size_t>(a)] = pe;
        ad[static_cast<std::size_t>(a)][static_cast<std::size_t>(e)] = pa;
      }
    }
  }

  // Agg <-> core: aggregation switch a of every pod connects to cores
  // [a*half, (a+1)*half).
  std::vector<std::vector<std::uint32_t>> agg_up(
      static_cast<std::size_t>(p.pods() * half));  // [pod*half+a][j] port to core a*half+j
  std::vector<std::vector<std::uint32_t>> core_down(static_cast<std::size_t>(p.cores()));
  for (auto& v : core_down) v.resize(static_cast<std::size_t>(p.pods()));
  for (int pod = 0; pod < p.pods(); ++pod) {
    for (int a = 0; a < half; ++a) {
      auto& up = agg_up[static_cast<std::size_t>(pod * half + a)];
      up.resize(static_cast<std::size_t>(half));
      for (int j = 0; j < half; ++j) {
        const int c = a * half + j;
        auto [pa, pc] = net.link(topo.agg[static_cast<std::size_t>(pod)][a],
                                 topo.core[static_cast<std::size_t>(c)], p.link, p.link_delay);
        up[static_cast<std::size_t>(j)] = pa;
        core_down[static_cast<std::size_t>(c)][static_cast<std::size_t>(pod)] = pc;
      }
    }
  }

  // Routes, per switch instead of per (host, switch) — the builder used to
  // replicate the uplink list into a dense table for every one of the
  // hosts() destinations on every edge/agg switch, an O(hosts x switches)
  // memory and time blow-up at k>=16.  Up-routes are position-independent,
  // so they become each switch's default group (same candidate order as the
  // old per-destination lists: aggs in index order on edges, cores in index
  // order on aggs — ECMP picks are bit-identical).  Only down-routes, which
  // do depend on the destination, get per-host entries.
  const int hosts_per_pod = half * half;
  for (int pod = 0; pod < p.pods(); ++pod) {
    for (int e = 0; e < half; ++e) {
      topo.edge[static_cast<std::size_t>(pod)][e]->routes().set_default_routes(
          edge_up[static_cast<std::size_t>(pod)][static_cast<std::size_t>(e)]);
    }
    for (int a = 0; a < half; ++a) {
      Switch* sw = topo.agg[static_cast<std::size_t>(pod)][a];
      sw->routes().set_default_routes(agg_up[static_cast<std::size_t>(pod * half + a)]);
      for (int hp = 0; hp < hosts_per_pod; ++hp) {
        const int hi = pod * hosts_per_pod + hp;
        sw->routes().add_route(
            topo.hosts[static_cast<std::size_t>(hi)]->id(),
            agg_down[static_cast<std::size_t>(pod)][static_cast<std::size_t>(a)]
                    [static_cast<std::size_t>(topo.edge_of(hi))]);
      }
    }
  }
  for (int c = 0; c < p.cores(); ++c) {
    Switch* sw = topo.core[static_cast<std::size_t>(c)];
    for (int hi = 0; hi < p.hosts(); ++hi) {
      sw->routes().add_route(
          topo.hosts[static_cast<std::size_t>(hi)]->id(),
          core_down[static_cast<std::size_t>(c)][static_cast<std::size_t>(topo.pod_of(hi))]);
    }
  }

  // Path metadata.
  std::vector<NodeId> host_ids;
  for (auto* h : topo.hosts) host_ids.push_back(h->id());
  const Time d = p.link_delay;
  const Bandwidth bw = p.link;
  const int hpp = hosts_per_pod;
  net.path_info = [host_ids, half, hpp, d, bw](NodeId a, NodeId b) {
    PathInfo pi;
    pi.bottleneck = bw;
    auto idx = [&host_ids](NodeId id) {
      auto it = std::lower_bound(host_ids.begin(), host_ids.end(), id);
      return it != host_ids.end() && *it == id ? static_cast<int>(it - host_ids.begin()) : -1;
    };
    const int ia = idx(a);
    const int ib = idx(b);
    if (ia >= 0 && ib >= 0) {
      if (ia / half == ib / half) {  // same edge switch
        pi.one_way_delay = 2 * d;
        pi.hops = 2;
        return pi;
      }
      if (ia / hpp == ib / hpp) {  // same pod, via aggregation
        pi.one_way_delay = 4 * d;
        pi.hops = 4;
        return pi;
      }
    }
    pi.one_way_delay = 6 * d;  // via core
    pi.hops = 6;
    return pi;
  };

  return topo;
}

}  // namespace dcp
