#pragma once
// Minimal fixtures: two hosts back-to-back (perftest-style, Fig. 8) and a
// single-switch star used by unit tests.

#include <vector>

#include "topo/network.h"

namespace dcp {

struct BackToBack {
  Host* a = nullptr;
  Host* b = nullptr;
};

/// Two directly cabled hosts.
BackToBack build_back_to_back(Network& net, Bandwidth bw = Bandwidth::gbps(100),
                              Time prop = microseconds(1));

struct Star {
  Switch* sw = nullptr;
  std::vector<Host*> hosts;
};

/// N hosts hanging off one switch.
Star build_star(Network& net, int hosts, const SwitchConfig& cfg,
                Bandwidth bw = Bandwidth::gbps(100), Time prop = microseconds(1));

}  // namespace dcp
