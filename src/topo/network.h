#pragma once
// Network: owns every node, wires topologies, instantiates per-flow
// transports through the configured scheme factory, and records flow
// completion metrics.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "host/host.h"
#include "host/transport.h"
#include "net/packet.h"
#include "sim/shard.h"
#include "switch/switch.h"

namespace dcp {

class StateIO;

/// Shortest-path properties between two hosts, used for ideal-FCT
/// normalization (FCT slowdown).  Installed by topology builders.
struct PathInfo {
  Time one_way_delay = 0;     // propagation only
  int hops = 2;               // store-and-forward stages (links traversed)
  Bandwidth bottleneck = Bandwidth::gbps(100);
};

struct FlowRecord {
  FlowSpec spec;
  Time rx_done = -1;  // receiver has every byte
  Time tx_done = -1;  // sender fully acknowledged
  SenderStats sender;
  ReceiverStats receiver;
  bool complete() const { return tx_done >= 0; }
  Time fct() const { return tx_done - spec.start_time; }
  Time rx_fct() const { return rx_done - spec.start_time; }
};

class Network {
 public:
  Network(Simulator& sim, Logger& log) : sim_(sim), log_(log) {}
  /// Shard-aware construction: nodes are created on the shard selected by
  /// set_build_shard() and the run loop advances the group in lookahead
  /// windows.  A group of size 1 is bit-for-bit the serial path.
  Network(ShardGroup& shards, Logger& log)
      : sim_(shards.sim(0)), log_(log), shards_(&shards) {}

  // ---- Construction -----------------------------------------------------
  Host* add_host(const std::string& name, Bandwidth nic_bw, Time link_prop);
  Switch* add_switch(const std::string& name, const SwitchConfig& cfg);
  /// Full-duplex host<->switch attachment; returns the switch port index.
  std::uint32_t attach(Host* h, Switch* s, Bandwidth bw, Time prop);
  /// Full-duplex switch<->switch link; returns {port_on_a, port_on_b}.
  std::pair<std::uint32_t, std::uint32_t> link(Switch* a, Switch* b, Bandwidth bw, Time prop);
  /// Direct host<->host cable (back-to-back benchmarks).
  void direct_link(Host* a, Host* b);

  // ---- Scheme & flows ---------------------------------------------------
  void set_factory(std::shared_ptr<TransportFactory> f) { factory_ = std::move(f); }
  TransportFactory* factory() { return factory_.get(); }
  void set_transport_config(const TransportConfig& cfg) { tcfg_ = cfg; }
  TransportConfig& transport_config() { return tcfg_; }

  /// Registers and schedules a flow; returns its id.  spec.id/sport are
  /// assigned here.
  FlowId start_flow(FlowSpec spec);

  /// Shifts the UDP source-port sequence (varies ECMP hashing across
  /// otherwise identical runs).
  void set_sport_base(std::uint16_t base) { next_sport_ = base; }

  std::size_t flows_started() const { return records_.size(); }
  std::size_t flows_completed() const { return completed_; }
  bool all_flows_done() const { return completed_ == records_.size(); }
  const std::vector<FlowRecord>& records() const { return records_; }
  FlowRecord& record(FlowId id) { return records_[index_.at(id)]; }

  /// Per-flow completion hook (fires when the sender finishes).
  std::function<void(const FlowRecord&)> on_flow_complete;
  /// Additional listeners (workloads chaining dependent flows).
  void add_tx_listener(std::function<void(const FlowRecord&)> fn) {
    tx_listeners_.push_back(std::move(fn));
  }
  /// Fires when the receiver has every byte (before the final ACK lands).
  void add_rx_listener(std::function<void(const FlowRecord&)> fn) {
    rx_listeners_.push_back(std::move(fn));
  }

  // ---- Introspection ----------------------------------------------------
  Host* host(NodeId id);
  const std::vector<std::unique_ptr<Host>>& hosts() const { return hosts_; }
  const std::vector<std::unique_ptr<Switch>>& switches() const { return switches_; }
  Simulator& sim() { return sim_; }
  Logger& log() { return log_; }

  // ---- Space-parallel sharding (see sim/shard.h) ------------------------
  /// The group driving this network, or nullptr for plain construction.
  ShardGroup* shard_group() { return shards_; }
  /// Number of shards nodes may be assigned to (1 without a group).
  int shard_count() const { return shards_ != nullptr ? shards_->size() : 1; }
  /// Topology builders select the shard subsequent nodes are created on.
  void set_build_shard(int s) {
    build_shard_ = (shards_ != nullptr && s >= 0 && s < shards_->size()) ? s : 0;
  }
  int shard_of(NodeId id) const { return shard_of_node_[id]; }
  /// Arms the observer on every shard's simulator (serial: just sim()).
  void set_check_observer_all(CheckObserver* ob);

  /// Path metadata for ideal-FCT; installed by topology builders.
  std::function<PathInfo(NodeId, NodeId)> path_info;

  /// Ideal (unloaded-network) sender-side FCT for a flow: first-packet
  /// pipeline latency + serialization of the remaining bytes + ACK return.
  Time ideal_fct(NodeId src, NodeId dst, std::uint64_t bytes) const;

  /// Runs the simulation until all flows complete or `max_time` elapses.
  void run_until_done(Time max_time);

  // ---- Checkpoint/restore (sim/snapshot.h) ------------------------------
  /// Runs every event with time strictly below `t` — and, under sharding,
  /// commits every window barrier — leaving the world at a barrier-safe
  /// snapshot point.  Resuming with run_until_done() is bit-identical to a
  /// run that never stopped.
  void run_to(Time t);
  /// Like run_to(t), but follows run_until_done(max_time)'s CANONICAL
  /// trajectory: same slice grid, same stop-at-boundary-when-done rule.
  /// Returns the barrier-safe pause point actually reached — t when the
  /// canonical run is still live there, or (canonical stop + 1) when the
  /// run would have ended before t.  Snapshots must use this, not
  /// run_to(): running a finished world past its canonical stopping
  /// boundary executes trailing timer events the uninterrupted run never
  /// sees, and the resumed digest would not match.
  Time run_to_paused(Time t, Time max_time);
  /// Restore prep on a freshly built target: flips shard-run mode on
  /// (mailbox channels, journals, remap hooks) without running a window,
  /// so cross-shard state can be overlaid.  No-op when serial.
  void prepare_shard_run();
  /// Restore prep: cancels the flow-start events of flows whose start time
  /// lies strictly before `t` — the saved run already executed them, and
  /// their effects are overlaid by checkpoint() instead.
  void cancel_started_flows(Time t);
  /// Flow records, completion counts, then every host and switch in node
  /// order.  Fails the stream when a window effect is still pending (the
  /// caller did not stop at a barrier).
  void checkpoint(StateIO& io);

  // Aggregate switch counters (across all switches).
  Switch::Stats total_switch_stats() const;

 private:
  void wire_host_hooks(Host* h);
  void finalize_flow(FlowId id);
  Simulator& build_sim() { return shards_ != nullptr ? shards_->sim(build_shard_) : sim_; }

  /// One sender-done observed during a window, finalized at the barrier.
  /// The sender's stats are snapshotted HERE (at the exact serial read
  /// point — later events in the window must not leak in); the receiver's
  /// come from the destination host's journal at the same key.
  struct PendingFinalize {
    FlowId id = 0;
    Time t = 0;
    std::uint64_t seq = 0;
    SenderStats sender;
  };
  struct PendingRx {
    FlowId id = 0;
    Time t = 0;
    std::uint64_t seq = 0;
  };

  /// Lazily flips the network into sharded-run mode: locates cut channels,
  /// computes the lookahead, arms journals and remap hooks.
  void finalize_shards();
  void run_to_sharded(Time t);
  Time run_to_paused_sharded(Time t, Time max_time);
  /// Barrier step: finalize pending flows in serial order, fire deferred
  /// rx listeners, prune journals.  Only effects at or below `frontier`
  /// (the group's commit frontier — every shard has executed everything up
  /// to it) are applied; later ones stay pending so cross-barrier listener
  /// order matches the serial run exactly.
  void commit_window_effects(Time frontier);
  void run_until_done_sharded(Time max_time);
  void finalize_flow_at(const PendingFinalize& p);

  Simulator& sim_;
  Logger& log_;
  ShardGroup* shards_ = nullptr;
  int build_shard_ = 0;
  std::vector<int> shard_of_node_;
  bool shards_finalized_ = false;
  bool shard_run_active_ = false;
  std::vector<std::vector<PendingFinalize>> pending_fin_;  // [shard], own thread only
  std::vector<std::vector<PendingRx>> pending_rx_;         // [shard], own thread only
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::unordered_map<NodeId, Host*> host_by_id_;
  std::shared_ptr<TransportFactory> factory_;
  TransportConfig tcfg_;
  std::vector<FlowRecord> records_;
  std::vector<EventId> start_ev_;  // flow-start events, aligned with records_
  std::vector<std::function<void(const FlowRecord&)>> tx_listeners_;
  std::vector<std::function<void(const FlowRecord&)>> rx_listeners_;
  std::unordered_map<FlowId, std::size_t> index_;
  std::size_t completed_ = 0;
  FlowId next_flow_ = 1;
  std::uint16_t next_sport_ = 10000;
  NodeId next_node_ = 0;
};

}  // namespace dcp
