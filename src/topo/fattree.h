#pragma once
// Three-tier k-ary fat-tree (Al-Fares et al.): k pods, (k/2)^2 core
// switches, k/2 aggregation + k/2 edge switches per pod, (k/2)^2 hosts per
// pod.  Complements the paper's two-tier CLOS for experiments that need
// multi-stage multipath (two independent AR decisions per direction).

#include <vector>

#include "topo/network.h"

namespace dcp {

struct FatTreeParams {
  int k = 4;  // must be even; k=4 -> 16 hosts, k=8 -> 128 hosts
  Bandwidth link = Bandwidth::gbps(100);
  Time link_delay = microseconds(1);
  SwitchConfig sw;
  // Per-switch ECMP route-cache slots; 0 sizes it from the topology
  // (4 x hosts, clamped to [512, 8192]) so 10k-flow runs at k=16-32 do not
  // thrash the historical 512-slot direct-mapped cache.  Output-invisible.
  std::uint32_t route_cache_slots = 0;

  int pods() const { return k; }
  int hosts() const { return k * k * k / 4; }
  int edge_per_pod() const { return k / 2; }
  int agg_per_pod() const { return k / 2; }
  int cores() const { return k * k / 4; }
};

struct FatTreeTopology {
  FatTreeParams params;
  std::vector<Host*> hosts;                        // pod-major order
  std::vector<std::vector<Switch*>> edge;          // [pod][i]
  std::vector<std::vector<Switch*>> agg;           // [pod][i]
  std::vector<Switch*> core;

  int pod_of(int host_index) const {
    return host_index / (params.k * params.k / 4);
  }
  int edge_of(int host_index) const {
    return (host_index % (params.k * params.k / 4)) / (params.k / 2);
  }
};

/// Builds the fat-tree inside `net`, installs routes (up: any valid
/// uplink; down: deterministic) and path_info.
///
/// Shard-aware: when `net` is driven by a ShardGroup, pods are assigned
/// whole to shards (pod p -> shard p*shards/pods) and core switches are
/// spread round-robin, so every cross-shard link is an aggregation<->core
/// hop and the conservative lookahead is that link's propagation delay.
/// Up-routes are installed as per-switch default groups (one shared ECMP
/// list instead of hosts() copies), keeping the k=32 route state in
/// megabytes; candidate order matches the per-destination install order
/// exactly, so picks — and digests — are unchanged.
FatTreeTopology build_fattree(Network& net, FatTreeParams params);

}  // namespace dcp
