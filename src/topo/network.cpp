#include "topo/network.h"

#include <cassert>

namespace dcp {

Host* Network::add_host(const std::string& name, Bandwidth nic_bw, Time link_prop) {
  auto h = std::make_unique<Host>(sim_, log_, next_node_++, name, nic_bw, link_prop);
  Host* raw = h.get();
  host_by_id_[raw->id()] = raw;
  wire_host_hooks(raw);
  hosts_.push_back(std::move(h));
  return raw;
}

Switch* Network::add_switch(const std::string& name, const SwitchConfig& cfg) {
  const NodeId id = next_node_++;
  auto s = std::make_unique<Switch>(sim_, log_, id, name, cfg, /*seed=*/0x5eedULL + id);
  Switch* raw = s.get();
  switches_.push_back(std::move(s));
  return raw;
}

std::uint32_t Network::attach(Host* h, Switch* s, Bandwidth bw, Time prop) {
  const std::uint32_t sp = s->add_port(bw, prop);
  s->connect(sp, h, 0);
  h->connect(s, sp);
  s->routes().add_route(h->id(), sp);
  return sp;
}

std::pair<std::uint32_t, std::uint32_t> Network::link(Switch* a, Switch* b, Bandwidth bw,
                                                      Time prop) {
  const std::uint32_t pa = a->add_port(bw, prop);
  const std::uint32_t pb = b->add_port(bw, prop);
  a->connect(pa, b, pb);
  b->connect(pb, a, pa);
  return {pa, pb};
}

void Network::direct_link(Host* a, Host* b) {
  a->connect(b, 0);
  b->connect(a, 0);
}

void Network::wire_host_hooks(Host* h) {
  h->on_sender_done = [this](FlowId id) { finalize_flow(id); };
  h->on_receiver_done = [this](FlowId id) {
    FlowRecord& rec = record(id);
    rec.rx_done = sim_.now();
    for (auto& fn : rx_listeners_) fn(rec);
  };
}

FlowId Network::start_flow(FlowSpec spec) {
  assert(factory_ && "set_factory() before start_flow()");
  spec.id = next_flow_++;
  spec.sport = next_sport_++;
  if (next_sport_ < 10000) next_sport_ = 10000;

  Host* src = host_by_id_.at(spec.src);
  Host* dst = host_by_id_.at(spec.dst);
  assert(src != dst && "loopback flows are not modeled");

  FlowRecord rec;
  rec.spec = spec;
  index_[spec.id] = records_.size();
  records_.push_back(rec);

  dst->add_receiver(factory_->make_receiver(sim_, *dst, spec, tcfg_));
  src->add_sender(factory_->make_sender(sim_, *src, spec, tcfg_));

  SenderTransport* snd = src->sender(spec.id);
  // Far event: with staggered arrivals hundreds of starts sit pending for
  // most of the run; parking them keeps the packet heap shallow.
  sim_.schedule_at_far(spec.start_time, [snd] { snd->start(); });
  return spec.id;
}

void Network::finalize_flow(FlowId id) {
  FlowRecord& rec = record(id);
  if (rec.tx_done >= 0) return;
  rec.tx_done = sim_.now();
  Host* src = host_by_id_.at(rec.spec.src);
  Host* dst = host_by_id_.at(rec.spec.dst);
  if (auto* s = src->sender(id)) rec.sender = s->stats();
  if (auto* r = dst->receiver(id)) rec.receiver = r->stats();
  ++completed_;
  if (on_flow_complete) on_flow_complete(rec);
  for (auto& fn : tx_listeners_) fn(rec);
}

Host* Network::host(NodeId id) {
  auto it = host_by_id_.find(id);
  return it == host_by_id_.end() ? nullptr : it->second;
}

Time Network::ideal_fct(NodeId src, NodeId dst, std::uint64_t bytes) const {
  PathInfo pi;
  if (path_info) pi = path_info(src, dst);
  const std::uint64_t mtu = tcfg_.mtu_payload;
  const std::uint64_t pkts = bytes == 0 ? 1 : (bytes + mtu - 1) / mtu;
  const std::uint64_t hdr = HeaderSizes::kDcpHeaderOnly + HeaderSizes::kReth;
  const std::uint64_t wire = bytes + pkts * hdr;
  const std::uint64_t first_pkt = std::min<std::uint64_t>(wire, mtu + hdr);
  // First packet pipelines through `hops` store-and-forward stages, the
  // rest stream behind it at the bottleneck, then the final ACK returns.
  Time t = pi.one_way_delay;
  t += static_cast<Time>(pi.hops) * pi.bottleneck.serialize(static_cast<std::int64_t>(first_pkt));
  t += pi.bottleneck.serialize(static_cast<std::int64_t>(wire - first_pkt));
  t += pi.one_way_delay + pi.bottleneck.serialize(HeaderSizes::kDcpAck);
  return t;
}

void Network::run_until_done(Time max_time) {
  // Run in slices so we can stop as soon as all flows complete.
  const Time slice = std::max<Time>(microseconds(100), max_time / 10000);
  while (!all_flows_done() && sim_.now() < max_time) {
    const Time next = std::min(max_time, sim_.now() + slice);
    sim_.run(next);
    if (sim_.idle()) break;
  }
}

Switch::Stats Network::total_switch_stats() const {
  Switch::Stats total;
  for (const auto& s : switches_) {
    const auto& st = s->stats();
    total.forwarded += st.forwarded;
    total.trimmed += st.trimmed;
    total.injected_trims += st.injected_trims;
    total.dropped_data += st.dropped_data;
    total.dropped_ho += st.dropped_ho;
    total.ho_seen += st.ho_seen;
    total.dropped_ctrl += st.dropped_ctrl;
    total.dropped_buffer_full += st.dropped_buffer_full;
    total.injected_drops += st.injected_drops;
    total.injected_ho_drops += st.injected_ho_drops;
    total.injected_ctrl_drops += st.injected_ctrl_drops;
    total.ecn_marked += st.ecn_marked;
    total.pauses_sent += st.pauses_sent;
    total.resumes_sent += st.resumes_sent;
    total.lossless_violations += st.lossless_violations;
    total.no_route += st.no_route;
  }
  return total;
}

}  // namespace dcp
