#include "topo/network.h"

#include <algorithm>
#include <cassert>

#include "check/observer.h"
#include "sim/snapshot.h"

namespace dcp {

Host* Network::add_host(const std::string& name, Bandwidth nic_bw, Time link_prop) {
  auto h = std::make_unique<Host>(build_sim(), log_, next_node_++, name, nic_bw, link_prop);
  Host* raw = h.get();
  shard_of_node_.push_back(build_shard_);  // node ids are dense and ordered
  host_by_id_[raw->id()] = raw;
  wire_host_hooks(raw);
  hosts_.push_back(std::move(h));
  return raw;
}

Switch* Network::add_switch(const std::string& name, const SwitchConfig& cfg) {
  const NodeId id = next_node_++;
  auto s = std::make_unique<Switch>(build_sim(), log_, id, name, cfg, /*seed=*/0x5eedULL + id);
  Switch* raw = s.get();
  shard_of_node_.push_back(build_shard_);
  switches_.push_back(std::move(s));
  return raw;
}

std::uint32_t Network::attach(Host* h, Switch* s, Bandwidth bw, Time prop) {
  const std::uint32_t sp = s->add_port(bw, prop);
  s->connect(sp, h, 0);
  h->connect(s, sp);
  s->routes().add_route(h->id(), sp);
  return sp;
}

std::pair<std::uint32_t, std::uint32_t> Network::link(Switch* a, Switch* b, Bandwidth bw,
                                                      Time prop) {
  const std::uint32_t pa = a->add_port(bw, prop);
  const std::uint32_t pb = b->add_port(bw, prop);
  a->connect(pa, b, pb);
  b->connect(pb, a, pa);
  return {pa, pb};
}

void Network::direct_link(Host* a, Host* b) {
  a->connect(b, 0);
  b->connect(a, 0);
}

void Network::wire_host_hooks(Host* h) {
  h->on_sender_done = [this, h](FlowId id) {
    if (!shard_run_active_) {
      finalize_flow(id);
      return;
    }
    // Window phase, source shard's thread: snapshot the sender stats at
    // the exact point the serial finalize would read them and defer the
    // shared-state mutation to the barrier.
    Simulator& hs = h->sim();
    PendingFinalize p;
    p.id = id;
    p.t = hs.current_event_time();
    p.seq = hs.current_event_seq();
    if (auto* s = h->sender(id)) p.sender = s->stats();
    pending_fin_[static_cast<std::size_t>(shard_of(h->id()))].push_back(std::move(p));
  };
  h->on_receiver_done = [this, h](FlowId id) {
    FlowRecord& rec = record(id);
    rec.rx_done = h->sim().now();  // h's shard executes this event
    if (!shard_run_active_) {
      // A listener may start follow-up flows (collectives), reallocating
      // records_ — re-fetch the record per call rather than hold `rec`.
      for (auto& fn : rx_listeners_) fn(record(id));
      return;
    }
    if (!rx_listeners_.empty()) {
      Simulator& hs = h->sim();
      pending_rx_[static_cast<std::size_t>(shard_of(h->id()))].push_back(
          PendingRx{id, hs.current_event_time(), hs.current_event_seq()});
    }
  };
}

FlowId Network::start_flow(FlowSpec spec) {
  assert(factory_ && "set_factory() before start_flow()");
  spec.id = next_flow_++;
  spec.sport = next_sport_++;
  if (next_sport_ < 10000) next_sport_ = 10000;

  Host* src = host_by_id_.at(spec.src);
  Host* dst = host_by_id_.at(spec.dst);
  assert(src != dst && "loopback flows are not modeled");

  FlowRecord rec;
  rec.spec = spec;
  index_[spec.id] = records_.size();
  records_.push_back(rec);

  // Transports must live on their host's shard: their timers go into that
  // shard's queue and their clock reads must see that shard's now().
  dst->add_receiver(factory_->make_receiver(dst->sim(), *dst, spec, tcfg_));
  src->add_sender(factory_->make_sender(src->sim(), *src, spec, tcfg_));

  SenderTransport* snd = src->sender(spec.id);
  // Far event: with staggered arrivals hundreds of starts sit pending for
  // most of the run; parking them keeps the packet heap shallow.  The
  // start runs on the source host's shard (== sim_ in serial builds).
  // The id is kept so a snapshot restore can cancel starts the saved run
  // already executed (cancel_started_flows).
  start_ev_.push_back(src->sim().schedule_at_far(spec.start_time, [snd] { snd->start(); }));
  return spec.id;
}

void Network::finalize_flow(FlowId id) {
  FlowRecord& rec = record(id);
  if (rec.tx_done >= 0) return;
  rec.tx_done = sim_.now();
  Host* src = host_by_id_.at(rec.spec.src);
  Host* dst = host_by_id_.at(rec.spec.dst);
  if (auto* s = src->sender(id)) rec.sender = s->stats();
  if (auto* r = dst->receiver(id)) rec.receiver = r->stats();
  ++completed_;
  // Callbacks may start follow-up flows (collectives), reallocating
  // records_ — re-fetch the record per call rather than hold `rec`.
  if (on_flow_complete) on_flow_complete(record(id));
  for (auto& fn : tx_listeners_) fn(record(id));
}

Host* Network::host(NodeId id) {
  auto it = host_by_id_.find(id);
  return it == host_by_id_.end() ? nullptr : it->second;
}

Time Network::ideal_fct(NodeId src, NodeId dst, std::uint64_t bytes) const {
  PathInfo pi;
  if (path_info) pi = path_info(src, dst);
  const std::uint64_t mtu = tcfg_.mtu_payload;
  const std::uint64_t pkts = bytes == 0 ? 1 : (bytes + mtu - 1) / mtu;
  const std::uint64_t hdr = HeaderSizes::kDcpHeaderOnly + HeaderSizes::kReth;
  const std::uint64_t wire = bytes + pkts * hdr;
  const std::uint64_t first_pkt = std::min<std::uint64_t>(wire, mtu + hdr);
  // First packet pipelines through `hops` store-and-forward stages, the
  // rest stream behind it at the bottleneck, then the final ACK returns.
  Time t = pi.one_way_delay;
  t += static_cast<Time>(pi.hops) * pi.bottleneck.serialize(static_cast<std::int64_t>(first_pkt));
  t += pi.bottleneck.serialize(static_cast<std::int64_t>(wire - first_pkt));
  t += pi.one_way_delay + pi.bottleneck.serialize(HeaderSizes::kDcpAck);
  return t;
}

void Network::run_until_done(Time max_time) {
  if (shards_ != nullptr && shards_->sharded()) {
    run_until_done_sharded(max_time);
    return;
  }
  // Run in slices so we can stop as soon as all flows complete.  Two
  // rules keep a snapshot-resumed run bit-identical to the uninterrupted
  // one: slices align to an absolute grid (not now + slice), and
  // completion is only tested AT grid boundaries — so both runs stop at
  // the same boundary and execute the same trailing timer events, no
  // matter where in a slice the resume point fell.
  const Time slice = std::max<Time>(microseconds(100), max_time / 10000);
  while (sim_.now() < max_time) {
    if (sim_.now() % slice == 0 && all_flows_done()) break;
    const Time next = std::min(max_time, (sim_.now() / slice + 1) * slice);
    sim_.run(next);
    if (sim_.idle()) break;
  }
}

void Network::set_check_observer_all(CheckObserver* ob) {
  if (shards_ != nullptr) {
    for (int i = 0; i < shards_->size(); ++i) shards_->sim(i).set_check_observer(ob);
  } else {
    sim_.set_check_observer(ob);
  }
}

void Network::finalize_shards() {
  if (shards_finalized_) return;
  shards_finalized_ = true;
  const int n = shards_->size();
  pending_fin_.resize(static_cast<std::size_t>(n));
  pending_rx_.resize(static_cast<std::size_t>(n));

  // Window-provisional stamps held outside the event heaps: pending
  // finalizations/rx notifications and receiver-stat journals.
  for (int i = 0; i < n; ++i) {
    shards_->sim(i).add_seq_remap_hook([this, i](const SeqRemap& remap) {
      for (auto& p : pending_fin_[static_cast<std::size_t>(i)]) p.seq = remap(p.seq);
      for (auto& p : pending_rx_[static_cast<std::size_t>(i)]) p.seq = remap(p.seq);
    });
  }
  for (auto& h : hosts_) {
    h->enable_stat_journal();
    Host* hp = h.get();
    hp->sim().add_seq_remap_hook(
        [hp](const SeqRemap& remap) { hp->remap_stat_journal(remap); });
  }

  // Classify every channel: a channel whose endpoints live on different
  // shards becomes a mailbox edge (and contributes to the lookahead); a
  // same-shard channel only needs its lane stamps committed at barriers.
  Time min_cut = kTimeInfinity;
  auto wire = [&](Channel& ch, int src_shard) {
    Node* peer = ch.peer();
    if (peer == nullptr) {
      ch.enable_shard_mode(nullptr);
      return;
    }
    const int dst_shard = shard_of(peer->id());
    if (dst_shard == src_shard) {
      ch.enable_shard_mode(nullptr);
      return;
    }
    ch.enable_shard_mode(&shards_->sim(dst_shard));
    shards_->add_cross_drain(src_shard,
                             [&ch](const SeqRemap& remap) { return ch.drain_cross(remap); });
    if (ch.propagation() < min_cut) min_cut = ch.propagation();
  };
  for (auto& h : hosts_) wire(h->nic().channel(), shard_of(h->id()));
  for (auto& s : switches_) {
    const int ss = shard_of(s->id());
    for (std::uint32_t p = 0; p < s->num_ports(); ++p) wire(s->port(p).channel(), ss);
  }
  // Conservative sync needs strictly positive lookahead; every supported
  // cut (leaf-spine and testbed cross links) has >= 1us propagation.  A
  // partition with no cut at all runs plain slice-bounded windows.
  assert(min_cut == kTimeInfinity || min_cut > 0);
  shards_->set_lookahead(min_cut == kTimeInfinity ? milliseconds(1) : min_cut);
  shard_run_active_ = true;
}

void Network::finalize_flow_at(const PendingFinalize& p) {
  FlowRecord& rec = record(p.id);
  if (rec.tx_done >= 0) return;
  rec.tx_done = p.t;
  rec.sender = p.sender;
  Host* dst = host_by_id_.at(rec.spec.dst);
  rec.receiver = dst->journal_stats_at(p.id, p.t, p.seq);
  ++completed_;
  // Same re-fetch discipline as finalize_flow: callbacks can grow records_.
  if (on_flow_complete) on_flow_complete(record(p.id));
  for (auto& fn : tx_listeners_) fn(record(p.id));
}

void Network::commit_window_effects(Time frontier) {
  // Gather the per-shard pending lists and apply them in committed
  // (t, seq) order — the order the serial run would have fired them in.
  // Listener order matters because listeners mutate ordered state
  // (flow-id assignment in collectives, completion counters).
  //
  // Window bounds are uniform, so every effect recorded this window is
  // timestamped at or below the frontier and applies right here.  The
  // frontier filter still guards the general case: an effect above it —
  // possible only if a caller commits below some shard's bound — stays in
  // its per-shard list (its seq was committed at this barrier, and
  // SeqRemap passes committed values through untouched at the next one)
  // until the frontier catches up.
  std::vector<PendingFinalize> fins;
  std::vector<PendingRx> rxs;
  bool any_pending = false;
  for (auto& v : pending_fin_) {
    any_pending = any_pending || !v.empty();
    std::size_t keep = 0;
    for (auto& p : v) {
      if (p.t <= frontier) {
        fins.push_back(std::move(p));
      } else {
        v[keep++] = std::move(p);
      }
    }
    v.resize(keep);
  }
  for (auto& v : pending_rx_) {
    any_pending = any_pending || !v.empty();
    std::size_t keep = 0;
    for (auto& p : v) {
      if (p.t <= frontier) {
        rxs.push_back(p);
      } else {
        v[keep++] = p;
      }
    }
    v.resize(keep);
  }
  if (!any_pending) return;
  auto before = [](Time at, std::uint64_t as, Time bt, std::uint64_t bs) {
    return at != bt ? at < bt : as < bs;
  };
  std::sort(fins.begin(), fins.end(), [&](const PendingFinalize& a, const PendingFinalize& b) {
    return before(a.t, a.seq, b.t, b.seq);
  });
  std::sort(rxs.begin(), rxs.end(), [&](const PendingRx& a, const PendingRx& b) {
    return before(a.t, a.seq, b.t, b.seq);
  });
  std::size_t fi = 0;
  std::size_t ri = 0;
  while (fi < fins.size() || ri < rxs.size()) {
    const bool take_rx =
        fi == fins.size() ||
        (ri < rxs.size() && before(rxs[ri].t, rxs[ri].seq, fins[fi].t, fins[fi].seq));
    if (take_rx) {
      for (auto& fn : rx_listeners_) fn(record(rxs[ri].id));
      ++ri;
    } else {
      finalize_flow_at(fins[fi]);
      ++fi;
    }
  }
  // Any finalize key still to come lies strictly beyond the frontier, so
  // per flow only the latest journal entry at or below it — plus every
  // entry beyond it — can ever be looked up again.
  for (auto& h : hosts_) h->prune_stat_journal(frontier);
}

void Network::run_until_done_sharded(Time max_time) {
  finalize_shards();
  // Absolute slice grid, for the same resume-alignment reason as the
  // serial loop above.
  const Time slice = std::max<Time>(microseconds(100), max_time / 10000);
  while (sim_.now() < max_time) {
    if (sim_.now() % slice == 0 && all_flows_done()) break;
    const Time boundary = std::min(max_time, (sim_.now() / slice + 1) * slice);
    bool drained = false;
    for (;;) {
      const Time tn = shards_->next_time();
      if (tn == kTimeInfinity) {
        drained = true;
        break;
      }
      if (tn > boundary) break;
      commit_window_effects(shards_->run_window_adaptive(boundary));
    }
    // Every shard has executed everything at or below the boundary (window
    // bounds are capped there), so any still-deferred effect is now final.
    commit_window_effects(drained ? kTimeInfinity : boundary);
    if (drained) {
      // Serial semantics: an idle break leaves the clock at the last
      // executed event; across shards that is the latest shard clock.
      sim_.sync_now(shards_->max_now());
      break;
    }
    shards_->sync_now(boundary);
  }
}

Switch::Stats Network::total_switch_stats() const {
  Switch::Stats total;
  for (const auto& s : switches_) {
    const auto& st = s->stats();
    total.forwarded += st.forwarded;
    total.trimmed += st.trimmed;
    total.injected_trims += st.injected_trims;
    total.dropped_data += st.dropped_data;
    total.dropped_ho += st.dropped_ho;
    total.ho_seen += st.ho_seen;
    total.dropped_ctrl += st.dropped_ctrl;
    total.dropped_buffer_full += st.dropped_buffer_full;
    total.injected_drops += st.injected_drops;
    total.injected_ho_drops += st.injected_ho_drops;
    total.injected_ctrl_drops += st.injected_ctrl_drops;
    total.ecn_marked += st.ecn_marked;
    total.pauses_sent += st.pauses_sent;
    total.resumes_sent += st.resumes_sent;
    total.lossless_violations += st.lossless_violations;
    total.no_route += st.no_route;
  }
  return total;
}


void Network::run_to(Time t) {
  if (shards_ != nullptr && shards_->sharded()) {
    run_to_sharded(t);
    return;
  }
  sim_.run(t - 1);
}

Time Network::run_to_paused(Time t, Time max_time) {
  if (shards_ != nullptr && shards_->sharded()) return run_to_paused_sharded(t, max_time);
  const Time slice = std::max<Time>(microseconds(100), max_time / 10000);
  while (sim_.now() < max_time) {
    if (sim_.now() % slice == 0 && all_flows_done()) break;
    const Time next = std::min(max_time, (sim_.now() / slice + 1) * slice);
    if (next >= t) {
      sim_.run(t - 1);
      return t;
    }
    sim_.run(next);
    if (sim_.idle()) break;
  }
  return sim_.now() + 1;
}

Time Network::run_to_paused_sharded(Time t, Time max_time) {
  finalize_shards();
  const Time slice = std::max<Time>(microseconds(100), max_time / 10000);
  while (sim_.now() < max_time) {
    if (sim_.now() % slice == 0 && all_flows_done()) break;
    const Time boundary = std::min(max_time, (sim_.now() / slice + 1) * slice);
    if (boundary >= t) {
      for (;;) {
        const Time tn = shards_->next_time();
        if (tn == kTimeInfinity || tn >= t) break;
        commit_window_effects(shards_->run_window_adaptive(t - 1));
      }
      commit_window_effects(t - 1);
      return t;
    }
    bool drained = false;
    for (;;) {
      const Time tn = shards_->next_time();
      if (tn == kTimeInfinity) {
        drained = true;
        break;
      }
      if (tn > boundary) break;
      commit_window_effects(shards_->run_window_adaptive(boundary));
    }
    commit_window_effects(drained ? kTimeInfinity : boundary);
    if (drained) {
      sim_.sync_now(shards_->max_now());
      break;
    }
    shards_->sync_now(boundary);
  }
  return sim_.now() + 1;
}

void Network::run_to_sharded(Time t) {
  finalize_shards();
  for (;;) {
    const Time tn = shards_->next_time();
    if (tn == kTimeInfinity || tn >= t) break;
    commit_window_effects(shards_->run_window_adaptive(t - 1));
  }
  commit_window_effects(t - 1);
}

void Network::prepare_shard_run() {
  if (shards_ != nullptr && shards_->sharded()) finalize_shards();
}

void Network::cancel_started_flows(Time t) {
  for (std::size_t i = 0; i < start_ev_.size() && i < records_.size(); ++i) {
    const FlowSpec& spec = records_[i].spec;
    if (spec.start_time < t) {
      host_by_id_.at(spec.src)->sim().cancel(start_ev_[i]);
    }
  }
}

void Network::checkpoint(StateIO& io) {
  io.label(0x4E7733u);
  for (auto& v : pending_fin_) {
    if (!v.empty()) return io.fail("snapshot off-barrier: pending finalizations");
  }
  for (auto& v : pending_rx_) {
    if (!v.empty()) return io.fail("snapshot off-barrier: pending rx notifications");
  }
  io.pod(completed_);
  io.pod(next_sport_);
  // Field-wise, not s.pod(r): FlowSpec has interior padding whose bytes
  // are indeterminate, and snapshot images must be byte-deterministic.
  io.fixed(records_, [](StateIO& s, FlowRecord& r) {
    s.pod(r.spec.id);
    s.pod(r.spec.src);
    s.pod(r.spec.dst);
    s.pod(r.spec.bytes);
    s.pod(r.spec.start_time);
    s.pod(r.spec.op);
    s.pod(r.spec.msg_bytes);
    s.pod(r.spec.sport);
    s.pod(r.spec.group);
    s.pod(r.spec.background);
    s.pod(r.rx_done);
    s.pod(r.tx_done);
    s.pod(r.sender);
    s.pod(r.receiver);
  });
  io.fixed(hosts_, [](StateIO& s, std::unique_ptr<Host>& h) { h->checkpoint(s); });
  io.fixed(switches_, [](StateIO& s, std::unique_ptr<Switch>& sw) { sw->checkpoint(s); });
}

}  // namespace dcp
