#pragma once
// The simulated datacenter switch.
//
// Output-queued, shared-buffer switch with two egress queue classes per
// port (data + control).  Implements, per configuration:
//   * DCP-Switch (paper §4.2 / §5): packet trimming above a data-queue
//     threshold, a control queue for header-only packets, and DWRR
//     scheduling weighted so the control plane is lossless;
//   * PFC: ingress-accounted PAUSE/RESUME toward upstream neighbours;
//   * ECN marking (RED-style on the egress data queue) for DCQCN;
//   * ECMP / in-network adaptive routing / source-routed multipath;
//   * Random loss injection (testbed experiments force loss this way).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/node.h"
#include "net/port.h"
#include "sim/rng.h"
#include "switch/buffer.h"
#include "switch/routing.h"
#include "switch/scheduler.h"

namespace dcp {

struct SwitchConfig {
  std::uint64_t buffer_bytes = 32ull * 1024 * 1024;
  PfcConfig pfc;

  // DCP-Switch mode.  The default trim threshold matches the lossy-mode
  // tail-drop depth so DCP vs RNIC-SR comparisons isolate *recovery*
  // behaviour; shallow thresholds (e.g. 100 KB) stress the control plane
  // harder (Table 5) and are set explicitly by those experiments.
  bool trimming = false;
  std::uint64_t trim_threshold_bytes = 1024 * 1024;  // per egress data queue
  double control_weight = 4.0;                      // DWRR weight control:data = w:1

  // Lossy mode without trimming: tail-drop above this egress depth.
  std::uint64_t max_data_queue_bytes = 1024 * 1024;

  // ECN (DCQCN) marking on the egress data queue.
  bool ecn = false;
  std::uint64_t ecn_kmin_bytes = 100 * 1024;
  std::uint64_t ecn_kmax_bytes = 400 * 1024;
  double ecn_pmax = 0.2;

  // Random loss injection on data packets (0 disables).  DCP data packets
  // are trimmed instead of dropped, mirroring the paper's P4 manipulation.
  double inject_loss_rate = 0.0;

  // Control-queue loss injection (0 disables): every packet entering the
  // control queue — header-only packets above all — is dropped with this
  // probability, directly violating the lossless-control-plane assumption
  // (§4.5's failure regime).  Draws come from a dedicated fault RNG stream,
  // so a zero rate leaves the switch's base randomness untouched.
  double inject_ho_loss_rate = 0.0;

  LbPolicy lb = LbPolicy::kEcmp;
  Time flowlet_gap = microseconds(50);  // for LbPolicy::kFlowlet

  // Per-switch ECMP decision cache (see RouteCache).  Output-invisible;
  // off only for A/B checks like tests/test_route_cache.cpp.
  bool route_cache = true;
  // Cache size in slots (rounded up to a power of two).  The historical
  // 512 default suits small Clos fabrics; topology builders scale it with
  // the expected concurrent (flow, hop) population — see
  // FatTreeParams::route_cache_slots.  Sizing is output-invisible: a hit
  // returns exactly what the full lookup computes.
  std::uint32_t route_cache_slots = RouteCache::kDefaultSlots;
};

class Switch final : public Node {
 public:
  struct Stats {
    // The per-packet counters (bumped on every successful forward) lead
    // the struct so they share one cache line; rarer outcomes follow.
    std::uint64_t forwarded = 0;
    std::uint64_t ho_seen = 0;          // HO packets enqueued OK
    std::uint64_t trimmed = 0;          // data packets converted to HO
    std::uint64_t ecn_marked = 0;
    std::uint64_t injected_trims = 0;   // trims caused by loss injection
    std::uint64_t injected_drops = 0;
    std::uint64_t dropped_data = 0;     // data packets dropped (lossy mode)
    std::uint64_t dropped_ho = 0;       // HO packets lost (control plane!)
    std::uint64_t dropped_ctrl = 0;     // ACK/CNP/non-DCP dropped over threshold
    std::uint64_t dropped_buffer_full = 0;
    std::uint64_t injected_ho_drops = 0;    // HO losses forced by fault injection
    std::uint64_t injected_ctrl_drops = 0;  // other control-queue fault losses
    std::uint64_t pauses_sent = 0;
    std::uint64_t resumes_sent = 0;
    std::uint64_t lossless_violations = 0;  // drops while PFC enabled
    std::uint64_t no_route = 0;
  };

  Switch(Simulator& sim, Logger& log, NodeId id, std::string name, SwitchConfig cfg,
         std::uint64_t seed);

  /// Adds an egress port of the given speed; returns its index.  The peer
  /// must be connected via `connect` before traffic flows.
  std::uint32_t add_port(Bandwidth bw, Time propagation);
  void connect(std::uint32_t port, Node* peer, std::uint32_t peer_port) {
    ports_[port]->connect(peer, peer_port);
  }

  RouteTable& routes() { return routes_; }
  const RouteTable& routes() const { return routes_; }
  Port& port(std::uint32_t i) { return *ports_[i]; }
  std::uint32_t num_ports() const { return static_cast<std::uint32_t>(ports_.size()); }
  const Stats& stats() const { return stats_; }
  const SharedBuffer& buffer() const { return buffer_; }
  SharedBuffer& buffer() { return buffer_; }  // fault injection resizes capacity
  SwitchConfig& config() { return cfg_; }

  /// Administratively fails/restores a link: a down port is excluded from
  /// load-balancing candidates (models routing withdrawal after failure
  /// detection) and silently discards anything already queued toward it.
  void set_link_up(std::uint32_t port, bool up);
  bool link_up(std::uint32_t port) const { return port_up_[port]; }

  /// Epoch every cached routing decision is stamped with: any route-table
  /// mutation or link flap changes it, invalidating the whole cache.
  std::uint32_t route_epoch() const { return routes_.version() + flap_epoch_; }
  const RouteCache& route_cache() const { return rcache_; }

  /// Checkpoint hook (sim/snapshot.h): runtime config (fault rates), RNG
  /// streams, link state, flowlets, shared buffer, PFC bookkeeping, stats
  /// and every port.  Routes and the ECMP cache are not serialized: routes
  /// are setup-built and the cache is output-invisible (it refills cold).
  void checkpoint(StateIO& io);

  using Node::receive;
  /// Virtual path (DCP_DEVIRT=0 / custom callers): same body as the
  /// statically-dispatched entry below, so outputs are bit-identical.
  void receive(PacketPtr pkt, std::uint32_t in_port) override { receive_fast(std::move(pkt), in_port); }

  /// Statically-dispatched delivery entry (Channel::dispatch_receive casts
  /// to the final type and calls this non-virtually).  Header-visible so
  /// per-packet classification and the ECMP cache hit inline into the
  /// channel's arrival; the rare outcomes — cache miss, PFC frame,
  /// injected loss — take out-of-line helpers.
  void receive_fast(PacketPtr pkt, std::uint32_t in_port) {
    maybe_trace(*pkt, in_port);
    const PktType ty = pkt->type;
    if (ty == PktType::kPfcPause || ty == PktType::kPfcResume) {
      // PAUSE/RESUME from the downstream neighbour applies to our egress
      // port facing it, i.e. the arrival port (ports are full-duplex).
      ports_[in_port]->set_paused(pkt->pause_class, ty == PktType::kPfcPause);
      return;
    }
    // ECMP fast path: the pick is a pure function of the packet's hash key
    // and the candidate set, both fixed per (flow, path_id, direction) — so
    // a cache hit skips the table walk, the hash and the modulo entirely.
    // Epoch stamping (route_epoch()) makes flaps and table edits miss.
    std::uint32_t eport = UINT32_MAX;
    if (cfg_.route_cache && cfg_.lb == LbPolicy::kEcmp) {
      eport = rcache_.lookup(pkt->flow, pkt->dst, pkt->path_id, route_epoch());
    }
    if (eport == UINT32_MAX && !route_slow(*pkt, eport)) return;  // no route: dropped
    // Forced loss (testbed experiments): the P4 switch trims DCP data
    // packets and plainly drops everything else.
    if (cfg_.inject_loss_rate > 0.0 && ty == PktType::kData &&
        draw_chance(cfg_.inject_loss_rate) && !apply_injected_loss(*pkt)) {
      return;  // dropped (a trim falls through as a header-only packet)
    }
    egress_enqueue(std::move(pkt), eport, in_port);
  }

 private:
  /// Route-cache miss path: candidate walk (minus withdrawn links), LB
  /// port selection, cache fill.  Returns false when the packet has no
  /// route (accounted + dropped).
  bool route_slow(const PacketHot& pkt, std::uint32_t& eport);
  /// An injected-loss draw fired: trims DCP data in place (returns true —
  /// the packet lives on as header-only) or accounts a drop (false).
  bool apply_injected_loss(PacketHot& pkt);
  void egress_enqueue(PacketPtr pkt, std::uint32_t eport, std::uint32_t in_port);
  void on_port_dequeue(const PacketHot& pkt);
  bool ecn_mark_decision(std::uint64_t qbytes);
  void trim_to_header_only(PacketHot& pkt) const;
  bool draw_chance(double p) {
    if (batched_draws_) return chance_buf_.next(rng_.engine()) < p;
    return rng_.chance(p);
  }

  SwitchConfig cfg_;
  Rng rng_;
  Rng fault_rng_;  // dedicated stream: drawn only while a fault rate is armed
  // Loss-injection / ECN Bernoulli draws come from a prefetched batch when
  // the LB policy's port selection never draws from rng_ (ECMP, source
  // routing) — the only case where batching keeps the stream bit-identical.
  UniformPrefetch chance_buf_;
  bool batched_draws_ = false;
  std::vector<std::unique_ptr<Port>> ports_;
  std::vector<bool> port_up_;
  bool any_port_down_ = false;
  FlowletTable flowlets_;
  RouteTable routes_;
  RouteCache rcache_;
  std::uint32_t flap_epoch_ = 0;          // bumped by set_link_up
  std::vector<std::uint32_t> alive_scratch_;  // reused live-candidate filter
  SharedBuffer buffer_;
  // pause_sent_[port][class]: we have PAUSEd that upstream and not yet RESUMEd.
  std::vector<std::array<bool, kNumQueueClasses>> pause_sent_;
  Stats stats_;
};

}  // namespace dcp
