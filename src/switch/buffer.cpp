#include "switch/buffer.h"

// SharedBuffer's alloc/release pair fires once per switch hop, so both
// live inline in buffer.h (including the BufferShadow replay, which exists
// precisely to keep the armed path statically dispatched).  Nothing is left
// out of line.
