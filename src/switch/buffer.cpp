#include "switch/buffer.h"

namespace dcp {

bool SharedBuffer::alloc(std::uint32_t in_port, std::uint8_t pfc_class, std::uint64_t bytes) {
  if (!has_room(bytes)) return false;
  used_ += bytes;
  if (used_ > max_used_) max_used_ = used_;
  if (in_port < ingress_bytes_.size()) ingress_bytes_[in_port][pfc_class] += bytes;
  return true;
}

void SharedBuffer::release(std::uint32_t in_port, std::uint8_t pfc_class, std::uint64_t bytes) {
  used_ -= bytes;
  if (in_port < ingress_bytes_.size()) ingress_bytes_[in_port][pfc_class] -= bytes;
}

}  // namespace dcp
