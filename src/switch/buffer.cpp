#include "switch/buffer.h"

#include "check/observer.h"

namespace dcp {

bool SharedBuffer::alloc(std::uint32_t in_port, std::uint8_t pfc_class, std::uint64_t bytes) {
  if (!has_room(bytes)) return false;
  used_ += bytes;
  if (used_ > max_used_) max_used_ = used_;
  if (in_port < ingress_bytes_.size()) ingress_bytes_[in_port][pfc_class] += bytes;
  if (check_observer_ != nullptr) {
    if (check_shadow_ == nullptr ||
        check_shadow_->on_alloc(in_port, pfc_class, bytes, used_) != ShadowFail::kNone) {
      check_observer_->on_buffer_alloc(this, in_port, pfc_class, bytes, used_);
    }
  }
  return true;
}

void SharedBuffer::release(std::uint32_t in_port, std::uint8_t pfc_class, std::uint64_t bytes) {
  used_ -= bytes;
  if (in_port < ingress_bytes_.size()) ingress_bytes_[in_port][pfc_class] -= bytes;
  if (check_observer_ != nullptr) {
    if (check_shadow_ == nullptr ||
        check_shadow_->on_release(in_port, pfc_class, bytes, used_) != ShadowFail::kNone) {
      check_observer_->on_buffer_release(this, in_port, pfc_class, bytes, used_);
    }
  }
}

}  // namespace dcp
