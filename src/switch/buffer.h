#pragma once
// Shared-buffer accounting and PFC (IEEE 802.1Qbb) ingress state for a
// switch.
//
// The switch is output-queued, but PFC pauses are generated from *ingress*
// accounting: every buffered packet is charged to the (ingress port, PFC
// class) it arrived on.  When a counter crosses Xoff the switch sends PAUSE
// to that upstream neighbour; when it falls below Xon it sends RESUME.
// Headroom must absorb the in-flight bytes between PAUSE emission and the
// upstream actually stopping — this is what limits PFC's reach to a few km
// (paper Table 1).

#include <cstdint>
#include <vector>

#include "check/observer.h"
#include "net/packet.h"

namespace dcp {

struct PfcConfig {
  bool enabled = false;
  std::uint64_t xoff_bytes = 256 * 1024;  // pause threshold per (port, class)
  std::uint64_t xon_bytes = 224 * 1024;   // resume threshold
};

class SharedBuffer {
 public:
  explicit SharedBuffer(std::uint64_t capacity_bytes, std::uint32_t num_ports,
                        PfcConfig pfc = {})
      : capacity_(capacity_bytes), pfc_(pfc), ingress_bytes_(num_ports) {}

  /// True if `bytes` more can be buffered.
  bool has_room(std::uint64_t bytes) const { return used_ + bytes <= capacity_; }

  /// Charges a buffered packet against the shared pool and its ingress
  /// accounting.  Returns false (and charges nothing) when full.  Inline:
  /// this fires once per switch hop, the hottest accounting pair in the
  /// datapath.
  bool alloc(std::uint32_t in_port, std::uint8_t pfc_class, std::uint64_t bytes) {
    if (!has_room(bytes)) return false;
    used_ += bytes;
    if (used_ > max_used_) max_used_ = used_;
    if (in_port < ingress_bytes_.size()) ingress_bytes_[in_port][pfc_class] += bytes;
    if (check_observer_ != nullptr) {
      if (check_shadow_ == nullptr ||
          check_shadow_->on_alloc(in_port, pfc_class, bytes, used_) != ShadowFail::kNone) {
        check_observer_->on_buffer_alloc(this, in_port, pfc_class, bytes, used_);
      }
    }
    return true;
  }

  /// Releases a previously charged packet.
  void release(std::uint32_t in_port, std::uint8_t pfc_class, std::uint64_t bytes) {
    used_ -= bytes;
    if (in_port < ingress_bytes_.size()) ingress_bytes_[in_port][pfc_class] -= bytes;
    if (check_observer_ != nullptr) {
      if (check_shadow_ == nullptr ||
          check_shadow_->on_release(in_port, pfc_class, bytes, used_) != ShadowFail::kNone) {
        check_observer_->on_buffer_release(this, in_port, pfc_class, bytes, used_);
      }
    }
  }

  std::uint64_t used() const { return used_; }
  std::uint64_t capacity() const { return capacity_; }

  /// Resizes the shared pool (fault injection: buffer shrink/restore).
  /// Shrinking below used() is legal: nothing is evicted, but alloc() fails
  /// until the overshoot drains.
  void set_capacity(std::uint64_t bytes) { capacity_ = bytes; }
  std::uint64_t max_used() const { return max_used_; }
  std::uint64_t ingress_bytes(std::uint32_t port, std::uint8_t cls) const {
    return ingress_bytes_[port][cls];
  }

  /// Grows the ingress accounting table (ports can be added after the
  /// buffer is constructed).
  void ensure_ports(std::uint32_t n) {
    if (ingress_bytes_.size() < n) ingress_bytes_.resize(n);
  }

  const PfcConfig& pfc() const { return pfc_; }

  /// Arms conservation checking (see check/observer.h).  The buffer has no
  /// Simulator reference, so unlike the other hook sites the oracle
  /// installs itself here directly.  With a `shadow`, each alloc/release
  /// replays the accounting inline and the observer hears only about
  /// divergences (alloc/release fire per switch hop — the hottest hook
  /// pair in the armed path); without one, every successful call is
  /// reported virtually.
  void set_check_observer(CheckObserver* ob, BufferShadow* shadow = nullptr) {
    check_observer_ = ob;
    check_shadow_ = shadow;
  }
  CheckObserver* check_observer() const { return check_observer_; }
  BufferShadow* check_shadow() const { return check_shadow_; }

  /// PFC decision points: after alloc, should the (port, class) be paused?
  bool should_pause(std::uint32_t port, std::uint8_t cls) const {
    return pfc_.enabled && ingress_bytes_[port][cls] > pfc_.xoff_bytes;
  }
  bool should_resume(std::uint32_t port, std::uint8_t cls) const {
    return pfc_.enabled && ingress_bytes_[port][cls] < pfc_.xon_bytes;
  }

  /// Checkpoint hook (sim/snapshot.h): occupancy, high-water mark, the
  /// (possibly fault-resized) capacity and per-port ingress accounting.
  /// The observer/shadow pointers are re-armed by the oracle's restore.
  template <typename IO>
  void checkpoint(IO& io) {
    io.pod(capacity_);
    io.pod(used_);
    io.pod(max_used_);
    io.vec(ingress_bytes_);
  }

 private:
  struct PerPort {
    std::uint64_t cls_bytes[kNumQueueClasses] = {};
    std::uint64_t& operator[](std::uint8_t c) { return cls_bytes[c]; }
    std::uint64_t operator[](std::uint8_t c) const { return cls_bytes[c]; }
  };

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t max_used_ = 0;
  PfcConfig pfc_;
  std::vector<PerPort> ingress_bytes_;
  CheckObserver* check_observer_ = nullptr;
  BufferShadow* check_shadow_ = nullptr;
};

}  // namespace dcp
