#include "switch/scheduler.h"

#include "sim/snapshot.h"

namespace dcp {

DwrrPolicy::DwrrPolicy(std::array<double, kNumQueueClasses> weights, std::uint32_t quantum_bytes)
    : weights_(weights), quantum_(quantum_bytes) {}

void DwrrPolicy::checkpoint(StateIO& io) {
  io.label(0xD3FC17u);
  io.pod(deficit_);
  io.pod(cur_);
  io.pod(entered_);
}

int DwrrPolicy::select_slow(const std::vector<FifoQueue>& queues,
                            const std::array<bool, kNumQueueClasses>& paused) {
  const int n = static_cast<int>(queues.size());
  int eligible = 0;
  for (int c = 0; c < n; ++c) {
    if (!queues[c].empty() && !paused[c]) ++eligible;
  }
  if (eligible == 0) return -1;

  // Classic DWRR, one packet per call: the class holding the round keeps
  // being served while its deficit covers its head-of-line packet; when it
  // runs dry (or empties) the turn passes on, and each class earns
  // weight × quantum once per turn.
  for (int guard = 0; guard < 64 * n; ++guard) {
    const int c = cur_;
    if (queues[c].empty() || paused[c]) {
      deficit_[c] = 0;  // empty queues must not hoard credit
      cur_ = (cur_ + 1) % n;
      entered_ = false;
      continue;
    }
    if (!entered_) {
      deficit_[c] += weights_[c] * quantum_;
      entered_ = true;
    }
    const double need = static_cast<double>(queues[c].front().wire_bytes);
    if (deficit_[c] >= need) return c;  // stays current for the next call
    cur_ = (cur_ + 1) % n;
    entered_ = false;
  }
  // Unreachable with positive weights; serve the first eligible class to be
  // safe rather than stall the wire.
  for (int c = 0; c < n; ++c) {
    if (!queues[c].empty() && !paused[c]) return c;
  }
  return -1;
}

double wrr_control_weight(int incast_scale_n, double size_ratio_r, double fallback) {
  const double denom = size_ratio_r - static_cast<double>(incast_scale_n) + 1.0;
  if (denom <= 0.0) return fallback;
  const double w = (static_cast<double>(incast_scale_n) - 1.0) / denom;
  return w > 0.0 ? w : fallback;
}

}  // namespace dcp
