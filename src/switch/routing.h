#pragma once
// Static routing tables + per-packet load-balancing policies.
//
// Topology builders install, for every (switch, destination host), the set
// of equal-cost egress ports.  The load-balancing policy then picks one
// port per packet:
//   * ECMP        — flow-hash, stable per flow (the RNIC-SR assumption);
//   * Adaptive    — least-loaded data queue among candidates (the paper's
//                   in-network adaptive routing, per-packet);
//   * SourcePath  — honour the packet's path_id (MP-RDMA virtual paths).

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace dcp {

enum class LbPolicy : std::uint8_t {
  kEcmp,        // flow-hash, stable per flow
  kAdaptive,    // least-loaded egress data queue, per packet
  kSourcePath,  // honour the packet's path_id (MP-RDMA virtual paths)
  kSpray,       // uniform random per packet (packet spraying)
  kFlowlet,     // flowlet switching: reuse the last port while packets of
                // the flow arrive within the flowlet gap, else re-pick the
                // least-loaded port (CONGA/LetFlow-style)
};

class RouteTable {
 public:
  void add_route(NodeId dst, std::uint32_t egress_port) { routes_[dst].push_back(egress_port); }
  void clear_routes(NodeId dst) { routes_[dst].clear(); }

  /// Candidate egress ports toward `dst`; empty if unknown.
  const std::vector<std::uint32_t>& candidates(NodeId dst) const {
    static const std::vector<std::uint32_t> kNone;
    auto it = routes_.find(dst);
    return it == routes_.end() ? kNone : it->second;
  }

  bool has_route(NodeId dst) const { return routes_.contains(dst) && !routes_.at(dst).empty(); }

 private:
  std::unordered_map<NodeId, std::vector<std::uint32_t>> routes_;
};

/// Per-flow flowlet state for LbPolicy::kFlowlet.
struct FlowletEntry {
  std::uint32_t port = 0;
  Time last_seen = -1;
};

class FlowletTable {
 public:
  explicit FlowletTable(Time gap = microseconds(50)) : gap_(gap) {}

  /// Returns the cached port if the flow's inter-packet gap is below the
  /// flowlet gap; otherwise signals a new flowlet (caller re-picks).
  std::optional<std::uint32_t> lookup(FlowId flow, Time now) {
    auto it = table_.find(flow);
    if (it == table_.end() || now - it->second.last_seen > gap_) return std::nullopt;
    it->second.last_seen = now;
    return it->second.port;
  }
  void update(FlowId flow, std::uint32_t port, Time now) {
    table_[flow] = FlowletEntry{port, now};
  }
  Time gap() const { return gap_; }
  std::size_t entries() const { return table_.size(); }

 private:
  Time gap_;
  std::unordered_map<FlowId, FlowletEntry> table_;
};

/// Picks the least-loaded candidate with random tie-break (the adaptive
/// routing primitive).
template <typename QueueDepthFn>
std::uint32_t least_loaded(const std::vector<std::uint32_t>& candidates,
                           QueueDepthFn&& queue_bytes, Rng& rng) {
  std::uint32_t best = candidates[0];
  std::uint64_t best_depth = queue_bytes(best);
  int ties = 1;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const std::uint64_t d = queue_bytes(candidates[i]);
    if (d < best_depth) {
      best = candidates[i];
      best_depth = d;
      ties = 1;
    } else if (d == best_depth) {
      ++ties;
      if (rng.uniform_int(1, ties) == 1) best = candidates[i];
    }
  }
  return best;
}

/// Picks an egress port index into `candidates`.
/// `queue_bytes(port)` must return the egress data-queue depth for adaptive
/// routing decisions; `flowlets` may be null unless policy is kFlowlet.
template <typename QueueDepthFn>
std::uint32_t select_port(LbPolicy policy, const Packet& pkt,
                          const std::vector<std::uint32_t>& candidates,
                          QueueDepthFn&& queue_bytes, Rng& rng, Time now = 0,
                          FlowletTable* flowlets = nullptr) {
  if (candidates.size() == 1) return candidates[0];
  switch (policy) {
    case LbPolicy::kEcmp:
      return candidates[ecmp_key(pkt) % candidates.size()];
    case LbPolicy::kSourcePath:
      return candidates[pkt.path_id % candidates.size()];
    case LbPolicy::kSpray:
      return candidates[rng.pick_index(candidates.size())];
    case LbPolicy::kAdaptive:
      return least_loaded(candidates, queue_bytes, rng);
    case LbPolicy::kFlowlet: {
      if (flowlets != nullptr) {
        if (auto port = flowlets->lookup(pkt.flow, now)) {
          // Stale routes (candidate set changed) fall through to re-pick.
          for (std::uint32_t c : candidates) {
            if (c == *port) return *port;
          }
        }
        const std::uint32_t pick = least_loaded(candidates, queue_bytes, rng);
        flowlets->update(pkt.flow, pick, now);
        return pick;
      }
      return least_loaded(candidates, queue_bytes, rng);
    }
  }
  return candidates[0];
}

}  // namespace dcp
