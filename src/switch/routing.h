#pragma once
// Static routing tables + per-packet load-balancing policies.
//
// Topology builders install, for every (switch, destination host), the set
// of equal-cost egress ports.  The load-balancing policy then picks one
// port per packet:
//   * ECMP        — flow-hash, stable per flow (the RNIC-SR assumption);
//   * Adaptive    — least-loaded data queue among candidates (the paper's
//                   in-network adaptive routing, per-packet);
//   * SourcePath  — honour the packet's path_id (MP-RDMA virtual paths).

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace dcp {

enum class LbPolicy : std::uint8_t {
  kEcmp,        // flow-hash, stable per flow
  kAdaptive,    // least-loaded egress data queue, per packet
  kSourcePath,  // honour the packet's path_id (MP-RDMA virtual paths)
  kSpray,       // uniform random per packet (packet spraying)
  kFlowlet,     // flowlet switching: reuse the last port while packets of
                // the flow arrive within the flowlet gap, else re-pick the
                // least-loaded port (CONGA/LetFlow-style)
};

/// Non-owning view of a candidate egress-port set.  The per-packet routing
/// path hands these around instead of `const std::vector&` so the table can
/// store single-port entries inline (no per-destination heap vector) — at
/// fat-tree k=32 the dense vector-of-vectors table cost gigabytes across
/// 1280 switches; the compact encoding costs megabytes.
class RouteView {
 public:
  RouteView() = default;
  RouteView(const std::uint32_t* ports, std::size_t n) : ports_(ports), n_(static_cast<std::uint32_t>(n)) {}
  RouteView(const std::vector<std::uint32_t>& v)  // NOLINT: implicit by design
      : ports_(v.data()), n_(static_cast<std::uint32_t>(v.size())) {}

  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  std::uint32_t operator[](std::size_t i) const { return ports_[i]; }
  const std::uint32_t* begin() const { return ports_; }
  const std::uint32_t* end() const { return ports_ + n_; }

  friend bool operator==(const RouteView& a, const std::vector<std::uint32_t>& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  const std::uint32_t* ports_ = nullptr;
  std::uint32_t n_ = 0;
};

/// Compact per-switch routing table.
///
/// NodeIds are small and sequential, so lookups stay a dense indexed load —
/// but the dense window covers only [base, base + entries) (hosts occupy a
/// contiguous id range per switch role), and each entry is one word:
/// either the single egress port inline, or a tagged index into the
/// (rare) multi-port spill lists.  Destinations outside the window, or
/// explicitly unset inside it, fall back to the default group — fat-tree
/// edge/aggregation switches route every non-local destination up the same
/// ECMP uplink set, so one shared list replaces hosts() copies of it.
class RouteTable {
 public:
  void add_route(NodeId dst, std::uint32_t egress_port) {
    std::uint32_t& e = slot(dst);
    if (e == kNoRoute) {
      e = egress_port;  // ports are tiny; kMultiBit is unreachable by a real port
    } else if ((e & kMultiBit) != 0) {
      multi_lists_[e & ~kMultiBit].push_back(egress_port);
    } else {
      multi_lists_.push_back({e, egress_port});
      e = kMultiBit | static_cast<std::uint32_t>(multi_lists_.size() - 1);
    }
    ++version_;
  }
  void clear_routes(NodeId dst) {
    if (dst >= base_ && dst - base_ < entries_.size()) entries_[dst - base_] = kNoRoute;
    ++version_;
  }

  /// Shared fallback for every destination without a specific entry.  The
  /// candidate order is the install order, exactly as per-dst add_route
  /// calls would have produced, so ECMP picks are unchanged.
  void set_default_routes(std::vector<std::uint32_t> ports) {
    default_group_ = std::move(ports);
    ++version_;
  }
  const std::vector<std::uint32_t>& default_routes() const { return default_group_; }

  /// Candidate egress ports toward `dst`; empty if unknown.
  RouteView candidates(NodeId dst) const {
    if (dst >= base_ && dst - base_ < entries_.size()) {
      const std::uint32_t e = entries_[dst - base_];
      if (e != kNoRoute) {
        if ((e & kMultiBit) == 0) return RouteView(&entries_[dst - base_], 1);
        return RouteView(multi_lists_[e & ~kMultiBit]);
      }
    }
    return RouteView(default_group_);
  }

  bool has_route(NodeId dst) const { return !candidates(dst).empty(); }

  /// Bumped on every mutation; cached decisions key on it.
  std::uint32_t version() const { return version_; }

  /// Bytes of table storage (capacity, not size) — the arena accounting hook.
  std::size_t memory_bytes() const {
    std::size_t b = entries_.capacity() * sizeof(std::uint32_t) +
                    default_group_.capacity() * sizeof(std::uint32_t) +
                    multi_lists_.capacity() * sizeof(std::vector<std::uint32_t>);
    for (const auto& v : multi_lists_) b += v.capacity() * sizeof(std::uint32_t);
    return b;
  }

 private:
  static constexpr std::uint32_t kNoRoute = UINT32_MAX;
  static constexpr std::uint32_t kMultiBit = 0x80000000u;

  std::uint32_t& slot(NodeId dst) {
    if (entries_.empty()) {
      base_ = dst;
      entries_.push_back(kNoRoute);
    } else if (dst < base_) {
      // Front growth is construction-time only (builders install hosts in
      // ascending id order; attach() may add the local hosts afterwards).
      entries_.insert(entries_.begin(), base_ - dst, kNoRoute);
      base_ = dst;
    } else if (dst - base_ >= entries_.size()) {
      entries_.resize(dst - base_ + 1, kNoRoute);
    }
    return entries_[dst - base_];
  }

  NodeId base_ = 0;
  std::vector<std::uint32_t> entries_;             // port, kMultiBit|idx, or kNoRoute
  std::vector<std::vector<std::uint32_t>> multi_lists_;
  std::vector<std::uint32_t> default_group_;
  std::uint32_t version_ = 0;
};

/// Direct-mapped cache of ECMP port picks, one per (flow, hop).
///
/// ECMP is a pure function of (ecmp hash key, candidate set), and the key
/// itself is fixed for a given (flow, path_id, direction) — so a hit keyed
/// on those fields returns exactly the port the full lookup would compute,
/// while skipping both the 3×mix64 hash and the modulo.  Caching is
/// output-invisible.  Entries carry the epoch under which they were
/// filled; `Switch` bumps its epoch on any routing change (table mutation
/// or link flap), so stale picks miss instead of steering packets into
/// withdrawn ports.  Only kEcmp decisions are cached — adaptive/spray/
/// flowlet picks are load- or RNG-dependent per packet.
class RouteCache {
 public:
  struct Slot {
    FlowId flow = UINT64_MAX;
    NodeId dst = UINT32_MAX;     // flow id is direction-agnostic; dst is not
    std::uint32_t path_id = 0;
    std::uint32_t epoch = 0;
    std::uint32_t port = 0;
  };

  static constexpr std::size_t kDefaultSlots = 512;  // power of two

  /// `slots` is rounded up to a power of two.  The default matches the
  /// historical fixed size; topology builders scale it with the expected
  /// concurrent (flow, hop) population — at fat-tree k=16+ the 512-slot
  /// cache thrashes under 10k flows and every miss repays the full
  /// hash+modulo lookup the cache exists to skip.
  explicit RouteCache(std::size_t slots = kDefaultSlots) {
    std::size_t n = 1;
    while (n < slots) n <<= 1;
    slots_.resize(n);
    mask_ = n - 1;
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Returns the cached port, or UINT32_MAX on miss.
  std::uint32_t lookup(FlowId flow, NodeId dst, std::uint32_t path_id, std::uint32_t epoch) {
    const Slot& s = slots_[index(flow, dst)];
    if (s.flow == flow && s.dst == dst && s.path_id == path_id && s.epoch == epoch) {
      ++hits_;
      return s.port;
    }
    ++misses_;
    return UINT32_MAX;
  }
  void insert(FlowId flow, NodeId dst, std::uint32_t path_id, std::uint32_t epoch,
              std::uint32_t port) {
    slots_[index(flow, dst)] = Slot{flow, dst, path_id, epoch, port};
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  std::size_t index(FlowId flow, NodeId dst) const {
    // One multiply spreads sequential flow ids; fold dst so a flow's two
    // directions land in different slots.
    return ((flow ^ (static_cast<std::uint64_t>(dst) << 17)) * 0x9E3779B97F4A7C15ull >> 48) &
           mask_;
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Per-flow flowlet state for LbPolicy::kFlowlet.
struct FlowletEntry {
  std::uint32_t port = 0;
  Time last_seen = -1;
};

class FlowletTable {
 public:
  explicit FlowletTable(Time gap = microseconds(50)) : gap_(gap) {}

  /// Returns the cached port if the flow's inter-packet gap is below the
  /// flowlet gap; otherwise signals a new flowlet (caller re-picks).
  std::optional<std::uint32_t> lookup(FlowId flow, Time now) {
    auto it = table_.find(flow);
    if (it == table_.end() || now - it->second.last_seen > gap_) return std::nullopt;
    it->second.last_seen = now;
    return it->second.port;
  }
  void update(FlowId flow, std::uint32_t port, Time now) {
    table_[flow] = FlowletEntry{port, now};
  }
  Time gap() const { return gap_; }
  std::size_t entries() const { return table_.size(); }

  /// Checkpoint hook (sim/snapshot.h): entries serialized sorted by flow id
  /// so the image is independent of hash-map iteration order.
  template <typename IO>
  void checkpoint(IO& io) {
    std::uint64_t n = table_.size();
    io.pod(n);
    if (io.saving()) {
      std::vector<std::pair<FlowId, FlowletEntry>> v(table_.begin(), table_.end());
      std::sort(v.begin(), v.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (auto& [id, e] : v) {
        FlowId key = id;
        io.pod(key);
        io.pod(e.port);
        io.pod(e.last_seen);
      }
    } else {
      table_.clear();
      for (std::uint64_t i = 0; i < n && io.ok(); ++i) {
        FlowId key = 0;
        FlowletEntry e;
        io.pod(key);
        io.pod(e.port);
        io.pod(e.last_seen);
        if (io.ok()) table_[key] = e;
      }
    }
  }

 private:
  Time gap_;
  std::unordered_map<FlowId, FlowletEntry> table_;
};

/// Picks the least-loaded candidate with random tie-break (the adaptive
/// routing primitive).
template <typename QueueDepthFn>
std::uint32_t least_loaded(RouteView candidates, QueueDepthFn&& queue_bytes, Rng& rng) {
  std::uint32_t best = candidates[0];
  std::uint64_t best_depth = queue_bytes(best);
  int ties = 1;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const std::uint64_t d = queue_bytes(candidates[i]);
    if (d < best_depth) {
      best = candidates[i];
      best_depth = d;
      ties = 1;
    } else if (d == best_depth) {
      ++ties;
      if (rng.uniform_int(1, ties) == 1) best = candidates[i];
    }
  }
  return best;
}

/// Picks an egress port index into `candidates`.
/// `queue_bytes(port)` must return the egress data-queue depth for adaptive
/// routing decisions; `flowlets` may be null unless policy is kFlowlet.
/// Templated over the packet representation (flat Packet or the pooled
/// PacketHot record — only flow/path_id and the ecmp_key fields are read,
/// all of which live in the hot record).
template <typename P, typename QueueDepthFn>
std::uint32_t select_port(LbPolicy policy, const P& pkt, RouteView candidates,
                          QueueDepthFn&& queue_bytes, Rng& rng, Time now = 0,
                          FlowletTable* flowlets = nullptr) {
  if (candidates.size() == 1) return candidates[0];
  switch (policy) {
    case LbPolicy::kEcmp:
      return candidates[ecmp_key(pkt) % candidates.size()];
    case LbPolicy::kSourcePath:
      return candidates[pkt.path_id % candidates.size()];
    case LbPolicy::kSpray:
      return candidates[rng.pick_index(candidates.size())];
    case LbPolicy::kAdaptive:
      return least_loaded(candidates, queue_bytes, rng);
    case LbPolicy::kFlowlet: {
      if (flowlets != nullptr) {
        if (auto port = flowlets->lookup(pkt.flow, now)) {
          // Stale routes (candidate set changed) fall through to re-pick.
          for (std::uint32_t c : candidates) {
            if (c == *port) return *port;
          }
        }
        const std::uint32_t pick = least_loaded(candidates, queue_bytes, rng);
        flowlets->update(pkt.flow, pick, now);
        return pick;
      }
      return least_loaded(candidates, queue_bytes, rng);
    }
  }
  return candidates[0];
}

}  // namespace dcp
