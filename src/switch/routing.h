#pragma once
// Static routing tables + per-packet load-balancing policies.
//
// Topology builders install, for every (switch, destination host), the set
// of equal-cost egress ports.  The load-balancing policy then picks one
// port per packet:
//   * ECMP        — flow-hash, stable per flow (the RNIC-SR assumption);
//   * Adaptive    — least-loaded data queue among candidates (the paper's
//                   in-network adaptive routing, per-packet);
//   * SourcePath  — honour the packet's path_id (MP-RDMA virtual paths).

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace dcp {

enum class LbPolicy : std::uint8_t {
  kEcmp,        // flow-hash, stable per flow
  kAdaptive,    // least-loaded egress data queue, per packet
  kSourcePath,  // honour the packet's path_id (MP-RDMA virtual paths)
  kSpray,       // uniform random per packet (packet spraying)
  kFlowlet,     // flowlet switching: reuse the last port while packets of
                // the flow arrive within the flowlet gap, else re-pick the
                // least-loaded port (CONGA/LetFlow-style)
};

class RouteTable {
 public:
  void add_route(NodeId dst, std::uint32_t egress_port) {
    if (dst >= routes_.size()) routes_.resize(dst + 1);
    routes_[dst].push_back(egress_port);
    ++version_;
  }
  void clear_routes(NodeId dst) {
    if (dst < routes_.size()) routes_[dst].clear();
    ++version_;
  }

  /// Candidate egress ports toward `dst`; empty if unknown.  NodeIds are
  /// small and sequential, so the table is a dense vector — one indexed
  /// load on the per-packet path instead of a hash probe.
  const std::vector<std::uint32_t>& candidates(NodeId dst) const {
    static const std::vector<std::uint32_t> kNone;
    return dst < routes_.size() ? routes_[dst] : kNone;
  }

  bool has_route(NodeId dst) const { return dst < routes_.size() && !routes_[dst].empty(); }

  /// Bumped on every mutation; cached decisions key on it.
  std::uint32_t version() const { return version_; }

 private:
  std::vector<std::vector<std::uint32_t>> routes_;
  std::uint32_t version_ = 0;
};

/// Direct-mapped cache of ECMP port picks, one per (flow, hop).
///
/// ECMP is a pure function of (ecmp hash key, candidate set), and the key
/// itself is fixed for a given (flow, path_id, direction) — so a hit keyed
/// on those fields returns exactly the port the full lookup would compute,
/// while skipping both the 3×mix64 hash and the modulo.  Caching is
/// output-invisible.  Entries carry the epoch under which they were
/// filled; `Switch` bumps its epoch on any routing change (table mutation
/// or link flap), so stale picks miss instead of steering packets into
/// withdrawn ports.  Only kEcmp decisions are cached — adaptive/spray/
/// flowlet picks are load- or RNG-dependent per packet.
class RouteCache {
 public:
  struct Slot {
    FlowId flow = UINT64_MAX;
    NodeId dst = UINT32_MAX;     // flow id is direction-agnostic; dst is not
    std::uint32_t path_id = 0;
    std::uint32_t epoch = 0;
    std::uint32_t port = 0;
  };

  static constexpr std::size_t kSlots = 512;  // power of two

  /// Returns the cached port, or UINT32_MAX on miss.
  std::uint32_t lookup(FlowId flow, NodeId dst, std::uint32_t path_id, std::uint32_t epoch) {
    const Slot& s = slots_[index(flow, dst)];
    if (s.flow == flow && s.dst == dst && s.path_id == path_id && s.epoch == epoch) {
      ++hits_;
      return s.port;
    }
    ++misses_;
    return UINT32_MAX;
  }
  void insert(FlowId flow, NodeId dst, std::uint32_t path_id, std::uint32_t epoch,
              std::uint32_t port) {
    slots_[index(flow, dst)] = Slot{flow, dst, path_id, epoch, port};
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  static std::size_t index(FlowId flow, NodeId dst) {
    // One multiply spreads sequential flow ids; fold dst so a flow's two
    // directions land in different slots.
    return ((flow ^ (static_cast<std::uint64_t>(dst) << 17)) * 0x9E3779B97F4A7C15ull >> 48) &
           (kSlots - 1);
  }

  std::array<Slot, kSlots> slots_{};
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Per-flow flowlet state for LbPolicy::kFlowlet.
struct FlowletEntry {
  std::uint32_t port = 0;
  Time last_seen = -1;
};

class FlowletTable {
 public:
  explicit FlowletTable(Time gap = microseconds(50)) : gap_(gap) {}

  /// Returns the cached port if the flow's inter-packet gap is below the
  /// flowlet gap; otherwise signals a new flowlet (caller re-picks).
  std::optional<std::uint32_t> lookup(FlowId flow, Time now) {
    auto it = table_.find(flow);
    if (it == table_.end() || now - it->second.last_seen > gap_) return std::nullopt;
    it->second.last_seen = now;
    return it->second.port;
  }
  void update(FlowId flow, std::uint32_t port, Time now) {
    table_[flow] = FlowletEntry{port, now};
  }
  Time gap() const { return gap_; }
  std::size_t entries() const { return table_.size(); }

  /// Checkpoint hook (sim/snapshot.h): entries serialized sorted by flow id
  /// so the image is independent of hash-map iteration order.
  template <typename IO>
  void checkpoint(IO& io) {
    std::uint64_t n = table_.size();
    io.pod(n);
    if (io.saving()) {
      std::vector<std::pair<FlowId, FlowletEntry>> v(table_.begin(), table_.end());
      std::sort(v.begin(), v.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (auto& [id, e] : v) {
        FlowId key = id;
        io.pod(key);
        io.pod(e.port);
        io.pod(e.last_seen);
      }
    } else {
      table_.clear();
      for (std::uint64_t i = 0; i < n && io.ok(); ++i) {
        FlowId key = 0;
        FlowletEntry e;
        io.pod(key);
        io.pod(e.port);
        io.pod(e.last_seen);
        if (io.ok()) table_[key] = e;
      }
    }
  }

 private:
  Time gap_;
  std::unordered_map<FlowId, FlowletEntry> table_;
};

/// Picks the least-loaded candidate with random tie-break (the adaptive
/// routing primitive).
template <typename QueueDepthFn>
std::uint32_t least_loaded(const std::vector<std::uint32_t>& candidates,
                           QueueDepthFn&& queue_bytes, Rng& rng) {
  std::uint32_t best = candidates[0];
  std::uint64_t best_depth = queue_bytes(best);
  int ties = 1;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const std::uint64_t d = queue_bytes(candidates[i]);
    if (d < best_depth) {
      best = candidates[i];
      best_depth = d;
      ties = 1;
    } else if (d == best_depth) {
      ++ties;
      if (rng.uniform_int(1, ties) == 1) best = candidates[i];
    }
  }
  return best;
}

/// Picks an egress port index into `candidates`.
/// `queue_bytes(port)` must return the egress data-queue depth for adaptive
/// routing decisions; `flowlets` may be null unless policy is kFlowlet.
/// Templated over the packet representation (flat Packet or the pooled
/// PacketHot record — only flow/path_id and the ecmp_key fields are read,
/// all of which live in the hot record).
template <typename P, typename QueueDepthFn>
std::uint32_t select_port(LbPolicy policy, const P& pkt,
                          const std::vector<std::uint32_t>& candidates,
                          QueueDepthFn&& queue_bytes, Rng& rng, Time now = 0,
                          FlowletTable* flowlets = nullptr) {
  if (candidates.size() == 1) return candidates[0];
  switch (policy) {
    case LbPolicy::kEcmp:
      return candidates[ecmp_key(pkt) % candidates.size()];
    case LbPolicy::kSourcePath:
      return candidates[pkt.path_id % candidates.size()];
    case LbPolicy::kSpray:
      return candidates[rng.pick_index(candidates.size())];
    case LbPolicy::kAdaptive:
      return least_loaded(candidates, queue_bytes, rng);
    case LbPolicy::kFlowlet: {
      if (flowlets != nullptr) {
        if (auto port = flowlets->lookup(pkt.flow, now)) {
          // Stale routes (candidate set changed) fall through to re-pick.
          for (std::uint32_t c : candidates) {
            if (c == *port) return *port;
          }
        }
        const std::uint32_t pick = least_loaded(candidates, queue_bytes, rng);
        flowlets->update(pkt.flow, pick, now);
        return pick;
      }
      return least_loaded(candidates, queue_bytes, rng);
    }
  }
  return candidates[0];
}

}  // namespace dcp
