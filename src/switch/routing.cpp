#include "switch/routing.h"

// Header-only today; this TU anchors the library target.
