#include "switch/switch.h"

#include <utility>

#include "check/observer.h"
#include "sim/snapshot.h"

namespace dcp {

Switch::Switch(Simulator& sim, Logger& log, NodeId id, std::string name, SwitchConfig cfg,
               std::uint64_t seed)
    : Node(sim, log, id, std::move(name), NodeKind::kSwitch),
      cfg_(cfg),
      rng_(seed),
      fault_rng_(Rng::substream(seed, /*tag=*/0xfa017u)),
      flowlets_(cfg.flowlet_gap),
      rcache_(cfg.route_cache_slots),
      buffer_(cfg.buffer_bytes, 0, cfg.pfc) {
  // Spray/adaptive/flowlet port selection draws from rng_, which would
  // interleave with (and shift) a prefetched batch; hash-based policies
  // never touch it, so there the chance() sites can batch safely.
  batched_draws_ = cfg_.lb == LbPolicy::kEcmp || cfg_.lb == LbPolicy::kSourcePath;
}

std::uint32_t Switch::add_port(Bandwidth bw, Time propagation) {
  const auto idx = static_cast<std::uint32_t>(ports_.size());
  auto policy = std::make_unique<DwrrPolicy>(
      std::array<double, kNumQueueClasses>{1.0, cfg_.control_weight});
  auto port = std::make_unique<Port>(sim_, bw, propagation, std::move(policy));
  port->set_dequeue_hook(
      [](void* sw, const PacketHot& p) { static_cast<Switch*>(sw)->on_port_dequeue(p); }, this);
  ports_.push_back(std::move(port));
  port_up_.push_back(true);
  pause_sent_.push_back({});
  buffer_.ensure_ports(idx + 1);
  return idx;
}

void Switch::set_link_up(std::uint32_t port, bool up) {
  port_up_[port] = up;
  ports_[port]->channel().set_up(up);  // anything already queued is lost
  any_port_down_ = false;
  for (bool u : port_up_) any_port_down_ = any_port_down_ || !u;
  ++flap_epoch_;  // every cached route pick made before the flap goes stale
}

bool Switch::route_slow(const PacketHot& pkt, std::uint32_t& eport) {
  RouteView candidates = routes_.candidates(pkt.dst);
  if (any_port_down_) {
    // Failure detection has withdrawn the dead links from the candidate
    // set (as a routing protocol would).
    alive_scratch_.clear();
    for (std::uint32_t c : candidates) {
      if (port_up_[c]) alive_scratch_.push_back(c);
    }
    candidates = alive_scratch_;
  }
  if (candidates.empty()) {
    if (CheckObserver* ob = sim_.check_observer()) {
      ob->on_drop(DropSite::kSwitchNoRoute, id(), pkt);
    }
    stats_.no_route++;
    return false;
  }
  eport = select_port(
      cfg_.lb, pkt, candidates,
      [this](std::uint32_t p) {
        return ports_[p]->queued_bytes(static_cast<int>(QueueClass::kData));
      },
      rng_, sim_.now(), &flowlets_);
  if (cfg_.route_cache && cfg_.lb == LbPolicy::kEcmp) {
    rcache_.insert(pkt.flow, pkt.dst, pkt.path_id, route_epoch(), eport);
  }
  return true;
}

bool Switch::apply_injected_loss(PacketHot& pkt) {
  if (cfg_.trimming && pkt.tag == DcpTag::kData) {
    trim_to_header_only(pkt);
    if (CheckObserver* ob = sim_.check_observer()) ob->on_trim(id(), pkt);
    stats_.injected_trims++;
    return true;  // lives on: egress-enqueued as a header-only packet
  }
  if (CheckObserver* ob = sim_.check_observer()) {
    ob->on_drop(DropSite::kSwitchInjected, id(), pkt);
  }
  stats_.injected_drops++;
  return false;
}

void Switch::trim_to_header_only(PacketHot& pkt) const {
  pkt.type = PktType::kHeaderOnly;
  pkt.tag = DcpTag::kHeaderOnly;
  pkt.queue_class = QueueClass::kControl;
  pkt.wire_bytes = HeaderSizes::kDcpHeaderOnly;
  pkt.payload_bytes = 0;
}

bool Switch::ecn_mark_decision(std::uint64_t qbytes) {
  if (!cfg_.ecn) return false;
  if (qbytes <= cfg_.ecn_kmin_bytes) return false;
  if (qbytes >= cfg_.ecn_kmax_bytes) return true;
  const double span = static_cast<double>(cfg_.ecn_kmax_bytes - cfg_.ecn_kmin_bytes);
  const double p = cfg_.ecn_pmax * static_cast<double>(qbytes - cfg_.ecn_kmin_bytes) / span;
  return draw_chance(p);
}

void Switch::egress_enqueue(PacketPtr pkt, std::uint32_t eport, std::uint32_t in_port) {
  Port& port = *ports_[eport];
  pkt->acct_in_port = in_port;

  // Header-only packets always ride the control queue, at any depth; losing
  // one breaks the lossless-control-plane property and is counted.
  if (pkt->queue_class == QueueClass::kControl || pkt->type == PktType::kHeaderOnly) {
    pkt->queue_class = QueueClass::kControl;
    if (cfg_.inject_ho_loss_rate > 0.0 && fault_rng_.chance(cfg_.inject_ho_loss_rate)) {
      if (CheckObserver* ob = sim_.check_observer()) {
        ob->on_drop(DropSite::kSwitchCtrlFault, id(), *pkt);
      }
      if (pkt->type == PktType::kHeaderOnly) {
        stats_.dropped_ho++;
        stats_.injected_ho_drops++;
      } else {
        stats_.dropped_ctrl++;
        stats_.injected_ctrl_drops++;
      }
      return;
    }
    if (!buffer_.alloc(in_port, static_cast<std::uint8_t>(QueueClass::kControl),
                       pkt->wire_bytes)) {
      if (CheckObserver* ob = sim_.check_observer()) {
        ob->on_drop(DropSite::kSwitchHoBufferFull, id(), *pkt);
      }
      stats_.dropped_ho++;
      return;
    }
    stats_.ho_seen++;
    stats_.forwarded++;
    port.enqueue(std::move(pkt));
    return;
  }

  const std::uint64_t qbytes = port.queued_bytes(static_cast<int>(QueueClass::kData));
  const std::uint64_t threshold =
      cfg_.trimming ? cfg_.trim_threshold_bytes
                    : (cfg_.pfc.enabled ? UINT64_MAX : cfg_.max_data_queue_bytes);

  if (qbytes >= threshold) {
    if (cfg_.trimming && pkt->tag == DcpTag::kData && pkt->type == PktType::kData) {
      // Paper §4.2: trim the payload, flip the DCP tag to 11, and enqueue
      // the 57-byte remainder into the control queue.
      trim_to_header_only(*pkt);
      if (CheckObserver* ob = sim_.check_observer()) ob->on_trim(id(), *pkt);
      if (!buffer_.alloc(in_port, static_cast<std::uint8_t>(QueueClass::kControl),
                         pkt->wire_bytes)) {
        if (CheckObserver* ob = sim_.check_observer()) {
          ob->on_drop(DropSite::kSwitchHoBufferFull, id(), *pkt);
        }
        stats_.dropped_ho++;
        return;
      }
      stats_.trimmed++;
      stats_.ho_seen++;
      stats_.forwarded++;
      port.enqueue(std::move(pkt));
      return;
    }
    // Non-DCP and DCP-ACK packets are dropped above the threshold (§4.2).
    if (CheckObserver* ob = sim_.check_observer()) {
      ob->on_drop(DropSite::kSwitchOverThreshold, id(), *pkt);
    }
    if (pkt->type == PktType::kData) {
      stats_.dropped_data++;
    } else {
      stats_.dropped_ctrl++;
    }
    if (cfg_.pfc.enabled) stats_.lossless_violations++;
    return;
  }

  if (!buffer_.alloc(in_port, static_cast<std::uint8_t>(QueueClass::kData), pkt->wire_bytes)) {
    if (CheckObserver* ob = sim_.check_observer()) {
      ob->on_drop(DropSite::kSwitchBufferFull, id(), *pkt);
    }
    stats_.dropped_buffer_full++;
    if (pkt->type == PktType::kData) stats_.dropped_data++;
    if (cfg_.pfc.enabled) stats_.lossless_violations++;
    return;
  }

  if (pkt->ecn_capable && ecn_mark_decision(qbytes)) {
    pkt->ecn_ce = true;
    stats_.ecn_marked++;
  }

  stats_.forwarded++;
  port.enqueue(std::move(pkt));

  // PFC: crossing Xoff on the ingress accounting pauses the upstream.
  const auto cls = static_cast<std::uint8_t>(QueueClass::kData);
  if (buffer_.should_pause(in_port, cls) && !pause_sent_[in_port][cls]) {
    pause_sent_[in_port][cls] = true;
    stats_.pauses_sent++;
    Packet pause;
    pause.type = PktType::kPfcPause;
    pause.pause_class = cls;
    pause.wire_bytes = HeaderSizes::kPfcFrame;
    ports_[in_port]->send_oob(std::move(pause));
  }
}

void Switch::on_port_dequeue(const PacketHot& pkt) {
  const auto cls = static_cast<std::uint8_t>(pkt.queue_class);
  const std::uint32_t in_port = pkt.acct_in_port;
  if (in_port == UINT32_MAX) return;  // not buffer-accounted (should not happen)
  buffer_.release(in_port, cls, pkt.wire_bytes);
  if (pause_sent_[in_port][cls] && buffer_.should_resume(in_port, cls)) {
    pause_sent_[in_port][cls] = false;
    stats_.resumes_sent++;
    Packet resume;
    resume.type = PktType::kPfcResume;
    resume.pause_class = cls;
    resume.wire_bytes = HeaderSizes::kPfcFrame;
    ports_[in_port]->send_oob(std::move(resume));
  }
}

void Switch::checkpoint(StateIO& io) {
  io.label(0x51117C4u);
  io.pod(cfg_);
  rng_.checkpoint(io);
  fault_rng_.checkpoint(io);
  chance_buf_.checkpoint(io);
  io.pod(batched_draws_);
  io.pod(any_port_down_);
  io.pod(flap_epoch_);
  // vector<bool> has no contiguous storage; element-wise bytes.
  std::uint64_t nup = port_up_.size();
  io.pod(nup);
  if (!io.saving() && nup != port_up_.size()) {
    io.fail("switch port count mismatch");
    return;
  }
  for (std::size_t i = 0; i < port_up_.size(); ++i) {
    std::uint8_t b = port_up_[i] ? 1 : 0;
    io.pod(b);
    if (!io.saving()) port_up_[i] = b != 0;
  }
  flowlets_.checkpoint(io);
  buffer_.checkpoint(io);
  io.vec(pause_sent_);
  io.pod(stats_);
  io.fixed(ports_, [](StateIO& s, std::unique_ptr<Port>& p) { p->checkpoint(s); });
}

}  // namespace dcp
