#pragma once
// Egress scheduling policies for switch ports.
//
// DCP-Switch uses weighted round-robin between the control queue (trimmed
// header-only packets) and the data queue, with the control queue weighted
// so that its drain rate covers the worst-case trim rate (paper §4.2):
//
//     w = (N - 1) / (r - N + 1)
//
// where N is the incast scale the switch must absorb and 1:r is the
// HO-to-data packet size ratio.  The scheduled byte-volume ratio between
// control and data queues is then w : 1.

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/port.h"

namespace dcp {

/// Byte-deficit weighted round robin across the queue classes.
class DwrrPolicy final : public SchedulerPolicy {
 public:
  /// `weights[i]` is the relative byte share of class i.  They may be
  /// fractional (e.g. control weight 3.75 vs data weight 1).
  explicit DwrrPolicy(std::array<double, kNumQueueClasses> weights,
                      std::uint32_t quantum_bytes = 2048);

  int select(const std::vector<FifoQueue>& queues,
             const std::array<bool, kNumQueueClasses>& paused) override;
  void charge(int queue, std::uint32_t bytes) override;

 private:
  std::array<double, kNumQueueClasses> weights_;
  std::array<double, kNumQueueClasses> deficit_{};
  std::uint32_t quantum_;
  int cur_ = 0;        // queue currently holding the round
  bool entered_ = false;  // quantum credited for this turn?
};

/// Computes the paper's WRR weight w = (N-1)/(r-N+1) for the control queue,
/// where r is the data-to-HO size ratio.  When r <= N-1 the formula has no
/// positive solution (the paper's "r < N-1" regime); we then fall back to
/// `fallback`, which §6.3 shows handles even 255-to-1 incast in practice.
double wrr_control_weight(int incast_scale_n, double size_ratio_r, double fallback = 1.0);

}  // namespace dcp
