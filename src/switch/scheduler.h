#pragma once
// Egress scheduling policies for switch ports.
//
// DCP-Switch uses weighted round-robin between the control queue (trimmed
// header-only packets) and the data queue, with the control queue weighted
// so that its drain rate covers the worst-case trim rate (paper §4.2):
//
//     w = (N - 1) / (r - N + 1)
//
// where N is the incast scale the switch must absorb and 1:r is the
// HO-to-data packet size ratio.  The scheduled byte-volume ratio between
// control and data queues is then w : 1.

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/port.h"

namespace dcp {

/// Byte-deficit weighted round robin across the queue classes.
class DwrrPolicy final : public SchedulerPolicy {
 public:
  /// `weights[i]` is the relative byte share of class i.  They may be
  /// fractional (e.g. control weight 3.75 vs data weight 1).
  explicit DwrrPolicy(std::array<double, kNumQueueClasses> weights,
                      std::uint32_t quantum_bytes = 2048);

  Kind kind() const override { return Kind::kDwrr; }

  // select/charge bodies live inline here: Port::try_transmit resolves the
  // policy to this final type via the Kind tag and calls them statically,
  // so the whole DWRR decision compiles into the transmit path.
  int select(const std::vector<FifoQueue>& queues,
             const std::array<bool, kNumQueueClasses>& paused) override {
    // Fast path: the class holding the round is still eligible and its
    // deficit covers its head-of-line packet.  This is exactly the loop's
    // first iteration (which performs no writes in that case), short of the
    // eligibility pre-scan — whose only effect, the eligible==0 early
    // return, cannot apply when cur_ itself is eligible.
    if (entered_ && !queues[cur_].empty() && !paused[cur_] &&
        deficit_[cur_] >= static_cast<double>(queues[cur_].front().wire_bytes)) {
      return cur_;
    }
    return select_slow(queues, paused);
  }

  void charge(int queue, std::uint32_t bytes) override {
    deficit_[queue] -= static_cast<double>(bytes);
    if (deficit_[queue] < 0) deficit_[queue] = 0;
  }

  /// Mutable round state (deficits, current class, quantum-credit flag);
  /// weights and quantum are construction-time config.
  void checkpoint(StateIO& io) override;

 private:
  int select_slow(const std::vector<FifoQueue>& queues,
                  const std::array<bool, kNumQueueClasses>& paused);
  std::array<double, kNumQueueClasses> weights_;
  std::array<double, kNumQueueClasses> deficit_{};
  std::uint32_t quantum_;
  int cur_ = 0;        // queue currently holding the round
  bool entered_ = false;  // quantum credited for this turn?
};

/// Computes the paper's WRR weight w = (N-1)/(r-N+1) for the control queue,
/// where r is the data-to-HO size ratio.  When r <= N-1 the formula has no
/// positive solution (the paper's "r < N-1" regime); we then fall back to
/// `fallback`, which §6.3 shows handles even 255-to-1 incast in practice.
double wrr_control_weight(int incast_scale_n, double size_ratio_r, double fallback = 1.0);

}  // namespace dcp
