#pragma once
// Collective-communication workloads (Figs. 12, 14): ring AllReduce with
// proper step dependencies, and AllToAll.
//
// RingAllReduce: the buffer is split into n chunks; 2(n-1) steps; in step
// s, member i sends one chunk to member (i+1) mod n, and may only do so
// after (a) its own step-(s-1) send finished and (b) it received the
// step-(s-1) chunk from member (i-1) — the reduce/forward dependency.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "topo/network.h"

namespace dcp {

struct CollectiveParams {
  std::vector<NodeId> members;
  std::uint64_t total_bytes = 32 * 1024 * 1024;
  Time start = 0;
  std::uint64_t msg_bytes = 1024 * 1024;
  int group_tag = 0;
};

class Collective {
 public:
  virtual ~Collective() = default;
  bool done() const { return completed_ == expected_; }
  /// Job completion time: last flow's sender-side completion - start.
  Time jct() const { return last_done_ - params_.start; }
  const std::vector<FlowId>& flows() const { return flow_ids_; }
  const CollectiveParams& params() const { return params_; }

 protected:
  Collective(Network& net, CollectiveParams p) : net_(net), params_(std::move(p)) {}

  Network& net_;
  CollectiveParams params_;
  std::vector<FlowId> flow_ids_;
  std::size_t expected_ = 0;
  std::size_t completed_ = 0;
  Time last_done_ = 0;
};

class RingAllReduce final : public Collective {
 public:
  /// Registers listeners and schedules step 0 at params.start.
  RingAllReduce(Network& net, CollectiveParams p);

  int steps() const { return 2 * (n() - 1); }
  /// Unloaded lower bound: each member pushes 2(n-1)/n * total bytes
  /// through its NIC sequentially.
  static Time ideal_jct(const CollectiveParams& p, Bandwidth rate);

 private:
  int n() const { return static_cast<int>(params_.members.size()); }
  std::uint64_t chunk_bytes() const {
    return std::max<std::uint64_t>(1, params_.total_bytes / static_cast<std::uint64_t>(n()));
  }
  void start_send(int member, int step);
  void maybe_advance(int member);
  void on_tx(const FlowRecord& rec);
  void on_rx(const FlowRecord& rec);

  struct MemberState {
    int tx_done_step = -1;   // highest step whose send completed
    int rx_done_step = -1;   // highest step whose inbound chunk arrived
    int started_step = -1;   // highest step whose send has been launched
  };
  std::vector<MemberState> state_;
  std::unordered_map<FlowId, std::pair<int, int>> flow_role_;  // id -> (member, step)
};

class AllToAll final : public Collective {
 public:
  /// Every member sends total/n bytes to every other member, all at once.
  AllToAll(Network& net, CollectiveParams p);

  static Time ideal_jct(const CollectiveParams& p, Bandwidth rate);

 private:
  void on_tx(const FlowRecord& rec);
  std::unordered_map<FlowId, bool> mine_;
};

}  // namespace dcp
