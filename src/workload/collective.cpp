#include "workload/collective.h"

#include <algorithm>

namespace dcp {

// ---------------------------------------------------------------------------
// RingAllReduce
// ---------------------------------------------------------------------------

RingAllReduce::RingAllReduce(Network& net, CollectiveParams p)
    : Collective(net, std::move(p)), state_(params_.members.size()) {
  expected_ = static_cast<std::size_t>(n()) * static_cast<std::size_t>(steps());
  net_.add_tx_listener([this](const FlowRecord& rec) { on_tx(rec); });
  net_.add_rx_listener([this](const FlowRecord& rec) { on_rx(rec); });
  for (int i = 0; i < n(); ++i) start_send(i, 0);
}

void RingAllReduce::start_send(int member, int step) {
  FlowSpec spec;
  spec.src = params_.members[static_cast<std::size_t>(member)];
  spec.dst = params_.members[static_cast<std::size_t>((member + 1) % n())];
  spec.bytes = chunk_bytes();
  spec.start_time = std::max(params_.start, net_.sim().now());
  spec.msg_bytes = params_.msg_bytes;
  spec.group = params_.group_tag;
  spec.background = false;
  const FlowId id = net_.start_flow(spec);
  flow_ids_.push_back(id);
  flow_role_[id] = {member, step};
  state_[static_cast<std::size_t>(member)].started_step = step;
}

void RingAllReduce::maybe_advance(int member) {
  MemberState& st = state_[static_cast<std::size_t>(member)];
  const int next = st.started_step + 1;
  if (next >= steps()) return;
  // Dependency: own previous send done AND previous inbound chunk received.
  if (st.tx_done_step >= next - 1 && st.rx_done_step >= next - 1) {
    start_send(member, next);
  }
}

void RingAllReduce::on_tx(const FlowRecord& rec) {
  auto it = flow_role_.find(rec.spec.id);
  if (it == flow_role_.end()) return;
  const auto [member, step] = it->second;
  MemberState& st = state_[static_cast<std::size_t>(member)];
  st.tx_done_step = std::max(st.tx_done_step, step);
  ++completed_;
  last_done_ = std::max(last_done_, rec.tx_done);
  maybe_advance(member);
}

void RingAllReduce::on_rx(const FlowRecord& rec) {
  auto it = flow_role_.find(rec.spec.id);
  if (it == flow_role_.end()) return;
  const auto [sender, step] = it->second;
  const int receiver = (sender + 1) % n();
  MemberState& st = state_[static_cast<std::size_t>(receiver)];
  st.rx_done_step = std::max(st.rx_done_step, step);
  maybe_advance(receiver);
}

Time RingAllReduce::ideal_jct(const CollectiveParams& p, Bandwidth rate) {
  const std::uint64_t n = p.members.size();
  if (n < 2) return 0;
  const std::uint64_t per_member = 2 * (n - 1) * (p.total_bytes / n);
  return rate.serialize(static_cast<std::int64_t>(per_member));
}

// ---------------------------------------------------------------------------
// AllToAll
// ---------------------------------------------------------------------------

AllToAll::AllToAll(Network& net, CollectiveParams p) : Collective(net, std::move(p)) {
  const int n = static_cast<int>(params_.members.size());
  const std::uint64_t slice =
      std::max<std::uint64_t>(1, params_.total_bytes / static_cast<std::uint64_t>(n));
  expected_ = static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1);
  net_.add_tx_listener([this](const FlowRecord& rec) { on_tx(rec); });
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      FlowSpec spec;
      spec.src = params_.members[static_cast<std::size_t>(i)];
      spec.dst = params_.members[static_cast<std::size_t>(j)];
      spec.bytes = slice;
      spec.start_time = params_.start;
      spec.msg_bytes = params_.msg_bytes;
      spec.group = params_.group_tag;
      spec.background = false;
      const FlowId id = net_.start_flow(spec);
      flow_ids_.push_back(id);
      mine_[id] = true;
    }
  }
}

void AllToAll::on_tx(const FlowRecord& rec) {
  if (!mine_.contains(rec.spec.id)) return;
  ++completed_;
  last_done_ = std::max(last_done_, rec.tx_done);
}

Time AllToAll::ideal_jct(const CollectiveParams& p, Bandwidth rate) {
  const std::uint64_t n = p.members.size();
  if (n < 2) return 0;
  const std::uint64_t per_member = (n - 1) * (p.total_bytes / n);
  return rate.serialize(static_cast<std::int64_t>(per_member));
}

}  // namespace dcp
