#pragma once
// Empirical flow-size distributions sampled by inverse-CDF interpolation.
// Ships the WebSearch (DCTCP) distribution the paper evaluates: 60% of
// flows below 200 KB, 37% between 200 KB and 10 MB, 3% above 10 MB.

#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace dcp {

class SizeDist {
 public:
  struct Point {
    std::uint64_t bytes;
    double cdf;  // in [0, 1], non-decreasing; last point must be 1.0
  };

  explicit SizeDist(std::vector<Point> points);

  /// Inverse-CDF sample with linear interpolation between points.
  std::uint64_t sample(Rng& rng) const;

  /// Analytic mean of the piecewise-linear distribution.
  double mean_bytes() const { return mean_; }

  /// CDF value at `bytes` (linear interpolation).
  double cdf_at(std::uint64_t bytes) const;

  static SizeDist websearch();
  /// The DataMining / Hadoop-style distribution (Greenberg et al. VL2):
  /// dominated by tiny flows with a very heavy multi-MB tail.
  static SizeDist datamining();
  /// Uniform fixed size (incast and microbenchmarks).
  static SizeDist fixed(std::uint64_t bytes);

 private:
  std::vector<Point> pts_;
  double mean_ = 0.0;
};

}  // namespace dcp
