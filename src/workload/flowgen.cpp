#include "workload/flowgen.h"

namespace dcp {

std::vector<FlowId> generate_poisson_flows(Network& net, const std::vector<Host*>& hosts,
                                           const SizeDist& dist, const FlowGenParams& p) {
  Rng rng(p.seed);
  std::vector<FlowId> ids;
  ids.reserve(p.num_flows);

  // Aggregate arrival rate: load * sum of host capacities / mean flow size.
  const double bits_per_sec = p.host_rate.as_gbps() * 1e9 * static_cast<double>(hosts.size());
  const double flows_per_sec = p.load * bits_per_sec / (dist.mean_bytes() * 8.0);
  const double mean_gap_ps = static_cast<double>(kSecond) / flows_per_sec;

  Time t = p.start;
  for (std::size_t i = 0; i < p.num_flows; ++i) {
    t += static_cast<Time>(rng.exponential(mean_gap_ps));
    std::size_t src = rng.pick_index(hosts.size());
    std::size_t dst = rng.pick_index(hosts.size());
    int guard = 0;
    while ((dst == src ||
            (p.inter_rack_only && p.hosts_per_group > 0 &&
             src / static_cast<std::size_t>(p.hosts_per_group) ==
                 dst / static_cast<std::size_t>(p.hosts_per_group))) &&
           guard++ < 64) {
      dst = rng.pick_index(hosts.size());
    }
    if (dst == src) dst = (src + 1) % hosts.size();

    FlowSpec spec;
    spec.src = hosts[src]->id();
    spec.dst = hosts[dst]->id();
    spec.bytes = dist.sample(rng);
    spec.start_time = t;
    spec.msg_bytes = p.msg_bytes;
    spec.op = p.op;
    spec.background = true;
    ids.push_back(net.start_flow(spec));
  }
  return ids;
}

std::vector<FlowId> generate_permutation(Network& net, const std::vector<Host*>& hosts,
                                         std::uint64_t bytes, Time start, std::uint64_t seed,
                                         std::uint64_t msg_bytes) {
  Rng rng(seed);
  const std::size_t n = hosts.size();
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  // Fisher-Yates into a derangement: reshuffle until no fixed points
  // (expected ~e tries; guaranteed for n >= 2 eventually).
  bool ok = false;
  while (!ok) {
    for (std::size_t i = n - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i)));
      std::swap(perm[i], perm[j]);
    }
    ok = true;
    for (std::size_t i = 0; i < n; ++i) ok = ok && perm[i] != i;
  }
  std::vector<FlowId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    FlowSpec spec;
    spec.src = hosts[i]->id();
    spec.dst = hosts[perm[i]]->id();
    spec.bytes = bytes;
    spec.start_time = start;
    spec.msg_bytes = msg_bytes;
    ids.push_back(net.start_flow(spec));
  }
  return ids;
}

}  // namespace dcp
