#pragma once
// N-to-1 incast generation (Figs. 2, 16, Table 5): periodic bursts where
// `fan_in` random senders each ship `bytes_per_sender` to one victim.

#include <cstdint>
#include <vector>

#include "topo/network.h"

namespace dcp {

struct IncastParams {
  int fan_in = 128;
  std::uint64_t bytes_per_sender = 64 * 1024;
  double load = 0.1;  // of the victim's NIC capacity
  Bandwidth host_rate = Bandwidth::gbps(100);
  int bursts = 10;
  Time start = 0;
  std::uint64_t seed = 7;
  std::uint64_t msg_bytes = 1024 * 1024;
  int victim_index = 0;  // index into `hosts`
};

/// Registers the incast flows; flows carry group = burst index and
/// background = false so stats can separate them from background traffic.
std::vector<FlowId> generate_incast(Network& net, const std::vector<Host*>& hosts,
                                    const IncastParams& p);

}  // namespace dcp
