#include "workload/size_dist.h"

#include <algorithm>
#include <cassert>

namespace dcp {

SizeDist::SizeDist(std::vector<Point> points) : pts_(std::move(points)) {
  assert(!pts_.empty() && pts_.back().cdf >= 1.0 - 1e-9);
  // Mean of the piecewise-linear CDF: each segment contributes its
  // probability mass times the segment's average size.
  double mean = 0.0;
  double prev_cdf = 0.0;
  std::uint64_t prev_b = pts_.front().cdf > 0.0 ? 0 : pts_.front().bytes;
  for (const Point& p : pts_) {
    const double mass = p.cdf - prev_cdf;
    if (mass > 0) mean += mass * (static_cast<double>(prev_b) + static_cast<double>(p.bytes)) / 2.0;
    prev_cdf = p.cdf;
    prev_b = p.bytes;
  }
  mean_ = mean;
}

std::uint64_t SizeDist::sample(Rng& rng) const {
  const double u = rng.uniform();
  double prev_cdf = 0.0;
  std::uint64_t prev_b = 0;
  for (const Point& p : pts_) {
    if (u <= p.cdf) {
      const double span = p.cdf - prev_cdf;
      if (span <= 0.0) return p.bytes;
      const double f = (u - prev_cdf) / span;
      const double b =
          static_cast<double>(prev_b) + f * (static_cast<double>(p.bytes) - static_cast<double>(prev_b));
      return static_cast<std::uint64_t>(std::max(1.0, b));
    }
    prev_cdf = p.cdf;
    prev_b = p.bytes;
  }
  return pts_.back().bytes;
}

double SizeDist::cdf_at(std::uint64_t bytes) const {
  double prev_cdf = 0.0;
  std::uint64_t prev_b = 0;
  for (const Point& p : pts_) {
    if (bytes <= p.bytes) {
      if (p.bytes == prev_b) return p.cdf;
      const double f = static_cast<double>(bytes - prev_b) /
                       static_cast<double>(p.bytes - prev_b);
      return prev_cdf + f * (p.cdf - prev_cdf);
    }
    prev_cdf = p.cdf;
    prev_b = p.bytes;
  }
  return 1.0;
}

SizeDist SizeDist::websearch() {
  // DCTCP web-search distribution (Alizadeh et al., SIGCOMM 2010), the
  // standard simulator rendition; satisfies the paper's 60/37/3 split at
  // 200 KB and 10 MB.
  return SizeDist({{6'000, 0.15},
                   {13'000, 0.20},
                   {19'000, 0.30},
                   {33'000, 0.40},
                   {53'000, 0.53},
                   {133'000, 0.60},
                   {667'000, 0.70},
                   {1'333'000, 0.80},
                   {3'333'000, 0.90},
                   {6'667'000, 0.95},
                   {10'000'000, 0.97},
                   {30'000'000, 1.00}});
}

SizeDist SizeDist::datamining() {
  // VL2's data-mining workload, as commonly rendered in DC transport
  // simulators: ~80% of flows under 10 KB, a long tail out to 1 GB.
  return SizeDist({{100, 0.10},
                   {1'000, 0.50},
                   {10'000, 0.80},
                   {100'000, 0.85},
                   {1'000'000, 0.90},
                   {10'000'000, 0.95},
                   {100'000'000, 0.98},
                   {1'000'000'000, 1.00}});
}

SizeDist SizeDist::fixed(std::uint64_t bytes) {
  // A zero-mass point at `bytes` pins the whole distribution there.
  return SizeDist({{bytes, 0.0}, {bytes, 1.0}});
}

}  // namespace dcp
