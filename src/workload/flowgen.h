#pragma once
// Poisson open-loop flow generation over a host set at a target load.

#include <cstdint>
#include <vector>

#include "topo/network.h"
#include "workload/size_dist.h"

namespace dcp {

struct FlowGenParams {
  double load = 0.3;               // fraction of per-host NIC capacity
  Bandwidth host_rate = Bandwidth::gbps(100);
  std::size_t num_flows = 1000;    // open-loop arrival count
  Time start = 0;
  std::uint64_t seed = 42;
  std::uint64_t msg_bytes = 1024 * 1024;  // DCP message granularity
  RdmaOp op = RdmaOp::kWrite;
  bool inter_rack_only = false;    // force src/dst on different leaves
  int hosts_per_group = 0;         // needed by inter_rack_only
};

/// Registers `num_flows` Poisson arrivals with WebSearch (or custom) sizes
/// between uniformly random distinct hosts.  Returns the generated specs'
/// flow ids.
std::vector<FlowId> generate_poisson_flows(Network& net, const std::vector<Host*>& hosts,
                                           const SizeDist& dist, const FlowGenParams& p);

/// Permutation traffic: every host sends one flow of `bytes` to a distinct
/// partner (a random derangement), all starting at `start`.  The classic
/// fabric stress pattern: every NIC is both a sender and a receiver at
/// full rate, and cross-fabric load is perfectly admissible — any loss or
/// slowdown is the fabric's fault, not oversubscription.
std::vector<FlowId> generate_permutation(Network& net, const std::vector<Host*>& hosts,
                                         std::uint64_t bytes, Time start = 0,
                                         std::uint64_t seed = 9,
                                         std::uint64_t msg_bytes = 4 * 1024 * 1024);

}  // namespace dcp
