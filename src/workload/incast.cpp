#include "workload/incast.h"

namespace dcp {

std::vector<FlowId> generate_incast(Network& net, const std::vector<Host*>& hosts,
                                    const IncastParams& p) {
  Rng rng(p.seed);
  std::vector<FlowId> ids;

  // Burst interval such that average offered load on the victim's link is
  // `load`: burst_bytes * 8 / interval = load * rate.
  const double burst_bits =
      static_cast<double>(p.fan_in) * static_cast<double>(p.bytes_per_sender) * 8.0;
  const double interval_ps = burst_bits / (p.load * p.host_rate.as_gbps() * 1e9) *
                             static_cast<double>(kSecond);

  const std::size_t victim = static_cast<std::size_t>(p.victim_index) % hosts.size();
  Time t = p.start;
  for (int b = 0; b < p.bursts; ++b) {
    for (int s = 0; s < p.fan_in; ++s) {
      std::size_t sender = rng.pick_index(hosts.size());
      if (sender == victim) sender = (sender + 1) % hosts.size();
      FlowSpec spec;
      spec.src = hosts[sender]->id();
      spec.dst = hosts[victim]->id();
      spec.bytes = p.bytes_per_sender;
      spec.start_time = t;
      spec.msg_bytes = p.msg_bytes;
      spec.group = b;
      spec.background = false;
      ids.push_back(net.start_flow(spec));
    }
    t += static_cast<Time>(interval_ps);  // periodic bursts at the target load
  }
  return ids;
}

}  // namespace dcp
