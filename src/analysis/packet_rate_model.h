#pragma once
// Fig. 7: theoretical packet rate (Mpps) vs. out-of-order degree, measured
// by exercising the real tracking structures with a synthetic OOO arrival
// pattern and averaging their reported step counts.

#include <cstdint>
#include <vector>

namespace dcp {

struct PacketRatePoint {
  int ooo_degree;
  double bdp_bitmap_mpps;
  double linked_chunk_mpps;
  double dcp_mpps;
};

/// Sweeps OOO degrees (0..max_degree, stride) at the given pipeline clock.
/// The OOO pattern delivers packets `degree` PSNs ahead of the window head,
/// which forces the linked-chunk walk the paper analyzes.
std::vector<PacketRatePoint> packet_rate_sweep(int max_degree, int stride, double clock_mhz);

}  // namespace dcp
