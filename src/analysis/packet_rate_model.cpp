#include "analysis/packet_rate_model.h"

#include "core/tracking.h"

namespace dcp {
namespace {

/// Average steps/packet when every arrival lands `degree` PSNs beyond the
/// window head (the sustained-OOO regime of Fig. 7).
template <typename Tracker>
double avg_steps(Tracker& t, int degree, int rounds) {
  std::uint64_t steps = 0;
  std::uint64_t pkts = 0;
  std::uint32_t head = 0;
  for (int r = 0; r < rounds; ++r) {
    steps += static_cast<std::uint64_t>(t.on_packet(head + static_cast<std::uint32_t>(degree)));
    ++pkts;
    ++head;
    t.advance_head(head);
  }
  return static_cast<double>(steps) / static_cast<double>(pkts);
}

}  // namespace

std::vector<PacketRatePoint> packet_rate_sweep(int max_degree, int stride, double clock_mhz) {
  std::vector<PacketRatePoint> out;
  constexpr int kRounds = 512;
  for (int d = 0; d <= max_degree; d += stride) {
    const std::uint32_t window = static_cast<std::uint32_t>(max_degree) + 1024;

    BdpBitmapTracker bdp(window);
    LinkedChunkTracker chunk(window * 4);
    // DCP: geometry doesn't matter for cost; one message of many packets.
    MessageCounterTracker dcpt(std::vector<std::uint32_t>(64, 1u << 20), 8);

    PacketRatePoint p;
    p.ooo_degree = d;
    p.bdp_bitmap_mpps = packet_rate_mpps(clock_mhz, avg_steps(bdp, d, kRounds));
    p.linked_chunk_mpps = packet_rate_mpps(clock_mhz, avg_steps(chunk, d, kRounds));
    p.dcp_mpps = packet_rate_mpps(clock_mhz, avg_steps(dcpt, d, kRounds));
    out.push_back(p);
  }
  return out;
}

}  // namespace dcp
