#include "analysis/lossless_distance.h"

namespace dcp {

std::vector<AsicSpec> commodity_asics() {
  return {
      {"Tomahawk 3", 32, 400, 64},  {"Tomahawk 5", 64, 800, 165},
      {"Tofino 1", 32, 100, 20},    {"Tofino 2", 32, 400, 64},
      {"Spectrum", 32, 100, 16},    {"Spectrum-4", 64, 800, 160},
  };
}

double buffer_per_port_per_100g_mb(const AsicSpec& a) {
  const double total_100g_units = a.ports * a.gbps_per_port / 100.0;
  return a.buffer_mb / total_100g_units;
}

double max_lossless_km(const AsicSpec& a, int queues) {
  // L = buffer / (bandwidth * one_hop_delay_per_km * 2); per 100 Gbps unit:
  // bytes available = per-port-per-100G buffer / queues; drain = 12.5 GB/s;
  // delay = 5 us/km.
  const double bytes = buffer_per_port_per_100g_mb(a) * 1024 * 1024 / queues;
  const double bytes_per_km = 12.5e9 /* B/s at 100G */ * 5e-6 /* s/km */ * 2.0;
  return bytes / bytes_per_km;
}

}  // namespace dcp
