#include "analysis/resource_proxy.h"

#include "core/dcp_transport.h"
#include "core/tracking.h"
#include "transports/gbn.h"
#include "transports/irn.h"
#include "transports/racktlp.h"

namespace dcp {

std::vector<ResourceRow> resource_proxy_rows(std::uint32_t bdp_pkts) {
  std::vector<ResourceRow> rows;

  // RNIC-GBN: fixed-size QP context, no tracking structures.
  rows.push_back(ResourceRow{"RNIC-GBN", sizeof(GbnSender), sizeof(GbnReceiver), 0, 1.0});

  // IRN: sender + receiver bitmaps at BDP size (bits -> bytes), plus the
  // loss-recovery episode state.
  rows.push_back(ResourceRow{"IRN (RNIC-SR)", sizeof(IrnSender), sizeof(IrnReceiver),
                             static_cast<std::uint64_t>(bdp_pkts) / 8 * 3 /* 3 bitmaps */, 2.0});

  // RACK-TLP: 8-byte transmission timestamp per in-flight packet.
  rows.push_back(ResourceRow{"RACK-TLP", sizeof(RackTlpSender), sizeof(OooReceiver),
                             static_cast<std::uint64_t>(bdp_pkts) * 8, 3.0});

  // DCP: message counters only; the RetransQ lives in *host* memory.
  MessageCounterTracker t(std::vector<std::uint32_t>(8, 1), 8);
  rows.push_back(
      ResourceRow{"DCP-RNIC", sizeof(DcpSender), sizeof(DcpReceiver), t.memory_bytes() + 16, 1.0});

  return rows;
}

}  // namespace dcp
