#pragma once
// Table 2: which schemes meet requirements R1-R4.  Encoded as data derived
// from the properties of the implementations in this repository.

#include <string>
#include <vector>

namespace dcp {

struct SchemeFeatures {
  std::string name;
  bool r1_no_pfc;          // efficient without PFC
  bool r2_packet_level_lb; // compatible with packet-level load balancing
  bool r3_fast_retx_any;   // fast retransmission for any lost packet
  bool r4_hw_friendly;     // offloadable with low memory/compute
};

std::vector<SchemeFeatures> feature_matrix();

}  // namespace dcp
