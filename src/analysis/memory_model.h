#pragma once
// Table 3: receiver-side packet-tracking memory for the three schemes, in
// the paper's typical intra-DC setting (400 Gbps, 10 us RTT, 1 KB MTU).

#include <cstdint>

namespace dcp {

struct TrackingMemoryRow {
  const char* scheme;
  std::uint64_t per_qp_bytes_min;
  std::uint64_t per_qp_bytes_max;
  std::uint64_t total_10k_qps_min;
  std::uint64_t total_10k_qps_max;
};

struct TrackingMemoryInputs {
  double gbps = 400.0;
  double rtt_us = 10.0;
  std::uint32_t mtu_bytes = 1000;
  std::uint32_t bitmaps_per_qp = 5;  // RNIC designs keep several BDP bitmaps
  std::uint32_t outstanding_msgs = 8;
  std::uint32_t qps = 10'000;
};

std::uint32_t bdp_packets(const TrackingMemoryInputs& in);

/// Rows: BDP-sized, Linked chunk, DCP — min/max per QP and fleet totals.
/// Computed from the same structures the simulator uses, instantiated at
/// the BDP geometry.
TrackingMemoryRow bdp_bitmap_row(const TrackingMemoryInputs& in);
TrackingMemoryRow linked_chunk_row(const TrackingMemoryInputs& in);
TrackingMemoryRow dcp_row(const TrackingMemoryInputs& in);

}  // namespace dcp
