#include "analysis/feature_matrix.h"

namespace dcp {

std::vector<SchemeFeatures> feature_matrix() {
  return {
      {"RNIC-GBN", false, false, false, true},
      {"RNIC-SR (IRN)", true, false, false, true},
      {"MPTCP", true, true, false, false},
      {"NDP", true, true, true, false},
      {"CP", true, true, true, false},
      {"MP-RDMA", false, true, false, true},
      {"DCP", true, true, true, true},
  };
}

}  // namespace dcp
