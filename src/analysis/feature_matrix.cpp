#include "analysis/feature_matrix.h"

namespace dcp {

std::vector<SchemeFeatures> feature_matrix() {
  return {
      {"RNIC-GBN", false, false, false, true},
      {"RNIC-SR (IRN)", true, false, false, true},
      {"MPTCP", true, true, false, false},
      {"NDP", true, true, true, false},
      {"CP", true, true, true, false},
      {"MP-RDMA", false, true, false, true},
      {"DCP", true, true, true, true},
      // Erasure-coded streaming (transports/fec.h): thrives on lossy fabrics
      // and is indifferent to per-packet spraying, and repairs up to m losses
      // per group with no retransmission at all — but line-rate GF(256)
      // encode plus per-group decode buffers put it outside the
      // low-memory/low-compute RNIC envelope R4 asks for.
      {"FEC", true, true, true, false},
  };
}

}  // namespace dcp
