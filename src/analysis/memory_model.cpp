#include "analysis/memory_model.h"

#include <vector>

#include "core/tracking.h"

namespace dcp {

std::uint32_t bdp_packets(const TrackingMemoryInputs& in) {
  const double bdp_bytes = in.gbps * 1e9 / 8.0 * in.rtt_us * 1e-6;
  return static_cast<std::uint32_t>(bdp_bytes / in.mtu_bytes);
}

TrackingMemoryRow bdp_bitmap_row(const TrackingMemoryInputs& in) {
  const std::uint32_t pkts = bdp_packets(in);
  BdpBitmapTracker t(pkts);
  const std::uint64_t per_qp = t.memory_bytes() * in.bitmaps_per_qp;
  return {"BDP-sized", per_qp, per_qp, per_qp * in.qps, per_qp * in.qps};
}

TrackingMemoryRow linked_chunk_row(const TrackingMemoryInputs& in) {
  const std::uint32_t pkts = bdp_packets(in);
  // Min: the single pre-allocated chunk per QP (low OOO) times the same
  // bitmap replication factor; max: chunks for the whole BDP.
  LinkedChunkTracker min_t(pkts);
  LinkedChunkTracker max_t(pkts);
  max_t.on_packet(pkts - 1);  // force the full chain
  const std::uint64_t per_min = min_t.memory_bytes() * in.bitmaps_per_qp;
  const std::uint64_t per_max = max_t.memory_bytes() * in.bitmaps_per_qp;
  return {"Linked chunk", per_min, per_max, per_min * in.qps, per_max * in.qps};
}

TrackingMemoryRow dcp_row(const TrackingMemoryInputs& in) {
  MessageCounterTracker t(std::vector<std::uint32_t>(in.outstanding_msgs, 1), in.outstanding_msgs);
  // Counters + eMSN/rRetryNo QPC fields (~16 B of per-QP context).
  const std::uint64_t per_qp = t.memory_bytes() + 16;
  return {"DCP", per_qp, per_qp, per_qp * in.qps, per_qp * in.qps};
}

}  // namespace dcp
