#pragma once
// Table 4 substitute (documented in DESIGN.md): we cannot synthesize FPGA
// LUT/BRAM counts from software, so we report the software analogue — the
// per-QP state bytes and per-packet processing steps of each transport
// implementation, measured from the actual classes.  The paper's claim is
// the *ratio*: DCP-RNIC costs only ~1-2% more than RNIC-GBN.

#include <cstdint>
#include <string>
#include <vector>

namespace dcp {

struct ResourceRow {
  std::string scheme;
  std::uint64_t sender_state_bytes;    // per-QP connection state (sizeof)
  std::uint64_t receiver_state_bytes;  // per-QP receive state (sizeof)
  std::uint64_t tracking_bytes;        // loss-tracking structures at BDP
  double rx_steps_per_packet;          // sequential steps in the hot path
};

/// GBN vs DCP vs IRN vs RACK-TLP rows measured from the implementations,
/// at the given BDP (packets).
std::vector<ResourceRow> resource_proxy_rows(std::uint32_t bdp_pkts);

}  // namespace dcp
