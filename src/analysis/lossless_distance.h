#pragma once
// Table 1: maximum lossless communication distance with PFC enabled, for
// commodity switching ASICs:  L = buffer / (bandwidth × one-hop-delay × 2)
// with one-hop delay 5 us per km of fiber (2×10^8 m/s).

#include <cstdint>
#include <string>
#include <vector>

namespace dcp {

struct AsicSpec {
  std::string name;
  int ports;
  double gbps_per_port;
  double buffer_mb;
};

/// The six ASICs of Table 1.
std::vector<AsicSpec> commodity_asics();

/// Buffer available per port per 100 Gbps (MB).
double buffer_per_port_per_100g_mb(const AsicSpec& a);

/// Max lossless distance in km when the per-port buffer is split across
/// `queues` lossless queues.
double max_lossless_km(const AsicSpec& a, int queues);

}  // namespace dcp
