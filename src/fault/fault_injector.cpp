#include "fault/fault_injector.h"

#include <algorithm>
#include <utility>

#include "sim/snapshot.h"

namespace dcp {

FaultInjector::FaultInjector(Network& net, FaultPlan plan, std::uint64_t seed)
    : net_(net), plan_(std::move(plan)), rng_(Rng::substream(seed, /*tag=*/0xfa017)) {
  arm();
}

FaultInjector::~FaultInjector() {
  for (EventId ev : events_) net_.sim().cancel(ev);
  for (auto& [ch, state] : hooked_) ch->set_fault(nullptr);
}

void FaultInjector::arm() {
  for (std::size_t i = 0; i < plan_.actions.size(); ++i) {
    const FaultAction& a = plan_.actions[i];
    if (a.is_noop()) continue;  // arms nothing: zero-intensity plans are free
    events_.push_back(net_.sim().schedule_at(a.at, [this, i] { apply(i); }));
    if (a.end() != kTimeInfinity) {
      events_.push_back(net_.sim().schedule_at(a.end(), [this, i] { revert(i); }));
    }
  }
}

std::vector<Switch*> FaultInjector::target_switches(const FaultAction& a) const {
  std::vector<Switch*> out;
  const auto& sws = net_.switches();
  if (a.sw == FaultAction::kAll) {
    for (const auto& s : sws) out.push_back(s.get());
  } else if (a.sw < sws.size()) {
    out.push_back(sws[a.sw].get());
  }
  return out;
}

std::vector<std::pair<Switch*, std::uint32_t>> FaultInjector::target_ports(
    const FaultAction& a) const {
  std::vector<std::pair<Switch*, std::uint32_t>> out;
  for (Switch* s : target_switches(a)) {
    if (a.port == FaultAction::kAll) {
      for (std::uint32_t p = 0; p < s->num_ports(); ++p) out.emplace_back(s, p);
    } else if (a.port < s->num_ports()) {
      out.emplace_back(s, a.port);
    }
  }
  return out;
}

ChannelFault* FaultInjector::hook(Channel& ch) {
  auto it = hooked_.find(&ch);
  if (it != hooked_.end()) return it->second;
  states_.emplace_back();
  ChannelFault* f = &states_.back();
  f->rng = &rng_;
  ch.set_fault(f);
  hooked_[&ch] = f;
  return f;
}

void FaultInjector::flip_link(Switch* sw, std::uint32_t port, bool up, bool drop_in_flight) {
  Channel& fwd = sw->port(port).channel();
  if (!up) {
    fwd.set_drop_in_flight_on_cut(drop_in_flight);
    note_cut_channel(&fwd);
    ctr_.link_cuts++;
  } else {
    ctr_.link_restores++;
  }
  sw->set_link_up(port, up);

  // A flap is a full-duplex event: find the reverse channel and cut or
  // restore it too (withdrawing routes on a peer switch, silencing a peer
  // host's NIC).
  Node* peer = fwd.peer();
  for (const auto& s : net_.switches()) {
    if (s.get() == peer) {
      Channel& rev = s->port(fwd.peer_port()).channel();
      if (!up) {
        rev.set_drop_in_flight_on_cut(drop_in_flight);
        note_cut_channel(&rev);
      }
      s->set_link_up(fwd.peer_port(), up);
      return;
    }
  }
  for (const auto& h : net_.hosts()) {
    if (h.get() == peer) {
      Channel& rev = h->nic().channel();
      if (!up) {
        rev.set_drop_in_flight_on_cut(drop_in_flight);
        note_cut_channel(&rev);
      }
      rev.set_up(up);
      return;
    }
  }
}

void FaultInjector::note_cut_channel(Channel* ch) {
  if (std::find(cut_channels_.begin(), cut_channels_.end(), ch) == cut_channels_.end()) {
    cut_channels_.push_back(ch);
  }
}

void FaultInjector::apply(std::size_t i) {
  const FaultAction& a = plan_.actions[i];
  switch (a.kind) {
    case FaultKind::kLinkFlap:
      for (auto [sw, p] : target_ports(a)) flip_link(sw, p, /*up=*/false, a.drop_in_flight);
      break;
    case FaultKind::kDrop:
      for (auto [sw, p] : target_ports(a)) hook(sw->port(p).channel())->drop_rate += a.rate;
      break;
    case FaultKind::kCorrupt:
      for (auto [sw, p] : target_ports(a)) hook(sw->port(p).channel())->corrupt_rate += a.rate;
      break;
    case FaultKind::kHoLoss:
      for (Switch* sw : target_switches(a)) sw->config().inject_ho_loss_rate += a.rate;
      break;
    case FaultKind::kBufferShrink: {
      auto& saved = saved_capacity_[i];
      for (Switch* sw : target_switches(a)) {
        const std::uint64_t cap = sw->buffer().capacity();
        saved.emplace_back(sw, cap);
        sw->buffer().set_capacity(static_cast<std::uint64_t>(static_cast<double>(cap) * a.frac));
      }
      break;
    }
    case FaultKind::kBlackhole:
      for (auto [sw, p] : target_ports(a)) hook(sw->port(p).channel())->blackhole_refs++;
      break;
  }
  if (on_fault_start) on_fault_start(i, a, net_.sim().now());
}

void FaultInjector::revert(std::size_t i) {
  const FaultAction& a = plan_.actions[i];
  switch (a.kind) {
    case FaultKind::kLinkFlap:
      for (auto [sw, p] : target_ports(a)) flip_link(sw, p, /*up=*/true, a.drop_in_flight);
      break;
    case FaultKind::kDrop:
      for (auto [sw, p] : target_ports(a)) hook(sw->port(p).channel())->drop_rate -= a.rate;
      break;
    case FaultKind::kCorrupt:
      for (auto [sw, p] : target_ports(a)) hook(sw->port(p).channel())->corrupt_rate -= a.rate;
      break;
    case FaultKind::kHoLoss:
      for (Switch* sw : target_switches(a)) sw->config().inject_ho_loss_rate -= a.rate;
      break;
    case FaultKind::kBufferShrink:
      for (auto [sw, cap] : saved_capacity_[i]) sw->buffer().set_capacity(cap);
      saved_capacity_.erase(i);
      break;
    case FaultKind::kBlackhole:
      for (auto [sw, p] : target_ports(a)) hook(sw->port(p).channel())->blackhole_refs--;
      break;
  }
  if (on_fault_end) on_fault_end(i, a, net_.sim().now());
}

FaultInjector::Counters FaultInjector::counters() const {
  Counters c = ctr_;
  for (const ChannelFault& f : states_) {
    c.dropped += f.dropped;
    c.corrupted += f.corrupted;
    c.blackholed += f.blackholed;
  }
  for (const Channel* ch : cut_channels_) c.in_flight_dropped += ch->in_flight_dropped();
  return c;
}

std::size_t FaultInjector::doomed_in_lanes() const {
  std::size_t n = 0;
  for (const Channel* ch : cut_channels_) n += ch->lane_doomed_pending();
  return n;
}


void FaultInjector::replay_to(Time t) {
  struct Rep {
    Time at;
    std::size_t ev;
    std::size_t action;
    bool is_start;
  };
  std::vector<Rep> reps;
  std::size_t ev = 0;
  for (std::size_t i = 0; i < plan_.actions.size(); ++i) {
    const FaultAction& a = plan_.actions[i];
    if (a.is_noop()) continue;
    if (a.at < t) reps.push_back({a.at, ev, i, true});
    ++ev;
    if (a.end() != kTimeInfinity) {
      if (a.end() < t) reps.push_back({a.end(), ev, i, false});
      ++ev;
    }
  }
  // Same-time events fired in arm order (arming allocates ascending
  // sequence numbers), which a stable sort by time preserves.
  std::stable_sort(reps.begin(), reps.end(),
                   [](const Rep& x, const Rep& y) { return x.at < y.at; });
  auto saved_start = std::move(on_fault_start);
  auto saved_end = std::move(on_fault_end);
  on_fault_start = nullptr;
  on_fault_end = nullptr;
  for (const Rep& r : reps) {
    net_.sim().cancel(events_[r.ev]);
    if (r.is_start) {
      apply(r.action);
    } else {
      revert(r.action);
    }
  }
  on_fault_start = std::move(saved_start);
  on_fault_end = std::move(saved_end);
}

void FaultInjector::checkpoint(StateIO& io) {
  io.label(0xFA1737u);
  rng_.checkpoint(io);
  io.pod(ctr_);
  std::uint64_t ns = states_.size();
  io.pod(ns);
  if (!io.saving() && ns != states_.size()) {
    return io.fail("fault hook count mismatch (replay_to not run?)");
  }
  for (ChannelFault& f : states_) {
    io.pod(f.drop_rate);
    io.pod(f.corrupt_rate);
    io.pod(f.blackhole_refs);
    io.pod(f.dropped);
    io.pod(f.corrupted);
    io.pod(f.blackholed);
  }
}

}  // namespace dcp
