#pragma once
// FaultInjector: executes a FaultPlan against a live Network.
//
// The injector arms one event per action start (and one per action end,
// when the action has a finite window) on the simulator's event queue at
// construction.  Fault probability draws come from a dedicated RNG stream
// (Rng::substream of the injector seed), and switches use their own fault
// substream for control-queue loss — enabling faults never perturbs
// workload arrival or load-balancing randomness, and a plan whose actions
// are all no-ops (see FaultAction::is_noop) arms nothing at all, leaving
// the run bit-identical to a fault-free one.
//
// State is injected through small hooks on existing components rather than
// copies of their logic: ChannelFault pointers on channels (drop / corrupt
// / blackhole), Switch::set_link_up (flap), SwitchConfig::inject_ho_loss_rate
// (control-queue loss) and SharedBuffer::set_capacity (buffer shrink).
// Overlapping rate faults on one link compose additively; the injector's
// destructor detaches every hook it installed.
//
// Interaction with the two-level scheduler (net/lane.h): none of the hooks
// touch the simulator heap.  Rate faults draw at the far end when a lane
// record fires, exactly where the plain path would have drawn, so the RNG
// stream consumption is identical.  A drop-in-flight link cut is an O(1)
// epoch bump on the channel: records already parked in the lane are doomed
// *lazily* — they stay in the FIFO, surface at their stamped (t, seq), and
// only then account as in_flight_dropped.  Between the cut and the last
// stamped arrival time, doomed_in_lanes() exposes how many such dead
// records are still parked (a pure diagnostic; it never affects outputs).

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "fault/fault_plan.h"
#include "sim/rng.h"
#include "topo/network.h"

namespace dcp {

class StateIO;

class FaultInjector {
 public:
  /// Wire-level fault counters aggregated over every hooked channel.
  struct Counters {
    std::uint64_t dropped = 0;      // random per-link drops
    std::uint64_t corrupted = 0;    // CRC-failed deliveries
    std::uint64_t blackholed = 0;   // discarded by blackholed ports
    std::uint64_t in_flight_dropped = 0;  // killed mid-wire by drop-in-flight cuts
    std::uint64_t link_cuts = 0;
    std::uint64_t link_restores = 0;
  };

  FaultInjector(Network& net, FaultPlan plan, std::uint64_t seed = 0xfa017);
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }

  /// Fired when action `i` takes effect / reverts (no-op actions never
  /// fire).  The recovery-statistics collector hangs off these.
  std::function<void(std::size_t, const FaultAction&, Time)> on_fault_start;
  std::function<void(std::size_t, const FaultAction&, Time)> on_fault_end;

  Counters counters() const;

  // ---- Checkpoint/restore (sim/snapshot.h) ------------------------------
  /// Restore prep: re-executes the structural side effects of every action
  /// start/revert with time strictly below `t` — in fire order, with the
  /// notification callbacks suppressed — and cancels their armed events.
  /// This reproduces hook creation order (stable ChannelFault addresses),
  /// the cut-channel list and saved capacities exactly as the saved run
  /// left them; the value state they carry is then overlaid by
  /// checkpoint().  Mutations to switches/channels made here are likewise
  /// overwritten by their own checkpoints.
  void replay_to(Time t);
  /// RNG position, aggregate counters and every hooked channel's fault
  /// rates/counters (in hook-creation order, which replay_to reproduced).
  void checkpoint(StateIO& io);

  /// Lane records doomed by a drop-in-flight cut but not yet surfaced —
  /// in-flight losses the lane scheduler has committed to but not yet
  /// accounted (always 0 on the plain path, and again 0 once simulated
  /// time passes the last pre-cut arrival stamp).
  std::size_t doomed_in_lanes() const;

 private:
  void arm();
  void apply(std::size_t i);
  void revert(std::size_t i);
  /// Resolves an action's target switches (sw == kAll fans out).
  std::vector<Switch*> target_switches(const FaultAction& a) const;
  /// Resolves target (switch, port) pairs (port == kAll fans out).
  std::vector<std::pair<Switch*, std::uint32_t>> target_ports(const FaultAction& a) const;
  /// The per-channel fault state, created and installed on first use.
  ChannelFault* hook(Channel& ch);
  void flip_link(Switch* sw, std::uint32_t port, bool up, bool drop_in_flight);
  void note_cut_channel(Channel* ch);

  Network& net_;
  FaultPlan plan_;
  Rng rng_;
  std::vector<EventId> events_;      // armed start/revert events (cancelled in dtor)
  std::deque<ChannelFault> states_;  // deque: stable addresses for installed hooks
  std::unordered_map<Channel*, ChannelFault*> hooked_;
  std::vector<Channel*> cut_channels_;  // channels ever cut (in-flight-drop accounting)
  // Saved pre-fault values for revert, keyed by action index.
  std::unordered_map<std::size_t, std::vector<std::pair<Switch*, std::uint64_t>>> saved_capacity_;
  Counters ctr_;
};

}  // namespace dcp
