#include "fault/fault_plan.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace dcp {
namespace {

// Times serialize as microseconds: every Time this library manipulates is
// ps-exact at us granularity, and %.9g keeps sub-us values lossless for the
// magnitudes fault plans use.
std::string time_to_str(Time t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9gus", to_us(t));
  return buf;
}

bool parse_time(const std::string& v, Time* out) {
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  if (end == v.c_str()) return false;
  const std::string unit(end);
  if (unit == "ns") *out = nanoseconds(x);
  else if (unit == "us" || unit.empty()) *out = microseconds(x);
  else if (unit == "ms") *out = milliseconds(x);
  else if (unit == "s") *out = seconds(x);
  else return false;
  return true;
}

bool parse_target(const std::string& v, std::uint32_t* out) {
  if (v == "all" || v == "*") {
    *out = FaultAction::kAll;
    return true;
  }
  char* end = nullptr;
  const unsigned long x = std::strtoul(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') return false;
  *out = static_cast<std::uint32_t>(x);
  return true;
}

std::string target_to_str(std::uint32_t t) {
  return t == FaultAction::kAll ? "all" : std::to_string(t);
}

bool parse_double(const std::string& v, double* out) {
  char* end = nullptr;
  *out = std::strtod(v.c_str(), &end);
  return end != v.c_str() && *end == '\0';
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkFlap: return "link_flap";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kHoLoss: return "ho_loss";
    case FaultKind::kBufferShrink: return "buffer_shrink";
    case FaultKind::kBlackhole: return "blackhole";
  }
  return "?";
}

std::optional<FaultAction> parse_fault_action(const std::string& line, std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<FaultAction> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };

  std::istringstream in(line);
  std::string kind;
  if (!(in >> kind)) return fail("empty fault action");

  FaultAction a;
  if (kind == "link_flap") a.kind = FaultKind::kLinkFlap;
  else if (kind == "drop") a.kind = FaultKind::kDrop;
  else if (kind == "corrupt") a.kind = FaultKind::kCorrupt;
  else if (kind == "ho_loss") a.kind = FaultKind::kHoLoss;
  else if (kind == "buffer_shrink") a.kind = FaultKind::kBufferShrink;
  else if (kind == "blackhole") a.kind = FaultKind::kBlackhole;
  else return fail("unknown fault kind '" + kind + "'");

  std::string kv;
  while (in >> kv) {
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos) return fail("expected key=value, got '" + kv + "'");
    const std::string key = kv.substr(0, eq);
    const std::string val = kv.substr(eq + 1);
    bool ok = true;
    if (key == "at") ok = parse_time(val, &a.at);
    else if (key == "dur") ok = parse_time(val, &a.duration);
    else if (key == "sw") ok = parse_target(val, &a.sw);
    else if (key == "port") ok = parse_target(val, &a.port);
    else if (key == "rate") ok = parse_double(val, &a.rate);
    else if (key == "frac") ok = parse_double(val, &a.frac);
    else if (key == "drop_inflight") {
      a.drop_in_flight = (val == "true" || val == "1" || val == "yes");
      ok = a.drop_in_flight || val == "false" || val == "0" || val == "no";
    } else {
      return fail("unknown fault key '" + key + "'");
    }
    if (!ok) return fail("bad value '" + val + "' for '" + key + "'");
  }

  if (a.rate < 0.0 || a.rate > 1.0) return fail("rate must be in [0, 1]");
  if (a.frac < 0.0 || a.frac > 1.0) return fail("frac must be in [0, 1]");
  if (a.at < 0) return fail("at must be >= 0");
  if (a.duration < 0) return fail("dur must be >= 0");
  return a;
}

std::optional<FaultPlan> parse_fault_plan(const std::string& text, std::string* error) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::size_t b = 0, e = raw.size();
    while (b < e && std::isspace(static_cast<unsigned char>(raw[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(raw[e - 1]))) --e;
    if (b == e) continue;
    std::string err;
    auto a = parse_fault_action(raw.substr(b, e - b), &err);
    if (!a) {
      if (error != nullptr) *error = "fault line " + std::to_string(line_no) + ": " + err;
      return std::nullopt;
    }
    plan.actions.push_back(*a);
  }
  return plan;
}

std::string FaultPlan::to_config_text() const {
  std::string out;
  char buf[64];
  for (const FaultAction& a : actions) {
    out += fault_kind_name(a.kind);
    out += " at=" + time_to_str(a.at);
    if (a.duration > 0) out += " dur=" + time_to_str(a.duration);
    out += " sw=" + target_to_str(a.sw);
    // ho_loss / buffer_shrink are switch-wide and ignore the port, but a
    // parsed value is preserved so serialize(parse(x)) round-trips exactly.
    if (a.port != FaultAction::kAll ||
        (a.kind != FaultKind::kHoLoss && a.kind != FaultKind::kBufferShrink)) {
      out += " port=" + target_to_str(a.port);
    }
    if (a.kind == FaultKind::kDrop || a.kind == FaultKind::kCorrupt ||
        a.kind == FaultKind::kHoLoss) {
      std::snprintf(buf, sizeof(buf), " rate=%.9g", a.rate);
      out += buf;
    }
    if (a.kind == FaultKind::kBufferShrink) {
      std::snprintf(buf, sizeof(buf), " frac=%.9g", a.frac);
      out += buf;
    }
    if (a.kind == FaultKind::kLinkFlap && a.drop_in_flight) out += " drop_inflight=true";
    out += '\n';
  }
  return out;
}

}  // namespace dcp
