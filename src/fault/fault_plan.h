#pragma once
// FaultPlan: a declarative, deterministic schedule of timed fault actions.
//
// A plan is data, not behaviour — it can be built in code, parsed from the
// `[faults]` section of an experiment config, serialized back, compared and
// hashed.  The FaultInjector (fault_injector.h) executes it against a live
// Network.  Catalogue of actions:
//
//   link_flap      administratively cut a link at `at`, restore `dur` later.
//                  `drop_inflight` chooses whether wire-borne packets die at
//                  cut time (see Channel::set_drop_in_flight_on_cut).
//   drop           BER-style random loss on a link at `rate` for `dur`.
//   corrupt        CRC-failure injection: the frame occupies the wire but is
//                  discarded at the far end, at `rate` for `dur`.
//   ho_loss        control-queue loss at the switch: packets entering the
//                  control queue (header-only packets above all) are dropped
//                  with `rate` — the direct violation of the paper's
//                  lossless-control-plane assumption.
//   buffer_shrink  shrink the switch shared buffer to `frac` of its capacity
//                  at `at`, restore at `at + dur`.
//   blackhole      the port forwards nothing but stays in the ECMP/AR
//                  candidate set (silent failure, no routing withdrawal).
//
// Targets are (switch index, port index) into Network::switches(); kAll
// fans the action out over every switch and/or every port.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.h"

namespace dcp {

enum class FaultKind {
  kLinkFlap,
  kDrop,
  kCorrupt,
  kHoLoss,
  kBufferShrink,
  kBlackhole,
};

const char* fault_kind_name(FaultKind k);

struct FaultAction {
  static constexpr std::uint32_t kAll = UINT32_MAX;

  FaultKind kind = FaultKind::kDrop;
  Time at = 0;        // absolute start time
  Time duration = 0;  // rate faults: 0 = until the end of the run.
                      // link_flap / blackhole: the fault window; must be > 0
                      // to have any effect (duration is their intensity).
  std::uint32_t sw = kAll;
  std::uint32_t port = kAll;
  double rate = 0.0;            // drop / corrupt / ho_loss probability
  double frac = 1.0;            // buffer_shrink: remaining capacity fraction
  bool drop_in_flight = false;  // link_flap: kill wire-borne packets at cut

  /// End of the action's active window; kTimeInfinity when it never reverts.
  Time end() const {
    if (kind == FaultKind::kLinkFlap) return at + duration;  // flap always restores
    return duration > 0 ? at + duration : kTimeInfinity;
  }

  /// True when executing the action cannot change anything: the injector
  /// skips no-ops entirely, so an all-zero-intensity plan is bit-identical
  /// to running with no plan at all.
  bool is_noop() const {
    switch (kind) {
      case FaultKind::kDrop:
      case FaultKind::kCorrupt:
      case FaultKind::kHoLoss:
        return rate <= 0.0;
      case FaultKind::kLinkFlap:
      case FaultKind::kBlackhole:
        return duration <= 0;
      case FaultKind::kBufferShrink:
        return frac >= 1.0;
    }
    return true;
  }

  bool operator==(const FaultAction&) const = default;
};

struct FaultPlan {
  std::vector<FaultAction> actions;

  bool empty() const { return actions.empty(); }
  /// True when at least one action would actually perturb the run.
  bool has_effect() const {
    for (const FaultAction& a : actions) {
      if (!a.is_noop()) return true;
    }
    return false;
  }

  /// Serializes to the `[faults]` config-section body: one action per line,
  /// `kind key=value ...`.  parse_fault_plan() round-trips it exactly.
  std::string to_config_text() const;

  bool operator==(const FaultPlan&) const = default;
};

/// Parses one action line (`link_flap at=100us dur=1ms sw=0 port=2 ...`).
/// On failure returns nullopt and, if `error` is non-null, a message.
std::optional<FaultAction> parse_fault_action(const std::string& line, std::string* error = nullptr);

/// Parses a plan: one action per non-empty line, `#` comments allowed.
std::optional<FaultPlan> parse_fault_plan(const std::string& text, std::string* error = nullptr);

}  // namespace dcp
