#include "sim/rng.h"

// Header-only today; this TU anchors the library target.
