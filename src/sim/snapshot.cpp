#include "sim/snapshot.h"

namespace dcp {

std::vector<std::uint8_t> SnapshotImage::encode() const {
  std::vector<std::uint8_t> out;
  StateIO io = StateIO::saver(out);
  std::uint32_t magic = kMagic;
  std::uint32_t version = kVersion;
  io.pod(magic);
  io.pod(version);
  auto* self = const_cast<SnapshotImage*>(this);
  io.pod(self->fingerprint);
  io.pod(self->shards);
  io.pod(self->lanes);
  io.pod(self->devirt);
  io.pod(self->at);
  io.pod(self->setup_seq_end);
  io.pod(self->next_seq);
  io.each(self->clocks, [](StateIO& s, SnapshotClock& c) {
    s.pod(c.now);
    s.pod(c.events);
    s.pod(c.cur_time);
    s.pod(c.cur_seq);
  });
  io.vec(self->state);
  return out;
}

bool SnapshotImage::decode(const std::vector<std::uint8_t>& bytes, SnapshotImage& out) {
  StateIO io = StateIO::loader(bytes);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  io.pod(magic);
  io.pod(version);
  if (!io.ok() || magic != kMagic || version != kVersion) return false;
  io.pod(out.fingerprint);
  io.pod(out.shards);
  io.pod(out.lanes);
  io.pod(out.devirt);
  io.pod(out.at);
  io.pod(out.setup_seq_end);
  io.pod(out.next_seq);
  io.each(out.clocks, [](StateIO& s, SnapshotClock& c) {
    s.pod(c.now);
    s.pod(c.events);
    s.pod(c.cur_time);
    s.pod(c.cur_seq);
  });
  io.vec(out.state);
  return io.ok() && io.bytes_consumed() == bytes.size();
}

}  // namespace dcp
