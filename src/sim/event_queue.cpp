#include "sim/event_queue.h"

#include <algorithm>

namespace dcp {
namespace {

constexpr std::uint64_t kSlotMask = 0xFFFFFFFFull;

}  // namespace

void EventQueue::grow() {
  const auto base = static_cast<std::uint32_t>(gen_.size());
  chunks_.push_back(std::make_unique<EventCallback[]>(kChunkSize));
  gen_.resize(base + kChunkSize, 0);
  pos_.resize(base + kChunkSize, kNoPos);
  persistent_.resize(base + kChunkSize, 0);
  in_dheap_.resize(base + kChunkSize, 0);
  deadline_.resize(base + kChunkSize, kTimeInfinity);
  free_.reserve(free_.size() + kChunkSize);
  // Reversed so the lowest index is handed out first.
  for (std::uint32_t i = kChunkSize; i > 0; --i) {
    free_.push_back(base + i - 1);
  }
}

std::uint32_t EventQueue::alloc_slot() {
  if (free_.empty()) grow();
  const std::uint32_t idx = free_.back();
  free_.pop_back();
  return idx;
}

void EventQueue::insert_main(const HeapEntry& e) {
  heap_.emplace_back();  // placeholder; sift_up writes the entry in place
  if (heap_.size() > peak_heap_) peak_heap_ = heap_.size();
  sift_up(heap_, heap_.size() - 1, e);
}

EventId EventQueue::push(Time t, EventCallback fn) {
  return push_keyed(t, take_seq(), std::move(fn));
}

EventId EventQueue::push_keyed(Time t, std::uint64_t seq, EventCallback fn) {
  const std::uint32_t idx = alloc_slot();
  fn_of(idx) = std::move(fn);
  pos_[idx] = kOneshotLive;
  opush(HeapEntry{t, seq, idx});
  return (static_cast<EventId>(gen_[idx]) << 32) | (idx + 1);
}

EventId EventQueue::push_far(Time t, EventCallback fn) {
  // One-shots all live in the non-tracking heap; a far entry sinks below
  // the near-term traffic once at push and is never compared against
  // until its time approaches.
  return push_keyed(t, take_seq(), std::move(fn));
}

void EventQueue::cancel(EventId id) {
  const std::uint64_t slot_part = id & kSlotMask;
  if (slot_part == 0) return;  // kInvalidEvent or malformed
  const auto idx = static_cast<std::uint32_t>(slot_part - 1);
  if (idx >= gen_.size()) return;  // never allocated

  if (gen_[idx] != static_cast<std::uint32_t>(id >> 32)) return;  // stale handle
  if (persistent_[idx]) return;  // timers are managed via timer_* only
  if (pos_[idx] != kOneshotLive) return;  // not pending (or already tombstoned)

  // Lazy cancel: destroy the callback now (releasing captured resources),
  // leave a tombstone the heap reclaims when the entry surfaces.
  fn_of(idx).reset();
  pos_[idx] = kOneshotDead;
  ++gen_[idx];  // invalidates every outstanding handle to this slot
  --olive_;
  ++odead_;
  drain_otop();
  if (odead_ > 64 && odead_ > olive_) compact_oheap();
}

void EventQueue::release(std::uint32_t idx) {
  pos_[idx] = kNoPos;
  ++gen_[idx];  // invalidates every outstanding handle to this slot
  free_.push_back(idx);
}

std::uint32_t EventQueue::timer_create(EventCallback fn) {
  const std::uint32_t idx = alloc_slot();
  fn_of(idx) = std::move(fn);
  persistent_[idx] = 1;
  return idx;
}

void EventQueue::timer_destroy(std::uint32_t timer) {
  if (timer == deferred_root_) {
    // Destroyed from its own callback: the spent root still references
    // this slot, and the slot may be recycled before the deferred cleanup
    // in pop_and_run runs — remove the entry now.
    deferred_root_ = kNoPos;
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_root_to_bottom(heap_, last);
  }
  if (pos_[timer] != kNoPos) {
    if (in_dheap_[timer]) {
      remove_from_heap(dheap_, pos_[timer]);
      pos_[timer] = kNoPos;
      settle_dtop();
    } else {
      remove_from_heap(heap_, pos_[timer]);
      pos_[timer] = kNoPos;
    }
  }
  in_dheap_[timer] = 0;
  deadline_[timer] = kTimeInfinity;
  fn_of(timer).reset();
  persistent_[timer] = 0;
  release(timer);
}

void EventQueue::timer_arm_keyed(std::uint32_t timer, Time t, std::uint64_t seq) {
  if (timer == deferred_root_) {
    // Self re-arm from the slot's own callback: re-key the spent root in
    // place.  The new key can only be later, so one sift_down suffices —
    // and it usually terminates at the root (the next lane head / next
    // serialization-done is still among the earliest events pending).
    deferred_root_ = kNoPos;
    sift_down(heap_, 0, HeapEntry{t, seq, timer});
    return;
  }
  if (pos_[timer] != kNoPos) {
    if (in_dheap_[timer]) {
      // Switching discipline mid-life (rare): vacate the deadline heap.
      remove_from_heap(dheap_, pos_[timer]);
      settle_dtop();
    } else {
      remove_from_heap(heap_, pos_[timer]);
    }
    pos_[timer] = kNoPos;
  }
  in_dheap_[timer] = 0;
  insert_main(HeapEntry{t, seq, timer});
}

void EventQueue::timer_arm_deadline(std::uint32_t timer, Time t) {
  deadline_[timer] = t;
  if (pos_[timer] != kNoPos) {
    if (!in_dheap_[timer]) {
      // Switching discipline mid-life (rare): vacate the first level.
      remove_from_heap(heap_, pos_[timer]);
      pos_[timer] = kNoPos;
    } else {
      const std::size_t p = pos_[timer];
      if (dheap_[p].t <= t) {
        // The common case — the deadline moves forward (per-ACK RTO
        // pushes): O(1).  The parked entry goes stale; it is re-keyed
        // only if it ever surfaces at the top.
        if (p == 0 && dheap_[0].t < t) settle_dtop();
        return;
      }
      // Deadline shrank below the parked entry: re-key eagerly (the new
      // key is earlier, so an in-place sift_up).
      sift_up(dheap_, p, HeapEntry{t, take_seq(), timer});
      return;
    }
  }
  in_dheap_[timer] = 1;
  dheap_.emplace_back();
  sift_up(dheap_, dheap_.size() - 1, HeapEntry{t, take_seq(), timer});
}

void EventQueue::timer_cancel(std::uint32_t timer) {
  if (pos_[timer] == kNoPos) {
    deadline_[timer] = kTimeInfinity;
    return;
  }
  if (in_dheap_[timer]) {
    // Lazy cancel: the parked entry evaporates when it surfaces.
    deadline_[timer] = kTimeInfinity;
    if (pos_[timer] == 0) settle_dtop();
    return;
  }
  remove_from_heap(heap_, pos_[timer]);
  pos_[timer] = kNoPos;
}

void EventQueue::settle_dtop() {
  while (!dheap_.empty()) {
    HeapEntry top = dheap_[0];
    const Time dl = deadline_[top.slot];
    if (dl == top.t) return;  // accurate: this deadline is real
    if (dl == kTimeInfinity) {
      // Lazily cancelled: drop the entry.
      const HeapEntry last = dheap_.back();
      dheap_.pop_back();
      pos_[top.slot] = kNoPos;
      if (!dheap_.empty()) sift_root_to_bottom(dheap_, last);
      continue;
    }
    // Lazily extended: re-key at the true deadline (later, so sift down).
    // The entry keeps its original sequence — re-keying consumes nothing,
    // so the global sequence stream is independent of WHEN stale entries
    // happen to surface (a shard's deadline heap sees only its own
    // traffic; allocating here would make sequence numbering depend on
    // sharding).
    top.t = dl;
    sift_down(dheap_, 0, top);
  }
}

bool EventQueue::pop_and_run(Time& now) {
  // Select the earliest of the three tops under the global (t, seq) order.
  // 0 = main (timers), 1 = deadline, 2 = one-shot.
  int which;
  if (!heap_.empty()) {
    which = 0;
    if (!dheap_.empty() && earlier(dheap_[0], heap_[0])) which = 1;
    if (!oheap_.empty() && earlier(oheap_[0], which == 0 ? heap_[0] : dheap_[0])) which = 2;
  } else if (!dheap_.empty()) {
    which = 1;
    if (!oheap_.empty() && earlier(oheap_[0], dheap_[0])) which = 2;
  } else if (!oheap_.empty()) {
    which = 2;
  } else {
    return false;
  }

  if (which == 2) {
    // One-shot: pop, recycle the slot, run.  drain_otop() afterwards keeps
    // the top live so next_time() stays O(1)-accurate.
    const HeapEntry top = oheap_[0];
    now = top.t;
    cur_time_ = top.t;
    cur_parent_ = top.seq;
    opop_root();
    --olive_;
    EventCallback fn = std::move(fn_of(top.slot));
    release(top.slot);  // recycled before running: reentrant schedule/cancel is safe
    fn();
    drain_otop();
    return true;
  }

  if (which == 0) {
    const std::uint32_t idx = heap_[0].slot;
    now = heap_[0].t;
    cur_time_ = heap_[0].t;
    cur_parent_ = heap_[0].seq;

    if (persistent_[idx]) {
      // Timer: the callback stays in place and may re-arm its own slot.
      // Root removal is DEFERRED: the spent entry's key precedes every
      // other main-heap key that can exist during the callback, so it pins
      // the root and timer_arm_keyed can fuse a self re-arm into one
      // sift_down.
      pos_[idx] = kNoPos;
      deferred_root_ = idx;
      fn_of(idx)();
      if (deferred_root_ == idx) {
        // Not re-armed (or re-armed into the deadline class): physically
        // remove the spent root now.
        deferred_root_ = kNoPos;
        const HeapEntry last = heap_.back();
        heap_.pop_back();
        if (!heap_.empty()) sift_root_to_bottom(heap_, last);
      }
      return true;
    }
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_root_to_bottom(heap_, last);

    EventCallback fn = std::move(fn_of(idx));
    release(idx);  // recycled before running: reentrant schedule/cancel is safe
    fn();
    return true;
  }

  // Deadline heap fires: the top is accurate by the settle_dtop invariant.
  const HeapEntry top = dheap_[0];
  const HeapEntry last = dheap_.back();
  dheap_.pop_back();
  if (!dheap_.empty()) sift_root_to_bottom(dheap_, last);
  settle_dtop();
  pos_[top.slot] = kNoPos;
  deadline_[top.slot] = kTimeInfinity;
  now = top.t;
  cur_time_ = top.t;
  cur_parent_ = top.seq;
  if (!persistent_[top.slot]) {
    in_dheap_[top.slot] = 0;
    EventCallback fn = std::move(fn_of(top.slot));
    release(top.slot);  // recycled before running, same as the main path
    fn();
    return true;
  }
  fn_of(top.slot)();
  return true;
}

void EventQueue::end_shard_window(const std::vector<std::uint64_t>& committed) {
  shard_log_ = nullptr;
  const auto fix = [&committed](HeapEntry& e) {
    if (e.seq & kProvisionalSeq) e.seq = committed[e.seq & ~kProvisionalSeq];
  };
  for (HeapEntry& e : heap_) fix(e);
  for (HeapEntry& e : dheap_) fix(e);
  for (HeapEntry& e : oheap_) fix(e);
}

// --- Non-tracking one-shot heap ---------------------------------------------

void EventQueue::opush(const HeapEntry& e) {
  ++olive_;
  oheap_.emplace_back();  // placeholder; osift_up writes the entry in place
  osift_up(oheap_.size() - 1, e);
}

void EventQueue::opop_root() {
  const HeapEntry last = oheap_.back();
  oheap_.pop_back();
  if (oheap_.empty()) return;
  // Bottom-up pop, same scheme as sift_root_to_bottom but without position
  // maintenance: promote the minimum child down to a leaf, then bubble the
  // (late) replacement up from there — it rarely moves.
  const std::size_t n = oheap_.size();
  std::size_t pos = 0;
  for (;;) {
    const std::size_t first = (pos << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (earlier(oheap_[c], oheap_[best])) best = c;
    }
    oheap_[pos] = oheap_[best];
    pos = best;
  }
  osift_up(pos, last);
}

void EventQueue::drain_otop() {
  while (!oheap_.empty() && pos_[oheap_[0].slot] == kOneshotDead) {
    release(oheap_[0].slot);  // the tombstoned slot finally returns to the pool
    --odead_;
    opop_root();
  }
}

void EventQueue::compact_oheap() {
  std::vector<HeapEntry> live;
  live.reserve(olive_);
  for (const HeapEntry& e : oheap_) {
    if (pos_[e.slot] == kOneshotLive) {
      live.push_back(e);
    } else {
      release(e.slot);
      --odead_;
    }
  }
  oheap_ = std::move(live);
  // Floyd build: sift each internal node down, last parent first.
  if (oheap_.size() > 1) {
    for (std::size_t i = (oheap_.size() - 2) >> 2; ; --i) {
      osift_down(i, oheap_[i]);
      if (i == 0) break;
    }
  }
}

void EventQueue::osift_up(std::size_t pos, HeapEntry e) {
  while (pos > 0) {
    const std::size_t parent = (pos - 1) >> 2;
    const HeapEntry& p = oheap_[parent];
    if (!earlier(e, p)) break;
    oheap_[pos] = p;
    pos = parent;
  }
  oheap_[pos] = e;
}

void EventQueue::osift_down(std::size_t pos, HeapEntry e) {
  const std::size_t n = oheap_.size();
  for (;;) {
    const std::size_t first = (pos << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (earlier(oheap_[c], oheap_[best])) best = c;
    }
    if (!earlier(oheap_[best], e)) break;
    oheap_[pos] = oheap_[best];
    pos = best;
  }
  oheap_[pos] = e;
}

// --- Index-tracked heaps (timers + deadlines) --------------------------------

void EventQueue::remove_from_heap(std::vector<HeapEntry>& h, std::size_t pos) {
  const HeapEntry last = h.back();
  h.pop_back();
  if (pos < h.size()) {
    // Moving the last entry into the hole: it can only need to travel one
    // direction.  Try down; if it did not move, try up.
    sift_down(h, pos, last);
    if (pos_[last.slot] == pos) sift_up(h, pos, last);
  }
}

void EventQueue::sift_up(std::vector<HeapEntry>& h, std::size_t pos, HeapEntry e) {
  while (pos > 0) {
    const std::size_t parent = (pos - 1) >> 2;
    const HeapEntry& p = h[parent];
    if (!earlier(e, p)) break;
    place(h, pos, p);
    pos = parent;
  }
  place(h, pos, e);
}

void EventQueue::sift_down(std::vector<HeapEntry>& h, std::size_t pos, HeapEntry e) {
  const std::size_t n = h.size();
  for (;;) {
    const std::size_t first = (pos << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (earlier(h[c], h[best])) best = c;
    }
    if (!earlier(h[best], e)) break;
    place(h, pos, h[best]);
    pos = best;
  }
  place(h, pos, e);
}

void EventQueue::sift_root_to_bottom(std::vector<HeapEntry>& h, HeapEntry e) {
  // Bottom-up pop: the hole's replacement is the heap's last (i.e. a late)
  // entry, so instead of comparing it at every level, promote the minimum
  // child all the way down and then bubble the replacement up from the
  // bottom — it rarely moves.  ~25% fewer comparisons than a plain sift.
  const std::size_t n = h.size();
  std::size_t pos = 0;
  for (;;) {
    const std::size_t first = (pos << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (earlier(h[c], h[best])) best = c;
    }
    place(h, pos, h[best]);
    pos = best;
  }
  sift_up(h, pos, e);
}

}  // namespace dcp
