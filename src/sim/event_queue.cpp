#include "sim/event_queue.h"

#include <algorithm>

namespace dcp {
namespace {

constexpr std::uint64_t kSlotMask = 0xFFFFFFFFull;

}  // namespace

void EventQueue::grow() {
  const auto base = static_cast<std::uint32_t>(gen_.size());
  chunks_.push_back(std::make_unique<EventCallback[]>(kChunkSize));
  gen_.resize(base + kChunkSize, 0);
  pos_.resize(base + kChunkSize, kNoPos);
  free_.reserve(free_.size() + kChunkSize);
  // Reversed so the lowest index is handed out first.
  for (std::uint32_t i = kChunkSize; i > 0; --i) {
    free_.push_back(base + i - 1);
  }
}

EventId EventQueue::push(Time t, EventCallback fn) {
  if (free_.empty()) grow();
  const std::uint32_t idx = free_.back();
  free_.pop_back();

  fn_of(idx) = std::move(fn);
  heap_.emplace_back();  // placeholder; sift_up writes the entry in place
  sift_up(heap_.size() - 1, HeapEntry{t, next_seq_++, idx});
  return (static_cast<EventId>(gen_[idx]) << 32) | (idx + 1);
}

void EventQueue::cancel(EventId id) {
  const std::uint64_t slot_part = id & kSlotMask;
  if (slot_part == 0) return;  // kInvalidEvent or malformed
  const auto idx = static_cast<std::uint32_t>(slot_part - 1);
  if (idx >= gen_.size()) return;  // never allocated

  if (gen_[idx] != static_cast<std::uint32_t>(id >> 32)) return;  // stale handle
  if (pos_[idx] == kNoPos) return;                                // not pending

  remove_from_heap(pos_[idx]);
  fn_of(idx).reset();
  release(idx);
}

void EventQueue::release(std::uint32_t idx) {
  pos_[idx] = kNoPos;
  ++gen_[idx];  // invalidates every outstanding handle to this slot
  free_.push_back(idx);
}

bool EventQueue::pop_and_run(Time& now) {
  if (heap_.empty()) return false;
  const std::uint32_t idx = heap_[0].slot;
  now = heap_[0].t;
  EventCallback fn = std::move(fn_of(idx));

  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_root_to_bottom(last);

  release(idx);  // recycled before running: reentrant schedule/cancel is safe
  fn();
  return true;
}

void EventQueue::remove_from_heap(std::size_t pos) {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (pos < heap_.size()) {
    // Moving the last entry into the hole: it can only need to travel one
    // direction.  Try down; if it did not move, try up.
    sift_down(pos, last);
    if (pos_[last.slot] == pos) sift_up(pos, last);
  }
}

void EventQueue::sift_up(std::size_t pos, HeapEntry e) {
  while (pos > 0) {
    const std::size_t parent = (pos - 1) >> 2;
    const HeapEntry& p = heap_[parent];
    if (!earlier(e, p)) break;
    place(pos, p);
    pos = parent;
  }
  place(pos, e);
}

void EventQueue::sift_down(std::size_t pos, HeapEntry e) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = (pos << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    place(pos, heap_[best]);
    pos = best;
  }
  place(pos, e);
}

void EventQueue::sift_root_to_bottom(HeapEntry e) {
  // Bottom-up pop: the hole's replacement is the heap's last (i.e. a late)
  // entry, so instead of comparing it at every level, promote the minimum
  // child all the way down and then bubble the replacement up from the
  // bottom — it rarely moves.  ~25% fewer comparisons than a plain sift.
  const std::size_t n = heap_.size();
  std::size_t pos = 0;
  for (;;) {
    const std::size_t first = (pos << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    place(pos, heap_[best]);
    pos = best;
  }
  sift_up(pos, e);
}

}  // namespace dcp
