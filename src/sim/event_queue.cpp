#include "sim/event_queue.h"

#include <algorithm>

namespace dcp {

EventId EventQueue::push(Time t, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{t, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id == kInvalidEvent || id >= next_id_) return;
  if (cancelled_.insert(id).second) {
    if (live_ > 0) --live_;
  }
}

void EventQueue::drop_cancelled_top() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.front().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

Time EventQueue::next_time() {
  drop_cancelled_top();
  return heap_.empty() ? kTimeInfinity : heap_.front().t;
}

bool EventQueue::pop_and_run(Time& now) {
  drop_cancelled_top();
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  --live_;
  now = e.t;
  e.fn();
  return true;
}

}  // namespace dcp
