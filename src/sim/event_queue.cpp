#include "sim/event_queue.h"

// The per-event hot path (push / pop_and_run / timer_arm_* / the sift
// helpers) lives inline in event_queue.h so callers compile it into their
// own loops; only cold maintenance is out of line here.

namespace dcp {

void EventQueue::grow() {
  const auto base = static_cast<std::uint32_t>(gen_.size());
  chunks_.push_back(std::make_unique<EventCallback[]>(kChunkSize));
  gen_.resize(base + kChunkSize, 0);
  pos_.resize(base + kChunkSize, kNoPos);
  persistent_.resize(base + kChunkSize, 0);
  in_dheap_.resize(base + kChunkSize, 0);
  deadline_.resize(base + kChunkSize, kTimeInfinity);
  free_.reserve(free_.size() + kChunkSize);
  // Reversed so the lowest index is handed out first.
  for (std::uint32_t i = kChunkSize; i > 0; --i) {
    free_.push_back(base + i - 1);
  }
}

std::uint32_t EventQueue::timer_create(EventCallback fn) {
  const std::uint32_t idx = alloc_slot();
  fn_of(idx) = std::move(fn);
  persistent_[idx] = 1;
  return idx;
}

void EventQueue::timer_destroy(std::uint32_t timer) {
  if (timer == deferred_root_) {
    // Destroyed from its own callback: the spent root still references
    // this slot, and the slot may be recycled before the deferred cleanup
    // in pop_and_run runs — remove the entry now.
    deferred_root_ = kNoPos;
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_root_to_bottom(heap_, last);
  }
  if (pos_[timer] != kNoPos) {
    if (in_dheap_[timer]) {
      remove_from_heap(dheap_, pos_[timer]);
      pos_[timer] = kNoPos;
      settle_dtop();
    } else {
      remove_from_heap(heap_, pos_[timer]);
      pos_[timer] = kNoPos;
    }
  }
  in_dheap_[timer] = 0;
  deadline_[timer] = kTimeInfinity;
  fn_of(timer).reset();
  persistent_[timer] = 0;
  release(timer);
}

void EventQueue::end_shard_window(const std::vector<std::uint64_t>& committed) {
  shard_log_ = nullptr;
  const auto fix = [&committed](HeapEntry& e) {
    if (e.seq & kProvisionalSeq) e.seq = committed[e.seq & ~kProvisionalSeq];
  };
  for (HeapEntry& e : heap_) fix(e);
  for (HeapEntry& e : dheap_) fix(e);
  for (HeapEntry& e : oheap_) fix(e);
}

void EventQueue::compact_oheap() {
  std::vector<HeapEntry> live;
  live.reserve(olive_);
  for (const HeapEntry& e : oheap_) {
    if (pos_[e.slot] == kOneshotLive) {
      live.push_back(e);
    } else {
      release(e.slot);
      --odead_;
    }
  }
  oheap_ = std::move(live);
  // Floyd build: sift each internal node down, last parent first.
  if (oheap_.size() > 1) {
    for (std::size_t i = (oheap_.size() - 2) >> 2; ; --i) {
      osift_down(i, oheap_[i]);
      if (i == 0) break;
    }
  }
}

}  // namespace dcp
