#pragma once
// The allocation-free event queue at the bottom of every simulation.
//
// Design (rebuilt for throughput — see docs/architecture.md, "Simulator
// core performance model"):
//
//   * Callbacks live in a chunked slab with a freelist.  Slots are
//     recycled, never freed, so the steady-state schedule->fire path does
//     not touch the allocator.  Chunks are stable in memory (no callback
//     ever moves), which lets the heap refer to events by 32-bit slot
//     index.
//   * Callbacks are EventCallback (small-buffer optimized, move-only) —
//     no per-event std::function heap allocation.
//   * Ordering uses an index-tracked 4-ary min-heap whose entries carry
//     the full (time, sequence) key inline: sifting compares contiguous
//     24-byte records and never dereferences a slot.  The sequence number
//     preserves FIFO order among simultaneous events.  A flat per-slot
//     position array maps slots back into the heap, so cancel() removes
//     an entry in place in O(log n): no tombstones, no hash-set lookups
//     on pop, and next_time() is O(1).
//   * EventIds are generation-stamped handles: (generation << 32) | slot+1.
//     Firing or cancelling a slot bumps its generation, so double-cancel
//     and cancel-after-fire are provably harmless no-ops — a stale handle
//     can never hit a recycled slot.

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_callback.h"
#include "sim/time.h"

namespace dcp {

/// Handle for a scheduled event; used to cancel it.  Encodes the slot and
/// its generation so stale handles are always detected.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` to fire at absolute time `t`.  Events scheduled for the
  /// same instant fire in the order they were scheduled.
  EventId push(Time t, EventCallback fn);

  /// Cancels a pending event in place (O(log n)).  Cancelling an
  /// already-fired, already-cancelled, or invalid id is a harmless no-op:
  /// the generation stamp in the handle no longer matches the slot.
  void cancel(EventId id);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; kTimeInfinity when empty.  O(1).
  Time next_time() const { return heap_.empty() ? kTimeInfinity : heap_[0].t; }

  /// Pops the earliest event and runs it, setting `now` to its time first.
  /// Returns false if the queue is empty.  The event's slot is recycled
  /// (generation bumped) before the callback runs, so the callback may
  /// freely schedule and cancel — including its own, now stale, id.
  bool pop_and_run(Time& now);

  /// Total event slots ever allocated (capacity, not live events) — lets
  /// tests assert the slab stops growing under steady-state churn.
  std::size_t slots_allocated() const { return gen_.size(); }

 private:
  static constexpr std::uint32_t kChunkShift = 9;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;  // 512 events
  static constexpr std::uint32_t kNoPos = UINT32_MAX;

  /// Heap entries carry the full ordering key inline so sifting compares
  /// contiguous records; only the per-slot position array is written while
  /// entries move (one store per level).
  struct HeapEntry {
    Time t;
    std::uint64_t seq;  // FIFO tie-break among equal times
    std::uint32_t slot;
  };

  EventCallback& fn_of(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  }

  void grow();
  void place(std::size_t pos, const HeapEntry& e) {
    heap_[pos] = e;
    pos_[e.slot] = static_cast<std::uint32_t>(pos);
  }
  void release(std::uint32_t idx);         // recycle a slot (bumps generation)
  void remove_from_heap(std::size_t pos);  // detach heap_[pos], restore heap
  void sift_up(std::size_t pos, HeapEntry e);
  void sift_down(std::size_t pos, HeapEntry e);
  void sift_root_to_bottom(HeapEntry e);   // pop path: promote mins, then up

  std::vector<std::unique_ptr<EventCallback[]>> chunks_;  // stable storage
  std::vector<std::uint32_t> gen_;   // per-slot generation stamp
  std::vector<std::uint32_t> pos_;   // per-slot heap position (kNoPos = free)
  std::vector<std::uint32_t> free_;  // recycled slot indices
  std::vector<HeapEntry> heap_;      // 4-ary min-heap
  std::uint64_t next_seq_ = 1;
};

}  // namespace dcp
