#pragma once
// A binary-heap event queue with stable FIFO ordering for simultaneous
// events and lazy cancellation.

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace dcp {

/// Handle for a scheduled event; used to cancel it.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  /// Schedules `fn` to fire at absolute time `t`.  Events scheduled for the
  /// same instant fire in the order they were scheduled.
  EventId push(Time t, std::function<void()> fn);

  /// Cancels a pending event.  Cancelling an already-fired or invalid id is
  /// a harmless no-op.  The entry stays in the heap until its firing time
  /// (lazy removal), which is fine for the short-lived timers we cancel.
  void cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Time of the earliest pending (non-cancelled) event; kTimeInfinity when
  /// empty.
  Time next_time();

  /// Pops the earliest event and runs it, setting `now` to its time first.
  /// Returns false if the queue is empty.
  bool pop_and_run(Time& now);

 private:
  struct Entry {
    Time t;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.t != b.t ? a.t > b.t : a.id > b.id;
    }
  };
  void drop_cancelled_top();

  std::vector<Entry> heap_;  // maintained with std::push_heap/pop_heap
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace dcp
