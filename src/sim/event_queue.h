#pragma once
// The allocation-free event queue at the bottom of every simulation.
//
// Design (rebuilt for throughput — see docs/architecture.md, "Simulator
// core performance model" and "Two-level scheduler"):
//
//   * Callbacks live in a chunked slab with a freelist.  Slots are
//     recycled, never freed, so the steady-state schedule->fire path does
//     not touch the allocator.  Chunks are stable in memory (no callback
//     ever moves), which lets the heap refer to events by 32-bit slot
//     index.
//   * Callbacks are EventCallback (small-buffer optimized, move-only) —
//     no per-event std::function heap allocation.
//   * Ordering uses THREE 4-ary min-heaps sharing one global (time,
//     sequence) key space, so the merged firing order is exactly that of a
//     single heap:
//       - heap_  : persistent timers (index-tracked via a flat per-slot
//         position array, so timer_cancel / re-arm removes an entry in
//         place in O(log n)).
//       - dheap_ : DEADLINE-class timers (retransmission timeouts,
//         keepalives) — re-armed far more often than they fire.  Pushing a
//         deadline forward is O(1): the parked entry goes stale and the
//         true deadline is stored beside the slot; stale entries are
//         re-keyed (keeping their original sequence) or dropped only when
//         they surface at this heap's top.
//       - oheap_ : ONE-SHOT events (plain push(), far-future push_far()).
//         One-shots are fire-and-forget: they are never re-keyed and
//         almost never cancelled, so this heap is NON-TRACKING — sifting
//         moves 24-byte records without maintaining any position array
//         (one fewer store per level, and cancel() degrades to an O(1)
//         lazy tombstone reclaimed when the entry surfaces).
//     The sequence number preserves FIFO order among simultaneous events;
//     each heap's top is kept accurate so next_time() stays O(1).
//   * EventIds are generation-stamped handles: (generation << 32) | slot+1.
//     Firing or cancelling a slot bumps its generation, so double-cancel
//     and cancel-after-fire are provably harmless no-ops — a stale handle
//     can never hit a recycled slot.
//   * Two-level scheduling support: components that own a naturally
//     ordered stream of events (a Channel's delivery lane, a periodic
//     timer) keep only ONE entry in the heap.  alloc_seq()/push_keyed()
//     let them stamp each logical event with a global sequence number at
//     creation and enter the heap with that exact (time, seq) key later,
//     so the merged firing order is identical to scheduling every logical
//     event individually.  Persistent timer slots (timer_create /
//     timer_arm / timer_cancel) hold their callback across fires: arming
//     again after a fire is a heap insert only — no slot churn, no
//     callback reconstruction.
//   * Space-parallel sharding support: a sharded run (sim/shard.h) gives
//     every shard its own EventQueue but ONE logical sequence space.  In
//     the single-threaded setup phase all queues draw from a shared
//     counter; during a parallel window each queue hands out provisional
//     high-bit-flagged sequences and logs (allocation time, allocating
//     event) per draw, and the window barrier merges the per-shard logs
//     into the exact sequence numbers the serial run would have assigned
//     (see remap_shard_seqs).  Unsharded runs pay one predictable branch
//     per allocation.

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_callback.h"
#include "sim/time.h"

namespace dcp {

/// Handle for a scheduled event; used to cancel it.  Encodes the slot and
/// its generation so stale handles are always detected.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// One provisional sequence allocation inside a shard window: when it was
/// drawn and the (global or provisional) sequence of the event that drew
/// it.  The log index doubles as the provisional id.
struct ShardSeqAlloc {
  Time t;
  std::uint64_t parent;
};

class EventQueue {
 public:
  /// Provisional sequences handed out during a shard window carry this
  /// flag; they compare AFTER every committed sequence at the same time,
  /// which is exactly the serial order (anything allocated in an earlier
  /// window was allocated at an earlier simulated time).
  static constexpr std::uint64_t kProvisionalSeq = 1ull << 63;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` to fire at absolute time `t`.  Events scheduled for the
  /// same instant fire in the order they were scheduled.  Templated on the
  /// callable so the closure is constructed directly in its slab slot —
  /// passing a prebuilt EventCallback still works (one move), but a lambda
  /// at the call site skips the temporary + relocate entirely.
  template <typename F>
  EventId push(Time t, F&& fn) {
    return push_keyed(t, take_seq(), std::forward<F>(fn));
  }

  /// Allocates the next tie-break sequence number.  A caller that manages
  /// its own ordered event stream stamps each logical event with one of
  /// these at creation time; entering the heap later via push_keyed() or
  /// timer_arm_keyed() with the stamped value reproduces exactly the
  /// firing order push() would have produced.
  std::uint64_t alloc_seq() { return take_seq(); }

  /// push() with an explicit tie-break sequence (from alloc_seq(), or a
  /// committed cross-shard sequence).
  template <typename F>
  EventId push_keyed(Time t, std::uint64_t seq, F&& fn) {
    const std::uint32_t idx = alloc_slot();
    fn_of(idx).emplace(std::forward<F>(fn));
    pos_[idx] = kOneshotLive;
    opush(HeapEntry{t, seq, idx});
    return (static_cast<EventId>(gen_[idx]) << 32) | (idx + 1);
  }

  /// push() for FAR events: one-shots expected to sit a long time before
  /// firing (staggered flow starts, experiment-end probes).  One-shots all
  /// live in the non-tracking heap, where a far entry sinks once and is
  /// never compared against by near-term traffic sifting shallower than
  /// it.  Firing order is identical to push() — the sequence number is
  /// allocated here, at call time.
  template <typename F>
  EventId push_far(Time t, F&& fn) {
    return push_keyed(t, take_seq(), std::forward<F>(fn));
  }

  /// Cancels a pending event.  For one-shots this is an O(1) lazy
  /// tombstone (the callback is destroyed now; the heap entry evaporates
  /// when it surfaces).  Cancelling an already-fired, already-cancelled,
  /// or invalid id is a harmless no-op: the generation stamp in the handle
  /// no longer matches the slot.
  void cancel(EventId id);

  bool empty() const { return heap_.empty() && dheap_.empty() && olive_ == 0; }
  std::size_t size() const { return heap_.size() + dheap_.size() + olive_; }

  /// Time of the earliest pending event; kTimeInfinity when empty.  O(1).
  /// (Each heap's top is kept accurate — see settle_dtop / drain_otop.)
  Time next_time() const {
    Time m = heap_.empty() ? kTimeInfinity : heap_[0].t;
    if (!dheap_.empty() && dheap_[0].t < m) m = dheap_[0].t;
    if (!oheap_.empty() && oheap_[0].t < m) m = oheap_[0].t;
    return m;
  }

  /// True when an event keyed (t, seq) would fire before everything
  /// currently pending — the coalescing probe of the two-level scheduler.
  bool before_top(Time t, std::uint64_t seq) const {
    if (!heap_.empty() &&
        !(t < heap_[0].t || (t == heap_[0].t && seq < heap_[0].seq))) {
      return false;
    }
    if (!dheap_.empty() &&
        !(t < dheap_[0].t || (t == dheap_[0].t && seq < dheap_[0].seq))) {
      return false;
    }
    if (!oheap_.empty() &&
        !(t < oheap_[0].t || (t == oheap_[0].t && seq < oheap_[0].seq))) {
      return false;
    }
    return true;
  }

  /// Pops the earliest event and runs it, setting `now` to its time first.
  /// Returns false if the queue is empty.  One-shot slots are recycled
  /// (generation bumped) before the callback runs, so the callback may
  /// freely schedule and cancel — including its own, now stale, id.
  /// Persistent timer slots keep their callback and may re-arm themselves.
  bool pop_and_run(Time& now);

  /// Fused next_time() + pop_and_run(): the run loop's one call per event.
  /// Selects the earliest of the three heap tops ONCE, and runs it only if
  /// its time is <= `until`.  kBeyond leaves the event in place (its time
  /// was finite but past the bound); kEmpty means nothing is pending.
  enum class PopResult : std::uint8_t { kRan, kEmpty, kBeyond };
  PopResult pop_and_run_bounded(Time until, Time& now);

  // --- Persistent timers ----------------------------------------------------
  // A timer is a slot whose callback survives firing: high-frequency
  // self-rescheduling events (port serialization-done, pacing wakeups,
  // RetransQ drains, lane heads) re-arm the same slot instead of paying
  // slot release/acquire and callback destroy/reconstruct per fire.
  // Handles are plain slot indices; the owner must destroy the timer
  // before the EventQueue goes away (components already outlive neither
  // their Simulator nor the reverse).

  /// Registers `fn` in a persistent slot; the timer starts un-armed.
  std::uint32_t timer_create(EventCallback fn);
  /// Cancels and releases the slot (the callback is destroyed).
  void timer_destroy(std::uint32_t timer);
  /// (Re-)arms the timer at absolute time `t` with a fresh sequence number
  /// — equivalent in firing order to cancel + push().
  void timer_arm(std::uint32_t timer, Time t) { timer_arm_keyed(timer, t, take_seq()); }
  /// (Re-)arms with an explicit (t, seq) key stamped via alloc_seq().
  void timer_arm_keyed(std::uint32_t timer, Time t, std::uint64_t seq);
  /// (Re-)arms in the DEADLINE class: the timer fires at absolute time `t`
  /// unless pushed further first.  Extending a pending deadline is O(1);
  /// use this for timers that are re-armed per-ACK but fire per-timeout.
  void timer_arm_deadline(std::uint32_t timer, Time t);
  /// Removes the timer from the heap if pending; the callback is retained.
  /// For deadline-class timers this is O(1) (the parked entry evaporates
  /// when it surfaces).
  void timer_cancel(std::uint32_t timer);
  bool timer_pending(std::uint32_t timer) const {
    return pos_[timer] != kNoPos && (!in_dheap_[timer] || deadline_[timer] != kTimeInfinity);
  }

  /// Total event slots ever allocated (capacity, not live events) — lets
  /// tests assert the slab stops growing under steady-state churn.
  std::size_t slots_allocated() const { return gen_.size(); }

  /// Slab footprint: callback chunks plus the per-slot metadata arrays and
  /// the three heaps' storage.  Counts capacity (slabs never shrink), so
  /// it tracks the queue's real high-water memory.
  std::uint64_t arena_bytes() const {
    const std::uint64_t slots = gen_.size();
    const std::uint64_t per_slot =
        sizeof(EventCallback) + 2 * sizeof(std::uint32_t)  // gen_, pos_
        + 2 * sizeof(std::uint8_t)                         // persistent_, in_dheap_
        + sizeof(Time) + sizeof(std::uint32_t);            // deadline_, free_
    return slots * per_slot +
           static_cast<std::uint64_t>(heap_.capacity() + dheap_.capacity() +
                                      oheap_.capacity()) *
               sizeof(HeapEntry);
  }

  /// High-water mark of the first-level heap — the figure the two-level
  /// scheduler shrinks from O(packets in flight + flows) to O(active
  /// links).  Deadline-class and one-shot entries are excluded: they park
  /// in their own heaps precisely so timer events never sift across them.
  std::size_t peak_heap_size() const { return peak_heap_; }

  // --- Space-parallel sharding hooks (see sim/shard.h) ----------------------

  /// Redirects sequence allocation to an external counter shared by every
  /// shard's queue (single-threaded setup phase).  Pass nullptr to restore
  /// the private counter.
  void set_shared_seq(std::uint64_t* shared) { seq_src_ = shared != nullptr ? shared : &next_seq_; }

  /// Enters window mode: every sequence draw returns a provisional id and
  /// appends a ShardSeqAlloc to `log` (whose index IS the id).  `log` must
  /// outlive the window; the caller clears it.
  void begin_shard_window(std::vector<ShardSeqAlloc>* log) { shard_log_ = log; }

  /// Leaves window mode and rewrites every provisional sequence still
  /// pending in the three heaps with its committed value (`committed[i]`
  /// for provisional id i).  The per-shard mapping is strictly increasing
  /// and every committed value exceeds every previously committed one, so
  /// relabeling preserves all heap invariants in place — no re-heapify.
  void end_shard_window(const std::vector<std::uint64_t>& committed);

  /// (time, sequence) of the event currently executing — the "parent" a
  /// window-mode allocation is logged under, also used to stamp receiver
  /// stat journals.  Valid during pop_and_run (and lane coalescing, which
  /// refreshes it via set_current_event).
  Time current_event_time() const { return cur_time_; }
  std::uint64_t current_event_seq() const { return cur_parent_; }
  /// Lane coalescing runs a logical event without a pop; the lane refreshes
  /// the current-event key so allocations inside it log the right parent.
  void set_current_event(Time t, std::uint64_t seq) {
    cur_time_ = t;
    cur_parent_ = seq;
  }

  // --- Checkpoint/restore hooks (see sim/snapshot.h) ------------------------
  // Pending one-shots are never serialized (their owners re-push them via
  // push_keyed with saved keys); persistent timers ARE, as (heap, key)
  // tuples.  Heap *arrangement* is not observable — pop order is fully
  // determined by the globally unique (t, seq) keys — so restoring by
  // reinsertion reproduces execution bit-exactly even though the internal
  // array layout may differ from the uninterrupted run.

  /// Arm state of a persistent timer, as serialized by a snapshot.
  struct TimerArm {
    std::uint8_t kind = 0;  // 0 = unarmed, 1 = main heap, 2 = deadline class
    Time t = 0;             // parked heap key time (kind != 0)
    std::uint64_t seq = 0;  // parked heap key sequence (kind != 0)
    Time deadline = 0;      // true deadline (kind == 2; >= t when lazily extended)
  };

  TimerArm timer_arm_state(std::uint32_t timer) const {
    TimerArm a;
    if (pos_[timer] == kNoPos) return a;
    if (in_dheap_[timer]) {
      if (deadline_[timer] == kTimeInfinity) return a;  // lazily cancelled
      const HeapEntry& e = dheap_[pos_[timer]];
      a.kind = 2;
      a.t = e.t;
      a.seq = e.seq;
      a.deadline = deadline_[timer];
      return a;
    }
    const HeapEntry& e = heap_[pos_[timer]];
    a.kind = 1;
    a.t = e.t;
    a.seq = e.seq;
    return a;
  }

  /// Physically removes a timer's pending entry from whichever heap holds
  /// it.  Unlike timer_cancel this also evicts lazily-cancelled deadline
  /// entries, so after unparking every timer the heaps hold exactly the
  /// arms a snapshot records.
  void timer_unpark(std::uint32_t timer) {
    if (pos_[timer] != kNoPos) {
      if (in_dheap_[timer]) {
        remove_from_heap(dheap_, pos_[timer]);
        settle_dtop();
      } else {
        remove_from_heap(heap_, pos_[timer]);
      }
      pos_[timer] = kNoPos;
    }
    in_dheap_[timer] = 0;
    deadline_[timer] = kTimeInfinity;
  }

  /// Re-arms a timer with an exact saved key — the restore-side counterpart
  /// of timer_arm_state().  Call settle_deadline_top() once after a restore
  /// batch to re-establish the deadline heap's top-accuracy invariant.
  void timer_restore(std::uint32_t timer, const TimerArm& a) {
    timer_unpark(timer);
    if (a.kind == 0) return;
    if (a.kind == 1) {
      insert_main(HeapEntry{a.t, a.seq, timer});
      return;
    }
    in_dheap_[timer] = 1;
    deadline_[timer] = a.deadline;
    dheap_.emplace_back();
    sift_up(dheap_, dheap_.size() - 1, HeapEntry{a.t, a.seq, timer});
  }

  /// Re-establishes "the deadline heap's top matches its slot's true
  /// deadline" after a batch of timer_restore() calls.
  void settle_deadline_top() { settle_dtop(); }

  std::uint64_t snapshot_next_seq() const { return *seq_src_; }
  void restore_next_seq(std::uint64_t v) { *seq_src_ = v; }

 private:
  static constexpr std::uint32_t kChunkShift = 9;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;  // 512 events
  static constexpr std::uint32_t kNoPos = UINT32_MAX;
  // pos_[] sentinels for slots parked in the non-tracking one-shot heap:
  // membership is tracked, position is not.
  static constexpr std::uint32_t kOneshotLive = UINT32_MAX - 1;
  static constexpr std::uint32_t kOneshotDead = UINT32_MAX - 2;

  /// Heap entries carry the full ordering key inline so sifting compares
  /// contiguous records; only the per-slot position array is written while
  /// entries move (one store per level) — and not at all in the one-shot
  /// heap.
  struct HeapEntry {
    Time t;
    std::uint64_t seq;  // FIFO tie-break among equal times
    std::uint32_t slot;
  };

  EventCallback& fn_of(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  }

  std::uint64_t take_seq() {
    if (shard_log_ != nullptr) {
      shard_log_->push_back(ShardSeqAlloc{cur_time_, cur_parent_});
      return kProvisionalSeq | (shard_log_->size() - 1);
    }
    return (*seq_src_)++;
  }

  void grow();
  std::uint32_t alloc_slot() {
    if (free_.empty()) grow();
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  void insert_main(const HeapEntry& e) {
    heap_.emplace_back();  // placeholder; sift_up writes the entry in place
    if (heap_.size() > peak_heap_) peak_heap_ = heap_.size();
    sift_up(heap_, heap_.size() - 1, e);
  }
  void place(std::vector<HeapEntry>& h, std::size_t pos, const HeapEntry& e) {
    h[pos] = e;
    pos_[e.slot] = static_cast<std::uint32_t>(pos);
  }
  // recycle a slot (bumps generation)
  void release(std::uint32_t idx) {
    pos_[idx] = kNoPos;
    ++gen_[idx];  // invalidates every outstanding handle to this slot
    free_.push_back(idx);
  }
  void remove_from_heap(std::vector<HeapEntry>& h, std::size_t pos);
  void sift_up(std::vector<HeapEntry>& h, std::size_t pos, HeapEntry e);
  void sift_down(std::vector<HeapEntry>& h, std::size_t pos, HeapEntry e);
  void sift_root_to_bottom(std::vector<HeapEntry>& h, HeapEntry e);
  /// Earliest of the three heap tops under the global (t, seq) order
  /// (sequences are globally unique, so cross-heap ties cannot occur).
  /// 0 = main (timers), 1 = deadline, 2 = one-shot, -1 = all empty.
  int select_top() const {
    int which = -1;
    const HeapEntry* top = nullptr;
    if (!heap_.empty()) {
      which = 0;
      top = &heap_[0];
    }
    if (!dheap_.empty() && (top == nullptr || earlier(dheap_[0], *top))) {
      which = 1;
      top = &dheap_[0];
    }
    if (!oheap_.empty() && (top == nullptr || earlier(oheap_[0], *top))) {
      which = 2;
    }
    return which;
  }
  void run_top(int which, Time& now);
  /// Restores the invariant "the deadline heap's top entry matches its
  /// slot's true deadline": drops lazily-cancelled tops, re-keys lazily-
  /// extended ones (their key only grows, so an in-place sift_down; the
  /// entry keeps its original sequence, so re-keying never consumes one).
  void settle_dtop();

  // --- Non-tracking one-shot heap helpers ----------------------------------
  void opush(const HeapEntry& e);
  void opop_root();
  /// Drops tombstoned entries off the one-shot heap's top so it is always
  /// live (next_time()'s O(1) contract).
  void drain_otop();
  /// Rebuilds oheap_ without tombstones once they outnumber live entries.
  void compact_oheap();
  void osift_up(std::size_t pos, HeapEntry e);
  void osift_down(std::size_t pos, HeapEntry e);

  std::vector<std::unique_ptr<EventCallback[]>> chunks_;  // stable storage
  std::vector<std::uint32_t> gen_;   // per-slot generation stamp
  std::vector<std::uint32_t> pos_;   // per-slot heap position (kNoPos = free)
  std::vector<std::uint8_t> persistent_;  // slot is a timer (callback survives fire)
  std::vector<std::uint8_t> in_dheap_;    // pending entry lives in the deadline heap
  std::vector<Time> deadline_;       // true deadline of a deadline-class timer
  std::vector<std::uint32_t> free_;  // recycled slot indices
  std::vector<HeapEntry> heap_;      // persistent timers (index-tracked)
  std::vector<HeapEntry> dheap_;     // deadline class: rarely-firing deadlines
  std::vector<HeapEntry> oheap_;     // one-shots (non-tracking)
  std::size_t olive_ = 0;            // live (non-tombstoned) one-shot entries
  std::size_t odead_ = 0;            // tombstones still parked in oheap_
  std::uint64_t next_seq_ = 1;
  std::uint64_t* seq_src_ = &next_seq_;  // shared counter in sharded setup
  std::vector<ShardSeqAlloc>* shard_log_ = nullptr;  // non-null inside a window
  Time cur_time_ = 0;
  std::uint64_t cur_parent_ = 0;  // seq of the event currently executing
  std::size_t peak_heap_ = 0;
  // Fused pop+re-arm: while a persistent timer's callback runs, its spent
  // root entry stays parked at heap_[0] (its key is a strict minimum among
  // main-heap entries, so nothing can sift past it).  If the callback
  // re-arms the same slot — the self-rescheduling pattern of lane heads
  // and port serialization timers, i.e. nearly every pop — the root is
  // re-keyed in place with a single sift_down instead of a full remove +
  // insert.  Otherwise the stale root is removed after the callback
  // returns.
  std::uint32_t deferred_root_ = kNoPos;
};

// --- Inline hot path ---------------------------------------------------------
// Everything below runs per event or per packet-hop; keeping the bodies
// header-visible lets the run loop (simulator.cpp), the delivery lanes
// (channel.cpp) and the port serialization timers (port.cpp) inline the
// whole schedule->fire machinery without LTO.  Cold maintenance (grow,
// timer_create/destroy, shard-window relabeling, one-shot compaction)
// stays in event_queue.cpp.

inline void EventQueue::cancel(EventId id) {
  const std::uint64_t slot_part = id & 0xFFFFFFFFull;
  if (slot_part == 0) return;  // kInvalidEvent or malformed
  const auto idx = static_cast<std::uint32_t>(slot_part - 1);
  if (idx >= gen_.size()) return;  // never allocated

  if (gen_[idx] != static_cast<std::uint32_t>(id >> 32)) return;  // stale handle
  if (persistent_[idx]) return;  // timers are managed via timer_* only
  if (pos_[idx] != kOneshotLive) return;  // not pending (or already tombstoned)

  // Lazy cancel: destroy the callback now (releasing captured resources),
  // leave a tombstone the heap reclaims when the entry surfaces.
  fn_of(idx).reset();
  pos_[idx] = kOneshotDead;
  ++gen_[idx];  // invalidates every outstanding handle to this slot
  --olive_;
  ++odead_;
  drain_otop();
  if (odead_ > 64 && odead_ > olive_) compact_oheap();
}

inline void EventQueue::timer_arm_keyed(std::uint32_t timer, Time t, std::uint64_t seq) {
  if (timer == deferred_root_) {
    // Self re-arm from the slot's own callback: re-key the spent root in
    // place.  The new key can only be later, so one sift_down suffices —
    // and it usually terminates at the root (the next lane head / next
    // serialization-done is still among the earliest events pending).
    deferred_root_ = kNoPos;
    sift_down(heap_, 0, HeapEntry{t, seq, timer});
    return;
  }
  if (pos_[timer] != kNoPos) {
    if (in_dheap_[timer]) {
      // Switching discipline mid-life (rare): vacate the deadline heap.
      remove_from_heap(dheap_, pos_[timer]);
      settle_dtop();
    } else {
      remove_from_heap(heap_, pos_[timer]);
    }
    pos_[timer] = kNoPos;
  }
  in_dheap_[timer] = 0;
  insert_main(HeapEntry{t, seq, timer});
}

inline void EventQueue::timer_arm_deadline(std::uint32_t timer, Time t) {
  deadline_[timer] = t;
  if (pos_[timer] != kNoPos) {
    if (!in_dheap_[timer]) {
      // Switching discipline mid-life (rare): vacate the first level.
      remove_from_heap(heap_, pos_[timer]);
      pos_[timer] = kNoPos;
    } else {
      const std::size_t p = pos_[timer];
      if (dheap_[p].t <= t) {
        // The common case — the deadline moves forward (per-ACK RTO
        // pushes): O(1).  The parked entry goes stale; it is re-keyed
        // only if it ever surfaces at the top.
        if (p == 0 && dheap_[0].t < t) settle_dtop();
        return;
      }
      // Deadline shrank below the parked entry: re-key eagerly (the new
      // key is earlier, so an in-place sift_up).
      sift_up(dheap_, p, HeapEntry{t, take_seq(), timer});
      return;
    }
  }
  in_dheap_[timer] = 1;
  dheap_.emplace_back();
  sift_up(dheap_, dheap_.size() - 1, HeapEntry{t, take_seq(), timer});
}

inline void EventQueue::timer_cancel(std::uint32_t timer) {
  if (pos_[timer] == kNoPos) {
    deadline_[timer] = kTimeInfinity;
    return;
  }
  if (in_dheap_[timer]) {
    // Lazy cancel: the parked entry evaporates when it surfaces.
    deadline_[timer] = kTimeInfinity;
    if (pos_[timer] == 0) settle_dtop();
    return;
  }
  remove_from_heap(heap_, pos_[timer]);
  pos_[timer] = kNoPos;
}

inline void EventQueue::settle_dtop() {
  while (!dheap_.empty()) {
    HeapEntry top = dheap_[0];
    const Time dl = deadline_[top.slot];
    if (dl == top.t) return;  // accurate: this deadline is real
    if (dl == kTimeInfinity) {
      // Lazily cancelled: drop the entry.
      const HeapEntry last = dheap_.back();
      dheap_.pop_back();
      pos_[top.slot] = kNoPos;
      if (!dheap_.empty()) sift_root_to_bottom(dheap_, last);
      continue;
    }
    // Lazily extended: re-key at the true deadline (later, so sift down).
    // The entry keeps its original sequence — re-keying consumes nothing,
    // so the global sequence stream is independent of WHEN stale entries
    // happen to surface (a shard's deadline heap sees only its own
    // traffic; allocating here would make sequence numbering depend on
    // sharding).
    top.t = dl;
    sift_down(dheap_, 0, top);
  }
}

inline void EventQueue::run_top(int which, Time& now) {
  if (which == 2) {
    // One-shot: pop, invalidate, run IN PLACE.  drain_otop() afterwards
    // keeps the top live so next_time() stays O(1)-accurate.
    const HeapEntry top = oheap_[0];
    now = top.t;
    cur_time_ = top.t;
    cur_parent_ = top.seq;
    opop_root();
    --olive_;
    // Handles die here (cancel of the running event's own id is a stale
    // no-op), but the slot joins the free list only AFTER the callback
    // returns: a reentrant push can then never reuse this storage, which
    // makes running the callback in place safe — skipping the relocate
    // (a kInlineSize-byte move through an indirect call) that popping
    // by-move paid on every event.
    pos_[top.slot] = kNoPos;
    ++gen_[top.slot];
    EventCallback& fn = fn_of(top.slot);
    fn();
    fn.reset();
    free_.push_back(top.slot);
    drain_otop();
    return;
  }

  if (which == 0) {
    const std::uint32_t idx = heap_[0].slot;
    now = heap_[0].t;
    cur_time_ = heap_[0].t;
    cur_parent_ = heap_[0].seq;

    if (persistent_[idx]) {
      // Timer: the callback stays in place and may re-arm its own slot.
      // Root removal is DEFERRED: the spent entry's key precedes every
      // other main-heap key that can exist during the callback, so it pins
      // the root and timer_arm_keyed can fuse a self re-arm into one
      // sift_down.
      pos_[idx] = kNoPos;
      deferred_root_ = idx;
      fn_of(idx)();
      if (deferred_root_ == idx) {
        // Not re-armed (or re-armed into the deadline class): physically
        // remove the spent root now.
        deferred_root_ = kNoPos;
        const HeapEntry last = heap_.back();
        heap_.pop_back();
        if (!heap_.empty()) sift_root_to_bottom(heap_, last);
      }
      return;
    }
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_root_to_bottom(heap_, last);

    EventCallback fn = std::move(fn_of(idx));
    release(idx);  // recycled before running: reentrant schedule/cancel is safe
    fn();
    return;
  }

  // Deadline heap fires: the top is accurate by the settle_dtop invariant.
  const HeapEntry top = dheap_[0];
  const HeapEntry last = dheap_.back();
  dheap_.pop_back();
  if (!dheap_.empty()) sift_root_to_bottom(dheap_, last);
  settle_dtop();
  pos_[top.slot] = kNoPos;
  deadline_[top.slot] = kTimeInfinity;
  now = top.t;
  cur_time_ = top.t;
  cur_parent_ = top.seq;
  if (!persistent_[top.slot]) {
    in_dheap_[top.slot] = 0;
    EventCallback fn = std::move(fn_of(top.slot));
    release(top.slot);  // recycled before running, same as the main path
    fn();
    return;
  }
  fn_of(top.slot)();
}

inline bool EventQueue::pop_and_run(Time& now) {
  const int which = select_top();
  if (which < 0) return false;
  run_top(which, now);
  return true;
}

inline EventQueue::PopResult EventQueue::pop_and_run_bounded(Time until, Time& now) {
  const int which = select_top();
  if (which < 0) return PopResult::kEmpty;
  const Time t = which == 0 ? heap_[0].t : which == 1 ? dheap_[0].t : oheap_[0].t;
  if (t > until) return PopResult::kBeyond;
  run_top(which, now);
  return PopResult::kRan;
}

// --- Non-tracking one-shot heap ---------------------------------------------

inline void EventQueue::opush(const HeapEntry& e) {
  ++olive_;
  oheap_.emplace_back();  // placeholder; osift_up writes the entry in place
  osift_up(oheap_.size() - 1, e);
}

inline void EventQueue::opop_root() {
  const HeapEntry last = oheap_.back();
  oheap_.pop_back();
  if (oheap_.empty()) return;
  // Bottom-up pop, same scheme as sift_root_to_bottom but without position
  // maintenance: promote the minimum child down to a leaf, then bubble the
  // (late) replacement up from there — it rarely moves.
  const std::size_t n = oheap_.size();
  std::size_t pos = 0;
  for (;;) {
    const std::size_t first = (pos << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (earlier(oheap_[c], oheap_[best])) best = c;
    }
    oheap_[pos] = oheap_[best];
    pos = best;
  }
  osift_up(pos, last);
}

inline void EventQueue::drain_otop() {
  while (!oheap_.empty() && pos_[oheap_[0].slot] == kOneshotDead) {
    release(oheap_[0].slot);  // the tombstoned slot finally returns to the pool
    --odead_;
    opop_root();
  }
}

inline void EventQueue::osift_up(std::size_t pos, HeapEntry e) {
  while (pos > 0) {
    const std::size_t parent = (pos - 1) >> 2;
    const HeapEntry& p = oheap_[parent];
    if (!earlier(e, p)) break;
    oheap_[pos] = p;
    pos = parent;
  }
  oheap_[pos] = e;
}

inline void EventQueue::osift_down(std::size_t pos, HeapEntry e) {
  const std::size_t n = oheap_.size();
  for (;;) {
    const std::size_t first = (pos << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (earlier(oheap_[c], oheap_[best])) best = c;
    }
    if (!earlier(oheap_[best], e)) break;
    oheap_[pos] = oheap_[best];
    pos = best;
  }
  oheap_[pos] = e;
}

// --- Index-tracked heaps (timers + deadlines) --------------------------------

inline void EventQueue::remove_from_heap(std::vector<HeapEntry>& h, std::size_t pos) {
  const HeapEntry last = h.back();
  h.pop_back();
  if (pos < h.size()) {
    // Moving the last entry into the hole: it can only need to travel one
    // direction.  Try down; if it did not move, try up.
    sift_down(h, pos, last);
    if (pos_[last.slot] == pos) sift_up(h, pos, last);
  }
}

inline void EventQueue::sift_up(std::vector<HeapEntry>& h, std::size_t pos, HeapEntry e) {
  while (pos > 0) {
    const std::size_t parent = (pos - 1) >> 2;
    const HeapEntry& p = h[parent];
    if (!earlier(e, p)) break;
    place(h, pos, p);
    pos = parent;
  }
  place(h, pos, e);
}

inline void EventQueue::sift_down(std::vector<HeapEntry>& h, std::size_t pos, HeapEntry e) {
  const std::size_t n = h.size();
  for (;;) {
    const std::size_t first = (pos << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (earlier(h[c], h[best])) best = c;
    }
    if (!earlier(h[best], e)) break;
    place(h, pos, h[best]);
    pos = best;
  }
  place(h, pos, e);
}

inline void EventQueue::sift_root_to_bottom(std::vector<HeapEntry>& h, HeapEntry e) {
  // Bottom-up pop: the hole's replacement is the heap's last (i.e. a late)
  // entry, so instead of comparing it at every level, promote the minimum
  // child all the way down and then bubble the replacement up from the
  // bottom — it rarely moves.  ~25% fewer comparisons than a plain sift.
  const std::size_t n = h.size();
  std::size_t pos = 0;
  for (;;) {
    const std::size_t first = (pos << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (earlier(h[c], h[best])) best = c;
    }
    place(h, pos, h[best]);
    pos = best;
  }
  sift_up(h, pos, e);
}

}  // namespace dcp
