#pragma once
// The allocation-free event queue at the bottom of every simulation.
//
// Design (rebuilt for throughput — see docs/architecture.md, "Simulator
// core performance model" and "Two-level scheduler"):
//
//   * Callbacks live in a chunked slab with a freelist.  Slots are
//     recycled, never freed, so the steady-state schedule->fire path does
//     not touch the allocator.  Chunks are stable in memory (no callback
//     ever moves), which lets the heap refer to events by 32-bit slot
//     index.
//   * Callbacks are EventCallback (small-buffer optimized, move-only) —
//     no per-event std::function heap allocation.
//   * Ordering uses an index-tracked 4-ary min-heap whose entries carry
//     the full (time, sequence) key inline: sifting compares contiguous
//     24-byte records and never dereferences a slot.  The sequence number
//     preserves FIFO order among simultaneous events.  A flat per-slot
//     position array maps slots back into the heap, so cancel() removes
//     an entry in place in O(log n): no tombstones, no hash-set lookups
//     on pop, and next_time() is O(1).
//   * EventIds are generation-stamped handles: (generation << 32) | slot+1.
//     Firing or cancelling a slot bumps its generation, so double-cancel
//     and cancel-after-fire are provably harmless no-ops — a stale handle
//     can never hit a recycled slot.
//   * Two-level scheduling support: components that own a naturally
//     ordered stream of events (a Channel's delivery lane, a periodic
//     timer) keep only ONE entry in the heap.  alloc_seq()/push_keyed()
//     let them stamp each logical event with a global sequence number at
//     creation and enter the heap with that exact (time, seq) key later,
//     so the merged firing order is identical to scheduling every logical
//     event individually.  Persistent timer slots (timer_create /
//     timer_arm / timer_cancel) hold their callback across fires: arming
//     again after a fire is a heap insert only — no slot churn, no
//     callback reconstruction.
//   * Deadline class: timers that are re-armed far more often than they
//     fire (retransmission timeouts, keepalives, per-flow stall checks)
//     live in a SECOND heap via timer_arm_deadline().  Pushing such a
//     deadline forward is O(1) — the parked entry goes stale and the real
//     deadline is stored beside the slot; stale entries are re-keyed (or
//     dropped, for lazy cancels) only when they surface at that heap's
//     top.  The pop path takes the earlier of the two heap tops under the
//     same global (time, seq) order, so firing order is unchanged — but
//     the first-level heap stays at O(active links + near-term timers)
//     instead of O(flows), which is what every packet-event sift pays for.

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_callback.h"
#include "sim/time.h"

namespace dcp {

/// Handle for a scheduled event; used to cancel it.  Encodes the slot and
/// its generation so stale handles are always detected.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` to fire at absolute time `t`.  Events scheduled for the
  /// same instant fire in the order they were scheduled.
  EventId push(Time t, EventCallback fn);

  /// Allocates the next tie-break sequence number.  A caller that manages
  /// its own ordered event stream stamps each logical event with one of
  /// these at creation time; entering the heap later via push_keyed() or
  /// timer_arm_keyed() with the stamped value reproduces exactly the
  /// firing order push() would have produced.
  std::uint64_t alloc_seq() { return next_seq_++; }

  /// push() with an explicit tie-break sequence (from alloc_seq()).
  EventId push_keyed(Time t, std::uint64_t seq, EventCallback fn);

  /// push() for FAR events: one-shots expected to sit a long time before
  /// firing (staggered flow starts, experiment-end probes).  The entry
  /// parks in the deadline heap, so the thousands of pops between schedule
  /// and fire never sift across it.  Firing order is identical to push()
  /// — the sequence number is allocated here, at call time.
  EventId push_far(Time t, EventCallback fn);

  /// Cancels a pending event in place (O(log n)).  Cancelling an
  /// already-fired, already-cancelled, or invalid id is a harmless no-op:
  /// the generation stamp in the handle no longer matches the slot.
  void cancel(EventId id);

  bool empty() const { return heap_.empty() && dheap_.empty(); }
  std::size_t size() const { return heap_.size() + dheap_.size(); }

  /// Time of the earliest pending event; kTimeInfinity when empty.  O(1).
  /// (The deadline heap's top is kept accurate — see settle_dtop.)
  Time next_time() const {
    const Time m = heap_.empty() ? kTimeInfinity : heap_[0].t;
    const Time d = dheap_.empty() ? kTimeInfinity : dheap_[0].t;
    return m < d ? m : d;
  }

  /// True when an event keyed (t, seq) would fire before everything
  /// currently pending — the coalescing probe of the two-level scheduler.
  bool before_top(Time t, std::uint64_t seq) const {
    if (!heap_.empty() &&
        !(t < heap_[0].t || (t == heap_[0].t && seq < heap_[0].seq))) {
      return false;
    }
    if (!dheap_.empty() &&
        !(t < dheap_[0].t || (t == dheap_[0].t && seq < dheap_[0].seq))) {
      return false;
    }
    return true;
  }

  /// Pops the earliest event and runs it, setting `now` to its time first.
  /// Returns false if the queue is empty.  One-shot slots are recycled
  /// (generation bumped) before the callback runs, so the callback may
  /// freely schedule and cancel — including its own, now stale, id.
  /// Persistent timer slots keep their callback and may re-arm themselves.
  bool pop_and_run(Time& now);

  // --- Persistent timers ----------------------------------------------------
  // A timer is a slot whose callback survives firing: high-frequency
  // self-rescheduling events (port serialization-done, pacing wakeups,
  // RetransQ drains, lane heads) re-arm the same slot instead of paying
  // slot release/acquire and callback destroy/reconstruct per fire.
  // Handles are plain slot indices; the owner must destroy the timer
  // before the EventQueue goes away (components already outlive neither
  // their Simulator nor the reverse).

  /// Registers `fn` in a persistent slot; the timer starts un-armed.
  std::uint32_t timer_create(EventCallback fn);
  /// Cancels and releases the slot (the callback is destroyed).
  void timer_destroy(std::uint32_t timer);
  /// (Re-)arms the timer at absolute time `t` with a fresh sequence number
  /// — equivalent in firing order to cancel + push().
  void timer_arm(std::uint32_t timer, Time t) { timer_arm_keyed(timer, t, next_seq_++); }
  /// (Re-)arms with an explicit (t, seq) key stamped via alloc_seq().
  void timer_arm_keyed(std::uint32_t timer, Time t, std::uint64_t seq);
  /// (Re-)arms in the DEADLINE class: the timer fires at absolute time `t`
  /// unless pushed further first.  Extending a pending deadline is O(1);
  /// use this for timers that are re-armed per-ACK but fire per-timeout.
  void timer_arm_deadline(std::uint32_t timer, Time t);
  /// Removes the timer from the heap if pending; the callback is retained.
  /// For deadline-class timers this is O(1) (the parked entry evaporates
  /// when it surfaces).
  void timer_cancel(std::uint32_t timer);
  bool timer_pending(std::uint32_t timer) const {
    return pos_[timer] != kNoPos && (!in_dheap_[timer] || deadline_[timer] != kTimeInfinity);
  }

  /// Total event slots ever allocated (capacity, not live events) — lets
  /// tests assert the slab stops growing under steady-state churn.
  std::size_t slots_allocated() const { return gen_.size(); }

  /// High-water mark of the first-level heap — the figure the two-level
  /// scheduler shrinks from O(packets in flight + flows) to O(active
  /// links).  Deadline-class entries are excluded: they park in their own
  /// heap precisely so packet events never sift across them.
  std::size_t peak_heap_size() const { return peak_heap_; }

 private:
  static constexpr std::uint32_t kChunkShift = 9;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;  // 512 events
  static constexpr std::uint32_t kNoPos = UINT32_MAX;

  /// Heap entries carry the full ordering key inline so sifting compares
  /// contiguous records; only the per-slot position array is written while
  /// entries move (one store per level).
  struct HeapEntry {
    Time t;
    std::uint64_t seq;  // FIFO tie-break among equal times
    std::uint32_t slot;
  };

  EventCallback& fn_of(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  }

  void grow();
  std::uint32_t alloc_slot();
  void insert_main(const HeapEntry& e);
  void place(std::vector<HeapEntry>& h, std::size_t pos, const HeapEntry& e) {
    h[pos] = e;
    pos_[e.slot] = static_cast<std::uint32_t>(pos);
  }
  void release(std::uint32_t idx);  // recycle a slot (bumps generation)
  void remove_from_heap(std::vector<HeapEntry>& h, std::size_t pos);
  void sift_up(std::vector<HeapEntry>& h, std::size_t pos, HeapEntry e);
  void sift_down(std::vector<HeapEntry>& h, std::size_t pos, HeapEntry e);
  void sift_root_to_bottom(std::vector<HeapEntry>& h, HeapEntry e);
  /// Restores the invariant "the deadline heap's top entry matches its
  /// slot's true deadline": drops lazily-cancelled tops, re-keys lazily-
  /// extended ones (their key only grows, so an in-place sift_down).
  void settle_dtop();

  std::vector<std::unique_ptr<EventCallback[]>> chunks_;  // stable storage
  std::vector<std::uint32_t> gen_;   // per-slot generation stamp
  std::vector<std::uint32_t> pos_;   // per-slot heap position (kNoPos = free)
  std::vector<std::uint8_t> persistent_;  // slot is a timer (callback survives fire)
  std::vector<std::uint8_t> in_dheap_;    // pending entry lives in the deadline heap
  std::vector<Time> deadline_;       // true deadline of a deadline-class timer
  std::vector<std::uint32_t> free_;  // recycled slot indices
  std::vector<HeapEntry> heap_;      // first level: near-term, always-fire events
  std::vector<HeapEntry> dheap_;     // second level: rarely-firing deadlines
  std::uint64_t next_seq_ = 1;
  std::size_t peak_heap_ = 0;
  // Fused pop+re-arm: while a persistent timer's callback runs, its spent
  // root entry stays parked at heap_[0] (its key is a strict minimum, so
  // nothing can sift past it).  If the callback re-arms the same slot —
  // the self-rescheduling pattern of lane heads and port serialization
  // timers, i.e. nearly every pop — the root is re-keyed in place with a
  // single sift_down instead of a full remove + insert.  Otherwise the
  // stale root is removed after the callback returns.
  std::uint32_t deferred_root_ = kNoPos;
};

}  // namespace dcp
