#pragma once
// Simulated-time definitions.
//
// All simulated time is an int64 count of picoseconds.  Picosecond
// granularity keeps serialization times exact for every link speed we model
// (100 Gbps = 80 ps/byte, 400 Gbps = 20 ps/byte) while still allowing more
// than 100 days of simulated time before overflow.

#include <cstdint>

namespace dcp {

using Time = std::int64_t;  // picoseconds

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1'000;
inline constexpr Time kMicrosecond = 1'000'000;
inline constexpr Time kMillisecond = 1'000'000'000;
inline constexpr Time kSecond = 1'000'000'000'000;

/// A sentinel meaning "never" / "no deadline".
inline constexpr Time kTimeInfinity = INT64_MAX;

constexpr Time nanoseconds(double ns) { return static_cast<Time>(ns * kNanosecond); }
constexpr Time microseconds(double us) { return static_cast<Time>(us * kMicrosecond); }
constexpr Time milliseconds(double ms) { return static_cast<Time>(ms * kMillisecond); }
constexpr Time seconds(double s) { return static_cast<Time>(s * kSecond); }

constexpr double to_ns(Time t) { return static_cast<double>(t) / kNanosecond; }
constexpr double to_us(Time t) { return static_cast<double>(t) / kMicrosecond; }
constexpr double to_ms(Time t) { return static_cast<double>(t) / kMillisecond; }
constexpr double to_sec(Time t) { return static_cast<double>(t) / kSecond; }

/// Bandwidth expressed as picoseconds per byte, the natural unit for
/// computing serialization delays with integer arithmetic.
struct Bandwidth {
  std::int64_t ps_per_byte = 0;

  static constexpr Bandwidth gbps(double g) {
    // g Gbit/s = g/8 GByte/s = 8000/g ps per byte.
    return Bandwidth{static_cast<std::int64_t>(8000.0 / g)};
  }
  constexpr Time serialize(std::int64_t bytes) const { return bytes * ps_per_byte; }
  constexpr double as_gbps() const {
    return ps_per_byte == 0 ? 0.0 : 8000.0 / static_cast<double>(ps_per_byte);
  }
  constexpr double bits_per_sec() const { return as_gbps() * 1e9; }
  constexpr bool operator==(const Bandwidth&) const = default;
};

}  // namespace dcp
