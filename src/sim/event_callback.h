#pragma once
// A move-only, small-buffer-optimized callable for simulator events.
//
// std::function is the wrong tool for a discrete-event hot path: it
// requires copy-constructible targets (ruling out move-only captures such
// as PacketPtr) and heap-allocates for captures beyond a couple of words.
// EventCallback stores any callable up to kInlineSize bytes in-place; the
// rare oversized target falls back to the heap and is counted, so tests
// and benchmarks can assert the steady-state schedule->fire path performs
// zero per-event allocations.

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

namespace dcp {

class EventCallback {
 public:
  /// Inline capture budget.  Sized for the hot-path closures: wire
  /// delivery captures {Node*, port, PacketPtr} (24 bytes); timer closures
  /// capture `this` plus a word or two.
  static constexpr std::size_t kInlineSize = 48;

  EventCallback() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<void**>(buf_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
      ++heap_fallbacks_;
    }
  }

  EventCallback(EventCallback&& other) noexcept { move_from(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { reset(); }

  /// Constructs a callable directly in this slot (after destroying any
  /// current occupant) — the storage-reuse path of EventQueue's slab.
  /// Equivalent to `*this = EventCallback(f)` minus the relocate hop: the
  /// closure is built in buf_ itself, not in a temporary that is then
  /// moved through an indirect Ops call.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  void emplace(F&& f) {
    reset();
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<void**>(buf_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
      ++heap_fallbacks_;
    }
  }
  /// emplace() for an already-erased callback: plain move-assign.
  void emplace(EventCallback&& f) { *this = std::move(f); }

  void operator()() { ops_->invoke(buf_); }
  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// Per-thread count of callbacks that exceeded the inline buffer and
  /// heap-allocated.  The datapath keeps this flat in steady state.
  /// Thread-local (not a process-wide atomic) so simulations running on
  /// parallel sweep workers neither race nor pay for synchronization.
  static std::uint64_t heap_fallback_count() { return heap_fallbacks_; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* src, void* dst) noexcept;  // move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* src, void* dst) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* p) { (**static_cast<D**>(p))(); },
      [](void* src, void* dst) noexcept { *static_cast<D**>(dst) = *static_cast<D**>(src); },
      [](void* p) { delete *static_cast<D**>(p); },
  };

  void move_from(EventCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;

  static inline thread_local std::uint64_t heap_fallbacks_ = 0;
};

}  // namespace dcp
