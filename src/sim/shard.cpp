#include "sim/shard.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "net/lane.h"
#include "net/packet_pool.h"

namespace dcp {

namespace {

inline std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Thread-local slab footprint of the calling shard's pools.  Must run on
/// the thread that owns the shard (pools are thread-local by design).
inline std::uint64_t local_pool_arena_bytes() {
  return PacketPool::local().arena_bytes() + LanePool::local().arena_bytes();
}

}  // namespace

ShardGroup::ShardGroup(int n) {
  assert(n >= 1);
  sims_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) sims_.push_back(std::make_unique<Simulator>());
  logs_.resize(sims_.size());
  committed_.resize(sims_.size());
  cross_drains_.resize(sims_.size());
  bounds_.resize(sims_.size(), 0);
  dispatch_.resize(sims_.size(), 0);
  tn_scratch_.resize(sims_.size(), 0);
  if (sharded()) {
    // One sequence space: setup-phase allocations interleave across shard
    // queues exactly as a single serial queue would hand them out.
    for (auto& s : sims_) s->set_shared_seq(&global_seq_);
    slots_ = std::make_unique<WorkerSlot[]>(sims_.size() - 1);
  }
}

ShardGroup::~ShardGroup() {
  if (!workers_.empty()) {
    exit_.store(true, std::memory_order_relaxed);
    for (std::size_t w = 0; w + 1 < sims_.size(); ++w) {
      slots_[w].go.fetch_add(1, std::memory_order_seq_cst);
      slots_[w].go.notify_one();
    }
    for (std::thread& t : workers_) t.join();
  }
}

void ShardGroup::start_workers() {
  if (!workers_.empty() || !sharded()) return;
  workers_.reserve(sims_.size() - 1);
  for (std::size_t i = 1; i < sims_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void ShardGroup::worker_loop(std::size_t i) {
  WorkerSlot& slot = slots_[i - 1];
  std::uint64_t seen = 0;
  for (;;) {
    // Spin a short budget — barriers are usually microseconds apart — then
    // park on the go word's futex.  The sleeping flag is the Dekker half
    // of the wake protocol: the coordinator only pays the notify syscall
    // when it observes the worker asleep.
    std::uint64_t cur;
    int spins = 0;
    while ((cur = slot.go.load(std::memory_order_acquire)) == seen) {
      if (++spins >= kSpinBudget) {
        slot.sleeping.store(true, std::memory_order_seq_cst);
        while ((cur = slot.go.load(std::memory_order_seq_cst)) == seen) slot.go.wait(seen);
        slot.sleeping.store(false, std::memory_order_relaxed);
        break;
      }
    }
    seen = cur;
    if (exit_.load(std::memory_order_relaxed)) return;
    const std::uint64_t t0 = wall_ns();
    sims_[i]->run(bounds_[i]);
    slot.busy_ns += wall_ns() - t0;
    slot.windows += 1;
    slot.arena_bytes = local_pool_arena_bytes();
    // seq_cst: publishes the window's writes AND orders the increment
    // against the coordinator's sleeping flag (either we see the flag and
    // notify, or the coordinator's later load sees the increment).
    done_count_.fetch_add(1, std::memory_order_seq_cst);
    if (coord_sleeping_.load(std::memory_order_seq_cst)) done_count_.notify_one();
  }
}

Time ShardGroup::next_time() const {
  Time t = kTimeInfinity;
  for (const auto& s : sims_) t = std::min(t, s->next_event_time());
  return t;
}

Time ShardGroup::max_now() const {
  Time t = 0;
  for (const auto& s : sims_) t = std::max(t, s->now());
  return t;
}

std::uint64_t ShardGroup::events_processed() const {
  std::uint64_t n = 0;
  for (const auto& s : sims_) n += s->events_processed();
  return n;
}

void ShardGroup::sync_now(Time t) {
  for (auto& s : sims_) s->sync_now(t);
}

std::uint64_t ShardGroup::shard_windows(int i) const {
  return i == 0 ? windows0_ : slots_[static_cast<std::size_t>(i) - 1].windows;
}

std::uint64_t ShardGroup::busy_ns(int i) const {
  return i == 0 ? busy0_ns_ : slots_[static_cast<std::size_t>(i) - 1].busy_ns;
}

std::uint64_t ShardGroup::arena_bytes() const {
  // Shard 0's pools are this (the coordinator) thread's thread-locals;
  // worker pools were published to their slots at the last done barrier.
  std::uint64_t total = local_pool_arena_bytes();
  for (std::size_t w = 0; w + 1 < sims_.size(); ++w) total += slots_[w].arena_bytes;
  for (const auto& s : sims_) total += s->event_arena_bytes();
  return total;
}

void ShardGroup::run_window(Time bound) {
  if (!sharded()) {
    sims_[0]->run(bound);
    return;
  }
  assert(lookahead_ > 0 && "set_lookahead() before sharded windows");
  start_workers();
  // Uniform window: every shard runs to `bound` (the legacy entry keeps
  // its exact semantics — clocks advance to the bound even on idle
  // shards, which tests rely on).
  for (std::size_t i = 0; i < sims_.size(); ++i) {
    bounds_[i] = bound;
    dispatch_[i] = 1;
  }
  run_marked_window();
}

Time ShardGroup::run_window_adaptive(Time cap) {
  if (!sharded()) {
    sims_[0]->run(cap);
    return cap;
  }
  assert(lookahead_ > 0 && "set_lookahead() before sharded windows");
  start_workers();
  const std::size_t n = sims_.size();
  const Time ahead = std::max<Time>(1, lookahead_ >> window_shift_);

  // One uniform bound for every shard, opening at the globally earliest
  // pending event.  The bound must be uniform: commit_window() hands out
  // committed sequence numbers window by window, so seqs are globally
  // ordered by window index — serial (time, parent) order holds only if no
  // shard allocates at a time another shard has yet to reach.  Per-shard
  // bounds (letting the earliest shard race ahead of the rest) commit its
  // beyond-frontier allocations a window early, and a same-time tie
  // against a slower shard's later-committed event then breaks the wrong
  // way.  Adaptivity lives in the window LENGTH (`ahead`, shrunk under
  // cross-shard pressure) and in dispatch: shards with nothing due in the
  // window are not dispatched — their workers stay parked on the futex and
  // they skip window entry, the commit merge, and mailbox drains.
  Time min1 = kTimeInfinity;
  for (std::size_t i = 0; i < n; ++i) {
    const Time t = sims_[i]->next_event_time();
    tn_scratch_[i] = t;
    if (t < min1) min1 = t;
  }
  const Time bound = min1 >= cap ? cap : std::min(cap, min1 + ahead - 1);
  for (std::size_t i = 0; i < n; ++i) {
    bounds_[i] = bound;
    dispatch_[i] = tn_scratch_[i] <= bound ? 1 : 0;
  }
  run_marked_window();
  // Dispatched shards ran exactly to the bound and parked shards had
  // nothing below it, so every barrier effect this window is final.
  return bound;
}

void ShardGroup::run_marked_window() {
  const std::size_t n = sims_.size();
  ++windows_;
  for (std::size_t i = 0; i < n; ++i) {
    if (dispatch_[i] == 0) continue;
    logs_[i].clear();
    sims_[i]->begin_shard_window(&logs_[i]);
  }
  int need = 0;
  done_count_.store(0, std::memory_order_relaxed);
  for (std::size_t i = 1; i < n; ++i) {
    if (dispatch_[i] == 0) continue;
    ++need;
    WorkerSlot& slot = slots_[i - 1];
    slot.go.fetch_add(1, std::memory_order_seq_cst);
    if (slot.sleeping.load(std::memory_order_seq_cst)) slot.go.notify_one();
  }
  if (dispatch_[0] != 0) {
    const std::uint64_t t0 = wall_ns();
    sims_[0]->run(bounds_[0]);
    busy0_ns_ += wall_ns() - t0;
    ++windows0_;
  }
  if (need > 0) {
    int d;
    int spins = 0;
    while ((d = done_count_.load(std::memory_order_acquire)) != need) {
      if (++spins >= kSpinBudget) {
        coord_sleeping_.store(true, std::memory_order_seq_cst);
        while ((d = done_count_.load(std::memory_order_seq_cst)) != need) done_count_.wait(d);
        coord_sleeping_.store(false, std::memory_order_relaxed);
        break;
      }
    }
  }
  commit_window();
}

void ShardGroup::commit_window() {
  const std::size_t n = sims_.size();
  std::size_t remaining = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (dispatch_[i] == 0) {
      committed_[i].clear();
      logs_[i].clear();
      continue;
    }
    committed_[i].assign(logs_[i].size(), 0);
    remaining += logs_[i].size();
  }

  // K-way merge of the per-shard allocation logs into serial order.  Each
  // log is already sorted by (time, committed parent): time is the shard
  // clock (monotone within a window), and at equal times events execute —
  // and therefore allocate — in parent-sequence order.  A provisional
  // parent always resolves before it is needed: its own allocation sits at
  // a smaller index of the same log (it was drawn before the parent event
  // ran), so the head cursor has already committed it.  Ties across shards
  // are impossible — an event executes on exactly one shard, so a given
  // (time, parent) pair only ever heads one log.
  std::vector<std::size_t> head(n, 0);
  auto resolved_parent = [this](std::size_t s, const ShardSeqAlloc& a) {
    return (a.parent & EventQueue::kProvisionalSeq) != 0
               ? committed_[s][a.parent & ~EventQueue::kProvisionalSeq]
               : a.parent;
  };
  while (remaining > 0) {
    std::size_t best = n;
    Time bt = 0;
    std::uint64_t bp = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (head[i] >= logs_[i].size()) continue;
      const ShardSeqAlloc& a = logs_[i][head[i]];
      const std::uint64_t p = resolved_parent(i, a);
      if (best == n || a.t < bt || (a.t == bt && p < bp)) {
        best = i;
        bt = a.t;
        bp = p;
      }
    }
    committed_[best][head[best]++] = global_seq_++;
    --remaining;
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (dispatch_[i] == 0) continue;
    // Leave window mode, rewriting every provisional key still parked in
    // the shard's heaps, then let components (lanes, journals, pending
    // finalizations) commit the stamps they hold outside the queue.
    sims_[i]->end_shard_window(committed_[i]);
    sims_[i]->run_seq_remap_hooks(SeqRemap{&committed_[i]});
  }
  // Cut-channel mailbox drains, with the window's cross-record total fed
  // back into the adaptive window size: heavy mailbox traffic means the
  // windows admitted more cross-shard skew than the merge absorbs cheaply
  // (shrink the effective lookahead); light windows grow it back.
  std::size_t cross = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (dispatch_[i] == 0) continue;  // a parked shard sent nothing
    for (auto& drain : cross_drains_[i]) cross += drain(SeqRemap{&committed_[i]});
  }
  cross_records_ += cross;
  if (cross > kShrinkAt && window_shift_ < kMaxShift) {
    ++window_shift_;
  } else if (cross < kGrowAt && window_shift_ > 0) {
    --window_shift_;
  }
}

}  // namespace dcp
