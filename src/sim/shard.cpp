#include "sim/shard.h"

#include <algorithm>
#include <cassert>

namespace dcp {

namespace {

/// Bounded spin: barriers are microseconds apart in wall time, so burn a
/// little CPU before yielding rather than paying a futex round trip per
/// window.
template <typename Pred>
void spin_until(Pred&& done) {
  int spins = 0;
  while (!done()) {
    if (++spins >= 4096) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

}  // namespace

ShardGroup::ShardGroup(int n) {
  assert(n >= 1);
  sims_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) sims_.push_back(std::make_unique<Simulator>());
  logs_.resize(sims_.size());
  committed_.resize(sims_.size());
  cross_drains_.resize(sims_.size());
  if (sharded()) {
    // One sequence space: setup-phase allocations interleave across shard
    // queues exactly as a single serial queue would hand them out.
    for (auto& s : sims_) s->set_shared_seq(&global_seq_);
  }
}

ShardGroup::~ShardGroup() {
  if (!workers_.empty()) {
    exit_.store(true, std::memory_order_relaxed);
    go_epoch_.fetch_add(1, std::memory_order_release);
    for (std::thread& t : workers_) t.join();
  }
}

void ShardGroup::start_workers() {
  if (!workers_.empty() || !sharded()) return;
  workers_.reserve(sims_.size() - 1);
  for (std::size_t i = 1; i < sims_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void ShardGroup::worker_loop(std::size_t i) {
  std::uint64_t seen = 0;
  for (;;) {
    spin_until([&] { return go_epoch_.load(std::memory_order_acquire) != seen; });
    seen = go_epoch_.load(std::memory_order_acquire);
    if (exit_.load(std::memory_order_relaxed)) return;
    sims_[i]->run(window_bound_);
    done_count_.fetch_add(1, std::memory_order_release);
  }
}

Time ShardGroup::next_time() const {
  Time t = kTimeInfinity;
  for (const auto& s : sims_) t = std::min(t, s->next_event_time());
  return t;
}

Time ShardGroup::max_now() const {
  Time t = 0;
  for (const auto& s : sims_) t = std::max(t, s->now());
  return t;
}

std::uint64_t ShardGroup::events_processed() const {
  std::uint64_t n = 0;
  for (const auto& s : sims_) n += s->events_processed();
  return n;
}

void ShardGroup::sync_now(Time t) {
  for (auto& s : sims_) s->sync_now(t);
}

void ShardGroup::run_window(Time bound) {
  if (!sharded()) {
    sims_[0]->run(bound);
    return;
  }
  assert(lookahead_ > 0 && "set_lookahead() before sharded windows");
  start_workers();
  for (std::size_t i = 0; i < sims_.size(); ++i) {
    logs_[i].clear();
    sims_[i]->begin_shard_window(&logs_[i]);
  }
  window_bound_ = bound;
  done_count_.store(0, std::memory_order_relaxed);
  go_epoch_.fetch_add(1, std::memory_order_release);
  sims_[0]->run(bound);
  const int need = static_cast<int>(sims_.size()) - 1;
  spin_until([&] { return done_count_.load(std::memory_order_acquire) == need; });
  commit_window();
}

void ShardGroup::commit_window() {
  const std::size_t n = sims_.size();
  std::size_t remaining = 0;
  for (std::size_t i = 0; i < n; ++i) {
    committed_[i].assign(logs_[i].size(), 0);
    remaining += logs_[i].size();
  }

  // K-way merge of the per-shard allocation logs into serial order.  Each
  // log is already sorted by (time, committed parent): time is the shard
  // clock (monotone within a window), and at equal times events execute —
  // and therefore allocate — in parent-sequence order.  A provisional
  // parent always resolves before it is needed: its own allocation sits at
  // a smaller index of the same log (it was drawn before the parent event
  // ran), so the head cursor has already committed it.  Ties across shards
  // are impossible — an event executes on exactly one shard, so a given
  // (time, parent) pair only ever heads one log.
  std::vector<std::size_t> head(n, 0);
  auto resolved_parent = [this](std::size_t s, const ShardSeqAlloc& a) {
    return (a.parent & EventQueue::kProvisionalSeq) != 0
               ? committed_[s][a.parent & ~EventQueue::kProvisionalSeq]
               : a.parent;
  };
  while (remaining > 0) {
    std::size_t best = n;
    Time bt = 0;
    std::uint64_t bp = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (head[i] >= logs_[i].size()) continue;
      const ShardSeqAlloc& a = logs_[i][head[i]];
      const std::uint64_t p = resolved_parent(i, a);
      if (best == n || a.t < bt || (a.t == bt && p < bp)) {
        best = i;
        bt = a.t;
        bp = p;
      }
    }
    committed_[best][head[best]++] = global_seq_++;
    --remaining;
  }

  for (std::size_t i = 0; i < n; ++i) {
    // Leave window mode, rewriting every provisional key still parked in
    // the shard's heaps, then let components (lanes, journals, pending
    // finalizations) commit the stamps they hold outside the queue.
    sims_[i]->end_shard_window(committed_[i]);
    sims_[i]->run_seq_remap_hooks(SeqRemap{&committed_[i]});
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& drain : cross_drains_[i]) drain(SeqRemap{&committed_[i]});
  }
}

}  // namespace dcp
