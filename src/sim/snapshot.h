#pragma once
// Deterministic checkpoint/restore for simulations (docs/checkpoint.md).
//
// A snapshot is NOT a memory dump.  It is taken at a barrier-safe point —
// a shard-window barrier under DCP_SHARDS>1, a quiesce/slice boundary
// otherwise — where every pending callback is reconstructible from module
// state, so no closures are ever serialized.  Restore rebuilds the world
// from its spec (topology, schemes, flows — the deterministic setup
// phase), then overlays the saved dynamic state on top: scalar fields are
// copied, persistent timers are re-armed with their exact saved (time,
// sequence) heap keys, and in-flight packets are re-pushed by their owning
// modules via push_keyed.  Because the event order of a run is fully
// determined by the globally unique (t, seq) keys, the resumed run is
// bit-identical — same digest, same events_processed — to the
// uninterrupted one.
//
// StateIO is the single bidirectional visitor both directions share: every
// module implements ONE `checkpoint(StateIO&)` member that reads like a
// field list, and the same code path serializes and restores.  This keeps
// save and load structurally incapable of drifting apart, and makes
// re-save byte-equality (save(restore(image)) == image) a cheap, powerful
// invariant tests can assert.
//
// Sequence translation: an image records `setup_seq_end`, the first
// sequence number allocated after the deterministic setup phase.  When the
// restore target was built from a *different but prefix-isomorphic* spec
// (the fuzzer's ddmin probes remove fault actions, shifting every runtime
// sequence by a constant), StateIO::seq() rewrites runtime sequences
// (s >= setup_seq_end) by that constant delta on load; setup-phase keys
// are left to the rebuild, which reproduces them exactly.

#include <cstdint>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace dcp {

/// FNV-1a over 64-bit lanes: the digest primitive snapshots and the golden
/// corpus share.  Order-sensitive, dependency-free, stable across builds.
class Fnv64 {
 public:
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (i * 8)) & 0xff;
      h_ *= 1099511628211ull;
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ull;
};

/// Bidirectional state visitor: one `checkpoint(StateIO&)` per module
/// serves both save and load.  All primitives are no-ops after the first
/// failure, so callers check ok() once at the end.
class StateIO {
 public:
  static StateIO saver(std::vector<std::uint8_t>& out) { return StateIO(&out, nullptr); }
  static StateIO loader(const std::vector<std::uint8_t>& in) { return StateIO(nullptr, &in); }

  bool saving() const { return out_ != nullptr; }
  bool ok() const { return err_.empty(); }
  const std::string& error() const { return err_; }
  /// Marks the stream failed (e.g. a transport without snapshot support).
  void fail(std::string msg) {
    if (err_.empty()) err_ = std::move(msg);
  }

  /// Arms runtime-sequence translation for load (see header comment).
  void set_seq_context(std::uint64_t saved_setup_end, std::int64_t delta) {
    setup_end_ = saved_setup_end;
    delta_ = delta;
  }
  std::uint64_t saved_setup_end() const { return setup_end_; }
  std::int64_t seq_delta() const { return delta_; }
  /// Rewrites one saved sequence into the restore target's numbering.
  std::uint64_t translate_seq(std::uint64_t s) const {
    return s >= setup_end_ ? static_cast<std::uint64_t>(static_cast<std::int64_t>(s) - delta_)
                           : s;
  }

  /// Raw trivially-copyable value (integers, enums, flat Packet records).
  /// Saving writes a padding-cleared copy so image bytes are a pure
  /// function of the object's *values* — struct padding holds
  /// indeterminate garbage that would otherwise make two semantically
  /// identical worlds produce different images.
  template <typename T>
  void pod(T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!ok()) return;
    if (saving()) {
#if defined(__GNUC__) || defined(__clang__)
      T tmp = v;
      __builtin_clear_padding(&tmp);
      const auto* p = reinterpret_cast<const std::uint8_t*>(&tmp);
#else
      const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
#endif
      out_->insert(out_->end(), p, p + sizeof v);
    } else {
      if (pos_ + sizeof v > in_->size()) return fail("state underrun");
      std::memcpy(&v, in_->data() + pos_, sizeof v);
      pos_ += sizeof v;
    }
  }

  /// A global tie-break sequence: saved raw, translated on load.
  void seq(std::uint64_t& s) {
    pod(s);
    if (!saving() && ok()) s = translate_seq(s);
  }

  void str(std::string& s) {
    std::uint64_t n = s.size();
    pod(n);
    if (!ok()) return;
    if (saving()) {
      out_->insert(out_->end(), s.begin(), s.end());
    } else {
      if (pos_ + n > in_->size()) return fail("state underrun (str)");
      s.assign(reinterpret_cast<const char*>(in_->data() + pos_), n);
      pos_ += n;
    }
  }

  /// Vector of trivially-copyable records, size included.
  template <typename T>
  void vec(std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint64_t n = v.size();
    pod(n);
    if (!ok()) return;
    if (n == 0) {
      if (!saving()) v.clear();
      return;
    }
    if (saving()) {
      if constexpr (std::has_unique_object_representations_v<T>) {
        const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
        out_->insert(out_->end(), p, p + n * sizeof(T));
      } else {
        for (const T& e : v) {
          T t = e;
          pod(t);  // padding-cleared per element
        }
      }
    } else {
      if (pos_ + n * sizeof(T) > in_->size()) return fail("state underrun (vec)");
      v.resize(n);
      std::memcpy(v.data(), in_->data() + pos_, n * sizeof(T));
      pos_ += n * sizeof(T);
    }
  }

  /// std::vector<bool> (protocol bitmaps): no contiguous storage, so one
  /// byte per bit.  Load re-sizes to the saved size (covers lazily-grown
  /// bitmaps like TimeoutSender::retx_pending_).
  void vbool(std::vector<bool>& v) {
    std::uint64_t n = v.size();
    pod(n);
    if (!ok()) return;
    if (!saving()) v.assign(static_cast<std::size_t>(n), false);
    for (std::size_t i = 0; i < v.size(); ++i) {
      std::uint8_t b = v[i] ? 1 : 0;
      pod(b);
      if (!ok()) return;
      if (!saving()) v[i] = b != 0;
    }
  }

  /// Deque of trivially-copyable records, size included.
  template <typename T>
  void deq(std::deque<T>& d) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint64_t n = d.size();
    pod(n);
    if (!ok()) return;
    if (saving()) {
      for (auto& e : d) pod(e);
    } else {
      d.clear();
      for (std::uint64_t i = 0; i < n && ok(); ++i) {
        T e{};
        pod(e);
        d.push_back(e);
      }
    }
  }

  /// Variable-length container of non-trivial elements: size + per-element
  /// visit.  Load resizes, so T must be default-constructible.
  template <typename T, typename Fn>
  void each(std::vector<T>& v, Fn fn) {
    std::uint64_t n = v.size();
    pod(n);
    if (!ok()) return;
    if (!saving()) v.resize(n);
    for (auto& e : v) {
      fn(*this, e);
      if (!ok()) return;
    }
  }

  /// Fixed-shape container (ports, queues): the rebuild must already hold
  /// exactly as many elements as the image recorded.
  template <typename C, typename Fn>
  void fixed(C& v, Fn fn) {
    std::uint64_t n = v.size();
    pod(n);
    if (!ok()) return;
    if (!saving() && n != v.size()) return fail("state shape mismatch");
    for (auto& e : v) {
      fn(*this, e);
      if (!ok()) return;
    }
  }

  /// Structure guard: a magic constant both directions visit.  A load that
  /// desynchronizes fails at the next label, naming the module that drifted.
  void label(std::uint32_t magic) {
    std::uint32_t m = magic;
    pod(m);
    if (!saving() && ok() && m != magic) fail("label mismatch @" + std::to_string(magic));
  }

  /// A persistent timer's heap arm.  Save records the exact parked key;
  /// load overlays it, except that setup-phase keys (seq < setup_seq_end)
  /// defer to the rebuild's own — identical — arm, so they survive spec
  /// deltas that renumber the setup phase tail (ddmin action removal never
  /// reaches timers armed before the injector).
  void timer(Timer& t) {
    EventQueue::TimerArm a = saving() ? t.arm_state() : EventQueue::TimerArm{};
    pod(a.kind);
    pod(a.t);
    pod(a.seq);
    pod(a.deadline);
    if (saving() || !ok()) return;
    if (a.kind == 0) {
      t.restore_arm(EventQueue::TimerArm{});
      return;
    }
    if (a.seq >= setup_end_) {
      a.seq = translate_seq(a.seq);
      t.restore_arm(a);
      return;
    }
    if (a.kind == 2) {
      // Setup-keyed deadline arm: the rebuild parked the identical entry;
      // only the true deadline may have moved (O(1) runtime extensions
      // never touch the parked key).  Keep the rebuild's key, overlay the
      // saved deadline.
      EventQueue::TimerArm cur = t.arm_state();
      if (cur.kind == 2) {
        cur.deadline = a.deadline;
        t.restore_arm(cur);
      } else {
        t.restore_arm(a);
      }
    }
    // Setup-keyed main arm (kind 1): the rebuild's arm is already
    // bit-identical — leave it in place.
  }

  std::size_t bytes_consumed() const { return pos_; }

 private:
  StateIO(std::vector<std::uint8_t>* out, const std::vector<std::uint8_t>* in)
      : out_(out), in_(in) {}

  std::vector<std::uint8_t>* out_;
  const std::vector<std::uint8_t>* in_;
  std::size_t pos_ = 0;
  std::uint64_t setup_end_ = ~0ull;  // no translation until armed
  std::int64_t delta_ = 0;
  std::string err_;
};

/// Per-shard clock record inside an image.
struct SnapshotClock {
  Time now = 0;
  std::uint64_t events = 0;
  Time cur_time = 0;
  std::uint64_t cur_seq = 0;
};

/// A versioned, self-describing simulation checkpoint.  `fingerprint`
/// hashes the world spec the image was saved from; restore refuses a
/// target built from a spec whose fingerprint differs (unless the caller
/// explicitly supplies the seq delta of a prefix-isomorphic spec — the
/// ddmin path).
struct SnapshotImage {
  static constexpr std::uint32_t kMagic = 0x44435053;  // "DCPS"
  static constexpr std::uint32_t kVersion = 1;

  std::uint64_t fingerprint = 0;
  std::uint32_t shards = 1;
  std::uint8_t lanes = 1;
  std::uint8_t devirt = 1;
  Time at = 0;  // every event with t < at has run; none at t >= at has
  std::uint64_t setup_seq_end = 0;
  std::uint64_t next_seq = 0;
  std::vector<SnapshotClock> clocks;  // one per shard
  std::vector<std::uint8_t> state;    // module payload (StateIO stream)

  /// Flat byte encoding (repro files, byte-equality checks).
  std::vector<std::uint8_t> encode() const;
  /// Decodes `bytes`; returns false on a magic/version/shape mismatch.
  static bool decode(const std::vector<std::uint8_t>& bytes, SnapshotImage& out);

  bool operator==(const SnapshotImage& o) const {
    return fingerprint == o.fingerprint && shards == o.shards && lanes == o.lanes &&
           devirt == o.devirt && at == o.at && setup_seq_end == o.setup_seq_end &&
           next_seq == o.next_seq &&
           [&] {
             if (clocks.size() != o.clocks.size()) return false;
             for (std::size_t i = 0; i < clocks.size(); ++i) {
               if (clocks[i].now != o.clocks[i].now || clocks[i].events != o.clocks[i].events ||
                   clocks[i].cur_time != o.clocks[i].cur_time ||
                   clocks[i].cur_seq != o.clocks[i].cur_seq) {
                 return false;
               }
             }
             return true;
           }() &&
           state == o.state;
  }
  bool operator!=(const SnapshotImage& o) const { return !(*this == o); }
};

}  // namespace dcp
