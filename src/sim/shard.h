#pragma once
// Space-parallel simulation: one Simulator (and so one EventQueue, packet
// pool and lane pool) per topology shard, advancing together in bounded
// time windows under conservative synchronization.
//
// Lookahead: with L = the minimum propagation delay over all cut (cross-
// shard) channels, a window bounded by min-next-event-time + L - 1 can be
// executed by every shard independently — any packet a shard emits across
// the cut arrives at send-time + L at the earliest, i.e. strictly after
// the window, so no shard can receive an event it should already have run.
//
// Adaptive windows (run_window_adaptive): the bound is computed PER SHARD
// as min(cap, min over other shards' next-event time + A - 1), with
// A <= L an effective lookahead the group shrinks under cross-shard
// mailbox pressure and grows back when windows run light.  The per-shard
// form is safe by the same argument — anything shard j can still send
// arrives at >= next_j + L > bound_i — and lets a shard whose peers are
// idle run all the way to the slice boundary instead of re-barriering
// every L.  Shards with no event inside their bound are not dispatched at
// all (their worker stays parked), and the call returns the commit
// FRONTIER min_i(bound_i): every event at or below it has executed on
// every shard, so barrier effects up to the frontier are final while
// later ones must be deferred (see Network::commit_window_effects).
//
// Determinism: all shards draw setup-phase tie-break sequences from ONE
// shared counter, so topology construction is bit-identical to the serial
// run.  During a window each EventQueue hands out provisional sequences
// and logs (alloc time, allocating event); at the barrier the coordinator
// K-way-merges the logs — ordered by (time, committed parent sequence),
// which IS the serial allocation order — and assigns dense global
// sequences continuing the shared counter.  Every sequence a serial run
// would have allocated gets the same value, so event interleavings, lane
// orders and digests are bit-identical to DCP_SHARDS=1 (proof sketch in
// docs/architecture.md, "Sharded simulation").
//
// Threading: shard 0 runs on the caller's thread; shards 1..n-1 each get a
// dedicated worker pinned to their Simulator (keeping the thread-local
// pools coherent).  Dispatch uses one go-word per worker (bumped only
// when that shard has work) and a shared done counter; both sides spin a
// short budget and then block on the atomic's futex, with a Dekker-style
// sleeping flag so the common fast-barrier case never pays a wake
// syscall.  All handshakes are seq_cst, so everything a worker wrote in a
// window is visible to the coordinator at the barrier and vice versa.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace dcp {

class ShardGroup {
 public:
  /// A group of `n` simulators sharing one sequence space.  n == 1 is the
  /// escape hatch: no shared counter, no windows, no worker threads — the
  /// single simulator behaves exactly like a stand-alone one.
  explicit ShardGroup(int n);
  ~ShardGroup();
  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  int size() const { return static_cast<int>(sims_.size()); }
  bool sharded() const { return sims_.size() > 1; }
  Simulator& sim(int i) { return *sims_[static_cast<std::size_t>(i)]; }
  const Simulator& sim(int i) const { return *sims_[static_cast<std::size_t>(i)]; }

  /// Conservative lookahead (min cut-channel propagation); must be set
  /// (> 0) before the first run_window() of a sharded run.
  void set_lookahead(Time l) { lookahead_ = l; }
  Time lookahead() const { return lookahead_; }

  /// Registers a barrier drain for a cut channel whose SOURCE lives on
  /// `src_shard`: runs on the coordinator with every shard parked, with
  /// the source shard's remap for the window just ended.  Returns the
  /// number of cross-shard records it moved — the group's mailbox-pressure
  /// signal for adaptive window sizing.
  void add_cross_drain(int src_shard, std::function<std::size_t(const SeqRemap&)> fn) {
    cross_drains_[static_cast<std::size_t>(src_shard)].push_back(std::move(fn));
  }

  /// Earliest pending event over all shards (mailboxes are always empty
  /// between windows, so this is exact).
  Time next_time() const;
  bool idle() const { return next_time() == kTimeInfinity; }
  /// Latest shard clock — the global "last executed event" time when idle.
  Time max_now() const;
  std::uint64_t events_processed() const;
  /// Advances every shard's clock to a slice boundary (no events run).
  void sync_now(Time t);

  /// Runs every shard to `bound` (inclusive) in parallel, then commits the
  /// window: merge allocation logs -> committed sequences -> heap rewrite
  /// -> component remap hooks -> cut-channel mailbox drains.
  void run_window(Time bound);

  /// Adaptive window (see file header): per-shard bounds capped at `cap`,
  /// idle shards skipped.  Returns the commit frontier — the time up to
  /// which every shard is known to have executed everything, i.e. how far
  /// barrier effects may be applied.
  Time run_window_adaptive(Time cap);

  // ---- Instrumentation (read between windows, coordinator thread) -------
  /// Windows committed (either entry point).
  std::uint64_t windows() const { return windows_; }
  /// Windows in which shard `i` actually ran events.
  std::uint64_t shard_windows(int i) const;
  /// Wall nanoseconds shard `i` spent executing events inside windows —
  /// busy_ns / total wall is the shard's utilization.
  std::uint64_t busy_ns(int i) const;
  /// Total cross-shard mailbox records drained at barriers.
  std::uint64_t cross_records() const { return cross_records_; }
  /// Current pressure shift: effective lookahead = lookahead >> shift.
  int pressure_shift() const { return window_shift_; }
  /// Bytes held by every shard's slab arenas (packet hot/cold, lane and
  /// event records).  Workers publish their thread-local pool footprints
  /// at each barrier; shard 0's pools are read directly, so this must be
  /// called on the coordinator thread.
  std::uint64_t arena_bytes() const;

 private:
  // One cache line per worker: the go word and sleep flag are the only
  // cross-thread hot state, and padding them apart keeps a worker's futex
  // spin from bouncing the line every other worker (and the coordinator)
  // writes.
  struct alignas(64) WorkerSlot {
    std::atomic<std::uint64_t> go{0};
    std::atomic<bool> sleeping{false};
    // Plain fields: written by the worker inside a window, read by the
    // coordinator after the done barrier (the done fetch_add publishes).
    std::uint64_t busy_ns = 0;
    std::uint64_t windows = 0;
    std::uint64_t arena_bytes = 0;
  };

  void start_workers();
  void worker_loop(std::size_t i);
  /// Dispatches the marked shards at bounds_[], runs shard 0 inline, waits
  /// for the done barrier, then merges logs and drains mailboxes.
  void run_marked_window();
  void commit_window();

  std::vector<std::unique_ptr<Simulator>> sims_;
  Time lookahead_ = 0;
  std::uint64_t global_seq_ = 1;  // mirrors EventQueue's initial next_seq_
  std::vector<std::vector<ShardSeqAlloc>> logs_;
  std::vector<std::vector<std::uint64_t>> committed_;
  std::vector<std::vector<std::function<std::size_t(const SeqRemap&)>>> cross_drains_;

  // Window plan, coordinator-written before dispatch.
  std::vector<Time> bounds_;
  std::vector<char> dispatch_;  // shard has work inside its bound
  std::vector<Time> tn_scratch_;

  // Adaptive state.
  int window_shift_ = 0;                  // effective lookahead = L >> shift
  static constexpr int kMaxShift = 4;
  static constexpr std::size_t kShrinkAt = 8192;  // cross records per window
  static constexpr std::size_t kGrowAt = 2048;
  std::uint64_t windows_ = 0;
  std::uint64_t cross_records_ = 0;
  std::uint64_t busy0_ns_ = 0;
  std::uint64_t windows0_ = 0;

  // Barrier state.
  static constexpr int kSpinBudget = 4096;
  std::vector<std::thread> workers_;
  std::unique_ptr<WorkerSlot[]> slots_;   // size() - 1 entries
  std::atomic<int> done_count_{0};
  std::atomic<bool> coord_sleeping_{false};
  std::atomic<bool> exit_{false};
};

}  // namespace dcp
