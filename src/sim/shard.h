#pragma once
// Space-parallel simulation: one Simulator (and so one EventQueue, packet
// pool and lane pool) per topology shard, advancing together in bounded
// time windows under conservative synchronization.
//
// Lookahead: with L = the minimum propagation delay over all cut (cross-
// shard) channels, a window bounded by min-next-event-time + L - 1 can be
// executed by every shard independently — any packet a shard emits across
// the cut arrives at send-time + L at the earliest, i.e. strictly after
// the window, so no shard can receive an event it should already have run.
//
// Determinism: all shards draw setup-phase tie-break sequences from ONE
// shared counter, so topology construction is bit-identical to the serial
// run.  During a window each EventQueue hands out provisional sequences
// and logs (alloc time, allocating event); at the barrier the coordinator
// K-way-merges the logs — ordered by (time, committed parent sequence),
// which IS the serial allocation order — and assigns dense global
// sequences continuing the shared counter.  Every sequence a serial run
// would have allocated gets the same value, so event interleavings, lane
// orders and digests are bit-identical to DCP_SHARDS=1 (proof sketch in
// docs/architecture.md, "Sharded simulation").
//
// Threading: shard 0 runs on the caller's thread; shards 1..n-1 each get a
// dedicated worker pinned to their Simulator (keeping the thread-local
// pools coherent).  The go/done pair uses release/acquire so everything a
// worker wrote in a window is visible to the coordinator at the barrier
// and everything the coordinator wrote (committed stamps, mailbox
// deliveries) is visible to workers in the next window.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace dcp {

class ShardGroup {
 public:
  /// A group of `n` simulators sharing one sequence space.  n == 1 is the
  /// escape hatch: no shared counter, no windows, no worker threads — the
  /// single simulator behaves exactly like a stand-alone one.
  explicit ShardGroup(int n);
  ~ShardGroup();
  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  int size() const { return static_cast<int>(sims_.size()); }
  bool sharded() const { return sims_.size() > 1; }
  Simulator& sim(int i) { return *sims_[static_cast<std::size_t>(i)]; }
  const Simulator& sim(int i) const { return *sims_[static_cast<std::size_t>(i)]; }

  /// Conservative lookahead (min cut-channel propagation); must be set
  /// (> 0) before the first run_window() of a sharded run.
  void set_lookahead(Time l) { lookahead_ = l; }
  Time lookahead() const { return lookahead_; }

  /// Registers a barrier drain for a cut channel whose SOURCE lives on
  /// `src_shard`: runs on the coordinator with every shard parked, with
  /// the source shard's remap for the window just ended.
  void add_cross_drain(int src_shard, std::function<void(const SeqRemap&)> fn) {
    cross_drains_[static_cast<std::size_t>(src_shard)].push_back(std::move(fn));
  }

  /// Earliest pending event over all shards (mailboxes are always empty
  /// between windows, so this is exact).
  Time next_time() const;
  bool idle() const { return next_time() == kTimeInfinity; }
  /// Latest shard clock — the global "last executed event" time when idle.
  Time max_now() const;
  std::uint64_t events_processed() const;
  /// Advances every shard's clock to a slice boundary (no events run).
  void sync_now(Time t);

  /// Runs every shard to `bound` (inclusive) in parallel, then commits the
  /// window: merge allocation logs -> committed sequences -> heap rewrite
  /// -> component remap hooks -> cut-channel mailbox drains.
  void run_window(Time bound);

 private:
  void start_workers();
  void worker_loop(std::size_t i);
  void commit_window();

  std::vector<std::unique_ptr<Simulator>> sims_;
  Time lookahead_ = 0;
  std::uint64_t global_seq_ = 1;  // mirrors EventQueue's initial next_seq_
  std::vector<std::vector<ShardSeqAlloc>> logs_;
  std::vector<std::vector<std::uint64_t>> committed_;
  std::vector<std::vector<std::function<void(const SeqRemap&)>>> cross_drains_;

  // Barrier state.  window_bound_ is published before the go epoch bump
  // (release) and read by workers after their acquire load of go_epoch_.
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> go_epoch_{0};
  std::atomic<int> done_count_{0};
  std::atomic<bool> exit_{false};
  Time window_bound_ = 0;
};

}  // namespace dcp
