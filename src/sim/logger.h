#pragma once
// Minimal leveled logger.  Simulation components log through a Logger owned
// by the experiment, so each simulation can have its own sink and level.
// Emission is concurrency-safe: a line is formatted off to the side and
// written to the sink in one call under a process-wide mutex, so two
// simulations logging from two sweep workers — even into the same FILE* —
// never interleave or tear lines.

#include <cstdio>
#include <string>
#include <string_view>

#include "sim/time.h"

namespace dcp {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  explicit Logger(LogLevel level = LogLevel::kWarn, std::FILE* out = stderr)
      : level_(level), out_(out) {}

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_ && level_ != LogLevel::kOff; }

  void log(LogLevel level, Time now, std::string_view component, std::string_view msg);

  void trace(Time now, std::string_view c, std::string_view m) { log(LogLevel::kTrace, now, c, m); }
  void debug(Time now, std::string_view c, std::string_view m) { log(LogLevel::kDebug, now, c, m); }
  void info(Time now, std::string_view c, std::string_view m) { log(LogLevel::kInfo, now, c, m); }
  void warn(Time now, std::string_view c, std::string_view m) { log(LogLevel::kWarn, now, c, m); }
  void error(Time now, std::string_view c, std::string_view m) { log(LogLevel::kError, now, c, m); }

 private:
  LogLevel level_;
  std::FILE* out_;
};

}  // namespace dcp
