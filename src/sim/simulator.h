#pragma once
// The discrete-event simulator driving every model in this library.
//
// Ownership: a Simulator is created by the experiment (or test) and passed
// by reference to every component.  There are no globals; two simulations
// can run side by side in one process.

#include <cstdint>
#include <limits>

#include "sim/event_callback.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace dcp {

class CheckObserver;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` to run `delay` from now.  Generation-stamped EventIds
  /// make cancelling an already-fired id a harmless no-op, though callers
  /// still null their stored ids inside callbacks for their own state
  /// machines' sake.
  EventId schedule(Time delay, EventCallback fn) {
    return queue_.push(now_ + delay, std::move(fn));
  }
  EventId schedule_at(Time t, EventCallback fn) {
    return queue_.push(t < now_ ? now_ : t, std::move(fn));
  }
  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until the queue drains or simulated time exceeds `until`.
  void run(Time until = kTimeInfinity);

  /// Runs a single event; returns false when the queue is empty.
  bool run_one();

  /// Stops a `run()` in progress after the current event returns.
  void stop() { stopped_ = true; }

  bool idle() const { return queue_.empty(); }
  Time next_event_time() const { return queue_.next_time(); }
  std::uint64_t events_processed() const { return events_processed_; }

  /// Event-slab capacity (slots ever allocated) — surfaced so CorePerf can
  /// report per-run allocation behaviour alongside events/sec.
  std::size_t event_slots_allocated() const { return queue_.slots_allocated(); }

  /// The invariant-checking observer armed on this simulation, if any (see
  /// check/observer.h).  Components consult this at their hook sites; the
  /// unarmed fast path is a single null check.
  CheckObserver* check_observer() const { return check_observer_; }
  void set_check_observer(CheckObserver* ob) { check_observer_ = ob; }

 private:
  EventQueue queue_;
  Time now_ = 0;
  std::uint64_t events_processed_ = 0;
  bool stopped_ = false;
  CheckObserver* check_observer_ = nullptr;
};

}  // namespace dcp
