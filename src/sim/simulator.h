#pragma once
// The discrete-event simulator driving every model in this library.
//
// Ownership: a Simulator is created by the experiment (or test) and passed
// by reference to every component.  There are no globals; two simulations
// can run side by side in one process.

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "sim/event_callback.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace dcp {

class CheckObserver;

/// Rewrites a provisional (window-local) sequence into its committed
/// global value; committed sequences pass through unchanged.  Handed to
/// seq-remap hooks at every shard-window barrier (see sim/shard.h).
struct SeqRemap {
  const std::vector<std::uint64_t>* committed = nullptr;
  std::uint64_t operator()(std::uint64_t s) const {
    return (s & EventQueue::kProvisionalSeq) != 0
               ? (*committed)[s & ~EventQueue::kProvisionalSeq]
               : s;
  }
};

class Simulator {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// The Simulator whose run()/run_one() loop is executing on THIS thread
  /// (nullptr outside a run loop).  Cross-shard observers (the invariant
  /// oracle) use it to stamp timestamps with the executing shard's clock —
  /// reading any other shard's now() from a hook is a data race.
  static const Simulator* active() { return tls_active_; }

  /// Schedules `fn` to run `delay` from now.  Generation-stamped EventIds
  /// make cancelling an already-fired id a harmless no-op, though callers
  /// still null their stored ids inside callbacks for their own state
  /// machines' sake.  Templated (like EventQueue::push) so the closure is
  /// constructed directly in its slab slot.
  template <typename F>
  EventId schedule(Time delay, F&& fn) {
    return queue_.push(now_ + delay, std::forward<F>(fn));
  }
  template <typename F>
  EventId schedule_at(Time t, F&& fn) {
    return queue_.push(t < now_ ? now_ : t, std::forward<F>(fn));
  }
  /// schedule_at() for one-shots that sit a long time before firing
  /// (staggered flow starts): the entry parks in the deadline heap so hot
  /// packet events never sift across it.  Same firing order as
  /// schedule_at() — the tie-break sequence is allocated here.
  template <typename F>
  EventId schedule_at_far(Time t, F&& fn) {
    return queue_.push_far(t < now_ ? now_ : t, std::forward<F>(fn));
  }
  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until the queue drains or simulated time exceeds `until`.
  void run(Time until = kTimeInfinity);

  /// Runs a single event; returns false when the queue is empty.
  bool run_one();

  /// Stops a `run()` in progress after the current event returns.
  void stop() { stopped_ = true; }
  /// True between stop() and the run loop noticing it.  Delivery lanes
  /// consult this so same-time coalescing honours stop() exactly like the
  /// plain one-event-per-packet heap would.
  bool stop_requested() const { return stopped_; }

  bool idle() const { return queue_.empty(); }
  Time next_event_time() const { return queue_.next_time(); }
  std::uint64_t events_processed() const { return events_processed_; }

  // --- Two-level scheduler support -----------------------------------------
  // A component owning an ordered event stream (a Channel's delivery lane)
  // stamps each logical event with alloc_event_seq() at creation and keeps
  // only its earliest one in the heap (via Timer::arm_keyed_abs).  Because
  // one sequence number is consumed per logical event, exactly as if each
  // were schedule()d individually, the interleaving with every other event
  // is bit-identical to the plain heap.

  /// Whether Channels route deliveries through per-link lanes (default on;
  /// the DCP_LANES=0 environment escape hatch or set_use_lanes(false)
  /// selects the plain one-heap-entry-per-packet path).
  bool use_lanes() const { return use_lanes_; }
  void set_use_lanes(bool on) { use_lanes_ = on; }

  /// Whether Channels static-dispatch deliveries to the concrete node type
  /// cached at connect() time (default on; the DCP_DEVIRT=0 environment
  /// escape hatch or set_use_devirt(false) selects the virtual
  /// Node::receive hop).  Both paths run identical bodies, so outputs are
  /// bit-identical — enforced by tests/test_devirt.cpp.
  bool use_devirt() const { return use_devirt_; }
  void set_use_devirt(bool on) { use_devirt_ = on; }

  /// Stamps a logical event with the next global tie-break sequence.
  std::uint64_t alloc_event_seq() { return queue_.alloc_seq(); }

  /// True when a logical event keyed (t, seq) precedes everything pending
  /// in the heap — i.e. a lane may run it now without a heap round trip.
  bool lane_may_run(Time t, std::uint64_t seq) const { return queue_.before_top(t, seq); }

  /// Accounts a lane-coalesced delivery so events_processed() matches the
  /// plain heap (which would have popped one event for it).  The coalesced
  /// record's (t, seq) becomes the current event key, so anything it
  /// allocates logs the right parent in a shard window.
  void note_coalesced_event(Time t, std::uint64_t seq) {
    ++events_processed_;
    queue_.set_current_event(t, seq);
  }

  /// Event-slab capacity (slots ever allocated) — surfaced so CorePerf can
  /// report per-run allocation behaviour alongside events/sec.
  std::size_t event_slots_allocated() const { return queue_.slots_allocated(); }

  /// Bytes held by the event queue's slabs and heaps (see
  /// EventQueue::arena_bytes) — one term of ShardGroup::arena_bytes().
  std::uint64_t event_arena_bytes() const { return queue_.arena_bytes(); }

  /// High-water mark of the scheduling heap — O(active links + timers)
  /// under the two-level scheduler vs O(packets in flight) without it.
  std::size_t peak_heap_size() const { return queue_.peak_heap_size(); }

  /// The invariant-checking observer armed on this simulation, if any (see
  /// check/observer.h).  Components consult this at their hook sites; the
  /// unarmed fast path is a single null check.
  CheckObserver* check_observer() const { return check_observer_; }
  void set_check_observer(CheckObserver* ob) { check_observer_ = ob; }

  // --- Space-parallel sharding support (see sim/shard.h) --------------------
  // A ShardGroup gives every shard its own Simulator but one logical
  // sequence space; these hooks are inert (and the remap-hook list empty)
  // in ordinary single-simulator runs.

  /// (time, seq) key of the event currently executing — stamps receiver
  /// stat journals and window allocation logs.
  Time current_event_time() const { return queue_.current_event_time(); }
  std::uint64_t current_event_seq() const { return queue_.current_event_seq(); }

  /// Setup-phase shared sequence counter (nullptr restores the private one).
  void set_shared_seq(std::uint64_t* shared) { queue_.set_shared_seq(shared); }
  /// Window-mode entry/exit; see EventQueue::begin_shard_window.
  void begin_shard_window(std::vector<ShardSeqAlloc>* log) { queue_.begin_shard_window(log); }
  void end_shard_window(const std::vector<std::uint64_t>& committed) {
    queue_.end_shard_window(committed);
  }

  /// Inserts a cross-shard boundary event with its committed (t, seq) key —
  /// consumed at a window barrier, never during parallel execution.
  void schedule_cross(Time t, std::uint64_t seq, EventCallback fn) {
    queue_.push_keyed(t, seq, std::move(fn));
  }

  /// Registered components holding stamped-but-unfired sequences outside
  /// the event queue (channel lane records, receiver stat journals, pending
  /// flow finalizations) rewrite them here at every window barrier.
  void add_seq_remap_hook(std::function<void(const SeqRemap&)> hook) {
    remap_hooks_.push_back(std::move(hook));
  }
  void run_seq_remap_hooks(const SeqRemap& remap) {
    for (auto& h : remap_hooks_) h(remap);
  }

  /// Advances the clock to a window/slice boundary without running events
  /// (mirrors what run(until) does when the next event lies beyond it).
  void sync_now(Time t) {
    if (t > now_) now_ = t;
  }

  // --- Checkpoint/restore support (see sim/snapshot.h) ----------------------

  /// Overwrites the clock and event counter with a snapshot's values.
  void restore_clock(Time now, std::uint64_t events) {
    now_ = now;
    events_processed_ = events;
  }
  /// Overwrites the current-event key (allocation parent) from a snapshot.
  void restore_current_event(Time t, std::uint64_t seq) { queue_.set_current_event(t, seq); }
  std::uint64_t snapshot_next_seq() const { return queue_.snapshot_next_seq(); }
  void restore_next_seq(std::uint64_t v) { queue_.restore_next_seq(v); }
  /// Re-establishes the deadline heap's top-accuracy invariant after a
  /// batch of Timer::restore_arm() calls.
  void settle_deadline_top() { queue_.settle_deadline_top(); }

 private:
  friend class Timer;

  static thread_local const Simulator* tls_active_;

  EventQueue queue_;
  Time now_ = 0;
  std::uint64_t events_processed_ = 0;
  bool stopped_ = false;
  bool use_lanes_ = true;
  bool use_devirt_ = true;
  CheckObserver* check_observer_ = nullptr;
  std::vector<std::function<void(const SeqRemap&)>> remap_hooks_;
};

/// A persistent, self-rescheduling event: the callback is registered once
/// and survives every fire, so re-arming costs a heap insert only — no
/// slot churn, no callback reconstruction, no O(log n) cancel on the
/// cancel+reschedule pattern.  Drop-in replacement for the high-frequency
/// EventId timers (port serialization-done, NIC pacing wakeups, RetransQ
/// PCIe drains, CC timers): arm() consumes one tie-break sequence exactly
/// like schedule() did, so firing order is unchanged.
///
/// The owner must not outlive the Simulator (components already hold
/// Simulator references, so destruction order is unchanged).  The callback
/// may re-arm its own timer; pending() is false while it runs.
class Timer {
 public:
  Timer(Simulator& sim, EventCallback fn)
      : sim_(sim), slot_(sim.queue_.timer_create(std::move(fn))) {}
  ~Timer() { sim_.queue_.timer_destroy(slot_); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re-)arms `delay` from now; equivalent to cancel + schedule(delay).
  void arm(Time delay) { sim_.queue_.timer_arm(slot_, sim_.now() + delay); }
  /// (Re-)arms at absolute time `t` (clamped to now, like schedule_at).
  void arm_at(Time t) { sim_.queue_.timer_arm(slot_, t < sim_.now() ? sim_.now() : t); }
  /// (Re-)arms with an explicit (t, seq) key stamped via alloc_event_seq():
  /// the two-level scheduler's lane-head entry.
  void arm_keyed_abs(Time t, std::uint64_t seq) { sim_.queue_.timer_arm_keyed(slot_, t, seq); }
  /// (Re-)arms `delay` from now in the DEADLINE class: extending a pending
  /// deadline is O(1) and the entry parks in the second-level heap.  Use
  /// for timers re-armed per-ACK but firing per-timeout (RTO, keepalive,
  /// stall checks), so packet events never sift across them.
  void arm_deadline(Time delay) { sim_.queue_.timer_arm_deadline(slot_, sim_.now() + delay); }
  void arm_deadline_at(Time t) {
    sim_.queue_.timer_arm_deadline(slot_, t < sim_.now() ? sim_.now() : t);
  }
  /// Removes from the heap if pending; harmless no-op otherwise.
  void cancel() { sim_.queue_.timer_cancel(slot_); }
  bool pending() const { return sim_.queue_.timer_pending(slot_); }

  /// Checkpoint hooks: the exact heap arm (kind + key) for serialization,
  /// and its restore-side overlay (see sim/snapshot.h).
  EventQueue::TimerArm arm_state() const { return sim_.queue_.timer_arm_state(slot_); }
  void restore_arm(const EventQueue::TimerArm& a) { sim_.queue_.timer_restore(slot_, a); }

 private:
  Simulator& sim_;
  std::uint32_t slot_;
};

}  // namespace dcp
