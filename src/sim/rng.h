#pragma once
// Deterministic random-number utilities.  Every stochastic component takes
// a seed so experiments are exactly reproducible.

#include <array>
#include <cstddef>
#include <cstdint>
#include <random>
#include <span>
#include <sstream>
#include <vector>

namespace dcp {

/// 64-bit mix hash used for ECMP and seed derivation (deterministic across
/// runs, good spread).
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : gen_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(gen_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
  }

  /// Exponentially distributed value with the given mean (for Poisson
  /// arrival processes).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(gen_);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Picks a uniformly random element index of a non-empty range.
  std::size_t pick_index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  std::mt19937_64& engine() { return gen_; }

  /// Derives an independent deterministic stream from a seed and a tag.
  /// Components with an optional stochastic feature (e.g. fault injection)
  /// draw from their own substream so enabling the feature never perturbs
  /// the draws of the base stream.
  static Rng substream(std::uint64_t seed, std::uint64_t tag) {
    return Rng(mix64(seed ^ mix64(tag)));
  }

  /// Checkpoint hook (sim/snapshot.h): the engine round-trips through its
  /// standard-guaranteed textual iostream representation.  Templated so
  /// this low-level header needs no dependency on the snapshot layer.
  template <typename IO>
  void checkpoint(IO& io) {
    std::string s;
    if (io.saving()) {
      std::ostringstream os;
      os << gen_;
      s = os.str();
    }
    io.str(s);
    if (!io.saving() && io.ok()) {
      std::istringstream is(s);
      is >> gen_;
    }
  }

 private:
  std::mt19937_64 gen_;
};

/// Buffered uniform-[0,1) draws for hot Bernoulli sites.  A refill pulls
/// kBatch values from the caller's engine through the same distribution
/// `Rng::uniform()` constructs (it is stateless on every implementation we
/// build against, consuming exactly one engine word per double), so the
/// k-th `next()` returns bit-identically the k-th `uniform()` would have —
/// what the batch buys is one tight loop instead of a distribution
/// construction and two function calls per draw.
///
/// The caveat is ordering: a refill consumes engine words *ahead* of time,
/// so the owner must be the engine's only consumer while batching — any
/// interleaved direct draw from the same engine would see a shifted
/// stream.  Owners gate on that (see Switch::draw_chance: batching is
/// enabled only under load-balancing policies whose port selection never
/// touches the base RNG).
class UniformPrefetch {
 public:
  double next(std::mt19937_64& gen) {
    if (pos_ == filled_) refill(gen);
    return buf_[pos_++];
  }

  /// Checkpoint hook: unconsumed prefetched draws are part of the stream
  /// position and must survive a restore bit-exactly.
  template <typename IO>
  void checkpoint(IO& io) {
    io.pod(buf_);
    std::uint64_t p = pos_;
    std::uint64_t f = filled_;
    io.pod(p);
    io.pod(f);
    if (!io.saving()) {
      pos_ = static_cast<std::size_t>(p);
      filled_ = static_cast<std::size_t>(f);
    }
  }

 private:
  static constexpr std::size_t kBatch = 64;

  void refill(std::mt19937_64& gen) {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    for (std::size_t i = 0; i < kBatch; ++i) buf_[i] = dist(gen);
    pos_ = 0;
    filled_ = kBatch;
  }

  std::array<double, kBatch> buf_{};
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
};

}  // namespace dcp
