#include "sim/logger.h"

#include <cstring>
#include <mutex>

namespace dcp {
namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

// One mutex for every Logger: distinct Logger objects routinely share a
// sink (stderr, or one capture file in tests), so the guard must be
// process-wide, not per-instance.
std::mutex g_emit_mutex;
}  // namespace

void Logger::log(LogLevel level, Time now, std::string_view component, std::string_view msg) {
  if (!enabled(level)) return;
  // Format the whole line first, then emit it with a single locked write:
  // concurrent simulations produce whole lines, never interleaved pieces.
  char buf[512];
  int len = std::snprintf(buf, sizeof(buf), "[%12.3fus] %-5s %.*s: %.*s\n", to_us(now),
                          level_name(level), static_cast<int>(component.size()), component.data(),
                          static_cast<int>(msg.size()), msg.data());
  if (len < 0) return;
  if (len >= static_cast<int>(sizeof(buf))) {  // truncated: keep the newline
    len = static_cast<int>(sizeof(buf)) - 1;
    buf[len - 1] = '\n';
  }
  std::lock_guard<std::mutex> lk(g_emit_mutex);
  std::fwrite(buf, 1, static_cast<std::size_t>(len), out_);
}

}  // namespace dcp
