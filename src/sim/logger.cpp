#include "sim/logger.h"

namespace dcp {
namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void Logger::log(LogLevel level, Time now, std::string_view component, std::string_view msg) {
  if (!enabled(level)) return;
  std::fprintf(out_, "[%12.3fus] %-5s %.*s: %.*s\n", to_us(now), level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace dcp
