#include "sim/simulator.h"

#include <cstdlib>
#include <cstring>

namespace dcp {

Simulator::Simulator() {
  // DCP_LANES=0 is the escape hatch back to one-heap-entry-per-packet
  // scheduling — used by the digest-equality suite and for bisection when
  // a lane bug is suspected.  Any other value (or unset) keeps lanes on.
  if (const char* env = std::getenv("DCP_LANES")) {
    if (std::strcmp(env, "0") == 0) use_lanes_ = false;
  }
}

thread_local const Simulator* Simulator::tls_active_ = nullptr;

void Simulator::run(Time until) {
  const Simulator* outer = tls_active_;
  tls_active_ = this;
  stopped_ = false;
  while (!stopped_) {
    const Time t = queue_.next_time();
    if (t == kTimeInfinity || t > until) {
      if (t != kTimeInfinity && until != kTimeInfinity) now_ = until;
      break;
    }
    queue_.pop_and_run(now_);
    ++events_processed_;
  }
  tls_active_ = outer;
}

bool Simulator::run_one() {
  const Simulator* outer = tls_active_;
  tls_active_ = this;
  const bool ran = queue_.pop_and_run(now_);
  tls_active_ = outer;
  if (!ran) return false;
  ++events_processed_;
  return true;
}

}  // namespace dcp
