#include "sim/simulator.h"

namespace dcp {

void Simulator::run(Time until) {
  stopped_ = false;
  while (!stopped_) {
    const Time t = queue_.next_time();
    if (t == kTimeInfinity || t > until) {
      if (t != kTimeInfinity && until != kTimeInfinity) now_ = until;
      return;
    }
    queue_.pop_and_run(now_);
    ++events_processed_;
  }
}

bool Simulator::run_one() {
  if (!queue_.pop_and_run(now_)) return false;
  ++events_processed_;
  return true;
}

}  // namespace dcp
