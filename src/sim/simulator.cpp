#include "sim/simulator.h"

#include <cstdlib>
#include <cstring>

namespace dcp {

Simulator::Simulator() {
  // DCP_LANES=0 is the escape hatch back to one-heap-entry-per-packet
  // scheduling — used by the digest-equality suite and for bisection when
  // a lane bug is suspected.  Any other value (or unset) keeps lanes on.
  if (const char* env = std::getenv("DCP_LANES")) {
    if (std::strcmp(env, "0") == 0) use_lanes_ = false;
  }
}

void Simulator::run(Time until) {
  stopped_ = false;
  while (!stopped_) {
    const Time t = queue_.next_time();
    if (t == kTimeInfinity || t > until) {
      if (t != kTimeInfinity && until != kTimeInfinity) now_ = until;
      return;
    }
    queue_.pop_and_run(now_);
    ++events_processed_;
  }
}

bool Simulator::run_one() {
  if (!queue_.pop_and_run(now_)) return false;
  ++events_processed_;
  return true;
}

}  // namespace dcp
