#include "sim/simulator.h"

#include <cstdlib>
#include <cstring>

namespace dcp {

Simulator::Simulator() {
  // DCP_LANES=0 is the escape hatch back to one-heap-entry-per-packet
  // scheduling — used by the digest-equality suite and for bisection when
  // a lane bug is suspected.  Any other value (or unset) keeps lanes on.
  if (const char* env = std::getenv("DCP_LANES")) {
    if (std::strcmp(env, "0") == 0) use_lanes_ = false;
  }
  // DCP_DEVIRT=0 restores the virtual Node::receive hop at channel
  // delivery (same bodies, vtable dispatch) — the A/B lever for the
  // digest-equality suite and for bisecting dispatch-layer suspicion.
  if (const char* env = std::getenv("DCP_DEVIRT")) {
    if (std::strcmp(env, "0") == 0) use_devirt_ = false;
  }
}

thread_local const Simulator* Simulator::tls_active_ = nullptr;

void Simulator::run(Time until) {
  const Simulator* outer = tls_active_;
  tls_active_ = this;
  stopped_ = false;
  while (!stopped_) {
    // One fused top-selection per event (next_time() + pop would scan the
    // three heap tops twice).
    const EventQueue::PopResult r = queue_.pop_and_run_bounded(until, now_);
    if (r == EventQueue::PopResult::kRan) {
      ++events_processed_;
      continue;
    }
    if (r == EventQueue::PopResult::kBeyond && until != kTimeInfinity) now_ = until;
    break;
  }
  tls_active_ = outer;
}

bool Simulator::run_one() {
  const Simulator* outer = tls_active_;
  tls_active_ = this;
  const bool ran = queue_.pop_and_run(now_);
  tls_active_ = outer;
  if (!ran) return false;
  ++events_processed_;
  return true;
}

}  // namespace dcp
