#include "check/observer.h"

#include "sim/snapshot.h"
#include "core/dcp_transport.h"
#include "host/host.h"

namespace dcp {

DcpReceiver::DcpReceiver(Simulator& sim, Host& host, FlowSpec spec, TransportConfig cfg)
    : ReceiverTransport(sim, host, spec, cfg),
      layout_(spec.bytes, spec.msg_bytes, cfg.mtu_payload),
      tracker_(layout_.all_msg_pkts(), cfg.outstanding_msgs),
      rretry_(cfg.outstanding_msgs, 0) {}

void DcpReceiver::bounce_header_only(const Packet& pkt) {
  // §4.1 step 2: swap source/destination (IP + QPN) and forward the HO
  // packet to the sender.  It rides the control queue end to end.
  Packet ho = make_control(PktType::kHeaderOnly, HeaderSizes::kDcpHeaderOnly);
  ho.tag = DcpTag::kHeaderOnly;
  ho.queue_class = QueueClass::kControl;
  ho.psn = pkt.psn;
  ho.msn = pkt.msn;
  ho.retry_no = pkt.retry_no;
  dstats_.ho_bounced++;
  stats_.ho_received++;
  send_control(std::move(ho));
}

void DcpReceiver::send_emsn_ack() {
  Packet ack = make_control(PktType::kAck, HeaderSizes::kDcpAck);
  ack.tag = DcpTag::kAck;
  ack.emsn = tracker_.emsn();
  // Cumulative arrival count: the sender's flow-control credit (awin).
  ack.ack_psn = static_cast<std::uint32_t>(stats_.data_packets);
  ack.echo_ts = last_echo_;  // RTT echo for delay-based CC (TIMELY)
  send_control(std::move(ack));
  arm_ack_keepalive();
}

void DcpReceiver::arm_ack_keepalive() {
  if (keepalive_.pending()) return;  // periodic chain already live
  keepalive_.arm_deadline(ka_backoff_);
}

void DcpReceiver::on_keepalive() {
  if (complete() && post_complete_kas_ >= 12) return;  // give up; sender RTO owns it
  if (sim_.now() - last_activity_ >= ka_backoff_) {
    Packet ack = make_control(PktType::kAck, HeaderSizes::kDcpAck);
    ack.tag = DcpTag::kAck;
    ack.emsn = tracker_.emsn();
    ack.ack_psn = static_cast<std::uint32_t>(stats_.data_packets);
    ack.echo_ts = last_echo_;
    send_control(std::move(ack));
    if (complete()) ++post_complete_kas_;
    ka_backoff_ = std::min<Time>(2 * ka_backoff_, microseconds(200));
  }
  arm_ack_keepalive();
}

void DcpReceiver::on_packet(Packet pkt) {
  if (pkt.type == PktType::kHeaderOnly) {
    bounce_header_only(pkt);
    return;
  }
  if (pkt.type != PktType::kData) return;
  stats_.data_packets++;
  last_activity_ = sim_.now();
  last_echo_ = pkt.sent_at;
  ka_backoff_ = microseconds(50);
  if (!complete()) post_complete_kas_ = 0;
  arm_ack_keepalive();

  // Credit ACK every 8 arrivals so the sender's awin stays clocked even
  // while messages are incomplete (a dropped credit ACK is healed by the
  // next one — the counter is cumulative).
  if (stats_.data_packets % 8 == 0) send_emsn_ack();

  if (ecn_enabled_ && pkt.ecn_ce && cnp_.should_send(sim_.now())) {
    Packet cnp = make_control(PktType::kCnp, HeaderSizes::kCnp);
    cnp.tag = DcpTag::kAck;  // CNPs share the ACK class of the DCP tag space
    send_control(std::move(cnp));
  }

  const std::uint32_t msn = pkt.msn;
  if (msn < tracker_.emsn()) {
    // Stale duplicate of a completed message (e.g. a timeout round raced a
    // lost ACK): re-ACK so the sender can advance.
    stats_.duplicate_packets++;
    send_emsn_ack();
    return;
  }
  if (msn >= tracker_.emsn() + cfg_.outstanding_msgs || msn >= layout_.num_msgs) {
    // Outside the tracking window; the sender's message window makes this
    // unreachable, but drop defensively rather than corrupt counters.
    stats_.duplicate_packets++;
    return;
  }

  // Timeout-round reconciliation (§4.5): the packet's sRetryNo must match
  // the receiver's rRetryNo for this message.
  std::uint8_t& rretry = rretry_[msn % cfg_.outstanding_msgs];
  if (pkt.retry_no > rretry) {
    // A new timeout round: restart counting for this message.
    tracker_.reset_message(msn);
    rretry = pkt.retry_no;
    dstats_.counter_resets++;
  } else if (pkt.retry_no < rretry) {
    // Straggler from a superseded round; it must not be counted.
    dstats_.stale_retry_packets++;
    return;
  }

  // Order-tolerant placement: RETH/MSN in every packet lets the payload go
  // straight to application memory; only the counter is touched.  Placement
  // is idempotent across timeout rounds, so unique bytes are accounted at
  // message completion rather than per packet.
  const std::uint32_t prev_emsn = tracker_.emsn();
  if (!tracker_.count_packet(msn)) stats_.duplicate_packets++;

  if (tracker_.emsn() > prev_emsn) {
    // Messages complete in eMSN order (CQEs for the application); reset the
    // retry slots the window just freed and ACK the new eMSN.
    for (std::uint32_t m = prev_emsn; m < tracker_.emsn(); ++m) {
      rretry_[m % cfg_.outstanding_msgs] = 0;
      stats_.bytes_received += layout_.msg_bytes_of(m);
      if (CheckObserver* ob = sim_.check_observer()) ob->on_msg_complete(spec_.id, m);
    }
    send_emsn_ack();
    if (complete()) mark_complete();
  }
}

// ---------------------------------------------------------------------------
// DcpBitmapReceiver (§4.5 orthogonality variant)
// ---------------------------------------------------------------------------

DcpBitmapReceiver::DcpBitmapReceiver(Simulator& sim, Host& host, FlowSpec spec,
                                     TransportConfig cfg)
    : ReceiverTransport(sim, host, spec, cfg),
      layout_(spec.bytes, spec.msg_bytes, cfg.mtu_payload),
      received_(layout_.total_pkts, false) {}

void DcpBitmapReceiver::bounce_header_only(const Packet& pkt) {
  Packet ho = make_control(PktType::kHeaderOnly, HeaderSizes::kDcpHeaderOnly);
  ho.tag = DcpTag::kHeaderOnly;
  ho.queue_class = QueueClass::kControl;
  ho.psn = pkt.psn;
  ho.msn = pkt.msn;
  ho.retry_no = pkt.retry_no;
  stats_.ho_received++;
  send_control(std::move(ho));
}

void DcpBitmapReceiver::send_emsn_ack() {
  Packet ack = make_control(PktType::kAck, HeaderSizes::kDcpAck);
  ack.tag = DcpTag::kAck;
  ack.emsn = emsn_;
  ack.ack_psn = static_cast<std::uint32_t>(stats_.data_packets);
  ack.echo_ts = last_echo_;
  send_control(std::move(ack));
  arm_ack_keepalive();
}

void DcpBitmapReceiver::arm_ack_keepalive() {
  if (keepalive_.pending()) return;
  keepalive_.arm_deadline(ka_backoff_);
}

void DcpBitmapReceiver::on_keepalive() {
  if (complete() && post_complete_kas_ >= 12) return;
  if (sim_.now() - last_activity_ >= ka_backoff_) {
    Packet ack = make_control(PktType::kAck, HeaderSizes::kDcpAck);
    ack.tag = DcpTag::kAck;
    ack.emsn = emsn_;
    ack.ack_psn = static_cast<std::uint32_t>(stats_.data_packets);
    ack.echo_ts = last_echo_;
    send_control(std::move(ack));
    if (complete()) ++post_complete_kas_;
    ka_backoff_ = std::min<Time>(2 * ka_backoff_, microseconds(200));
  }
  arm_ack_keepalive();
}

void DcpBitmapReceiver::on_packet(Packet pkt) {
  if (pkt.type == PktType::kHeaderOnly) {
    bounce_header_only(pkt);
    return;
  }
  if (pkt.type != PktType::kData) return;
  stats_.data_packets++;
  last_activity_ = sim_.now();
  last_echo_ = pkt.sent_at;
  ka_backoff_ = microseconds(50);
  if (!complete()) post_complete_kas_ = 0;
  arm_ack_keepalive();

  if (ecn_enabled_ && pkt.ecn_ce && cnp_.should_send(sim_.now())) {
    Packet cnp = make_control(PktType::kCnp, HeaderSizes::kCnp);
    cnp.tag = DcpTag::kAck;
    send_control(std::move(cnp));
  }
  if (pkt.psn >= layout_.total_pkts) return;

  // The bitmap makes duplicates (timeout rounds, races) naturally
  // idempotent — no sRetryNo reconciliation needed.
  if (received_[pkt.psn]) {
    stats_.duplicate_packets++;
    send_emsn_ack();  // re-ACK so a stalled sender advances
    return;
  }
  received_[pkt.psn] = true;
  if (pkt.psn != scan_) stats_.out_of_order_packets++;

  // Advance the contiguous frontier and with it the eMSN.  (Per-message
  // completeness and contiguous-frontier advancement coincide for eMSN:
  // the eMSN-th message only completes once everything before it has.)
  const std::uint32_t prev_emsn = emsn_;
  while (scan_ < layout_.total_pkts && received_[scan_]) ++scan_;
  while (emsn_ < layout_.num_msgs &&
         scan_ >= layout_.msg_start_psn(emsn_) + layout_.msg_pkts(emsn_)) {
    stats_.bytes_received += layout_.msg_bytes_of(emsn_);
    if (CheckObserver* ob = sim_.check_observer()) ob->on_msg_complete(spec_.id, emsn_);
    ++emsn_;
  }
  if (emsn_ > prev_emsn) {
    send_emsn_ack();
    if (complete()) mark_complete();
  }
}


void DcpReceiver::checkpoint_extra(StateIO& io) {
  tracker_.checkpoint(io);
  io.vec(rretry_);
  io.pod(dstats_);
  io.pod(last_activity_);
  io.pod(ka_backoff_);
  io.pod(post_complete_kas_);
  io.pod(last_echo_);
  io.timer(keepalive_);
}

void DcpBitmapReceiver::checkpoint_extra(StateIO& io) {
  io.vbool(received_);
  io.pod(emsn_);
  io.pod(scan_);
  io.pod(last_activity_);
  io.pod(ka_backoff_);
  io.pod(post_complete_kas_);
  io.pod(last_echo_);
  io.timer(keepalive_);
}

}  // namespace dcp
