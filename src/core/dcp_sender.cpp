#include <algorithm>

#include "sim/snapshot.h"

#include "core/dcp_transport.h"
#include "host/host.h"

namespace dcp {

DcpSender::DcpSender(Simulator& sim, Host& host, FlowSpec spec, TransportConfig cfg)
    : SenderTransport(sim, host, spec, cfg),
      layout_(spec.bytes, spec.msg_bytes, cfg.mtu_payload),
      sretry_(layout_.num_msgs, 0) {}

Packet DcpSender::build_packet(std::uint32_t psn, bool retransmit, std::uint8_t retry_no) {
  Packet p = make_data_packet(psn, dcp_data_header_bytes(spec_.op));
  p.tag = DcpTag::kData;
  const std::uint32_t msn = layout_.msn_of_psn(psn);
  p.msn = msn;
  p.ssn = msn;  // posting order mirrors MSN for our message streams
  p.retry_no = retry_no;
  p.is_retransmit = retransmit;
  p.has_reth = spec_.op != RdmaOp::kSend;
  p.remote_addr = static_cast<std::uint64_t>(psn) * cfg_.mtu_payload;
  p.last_of_msg = (psn + 1 == layout_.msg_start_psn(msn) + layout_.msg_pkts(msn));
  return p;
}

std::uint64_t DcpSender::inflight_bytes_estimate() const {
  const std::uint64_t sent = stats_.data_packets_sent;
  const std::uint64_t accounted = rcnt_ + ho_total_ + flushed_;
  const std::uint64_t inflight_pkts = sent > accounted ? sent - accounted : 0;
  return inflight_pkts * cfg_.mtu_payload;
}

bool DcpSender::protocol_has_packet() {
  if (done()) return false;
  // Prune retransmission entries for messages acknowledged since they were
  // queued (in hardware: a QPC comparison during WQE processing).
  while (!rq_.staging_empty() && rq_.peek_staged().msn < una_msn_) {
    rq_.pop_staged();
    dstats_.stale_ho++;
  }
  if (rq_.staging_empty() && !rq_.host_empty()) start_fetch();
  while (!timeout_retx_.empty() && layout_.msn_of_psn(timeout_retx_.front()) < una_msn_) {
    timeout_retx_.pop_front();
  }
  // The available window (awin) gates retransmissions too (§4.3: the fetch
  // is bounded by awin/MTU) — otherwise trim->HO->retransmit loops blast at
  // line rate regardless of congestion.
  if (inflight_bytes_estimate() >= cc_->window_bytes()) return false;
  if (!rq_.staging_empty() || !timeout_retx_.empty()) return true;
  if (snd_nxt_ >= layout_.total_pkts) return false;
  // Message window: at most `outstanding_msgs` messages in flight (the
  // receiver tracks exactly that many counters).
  return layout_.msn_of_psn(snd_nxt_) < una_msn_ + cfg_.outstanding_msgs;
}

Packet DcpSender::protocol_next_packet() {
  // Transmitting is activity: the coarse timer watches for *stalls*, not
  // for slow fair-shared progress through a large message.
  last_progress_ = sim_.now();
  // Priority 1: HO-triggered precise retransmissions (already fetched).
  if (!rq_.staging_empty()) {
    RetransQ::Entry e = rq_.pop_staged();
    if (rq_.staging_empty() && !rq_.host_empty()) start_fetch();
    dstats_.ho_triggered_retx++;
    return build_packet(e.psn, /*retransmit=*/true, retry_of(e.msn));
  }
  // Priority 2: coarse-timeout retransmissions.
  if (!timeout_retx_.empty()) {
    const std::uint32_t psn = timeout_retx_.front();
    timeout_retx_.pop_front();
    dstats_.timeout_retx_packets++;
    return build_packet(psn, /*retransmit=*/true, retry_of(layout_.msn_of_psn(psn)));
  }
  // Priority 3: new data.
  const std::uint32_t psn = snd_nxt_++;
  return build_packet(psn, /*retransmit=*/false, retry_of(layout_.msn_of_psn(psn)));
}

void DcpSender::start_fetch() {
  if (fetch_in_flight_ || rq_.host_empty()) return;
  fetch_in_flight_ = true;
  // Batch size: min(16, len, awin/MTU) — paper §4.3 step 2.
  std::uint64_t by_window = cc_->window_bytes() == CongestionControl::kNoWindowCap
                                ? cfg_.retrans_batch
                                : std::max<std::uint64_t>(1, cc_->window_bytes() / cfg_.mtu_payload);
  fetch_batch_ = static_cast<std::size_t>(
      std::min<std::uint64_t>({cfg_.retrans_batch, rq_.len(), by_window}));
  // Deadline-class: armed once per fetch, always from idle, so the (t,seq)
  // key is identical to a main-heap arm — but the entry parks off the
  // packet heap for the whole PCIe round trip.
  fetch_done_.arm_deadline(cfg_.pcie_rtt);
}

void DcpSender::on_fetch_done() {
  fetch_in_flight_ = false;
  // Drop entries for messages that completed while the fetch was in
  // flight (checked against the QPC, costs nothing extra).
  rq_.fetch_to_staging(fetch_batch_);
  dstats_.pcie_fetches++;
  kick_nic();
}

void DcpSender::arm_msg_timer() {
  if (done()) return;
  if (msg_timer_.pending()) return;  // periodic check already armed
  if (last_progress_ == 0) last_progress_ = sim_.now();
  msg_timer_.arm_deadline(cfg_.dcp_msg_timeout);
}

void DcpSender::on_msg_timeout() {
  if (done()) return;
  const Time quiet_needed = cfg_.dcp_msg_timeout * timeout_backoff_;
  const bool quiet = sim_.now() - last_progress_ >= quiet_needed;
  const bool una_msg_sent = snd_nxt_ > layout_.msg_start_psn(una_msn_);
  const bool recovery_in_flight =
      !timeout_retx_.empty() || !rq_.staging_empty() || !rq_.host_empty();
  if (!quiet || !una_msg_sent || recovery_in_flight) {
    arm_msg_timer();
    return;
  }
  stats_.timeouts++;
  cc_->on_timeout();
  // Write off everything outstanding: whatever is unaccounted was lost
  // silently (the only way to reach a quiet timeout with credit missing).
  const std::uint64_t accounted = rcnt_ + ho_total_ + flushed_;
  if (stats_.data_packets_sent > accounted) {
    flushed_ += stats_.data_packets_sent - accounted;
  }
  // Retransmit every packet of the unaMSN-th message with a bumped
  // sRetryNo; the receiver restarts its counter for the new round (§4.5).
  const std::uint32_t msn = una_msn_;
  if (sretry_[msn] < 255) sretry_[msn]++;
  const std::uint32_t start = layout_.msg_start_psn(msn);
  const std::uint32_t count = layout_.msg_pkts(msn);
  const std::uint32_t sent_end = std::min(snd_nxt_, start + count);
  for (std::uint32_t p = start; p < sent_end; ++p) timeout_retx_.push_back(p);
  timeout_backoff_ = std::min(timeout_backoff_ * 2, 8);
  last_progress_ = sim_.now();  // the new round counts as activity
  arm_msg_timer();
  kick_nic();
}

void DcpSender::on_packet(Packet pkt) {
  switch (pkt.type) {
    case PktType::kCnp:
      stats_.cnp_received++;
      cc_->on_cnp();
      return;

    case PktType::kHeaderOnly: {
      // Bounced from the receiver: precise loss notification.  An arriving
      // HO also proves the lossless control plane is alive and recovery is
      // progressing, so the coarse fallback stays quiet (§4.5 — it only
      // needs to fire when the control plane is *violated*).
      stats_.ho_received++;
      ho_total_++;  // a trimmed transmission is accounted: credit returns
      last_progress_ = sim_.now();
      timeout_backoff_ = 1;
      const std::uint32_t msn = pkt.msn;
      if (msn < una_msn_) {
        dstats_.stale_ho++;  // message already acknowledged; nothing to do
        kick_nic();
        return;
      }
      rq_.push(RetransQ::Entry{msn, pkt.psn});
      if (rq_.staging_empty()) start_fetch();
      kick_nic();
      return;
    }

    case PktType::kAck: {
      if (pkt.echo_ts >= 0) cc_->on_rtt_sample(sim_.now() - pkt.echo_ts);
      // Credit update: cumulative receiver arrival count (flow control).
      if (pkt.ack_psn > rcnt_) {
        rcnt_ = pkt.ack_psn;
        last_progress_ = sim_.now();
        kick_nic();
      }
      if (pkt.emsn > una_msn_) {
        const std::uint32_t prev = una_msn_;
        una_msn_ = pkt.emsn;
        const std::uint64_t newly = static_cast<std::uint64_t>(layout_.msg_start_psn(una_msn_) -
                                                               layout_.msg_start_psn(prev)) *
                                    cfg_.mtu_payload;
        cc_->on_ack(newly);
        // Timeout-round retransmissions of acknowledged messages are moot.
        while (!timeout_retx_.empty() &&
               layout_.msn_of_psn(timeout_retx_.front()) < una_msn_) {
          timeout_retx_.pop_front();
        }
        if (done()) {
          msg_timer_.cancel();
          finish();
          return;
        }
        last_progress_ = sim_.now();  // progress quiets the coarse timer
        timeout_backoff_ = 1;
        kick_nic();
      }
      return;
    }

    default:
      return;
  }
}


void DcpSender::checkpoint_extra(StateIO& io) {
  rq_.checkpoint(io);
  io.pod(fetch_in_flight_);
  io.pod(fetch_batch_);
  io.pod(rcnt_);
  io.pod(ho_total_);
  io.pod(flushed_);
  io.deq(timeout_retx_);
  io.vec(sretry_);
  io.pod(snd_nxt_);
  io.pod(una_msn_);
  io.pod(last_progress_);
  io.pod(timeout_backoff_);
  io.pod(dstats_);
  io.timer(fetch_done_);
  io.timer(msg_timer_);
}

}  // namespace dcp
