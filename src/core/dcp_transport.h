#pragma once
// DCP-RNIC: the paper's primary contribution (§4).
//
// Sender (§4.3): HO-based retransmission.  A bounced header-only packet
// names the exact lost (MSN, PSN); the entry is DMA-queued into the per-QP
// RetransQ in host memory and fetched in PCIe batches; the CC module's
// available window regulates the retransmission rate.  A coarse-grained
// per-message timeout (§4.5) with the sRetryNo header field is the
// fallback for control-plane violations (ACK loss, HO loss, failures).
//
// Receiver (§4.4, §4.5): order-tolerant reception — every packet carries
// its RETH/MSN (and SSN for two-sided ops) so payloads are placed directly
// into application memory with no reorder buffer — and bitmap-free packet
// tracking via per-message counters, with eMSN-carrying ACKs.

#include <algorithm>
#include <deque>
#include <vector>

#include "core/retransq.h"
#include "core/tracking.h"
#include "host/transport.h"

namespace dcp {

/// Per-flow message geometry shared by the two ends: the flow is split
/// into messages of spec.msg_bytes (0 = single message).
struct MessageLayout {
  std::uint32_t mtu = 1000;
  std::uint64_t flow_bytes = 0;
  std::uint64_t msg_bytes = 0;     // uniform, except the tail message
  std::uint32_t num_msgs = 1;
  std::uint32_t pkts_per_full_msg = 1;
  std::uint32_t total_pkts = 1;

  MessageLayout() = default;
  MessageLayout(std::uint64_t bytes, std::uint64_t msg_size, std::uint32_t mtu_payload);

  std::uint32_t msn_of_psn(std::uint32_t psn) const {
    const std::uint32_t m = psn / pkts_per_full_msg;
    return m >= num_msgs ? num_msgs - 1 : m;
  }
  std::uint32_t msg_start_psn(std::uint32_t msn) const { return msn * pkts_per_full_msg; }
  std::uint32_t msg_pkts(std::uint32_t msn) const {
    if (msn + 1 < num_msgs) return pkts_per_full_msg;
    return total_pkts - msg_start_psn(num_msgs - 1);
  }
  /// Application bytes carried by message `msn` (tail may be short).
  std::uint64_t msg_bytes_of(std::uint32_t msn) const {
    const std::uint64_t start = static_cast<std::uint64_t>(msg_start_psn(msn)) * mtu;
    const std::uint64_t end =
        std::min<std::uint64_t>(flow_bytes, start + static_cast<std::uint64_t>(msg_pkts(msn)) * mtu);
    return end > start ? end - start : 0;
  }
  std::vector<std::uint32_t> all_msg_pkts() const {
    std::vector<std::uint32_t> v(num_msgs);
    for (std::uint32_t m = 0; m < num_msgs; ++m) v[m] = msg_pkts(m);
    return v;
  }
};

struct DcpSenderStats {
  std::uint64_t ho_triggered_retx = 0;
  std::uint64_t timeout_retx_packets = 0;
  std::uint64_t pcie_fetches = 0;
  std::uint64_t stale_ho = 0;  // HO for already-completed messages
};

class DcpSender final : public SenderTransport {
 public:
  DcpSender(Simulator& sim, Host& host, FlowSpec spec, TransportConfig cfg);

  void on_packet(Packet pkt) override;
  bool done() const override { return una_msn_ >= layout_.num_msgs; }

  const DcpSenderStats& dcp_stats() const { return dstats_; }
  const RetransQ& retransq() const { return rq_; }
  std::uint32_t una_msn() const { return una_msn_; }

 protected:
  bool protocol_has_packet() override;
  Packet protocol_next_packet() override;
  void on_start() override { arm_msg_timer(); }
  void checkpoint_extra(StateIO& io) override;

 private:
  Packet build_packet(std::uint32_t psn, bool retransmit, std::uint8_t retry_no);
  void start_fetch();
  void on_fetch_done();
  void arm_msg_timer();
  void on_msg_timeout();
  std::uint8_t retry_of(std::uint32_t msn) const { return sretry_[msn]; }
  std::uint64_t inflight_bytes_estimate() const;

  MessageLayout layout_;
  RetransQ rq_;
  bool fetch_in_flight_ = false;
  std::size_t fetch_batch_ = 0;  // batch size of the PCIe fetch in flight
  // Packet-conservation flow control (the paper's `awin`): every
  // transmission is eventually accounted either by the receiver's
  // cumulative arrival counter (rcnt, carried in ACKs) or by a bounced HO.
  //   inflight = sent − rcnt − ho_arrivals − flushed
  // `flushed_` compensates for silent drops, written off by the coarse
  // timeout.  All four counters are monotone.
  std::uint64_t rcnt_ = 0;      // latest receiver arrival count seen
  std::uint64_t ho_total_ = 0;  // every HO arrival, stale or not
  std::uint64_t flushed_ = 0;
  std::deque<std::uint32_t> timeout_retx_;  // PSNs queued by the coarse timer
  std::vector<std::uint8_t> sretry_;        // per-message timeout round
  std::uint32_t snd_nxt_ = 0;
  std::uint32_t una_msn_ = 0;  // smallest unacknowledged MSN
  // The coarse timer fires only after a *quiet* period with no forward
  // progress (no ACK advance, no HO arrival) and no recovery in flight;
  // consecutive rounds for the same message back off exponentially.
  Time last_progress_ = 0;
  int timeout_backoff_ = 1;
  DcpSenderStats dstats_;
  // PCIe fetch completion: fires once per fetch; persistent first-level slot.
  Timer fetch_done_{sim_, [this] { on_fetch_done(); }};
  // The coarse per-message timer is deadline-class: one entry per flow
  // would otherwise park in the hot heap for the flow's whole life.
  Timer msg_timer_{sim_, [this] { on_msg_timeout(); }};
};

struct DcpReceiverStats {
  std::uint64_t ho_bounced = 0;
  std::uint64_t stale_retry_packets = 0;
  std::uint64_t counter_resets = 0;
};

class DcpReceiver final : public ReceiverTransport {
 public:
  DcpReceiver(Simulator& sim, Host& host, FlowSpec spec, TransportConfig cfg);

  void on_packet(Packet pkt) override;
  bool complete() const override { return tracker_.emsn() >= layout_.num_msgs; }

  const DcpReceiverStats& dcp_stats() const { return dstats_; }
  const MessageCounterTracker& tracker() const { return tracker_; }

 protected:
  void checkpoint_extra(StateIO& io) override;

 private:
  void bounce_header_only(const Packet& pkt);
  void send_emsn_ack();
  void arm_ack_keepalive();
  void on_keepalive();

  MessageLayout layout_;
  MessageCounterTracker tracker_;
  std::vector<std::uint8_t> rretry_;  // ring: per outstanding message slot
  DcpReceiverStats dstats_;
  // DCP ACKs are droppable at over-threshold switches (§4.2), and a lost
  // eMSN ACK can stall a message-window-limited sender until the coarse
  // timeout.  The receiver therefore repeats its latest eMSN ACK whenever
  // the QP goes quiet ("sends ACKs ... if necessary", §4.1): indefinitely
  // with exponential backoff while messages are incomplete (more data must
  // be coming), and a bounded number of times after completion (the final
  // ACK might have died).  The sender's coarse timeout stays the last
  // resort.  Deadline-class: one per flow, fires only on quiet QPs.
  Time last_activity_ = 0;
  Time ka_backoff_ = microseconds(50);
  int post_complete_kas_ = 0;
  Time last_echo_ = -1;  // latest data packet's transmit timestamp (RTT echo)
  Timer keepalive_{sim_, [this] { on_keepalive(); }};
};

/// §4.5 "Orthogonality": a DCP receiver that keeps a traditional
/// per-packet bitmap instead of the bitmap-free counters.  Functionally
/// equivalent (same HO bounce, same eMSN ACKs, naturally idempotent across
/// timeout rounds) but costs n bits instead of log2(n) — the trade-off
/// Table 3 quantifies.  Exists to demonstrate that HO-based retransmission
/// and order-tolerant reception do not depend on the counting scheme.
class DcpBitmapReceiver final : public ReceiverTransport {
 public:
  DcpBitmapReceiver(Simulator& sim, Host& host, FlowSpec spec, TransportConfig cfg);

  void on_packet(Packet pkt) override;
  bool complete() const override { return emsn_ >= layout_.num_msgs; }

  std::uint64_t tracking_bytes() const { return (received_.size() + 7) / 8; }
  std::uint32_t emsn() const { return emsn_; }

 protected:
  void checkpoint_extra(StateIO& io) override;

 private:
  void bounce_header_only(const Packet& pkt);
  void send_emsn_ack();
  void arm_ack_keepalive();
  void on_keepalive();

  MessageLayout layout_;
  std::vector<bool> received_;  // the bitmap the paper's design eliminates
  std::uint32_t emsn_ = 0;
  std::uint32_t scan_ = 0;  // first PSN not known-received
  Time last_activity_ = 0;
  Time ka_backoff_ = microseconds(50);
  int post_complete_kas_ = 0;
  Time last_echo_ = -1;
  Timer keepalive_{sim_, [this] { on_keepalive(); }};
};

class DcpFactory final : public TransportFactory {
 public:
  std::unique_ptr<SenderTransport> make_sender(Simulator& sim, Host& host, const FlowSpec& spec,
                                               const TransportConfig& cfg) override {
    return std::make_unique<DcpSender>(sim, host, spec, cfg);
  }
  std::unique_ptr<ReceiverTransport> make_receiver(Simulator& sim, Host& host,
                                                   const FlowSpec& spec,
                                                   const TransportConfig& cfg) override {
    if (cfg.dcp_bitmap_receiver) {
      return std::make_unique<DcpBitmapReceiver>(sim, host, spec, cfg);
    }
    return std::make_unique<DcpReceiver>(sim, host, spec, cfg);
  }
  std::string name() const override { return "DCP"; }
};

/// Wire size of a DCP data packet header for the given operation: 57 B base
/// (incl. MSN), plus RETH in *every* packet for one-sided ops, plus SSN for
/// two-sided ops (Fig. 4a).
std::uint32_t dcp_data_header_bytes(RdmaOp op);

}  // namespace dcp
