#include "core/verbs.h"

namespace dcp::verbs {

void SharedReceiveQueue::post_recv(std::uint64_t wr_id) {
  wqes_.push_back(wr_id);
  for (QueuePair* qp : bound_) qp->match_receives();
}

void QueuePair::bind_srq(SharedReceiveQueue* srq) {
  srq_ = srq;
  if (srq != nullptr) {
    srq->bound_.push_back(this);
    match_receives();
  }
}

const char* qp_state_name(QpState s) {
  switch (s) {
    case QpState::kReset: return "RESET";
    case QpState::kInit: return "INIT";
    case QpState::kRtr: return "RTR";
    case QpState::kRts: return "RTS";
    case QpState::kError: return "ERROR";
  }
  return "?";
}

Device::Device(Network& net) : net_(net) {
  net_.add_tx_listener([this](const FlowRecord& rec) {
    auto it = owner_.find(rec.spec.id);
    if (it != owner_.end()) it->second->complete(rec);
  });
  // Responder side: two-sided ops consume Receive WQEs when all their
  // bytes have been placed.
  net_.add_rx_listener([this](const FlowRecord& rec) {
    if (rec.spec.op == RdmaOp::kWrite) return;  // one-sided: no Recv WQE
    auto it = owner_.find(rec.spec.id);
    if (it != owner_.end()) it->second->received(rec);
  });
}

QueuePair& Device::create_qp(NodeId local, NodeId remote, std::uint64_t msg_bytes,
                             bool auto_connect) {
  qps_.push_back(std::unique_ptr<QueuePair>(new QueuePair(*this, local, remote, msg_bytes)));
  QueuePair& qp = *qps_.back();
  if (auto_connect) {
    qp.modify(QpState::kInit);
    qp.modify(QpState::kRtr);
    qp.modify(QpState::kRts);
  }
  return qp;
}

bool QueuePair::modify(QpState next) {
  const bool legal = (state_ == QpState::kReset && next == QpState::kInit) ||
                     (state_ == QpState::kInit && next == QpState::kRtr) ||
                     (state_ == QpState::kRtr && next == QpState::kRts) ||
                     next == QpState::kError ||
                     (state_ == QpState::kError && next == QpState::kReset);
  if (!legal) return false;
  state_ = next;
  return true;
}

void QueuePair::connect(std::function<void()> on_connected) {
  if (state_ == QpState::kReset) modify(QpState::kInit);
  // Simulated CM handshake: REQ/REP/RTU across the fabric, ~one RTT.
  Time rtt = microseconds(10);
  if (dev_.net_.path_info) {
    rtt = 2 * dev_.net_.path_info(local_, remote_).one_way_delay + microseconds(2);
  }
  dev_.net_.sim().schedule(rtt, [this, cb = std::move(on_connected)] {
    modify(QpState::kRtr);
    modify(QpState::kRts);
    if (cb) cb();
  });
}

FlowId QueuePair::post(std::uint64_t bytes, std::uint64_t wr_id, RdmaOp op) {
  if (state_ != QpState::kRts) {
    ++rejected_posts_;
    return 0;
  }
  FlowSpec spec;
  spec.src = local_;
  spec.dst = remote_;
  spec.bytes = bytes;
  spec.op = op;
  spec.msg_bytes = msg_bytes_;
  spec.start_time = dev_.net_.sim().now();
  const FlowId id = dev_.net_.start_flow(spec);
  wr_of_flow_[id] = wr_id;
  dev_.owner_[id] = this;
  ++outstanding_;
  return id;
}

void QueuePair::complete(const FlowRecord& rec) {
  WorkCompletion wc;
  wc.flow = rec.spec.id;
  wc.wr_id = wr_of_flow_.at(rec.spec.id);
  wc.completed_at = rec.tx_done;
  wc.bytes = rec.spec.bytes;
  wc.op = rec.spec.op;
  cq_.push_back(wc);
  --outstanding_;
}

bool QueuePair::poll_cq(WorkCompletion& wc) {
  if (cq_.empty()) return false;
  wc = cq_.front();
  cq_.pop_front();
  return true;
}

bool QueuePair::post_recv(std::uint64_t wr_id) {
  if (state_ == QpState::kReset || state_ == QpState::kError) {
    ++rejected_posts_;
    return false;
  }
  rq_.push_back(RecvWqe{wr_id});
  match_receives();
  return true;
}

void QueuePair::received(const FlowRecord& rec) {
  WorkCompletion wc;
  wc.flow = rec.spec.id;
  wc.bytes = rec.spec.bytes;
  wc.op = rec.spec.op;
  wc.completed_at = rec.rx_done;
  unmatched_.push_back(wc);
  match_receives();
}

void QueuePair::match_receives() {
  // Receive WQEs are consumed strictly in posting order (SSN order of the
  // incoming messages, which our flows complete in).  With an SRQ bound,
  // WQEs come from the shared pool instead of the per-QP RQ.
  if (srq_ != nullptr) {
    while (!unmatched_.empty()) {
      const auto wqe = srq_->take();
      if (!wqe.has_value()) return;
      WorkCompletion wc = unmatched_.front();
      unmatched_.pop_front();
      wc.wr_id = *wqe;
      recv_cq_.push_back(wc);
    }
    return;
  }
  while (!rq_.empty() && !unmatched_.empty()) {
    WorkCompletion wc = unmatched_.front();
    unmatched_.pop_front();
    wc.wr_id = rq_.front().wr_id;  // responder CQE names the Recv WQE
    rq_.pop_front();
    recv_cq_.push_back(wc);
  }
}

bool QueuePair::poll_recv_cq(WorkCompletion& wc) {
  if (recv_cq_.empty()) return false;
  wc = recv_cq_.front();
  recv_cq_.pop_front();
  return true;
}

}  // namespace dcp::verbs
