#include "core/dcp_transport.h"

namespace dcp {

MessageLayout::MessageLayout(std::uint64_t bytes, std::uint64_t msg_size,
                             std::uint32_t mtu_payload)
    : mtu(mtu_payload), flow_bytes(bytes) {
  msg_bytes = (msg_size == 0 || msg_size >= bytes) ? (bytes == 0 ? 1 : bytes) : msg_size;
  // Round the message size to whole packets so PSN -> MSN is a division.
  const std::uint64_t pkts_full = (msg_bytes + mtu - 1) / mtu;
  pkts_per_full_msg = static_cast<std::uint32_t>(pkts_full == 0 ? 1 : pkts_full);
  total_pkts = static_cast<std::uint32_t>((bytes + mtu - 1) / mtu);
  if (total_pkts == 0) total_pkts = 1;
  num_msgs = (total_pkts + pkts_per_full_msg - 1) / pkts_per_full_msg;
  if (num_msgs == 0) num_msgs = 1;
}

std::uint32_t dcp_data_header_bytes(RdmaOp op) {
  std::uint32_t hdr = HeaderSizes::kDcpHeaderOnly;  // 57: MAC+IP+UDP+BTH+MSN
  switch (op) {
    case RdmaOp::kWrite:
      hdr += HeaderSizes::kReth;  // in every packet (order tolerance)
      break;
    case RdmaOp::kWriteWithImm:
      hdr += HeaderSizes::kReth + HeaderSizes::kSsn;
      break;
    case RdmaOp::kSend:
      hdr += HeaderSizes::kSsn;
      break;
  }
  return hdr;
}

}  // namespace dcp
