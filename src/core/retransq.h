#pragma once
// The per-QP retransmission queue of HO-based retransmission (paper §4.3).
//
// HO packets are stateless, so loss events must be queued.  The queue
// lives in *host memory* (allocated alongside SQ/RQ/CQ, managed solely by
// the RNIC, no CPU involvement) and the RNIC fetches entries in batches of
// up to 16 over PCIe — one PCIe round trip amortized across the batch,
// which is the microarchitectural fix for challenge #1 (one-PCIe-RTT-per-
// packet retransmission would cap goodput at ~4 Gbps).

#include <cstdint>
#include <deque>

namespace dcp {

class RetransQ {
 public:
  struct Entry {
    std::uint32_t msn = 0;
    std::uint32_t psn = 0;
  };

  /// RNIC Rx path: DMA-writes a retransmission entry to host memory.
  void push(Entry e) {
    host_q_.push_back(e);
    total_pushed_++;
    if (host_q_.size() > max_len_) max_len_ = host_q_.size();
  }

  /// Host-memory queue length (mirrored in the QPC in hardware).
  std::size_t len() const { return host_q_.size(); }
  bool host_empty() const { return host_q_.empty(); }

  /// Completes a PCIe batch fetch: moves up to `batch` entries into the
  /// on-NIC staging buffer.  Returns the number fetched.
  std::size_t fetch_to_staging(std::size_t batch) {
    std::size_t n = 0;
    while (n < batch && !host_q_.empty()) {
      staging_.push_back(host_q_.front());
      host_q_.pop_front();
      ++n;
    }
    fetches_ += n > 0 ? 1 : 0;
    return n;
  }

  bool staging_empty() const { return staging_.empty(); }
  std::size_t staging_len() const { return staging_.size(); }
  const Entry& peek_staged() const { return staging_.front(); }
  Entry pop_staged() {
    Entry e = staging_.front();
    staging_.pop_front();
    return e;
  }

  std::uint64_t total_pushed() const { return total_pushed_; }
  std::uint64_t pcie_fetches() const { return fetches_; }
  std::size_t max_len() const { return max_len_; }

  /// Checkpoint hook (sim/snapshot.h): both queues plus the counters.
  template <typename IO>
  void checkpoint(IO& io) {
    io.deq(host_q_);
    io.deq(staging_);
    io.pod(total_pushed_);
    io.pod(fetches_);
    io.pod(max_len_);
  }

 private:
  std::deque<Entry> host_q_;   // in host memory
  std::deque<Entry> staging_;  // on-NIC, already fetched
  std::uint64_t total_pushed_ = 0;
  std::uint64_t fetches_ = 0;
  std::size_t max_len_ = 0;
};

}  // namespace dcp
