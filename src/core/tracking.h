#pragma once
// Receiver-side packet tracking structures (paper §4.5, Fig. 6).
//
// Three real implementations with explicit step accounting so Table 3
// (memory) and Fig. 7 (theoretical packet rate vs. OOO degree) are
// measured from the code rather than asserted:
//
//  (a) BdpBitmapTracker    — fixed BDP-sized bitmap per QP: O(1) access,
//                            BDP/MTU bits of SRAM per QP;
//  (b) LinkedChunkTracker  — chunk pool of 128-bit chunks linked on demand:
//                            memory grows with OOO degree, access to the
//                            n-th chunk costs O(n) steps;
//  (c) MessageCounterTracker — DCP's bitmap-free scheme: a multi-bit packet
//                            counter + mcf/cf flags per in-flight message,
//                            constant steps, log2(n) bits.
//
// "Steps" count the sequential dependent accesses a 300 MHz pipeline would
// make: the structures are exercised for real and report their own cost.

#include <cstdint>
#include <memory>
#include <vector>

namespace dcp {

class PacketTracker {
 public:
  virtual ~PacketTracker() = default;

  /// Marks PSN received; returns the number of sequential steps taken.
  virtual int on_packet(std::uint32_t psn) = 0;
  virtual bool is_received(std::uint32_t psn) const = 0;
  /// Advances the window head: PSNs below `psn` will never be queried again.
  virtual void advance_head(std::uint32_t psn) = 0;
  /// Bytes of on-NIC memory currently committed by this tracker.
  virtual std::uint64_t memory_bytes() const = 0;
  virtual const char* name() const = 0;
};

/// (a) Fixed BDP-sized bitmap.
class BdpBitmapTracker final : public PacketTracker {
 public:
  explicit BdpBitmapTracker(std::uint32_t window_pkts);

  int on_packet(std::uint32_t psn) override;
  bool is_received(std::uint32_t psn) const override;
  void advance_head(std::uint32_t psn) override;
  std::uint64_t memory_bytes() const override;
  const char* name() const override { return "BDP-sized"; }

 private:
  std::vector<std::uint64_t> bits_;  // circular bitmap
  std::uint32_t window_;
  std::uint32_t head_ = 0;  // lowest tracked PSN
};

/// (b) Linked chunks of 128 bits allocated from a pool on demand.
class LinkedChunkTracker final : public PacketTracker {
 public:
  static constexpr std::uint32_t kChunkBits = 128;

  explicit LinkedChunkTracker(std::uint32_t max_window_pkts = 1u << 20);

  int on_packet(std::uint32_t psn) override;
  bool is_received(std::uint32_t psn) const override;
  void advance_head(std::uint32_t psn) override;
  std::uint64_t memory_bytes() const override;
  const char* name() const override { return "Linked chunk"; }

  std::size_t chunks_allocated() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::uint64_t bits[2] = {0, 0};
    int next = -1;  // pool index of the next chunk
  };
  /// Walks (allocating as needed) to the chunk covering `offset`; the walk
  /// length is the access cost.  Returns {pool index, steps}.
  std::pair<int, int> walk_to(std::uint32_t offset, bool allocate);

  std::vector<Chunk> chunks_;  // pool; index 0 is the QP's pre-allocated chunk
  int head_chunk_ = 0;
  std::uint32_t head_ = 0;  // PSN at bit 0 of the head chunk
  std::uint32_t max_window_;
};

/// (c) DCP's bitmap-free per-message counting.
class MessageCounterTracker final : public PacketTracker {
 public:
  /// `msg_pkts[i]` is the packet count of message i; `outstanding` bounds
  /// the number of simultaneously tracked messages (NCCL default: 8).
  MessageCounterTracker(std::vector<std::uint32_t> msg_pkts, std::uint32_t outstanding = 8);

  int on_packet(std::uint32_t psn) override;
  bool is_received(std::uint32_t psn) const override;  // message-granular
  void advance_head(std::uint32_t /*psn*/) override {}
  std::uint64_t memory_bytes() const override;
  const char* name() const override { return "DCP"; }

  bool message_complete(std::uint32_t msn) const;
  std::uint32_t emsn() const { return emsn_; }

  /// Direct message-level interface used by the DCP receiver.
  /// Returns true if the packet was counted (false: stale/duplicate/out of
  /// window).  eMSN advances internally; observe it via emsn().
  bool count_packet(std::uint32_t msn);
  void reset_message(std::uint32_t msn);

  /// Checkpoint hook (sim/snapshot.h): the counter ring and eMSN cursor
  /// (the geometry vectors are rebuilt from the flow spec).
  template <typename IO>
  void checkpoint(IO& io) {
    io.vec(state_);
    io.pod(emsn_);
  }

 private:
  struct MsgState {
    std::uint32_t counter = 0;  // 14-bit in hardware
    bool mcf = false;           // message completion flag
    bool cf = false;            // CQE flag
  };

  std::vector<std::uint32_t> msg_pkts_;
  std::vector<std::uint32_t> msg_start_psn_;
  std::vector<MsgState> state_;  // ring of `outstanding` entries
  std::uint32_t outstanding_;
  std::uint32_t emsn_ = 0;
};

/// Theoretical packet rate (Mpps) for a tracker whose per-packet cost is
/// `steps`, on a `clock_mhz` pipeline that completes one step per cycle.
double packet_rate_mpps(double clock_mhz, double steps_per_packet);

}  // namespace dcp
