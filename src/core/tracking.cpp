#include "core/tracking.h"

#include <cassert>

namespace dcp {

// ---------------------------------------------------------------------------
// BdpBitmapTracker
// ---------------------------------------------------------------------------

BdpBitmapTracker::BdpBitmapTracker(std::uint32_t window_pkts)
    : bits_((window_pkts + 63) / 64, 0), window_(window_pkts) {}

int BdpBitmapTracker::on_packet(std::uint32_t psn) {
  // Step 1: address = head + offset; step 2: access the slot.
  const std::uint32_t slot = psn % window_;
  bits_[slot / 64] |= (1ull << (slot % 64));
  return 2;
}

bool BdpBitmapTracker::is_received(std::uint32_t psn) const {
  const std::uint32_t slot = psn % window_;
  return (bits_[slot / 64] >> (slot % 64)) & 1u;
}

void BdpBitmapTracker::advance_head(std::uint32_t psn) {
  // Clear the slots that fell out of the window so they can be reused.
  for (std::uint32_t p = head_; p < psn; ++p) {
    const std::uint32_t slot = p % window_;
    bits_[slot / 64] &= ~(1ull << (slot % 64));
  }
  head_ = psn;
}

std::uint64_t BdpBitmapTracker::memory_bytes() const { return bits_.size() * 8; }

// ---------------------------------------------------------------------------
// LinkedChunkTracker
// ---------------------------------------------------------------------------

LinkedChunkTracker::LinkedChunkTracker(std::uint32_t max_window_pkts)
    : max_window_(max_window_pkts) {
  chunks_.emplace_back();  // every QP is pre-allocated one chunk
}

std::pair<int, int> LinkedChunkTracker::walk_to(std::uint32_t offset, bool allocate) {
  assert(offset < max_window_);
  int steps = 1;  // reading the head pointer / first chunk
  int idx = head_chunk_;
  std::uint32_t chunk_no = offset / kChunkBits;
  while (chunk_no > 0) {
    if (chunks_[idx].next < 0) {
      if (!allocate) return {-1, steps};
      chunks_[idx].next = static_cast<int>(chunks_.size());
      chunks_.emplace_back();
    }
    idx = chunks_[idx].next;
    ++steps;  // pointer chase
    --chunk_no;
  }
  return {idx, steps};
}

int LinkedChunkTracker::on_packet(std::uint32_t psn) {
  const std::uint32_t offset = psn - head_;
  auto [idx, steps] = walk_to(offset, /*allocate=*/true);
  const std::uint32_t bit = offset % kChunkBits;
  chunks_[idx].bits[bit / 64] |= (1ull << (bit % 64));
  return steps + 1;  // final bit access
}

bool LinkedChunkTracker::is_received(std::uint32_t psn) const {
  if (psn < head_) return true;  // below the head everything was delivered
  const std::uint32_t offset = psn - head_;
  int idx = head_chunk_;
  for (std::uint32_t c = offset / kChunkBits; c > 0; --c) {
    idx = chunks_[idx].next;
    if (idx < 0) return false;
  }
  const std::uint32_t bit = offset % kChunkBits;
  return (chunks_[idx].bits[bit / 64] >> (bit % 64)) & 1u;
}

void LinkedChunkTracker::advance_head(std::uint32_t psn) {
  // Release whole chunks the head has passed.  Freed chunks return to the
  // pool conceptually; we model the footprint as the live chain length, so
  // we just rebase.  (Chunk reuse bookkeeping is not the measured cost.)
  while (psn >= head_ + kChunkBits && chunks_[head_chunk_].next >= 0) {
    const int next = chunks_[head_chunk_].next;
    chunks_[head_chunk_] = Chunk{};  // recycle in place: swap semantics
    head_chunk_ = next;
    head_ += kChunkBits;
  }
  if (psn > head_) {
    // Partial advance within the head chunk: clear passed bits.
    for (std::uint32_t p = head_; p < psn; ++p) {
      const std::uint32_t bit = p - head_;
      if (bit >= kChunkBits) break;
      chunks_[head_chunk_].bits[bit / 64] &= ~(1ull << (bit % 64));
    }
  }
}

std::uint64_t LinkedChunkTracker::memory_bytes() const {
  // Live chain length from the head.
  std::uint64_t live = 0;
  for (int idx = head_chunk_; idx >= 0; idx = chunks_[idx].next) ++live;
  return live * (kChunkBits / 8 + 4);  // 16B bits + next pointer
}

// ---------------------------------------------------------------------------
// MessageCounterTracker
// ---------------------------------------------------------------------------

MessageCounterTracker::MessageCounterTracker(std::vector<std::uint32_t> msg_pkts,
                                             std::uint32_t outstanding)
    : msg_pkts_(std::move(msg_pkts)), state_(outstanding), outstanding_(outstanding) {
  msg_start_psn_.reserve(msg_pkts_.size() + 1);
  std::uint32_t acc = 0;
  for (std::uint32_t n : msg_pkts_) {
    msg_start_psn_.push_back(acc);
    acc += n;
  }
  msg_start_psn_.push_back(acc);
}

bool MessageCounterTracker::count_packet(std::uint32_t msn) {
  if (msn < emsn_ || msn >= emsn_ + outstanding_ || msn >= msg_pkts_.size()) return false;
  MsgState& st = state_[msn % outstanding_];
  if (st.mcf) return false;  // already complete ("exactly once" makes this rare)
  ++st.counter;
  if (st.counter >= msg_pkts_[msn]) {
    st.mcf = true;
    st.cf = true;
    // Advance eMSN across completed messages, recycling their slots.
    while (emsn_ < msg_pkts_.size() && state_[emsn_ % outstanding_].mcf) {
      state_[emsn_ % outstanding_] = MsgState{};
      ++emsn_;
    }
  }
  return true;  // the packet was counted
}

void MessageCounterTracker::reset_message(std::uint32_t msn) {
  if (msn < emsn_ || msn >= emsn_ + outstanding_) return;
  state_[msn % outstanding_] = MsgState{};
}

int MessageCounterTracker::on_packet(std::uint32_t psn) {
  // Locate the message (uniform sizes in hardware: a divide), bump counter.
  std::uint32_t lo = 0, hi = static_cast<std::uint32_t>(msg_pkts_.size());
  while (lo + 1 < hi) {
    const std::uint32_t mid = (lo + hi) / 2;
    if (msg_start_psn_[mid] <= psn) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  count_packet(lo);
  return 1;  // single counter increment — constant, PSN-independent
}

bool MessageCounterTracker::is_received(std::uint32_t psn) const {
  // Message-granular knowledge only: true iff the covering message is done.
  std::uint32_t lo = 0, hi = static_cast<std::uint32_t>(msg_pkts_.size());
  while (lo + 1 < hi) {
    const std::uint32_t mid = (lo + hi) / 2;
    if (msg_start_psn_[mid] <= psn) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return message_complete(lo);
}

bool MessageCounterTracker::message_complete(std::uint32_t msn) const {
  if (msn < emsn_) return true;
  if (msn >= emsn_ + outstanding_ || msn >= msg_pkts_.size()) return false;
  return state_[msn % outstanding_].mcf;
}

std::uint64_t MessageCounterTracker::memory_bytes() const {
  // 14-bit counter + mcf + cf = 2 bytes per tracked message (paper §4.5).
  return outstanding_ * 2;
}

double packet_rate_mpps(double clock_mhz, double steps_per_packet) {
  return clock_mhz / steps_per_packet;
}

}  // namespace dcp
