#pragma once
// A small ibverbs-flavoured API over the simulated fabric, used by the
// example applications: Devices own QueuePairs; work requests posted to a
// QP become DCP (or baseline) flows; completions are polled from a CQ.

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "topo/network.h"

namespace dcp::verbs {

struct WorkCompletion {
  std::uint64_t wr_id = 0;
  FlowId flow = 0;
  Time completed_at = 0;
  std::uint64_t bytes = 0;
  RdmaOp op = RdmaOp::kWrite;
};

/// RC queue pair lifecycle (the ibverbs state machine, §11 of the IB
/// spec): RESET -> INIT -> RTR (ready to receive) -> RTS (ready to send).
/// Any illegal transition or a fatal condition moves the QP to ERROR.
enum class QpState { kReset, kInit, kRtr, kRts, kError };

const char* qp_state_name(QpState s);

class Device;
class QueuePair;

/// Shared Receive Queue: a pool of Receive WQEs consumed by *any* QP bound
/// to it (in arrival order), the standard way to avoid per-QP receive
/// buffer provisioning at scale.
class SharedReceiveQueue {
 public:
  /// Posting may immediately satisfy RNR-waiting messages on bound QPs.
  void post_recv(std::uint64_t wr_id);
  std::size_t posted() const { return wqes_.size(); }

 private:
  friend class QueuePair;
  std::optional<std::uint64_t> take() {
    if (wqes_.empty()) return std::nullopt;
    const std::uint64_t id = wqes_.front();
    wqes_.pop_front();
    return id;
  }
  std::deque<std::uint64_t> wqes_;
  std::vector<QueuePair*> bound_;
};

/// A reliable-connected queue pair between two hosts.
///
/// Two-sided semantics (§4.4): Send and Write-with-Immediate work requests
/// consume Receive WQEs at the responder *in posting order* (the SSN
/// carried in every DCP Send packet identifies the matching Receive WQE).
/// Post receive buffers with `post_recv` and poll responder-side
/// completions with `poll_recv_cq`.  An arriving Send with no Receive WQE
/// posted waits (RNR) and is delivered as soon as one is posted.
class QueuePair {
 public:
  /// Posts a send/write work request of `bytes`; the flow starts at the
  /// current simulation time.  Returns the flow id backing the WR, or 0 if
  /// the QP is not in RTS (the work request is rejected).
  FlowId post(std::uint64_t bytes, std::uint64_t wr_id, RdmaOp op = RdmaOp::kWrite);

  /// Posts a Receive WQE at the responder (consumed by Send /
  /// Write-with-Imm requests in order).  Legal from INIT onward; rejected
  /// (returning false) in RESET/ERROR.
  bool post_recv(std::uint64_t wr_id);

  // --- Lifecycle -----------------------------------------------------------
  QpState state() const { return state_; }
  /// Explicit ibverbs-style transition; returns false (and moves the QP to
  /// ERROR on gross misuse) if the transition is not legal from the
  /// current state.  Legal chain: RESET->INIT->RTR->RTS; any state may go
  /// to ERROR; ERROR->RESET recycles the QP.
  bool modify(QpState next);
  /// Convenience: performs INIT->RTR->RTS after a simulated connection
  /// handshake (~1 fabric RTT), then invokes `on_connected`.
  void connect(std::function<void()> on_connected = nullptr);
  std::uint64_t rejected_posts() const { return rejected_posts_; }

  /// Polls one requester-side completion off the CQ; false when empty.
  bool poll_cq(WorkCompletion& wc);

  /// Polls one responder-side completion (a matched Receive WQE).
  bool poll_recv_cq(WorkCompletion& wc);

  /// Binds this QP's responder side to a shared receive queue; incoming
  /// Sends then consume SRQ WQEs instead of the per-QP RQ.
  void bind_srq(SharedReceiveQueue* srq);

  std::size_t outstanding() const { return outstanding_; }
  std::size_t recv_wqes_posted() const { return srq_ != nullptr ? srq_->posted() : rq_.size(); }
  std::size_t rnr_waiting() const { return unmatched_.size(); }
  NodeId local() const { return local_; }
  NodeId remote() const { return remote_; }

 private:
  friend class Device;
  friend class SharedReceiveQueue;
  QueuePair(Device& dev, NodeId local, NodeId remote, std::uint64_t msg_bytes)
      : dev_(dev), local_(local), remote_(remote), msg_bytes_(msg_bytes) {}
  void complete(const FlowRecord& rec);
  void received(const FlowRecord& rec);
  void match_receives();

  struct RecvWqe {
    std::uint64_t wr_id;
  };

  Device& dev_;
  NodeId local_;
  NodeId remote_;
  std::uint64_t msg_bytes_;
  SharedReceiveQueue* srq_ = nullptr;
  QpState state_ = QpState::kReset;
  std::uint64_t rejected_posts_ = 0;
  std::size_t outstanding_ = 0;
  std::deque<WorkCompletion> cq_;       // requester completions
  std::deque<WorkCompletion> recv_cq_;  // responder completions
  std::deque<RecvWqe> rq_;              // posted Receive WQEs
  std::deque<WorkCompletion> unmatched_;  // arrived Sends awaiting a WQE (RNR)
  std::unordered_map<FlowId, std::uint64_t> wr_of_flow_;
};

/// One Device per Network; multiplexes flow completions to QPs.
class Device {
 public:
  explicit Device(Network& net);
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Creates an RC queue pair; `msg_bytes` is the message granularity DCP
  /// tracks (NCCL-style chunking).  With `auto_connect` (default) the QP
  /// comes up in RTS immediately; pass false to drive the RESET -> INIT ->
  /// RTR -> RTS state machine explicitly (or use connect()).
  QueuePair& create_qp(NodeId local, NodeId remote, std::uint64_t msg_bytes = 1024 * 1024,
                       bool auto_connect = true);

  Network& network() { return net_; }

 private:
  friend class QueuePair;
  Network& net_;
  std::vector<std::unique_ptr<QueuePair>> qps_;
  std::unordered_map<FlowId, QueuePair*> owner_;
};

}  // namespace dcp::verbs
