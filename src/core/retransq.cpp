#include "core/retransq.h"

// Header-only today; this TU anchors the library target.
