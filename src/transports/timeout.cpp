#include "transports/timeout.h"

#include "sim/snapshot.h"

#include "host/host.h"

namespace dcp {

bool TimeoutSender::protocol_has_packet() {
  if (done()) return false;
  if (retx_count_ > 0) return true;
  const std::uint64_t inflight =
      static_cast<std::uint64_t>(snd_nxt_ - snd_una_) * cfg_.mtu_payload;
  return snd_nxt_ < total_packets() && inflight < cc_->window_bytes();
}

Packet TimeoutSender::protocol_next_packet() {
  if (retx_count_ > 0) {
    while (retx_scan_ < retx_pending_.size() && !retx_pending_[retx_scan_]) ++retx_scan_;
    const std::uint32_t psn = retx_scan_;
    retx_pending_[psn] = false;
    --retx_count_;
    Packet p = make_data_packet(psn, HeaderSizes::kRoceData + (psn == 0 ? HeaderSizes::kReth : 0));
    p.tag = DcpTag::kNonDcp;
    p.is_retransmit = true;
    return p;
  }
  const std::uint32_t psn = snd_nxt_++;
  Packet p = make_data_packet(psn, HeaderSizes::kRoceData + (psn == 0 ? HeaderSizes::kReth : 0));
  p.tag = DcpTag::kNonDcp;
  return p;
}

void TimeoutSender::arm_rto() { rto_.arm_deadline(cfg_.rto_high); }

void TimeoutSender::on_rto() {
  if (done()) return;
  stats_.timeouts++;
  cc_->on_timeout();
  if (retx_pending_.empty()) retx_pending_.assign(total_packets(), false);
  retx_scan_ = total_packets();
  for (std::uint32_t p = snd_una_; p < snd_nxt_; ++p) {
    if (!acked_[p] && !retx_pending_[p]) {
      retx_pending_[p] = true;
      ++retx_count_;
      if (p < retx_scan_) retx_scan_ = p;
    }
  }
  arm_rto();
  kick_nic();
}

void TimeoutSender::on_packet(Packet pkt) {
  switch (pkt.type) {
    case PktType::kCnp:
      stats_.cnp_received++;
      cc_->on_cnp();
      return;
    case PktType::kAck:
    case PktType::kSack:
      break;
    default:
      return;
  }
  const std::uint32_t old_una = snd_una_;
  if (pkt.echo_ts >= 0) cc_->on_rtt_sample(sim_.now() - pkt.echo_ts);
  for (std::uint32_t p = snd_una_; p < pkt.ack_psn && p < total_packets(); ++p) acked_[p] = true;
  if (pkt.type == PktType::kSack && pkt.sack_psn < total_packets()) acked_[pkt.sack_psn] = true;
  while (snd_una_ < total_packets() && acked_[snd_una_]) ++snd_una_;
  if (snd_una_ > old_una) {
    cc_->on_ack(static_cast<std::uint64_t>(snd_una_ - old_una) * cfg_.mtu_payload);
    arm_rto();
  }
  if (done()) {
    rto_.cancel();
    finish();
    return;
  }
  kick_nic();
}

void OooReceiver::on_packet(Packet pkt) {
  if (pkt.type != PktType::kData) return;
  stats_.data_packets++;
  if (ecn_enabled_ && pkt.ecn_ce && cnp_.should_send(sim_.now())) {
    send_control(make_control(PktType::kCnp, HeaderSizes::kCnp));
  }
  if (pkt.psn >= total_packets()) return;
  if (received_[pkt.psn]) {
    stats_.duplicate_packets++;
  } else {
    received_[pkt.psn] = true;
    received_count_++;
    stats_.bytes_received += pkt.payload_bytes;
    if (pkt.psn != expected_) stats_.out_of_order_packets++;
    while (expected_ < total_packets() && received_[expected_]) ++expected_;
    if (complete()) mark_complete();
  }
  Packet ack = make_control(PktType::kSack, HeaderSizes::kRoceAck + 4);
  ack.ack_psn = expected_;
  ack.sack_psn = pkt.psn;
  ack.ecn_ce = pkt.ecn_ce;  // echo for window-based CCs
  ack.echo_ts = pkt.sent_at;
  send_control(std::move(ack));
}


void TimeoutSender::checkpoint_extra(StateIO& io) {
  io.vbool(acked_);
  io.vbool(retx_pending_);
  io.pod(retx_count_);
  io.pod(retx_scan_);
  io.pod(snd_una_);
  io.pod(snd_nxt_);
  io.timer(rto_);
}

void OooReceiver::checkpoint_extra(StateIO& io) {
  io.vbool(received_);
  io.pod(received_count_);
  io.pod(expected_);
}

}  // namespace dcp
