#pragma once
// RNIC-GBN: the traditional RoCEv2 NIC behaviour (Mellanox CX5 class).
//
// Strict in-order reception; any out-of-order arrival is dropped with a
// NAK carrying the expected PSN; the sender rewinds and resends the whole
// window (Go-Back-N).  Combined with PFC-enabled switches this is the
// paper's "PFC" lossless baseline; on lossy switches it stands in for CX5
// in the testbed experiments (Figs 10-12).

#include "host/transport.h"

namespace dcp {

class GbnSender final : public SenderTransport {
 public:
  GbnSender(Simulator& sim, Host& host, FlowSpec spec, TransportConfig cfg)
      : SenderTransport(sim, host, spec, cfg) {}

  void on_packet(Packet pkt) override;
  bool done() const override { return snd_una_ >= total_packets(); }

 protected:
  bool protocol_has_packet() override;
  Packet protocol_next_packet() override;
  void on_start() override { arm_rto(); }
  void checkpoint_extra(StateIO& io) override;

 private:
  void arm_rto();
  void on_rto();
  void rewind(const char* why);
  std::uint64_t inflight_bytes() const;

  std::uint32_t snd_una_ = 0;  // oldest unacknowledged PSN
  std::uint32_t snd_nxt_ = 0;  // next new PSN to send
  // Rewind suppression: only one go-back per loss event (further NAKs for
  // the same ePSN are echoes of packets already in flight).
  std::uint32_t last_rewind_una_ = UINT32_MAX;
  std::uint32_t high_water_ = 0;  // highest snd_nxt ever reached
  Timer rto_{sim_, [this] { on_rto(); }};  // deadline-class: re-armed per ACK
};

class GbnReceiver final : public ReceiverTransport {
 public:
  GbnReceiver(Simulator& sim, Host& host, FlowSpec spec, TransportConfig cfg)
      : ReceiverTransport(sim, host, spec, cfg) {}

  void on_packet(Packet pkt) override;
  bool complete() const override { return expected_ >= total_packets(); }

 protected:
  void checkpoint_extra(StateIO& io) override;

 private:
  std::uint32_t expected_ = 0;  // next in-order PSN
  std::uint32_t since_ack_ = 0; // coalescing counter
  bool nak_outstanding_ = false;
};

class GbnFactory final : public TransportFactory {
 public:
  std::unique_ptr<SenderTransport> make_sender(Simulator& sim, Host& host, const FlowSpec& spec,
                                               const TransportConfig& cfg) override {
    return std::make_unique<GbnSender>(sim, host, spec, cfg);
  }
  std::unique_ptr<ReceiverTransport> make_receiver(Simulator& sim, Host& host,
                                                   const FlowSpec& spec,
                                                   const TransportConfig& cfg) override {
    return std::make_unique<GbnReceiver>(sim, host, spec, cfg);
  }
  std::string name() const override { return "RNIC-GBN"; }
};

}  // namespace dcp
