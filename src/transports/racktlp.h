#pragma once
// RACK-TLP (RFC 8985) adapted to the RDMA message setting, the Falcon-style
// baseline of §6.3 / Fig. 17.
//
// The sender timestamps every (re)transmission.  A packet is declared lost
// when a packet sent *after* it has been delivered and at least one
// reordering window (estimated as one RTT, per the paper's description)
// has elapsed since the packet's transmission.  A Tail Loss Probe resends
// the newest unacked packet when ACKs stop arriving.  The per-packet
// timestamps are exactly the memory overhead the paper criticizes; the
// resource-proxy bench reports them.

#include <vector>

#include "host/transport.h"
#include "transports/timeout.h"  // OooReceiver

namespace dcp {

class RackTlpSender final : public SenderTransport {
 public:
  RackTlpSender(Simulator& sim, Host& host, FlowSpec spec, TransportConfig cfg)
      : SenderTransport(sim, host, spec, cfg),
        acked_(total_packets(), false),
        retx_pending_(total_packets(), false),
        xmit_ts_(total_packets(), -1) {}

  void on_packet(Packet pkt) override;
  bool done() const override { return snd_una_ >= total_packets(); }

  Time srtt() const { return srtt_; }

 protected:
  bool protocol_has_packet() override;
  Packet protocol_next_packet() override;
  void on_start() override {
    arm_tlp();
    arm_rto();
  }
  void checkpoint_extra(StateIO& io) override;

 private:
  void detect_losses();
  void arm_rack_timer(Time deadline);
  void arm_tlp();
  void arm_rto();
  void on_rack();
  void on_tlp();
  void on_rto();

  std::vector<bool> acked_;
  std::vector<bool> retx_pending_;
  std::vector<Time> xmit_ts_;  // last transmission time per PSN (the cost!)
  std::uint32_t retx_count_ = 0;
  std::uint32_t retx_scan_ = 0;
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  Time srtt_ = microseconds(20);
  Time rack_xmit_ts_ = -1;  // newest delivered packet's transmission time
  // All three are deadline-class (re-armed far more often than they fire).
  Timer rack_{sim_, [this] { on_rack(); }};
  Timer tlp_{sim_, [this] { on_tlp(); }};
  Timer rto_{sim_, [this] { on_rto(); }};
};

class RackTlpFactory final : public TransportFactory {
 public:
  std::unique_ptr<SenderTransport> make_sender(Simulator& sim, Host& host, const FlowSpec& spec,
                                               const TransportConfig& cfg) override {
    return std::make_unique<RackTlpSender>(sim, host, spec, cfg);
  }
  std::unique_ptr<ReceiverTransport> make_receiver(Simulator& sim, Host& host,
                                                   const FlowSpec& spec,
                                                   const TransportConfig& cfg) override {
    return std::make_unique<OooReceiver>(sim, host, spec, cfg);
  }
  std::string name() const override { return "RACK-TLP"; }
};

}  // namespace dcp
