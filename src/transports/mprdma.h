#pragma once
// MP-RDMA (Lu et al., NSDI 2018) — packet-level multipath RDMA with an
// ECN-driven adaptive congestion window.  Requires a lossless (PFC) fabric
// because its loss recovery is GBN-grade (paper Table 2: fails R1/R3).
//
// Model: the sender sprays packets over `path_count` virtual paths
// (switches honour path_id in SourcePath mode), grows its window by 1/cwnd
// per unmarked ACK and shrinks by 1/2 packet per ECN-marked ACK (the
// NSDI'18 per-ACK rule).  The receiver accepts out-of-order packets inside
// a bounded reordering window of `mp_ooo_window_pkts`; beyond it, packets
// are dropped and NACKed — the "cannot control OOO degree" behaviour §6.2
// observes.

#include <vector>

#include "host/transport.h"

namespace dcp {

class MpRdmaSender final : public SenderTransport {
 public:
  MpRdmaSender(Simulator& sim, Host& host, FlowSpec spec, TransportConfig cfg)
      : SenderTransport(sim, host, spec, cfg),
        acked_(total_packets(), false),
        retx_pending_(total_packets(), false),
        cwnd_pkts_(static_cast<double>(cfg.cc.window_bytes) / cfg.mtu_payload) {
    if (cwnd_pkts_ < 1.0) cwnd_pkts_ = 1.0;
    max_cwnd_pkts_ = 2.0 * cwnd_pkts_;
  }

  void on_packet(Packet pkt) override;
  bool done() const override { return snd_una_ >= total_packets(); }

  double cwnd_pkts() const { return cwnd_pkts_; }

 protected:
  bool protocol_has_packet() override;
  Packet protocol_next_packet() override;
  void on_start() override { arm_rto(); }
  void checkpoint_extra(StateIO& io) override;

 private:
  void arm_rto();
  void on_rto();

  std::vector<bool> acked_;
  std::vector<bool> retx_pending_;
  std::uint32_t retx_count_ = 0;
  std::uint32_t retx_scan_ = 0;
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  double cwnd_pkts_;
  double max_cwnd_pkts_;
  std::uint32_t vp_rr_ = 0;  // virtual-path round robin
  Timer rto_{sim_, [this] { on_rto(); }};  // deadline-class: re-armed per ACK
};

class MpRdmaReceiver final : public ReceiverTransport {
 public:
  MpRdmaReceiver(Simulator& sim, Host& host, FlowSpec spec, TransportConfig cfg)
      : ReceiverTransport(sim, host, spec, cfg), received_(total_packets(), false) {}

  void on_packet(Packet pkt) override;
  bool complete() const override { return received_count_ >= total_packets(); }

 protected:
  void checkpoint_extra(StateIO& io) override;

 private:
  std::vector<bool> received_;
  std::uint32_t received_count_ = 0;
  std::uint32_t expected_ = 0;
};

class MpRdmaFactory final : public TransportFactory {
 public:
  std::unique_ptr<SenderTransport> make_sender(Simulator& sim, Host& host, const FlowSpec& spec,
                                               const TransportConfig& cfg) override {
    return std::make_unique<MpRdmaSender>(sim, host, spec, cfg);
  }
  std::unique_ptr<ReceiverTransport> make_receiver(Simulator& sim, Host& host,
                                                   const FlowSpec& spec,
                                                   const TransportConfig& cfg) override {
    return std::make_unique<MpRdmaReceiver>(sim, host, spec, cfg);
  }
  std::string name() const override { return "MP-RDMA"; }
};

}  // namespace dcp
