#pragma once
// Timeout-only loss recovery (the NVIDIA Spectrum AR + SuperNIC stand-in,
// §6.3 / Fig. 17): the receiver places packets out-of-order and returns
// cumulative ACKs, but the sender has *no* fast retransmission — every
// loss waits for an RTO, which then selectively resends unacked packets.

#include <vector>

#include "host/transport.h"

namespace dcp {

class TimeoutSender final : public SenderTransport {
 public:
  TimeoutSender(Simulator& sim, Host& host, FlowSpec spec, TransportConfig cfg)
      : SenderTransport(sim, host, spec, cfg), acked_(total_packets(), false) {}

  void on_packet(Packet pkt) override;
  bool done() const override { return snd_una_ >= total_packets(); }

 protected:
  bool protocol_has_packet() override;
  Packet protocol_next_packet() override;
  void on_start() override { arm_rto(); }
  void checkpoint_extra(StateIO& io) override;

 private:
  void arm_rto();
  void on_rto();

  std::vector<bool> acked_;
  std::vector<bool> retx_pending_;
  std::uint32_t retx_count_ = 0;
  std::uint32_t retx_scan_ = 0;
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  Timer rto_{sim_, [this] { on_rto(); }};  // deadline-class: re-armed per ACK
};

/// Out-of-order-accepting receiver with cumulative ACKs + per-packet echo
/// (ack_psn = ePSN, sack_psn = this packet) so the sender can clear state.
class OooReceiver : public ReceiverTransport {
 public:
  OooReceiver(Simulator& sim, Host& host, FlowSpec spec, TransportConfig cfg)
      : ReceiverTransport(sim, host, spec, cfg), received_(total_packets(), false) {}

  void on_packet(Packet pkt) override;
  bool complete() const override { return received_count_ >= total_packets(); }

 protected:
  void checkpoint_extra(StateIO& io) override;

  std::vector<bool> received_;
  std::uint32_t received_count_ = 0;
  std::uint32_t expected_ = 0;
};

class TimeoutFactory final : public TransportFactory {
 public:
  std::unique_ptr<SenderTransport> make_sender(Simulator& sim, Host& host, const FlowSpec& spec,
                                               const TransportConfig& cfg) override {
    return std::make_unique<TimeoutSender>(sim, host, spec, cfg);
  }
  std::unique_ptr<ReceiverTransport> make_receiver(Simulator& sim, Host& host,
                                                   const FlowSpec& spec,
                                                   const TransportConfig& cfg) override {
    return std::make_unique<OooReceiver>(sim, host, spec, cfg);
  }
  std::string name() const override { return "Timeout"; }
};

}  // namespace dcp
