#include "transports/tcp_lite.h"

#include <algorithm>

#include "host/host.h"

namespace dcp {

bool TcpLiteSender::protocol_has_packet() {
  if (done()) return false;
  if (retx_count_ > 0) return true;
  const double inflight = static_cast<double>(snd_nxt_ - snd_una_);
  return snd_nxt_ < total_packets() && inflight < cwnd_pkts_;
}

Packet TcpLiteSender::protocol_next_packet() {
  std::uint32_t psn;
  bool retx = false;
  if (retx_count_ > 0) {
    while (retx_scan_ < retx_pending_.size() && !retx_pending_[retx_scan_]) ++retx_scan_;
    psn = retx_scan_;
    retx_pending_[psn] = false;
    --retx_count_;
    retx = true;
  } else {
    psn = snd_nxt_++;
  }
  // TCP/IP header ~ Ethernet + IP + TCP(20).
  Packet p = make_data_packet(psn, HeaderSizes::kEth + HeaderSizes::kIp + 20);
  p.tag = DcpTag::kNonDcp;
  p.is_retransmit = retx;
  // Host processing throughput cap: stretch this packet's pacing gap to the
  // software-stack rate (slower than the CC line rate).
  // (Applied via a longer wire-independent eligibility gap.)
  return p;
}

void TcpLiteSender::arm_rto() {
  rto_.arm_deadline(std::max<Time>(cfg_.rto_high, milliseconds(1)));
}

void TcpLiteSender::on_rto() {
  if (done()) return;
  stats_.timeouts++;
  ssthresh_pkts_ = std::max(2.0, cwnd_pkts_ / 2.0);
  cwnd_pkts_ = 1.0;
  if (retx_pending_.empty()) retx_pending_.assign(total_packets(), false);
  retx_scan_ = total_packets();
  for (std::uint32_t p = snd_una_; p < snd_nxt_; ++p) {
    if (!acked_[p] && !retx_pending_[p]) {
      retx_pending_[p] = true;
      ++retx_count_;
      if (p < retx_scan_) retx_scan_ = p;
    }
  }
  arm_rto();
  kick_nic();
}

void TcpLiteSender::handle_ack(const Packet& pkt) {
  const std::uint32_t old_una = snd_una_;
  for (std::uint32_t p = snd_una_; p < pkt.ack_psn && p < total_packets(); ++p) acked_[p] = true;
  while (snd_una_ < total_packets() && acked_[snd_una_]) ++snd_una_;

  if (snd_una_ > old_una) {
    dup_acks_ = 0;
    // Slow start / congestion avoidance.
    const double delta = static_cast<double>(snd_una_ - old_una);
    if (cwnd_pkts_ < ssthresh_pkts_) {
      cwnd_pkts_ += delta;
    } else {
      cwnd_pkts_ += delta / cwnd_pkts_;
    }
    arm_rto();
  } else if (pkt.ack_psn == snd_una_ && snd_nxt_ > snd_una_) {
    if (++dup_acks_ == 3) {
      ssthresh_pkts_ = std::max(2.0, cwnd_pkts_ / 2.0);
      cwnd_pkts_ = ssthresh_pkts_;
      if (retx_pending_.empty()) retx_pending_.assign(total_packets(), false);
      if (!acked_[snd_una_] && !retx_pending_[snd_una_]) {
        retx_pending_[snd_una_] = true;
        ++retx_count_;
        if (snd_una_ < retx_scan_) retx_scan_ = snd_una_;
      }
    }
  }
  if (done()) {
    rto_.cancel();
    finish();
    return;
  }
  kick_nic();
}

void TcpLiteSender::on_packet(Packet pkt) {
  if (pkt.type != PktType::kAck) return;
  // Kernel processing latency before the ACK reaches the TCP state machine.
  // Pool the packet so the deferred closure stays within the event's
  // inline capture budget (a by-value Packet would heap-allocate).
  sim_.schedule(cfg_.sw_stack_delay / 2,
                [this, p = PacketPtr::make(std::move(pkt))] { handle_ack(*p); });
}

void TcpLiteReceiver::on_packet(Packet pkt) {
  if (pkt.type != PktType::kData) return;
  // Kernel receive path latency (interrupt + softirq + socket copy).
  sim_.schedule(cfg_.sw_stack_delay / 2, [this, p = PacketPtr::make(std::move(pkt))]() mutable {
    process(std::move(*p));
  });
}

void TcpLiteReceiver::process(Packet pkt) {
  stats_.data_packets++;
  if (pkt.psn >= total_packets()) return;
  if (received_[pkt.psn]) {
    stats_.duplicate_packets++;
  } else {
    received_[pkt.psn] = true;
    received_count_++;
    stats_.bytes_received += pkt.payload_bytes;
    if (pkt.psn != expected_) stats_.out_of_order_packets++;
    while (expected_ < total_packets() && received_[expected_]) ++expected_;
    if (complete()) mark_complete();
  }
  Packet ack = make_control(PktType::kAck, HeaderSizes::kEth + HeaderSizes::kIp + 20);
  ack.ack_psn = expected_;
  send_control(std::move(ack));
}

}  // namespace dcp
