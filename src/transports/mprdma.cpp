#include "transports/mprdma.h"

#include "sim/snapshot.h"

#include "host/host.h"

namespace dcp {

bool MpRdmaSender::protocol_has_packet() {
  if (done()) return false;
  if (retx_count_ > 0) return true;
  const double inflight_pkts = static_cast<double>(snd_nxt_ - snd_una_);
  return snd_nxt_ < total_packets() && inflight_pkts < cwnd_pkts_;
}

Packet MpRdmaSender::protocol_next_packet() {
  std::uint32_t psn;
  bool retx = false;
  if (retx_count_ > 0) {
    while (retx_scan_ < retx_pending_.size() && !retx_pending_[retx_scan_]) ++retx_scan_;
    psn = retx_scan_;
    retx_pending_[psn] = false;
    --retx_count_;
    retx = true;
  } else {
    psn = snd_nxt_++;
  }
  Packet p = make_data_packet(psn, HeaderSizes::kRoceData + (psn == 0 ? HeaderSizes::kReth : 0));
  p.tag = DcpTag::kNonDcp;
  p.is_retransmit = retx;
  p.path_id = vp_rr_++ % cfg_.path_count;  // per-packet virtual path
  return p;
}

void MpRdmaSender::arm_rto() { rto_.arm_deadline(cfg_.rto_high); }

void MpRdmaSender::on_rto() {
  if (done()) return;
  stats_.timeouts++;
  cc_->on_timeout();
  retx_scan_ = total_packets();
  for (std::uint32_t p = snd_una_; p < snd_nxt_; ++p) {
    if (!acked_[p] && !retx_pending_[p]) {
      retx_pending_[p] = true;
      ++retx_count_;
      if (p < retx_scan_) retx_scan_ = p;
    }
  }
  cwnd_pkts_ = std::max(1.0, cwnd_pkts_ / 2.0);
  arm_rto();
  kick_nic();
}

void MpRdmaSender::on_packet(Packet pkt) {
  switch (pkt.type) {
    case PktType::kCnp:
      stats_.cnp_received++;
      cc_->on_cnp();
      return;
    case PktType::kNack: {
      // Receiver dropped an out-of-window packet; retransmit just it.
      if (pkt.sack_psn < total_packets() && !acked_[pkt.sack_psn] &&
          !retx_pending_[pkt.sack_psn]) {
        retx_pending_[pkt.sack_psn] = true;
        ++retx_count_;
        if (pkt.sack_psn < retx_scan_) retx_scan_ = pkt.sack_psn;
      }
      cwnd_pkts_ = std::max(1.0, cwnd_pkts_ - 1.0);
      kick_nic();
      return;
    }
    case PktType::kAck:
    case PktType::kSack:
      break;
    default:
      return;
  }

  // Per-ACK window adjustment (NSDI'18): ECN mark -> -1/2 packet; clean ACK
  // -> +1/cwnd packets.
  if (pkt.ecn_ce) {
    cwnd_pkts_ = std::max(1.0, cwnd_pkts_ - 0.5);
  } else {
    cwnd_pkts_ = std::min(max_cwnd_pkts_, cwnd_pkts_ + 1.0 / cwnd_pkts_);
  }

  const std::uint32_t old_una = snd_una_;
  for (std::uint32_t p = snd_una_; p < pkt.ack_psn && p < total_packets(); ++p) acked_[p] = true;
  if (pkt.type == PktType::kSack && pkt.sack_psn < total_packets()) {
    acked_[pkt.sack_psn] = true;
    if (retx_pending_[pkt.sack_psn]) {
      retx_pending_[pkt.sack_psn] = false;
      --retx_count_;
    }
  }
  while (snd_una_ < total_packets() && acked_[snd_una_]) ++snd_una_;
  if (snd_una_ > old_una) {
    cc_->on_ack(static_cast<std::uint64_t>(snd_una_ - old_una) * cfg_.mtu_payload);
    arm_rto();
  }
  if (done()) {
    rto_.cancel();
    finish();
    return;
  }
  kick_nic();
}

void MpRdmaReceiver::on_packet(Packet pkt) {
  if (pkt.type != PktType::kData) return;
  stats_.data_packets++;

  if (ecn_enabled_ && pkt.ecn_ce && cnp_.should_send(sim_.now())) {
    send_control(make_control(PktType::kCnp, HeaderSizes::kCnp));
  }
  if (pkt.psn >= total_packets()) return;

  // Bounded reordering tolerance: beyond the window the packet cannot be
  // placed (MP-RDMA's on-NIC metadata is limited) and is dropped + NACKed.
  if (pkt.psn >= expected_ + cfg_.mp_ooo_window_pkts) {
    stats_.out_of_order_packets++;
    Packet nack = make_control(PktType::kNack, HeaderSizes::kRoceAck + 4);
    nack.ack_psn = expected_;
    nack.sack_psn = pkt.psn;
    send_control(std::move(nack));
    return;
  }

  if (received_[pkt.psn]) {
    stats_.duplicate_packets++;
  } else {
    received_[pkt.psn] = true;
    received_count_++;
    stats_.bytes_received += pkt.payload_bytes;
    if (pkt.psn != expected_) stats_.out_of_order_packets++;
    while (expected_ < total_packets() && received_[expected_]) ++expected_;
    if (complete()) mark_complete();
  }

  Packet ack = make_control(PktType::kSack, HeaderSizes::kRoceAck + 4);
  ack.ack_psn = expected_;
  ack.sack_psn = pkt.psn;
  ack.ecn_ce = pkt.ecn_ce;  // echo drives the sender's per-ACK window rule
  ack.echo_ts = pkt.sent_at;
  send_control(std::move(ack));
}


void MpRdmaSender::checkpoint_extra(StateIO& io) {
  io.vbool(acked_);
  io.vbool(retx_pending_);
  io.pod(retx_count_);
  io.pod(retx_scan_);
  io.pod(snd_una_);
  io.pod(snd_nxt_);
  io.pod(cwnd_pkts_);
  io.pod(max_cwnd_pkts_);
  io.pod(vp_rr_);
  io.timer(rto_);
}

void MpRdmaReceiver::checkpoint_extra(StateIO& io) {
  io.vbool(received_);
  io.pod(received_count_);
  io.pod(expected_);
}

}  // namespace dcp
