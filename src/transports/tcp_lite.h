#pragma once
// TcpLite: a kernel-TCP software-stack proxy used only for the Fig. 8
// basic-validation bars (DCP / RNIC-GBN / TCP over two directly cabled
// hosts).  It is a NewReno-flavoured window transport whose throughput is
// capped by a modeled host processing rate (`sw_stack_rate`) and whose
// latency is inflated by per-packet kernel processing (`sw_stack_delay`
// on each side) — capturing why RDMA offload wins, which is the figure's
// entire point.

#include <vector>

#include "host/transport.h"

namespace dcp {

class TcpLiteSender final : public SenderTransport {
 public:
  TcpLiteSender(Simulator& sim, Host& host, FlowSpec spec, TransportConfig cfg)
      : SenderTransport(sim, host, spec, stack_capped(cfg)),
        acked_(total_packets(), false),
        cwnd_pkts_(10.0) {}

  void on_packet(Packet pkt) override;
  bool done() const override { return snd_una_ >= total_packets(); }

 protected:
  bool protocol_has_packet() override;
  Packet protocol_next_packet() override;
  void on_start() override { arm_rto(); }

 private:
  /// Pacing at the host-processing rate instead of NIC line rate.
  static TransportConfig stack_capped(TransportConfig c) {
    c.cc.type = CcConfig::Type::kStaticWindow;
    c.cc.line_rate = c.sw_stack_rate;
    return c;
  }
  void arm_rto();
  void on_rto();
  void handle_ack(const Packet& pkt);

  std::vector<bool> acked_;
  std::vector<bool> retx_pending_;
  std::uint32_t retx_count_ = 0;
  std::uint32_t retx_scan_ = 0;
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  double cwnd_pkts_;
  double ssthresh_pkts_ = 1e9;
  std::uint32_t dup_acks_ = 0;
  Timer rto_{sim_, [this] { on_rto(); }};  // deadline-class: re-armed per ACK
};

class TcpLiteReceiver final : public ReceiverTransport {
 public:
  TcpLiteReceiver(Simulator& sim, Host& host, FlowSpec spec, TransportConfig cfg)
      : ReceiverTransport(sim, host, spec, cfg), received_(total_packets(), false) {}

  void on_packet(Packet pkt) override;
  bool complete() const override { return received_count_ >= total_packets(); }

 private:
  void process(Packet pkt);

  std::vector<bool> received_;
  std::uint32_t received_count_ = 0;
  std::uint32_t expected_ = 0;
};

class TcpLiteFactory final : public TransportFactory {
 public:
  std::unique_ptr<SenderTransport> make_sender(Simulator& sim, Host& host, const FlowSpec& spec,
                                               const TransportConfig& cfg) override {
    return std::make_unique<TcpLiteSender>(sim, host, spec, cfg);
  }
  std::unique_ptr<ReceiverTransport> make_receiver(Simulator& sim, Host& host,
                                                   const FlowSpec& spec,
                                                   const TransportConfig& cfg) override {
    return std::make_unique<TcpLiteReceiver>(sim, host, spec, cfg);
  }
  std::string name() const override { return "TCP"; }
};

}  // namespace dcp
