#include "transports/gbn.h"

#include "sim/snapshot.h"

#include "host/host.h"

namespace dcp {

std::uint64_t GbnSender::inflight_bytes() const {
  return static_cast<std::uint64_t>(snd_nxt_ - snd_una_) * cfg_.mtu_payload;
}

bool GbnSender::protocol_has_packet() {
  if (done()) return false;
  return snd_nxt_ < total_packets() && inflight_bytes() < cc_->window_bytes();
}

Packet GbnSender::protocol_next_packet() {
  const std::uint32_t psn = snd_nxt_++;
  std::uint32_t hdr = HeaderSizes::kRoceData;
  if (psn == 0) hdr += HeaderSizes::kReth;  // standard RoCE: RETH in first packet only
  Packet p = make_data_packet(psn, hdr);
  p.tag = DcpTag::kNonDcp;
  p.is_retransmit = psn < high_water_;
  if (snd_nxt_ > high_water_) high_water_ = snd_nxt_;
  return p;
}

void GbnSender::arm_rto() { rto_.arm_deadline(cfg_.rto_high); }

void GbnSender::on_rto() {
  if (done()) return;
  stats_.timeouts++;
  cc_->on_timeout();
  rewind("rto");
  arm_rto();
}

void GbnSender::rewind(const char* why) {
  (void)why;
  snd_nxt_ = snd_una_;
  last_rewind_una_ = snd_una_;
  kick_nic();
}

void GbnSender::on_packet(Packet pkt) {
  switch (pkt.type) {
    case PktType::kCnp:
      stats_.cnp_received++;
      cc_->on_cnp();
      return;
    case PktType::kAck: {
      if (pkt.echo_ts >= 0) cc_->on_rtt_sample(sim_.now() - pkt.echo_ts);
      if (pkt.ack_psn > snd_una_) {
        const std::uint64_t newly =
            static_cast<std::uint64_t>(pkt.ack_psn - snd_una_) * cfg_.mtu_payload;
        snd_una_ = pkt.ack_psn;
        if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
        cc_->on_ack(newly);
        if (done()) {
          rto_.cancel();
          finish();
          return;
        }
        arm_rto();
        kick_nic();
      }
      return;
    }
    case PktType::kNack: {
      if (pkt.ack_psn > snd_una_) {
        snd_una_ = pkt.ack_psn;  // a NAK acknowledges everything before ePSN
        arm_rto();
      }
      // One rewind per loss event: further NAKs carrying the same ePSN are
      // echoes of out-of-order packets already in flight.
      if (snd_una_ != last_rewind_una_ && snd_nxt_ > snd_una_) rewind("nak");
      return;
    }
    default:
      return;
  }
}

void GbnReceiver::on_packet(Packet pkt) {
  if (pkt.type != PktType::kData) return;
  stats_.data_packets++;

  // DCQCN notification point: CE-marked data triggers a paced CNP.
  if (ecn_enabled_ && pkt.ecn_ce && cnp_.should_send(sim_.now())) {
    send_control(make_control(PktType::kCnp, HeaderSizes::kCnp));
  }

  if (pkt.psn == expected_) {
    expected_++;
    nak_outstanding_ = false;
    stats_.bytes_received += pkt.payload_bytes;
    const bool last = expected_ >= total_packets();
    if (last) mark_complete();
    if (++since_ack_ >= cfg_.ack_per_packets || last || pkt.last_of_msg) {
      since_ack_ = 0;
      Packet ack = make_control(PktType::kAck, HeaderSizes::kRoceAck);
      ack.ack_psn = expected_;
      ack.echo_ts = pkt.sent_at;
      send_control(std::move(ack));
    }
    return;
  }

  if (pkt.psn < expected_) {
    stats_.duplicate_packets++;
    // Re-ACK so a sender whose ACK was lost can still advance.
    Packet ack = make_control(PktType::kAck, HeaderSizes::kRoceAck);
    ack.ack_psn = expected_;
    send_control(std::move(ack));
    return;
  }

  // Out-of-order: GBN drops the packet and NAKs once per gap event.
  stats_.out_of_order_packets++;
  if (!nak_outstanding_) {
    nak_outstanding_ = true;
    Packet nak = make_control(PktType::kNack, HeaderSizes::kRoceAck);
    nak.ack_psn = expected_;
    send_control(std::move(nak));
  }
}


void GbnSender::checkpoint_extra(StateIO& io) {
  io.pod(snd_una_);
  io.pod(snd_nxt_);
  io.pod(last_rewind_una_);
  io.pod(high_water_);
  io.timer(rto_);
}

void GbnReceiver::checkpoint_extra(StateIO& io) {
  io.pod(expected_);
  io.pod(since_ack_);
  io.pod(nak_outstanding_);
}

}  // namespace dcp
