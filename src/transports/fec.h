#pragma once
// Erasure-coded reliability tier (the seventh scheme): the sender cuts the
// message into (k, m) parity groups — k data chunks followed by m parity
// chunks computed by the GF(256) MDS codec in ec_codec.h — and streams the
// whole stride fire-and-forget, gated only by a byte window.  The receiver
// completes a group as soon as ANY k of its k + m chunks arrive (counting
// parity-decoded data as delivered) and group-ACKs it; only a group that
// loses MORE than m chunks falls back to per-group NACK selective repeat,
// driven by a quiet-period timer on the receiver plus the usual RTO
// backstop on the sender.  Built for lossy-beyond-the-datacenter links
// (10-100 ms RTT, 1-20% loss) where retransmission-only recovery pays a
// full RTT per loss and PFC/trimming are structurally impossible.

#include <cstdint>
#include <vector>

#include "host/transport.h"
#include "transports/ec_codec.h"

namespace dcp {

/// Wire layout shared by both ends: data packets 0..total_data-1 are dealt
/// into groups of k, each group followed by its m parity packets, and the
/// whole train is numbered by one strictly increasing wire PSN.  A tail
/// group with rem < k data chunks still carries m parity chunks (the codec
/// simply runs at (rem, m)).
struct FecLayout {
  std::uint32_t k = 1;
  std::uint32_t m = 1;
  std::uint32_t total_data = 0;
  std::uint32_t full_groups = 0;
  std::uint32_t rem = 0;         // data chunks in the tail group (0 = none)
  std::uint32_t groups = 0;
  std::uint32_t wire_total = 0;  // data + parity packets on the wire

  FecLayout(std::uint32_t k_in, std::uint32_t m_in, std::uint32_t data_pkts) {
    k = k_in == 0 ? 1 : k_in;
    m = m_in == 0 ? 1 : m_in;
    total_data = data_pkts;
    full_groups = total_data / k;
    rem = total_data % k;
    groups = full_groups + (rem != 0 ? 1 : 0);
    wire_total = full_groups * (k + m) + (rem != 0 ? rem + m : 0);
  }

  std::uint32_t stride() const { return k + m; }
  std::uint32_t k_of(std::uint32_t g) const { return g < full_groups ? k : rem; }
  std::uint32_t wire_begin(std::uint32_t g) const { return g * stride(); }
  std::uint32_t wire_end(std::uint32_t g) const { return wire_begin(g) + k_of(g) + m; }
  std::uint32_t group_of(std::uint32_t psn) const {
    const std::uint32_t cut = full_groups * stride();
    return psn < cut ? psn / stride() : full_groups;
  }
  std::uint32_t index_in(std::uint32_t psn) const { return psn - wire_begin(group_of(psn)); }
  bool is_data(std::uint32_t psn) const {
    const std::uint32_t g = group_of(psn);
    return psn - wire_begin(g) < k_of(g);
  }
  /// Original data-packet index of a data wire PSN (caller checked is_data).
  std::uint32_t data_index(std::uint32_t psn) const {
    const std::uint32_t g = group_of(psn);
    return g * k + (psn - wire_begin(g));
  }
};

class FecSender final : public SenderTransport {
 public:
  FecSender(Simulator& sim, Host& host, FlowSpec spec, TransportConfig cfg);

  void on_packet(Packet pkt) override;
  bool done() const override { return acked_groups_ >= layout_.groups; }

 protected:
  bool protocol_has_packet() override;
  Packet protocol_next_packet() override;
  void on_start() override { arm_rto(); }
  void checkpoint_extra(StateIO& io) override;

 private:
  Packet make_fec_packet(std::uint32_t wire_psn, bool retransmit);
  void advance_past_acked();
  void ack_group(std::uint32_t g);
  void queue_retx(std::uint32_t wire_psn);
  void arm_rto() { rto_.arm_deadline(cfg_.rto_high); }
  void on_rto();
  std::uint64_t window_limit() const;

  FecLayout layout_;
  std::uint32_t snd_nxt_wire_ = 0;
  std::vector<bool> group_acked_;
  std::uint32_t acked_groups_ = 0;
  // First-transmission payload bytes charged to the stream window, returned
  // when the group is acknowledged (retransmits ride the retx queue and are
  // never charged — they are what unwedges a closed window).
  std::vector<std::uint64_t> group_payload_sent_;
  std::uint64_t window_used_ = 0;
  std::vector<bool> retx_pending_;  // indexed by wire PSN, data PSNs only
  std::uint32_t retx_count_ = 0;
  std::uint32_t retx_scan_ = 0;
  Timer rto_{sim_, [this] { on_rto(); }};  // deadline-class: re-armed per group ACK
};

class FecReceiver final : public ReceiverTransport {
 public:
  FecReceiver(Simulator& sim, Host& host, FlowSpec spec, TransportConfig cfg);

  void on_packet(Packet pkt) override;
  bool complete() const override { return complete_groups_ >= layout_.groups; }

 protected:
  void checkpoint_extra(StateIO& io) override;

 private:
  struct GroupState {
    std::uint16_t got_data = 0;
    std::uint16_t got_parity = 0;
    bool complete = false;
  };

  std::uint32_t payload_of_data(std::uint32_t data_idx) const;
  void complete_group(std::uint32_t g);
  void send_group_ack(std::uint32_t g, const Packet& cause);
  void arm_nack(Time delay) { nack_timer_.arm_deadline(delay); }
  void on_nack_timer();

  FecLayout layout_;
  std::vector<bool> received_;  // indexed by wire PSN
  std::vector<GroupState> group_;
  std::uint32_t complete_groups_ = 0;
  std::uint32_t groups_done_cum_ = 0;  // contiguous complete-group cursor
  std::uint32_t max_seen_group_ = 0;
  std::uint32_t expected_wire_ = 0;  // next in-order wire PSN (OOO stat only)
  Time nack_delay_;
  Timer nack_timer_{sim_, [this] { on_nack_timer(); }};
};

class FecFactory final : public TransportFactory {
 public:
  std::unique_ptr<SenderTransport> make_sender(Simulator& sim, Host& host, const FlowSpec& spec,
                                               const TransportConfig& cfg) override {
    return std::make_unique<FecSender>(sim, host, spec, cfg);
  }
  std::unique_ptr<ReceiverTransport> make_receiver(Simulator& sim, Host& host,
                                                   const FlowSpec& spec,
                                                   const TransportConfig& cfg) override {
    return std::make_unique<FecReceiver>(sim, host, spec, cfg);
  }
  std::string name() const override { return "FEC"; }
};

}  // namespace dcp
