#include "transports/ec_codec.h"

#include <cassert>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define DCP_EC_X86 1
#include <immintrin.h>
#endif

namespace dcp {
namespace {

// exp/log tables for GF(2^8) mod x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the
// polynomial every RS implementation from RAID-6 to ISA-L uses.  gf_exp is
// doubled so mul can skip the mod-255 reduction on the index sum.
struct GfTables {
  std::uint8_t exp[512];
  std::uint8_t log[256];

  GfTables() {
    std::uint32_t x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    for (unsigned i = 255; i < 512; ++i) exp[i] = exp[i - 255];
    log[0] = 0;  // never consulted: callers guard the zero operand
  }
};

const GfTables& tables() {
  static const GfTables t;
  return t;
}

// 16-entry nibble product tables for one coefficient: lo[v] = c*v and
// hi[v] = c*(v<<4), so c*s = lo[s & 0xf] ^ hi[s >> 4] by linearity of the
// field over GF(2).  This is both the PSHUFB operand layout and the exact
// arithmetic the vector tails reuse, so every kernel level produces the
// same bytes.
struct NibbleTables {
  alignas(16) std::uint8_t lo[16];
  alignas(16) std::uint8_t hi[16];
};

NibbleTables nibble_tables(std::uint8_t coef) {
  const GfTables& t = tables();
  NibbleTables nt;
  nt.lo[0] = 0;
  nt.hi[0] = 0;
  const unsigned lc = t.log[coef];
  for (unsigned v = 1; v < 16; ++v) {
    nt.lo[v] = t.exp[lc + t.log[v]];
    nt.hi[v] = t.exp[lc + t.log[v << 4]];
  }
  return nt;
}

void mul_acc_scalar(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                    const NibbleTables& nt) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t s = src[i];
    dst[i] ^= nt.lo[s & 0x0f] ^ nt.hi[s >> 4];
  }
}

void mul_scalar(std::uint8_t* dst, std::size_t n, const NibbleTables& nt) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t s = dst[i];
    dst[i] = static_cast<std::uint8_t>(nt.lo[s & 0x0f] ^ nt.hi[s >> 4]);
  }
}

#ifdef DCP_EC_X86

__attribute__((target("ssse3"))) void mul_acc_ssse3(std::uint8_t* dst, const std::uint8_t* src,
                                                    std::size_t n, const NibbleTables& nt) {
  const __m128i tlo = _mm_load_si128(reinterpret_cast<const __m128i*>(nt.lo));
  const __m128i thi = _mm_load_si128(reinterpret_cast<const __m128i*>(nt.hi));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i l = _mm_shuffle_epi8(tlo, _mm_and_si128(s, mask));
    const __m128i h = _mm_shuffle_epi8(thi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, _mm_xor_si128(l, h)));
  }
  mul_acc_scalar(dst + i, src + i, n - i, nt);
}

__attribute__((target("ssse3"))) void mul_ssse3(std::uint8_t* dst, std::size_t n,
                                                const NibbleTables& nt) {
  const __m128i tlo = _mm_load_si128(reinterpret_cast<const __m128i*>(nt.lo));
  const __m128i thi = _mm_load_si128(reinterpret_cast<const __m128i*>(nt.hi));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i l = _mm_shuffle_epi8(tlo, _mm_and_si128(s, mask));
    const __m128i h = _mm_shuffle_epi8(thi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(l, h));
  }
  mul_scalar(dst + i, n - i, nt);
}

__attribute__((target("avx2"))) void mul_acc_avx2(std::uint8_t* dst, const std::uint8_t* src,
                                                  std::size_t n, const NibbleTables& nt) {
  const __m256i tlo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nt.lo)));
  const __m256i thi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nt.hi)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i l = _mm256_shuffle_epi8(tlo, _mm256_and_si256(s, mask));
    const __m256i h = _mm256_shuffle_epi8(thi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, _mm256_xor_si256(l, h)));
  }
  mul_acc_scalar(dst + i, src + i, n - i, nt);
}

__attribute__((target("avx2"))) void mul_avx2(std::uint8_t* dst, std::size_t n,
                                              const NibbleTables& nt) {
  const __m256i tlo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nt.lo)));
  const __m256i thi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nt.hi)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i l = _mm256_shuffle_epi8(tlo, _mm256_and_si256(s, mask));
    const __m256i h = _mm256_shuffle_epi8(thi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(l, h));
  }
  mul_scalar(dst + i, n - i, nt);
}

#endif  // DCP_EC_X86

int detect_simd_level() {
#ifdef DCP_EC_X86
  if (__builtin_cpu_supports("avx2")) return 2;
  if (__builtin_cpu_supports("ssse3")) return 1;
#endif
  return 0;
}

int& simd_level_slot() {
  static int level = detect_simd_level();
  return level;
}

}  // namespace

int ec_simd_level() { return simd_level_slot(); }

void set_ec_simd_level(int level) {
  const int cap = detect_simd_level();
  if (level > cap) level = cap;
  if (level < 0) level = 0;
  simd_level_slot() = level;
}

void gf_mul_region_acc(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                       std::uint8_t coef) {
  if (coef == 0 || n == 0) return;
  if (coef == 1) {
    // XOR accumulate — the m == 1 parity row and every unit pivot factor.
    for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  const NibbleTables nt = nibble_tables(coef);
#ifdef DCP_EC_X86
  switch (simd_level_slot()) {
    case 2:
      mul_acc_avx2(dst, src, n, nt);
      return;
    case 1:
      mul_acc_ssse3(dst, src, n, nt);
      return;
    default:
      break;
  }
#endif
  mul_acc_scalar(dst, src, n, nt);
}

void gf_mul_region(std::uint8_t* dst, std::size_t n, std::uint8_t coef) {
  if (coef == 1 || n == 0) return;
  if (coef == 0) {
    std::memset(dst, 0, n);
    return;
  }
  const NibbleTables nt = nibble_tables(coef);
#ifdef DCP_EC_X86
  switch (simd_level_slot()) {
    case 2:
      mul_avx2(dst, n, nt);
      return;
    case 1:
      mul_ssse3(dst, n, nt);
      return;
    default:
      break;
  }
#endif
  mul_scalar(dst, n, nt);
}

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const GfTables& t = tables();
  return t.exp[t.log[a] + t.log[b]];
}

std::uint8_t gf_inv(std::uint8_t a) {
  assert(a != 0 && "GF(256) zero has no inverse");
  const GfTables& t = tables();
  return t.exp[255 - t.log[a]];
}

std::uint8_t gf_div(std::uint8_t a, std::uint8_t b) {
  assert(b != 0 && "GF(256) division by zero");
  if (a == 0) return 0;
  const GfTables& t = tables();
  return t.exp[t.log[a] + 255 - t.log[b]];
}

EcCodec::EcCodec(unsigned k, unsigned m) : k_(k), m_(m), coef_(std::size_t{m} * k) {
  assert(k >= 1 && m >= 1 && k + m <= 256 && "EcCodec: need 1 <= k, 1 <= m, k + m <= 256");
  if (m == 1) {
    // Single-parity XOR: the 1 x k all-ones row.  Any one erasure among the
    // k + 1 chunks is the XOR of the survivors.
    for (unsigned i = 0; i < k; ++i) coef_[i] = 1;
    return;
  }
  // Cauchy construction: coef[j][i] = 1 / (x_j ^ y_i) with x_j = k + j and
  // y_i = i.  The index sets are disjoint (so x_j ^ y_i != 0) and every
  // square submatrix of a Cauchy matrix is nonsingular, which makes the
  // systematic code [I_k ; C] MDS: any k of the k + m chunks decode.
  for (unsigned j = 0; j < m; ++j) {
    for (unsigned i = 0; i < k; ++i) {
      coef_[std::size_t{j} * k + i] =
          gf_inv(static_cast<std::uint8_t>((k + j) ^ i));
    }
  }
}

std::vector<std::vector<std::uint8_t>> EcCodec::encode(
    const std::vector<std::vector<std::uint8_t>>& data) const {
  assert(data.size() == k_ && "EcCodec::encode: expected exactly k data chunks");
  std::size_t len = 0;
  for (const auto& d : data) len = d.size() > len ? d.size() : len;
  std::vector<std::vector<std::uint8_t>> parity(m_, std::vector<std::uint8_t>(len, 0));
  for (unsigned j = 0; j < m_; ++j) {
    for (unsigned i = 0; i < k_; ++i) {
      // Accumulate each chunk over its own length: a short chunk (the tail
      // group's last one) is implicitly zero-padded, and zeroes add nothing.
      gf_mul_region_acc(parity[j].data(), data[i].data(), data[i].size(), coef(j, i));
    }
  }
  return parity;
}

bool EcCodec::decode(std::vector<std::vector<std::uint8_t>>& chunks,
                     const std::vector<bool>& present) const {
  assert(chunks.size() == k_ + m_ && present.size() == k_ + m_ &&
         "EcCodec::decode: expected k + m chunk/present slots");

  // Pick the first k present chunks as the decoding basis; with fewer than
  // k survivors the group is arithmetically unrecoverable.
  std::vector<unsigned> rows;
  rows.reserve(k_);
  for (unsigned i = 0; i < k_ + m_ && rows.size() < k_; ++i) {
    if (present[i]) rows.push_back(i);
  }
  if (rows.size() < k_) return false;

  bool all_data = true;
  for (unsigned r : rows) all_data &= (r < k_);
  if (all_data) return true;  // nothing to reconstruct

  std::size_t len = 0;
  for (unsigned r : rows) len = chunks[r].size() > len ? chunks[r].size() : len;

  // A[r][*] is row `rows[r]` of the systematic generator [I_k ; C], and
  // work[r] the matching received buffer; Gauss-Jordan over GF(256) turns
  // A into I and work into the k data chunks.
  std::vector<std::uint8_t> a(std::size_t{k_} * k_, 0);
  std::vector<std::vector<std::uint8_t>> work(k_);
  for (unsigned r = 0; r < k_; ++r) {
    const unsigned src = rows[r];
    if (src < k_) {
      a[std::size_t{r} * k_ + src] = 1;
    } else {
      std::memcpy(&a[std::size_t{r} * k_], &coef_[std::size_t{src - k_} * k_], k_);
    }
    work[r].assign(len, 0);
    std::memcpy(work[r].data(), chunks[src].data(), chunks[src].size());
  }

  for (unsigned col = 0; col < k_; ++col) {
    unsigned piv = col;
    while (piv < k_ && a[std::size_t{piv} * k_ + col] == 0) ++piv;
    assert(piv < k_ && "EcCodec::decode: MDS matrix cannot be singular");
    if (piv != col) {
      for (unsigned c = 0; c < k_; ++c)
        std::swap(a[std::size_t{piv} * k_ + c], a[std::size_t{col} * k_ + c]);
      work[piv].swap(work[col]);
    }
    const std::uint8_t inv = gf_inv(a[std::size_t{col} * k_ + col]);
    if (inv != 1) {
      for (unsigned c = 0; c < k_; ++c)
        a[std::size_t{col} * k_ + c] = gf_mul(a[std::size_t{col} * k_ + c], inv);
      gf_mul_region(work[col].data(), len, inv);
    }
    for (unsigned r = 0; r < k_; ++r) {
      if (r == col) continue;
      const std::uint8_t f = a[std::size_t{r} * k_ + col];
      if (f == 0) continue;
      for (unsigned c = 0; c < k_; ++c)
        a[std::size_t{r} * k_ + c] ^= gf_mul(f, a[std::size_t{col} * k_ + c]);
      gf_mul_region_acc(work[r].data(), work[col].data(), len, f);
    }
  }

  for (unsigned i = 0; i < k_; ++i) {
    if (!present[i]) chunks[i] = std::move(work[i]);
  }
  return true;
}

}  // namespace dcp
