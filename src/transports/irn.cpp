#include "transports/irn.h"

#include "sim/snapshot.h"

#include "host/host.h"

namespace dcp {

std::uint64_t IrnSender::inflight_bytes() const {
  // Unacked bytes between the cumulative ACK and snd_nxt; SACKed holes are
  // a second-order correction we ignore (IRN uses the same approximation).
  return static_cast<std::uint64_t>(snd_nxt_ - snd_una_) * cfg_.mtu_payload;
}

bool IrnSender::protocol_has_packet() {
  if (done()) return false;
  if (has_retx()) return true;
  return snd_nxt_ < total_packets() && inflight_bytes() < cc_->window_bytes();
}

Packet IrnSender::protocol_next_packet() {
  // Retransmissions take precedence over new data.
  if (has_retx()) {
    while (retx_scan_ < retx_pending_.size() && !retx_pending_[retx_scan_]) ++retx_scan_;
    const std::uint32_t psn = retx_scan_;
    retx_pending_[psn] = false;
    --retx_count_;
    Packet p = make_data_packet(psn, HeaderSizes::kRoceData + (psn == 0 ? HeaderSizes::kReth : 0));
    p.tag = DcpTag::kNonDcp;
    p.is_retransmit = true;
    return p;
  }
  const std::uint32_t psn = snd_nxt_++;
  Packet p = make_data_packet(psn, HeaderSizes::kRoceData + (psn == 0 ? HeaderSizes::kReth : 0));
  p.tag = DcpTag::kNonDcp;
  return p;
}

void IrnSender::arm_rto() {
  const std::uint32_t outstanding = snd_nxt_ - snd_una_;
  const Time rto = outstanding <= cfg_.rto_low_threshold_pkts ? cfg_.rto_low : cfg_.rto_high;
  rto_.arm_deadline(rto);
}

void IrnSender::on_rto() {
  if (done()) return;
  stats_.timeouts++;
  cc_->on_timeout();
  // Selective timeout recovery: every unacked outstanding packet becomes
  // eligible for (re)transmission again.
  // Re-mark every unacked outstanding packet.  The count must cover
  // *all* pending bits (including ones already marked by fast retransmit)
  // or previously marked PSNs would never be popped again.
  retx_count_ = 0;
  retx_scan_ = total_packets();
  loss_scan_ = snd_una_;
  for (std::uint32_t p = snd_una_; p < snd_nxt_; ++p) {
    retx_done_[p] = false;
    if (!acked_[p]) {
      retx_pending_[p] = true;
      ++retx_count_;
      if (p < retx_scan_) retx_scan_ = p;
    }
  }
  enter_recovery();
  arm_rto();
  kick_nic();
}

void IrnSender::enter_recovery() {
  if (!in_recovery_) {
    in_recovery_ = true;
    recovery_high_ = snd_nxt_;
  }
}

void IrnSender::scan_for_losses() {
  // A packet is lost iff it is unacked and a higher PSN has been SACKed;
  // each packet is fast-retransmitted at most once per recovery episode.
  // The watermark skips ranges already classified this episode.
  std::uint32_t p = std::max(snd_una_, loss_scan_);
  const std::uint32_t end = std::min(highest_sacked_, snd_nxt_);
  for (; p < end; ++p) {
    if (!acked_[p] && !retx_done_[p] && !retx_pending_[p]) {
      retx_pending_[p] = true;
      retx_done_[p] = true;
      ++retx_count_;
      if (p < retx_scan_) retx_scan_ = p;
    }
  }
  if (end > loss_scan_) loss_scan_ = end;
}

void IrnSender::advance_una() {
  while (snd_una_ < total_packets() && acked_[snd_una_]) ++snd_una_;
}

void IrnSender::on_packet(Packet pkt) {
  switch (pkt.type) {
    case PktType::kCnp:
      stats_.cnp_received++;
      cc_->on_cnp();
      return;
    case PktType::kAck:
    case PktType::kSack:
      break;
    default:
      return;
  }

  const std::uint32_t old_una = snd_una_;
  if (pkt.echo_ts >= 0) cc_->on_rtt_sample(sim_.now() - pkt.echo_ts);
  // Cumulative part.
  for (std::uint32_t p = snd_una_; p < pkt.ack_psn && p < total_packets(); ++p) acked_[p] = true;
  // Selective part.
  if (pkt.type == PktType::kSack && pkt.sack_psn < total_packets()) {
    acked_[pkt.sack_psn] = true;
    if (pkt.sack_psn + 1 > highest_sacked_) highest_sacked_ = pkt.sack_psn + 1;
    if (retx_pending_[pkt.sack_psn]) {
      retx_pending_[pkt.sack_psn] = false;
      --retx_count_;
    }
  }
  advance_una();
  if (snd_una_ > highest_sacked_) highest_sacked_ = snd_una_;

  if (snd_una_ > old_una) {
    cc_->on_ack(static_cast<std::uint64_t>(snd_una_ - old_una) * cfg_.mtu_payload);
    arm_rto();
  }

  if (done()) {
    rto_.cancel();
    finish();
    return;
  }

  // Exit condition: cumulative ACK passed everything outstanding at entry.
  if (in_recovery_ && snd_una_ >= recovery_high_) {
    in_recovery_ = false;
    std::fill(retx_done_.begin(), retx_done_.end(), false);
    loss_scan_ = snd_una_;  // fresh episode: everything may be rescanned
  }

  // Any SACK (an out-of-order indication) triggers/extends loss recovery.
  if (pkt.type == PktType::kSack) {
    enter_recovery();
    scan_for_losses();
  }
  kick_nic();
}

void IrnReceiver::on_packet(Packet pkt) {
  if (pkt.type != PktType::kData) return;
  stats_.data_packets++;

  if (ecn_enabled_ && pkt.ecn_ce && cnp_.should_send(sim_.now())) {
    send_control(make_control(PktType::kCnp, HeaderSizes::kCnp));
  }

  if (pkt.psn >= total_packets()) return;
  if (received_[pkt.psn]) {
    stats_.duplicate_packets++;
  } else {
    received_[pkt.psn] = true;
    received_count_++;
    stats_.bytes_received += pkt.payload_bytes;
    if (pkt.psn != expected_) stats_.out_of_order_packets++;
    while (expected_ < total_packets() && received_[expected_]) ++expected_;
    if (complete()) mark_complete();
  }

  // In-order arrivals produce a cumulative ACK; out-of-order arrivals (or
  // duplicates, which imply sender-side confusion) produce a SACK.
  if (pkt.psn + 1 == expected_ || pkt.psn < expected_) {
    Packet ack = make_control(PktType::kAck, HeaderSizes::kRoceAck);
    ack.ack_psn = expected_;
    ack.echo_ts = pkt.sent_at;
    send_control(std::move(ack));
  } else {
    Packet sack = make_control(PktType::kSack, HeaderSizes::kRoceAck + 4);
    sack.ack_psn = expected_;
    sack.sack_psn = pkt.psn;
    sack.echo_ts = pkt.sent_at;
    send_control(std::move(sack));
  }
}


void IrnSender::checkpoint_extra(StateIO& io) {
  io.vbool(acked_);
  io.vbool(retx_pending_);
  io.vbool(retx_done_);
  io.pod(retx_count_);
  io.pod(retx_scan_);
  io.pod(snd_una_);
  io.pod(snd_nxt_);
  io.pod(highest_sacked_);
  io.pod(loss_scan_);
  io.pod(in_recovery_);
  io.pod(recovery_high_);
  io.timer(rto_);
}

void IrnReceiver::checkpoint_extra(StateIO& io) {
  io.vbool(received_);
  io.pod(received_count_);
  io.pod(expected_);
}

}  // namespace dcp
