#include "transports/fec.h"

#include "sim/snapshot.h"

#include <algorithm>

#include "host/host.h"

namespace dcp {
namespace {

// Group/index framing rides a 4-byte extension header on every FEC frame
// (2-byte group id + stride index + geometry), data and parity alike.
constexpr std::uint32_t kFecHdr = 4;

}  // namespace

// --- Sender ----------------------------------------------------------------

FecSender::FecSender(Simulator& sim, Host& host, FlowSpec spec, TransportConfig cfg)
    : SenderTransport(sim, host, spec, cfg),
      layout_(cfg_.fec_k, cfg_.fec_m, total_packets()),
      group_acked_(layout_.groups, false),
      group_payload_sent_(layout_.groups, 0),
      retx_pending_(layout_.wire_total, false),
      retx_scan_(layout_.wire_total) {}

std::uint64_t FecSender::window_limit() const {
  return cfg_.fec_stream_window_bytes > 0 ? cfg_.fec_stream_window_bytes : cc_->window_bytes();
}

bool FecSender::protocol_has_packet() {
  if (done()) return false;
  if (retx_count_ > 0) return true;
  advance_past_acked();
  return snd_nxt_wire_ < layout_.wire_total && window_used_ < window_limit();
}

void FecSender::advance_past_acked() {
  // A group can be ACKed (decoded from a partial stride) while its tail is
  // still unsent; skipping the dead PSNs keeps new-data PSNs strictly
  // increasing, which is what the oracle's psn-monotonic check wants.
  while (snd_nxt_wire_ < layout_.wire_total && group_acked_[layout_.group_of(snd_nxt_wire_)]) {
    snd_nxt_wire_ = layout_.wire_end(layout_.group_of(snd_nxt_wire_));
  }
}

Packet FecSender::make_fec_packet(std::uint32_t wire_psn, bool retransmit) {
  // Hand-rolled rather than make_data_packet(): wire PSNs run past the
  // data-packet count, where payload_of() would wrap.
  const std::uint32_t g = layout_.group_of(wire_psn);
  const std::uint32_t idx = wire_psn - layout_.wire_begin(g);
  const bool is_parity = idx >= layout_.k_of(g);
  Packet p;
  p.src = spec_.src;
  p.dst = spec_.dst;
  p.flow = spec_.id;
  p.type = PktType::kData;
  p.op = spec_.op;
  p.psn = wire_psn;
  // Parity frames carry the group's widest chunk (its first): shorter data
  // chunks are zero-padded under the code.
  p.payload_bytes = is_parity ? payload_of(g * layout_.k) : payload_of(layout_.data_index(wire_psn));
  p.wire_bytes = p.payload_bytes + HeaderSizes::kRoceData + kFecHdr +
                 (wire_psn == 0 ? HeaderSizes::kReth : 0);
  p.ecn_capable = true;
  p.last_of_flow = (wire_psn + 1 == layout_.wire_total);
  p.queue_class = QueueClass::kData;
  p.tag = DcpTag::kNonDcp;
  p.is_retransmit = retransmit;
  if (is_parity && !retransmit) stats_.parity_packets_sent++;
  return p;
}

Packet FecSender::protocol_next_packet() {
  if (retx_count_ > 0) {
    while (retx_scan_ < retx_pending_.size() && !retx_pending_[retx_scan_]) ++retx_scan_;
    const std::uint32_t psn = retx_scan_;
    retx_pending_[psn] = false;
    --retx_count_;
    return make_fec_packet(psn, /*retransmit=*/true);
  }
  advance_past_acked();
  const std::uint32_t psn = snd_nxt_wire_++;
  Packet p = make_fec_packet(psn, /*retransmit=*/false);
  const std::uint32_t g = layout_.group_of(psn);
  group_payload_sent_[g] += p.payload_bytes;
  window_used_ += p.payload_bytes;
  return p;
}

void FecSender::ack_group(std::uint32_t g) {
  if (g >= layout_.groups || group_acked_[g]) return;
  group_acked_[g] = true;
  ++acked_groups_;
  window_used_ -= std::min(window_used_, group_payload_sent_[g]);
  // Any retransmissions still queued for the group are moot.
  const std::uint32_t end = std::min<std::uint32_t>(layout_.wire_end(g), snd_nxt_wire_);
  for (std::uint32_t p = layout_.wire_begin(g); p < end; ++p) {
    if (retx_pending_[p]) {
      retx_pending_[p] = false;
      --retx_count_;
    }
  }
  cc_->on_ack(group_payload_sent_[g]);
}

void FecSender::queue_retx(std::uint32_t wire_psn) {
  if (wire_psn >= snd_nxt_wire_) return;  // never sent: still streaming
  if (group_acked_[layout_.group_of(wire_psn)]) return;
  if (retx_pending_[wire_psn]) return;
  retx_pending_[wire_psn] = true;
  ++retx_count_;
  if (wire_psn < retx_scan_) retx_scan_ = wire_psn;
}

void FecSender::on_rto() {
  if (done()) return;
  stats_.timeouts++;
  cc_->on_timeout();
  // Backstop only: resend every sent-but-unacked DATA chunk.  The receiver
  // re-ACKs completed groups on duplicates, so even a lost group ACK heals.
  for (std::uint32_t psn = 0; psn < snd_nxt_wire_; ++psn) {
    if (layout_.is_data(psn)) queue_retx(psn);
  }
  arm_rto();
  kick_nic();
}

void FecSender::on_packet(Packet pkt) {
  switch (pkt.type) {
    case PktType::kCnp:
      stats_.cnp_received++;
      cc_->on_cnp();
      return;
    case PktType::kAck:
    case PktType::kNack:
      break;
    default:
      return;
  }
  if (pkt.echo_ts >= 0) cc_->on_rtt_sample(sim_.now() - pkt.echo_ts);
  const std::uint32_t old_acked = acked_groups_;
  // ack_psn carries the receiver's contiguous complete-group cursor on both
  // ACKs and NACKs; an ACK additionally names the completing group.
  for (std::uint32_t g = 0; g < pkt.ack_psn && g < layout_.groups; ++g) ack_group(g);
  if (pkt.type == PktType::kAck) {
    ack_group(pkt.sack_psn);
  } else {
    queue_retx(pkt.sack_psn);  // NACK: sack_psn is the requested wire PSN
  }
  if (acked_groups_ > old_acked) arm_rto();
  if (done()) {
    rto_.cancel();
    finish();
    return;
  }
  kick_nic();
}

// --- Receiver --------------------------------------------------------------

FecReceiver::FecReceiver(Simulator& sim, Host& host, FlowSpec spec, TransportConfig cfg)
    : ReceiverTransport(sim, host, spec, cfg),
      layout_(cfg_.fec_k, cfg_.fec_m, total_packets()),
      received_(layout_.wire_total, false),
      group_(layout_.groups),
      nack_delay_(cfg_.fec_nack_delay > 0 ? cfg_.fec_nack_delay : cfg_.rto_low) {}

std::uint32_t FecReceiver::payload_of_data(std::uint32_t data_idx) const {
  if (spec_.bytes == 0) return 0;
  const std::uint64_t mtu = cfg_.mtu_payload;
  const std::uint64_t offset = static_cast<std::uint64_t>(data_idx) * mtu;
  const std::uint64_t left = spec_.bytes - offset;
  return static_cast<std::uint32_t>(left < mtu ? left : mtu);
}

void FecReceiver::complete_group(std::uint32_t g) {
  GroupState& gs = group_[g];
  gs.complete = true;
  ++complete_groups_;
  // Parity decode stands in for the chunks that never arrived: credit their
  // bytes now and mark their wire slots so stragglers count as duplicates.
  const std::uint32_t begin = layout_.wire_begin(g);
  const std::uint32_t k_g = layout_.k_of(g);
  for (std::uint32_t i = 0; i < k_g; ++i) {
    if (!received_[begin + i]) {
      received_[begin + i] = true;
      gs.got_data++;
      stats_.decode_recovered_packets++;
      stats_.bytes_received += payload_of_data(layout_.data_index(begin + i));
    }
  }
  while (groups_done_cum_ < layout_.groups && group_[groups_done_cum_].complete) {
    ++groups_done_cum_;
  }
  if (complete()) {
    nack_timer_.cancel();
    mark_complete();
  }
}

void FecReceiver::send_group_ack(std::uint32_t g, const Packet& cause) {
  Packet ack = make_control(PktType::kAck, HeaderSizes::kRoceAck + kFecHdr);
  ack.ack_psn = groups_done_cum_;
  ack.sack_psn = g;
  ack.ecn_ce = cause.ecn_ce;  // echo for window-based CCs
  ack.echo_ts = cause.sent_at;
  send_control(std::move(ack));
}

void FecReceiver::on_nack_timer() {
  if (complete()) return;
  // Quiet period with incomplete groups behind the stream front: request
  // every missing DATA chunk of each such group (parity that was lost is
  // never re-made — the data it protected is what we actually want).
  bool sent = false;
  for (std::uint32_t g = 0; g <= max_seen_group_ && g < layout_.groups; ++g) {
    const GroupState& gs = group_[g];
    if (gs.complete) continue;
    const std::uint32_t begin = layout_.wire_begin(g);
    const std::uint32_t k_g = layout_.k_of(g);
    for (std::uint32_t i = 0; i < k_g; ++i) {
      if (received_[begin + i]) continue;
      Packet nack = make_control(PktType::kNack, HeaderSizes::kRoceAck + kFecHdr);
      nack.ack_psn = groups_done_cum_;
      nack.sack_psn = begin + i;
      send_control(std::move(nack));
      sent = true;
    }
  }
  // Follow-up at RTO pace so a lost NACK round retries without storming;
  // any new arrival re-arms the short quiet-period detector below.
  if (sent) arm_nack(cfg_.rto_high);
}

void FecReceiver::on_packet(Packet pkt) {
  if (pkt.type != PktType::kData) return;
  stats_.data_packets++;
  if (ecn_enabled_ && pkt.ecn_ce && cnp_.should_send(sim_.now())) {
    send_control(make_control(PktType::kCnp, HeaderSizes::kCnp));
  }
  if (pkt.psn >= layout_.wire_total) return;
  const std::uint32_t g = layout_.group_of(pkt.psn);
  GroupState& gs = group_[g];
  if (g > max_seen_group_) max_seen_group_ = g;

  if (received_[pkt.psn]) {
    stats_.duplicate_packets++;
    // Duplicate into a completed group re-ACKs it: this is how a lost
    // group ACK (or a spurious RTO burst) converges at the sender.
    if (gs.complete) send_group_ack(g, pkt);
    if (!complete()) arm_nack(nack_delay_);
    return;
  }

  received_[pkt.psn] = true;
  if (pkt.psn != expected_wire_) stats_.out_of_order_packets++;
  while (expected_wire_ < layout_.wire_total && received_[expected_wire_]) ++expected_wire_;

  const bool is_data = layout_.is_data(pkt.psn);
  if (gs.complete) {
    // The group already decoded without this chunk (late parity, or data
    // overtaken by its own repair): no new payload bytes.
    stats_.duplicate_packets++;
    send_group_ack(g, pkt);
    if (!complete()) arm_nack(nack_delay_);
    return;
  }
  if (is_data) {
    gs.got_data++;
    stats_.bytes_received += pkt.payload_bytes;
    if (pkt.is_retransmit) stats_.nack_recovered_packets++;
  } else {
    gs.got_parity++;
  }
  if (EcCodec::recoverable(layout_.k_of(g), gs.got_data, gs.got_parity)) {
    complete_group(g);
    send_group_ack(g, pkt);
  }
  if (!complete()) arm_nack(nack_delay_);
}


void FecSender::checkpoint_extra(StateIO& io) {
  io.pod(snd_nxt_wire_);
  io.vbool(group_acked_);
  io.pod(acked_groups_);
  io.vec(group_payload_sent_);
  io.pod(window_used_);
  io.vbool(retx_pending_);
  io.pod(retx_count_);
  io.pod(retx_scan_);
  io.timer(rto_);
}

void FecReceiver::checkpoint_extra(StateIO& io) {
  io.vbool(received_);
  io.vec(group_);
  io.pod(complete_groups_);
  io.pod(groups_done_cum_);
  io.pod(max_seen_group_);
  io.pod(expected_wire_);
  io.timer(nack_timer_);
}

}  // namespace dcp
