#pragma once
// GF(256) erasure codec for the FEC transport (src/transports/fec.h).
//
// A group of k data chunks is extended with m parity chunks so that ANY k
// of the k + m chunks reconstruct the originals (an MDS code).  m == 1 is
// plain XOR parity; m > 1 uses a systematic Cauchy-matrix Reed-Solomon
// construction over GF(2^8) with the 0x11d primitive polynomial — every
// square submatrix of a Cauchy matrix is nonsingular, which is exactly the
// MDS property, and the arithmetic stays table-driven and branch-light so
// bench_core can gate encode+decode throughput like the rest of the hot
// path.
//
// The simulator's packets carry no payload bytes, so FecReceiver only asks
// the arithmetic question (EcCodec::recoverable); the byte paths exist for
// unit tests and the codec micro-benchmark, and for any future integration
// that moves real buffers.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dcp {

// --- GF(256) arithmetic (primitive polynomial 0x11d) -----------------------

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b);
std::uint8_t gf_inv(std::uint8_t a);  // a != 0
std::uint8_t gf_div(std::uint8_t a, std::uint8_t b);  // b != 0

// --- Region kernels ---------------------------------------------------------
// The encode/decode inner loops: dst ^= coef * src (multiply-accumulate)
// and dst = coef * dst (in-place scale) over whole buffers.  On x86 the
// kernels use the classic two-PSHUFB nibble-table scheme (SSSE3, widened
// to 32 lanes under AVX2), selected once at runtime; every path — scalar
// included — performs the identical table-exact GF(256) arithmetic, so
// outputs are bit-identical regardless of the selected level.

void gf_mul_region_acc(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                       std::uint8_t coef);
void gf_mul_region(std::uint8_t* dst, std::size_t n, std::uint8_t coef);

/// Active kernel level: 0 = scalar, 1 = SSSE3, 2 = AVX2.  Resolved from
/// CPUID on first use.
int ec_simd_level();
/// Forces a level at or below what the hardware supports (tests pin the
/// scalar path to prove bit-identity against the vector ones).
void set_ec_simd_level(int level);

class EcCodec {
 public:
  /// k >= 1 data chunks, m >= 1 parity chunks, k + m <= 256 (field size).
  EcCodec(unsigned k, unsigned m);

  unsigned k() const { return k_; }
  unsigned m() const { return m_; }

  /// Encodes k data chunks into m parity chunks sized to the widest chunk.
  /// data.size() must equal k; shorter chunks (the tail group's last one)
  /// are treated as zero-padded to the widest length.
  std::vector<std::vector<std::uint8_t>> encode(
      const std::vector<std::vector<std::uint8_t>>& data) const;

  /// Reconstructs every missing DATA chunk in place.  `chunks` has k + m
  /// slots (data first, then parity); `present[i]` marks slot i as received.
  /// Missing-parity slots are left empty — the transport never needs them
  /// back.  Returns false (and touches nothing) when fewer than k chunks
  /// are present, i.e. the group needs retransmission instead.
  bool decode(std::vector<std::vector<std::uint8_t>>& chunks,
              const std::vector<bool>& present) const;

  /// The arithmetic reachability rule the transport uses on the fly: an MDS
  /// group decodes iff at least k of its k + m chunks arrived.
  static bool recoverable(unsigned k, unsigned have_data, unsigned have_parity) {
    return have_data + have_parity >= k;
  }

 private:
  std::uint8_t coef(unsigned row, unsigned col) const { return coef_[row * k_ + col]; }

  unsigned k_;
  unsigned m_;
  // m x k parity-generator rows.  m == 1 is the all-ones row (classic XOR
  // parity); m > 1 is a pure Cauchy matrix — mixing the two would forfeit
  // the every-submatrix-nonsingular guarantee.
  std::vector<std::uint8_t> coef_;
};

}  // namespace dcp
