#include "transports/racktlp.h"

#include "sim/snapshot.h"

#include <algorithm>

#include "host/host.h"

namespace dcp {

bool RackTlpSender::protocol_has_packet() {
  if (done()) return false;
  if (retx_count_ > 0) return true;
  const std::uint64_t inflight =
      static_cast<std::uint64_t>(snd_nxt_ - snd_una_) * cfg_.mtu_payload;
  return snd_nxt_ < total_packets() && inflight < cc_->window_bytes();
}

Packet RackTlpSender::protocol_next_packet() {
  std::uint32_t psn;
  bool retx = false;
  if (retx_count_ > 0) {
    while (retx_scan_ < retx_pending_.size() && !retx_pending_[retx_scan_]) ++retx_scan_;
    psn = retx_scan_;
    retx_pending_[psn] = false;
    --retx_count_;
    retx = true;
  } else {
    psn = snd_nxt_++;
  }
  Packet p = make_data_packet(psn, HeaderSizes::kRoceData + (psn == 0 ? HeaderSizes::kReth : 0));
  p.tag = DcpTag::kNonDcp;
  p.is_retransmit = retx;
  xmit_ts_[psn] = sim_.now();  // RACK: every transmission re-timestamps
  return p;
}

void RackTlpSender::arm_rack_timer(Time deadline) { rack_.arm_deadline_at(deadline); }

void RackTlpSender::on_rack() {
  detect_losses();
  kick_nic();
}

void RackTlpSender::arm_tlp() { tlp_.arm_deadline(2 * srtt_); }

void RackTlpSender::on_tlp() {
  if (done()) return;
  // Tail loss probe: resend the newest unacked packet to elicit a SACK.
  for (std::uint32_t p = snd_nxt_; p > snd_una_; --p) {
    const std::uint32_t psn = p - 1;
    if (!acked_[psn] && !retx_pending_[psn]) {
      retx_pending_[psn] = true;
      ++retx_count_;
      retx_scan_ = std::min(retx_scan_, psn);
      break;
    }
  }
  arm_tlp();
  kick_nic();
}

void RackTlpSender::arm_rto() { rto_.arm_deadline(cfg_.rto_high); }

void RackTlpSender::on_rto() {
  if (done()) return;
  stats_.timeouts++;
  cc_->on_timeout();
  retx_scan_ = total_packets();
  for (std::uint32_t p = snd_una_; p < snd_nxt_; ++p) {
    if (!acked_[p] && !retx_pending_[p]) {
      retx_pending_[p] = true;
      ++retx_count_;
      if (p < retx_scan_) retx_scan_ = p;
    }
  }
  arm_rto();
  kick_nic();
}

void RackTlpSender::detect_losses() {
  if (rack_xmit_ts_ < 0) return;
  // reo_wnd = one estimated RTT (paper's description of the mechanism).
  const Time reo_wnd = srtt_;
  Time next_deadline = kTimeInfinity;
  for (std::uint32_t p = snd_una_; p < snd_nxt_; ++p) {
    if (acked_[p] || retx_pending_[p] || xmit_ts_[p] < 0) continue;
    if (xmit_ts_[p] + reo_wnd <= rack_xmit_ts_) {
      retx_pending_[p] = true;
      ++retx_count_;
      if (p < retx_scan_) retx_scan_ = p;
    } else if (xmit_ts_[p] < rack_xmit_ts_) {
      // Could still be declared lost once reo_wnd elapses.
      next_deadline = std::min(next_deadline, sim_.now() + (xmit_ts_[p] + reo_wnd - rack_xmit_ts_));
    }
  }
  if (next_deadline != kTimeInfinity) arm_rack_timer(next_deadline);
}

void RackTlpSender::on_packet(Packet pkt) {
  switch (pkt.type) {
    case PktType::kCnp:
      stats_.cnp_received++;
      cc_->on_cnp();
      return;
    case PktType::kAck:
    case PktType::kSack:
      break;
    default:
      return;
  }

  const std::uint32_t old_una = snd_una_;
  for (std::uint32_t p = snd_una_; p < pkt.ack_psn && p < total_packets(); ++p) {
    if (!acked_[p]) {
      acked_[p] = true;
      rack_xmit_ts_ = std::max(rack_xmit_ts_, xmit_ts_[p]);
    }
  }
  if (pkt.type == PktType::kSack && pkt.sack_psn < total_packets() && !acked_[pkt.sack_psn]) {
    acked_[pkt.sack_psn] = true;
    rack_xmit_ts_ = std::max(rack_xmit_ts_, xmit_ts_[pkt.sack_psn]);
    // RTT sample from the echoed packet.
    const Time sample = sim_.now() - xmit_ts_[pkt.sack_psn];
    srtt_ = (7 * srtt_ + sample) / 8;
    if (retx_pending_[pkt.sack_psn]) {
      retx_pending_[pkt.sack_psn] = false;
      --retx_count_;
    }
  }
  while (snd_una_ < total_packets() && acked_[snd_una_]) ++snd_una_;

  if (snd_una_ > old_una) {
    cc_->on_ack(static_cast<std::uint64_t>(snd_una_ - old_una) * cfg_.mtu_payload);
  }
  if (done()) {
    rack_.cancel();
    tlp_.cancel();
    rto_.cancel();
    finish();
    return;
  }
  arm_tlp();
  arm_rto();
  detect_losses();
  kick_nic();
}


void RackTlpSender::checkpoint_extra(StateIO& io) {
  io.vbool(acked_);
  io.vbool(retx_pending_);
  io.vec(xmit_ts_);
  io.pod(retx_count_);
  io.pod(retx_scan_);
  io.pod(snd_una_);
  io.pod(snd_nxt_);
  io.pod(srtt_);
  io.pod(rack_xmit_ts_);
  io.timer(rack_);
  io.timer(tlp_);
  io.timer(rto_);
}

}  // namespace dcp
