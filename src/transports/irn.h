#pragma once
// IRN (Mittal et al., SIGCOMM 2018) — the paper's representative RNIC-SR
// (simplified selective repeat in the NIC).
//
// Receiver: accepts out-of-order packets (tracked in a bitmap) and answers
// every OOO arrival with a SACK carrying the cumulative ePSN plus the PSN
// just received.  Sender: keeps a bitmap of (S)ACKed packets; a SACK or an
// RTO enters *loss recovery*, where a packet counts as lost iff a higher
// PSN has been SACKed.  The sender exits recovery only once the cumulative
// ACK passes the highest PSN outstanding at entry — so a retransmission
// that is lost again can only be recovered by RTO (paper §2.2 Issue #2).
// Flow control is a static BDP window; RTO is RTO_low when few packets are
// outstanding, RTO_high otherwise.

#include <vector>

#include "host/transport.h"

namespace dcp {

class IrnSender final : public SenderTransport {
 public:
  IrnSender(Simulator& sim, Host& host, FlowSpec spec, TransportConfig cfg)
      : SenderTransport(sim, host, spec, cfg),
        acked_(total_packets(), false),
        retx_pending_(total_packets(), false),
        retx_done_(total_packets(), false) {}
  void on_packet(Packet pkt) override;
  bool done() const override { return snd_una_ >= total_packets(); }

  bool in_recovery() const { return in_recovery_; }
  std::uint32_t snd_una() const { return snd_una_; }
  std::uint32_t snd_nxt() const { return snd_nxt_; }
  std::uint32_t retx_count() const { return retx_count_; }
  bool rto_armed() const { return rto_.pending(); }

 protected:
  bool protocol_has_packet() override;
  Packet protocol_next_packet() override;
  void on_start() override { arm_rto(); }
  void checkpoint_extra(StateIO& io) override;

 private:
  void arm_rto();
  void on_rto();
  void enter_recovery();
  void scan_for_losses();
  void advance_una();
  std::uint64_t inflight_bytes() const;
  bool has_retx() const { return retx_count_ > 0; }

  std::vector<bool> acked_;        // sender-side bitmap (cumulative+selective)
  std::vector<bool> retx_pending_; // marked lost, awaiting retransmission
  std::vector<bool> retx_done_;    // retransmitted once in this episode
  std::uint32_t retx_count_ = 0;
  std::uint32_t retx_scan_ = 0;    // next index to pop from retx_pending_
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  std::uint32_t highest_sacked_ = 0;  // highest PSN ever (s)acked + 1
  // Loss-scan watermark: below it every packet is acked or already
  // fast-retransmitted this episode, so each SACK only scans the newly
  // SACKed range (amortized O(total) per episode instead of
  // O(window) per SACK — essential for cross-DC BDP windows).
  std::uint32_t loss_scan_ = 0;
  bool in_recovery_ = false;
  std::uint32_t recovery_high_ = 0;   // snd_nxt at recovery entry
  Timer rto_{sim_, [this] { on_rto(); }};  // deadline-class: re-armed per ACK
};

class IrnReceiver final : public ReceiverTransport {
 public:
  IrnReceiver(Simulator& sim, Host& host, FlowSpec spec, TransportConfig cfg)
      : ReceiverTransport(sim, host, spec, cfg), received_(total_packets(), false) {}

  void on_packet(Packet pkt) override;
  bool complete() const override { return received_count_ >= total_packets(); }

 protected:
  void checkpoint_extra(StateIO& io) override;

 private:
  std::vector<bool> received_;
  std::uint32_t received_count_ = 0;
  std::uint32_t expected_ = 0;  // cumulative ePSN
};

class IrnFactory final : public TransportFactory {
 public:
  std::unique_ptr<SenderTransport> make_sender(Simulator& sim, Host& host, const FlowSpec& spec,
                                               const TransportConfig& cfg) override {
    return std::make_unique<IrnSender>(sim, host, spec, cfg);
  }
  std::unique_ptr<ReceiverTransport> make_receiver(Simulator& sim, Host& host,
                                                   const FlowSpec& spec,
                                                   const TransportConfig& cfg) override {
    return std::make_unique<IrnReceiver>(sim, host, spec, cfg);
  }
  std::string name() const override { return "IRN"; }
};

}  // namespace dcp
