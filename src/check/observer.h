#pragma once
// CheckObserver: the observation seam the invariant oracle attaches through.
//
// Components report protocol-visible events (host emissions and deliveries,
// switch trims and drops, wire losses, shared-buffer accounting, message and
// flow completions) to the observer installed on their Simulator.  Every
// hook site is a single null-checked pointer call, so an unarmed run pays
// one predictable branch per event and an armed run never perturbs protocol
// behaviour — the observer only reads.
//
// This header is include-only and depends on nothing above the net layer,
// so any subsystem can call hooks without a link-time dependency on the
// oracle itself (src/check/invariant_oracle.*, which lives higher in the
// library stack).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "sim/time.h"

namespace dcp {

class SharedBuffer;

/// Outcome of one BufferShadow replay step.
enum class ShadowFail : std::uint8_t { kNone, kUnderflow, kMismatch };

/// Independent replay of a SharedBuffer's conservation accounting.  The
/// struct lives here (not in the oracle) so SharedBuffer can run the
/// per-call replay *inline*: alloc/release fire once per switch hop —
/// the hottest hook pair by far — and an indirect call per hop would
/// dominate the armed cost.  The virtual observer is consulted only when
/// a step diverges (`last_fail` says how), so checking strictness is
/// unchanged while the clean path stays statically dispatched.
struct BufferShadow {
  std::uint64_t used = 0;
  std::vector<std::uint64_t> per_key;  // index = port * kNumQueueClasses + cls
  ShadowFail last_fail = ShadowFail::kNone;

  ShadowFail on_alloc(std::uint32_t port, std::uint8_t cls, std::uint64_t bytes,
                      std::uint64_t used_after) {
    used += bytes;
    const std::size_t key = static_cast<std::size_t>(port) * kNumQueueClasses + cls;
    if (key >= per_key.size()) per_key.resize(key + 1, 0);
    per_key[key] += bytes;
    last_fail = used == used_after ? ShadowFail::kNone : ShadowFail::kMismatch;
    return last_fail;
  }

  ShadowFail on_release(std::uint32_t port, std::uint8_t cls, std::uint64_t bytes,
                        std::uint64_t used_after) {
    const std::size_t key = static_cast<std::size_t>(port) * kNumQueueClasses + cls;
    if (key >= per_key.size()) per_key.resize(key + 1, 0);
    if (per_key[key] < bytes || used < bytes) {
      last_fail = ShadowFail::kUnderflow;
      return last_fail;
    }
    per_key[key] -= bytes;
    used -= bytes;
    last_fail = used == used_after ? ShadowFail::kNone : ShadowFail::kMismatch;
    return last_fail;
  }
};

/// Where a packet observably died.  Every loss site in the simulator maps
/// to exactly one of these, which is what lets the oracle close its
/// conservation ledgers (a trimmed packet must surface as a delivery or as
/// one of these).
enum class DropSite : std::uint8_t {
  kSwitchNoRoute,        // all candidate egress ports withdrawn
  kSwitchInjected,       // SwitchConfig::inject_loss_rate forced drop
  kSwitchCtrlFault,      // control-queue fault loss (ho_loss plans)
  kSwitchHoBufferFull,   // HO arrived to a full shared buffer
  kSwitchOverThreshold,  // lossy-mode tail drop / DCP ACK drop (§4.2)
  kSwitchBufferFull,     // shared buffer exhausted (data)
  kWireDown,             // channel administratively cut
  kWireBlackhole,        // silent port failure (stays in the ECMP set)
  kWireRandom,           // BER-style injected loss
  kWireCorrupt,          // CRC failure at the far end
  kWireCutInFlight,      // killed mid-wire by a drop-in-flight cut
  kHostUnroutable,       // no transport for the flow at the destination
};

inline const char* drop_site_name(DropSite s) {
  switch (s) {
    case DropSite::kSwitchNoRoute: return "switch-no-route";
    case DropSite::kSwitchInjected: return "switch-injected";
    case DropSite::kSwitchCtrlFault: return "switch-ctrl-fault";
    case DropSite::kSwitchHoBufferFull: return "switch-ho-buffer-full";
    case DropSite::kSwitchOverThreshold: return "switch-over-threshold";
    case DropSite::kSwitchBufferFull: return "switch-buffer-full";
    case DropSite::kWireDown: return "wire-down";
    case DropSite::kWireBlackhole: return "wire-blackhole";
    case DropSite::kWireRandom: return "wire-random";
    case DropSite::kWireCorrupt: return "wire-corrupt";
    case DropSite::kWireCutInFlight: return "wire-cut-in-flight";
    case DropSite::kHostUnroutable: return "host-unroutable";
  }
  return "?";
}

class CheckObserver {
 public:
  virtual ~CheckObserver() = default;

  // ---- Host datapath ------------------------------------------------------
  /// A host NIC put a packet on the wire (the single emission point for
  /// data, control and bounced-HO traffic alike; pkt.src names the host).
  virtual void on_host_send(const Packet& pkt) { (void)pkt; }
  /// A packet survived the fabric and reached a host's receive dispatch.
  virtual void on_host_deliver(NodeId host, const Packet& pkt) {
    (void)host;
    (void)pkt;
  }

  // ---- Completions --------------------------------------------------------
  /// A DCP receiver advanced its eMSN past message `msn` (a CQE).
  virtual void on_msg_complete(FlowId flow, std::uint32_t msn) {
    (void)flow;
    (void)msn;
  }
  /// ReceiverTransport::mark_complete was called — every call, including
  /// ones the idempotence guard would swallow, so duplicate CQEs are
  /// visible (stock receivers only call it on fresh progress).
  virtual void on_rx_complete(FlowId flow) { (void)flow; }
  /// A sender's flow transitioned to finished.  Unlike the receiver hook
  /// this fires once per object by construction: duplicate finish() calls
  /// are idiomatic (every completion-confirming ACK may call it).
  virtual void on_tx_complete(FlowId flow) { (void)flow; }

  // ---- Switch datapath ----------------------------------------------------
  /// A switch trimmed a data packet to header-only (§4.2).  `ho` is the
  /// packet *after* trimming.
  virtual void on_trim(NodeId sw, const Packet& ho) {
    (void)sw;
    (void)ho;
  }
  /// A packet died.  `node` is the switch for switch sites, the delivering
  /// host for kHostUnroutable, and kInvalidNode for wire sites.
  virtual void on_drop(DropSite site, NodeId node, const Packet& pkt) {
    (void)site;
    (void)node;
    (void)pkt;
  }

  // ---- Shared-buffer accounting -------------------------------------------
  /// A SharedBuffer::alloc / release.  `buf` identifies the buffer
  /// instance; `used_after` is its pool occupancy after the call.  When a
  /// BufferShadow is installed alongside the observer these fire only on a
  /// replay divergence (the shadow's `last_fail` says how it failed);
  /// without a shadow every successful call is reported.
  virtual void on_buffer_alloc(const SharedBuffer* buf, std::uint32_t in_port,
                               std::uint8_t cls, std::uint64_t bytes,
                               std::uint64_t used_after) {
    (void)buf;
    (void)in_port;
    (void)cls;
    (void)bytes;
    (void)used_after;
  }
  virtual void on_buffer_release(const SharedBuffer* buf, std::uint32_t in_port,
                                 std::uint8_t cls, std::uint64_t bytes,
                                 std::uint64_t used_after) {
    (void)buf;
    (void)in_port;
    (void)cls;
    (void)bytes;
    (void)used_after;
  }
};

}  // namespace dcp
