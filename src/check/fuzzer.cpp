#include "check/fuzzer.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "check/invariant_oracle.h"
#include "fault/fault_injector.h"
#include "harness/checkpoint.h"
#include "sim/rng.h"
#include "sim/snapshot.h"
#include "topo/clos.h"

namespace dcp {

namespace {

// Substream tags: one independent stream per scenario aspect, so e.g. a
// change to the fault generator never shifts the workload draw of a seed.
constexpr std::uint64_t kTagScheme = 0x5c11e3e;
constexpr std::uint64_t kTagTopo = 0x70b0;
constexpr std::uint64_t kTagFlows = 0xf10a5;
constexpr std::uint64_t kTagFaults = 0xfa0175;
// Fault-injection seed for the run itself (probability draws on links).
constexpr std::uint64_t kTagInject = 0xfa5eed;

// Same grammar as fault_plan.cpp (whose helpers are file-static).
std::string time_str(Time t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9gus", to_us(t));
  return buf;
}

bool parse_time_str(const std::string& v, Time* out) {
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  if (end == v.c_str()) return false;
  const std::string unit(end);
  if (unit == "ns") *out = nanoseconds(x);
  else if (unit == "us" || unit.empty()) *out = microseconds(x);
  else if (unit == "ms") *out = milliseconds(x);
  else if (unit == "s") *out = seconds(x);
  else return false;
  return true;
}

std::string trim_copy(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

std::optional<SchemeKind> scheme_from_name(const std::string& name) {
  std::string low;
  for (char c : name) low += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  static constexpr SchemeKind kAll[] = {
      SchemeKind::kPfc,  SchemeKind::kIrn,     SchemeKind::kIrnEcmp,
      SchemeKind::kMpRdma, SchemeKind::kDcp,   SchemeKind::kCx5,
      SchemeKind::kTimeout, SchemeKind::kRackTlp, SchemeKind::kTcp,
      SchemeKind::kFec};
  for (SchemeKind k : kAll) {
    std::string n = scheme_name(k);
    for (char& c : n) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (n == low) return k;
  }
  return std::nullopt;
}

FuzzScenario generate_fuzz_scenario(std::uint64_t seed) {
  FuzzScenario s;
  s.seed = seed;
  s.max_time = milliseconds(50);

  // Scheme: every scheme appears, DCP weighted up — it is the protocol
  // under test, and the invariants with the most teeth (HO conservation,
  // bounded tracking, retry escalation) only arm on its wire format.
  {
    Rng r = Rng::substream(seed, kTagScheme);
    static constexpr SchemeKind kPool[] = {
        SchemeKind::kDcp,     SchemeKind::kDcp, SchemeKind::kDcp,
        SchemeKind::kPfc,     SchemeKind::kIrn, SchemeKind::kIrnEcmp,
        SchemeKind::kMpRdma,  SchemeKind::kCx5, SchemeKind::kTimeout,
        SchemeKind::kRackTlp, SchemeKind::kTcp, SchemeKind::kFec};
    s.scheme = kPool[r.pick_index(std::size(kPool))];
  }

  {
    Rng r = Rng::substream(seed, kTagTopo);
    s.spines = static_cast<int>(r.uniform_int(1, 3));
    s.leaves = static_cast<int>(r.uniform_int(2, 3));
    s.hosts_per_leaf = static_cast<int>(r.uniform_int(1, 3));
  }

  {
    Rng r = Rng::substream(seed, kTagFlows);
    const int hosts = s.num_hosts();
    const int n = static_cast<int>(r.uniform_int(1, 6));
    for (int i = 0; i < n; ++i) {
      FuzzFlow f;
      f.src = static_cast<int>(r.pick_index(static_cast<std::size_t>(hosts)));
      f.dst = static_cast<int>(r.pick_index(static_cast<std::size_t>(hosts - 1)));
      if (f.dst >= f.src) f.dst++;  // loopback flows are not modeled
      // Log-uniform flow sizes: 2 KB .. 300 KB.
      f.bytes = static_cast<std::uint64_t>(std::exp(r.uniform(std::log(2e3), std::log(3e5))));
      static constexpr std::uint64_t kMsg[] = {0, 4096, 16384, 65536};
      f.msg_bytes = kMsg[r.pick_index(std::size(kMsg))];
      f.start = microseconds(r.uniform(0.0, 300.0));
      s.flows.push_back(f);
    }
  }

  {
    Rng r = Rng::substream(seed, kTagFaults);
    // Probabilities quantized to 6 decimals: the repro grammar serializes
    // them with %.9g, and a full-precision double would not round-trip.
    const auto q = [](double x) { return std::round(x * 1e6) / 1e6; };
    const int n = static_cast<int>(r.uniform_int(0, 6));
    const std::uint32_t num_sw = static_cast<std::uint32_t>(s.spines + s.leaves);
    for (int i = 0; i < n; ++i) {
      FaultAction a;
      static constexpr FaultKind kKinds[] = {FaultKind::kLinkFlap,     FaultKind::kDrop,
                                             FaultKind::kCorrupt,      FaultKind::kHoLoss,
                                             FaultKind::kBufferShrink, FaultKind::kBlackhole};
      a.kind = kKinds[r.pick_index(std::size(kKinds))];
      a.at = microseconds(r.uniform(0.0, 600.0));
      a.sw = r.chance(0.25) ? FaultAction::kAll
                            : static_cast<std::uint32_t>(r.pick_index(num_sw));
      // Ports beyond a switch's radix are silently ignored by the injector,
      // so a generous range is safe and exercises the fan-out paths.
      a.port = r.chance(0.25) ? FaultAction::kAll
                              : static_cast<std::uint32_t>(r.uniform_int(0, 5));
      switch (a.kind) {
        case FaultKind::kLinkFlap:
        case FaultKind::kBlackhole:
          a.duration = microseconds(r.uniform(20.0, 400.0));
          a.drop_in_flight = a.kind == FaultKind::kLinkFlap && r.chance(0.5);
          break;
        case FaultKind::kDrop:
        case FaultKind::kCorrupt:
          a.rate = q(r.uniform(0.001, 0.2));
          a.duration = r.chance(0.3) ? 0 : microseconds(r.uniform(20.0, 400.0));
          break;
        case FaultKind::kHoLoss:
          a.rate = q(r.uniform(0.05, 0.6));
          a.duration = r.chance(0.3) ? 0 : microseconds(r.uniform(20.0, 400.0));
          break;
        case FaultKind::kBufferShrink:
          a.frac = q(r.uniform(0.05, 0.8));
          a.duration = microseconds(r.uniform(20.0, 400.0));
          break;
      }
      s.faults.actions.push_back(a);
    }
  }
  return s;
}

WorldSpec fuzz_world_spec(const FuzzScenario& s, const FuzzOptions& opt) {
  WorldSpec ws;
  ws.scenario = s;
  ws.injector_seed = mix64(s.seed ^ kTagInject);
  ws.factory_override = opt.factory_override;
  return ws;
}

FuzzVerdict run_fuzz_scenario(const FuzzScenario& s, const FuzzOptions& opt) {
  SimWorld w(fuzz_world_spec(s, opt));
  w.run_until_done();
  return w.finalize_verdict(opt.trace_events);
}

namespace {

/// No snapshot may be used for this candidate run (phases 2-4, which
/// mutate the world's setup phase rather than its fault timeline).
constexpr Time kNoRestore = -1;

/// Shared state of one shrink: verdict target, run budget/accounting, and
/// the prefix-snapshot ring saved from the *input* scenario's run.  Ring
/// images stay valid for every Phase-1 candidate because candidates only
/// ever REMOVE fault actions: a probe that removes nothing before time T
/// is prefix-isomorphic with the input up to T, so the latest image with
/// at <= T restores bit-exactly (modulo the constant setup-seq delta).
struct ShrinkCtx {
  const FuzzOptions& opt;
  const std::string& inv;
  ShrinkStats& st;
  const std::size_t max_runs;
  std::vector<SnapshotImage> ring;  // ascending .at
};

/// Runs one candidate, restoring from the latest ring snapshot whose time
/// is <= `bound` when possible; cold-runs otherwise.  The restored run is
/// bit-identical to a cold one, so the verdict cannot depend on `bound`.
bool reproduces(ShrinkCtx& c, const FuzzScenario& s, Time bound) {
  if (c.st.runs >= c.max_runs) return false;
  c.st.runs++;
  const WorldSpec spec = fuzz_world_spec(s, c.opt);
  auto w = std::make_unique<SimWorld>(spec);
  const SnapshotImage* best = nullptr;
  for (const SnapshotImage& img : c.ring) {
    if (img.at > bound) break;
    best = &img;
  }
  std::uint64_t skipped = 0;
  if (best != nullptr) {
    std::string err;
    if (w->restore(*best, /*allow_spec_delta=*/true, &err)) {
      skipped = w->events_processed();
    } else {
      // A failed restore may leave partial state behind; cold-boot.
      w = std::make_unique<SimWorld>(spec);
    }
  }
  w->run_until_done();
  c.st.events_skipped += skipped;
  c.st.events_executed += w->events_processed() - skipped;
  const FuzzVerdict v = w->finalize_verdict(c.opt.trace_events);
  const char* dbg = std::getenv("DCP_DEBUG_SHRINK");
  if (dbg != nullptr && *dbg != '\0') {
    std::fprintf(stderr, "[shrink] run=%zu bound=%lld skipped=%llu exec=%llu acts=%zu flows=%zu viol=%d\n",
                 c.st.runs, static_cast<long long>(bound),
                 static_cast<unsigned long long>(skipped),
                 static_cast<unsigned long long>(w->events_processed() - skipped),
                 s.faults.actions.size(), s.flows.size(), v.violated ? 1 : 0);
  }
  return v.violated && v.invariant == c.inv;
}

/// Snapshot times for the shrink ring: the distinct fault-action start
/// times (a snapshot AT an action's time precedes its start event, so the
/// action itself is still removable), thinned to at most eight.
std::vector<Time> ring_boundaries(const FuzzScenario& s) {
  std::vector<Time> at;
  for (const FaultAction& a : s.faults.actions) {
    if (a.at > 0) at.push_back(a.at);
  }
  std::sort(at.begin(), at.end());
  at.erase(std::unique(at.begin(), at.end()), at.end());
  constexpr std::size_t kMaxRing = 8;
  if (at.size() <= kMaxRing) return at;
  std::vector<Time> picked;
  for (std::size_t k = 1; k <= kMaxRing; ++k) {
    // Evenly spread, always including the latest boundary.
    picked.push_back(at[k * at.size() / kMaxRing - 1]);
  }
  picked.erase(std::unique(picked.begin(), picked.end()), picked.end());
  return picked;
}

}  // namespace

FuzzScenario shrink_fuzz_scenario(const FuzzScenario& s, const FuzzOptions& opt,
                                  ShrinkStats* stats, std::size_t max_runs) {
  ShrinkStats local;
  ShrinkStats& st = stats != nullptr ? *stats : local;
  st = {};
  st.actions_before = s.faults.actions.size();
  st.flows_before = s.flows.size();

  // Base run; with snapshots on it doubles as the ring-building run (the
  // ring costs no extra simulation — images are saved at barrier-safe
  // pauses of the run we needed anyway).
  std::vector<SnapshotImage> ring;
  FuzzVerdict base;
  {
    auto w = std::make_unique<SimWorld>(fuzz_world_spec(s, opt));
    if (opt.use_snapshots && SimWorld::snapshot_supported(s.scheme)) {
      for (Time b : ring_boundaries(s)) {
        w->run_to(b);
        SnapshotImage img;
        if (w->save(img)) {
          ring.push_back(std::move(img));
        } else {
          ring.clear();  // a module without checkpoint support: cold-run all
          break;
        }
      }
    }
    w->run_until_done();
    st.runs++;
    st.events_executed += w->events_processed();
    base = w->finalize_verdict(opt.trace_events);
  }
  if (!base.violated) {
    st.actions_after = st.actions_before;
    st.flows_after = st.flows_before;
    return s;
  }
  const std::string& inv = base.invariant;
  FuzzScenario cur = s;
  ShrinkCtx ctx{opt, inv, st, max_runs, std::move(ring)};

  // Phase 1: ddmin over fault actions — remove chunks, halving the chunk
  // size whenever a whole pass removes nothing.  `floor` tracks the
  // earliest action time removed from the input so far: a probe may only
  // restore from snapshots before every action it drops (accumulated
  // removals included), since the image was saved from the full input run.
  Time floor = kTimeInfinity;
  std::size_t chunk = std::max<std::size_t>(1, cur.faults.actions.size() / 2);
  while (!cur.faults.actions.empty()) {
    bool removed = false;
    for (std::size_t i = 0; i < cur.faults.actions.size();) {
      FuzzScenario cand = cur;
      auto& acts = cand.faults.actions;
      const std::size_t end = std::min(i + chunk, acts.size());
      Time bound = floor;
      for (std::size_t k = i; k < end; ++k) {
        bound = std::min(bound, cur.faults.actions[k].at);
      }
      acts.erase(acts.begin() + static_cast<std::ptrdiff_t>(i),
                 acts.begin() + static_cast<std::ptrdiff_t>(end));
      if (reproduces(ctx, cand, bound)) {
        cur = std::move(cand);
        floor = bound;
        removed = true;  // the next candidate shifted into slot i
      } else {
        i = end;
      }
    }
    if (!removed && chunk == 1) break;
    if (!removed) chunk = std::max<std::size_t>(1, chunk / 2);
  }

  // Phase 2: drop whole flows (a repro needs at least one).
  for (std::size_t i = 0; cur.flows.size() > 1 && i < cur.flows.size();) {
    FuzzScenario cand = cur;
    cand.flows.erase(cand.flows.begin() + static_cast<std::ptrdiff_t>(i));
    if (reproduces(ctx, cand, kNoRestore)) {
      cur = std::move(cand);
    } else {
      ++i;
    }
  }

  // Phase 3: halve flow and message sizes while the violation survives.
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < cur.flows.size(); ++i) {
      if (cur.flows[i].bytes >= 2000) {
        FuzzScenario cand = cur;
        cand.flows[i].bytes /= 2;
        if (reproduces(ctx, cand, kNoRestore)) {
          cur = std::move(cand);
          changed = true;
        }
      }
      if (cur.flows[i].msg_bytes >= 2048) {
        FuzzScenario cand = cur;
        cand.flows[i].msg_bytes /= 2;
        if (reproduces(ctx, cand, kNoRestore)) {
          cur = std::move(cand);
          changed = true;
        }
      }
    }
  }

  // Phase 4: shorten the schedule.
  while (cur.max_time / 2 >= milliseconds(1)) {
    FuzzScenario cand = cur;
    cand.max_time /= 2;
    if (!reproduces(ctx, cand, kNoRestore)) break;
    cur = std::move(cand);
  }

  st.actions_after = cur.faults.actions.size();
  st.flows_after = cur.flows.size();
  return cur;
}

std::string write_fuzz_repro(const FuzzScenario& s, const FuzzVerdict& v) {
  std::string out;
  out += "# run_fuzz repro — replay with: run_fuzz --replay <this file>\n";
  out += "[scenario]\n";
  out += "seed = " + std::to_string(s.seed) + "\n";
  out += std::string("scheme = ") + scheme_name(s.scheme) + "\n";
  out += "spines = " + std::to_string(s.spines) + "\n";
  out += "leaves = " + std::to_string(s.leaves) + "\n";
  out += "hosts_per_leaf = " + std::to_string(s.hosts_per_leaf) + "\n";
  if (s.fattree_k > 0) out += "fattree_k = " + std::to_string(s.fattree_k) + "\n";
  out += "max_time = " + time_str(s.max_time) + "\n";
  for (const FuzzFlow& f : s.flows) {
    out += "flow src=" + std::to_string(f.src) + " dst=" + std::to_string(f.dst) +
           " bytes=" + std::to_string(f.bytes) + " msg=" + std::to_string(f.msg_bytes) +
           " start=" + time_str(f.start) + "\n";
  }
  out += "[faults]\n";
  out += s.faults.to_config_text();
  out += "\n";
  if (v.violated) {
    out += "# verdict: " + v.message + "\n";
    if (!v.trace.empty()) {
      out += "# trace (oldest first, frozen at first violation):\n";
      std::istringstream in(v.trace);
      std::string line;
      while (std::getline(in, line)) out += "#   " + line + "\n";
    }
  } else {
    out += "# verdict: all invariants held\n";
  }
  return out;
}

std::optional<FuzzScenario> parse_fuzz_scenario(const std::string& text, std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<FuzzScenario> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };

  FuzzScenario s;
  s.flows.clear();
  std::string faults_text;
  enum class Section { kNone, kScenario, kFaults } section = Section::kNone;

  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const std::string line = trim_copy(raw);
    if (line.empty()) continue;
    if (line == "[scenario]") {
      section = Section::kScenario;
      continue;
    }
    if (line == "[faults]") {
      section = Section::kFaults;
      continue;
    }
    if (section == Section::kFaults) {
      faults_text += line + "\n";
      continue;
    }
    if (section != Section::kScenario) {
      return fail("line " + std::to_string(line_no) + ": content before [scenario]");
    }
    if (line.rfind("flow ", 0) == 0) {
      FuzzFlow f;
      std::istringstream fin(line.substr(5));
      std::string kv;
      while (fin >> kv) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos) {
          return fail("line " + std::to_string(line_no) + ": expected key=value");
        }
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        bool ok = true;
        if (key == "src") f.src = std::atoi(val.c_str());
        else if (key == "dst") f.dst = std::atoi(val.c_str());
        else if (key == "bytes") f.bytes = std::strtoull(val.c_str(), nullptr, 10);
        else if (key == "msg") f.msg_bytes = std::strtoull(val.c_str(), nullptr, 10);
        else if (key == "start") ok = parse_time_str(val, &f.start);
        else ok = false;
        if (!ok) return fail("line " + std::to_string(line_no) + ": bad flow key '" + key + "'");
      }
      s.flows.push_back(f);
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return fail("line " + std::to_string(line_no) + ": expected key = value");
    }
    const std::string key = trim_copy(line.substr(0, eq));
    const std::string val = trim_copy(line.substr(eq + 1));
    bool ok = true;
    if (key == "seed") s.seed = std::strtoull(val.c_str(), nullptr, 10);
    else if (key == "scheme") {
      auto k = scheme_from_name(val);
      ok = k.has_value();
      if (ok) s.scheme = *k;
    } else if (key == "spines") s.spines = std::atoi(val.c_str());
    else if (key == "leaves") s.leaves = std::atoi(val.c_str());
    else if (key == "hosts_per_leaf") s.hosts_per_leaf = std::atoi(val.c_str());
    else if (key == "fattree_k") s.fattree_k = std::atoi(val.c_str());
    else if (key == "max_time") ok = parse_time_str(val, &s.max_time);
    else ok = false;
    if (!ok) return fail("line " + std::to_string(line_no) + ": bad entry '" + line + "'");
  }

  if (section == Section::kNone) return fail("no [scenario] section");
  if (s.flows.empty()) return fail("scenario has no flows");
  if (s.spines < 1 || s.leaves < 1 || s.hosts_per_leaf < 1) return fail("bad topology");
  if (s.fattree_k < 0 || s.fattree_k % 2 != 0) return fail("fattree_k must be even");
  for (const FuzzFlow& f : s.flows) {
    if (f.src < 0 || f.dst < 0 || f.src >= s.num_hosts() || f.dst >= s.num_hosts() ||
        f.src == f.dst) {
      return fail("flow endpoints out of range (or src == dst)");
    }
  }
  std::string err;
  auto plan = parse_fault_plan(faults_text, &err);
  if (!plan) return fail(err);
  s.faults = *plan;
  return s;
}

}  // namespace dcp
