#include "check/fuzzer.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "check/invariant_oracle.h"
#include "fault/fault_injector.h"
#include "sim/rng.h"
#include "topo/clos.h"

namespace dcp {

namespace {

// Substream tags: one independent stream per scenario aspect, so e.g. a
// change to the fault generator never shifts the workload draw of a seed.
constexpr std::uint64_t kTagScheme = 0x5c11e3e;
constexpr std::uint64_t kTagTopo = 0x70b0;
constexpr std::uint64_t kTagFlows = 0xf10a5;
constexpr std::uint64_t kTagFaults = 0xfa0175;
// Fault-injection seed for the run itself (probability draws on links).
constexpr std::uint64_t kTagInject = 0xfa5eed;

// Same grammar as fault_plan.cpp (whose helpers are file-static).
std::string time_str(Time t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9gus", to_us(t));
  return buf;
}

bool parse_time_str(const std::string& v, Time* out) {
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  if (end == v.c_str()) return false;
  const std::string unit(end);
  if (unit == "ns") *out = nanoseconds(x);
  else if (unit == "us" || unit.empty()) *out = microseconds(x);
  else if (unit == "ms") *out = milliseconds(x);
  else if (unit == "s") *out = seconds(x);
  else return false;
  return true;
}

std::string trim_copy(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

std::optional<SchemeKind> scheme_from_name(const std::string& name) {
  std::string low;
  for (char c : name) low += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  static constexpr SchemeKind kAll[] = {
      SchemeKind::kPfc,  SchemeKind::kIrn,     SchemeKind::kIrnEcmp,
      SchemeKind::kMpRdma, SchemeKind::kDcp,   SchemeKind::kCx5,
      SchemeKind::kTimeout, SchemeKind::kRackTlp, SchemeKind::kTcp,
      SchemeKind::kFec};
  for (SchemeKind k : kAll) {
    std::string n = scheme_name(k);
    for (char& c : n) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (n == low) return k;
  }
  return std::nullopt;
}

FuzzScenario generate_fuzz_scenario(std::uint64_t seed) {
  FuzzScenario s;
  s.seed = seed;
  s.max_time = milliseconds(50);

  // Scheme: every scheme appears, DCP weighted up — it is the protocol
  // under test, and the invariants with the most teeth (HO conservation,
  // bounded tracking, retry escalation) only arm on its wire format.
  {
    Rng r = Rng::substream(seed, kTagScheme);
    static constexpr SchemeKind kPool[] = {
        SchemeKind::kDcp,     SchemeKind::kDcp, SchemeKind::kDcp,
        SchemeKind::kPfc,     SchemeKind::kIrn, SchemeKind::kIrnEcmp,
        SchemeKind::kMpRdma,  SchemeKind::kCx5, SchemeKind::kTimeout,
        SchemeKind::kRackTlp, SchemeKind::kTcp, SchemeKind::kFec};
    s.scheme = kPool[r.pick_index(std::size(kPool))];
  }

  {
    Rng r = Rng::substream(seed, kTagTopo);
    s.spines = static_cast<int>(r.uniform_int(1, 3));
    s.leaves = static_cast<int>(r.uniform_int(2, 3));
    s.hosts_per_leaf = static_cast<int>(r.uniform_int(1, 3));
  }

  {
    Rng r = Rng::substream(seed, kTagFlows);
    const int hosts = s.num_hosts();
    const int n = static_cast<int>(r.uniform_int(1, 6));
    for (int i = 0; i < n; ++i) {
      FuzzFlow f;
      f.src = static_cast<int>(r.pick_index(static_cast<std::size_t>(hosts)));
      f.dst = static_cast<int>(r.pick_index(static_cast<std::size_t>(hosts - 1)));
      if (f.dst >= f.src) f.dst++;  // loopback flows are not modeled
      // Log-uniform flow sizes: 2 KB .. 300 KB.
      f.bytes = static_cast<std::uint64_t>(std::exp(r.uniform(std::log(2e3), std::log(3e5))));
      static constexpr std::uint64_t kMsg[] = {0, 4096, 16384, 65536};
      f.msg_bytes = kMsg[r.pick_index(std::size(kMsg))];
      f.start = microseconds(r.uniform(0.0, 300.0));
      s.flows.push_back(f);
    }
  }

  {
    Rng r = Rng::substream(seed, kTagFaults);
    // Probabilities quantized to 6 decimals: the repro grammar serializes
    // them with %.9g, and a full-precision double would not round-trip.
    const auto q = [](double x) { return std::round(x * 1e6) / 1e6; };
    const int n = static_cast<int>(r.uniform_int(0, 6));
    const std::uint32_t num_sw = static_cast<std::uint32_t>(s.spines + s.leaves);
    for (int i = 0; i < n; ++i) {
      FaultAction a;
      static constexpr FaultKind kKinds[] = {FaultKind::kLinkFlap,     FaultKind::kDrop,
                                             FaultKind::kCorrupt,      FaultKind::kHoLoss,
                                             FaultKind::kBufferShrink, FaultKind::kBlackhole};
      a.kind = kKinds[r.pick_index(std::size(kKinds))];
      a.at = microseconds(r.uniform(0.0, 600.0));
      a.sw = r.chance(0.25) ? FaultAction::kAll
                            : static_cast<std::uint32_t>(r.pick_index(num_sw));
      // Ports beyond a switch's radix are silently ignored by the injector,
      // so a generous range is safe and exercises the fan-out paths.
      a.port = r.chance(0.25) ? FaultAction::kAll
                              : static_cast<std::uint32_t>(r.uniform_int(0, 5));
      switch (a.kind) {
        case FaultKind::kLinkFlap:
        case FaultKind::kBlackhole:
          a.duration = microseconds(r.uniform(20.0, 400.0));
          a.drop_in_flight = a.kind == FaultKind::kLinkFlap && r.chance(0.5);
          break;
        case FaultKind::kDrop:
        case FaultKind::kCorrupt:
          a.rate = q(r.uniform(0.001, 0.2));
          a.duration = r.chance(0.3) ? 0 : microseconds(r.uniform(20.0, 400.0));
          break;
        case FaultKind::kHoLoss:
          a.rate = q(r.uniform(0.05, 0.6));
          a.duration = r.chance(0.3) ? 0 : microseconds(r.uniform(20.0, 400.0));
          break;
        case FaultKind::kBufferShrink:
          a.frac = q(r.uniform(0.05, 0.8));
          a.duration = microseconds(r.uniform(20.0, 400.0));
          break;
      }
      s.faults.actions.push_back(a);
    }
  }
  return s;
}

FuzzVerdict run_fuzz_scenario(const FuzzScenario& s, const FuzzOptions& opt) {
  // Fault-free scenarios honour DCP_SHARDS (bit-identical to serial by
  // construction); fault plans run serial — the injector has no shard
  // ordering story.
  int nshards = 1;
  if (!s.faults.has_effect()) {
    if (const char* e = std::getenv("DCP_SHARDS")) {
      nshards = std::max(1, std::min(std::atoi(e), s.leaves));
    }
  }
  ShardGroup shards(nshards);
  Logger log(LogLevel::kError);
  Network net(shards, log);

  SchemeSetup setup = make_scheme(s.scheme);
  ClosParams clos;
  clos.spines = s.spines;
  clos.leaves = s.leaves;
  clos.hosts_per_leaf = s.hosts_per_leaf;
  clos.sw = setup.sw;
  ClosTopology topo = build_clos(net, clos);
  apply_scheme(net, setup);
  if (opt.factory_override) net.set_factory(opt.factory_override);

  for (const FuzzFlow& f : s.flows) {
    FlowSpec spec;
    spec.src = topo.hosts.at(static_cast<std::size_t>(f.src))->id();
    spec.dst = topo.hosts.at(static_cast<std::size_t>(f.dst))->id();
    spec.bytes = f.bytes;
    spec.msg_bytes = f.msg_bytes;
    spec.start_time = f.start;
    net.start_flow(spec);
  }

  InvariantOracle oracle(net);
  std::unique_ptr<FaultInjector> inj;
  if (s.faults.has_effect()) {
    inj = std::make_unique<FaultInjector>(net, s.faults, mix64(s.seed ^ kTagInject));
  }

  net.run_until_done(s.max_time);
  oracle.finalize();

  FuzzVerdict v;
  v.violated = !oracle.ok();
  v.num_violations = oracle.violations().size();
  v.all_complete = net.all_flows_done();
  if (const InvariantViolation* first = oracle.first()) {
    v.invariant = first->invariant;
    v.at = first->at;
    v.message = oracle.summary();
    v.trace = oracle.trace_slice(opt.trace_events);
  }
  return v;
}

namespace {

bool reproduces(const FuzzScenario& s, const FuzzOptions& opt, const std::string& invariant,
                ShrinkStats& st, std::size_t max_runs) {
  if (st.runs >= max_runs) return false;
  st.runs++;
  const FuzzVerdict v = run_fuzz_scenario(s, opt);
  return v.violated && v.invariant == invariant;
}

}  // namespace

FuzzScenario shrink_fuzz_scenario(const FuzzScenario& s, const FuzzOptions& opt,
                                  ShrinkStats* stats, std::size_t max_runs) {
  ShrinkStats local;
  ShrinkStats& st = stats != nullptr ? *stats : local;
  st = {};
  st.actions_before = s.faults.actions.size();
  st.flows_before = s.flows.size();

  const FuzzVerdict base = run_fuzz_scenario(s, opt);
  st.runs++;
  if (!base.violated) {
    st.actions_after = st.actions_before;
    st.flows_after = st.flows_before;
    return s;
  }
  const std::string& inv = base.invariant;
  FuzzScenario cur = s;

  // Phase 1: ddmin over fault actions — remove chunks, halving the chunk
  // size whenever a whole pass removes nothing.
  std::size_t chunk = std::max<std::size_t>(1, cur.faults.actions.size() / 2);
  while (!cur.faults.actions.empty()) {
    bool removed = false;
    for (std::size_t i = 0; i < cur.faults.actions.size();) {
      FuzzScenario cand = cur;
      auto& acts = cand.faults.actions;
      const std::size_t end = std::min(i + chunk, acts.size());
      acts.erase(acts.begin() + static_cast<std::ptrdiff_t>(i),
                 acts.begin() + static_cast<std::ptrdiff_t>(end));
      if (reproduces(cand, opt, inv, st, max_runs)) {
        cur = std::move(cand);
        removed = true;  // the next candidate shifted into slot i
      } else {
        i = end;
      }
    }
    if (!removed && chunk == 1) break;
    if (!removed) chunk = std::max<std::size_t>(1, chunk / 2);
  }

  // Phase 2: drop whole flows (a repro needs at least one).
  for (std::size_t i = 0; cur.flows.size() > 1 && i < cur.flows.size();) {
    FuzzScenario cand = cur;
    cand.flows.erase(cand.flows.begin() + static_cast<std::ptrdiff_t>(i));
    if (reproduces(cand, opt, inv, st, max_runs)) {
      cur = std::move(cand);
    } else {
      ++i;
    }
  }

  // Phase 3: halve flow and message sizes while the violation survives.
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < cur.flows.size(); ++i) {
      if (cur.flows[i].bytes >= 2000) {
        FuzzScenario cand = cur;
        cand.flows[i].bytes /= 2;
        if (reproduces(cand, opt, inv, st, max_runs)) {
          cur = std::move(cand);
          changed = true;
        }
      }
      if (cur.flows[i].msg_bytes >= 2048) {
        FuzzScenario cand = cur;
        cand.flows[i].msg_bytes /= 2;
        if (reproduces(cand, opt, inv, st, max_runs)) {
          cur = std::move(cand);
          changed = true;
        }
      }
    }
  }

  // Phase 4: shorten the schedule.
  while (cur.max_time / 2 >= milliseconds(1)) {
    FuzzScenario cand = cur;
    cand.max_time /= 2;
    if (!reproduces(cand, opt, inv, st, max_runs)) break;
    cur = std::move(cand);
  }

  st.actions_after = cur.faults.actions.size();
  st.flows_after = cur.flows.size();
  return cur;
}

std::string write_fuzz_repro(const FuzzScenario& s, const FuzzVerdict& v) {
  std::string out;
  out += "# run_fuzz repro — replay with: run_fuzz --replay <this file>\n";
  out += "[scenario]\n";
  out += "seed = " + std::to_string(s.seed) + "\n";
  out += std::string("scheme = ") + scheme_name(s.scheme) + "\n";
  out += "spines = " + std::to_string(s.spines) + "\n";
  out += "leaves = " + std::to_string(s.leaves) + "\n";
  out += "hosts_per_leaf = " + std::to_string(s.hosts_per_leaf) + "\n";
  out += "max_time = " + time_str(s.max_time) + "\n";
  for (const FuzzFlow& f : s.flows) {
    out += "flow src=" + std::to_string(f.src) + " dst=" + std::to_string(f.dst) +
           " bytes=" + std::to_string(f.bytes) + " msg=" + std::to_string(f.msg_bytes) +
           " start=" + time_str(f.start) + "\n";
  }
  out += "[faults]\n";
  out += s.faults.to_config_text();
  out += "\n";
  if (v.violated) {
    out += "# verdict: " + v.message + "\n";
    if (!v.trace.empty()) {
      out += "# trace (oldest first, frozen at first violation):\n";
      std::istringstream in(v.trace);
      std::string line;
      while (std::getline(in, line)) out += "#   " + line + "\n";
    }
  } else {
    out += "# verdict: all invariants held\n";
  }
  return out;
}

std::optional<FuzzScenario> parse_fuzz_scenario(const std::string& text, std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<FuzzScenario> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };

  FuzzScenario s;
  s.flows.clear();
  std::string faults_text;
  enum class Section { kNone, kScenario, kFaults } section = Section::kNone;

  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const std::string line = trim_copy(raw);
    if (line.empty()) continue;
    if (line == "[scenario]") {
      section = Section::kScenario;
      continue;
    }
    if (line == "[faults]") {
      section = Section::kFaults;
      continue;
    }
    if (section == Section::kFaults) {
      faults_text += line + "\n";
      continue;
    }
    if (section != Section::kScenario) {
      return fail("line " + std::to_string(line_no) + ": content before [scenario]");
    }
    if (line.rfind("flow ", 0) == 0) {
      FuzzFlow f;
      std::istringstream fin(line.substr(5));
      std::string kv;
      while (fin >> kv) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos) {
          return fail("line " + std::to_string(line_no) + ": expected key=value");
        }
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        bool ok = true;
        if (key == "src") f.src = std::atoi(val.c_str());
        else if (key == "dst") f.dst = std::atoi(val.c_str());
        else if (key == "bytes") f.bytes = std::strtoull(val.c_str(), nullptr, 10);
        else if (key == "msg") f.msg_bytes = std::strtoull(val.c_str(), nullptr, 10);
        else if (key == "start") ok = parse_time_str(val, &f.start);
        else ok = false;
        if (!ok) return fail("line " + std::to_string(line_no) + ": bad flow key '" + key + "'");
      }
      s.flows.push_back(f);
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return fail("line " + std::to_string(line_no) + ": expected key = value");
    }
    const std::string key = trim_copy(line.substr(0, eq));
    const std::string val = trim_copy(line.substr(eq + 1));
    bool ok = true;
    if (key == "seed") s.seed = std::strtoull(val.c_str(), nullptr, 10);
    else if (key == "scheme") {
      auto k = scheme_from_name(val);
      ok = k.has_value();
      if (ok) s.scheme = *k;
    } else if (key == "spines") s.spines = std::atoi(val.c_str());
    else if (key == "leaves") s.leaves = std::atoi(val.c_str());
    else if (key == "hosts_per_leaf") s.hosts_per_leaf = std::atoi(val.c_str());
    else if (key == "max_time") ok = parse_time_str(val, &s.max_time);
    else ok = false;
    if (!ok) return fail("line " + std::to_string(line_no) + ": bad entry '" + line + "'");
  }

  if (section == Section::kNone) return fail("no [scenario] section");
  if (s.flows.empty()) return fail("scenario has no flows");
  if (s.spines < 1 || s.leaves < 1 || s.hosts_per_leaf < 1) return fail("bad topology");
  for (const FuzzFlow& f : s.flows) {
    if (f.src < 0 || f.dst < 0 || f.src >= s.num_hosts() || f.dst >= s.num_hosts() ||
        f.src == f.dst) {
      return fail("flow endpoints out of range (or src == dst)");
    }
  }
  std::string err;
  auto plan = parse_fault_plan(faults_text, &err);
  if (!plan) return fail(err);
  s.faults = *plan;
  return s;
}

}  // namespace dcp
