#pragma once
// InvariantOracle: a CheckObserver that validates live, per-event protocol
// invariants across every scheme while a simulation runs, and closes its
// conservation ledgers when the run ends.  See docs/invariants.md for the
// catalogue and the paper sections each invariant pins down.
//
// Invariant ids (stable strings, used by tests and the fuzzer's shrinker):
//   exactly-once-completion  a flow's rx/tx completion fired more than once
//   exactly-once-message     a DCP message CQE duplicated or out of order
//   psn-monotonic            new-data PSNs not strictly increasing, or a
//                            "retransmission" of a never-sent PSN
//   ack-monotonic            DCP ACK eMSN or cumulative arrival count went
//                            backwards (§4.4: both are monotone)
//   retry-escalation         a data packet's sRetryNo regressed (§4.5)
//   ho-conservation          a bounced HO with no trimmed arrival behind it,
//                            or trims + bounces != deliveries + losses at
//                            end of run (§4.2: every trim becomes exactly
//                            one HO that lands or dies observably)
//   buffer-conservation      shared-buffer accounting diverged from the
//                            oracle's shadow ledger (double alloc, release
//                            without alloc, or cells still held at quiesce)
//   bounded-tracking         the DCP receiver's tracking state scales with
//                            the flow instead of the outstanding window
//                            (§4.5: per-message counters + eMSN, no bitmap)
//   completion-consistency   a completed flow whose receiver accounted a
//                            byte count different from the flow size
//   recovery-accounting      an FEC flow "recovered" (by parity decode or
//                            NACK retransmission) more chunks than the flow
//                            has data packets — a double-credited repair
//   no-silent-deadlock       the simulator quiesced with an incomplete flow
//
// Usage: construct after the topology is built, run, then finalize():
//
//   InvariantOracle oracle(net);
//   net.run_until_done(max_time);
//   oracle.finalize();
//   ASSERT_TRUE(oracle.ok()) << oracle.summary();

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "check/observer.h"
#include "topo/network.h"

namespace dcp {

class StateIO;

struct InvariantViolation {
  std::string invariant;  // stable id from the catalogue above
  std::string detail;
  Time at = 0;
};

struct OracleOptions {
  std::size_t trace_capacity = 256;  // event-ring size behind trace_slice()
  std::size_t max_violations = 64;   // stop recording beyond this many
};

class InvariantOracle final : public CheckObserver {
 public:
  explicit InvariantOracle(Network& net, OracleOptions opt = {});
  ~InvariantOracle() override;
  InvariantOracle(const InvariantOracle&) = delete;
  InvariantOracle& operator=(const InvariantOracle&) = delete;

  /// End-of-run audit: conservation ledgers, completion consistency and
  /// deadlock detection.  Ledger checks only apply when the simulator
  /// actually quiesced (a max-time stop legitimately strands in-flight
  /// state).  Idempotent.
  void finalize();

  bool ok() const { return violations_.empty(); }
  const std::vector<InvariantViolation>& violations() const { return violations_; }
  /// First violation in event order, or nullptr when clean.
  const InvariantViolation* first() const {
    return violations_.empty() ? nullptr : &violations_.front();
  }
  /// One-line human summary: first violation + total count.
  std::string summary() const;
  /// The event-ring tail leading up to the first violation, one event per
  /// line (recording freezes at the first violation).
  std::string trace_slice(std::size_t max_events = 40) const;

  /// Arms conservation checking on a buffer the constructor could not see
  /// (tests driving a SharedBuffer directly).
  void watch_buffer(SharedBuffer& buf);

  /// Checkpoint hook (sim/snapshot.h): per-flow ledgers, buffer shadows,
  /// the event ring and recorded violations.  The observer registration
  /// and buffer hook pointers come from the rebuild, not the image.
  void checkpoint(StateIO& io);

  // ---- CheckObserver ------------------------------------------------------
  void on_host_send(const Packet& pkt) override;
  void on_host_deliver(NodeId host, const Packet& pkt) override;
  void on_msg_complete(FlowId flow, std::uint32_t msn) override;
  void on_rx_complete(FlowId flow) override;
  void on_tx_complete(FlowId flow) override;
  void on_trim(NodeId sw, const Packet& ho) override;
  void on_drop(DropSite site, NodeId node, const Packet& pkt) override;
  void on_buffer_alloc(const SharedBuffer* buf, std::uint32_t in_port, std::uint8_t cls,
                       std::uint64_t bytes, std::uint64_t used_after) override;
  void on_buffer_release(const SharedBuffer* buf, std::uint32_t in_port, std::uint8_t cls,
                         std::uint64_t bytes, std::uint64_t used_after) override;

 private:
  struct FlowState {
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    bool endpoints_known = false;
    std::int64_t max_new_psn = -1;  // highest non-retransmit data PSN sent
    std::uint32_t next_msg = 0;     // next MSN expected to complete
    std::uint32_t rx_fires = 0;
    std::uint32_t tx_fires = 0;
    std::int64_t max_ack_emsn = -1;
    std::int64_t max_ack_cnt = -1;
    // HO lifecycle ledger (all counters are packets).
    std::uint64_t trims = 0;      // data packets trimmed for this flow
    std::uint64_t bounces = 0;    // HOs the receiver host emitted
    std::uint64_t ho_to_rx = 0;   // HOs delivered at the destination host
    std::uint64_t ho_to_tx = 0;   // HOs delivered at the source host
    std::uint64_t ho_other = 0;   // HOs delivered before endpoints were known
    std::uint64_t ho_lost = 0;    // HOs that died at an observed drop site
    std::vector<std::uint8_t> retry_seen;  // per-MSN high-water sRetryNo
    bool tracking_checked = false;
  };

  struct TraceEv {
    Time at = 0;
    std::uint8_t kind = 0;  // 'S'end 'D'eliver 'T'rim 'X'drop 'M'sg 'R'x 'F'(tx)
    std::uint8_t site = 0;  // DropSite for kind 'X'
    PktType type = PktType::kData;
    NodeId node = kInvalidNode;
    FlowId flow = 0;
    std::uint32_t psn = 0;
    std::uint32_t msn = 0;
    std::uint8_t retry = 0;
  };

  FlowState& flow(FlowId id);
  BufferShadow& buf_state(const SharedBuffer* buf);
  /// Timestamp for violations/trace events: the executing shard's clock
  /// (Simulator::active()), falling back to the primary sim outside a run.
  Time stamp() const;
  void violate(const char* invariant, std::string detail);
  void record(std::uint8_t kind, NodeId node, const Packet& pkt, std::uint8_t site = 0);
  void check_bounded_tracking(FlowId id, FlowState& f);

  Network& net_;
  Simulator& sim_;  // cached: record() reads the clock on every hot hook
  // Sharded runs fire hooks from every shard's worker concurrently; all
  // oracle state is cross-flow, so the public hooks serialize on mu_ when
  // armed on a sharded group (serial runs skip the lock entirely).
  // Violation/trace timestamps come from the executing shard's own clock
  // via stamp() — reading another shard's now() would be a data race.
  bool mt_ = false;
  std::mutex mu_;
  OracleOptions opt_;
  CheckObserver* prev_ = nullptr;
  std::vector<SharedBuffer*> watched_;
  // Flow ids are dense (Network hands them out sequentially from 1), so the
  // per-event lookup is a plain vector index; the map only catches a rogue
  // id a broken component might forge.  States live by value — growth moves
  // them, so no FlowState reference may be held across flow() calls.
  static constexpr FlowId kDenseFlowLimit = 1u << 20;
  std::vector<FlowState> flows_;
  std::unordered_map<FlowId, FlowState> sparse_flows_;
  // A handful of buffers per topology; the shadows are heap-held so the
  // pointer handed to SharedBuffer stays stable as this vector grows.
  // The clean-path replay runs inline at the alloc/release sites (see
  // check/observer.h), so the virtual hooks below only fire on divergence.
  std::vector<std::pair<const SharedBuffer*, std::unique_ptr<BufferShadow>>> buffers_;
  std::vector<TraceEv> ring_;  // capacity rounded up to a power of two
  std::size_t ring_mask_ = 0;
  std::size_t ring_next_ = 0;
  bool ring_wrapped_ = false;
  bool frozen_ = false;  // stop tracing after the first violation
  std::vector<InvariantViolation> violations_;
  std::uint64_t suppressed_ = 0;  // violations beyond max_violations
  bool finalized_ = false;
};

}  // namespace dcp
