#include "check/invariant_oracle.h"

#include "sim/snapshot.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <mutex>

#include "core/dcp_transport.h"

namespace dcp {

namespace {

std::string fmt(const char* f, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof(buf), f, ap);
  va_end(ap);
  return buf;
}

const char* pkt_type_name(PktType t) {
  switch (t) {
    case PktType::kData: return "data";
    case PktType::kAck: return "ack";
    case PktType::kSack: return "sack";
    case PktType::kNack: return "nack";
    case PktType::kCnp: return "cnp";
    case PktType::kHeaderOnly: return "ho";
    case PktType::kPfcPause: return "pause";
    case PktType::kPfcResume: return "resume";
  }
  return "?";
}

}  // namespace

InvariantOracle::InvariantOracle(Network& net, OracleOptions opt)
    : net_(net), sim_(net.sim()), opt_(opt) {
  // The ring is indexed with a mask, so round its capacity up to a power
  // of two.
  std::size_t cap = 1;
  while (cap < opt_.trace_capacity) cap <<= 1;
  ring_.resize(cap);
  ring_mask_ = cap - 1;
  prev_ = sim_.check_observer();
  net_.set_check_observer_all(this);
  mt_ = net_.shard_count() > 1;
  for (const auto& sw : net_.switches()) watch_buffer(sw->buffer());
}

InvariantOracle::~InvariantOracle() {
  net_.set_check_observer_all(prev_);
  for (SharedBuffer* b : watched_) b->set_check_observer(nullptr);
}

void InvariantOracle::watch_buffer(SharedBuffer& buf) {
  // Installing the shadow moves the clean-path replay inline into
  // alloc/release; the virtual hooks below then only see divergences.
  buf.set_check_observer(this, &buf_state(&buf));
  watched_.push_back(&buf);
}

InvariantOracle::FlowState& InvariantOracle::flow(FlowId id) {
  if (id >= kDenseFlowLimit) return sparse_flows_[id];
  if (id >= flows_.size()) flows_.resize(id + 1);
  return flows_[id];
}

BufferShadow& InvariantOracle::buf_state(const SharedBuffer* buf) {
  for (auto& [key, state] : buffers_) {
    if (key == buf) return *state;
  }
  buffers_.emplace_back(buf, std::make_unique<BufferShadow>());
  return *buffers_.back().second;
}

Time InvariantOracle::stamp() const {
  // Hooks fire on the executing shard's thread; its own clock is the only
  // one safe (and meaningful) to read there.  Outside any run loop
  // (finalize, setup) fall back to the primary simulator.
  const Simulator* s = Simulator::active();
  return s != nullptr ? s->now() : sim_.now();
}

void InvariantOracle::violate(const char* invariant, std::string detail) {
  frozen_ = true;  // preserve the trace ring as it was at first failure
  if (violations_.size() >= opt_.max_violations) {
    suppressed_++;
    return;
  }
  violations_.push_back({invariant, std::move(detail), stamp()});
}

void InvariantOracle::record(std::uint8_t kind, NodeId node, const Packet& pkt,
                             std::uint8_t site) {
  if (frozen_ || ring_.empty()) return;
  TraceEv& e = ring_[ring_next_];
  e.at = stamp();
  e.kind = kind;
  e.site = site;
  e.type = pkt.type;
  e.node = node;
  e.flow = pkt.flow;
  e.psn = pkt.psn;
  e.msn = pkt.msn;
  e.retry = pkt.retry_no;
  ring_next_ = (ring_next_ + 1) & ring_mask_;
  if (ring_next_ == 0) ring_wrapped_ = true;
}

// ---------------------------------------------------------------------------
// Per-event hooks
// ---------------------------------------------------------------------------

namespace {
// Lock only when the oracle is armed on a sharded group.
struct MaybeLock {
  MaybeLock(std::mutex& m, bool on) : m_(m), on_(on) {
    if (on_) m_.lock();
  }
  ~MaybeLock() {
    if (on_) m_.unlock();
  }
  MaybeLock(const MaybeLock&) = delete;
  MaybeLock& operator=(const MaybeLock&) = delete;

 private:
  std::mutex& m_;
  bool on_;
};
}  // namespace

void InvariantOracle::on_host_send(const Packet& pkt) {
  MaybeLock lk(mu_, mt_);
  record('S', pkt.src, pkt);
  switch (pkt.type) {
    case PktType::kData: {
      FlowState& f = flow(pkt.flow);
      if (!f.endpoints_known) {
        f.src = pkt.src;
        f.dst = pkt.dst;
        f.endpoints_known = true;
      }
      if (!pkt.is_retransmit) {
        if (static_cast<std::int64_t>(pkt.psn) <= f.max_new_psn) {
          violate("psn-monotonic",
                  fmt("flow %" PRIu64 ": new data psn %u not above high-water %lld", pkt.flow,
                      pkt.psn, static_cast<long long>(f.max_new_psn)));
        } else {
          f.max_new_psn = pkt.psn;
        }
      } else if (static_cast<std::int64_t>(pkt.psn) > f.max_new_psn) {
        violate("psn-monotonic", fmt("flow %" PRIu64 ": retransmission of never-sent psn %u",
                                     pkt.flow, pkt.psn));
      }
      if (pkt.tag == DcpTag::kData) {
        if (pkt.msn >= f.retry_seen.size()) f.retry_seen.resize(pkt.msn + 1, 0);
        std::uint8_t& seen = f.retry_seen[pkt.msn];
        if (pkt.retry_no < seen) {
          violate("retry-escalation",
                  fmt("flow %" PRIu64 " msn %u: sRetryNo regressed %u -> %u", pkt.flow, pkt.msn,
                      seen, pkt.retry_no));
        } else {
          seen = pkt.retry_no;
        }
      }
      return;
    }
    case PktType::kAck: {
      if (pkt.tag != DcpTag::kAck) return;  // only DCP ACKs carry eMSN/rcnt
      FlowState& f = flow(pkt.flow);
      if (static_cast<std::int64_t>(pkt.emsn) < f.max_ack_emsn) {
        violate("ack-monotonic", fmt("flow %" PRIu64 ": eMSN regressed %lld -> %u", pkt.flow,
                                     static_cast<long long>(f.max_ack_emsn), pkt.emsn));
      } else {
        f.max_ack_emsn = pkt.emsn;
      }
      if (static_cast<std::int64_t>(pkt.ack_psn) < f.max_ack_cnt) {
        violate("ack-monotonic",
                fmt("flow %" PRIu64 ": arrival count regressed %lld -> %u", pkt.flow,
                    static_cast<long long>(f.max_ack_cnt), pkt.ack_psn));
      } else {
        f.max_ack_cnt = pkt.ack_psn;
      }
      return;
    }
    case PktType::kHeaderOnly: {
      // A host emitting an HO is the receiver's bounce (§4.1 step 2); it
      // must be backed by a trimmed HO that actually arrived there.
      FlowState& f = flow(pkt.flow);
      f.bounces++;
      if (f.bounces > f.ho_to_rx + f.ho_other) {
        violate("ho-conservation",
                fmt("flow %" PRIu64 ": bounce #%" PRIu64 " exceeds HO arrivals %" PRIu64
                    " (forged HO)",
                    pkt.flow, f.bounces, f.ho_to_rx + f.ho_other));
      }
      return;
    }
    default:
      return;
  }
}

void InvariantOracle::on_host_deliver(NodeId host, const Packet& pkt) {
  MaybeLock lk(mu_, mt_);
  record('D', host, pkt);
  if (pkt.type != PktType::kHeaderOnly) return;
  FlowState& f = flow(pkt.flow);
  if (!f.endpoints_known) {
    f.ho_other++;
  } else if (host == f.dst) {
    f.ho_to_rx++;
  } else if (host == f.src) {
    f.ho_to_tx++;
  } else {
    violate("ho-conservation",
            fmt("flow %" PRIu64 ": HO delivered to host %u, neither src %u nor dst %u", pkt.flow,
                host, f.src, f.dst));
  }
}

void InvariantOracle::on_msg_complete(FlowId id, std::uint32_t msn) {
  MaybeLock lk(mu_, mt_);
  if (!frozen_ && !ring_.empty()) {
    Packet p;
    p.flow = id;
    p.msn = msn;
    record('M', kInvalidNode, p);
  }
  FlowState& f = flow(id);
  if (msn < f.next_msg) {
    violate("exactly-once-message",
            fmt("flow %" PRIu64 ": message %u completed again (eMSN already %u)", id, msn,
                f.next_msg));
  } else if (msn > f.next_msg) {
    violate("exactly-once-message",
            fmt("flow %" PRIu64 ": message %u completed before message %u", id, msn, f.next_msg));
  } else {
    f.next_msg++;
  }
  if (!f.tracking_checked) {
    f.tracking_checked = true;
    check_bounded_tracking(id, f);
  }
}

void InvariantOracle::check_bounded_tracking(FlowId id, FlowState& f) {
  if (!f.endpoints_known) return;
  Host* h = net_.host(f.dst);
  if (h == nullptr) return;
  const auto* rx = dynamic_cast<const DcpReceiver*>(h->receiver(id));
  if (rx == nullptr) return;  // bitmap variant / other schemes: not bound
  // §4.5: tracking state must scale with the outstanding-message window,
  // never with the flow.  The generous constant absorbs bookkeeping
  // (eMSN, flags) while still catching any per-packet or per-message-count
  // structure, which grows with the flow length.
  const std::uint64_t outstanding = net_.transport_config().outstanding_msgs;
  const std::uint64_t bound = outstanding * 16 + 64;
  const std::uint64_t mem = rx->tracker().memory_bytes();
  if (mem > bound) {
    violate("bounded-tracking",
            fmt("flow %" PRIu64 ": tracker uses %" PRIu64 " B, bound %" PRIu64
                " B for %" PRIu64 " outstanding messages",
                id, mem, bound, outstanding));
  }
}

void InvariantOracle::on_rx_complete(FlowId id) {
  MaybeLock lk(mu_, mt_);
  if (!frozen_ && !ring_.empty()) {
    Packet p;
    p.flow = id;
    record('R', kInvalidNode, p);
  }
  FlowState& f = flow(id);
  if (++f.rx_fires > 1) {
    violate("exactly-once-completion",
            fmt("flow %" PRIu64 ": receiver completion fired %u times", id, f.rx_fires));
  }
}

void InvariantOracle::on_tx_complete(FlowId id) {
  MaybeLock lk(mu_, mt_);
  if (!frozen_ && !ring_.empty()) {
    Packet p;
    p.flow = id;
    record('F', kInvalidNode, p);
  }
  FlowState& f = flow(id);
  if (++f.tx_fires > 1) {
    violate("exactly-once-completion",
            fmt("flow %" PRIu64 ": sender completion fired %u times", id, f.tx_fires));
  }
}

void InvariantOracle::on_trim(NodeId sw, const Packet& ho) {
  MaybeLock lk(mu_, mt_);
  record('T', sw, ho);
  flow(ho.flow).trims++;
}

void InvariantOracle::on_drop(DropSite site, NodeId node, const Packet& pkt) {
  MaybeLock lk(mu_, mt_);
  record('X', node, pkt, static_cast<std::uint8_t>(site));
  if (pkt.type != PktType::kHeaderOnly) return;
  // An unroutable HO still *landed* at a host — on_host_deliver already
  // booked it, so booking a loss too would double-count.
  if (site == DropSite::kHostUnroutable) return;
  flow(pkt.flow).ho_lost++;
}

// The clean-path replay runs inline at the SharedBuffer call sites (see
// BufferShadow in check/observer.h); these hooks are the cold path — they
// fire only when a step diverged, report it, and resync the shadow so one
// bug reports once, not per event.  A buffer armed without a shadow (an
// observer installed by hand) still gets the full per-call replay here.

void InvariantOracle::on_buffer_alloc(const SharedBuffer* buf, std::uint32_t in_port,
                                      std::uint8_t cls, std::uint64_t bytes,
                                      std::uint64_t used_after) {
  MaybeLock lk(mu_, mt_);
  BufferShadow* sh = buf->check_shadow();
  if (sh == nullptr) {
    sh = &buf_state(buf);
    if (sh->on_alloc(in_port, cls, bytes, used_after) == ShadowFail::kNone) return;
  }
  violate("buffer-conservation",
          fmt("alloc of %" PRIu64 " B: buffer reports %" PRIu64 " B used, ledger %" PRIu64,
              bytes, used_after, sh->used));
  sh->used = used_after;
}

void InvariantOracle::on_buffer_release(const SharedBuffer* buf, std::uint32_t in_port,
                                        std::uint8_t cls, std::uint64_t bytes,
                                        std::uint64_t used_after) {
  MaybeLock lk(mu_, mt_);
  BufferShadow* sh = buf->check_shadow();
  if (sh == nullptr) {
    sh = &buf_state(buf);
    if (sh->on_release(in_port, cls, bytes, used_after) == ShadowFail::kNone) return;
  }
  const std::size_t key = static_cast<std::size_t>(in_port) * kNumQueueClasses + cls;
  if (sh->last_fail == ShadowFail::kUnderflow) {
    violate("buffer-conservation",
            fmt("release of %" PRIu64 " B from port %u class %u without a matching alloc "
                "(held: %" PRIu64 " B)",
                bytes, in_port, cls, key < sh->per_key.size() ? sh->per_key[key] : 0));
    if (key < sh->per_key.size()) sh->per_key[key] = 0;
    sh->used = used_after;
    return;
  }
  violate("buffer-conservation",
          fmt("release of %" PRIu64 " B: buffer reports %" PRIu64 " B used, ledger %" PRIu64,
              bytes, used_after, sh->used));
  sh->used = used_after;
}

// ---------------------------------------------------------------------------
// End-of-run audit
// ---------------------------------------------------------------------------

void InvariantOracle::finalize() {
  if (finalized_) return;
  finalized_ = true;
  ShardGroup* g = net_.shard_group();
  const bool quiesced = g != nullptr && g->sharded() ? g->idle() : sim_.idle();

  for (const FlowRecord& rec : net_.records()) {
    if (rec.complete()) {
      if (rec.receiver.bytes_received != rec.spec.bytes) {
        violate("completion-consistency",
                fmt("flow %" PRIu64 ": completed with %" PRIu64 " B received, flow is %" PRIu64
                    " B",
                    rec.spec.id, rec.receiver.bytes_received, rec.spec.bytes));
      }
      // recovery-accounting (FEC): decode-recovered and NACK-recovered
      // chunks partition the repaired losses, so their sum can never exceed
      // the flow's data-packet count — an overshoot means a chunk was
      // credited twice (e.g. counted by the decoder and again when the
      // retransmission landed), which completion-consistency alone can miss
      // when offsetting byte errors cancel out.
      const std::uint64_t mtu = net_.transport_config().mtu_payload;
      std::uint64_t data_pkts = mtu > 0 ? (rec.spec.bytes + mtu - 1) / mtu : 0;
      if (data_pkts == 0) data_pkts = 1;
      const std::uint64_t recovered =
          rec.receiver.decode_recovered_packets + rec.receiver.nack_recovered_packets;
      if (recovered > data_pkts) {
        violate("recovery-accounting",
                fmt("flow %" PRIu64 ": %" PRIu64 " chunks recovered (%" PRIu64
                    " decode + %" PRIu64 " NACK) out of only %" PRIu64 " data packets",
                    rec.spec.id, recovered, rec.receiver.decode_recovered_packets,
                    rec.receiver.nack_recovered_packets, data_pkts));
      }
    } else if (quiesced) {
      violate("no-silent-deadlock",
              fmt("flow %" PRIu64 ": simulator quiesced but the flow never completed "
                  "(%" PRIu64 " of %" PRIu64 " B delivered)",
                  rec.spec.id, rec.receiver.bytes_received, rec.spec.bytes));
    }
  }

  if (quiesced) {
    const auto audit_ho = [this](FlowId id, const FlowState& f) {
      const std::uint64_t created = f.trims + f.bounces;
      const std::uint64_t consumed = f.ho_to_rx + f.ho_to_tx + f.ho_other + f.ho_lost;
      if (created != consumed) {
        violate("ho-conservation",
                fmt("flow %" PRIu64 ": %" PRIu64 " HOs created (%" PRIu64 " trims + %" PRIu64
                    " bounces) but %" PRIu64 " accounted (%" PRIu64 " rx, %" PRIu64
                    " tx, %" PRIu64 " lost)",
                    id, created, f.trims, f.bounces, consumed, f.ho_to_rx + f.ho_other,
                    f.ho_to_tx, f.ho_lost));
      }
    };
    for (FlowId id = 0; id < flows_.size(); ++id) audit_ho(id, flows_[id]);
    for (const auto& [id, f] : sparse_flows_) audit_ho(id, f);
    for (const auto& [buf, b] : buffers_) {
      if (b->used != 0 || buf->used() != 0) {
        violate("buffer-conservation",
                fmt("buffer holds %" PRIu64 " B (ledger %" PRIu64 " B) after quiesce — leaked "
                    "cells",
                    buf->used(), b->used));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

std::string InvariantOracle::summary() const {
  if (violations_.empty()) return "all invariants held";
  const InvariantViolation& v = violations_.front();
  std::string s =
      fmt("[%s] at %.3fus: ", v.invariant.c_str(), to_us(v.at)) + v.detail;
  const std::uint64_t more = violations_.size() - 1 + suppressed_;
  if (more > 0) s += fmt(" (+%" PRIu64 " more)", more);
  return s;
}

std::string InvariantOracle::trace_slice(std::size_t max_events) const {
  const std::size_t stored = ring_wrapped_ ? ring_.size() : ring_next_;
  const std::size_t n = stored < max_events ? stored : max_events;
  std::string out;
  char buf[160];
  for (std::size_t i = 0; i < n; ++i) {
    // Oldest-first among the last n events.
    const std::size_t idx = (ring_next_ + ring_.size() - n + i) % ring_.size();
    const TraceEv& e = ring_[idx];
    const char* what = "?";
    switch (e.kind) {
      case 'S': what = "send"; break;
      case 'D': what = "deliver"; break;
      case 'T': what = "trim"; break;
      case 'X': what = "drop"; break;
      case 'M': what = "msg-complete"; break;
      case 'R': what = "rx-complete"; break;
      case 'F': what = "tx-complete"; break;
    }
    std::snprintf(buf, sizeof(buf), "%10.3fus  %-12s flow=%" PRIu64 " %s psn=%u msn=%u retry=%u",
                  to_us(e.at), what, e.flow, pkt_type_name(e.type), e.psn, e.msn, e.retry);
    out += buf;
    if (e.kind == 'X') {
      out += " site=";
      out += drop_site_name(static_cast<DropSite>(e.site));
    }
    if (e.node != kInvalidNode) {
      std::snprintf(buf, sizeof(buf), " node=%u", e.node);
      out += buf;
    }
    out += '\n';
  }
  return out;
}


void InvariantOracle::checkpoint(StateIO& io) {
  io.label(0x02AC1Eu);
  auto flow_state = [](StateIO& s, FlowState& f) {
    s.pod(f.src);
    s.pod(f.dst);
    s.pod(f.endpoints_known);
    s.pod(f.max_new_psn);
    s.pod(f.next_msg);
    s.pod(f.rx_fires);
    s.pod(f.tx_fires);
    s.pod(f.max_ack_emsn);
    s.pod(f.max_ack_cnt);
    s.pod(f.trims);
    s.pod(f.bounces);
    s.pod(f.ho_to_rx);
    s.pod(f.ho_to_tx);
    s.pod(f.ho_other);
    s.pod(f.ho_lost);
    s.vec(f.retry_seen);
    s.pod(f.tracking_checked);
  };
  io.each(flows_, flow_state);
  // Sparse states (forged flow ids) sorted by id for a canonical stream.
  std::vector<FlowId> sids;
  sids.reserve(sparse_flows_.size());
  for (auto& kv : sparse_flows_) sids.push_back(kv.first);
  std::sort(sids.begin(), sids.end());
  std::uint64_t sn = sids.size();
  io.pod(sn);
  if (io.saving()) {
    for (FlowId id : sids) {
      FlowId rid = id;
      io.pod(rid);
      flow_state(io, sparse_flows_.at(id));
    }
  } else {
    sparse_flows_.clear();
    for (std::uint64_t i = 0; i < sn && io.ok(); ++i) {
      FlowId id = 0;
      io.pod(id);
      flow_state(io, sparse_flows_[id]);
    }
  }
  // Buffer shadows: the watch list itself is rebuilt by the constructor in
  // the same order, so only the replay state is overlaid.
  io.fixed(buffers_, [](StateIO& s, std::pair<const SharedBuffer*, std::unique_ptr<BufferShadow>>& b) {
    s.pod(b.second->used);
    s.vec(b.second->per_key);
    s.pod(b.second->last_fail);
  });
  io.vec(ring_);
  io.pod(ring_next_);
  io.pod(ring_wrapped_);
  io.pod(frozen_);
  io.each(violations_, [](StateIO& s, InvariantViolation& v) {
    s.str(v.invariant);
    s.str(v.detail);
    s.pod(v.at);
  });
  io.pod(suppressed_);
  io.pod(finalized_);
}

}  // namespace dcp
