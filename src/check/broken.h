#pragma once
// Deliberately broken transports: oracle self-test fixtures.
//
// Each "toy" pair is a complete (if naive) stop-and-wait-free protocol —
// the sender streams every packet, the sink accounts unique bytes and ACKs
// once it has the whole flow — so that on a loss-free fabric a run is
// clean except for the one seeded defect, and a toy must trip *exactly*
// its intended invariant.
//
// BrokenDcpFactory is the fuzzer's quarry: a real DcpReceiver wrapped so
// that the first retransmitted data packet also fires a completion — the
// classic duplicate-CQE bug.  Fault-free runs behave identically to stock
// DCP; only a scenario that actually provokes a retransmission exposes it,
// which is exactly what run_fuzz must find and shrink (see --inject-bug).

#include <memory>
#include <vector>

#include "core/dcp_transport.h"
#include "host/transport.h"

namespace dcp {

enum class ToyBug {
  kNone,          // control: the toy protocol itself must pass the oracle
  kPsnRegress,    // re-sends an old PSN flagged as *new* data
  kDupComplete,   // fires the receiver completion twice
  kForgedHo,      // bounces a header-only packet no switch ever trimmed
};

/// Instantiates the toy protocol, seeded with one bug (or none).
class ToyFactory final : public TransportFactory {
 public:
  explicit ToyFactory(ToyBug bug) : bug_(bug) {}
  std::unique_ptr<SenderTransport> make_sender(Simulator& sim, Host& host, const FlowSpec& spec,
                                               const TransportConfig& cfg) override;
  std::unique_ptr<ReceiverTransport> make_receiver(Simulator& sim, Host& host,
                                                   const FlowSpec& spec,
                                                   const TransportConfig& cfg) override;
  std::string name() const override { return "toy"; }

 private:
  ToyBug bug_;
};

/// Stock DCP with a duplicate-completion defect at the receiver.
class BrokenDcpFactory final : public TransportFactory {
 public:
  std::unique_ptr<SenderTransport> make_sender(Simulator& sim, Host& host, const FlowSpec& spec,
                                               const TransportConfig& cfg) override;
  std::unique_ptr<ReceiverTransport> make_receiver(Simulator& sim, Host& host,
                                                   const FlowSpec& spec,
                                                   const TransportConfig& cfg) override;
  std::string name() const override { return "DCP+dup-completion"; }
};

}  // namespace dcp
