#pragma once
// ScenarioFuzzer: derives a random topology x workload x scheme x FaultPlan
// scenario from a single seed, runs it with the InvariantOracle armed, and
// — when an invariant breaks — shrinks the scenario to a minimal repro.
//
// Everything is a pure function of the seed: scenario generation pulls from
// independent Rng substreams per aspect (scheme / topology / workload /
// faults), the run itself is an ordinary deterministic simulation, and the
// shrinker only ever re-runs candidate scenarios.  Same seed, same binary
// => same scenario, same verdict, byte-identical repro file — regardless of
// how many fuzz trials run in parallel around it.
//
// Repro files are self-contained: a [scenario] section (seed + topology +
// flows), a [faults] section in the exact fault_plan.cpp grammar, and the
// verdict + event-trace tail as comments.  parse_fuzz_scenario() reads the
// file back for --replay.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "harness/scheme.h"

namespace dcp {

struct FuzzFlow {
  int src = 0;  // host index into the scenario's CLOS topology
  int dst = 1;
  std::uint64_t bytes = 64 * 1024;
  std::uint64_t msg_bytes = 0;  // 0 = one message for the whole flow
  Time start = 0;

  bool operator==(const FuzzFlow&) const = default;
};

struct FuzzScenario {
  std::uint64_t seed = 1;  // provenance only; the run never draws from it
  SchemeKind scheme = SchemeKind::kDcp;
  int spines = 1;
  int leaves = 2;
  int hosts_per_leaf = 1;
  /// 0 = two-tier CLOS from spines/leaves/hosts_per_leaf (the historical
  /// pool, so existing seeds and golden digests never shift); > 0 = k-ary
  /// fat-tree with k = fattree_k (even), ignoring the CLOS fields.  The
  /// CLOS host-index range is always a subset of the fat-tree's (k >= 2
  /// gives >= 2 hosts, and generated indices stay below num_hosts()), so a
  /// generated scenario can be re-pooled onto a fat-tree by setting this.
  int fattree_k = 0;
  Time max_time = milliseconds(50);
  std::vector<FuzzFlow> flows;
  FaultPlan faults;

  int num_hosts() const {
    return fattree_k > 0 ? fattree_k * fattree_k * fattree_k / 4 : leaves * hosts_per_leaf;
  }
  bool operator==(const FuzzScenario&) const = default;
};

/// Derives the full scenario for a seed.  Substream-per-aspect: the flow
/// draw never shifts because the fault draw grew an action, and vice versa.
FuzzScenario generate_fuzz_scenario(std::uint64_t seed);

struct FuzzOptions {
  /// Replaces the scheme's transport factory (broken test doubles; see
  /// check/broken.h).  The scenario's scheme still picks the switch config.
  std::shared_ptr<TransportFactory> factory_override;
  std::size_t trace_events = 40;  // trace lines kept in the verdict
  /// Snapshot-accelerated shrinking (harness/checkpoint.h): ddmin probes
  /// restore from the latest prefix snapshot preceding the first removed
  /// fault action instead of re-running from t=0.  Restored probe runs are
  /// bit-identical to cold ones, so the shrink result is byte-identical
  /// with this on or off (run_fuzz --no-snapshot is the escape hatch).
  bool use_snapshots = true;
};

struct FuzzVerdict {
  bool violated = false;
  std::string invariant;  // first violation's stable id
  std::string message;    // InvariantOracle::summary()
  Time at = 0;
  std::size_t num_violations = 0;
  bool all_complete = false;  // every flow finished inside max_time
  std::string trace;          // event-ring tail up to the first violation
};

/// Builds the scenario's fabric, arms the oracle, runs to completion or
/// max_time, and reports.  Deterministic: depends only on (scenario, opt).
FuzzVerdict run_fuzz_scenario(const FuzzScenario& s, const FuzzOptions& opt = {});

struct ShrinkStats {
  std::size_t runs = 0;      // candidate scenarios executed
  std::size_t actions_before = 0;
  std::size_t actions_after = 0;
  std::size_t flows_before = 0;
  std::size_t flows_after = 0;
  /// Simulation events actually executed across all shrink runs, and
  /// events skipped by restoring probes from prefix snapshots (0 with
  /// use_snapshots off).  Both are deterministic, so
  /// (executed + skipped) / executed is the exact event-for-event speedup
  /// of snapshot-backed shrinking over cold re-runs.
  std::uint64_t events_executed = 0;
  std::uint64_t events_skipped = 0;
};

/// Minimizes a violating scenario while preserving its first-violation
/// invariant id: ddmin over fault actions, then flow removal, then
/// byte/message halving, then max_time halving.  Returns the input
/// unchanged when it does not violate.  Bounded by `max_runs` re-runs.
FuzzScenario shrink_fuzz_scenario(const FuzzScenario& s, const FuzzOptions& opt = {},
                                  ShrinkStats* stats = nullptr, std::size_t max_runs = 500);

/// Serializes scenario + verdict to the repro format described above.
std::string write_fuzz_repro(const FuzzScenario& s, const FuzzVerdict& v);

/// Parses a repro file (or just its [scenario]/[faults] sections) back.
std::optional<FuzzScenario> parse_fuzz_scenario(const std::string& text,
                                                std::string* error = nullptr);

/// Inverse of scheme_name(); nullopt for unknown names.
std::optional<SchemeKind> scheme_from_name(const std::string& name);

}  // namespace dcp
