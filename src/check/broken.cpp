#include "check/broken.h"

#include "sim/snapshot.h"

namespace dcp {

namespace {

// ---------------------------------------------------------------------------
// Toy protocol
// ---------------------------------------------------------------------------

class ToySender : public SenderTransport {
 public:
  using SenderTransport::SenderTransport;

  void on_packet(Packet pkt) override {
    if (pkt.type == PktType::kAck) finish();
  }
  bool done() const override { return finished_; }

 protected:
  bool protocol_has_packet() override { return next_ < plan_size(); }
  Packet protocol_next_packet() override { return packet_at(next_++); }

  virtual std::uint32_t plan_size() const { return total_packets(); }
  virtual Packet packet_at(std::uint32_t i) {
    return make_data_packet(i, HeaderSizes::kRoceData);
  }
  void checkpoint_extra(StateIO& io) override { io.pod(next_); }

  std::uint32_t next_ = 0;
};

// After the real stream, re-sends an already-sent PSN without the
// retransmit flag — to the oracle, new data going backwards.
class PsnRegressSender final : public ToySender {
 public:
  using ToySender::ToySender;

 protected:
  std::uint32_t plan_size() const override { return total_packets() + 1; }
  Packet packet_at(std::uint32_t i) override {
    if (i < total_packets()) return ToySender::packet_at(i);
    Packet p = make_data_packet(total_packets() > 1 ? total_packets() - 2 : 0,
                                HeaderSizes::kRoceData);
    p.last_of_flow = false;
    return p;
  }
};

class ToySink : public ReceiverTransport {
 public:
  using ReceiverTransport::ReceiverTransport;

  void on_packet(Packet pkt) override {
    if (pkt.type != PktType::kData) return;
    if (pkt.psn >= seen_.size()) seen_.resize(pkt.psn + 1, false);
    if (!seen_[pkt.psn]) {
      seen_[pkt.psn] = true;
      stats_.data_packets++;
      stats_.bytes_received += pkt.payload_bytes;
    } else {
      stats_.duplicate_packets++;
    }
    on_data(pkt);
    if (!done_ && stats_.bytes_received >= spec_.bytes) {
      done_ = true;
      on_all_bytes();
    }
  }
  bool complete() const override { return done_; }

 protected:
  virtual void on_data(const Packet&) {}
  virtual void on_all_bytes() {
    mark_complete();
    send_final_ack();
  }
  void send_final_ack() { send_control(make_control(PktType::kAck, HeaderSizes::kRoceAck)); }
  void checkpoint_extra(StateIO& io) override {
    io.vbool(seen_);
    io.pod(done_);
  }

 private:
  std::vector<bool> seen_;
  bool done_ = false;
};

class DupCompleteSink final : public ToySink {
 public:
  using ToySink::ToySink;

 protected:
  void on_all_bytes() override {
    mark_complete();
    mark_complete();  // the seeded defect: the CQE fires twice
    send_final_ack();
  }
};

class ForgedHoSink final : public ToySink {
 public:
  using ToySink::ToySink;

 protected:
  void on_data(const Packet&) override {
    if (forged_) return;
    forged_ = true;
    // Bounce an HO toward the sender although nothing was ever trimmed.
    send_control(make_control(PktType::kHeaderOnly, HeaderSizes::kDcpHeaderOnly));
  }
  void checkpoint_extra(StateIO& io) override {
    ToySink::checkpoint_extra(io);
    io.pod(forged_);
  }

 private:
  bool forged_ = false;
};

// ---------------------------------------------------------------------------
// Broken DCP: duplicate completion on the first retransmitted packet
// ---------------------------------------------------------------------------

class RetryDupReceiver final : public ReceiverTransport {
 public:
  RetryDupReceiver(Simulator& sim, Host& host, FlowSpec spec, TransportConfig cfg)
      : ReceiverTransport(sim, host, spec, cfg), inner_(sim, host, spec, cfg) {}

  void on_packet(Packet pkt) override {
    const bool trigger = !fired_ && pkt.type == PktType::kData && pkt.is_retransmit;
    inner_.on_packet(std::move(pkt));
    stats_ = inner_.stats();  // mirror so flow records stay truthful
    if (trigger) {
      fired_ = true;
      mark_complete();  // premature CQE; the real one follows from inner_
    }
  }
  bool complete() const override { return inner_.complete(); }

 protected:
  // The wrapper's own base fields ride the outer checkpoint(); the wrapped
  // receiver carries its full record (stats_ here mirrors inner_'s).
  void checkpoint_extra(StateIO& io) override {
    inner_.checkpoint(io);
    io.pod(fired_);
  }

 private:
  DcpReceiver inner_;
  bool fired_ = false;
};

}  // namespace

std::unique_ptr<SenderTransport> ToyFactory::make_sender(Simulator& sim, Host& host,
                                                         const FlowSpec& spec,
                                                         const TransportConfig& cfg) {
  if (bug_ == ToyBug::kPsnRegress) {
    return std::make_unique<PsnRegressSender>(sim, host, spec, cfg);
  }
  return std::make_unique<ToySender>(sim, host, spec, cfg);
}

std::unique_ptr<ReceiverTransport> ToyFactory::make_receiver(Simulator& sim, Host& host,
                                                             const FlowSpec& spec,
                                                             const TransportConfig& cfg) {
  switch (bug_) {
    case ToyBug::kDupComplete:
      return std::make_unique<DupCompleteSink>(sim, host, spec, cfg);
    case ToyBug::kForgedHo:
      return std::make_unique<ForgedHoSink>(sim, host, spec, cfg);
    default:
      return std::make_unique<ToySink>(sim, host, spec, cfg);
  }
}

std::unique_ptr<SenderTransport> BrokenDcpFactory::make_sender(Simulator& sim, Host& host,
                                                               const FlowSpec& spec,
                                                               const TransportConfig& cfg) {
  return std::make_unique<DcpSender>(sim, host, spec, cfg);
}

std::unique_ptr<ReceiverTransport> BrokenDcpFactory::make_receiver(Simulator& sim, Host& host,
                                                                   const FlowSpec& spec,
                                                                   const TransportConfig& cfg) {
  return std::make_unique<RetryDupReceiver>(sim, host, spec, cfg);
}

}  // namespace dcp
