#include "harness/scheme.h"

#include <algorithm>

#include "core/dcp_transport.h"
#include "transports/fec.h"
#include "transports/gbn.h"
#include "transports/irn.h"
#include "transports/mprdma.h"
#include "transports/racktlp.h"
#include "transports/tcp_lite.h"
#include "transports/timeout.h"

namespace dcp {

const char* scheme_name(SchemeKind k) {
  switch (k) {
    case SchemeKind::kPfc: return "PFC";
    case SchemeKind::kIrn: return "IRN";
    case SchemeKind::kIrnEcmp: return "IRN-ECMP";
    case SchemeKind::kMpRdma: return "MP-RDMA";
    case SchemeKind::kDcp: return "DCP";
    case SchemeKind::kCx5: return "CX5";
    case SchemeKind::kTimeout: return "Timeout";
    case SchemeKind::kRackTlp: return "RACK-TLP";
    case SchemeKind::kTcp: return "TCP";
    case SchemeKind::kFec: return "FEC";
  }
  return "?";
}

std::uint64_t bdp_bytes(Bandwidth rate, Time rtt) {
  return static_cast<std::uint64_t>(static_cast<double>(rtt) /
                                    static_cast<double>(rate.ps_per_byte));
}

SchemeSetup make_scheme(SchemeKind kind, const SchemeOptions& opt) {
  SchemeSetup s;
  s.kind = kind;

  const std::uint64_t bdp = bdp_bytes(opt.line_rate, opt.base_rtt);

  // Transport defaults common to all schemes.
  s.tcfg.rto_high = opt.rto_high;
  s.tcfg.rto_low = opt.rto_low;
  s.tcfg.dcp_msg_timeout = opt.dcp_msg_timeout;
  s.tcfg.cc.line_rate = opt.line_rate;
  s.tcfg.cc.window_bytes = bdp;

  // Switch defaults.
  s.sw.buffer_bytes = opt.buffer_bytes;
  s.sw.control_weight = opt.control_weight;

  auto enable_dcqcn = [&](std::uint64_t window) {
    s.tcfg.cc.type = opt.cc_type;
    s.tcfg.cc.window_bytes = window;
    // DCQCN is ECN-driven; TIMELY is delay-based and needs no marking.
    s.sw.ecn = opt.cc_type == CcConfig::Type::kDcqcn;
  };

  switch (kind) {
    case SchemeKind::kPfc:
      s.factory = std::make_shared<GbnFactory>();
      s.sw.pfc.enabled = true;  // thresholds derived by the topology builder
      s.sw.lb = LbPolicy::kEcmp;
      if (opt.with_cc) enable_dcqcn(bdp);
      break;

    case SchemeKind::kIrn:
    case SchemeKind::kIrnEcmp:
      s.factory = std::make_shared<IrnFactory>();
      s.sw.lb = kind == SchemeKind::kIrn ? LbPolicy::kAdaptive : LbPolicy::kEcmp;
      if (opt.with_cc) enable_dcqcn(bdp);
      break;

    case SchemeKind::kMpRdma:
      s.factory = std::make_shared<MpRdmaFactory>();
      s.sw.pfc.enabled = true;   // MP-RDMA requires a lossless fabric
      s.sw.ecn = true;           // its window rule is ECN-driven
      s.sw.lb = LbPolicy::kSourcePath;
      // The receiver's bounded reordering tolerance scales with BDP (the
      // NSDI'18 design sizes it from on-NIC metadata limits); it remains a
      // fraction of the window, which is what the paper's "cannot control
      // the OOO degree" observation exploits.
      s.tcfg.mp_ooo_window_pkts = std::max<std::uint32_t>(
          64, static_cast<std::uint32_t>(bdp / (4 * s.tcfg.mtu_payload)));
      break;

    case SchemeKind::kDcp:
      s.factory = std::make_shared<DcpFactory>();
      s.sw.trimming = true;
      s.sw.lb = LbPolicy::kAdaptive;
      // DCP's Tx path is gated by the CC module's available window (awin,
      // §4.3), realized as packet-conservation credit: BDP-scaled without
      // DCQCN (like IRN's BDP flow control), plus the DCQCN rate machine
      // when CC is integrated.
      if (opt.with_cc) {
        enable_dcqcn(bdp);
        // ECN must engage *below* the trim threshold or DCQCN never sees
        // marks (the data queue cannot exceed the threshold).
        s.sw.ecn_kmin_bytes = s.sw.trim_threshold_bytes / 5;
        s.sw.ecn_kmax_bytes = s.sw.trim_threshold_bytes * 4 / 5;
      } else {
        s.tcfg.cc.window_bytes = bdp;
      }
      break;

    case SchemeKind::kCx5:
      s.factory = std::make_shared<GbnFactory>();
      s.sw.lb = LbPolicy::kEcmp;
      if (opt.with_cc) enable_dcqcn(bdp);
      break;

    case SchemeKind::kTimeout:
      s.factory = std::make_shared<TimeoutFactory>();
      s.sw.lb = LbPolicy::kEcmp;
      if (opt.with_cc) enable_dcqcn(bdp);
      break;

    case SchemeKind::kRackTlp:
      s.factory = std::make_shared<RackTlpFactory>();
      s.sw.lb = LbPolicy::kEcmp;
      if (opt.with_cc) enable_dcqcn(bdp);
      break;

    case SchemeKind::kTcp:
      s.factory = std::make_shared<TcpLiteFactory>();
      s.sw.lb = LbPolicy::kEcmp;
      break;

    case SchemeKind::kFec:
      s.factory = std::make_shared<FecFactory>();
      s.sw.lb = LbPolicy::kEcmp;  // lossy fabric, no PFC/trim on a WAN
      s.tcfg.fec_k = opt.fec_k;
      s.tcfg.fec_m = opt.fec_m;
      // Fire-and-forget needs pipe + slack: with the window at exactly one
      // BDP the stream stalls while group ACKs cross the long haul.
      s.tcfg.fec_stream_window_bytes =
          opt.fec_stream_window_bytes > 0 ? opt.fec_stream_window_bytes : 2 * bdp;
      s.tcfg.fec_nack_delay =
          opt.fec_nack_delay > 0 ? opt.fec_nack_delay : std::max(opt.rto_low, opt.base_rtt / 2);
      if (opt.with_cc) enable_dcqcn(2 * bdp);
      break;
  }

  s.tcfg.mtu_payload = 1000;
  return s;
}

void apply_scheme(Network& net, const SchemeSetup& s) {
  net.set_factory(s.factory);
  net.set_transport_config(s.tcfg);
}

}  // namespace dcp
