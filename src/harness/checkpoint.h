#pragma once
// SimWorld: a deterministic, restorable fuzz-scenario world (the harness
// side of sim/snapshot.h — see docs/checkpoint.md).
//
// A WorldSpec is everything needed to rebuild the world bit-identically:
// the fuzz scenario (topology, scheme, flows, fault plan), the injector
// seed, and the optional factory override.  SimWorld replicates
// run_fuzz_scenario's construction order exactly, then exposes
// barrier-safe run_to() / save() / restore() on top, so that
//
//   SimWorld a(spec);  a.run_to(T);  a.save(img);  a.run_until_done();
//   SimWorld b(spec);  b.restore(img);             b.run_until_done();
//
// leaves a and b with identical digests AND identical events_processed —
// the restored run is bit-for-bit the uninterrupted one.  Restore into a
// world built from a *different but prefix-isomorphic* spec (the fuzzer's
// ddmin probes, which drop fault actions whose first effect lies at or
// after the snapshot time) is the allow_spec_delta path: runtime event
// sequences are renumbered by the constant setup-phase delta.

#include <cstdint>
#include <memory>
#include <string>

#include "check/fuzzer.h"
#include "fault/fault_injector.h"
#include "check/invariant_oracle.h"
#include "harness/scheme.h"
#include "sim/logger.h"
#include "sim/shard.h"
#include "sim/snapshot.h"
#include "topo/clos.h"
#include "topo/network.h"

namespace dcp {

/// Deterministic rebuild recipe for a fuzz-style world.
struct WorldSpec {
  FuzzScenario scenario;
  /// Seed for the FaultInjector's probability draws; run_fuzz derives it
  /// from scenario.seed (mix64(seed ^ kTagInject)).  Ignored when the
  /// scenario's fault plan has no effect.
  std::uint64_t injector_seed = 0;
  /// Replaces the scheme's transport factory (broken test doubles).
  std::shared_ptr<TransportFactory> factory_override;
  bool oracle = true;
  /// Overrides the shard count (0 = run_fuzz policy: DCP_SHARDS clamped
  /// to the leaf count when fault-free, serial otherwise).
  int force_shards = 0;

  /// Hashes every rebuild-relevant field; snapshots refuse a mismatched
  /// target unless the caller opts into the prefix-isomorphic delta path.
  std::uint64_t fingerprint() const;
};

/// Order-sensitive digest of a finished (or paused) world: per-flow
/// completion stamps and stats, aggregate switch counters, and the total
/// event count.  Two runs are bit-identical iff their digests match.
struct WorldDigest {
  std::uint64_t value = 0;
  std::uint64_t events = 0;
  bool operator==(const WorldDigest& o) const {
    return value == o.value && events == o.events;
  }
  bool operator!=(const WorldDigest& o) const { return !(*this == o); }
};

class SimWorld {
 public:
  explicit SimWorld(const WorldSpec& spec);
  ~SimWorld();
  SimWorld(const SimWorld&) = delete;
  SimWorld& operator=(const SimWorld&) = delete;

  /// Schemes whose transports implement checkpoint_extra.  TcpLite (the
  /// software-stack proxy) is out of scope; its runs simply never snapshot.
  static bool snapshot_supported(SchemeKind k) { return k != SchemeKind::kTcp; }

  const WorldSpec& spec() const { return spec_; }
  Network& net() { return *net_; }
  InvariantOracle* oracle() { return oracle_.get(); }
  FaultInjector* injector() { return inj_.get(); }
  int shard_count() const { return shards_->size(); }
  std::uint64_t setup_seq_end() const { return setup_seq_end_; }
  std::uint64_t events_processed() const;

  /// Pauses the CANONICAL run_until_done trajectory just before t: every
  /// event with time strictly below t has run (committing shard-window
  /// barriers), leaving the world at a barrier-safe snapshot point.  When
  /// the canonical run stops before t (all flows done at a slice boundary,
  /// or idle), the pause lands there instead — running past that point
  /// would execute trailing timer events the uninterrupted run never sees.
  void run_to(Time t);
  /// Runs to completion (scenario.max_time cap), resuming from wherever
  /// run_to() or restore() left the clocks.
  void run_until_done();
  /// Finalizes the oracle and assembles the fuzzer verdict.
  FuzzVerdict finalize_verdict(std::size_t trace_events = 40);

  /// Captures the full world state at the current (barrier-safe) point.
  /// Fails — world untouched — when the scheme or a module lacks
  /// checkpoint support.
  bool save(SnapshotImage& out, std::string* error = nullptr);
  /// Overlays a saved image onto this freshly built world.  Only legal
  /// before any run_to/run_until_done call.  With allow_spec_delta the
  /// image may come from a prefix-isomorphic spec (ddmin); otherwise the
  /// fingerprints must match.  On failure the world must be discarded.
  bool restore(const SnapshotImage& img, bool allow_spec_delta = false,
               std::string* error = nullptr);

  WorldDigest digest() const;

 private:
  Simulator& shard_sim(int i) { return shards_->sim(i); }

  WorldSpec spec_;
  std::unique_ptr<ShardGroup> shards_;
  std::unique_ptr<Logger> log_;
  std::unique_ptr<Network> net_;
  std::vector<Host*> hosts_;  // scenario host-index order (CLOS or fat-tree)
  std::unique_ptr<InvariantOracle> oracle_;
  std::unique_ptr<FaultInjector> inj_;
  std::uint64_t setup_seq_end_ = 0;
  Time at_ = 0;  // barrier-safe point: every event with t < at_ has run
};

/// The WorldSpec run_fuzz_scenario() builds for a scenario: same injector
/// seed derivation, same factory override.  Lets tools (run_fuzz
/// --at-time) and tests rebuild the exact world a fuzz verdict came from.
WorldSpec fuzz_world_spec(const FuzzScenario& s, const FuzzOptions& opt);

/// Warm-boot helper for sweeps: runs the spec's common prefix once, keeps
/// the snapshot, and boots per-trial worlds that skip straight to t.
class WarmBoot {
 public:
  /// Builds the world, runs it to t, saves the image.  ok() is false when
  /// the scheme cannot snapshot — callers fall back to cold boots.
  WarmBoot(const WorldSpec& spec, Time t);

  bool ok() const { return ok_; }
  const std::string& error() const { return err_; }
  const SnapshotImage& image() const { return img_; }

  /// A fresh world restored to t (skipping the prefix events).  Thread-safe
  /// once constructed: trials on a SweepRunner pool may boot concurrently.
  std::unique_ptr<SimWorld> boot(std::string* error = nullptr) const;

 private:
  WorldSpec spec_;
  SnapshotImage img_;
  bool ok_ = false;
  std::string err_;
};

}  // namespace dcp
