#pragma once
// One-call experiment runners shared by the bench binaries and the
// integration tests.  Each builds its own Simulator + Network, deploys a
// scheme, drives a workload, and returns the measurements the paper plots.

#include <cstdint>
#include <vector>

#include "check/invariant_oracle.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "harness/scheme.h"
#include "stats/core_perf.h"
#include "stats/fct_stats.h"
#include "stats/recovery_stats.h"
#include "topo/clos.h"
#include "topo/testbed.h"
#include "topo/wan.h"
#include "workload/collective.h"
#include "workload/flowgen.h"
#include "workload/incast.h"

namespace dcp {

// ---------------------------------------------------------------------------
// Long-running flow on the testbed (Figs. 10, 17, long-haul)
// ---------------------------------------------------------------------------

struct LongFlowParams {
  SchemeKind scheme = SchemeKind::kDcp;
  SchemeOptions opt;
  double loss_rate = 0.0;            // injected at switch 1
  std::uint64_t flow_bytes = 25ull * 1000 * 1000;
  Time max_time = milliseconds(200);
  Time cross_link_delay = microseconds(1);  // 50 us = the 10 km fiber
  std::uint64_t seed = 1;
  FaultPlan faults;  // optional: injected while the flow runs
};

struct LongFlowResult {
  double goodput_gbps = 0.0;   // receiver bytes / elapsed
  bool completed = false;
  Time elapsed = 0;
  SenderStats sender;
  ReceiverStats receiver;
  Switch::Stats sw;
  std::vector<RecoveryStats::Episode> fault_episodes;  // one per fired action
  FaultInjector::Counters wire;                        // wire-level fault tally
  CorePerf core;  // simulator substrate speed for this run
};

LongFlowResult run_long_flow(const LongFlowParams& p);

// ---------------------------------------------------------------------------
// Adaptive routing over unequal paths (Fig. 11)
// ---------------------------------------------------------------------------

struct UnequalPathsResult {
  double avg_goodput_gbps = 0.0;
  double flow_goodputs[2] = {0.0, 0.0};
  CorePerf core;
};

/// Two cross-switch flows over two cross links with capacity `ratio`:1.
/// `sport_base` varies the ECMP hash draw across trials.
UnequalPathsResult run_unequal_paths(SchemeKind scheme, double ratio,
                                     std::uint64_t flow_bytes = 12ull * 1000 * 1000,
                                     const SchemeOptions& opt = {},
                                     std::uint16_t sport_base = 10000);

// ---------------------------------------------------------------------------
// WebSearch background (+ optional incast) on the CLOS fabric
// (Figs. 1, 2, 13, 15, 16; Table 5)
// ---------------------------------------------------------------------------

enum class WorkloadDist { kWebSearch, kDataMining };

struct WebSearchParams {
  SchemeKind scheme = SchemeKind::kDcp;
  SchemeOptions opt;
  ClosParams clos;                 // sw config is overwritten by the scheme
  WorkloadDist dist = WorkloadDist::kWebSearch;
  double load = 0.3;
  std::size_t num_flows = 500;
  bool with_incast = false;
  IncastParams incast;
  Time max_time = seconds(2);
  std::uint64_t seed = 42;
  FaultPlan faults;  // optional: injected under the background workload
};

struct RetransSample {
  std::uint64_t flow_bytes;
  double retrans_ratio;  // retransmitted / total data packets sent
  bool background;
};

struct WebSearchResult {
  FctStats background;       // slowdowns of background flows
  FctStats incast_flows;     // slowdowns of incast flows
  std::uint64_t timeouts_background = 0;
  std::uint64_t timeouts_incast = 0;
  std::vector<RetransSample> retrans;   // per-flow retransmission ratios
  std::vector<std::uint64_t> timeouts_per_flow_bg;
  std::vector<std::uint64_t> timeouts_per_flow_incast;
  Switch::Stats sw;
  std::size_t flows_total = 0;
  std::size_t flows_completed = 0;
  double ho_loss_ratio = 0.0;  // dropped HO / (dropped + delivered) (Table 5)
  std::vector<RecoveryStats::Episode> fault_episodes;
  FaultInjector::Counters wire;
  CorePerf core;
};

WebSearchResult run_websearch(const WebSearchParams& p);

// ---------------------------------------------------------------------------
// Fault drill: one long cross-rack flow under a FaultPlan
// ---------------------------------------------------------------------------
//
// The canonical robustness experiment: a small leaf-spine fabric carries a
// single long flow, the plan's faults fire mid-transfer, and the result
// reports how the scheme rode them out.  An empty (or all-no-op) plan runs
// bit-identically to a fault-free baseline.

struct FaultDrillParams {
  SchemeKind scheme = SchemeKind::kDcp;
  SchemeOptions opt;
  FaultPlan faults;
  ClosParams clos = small_drill_clos();
  std::uint64_t flow_bytes = 8ull * 1000 * 1000;
  // Receivers account unique bytes at *message completion*, so the drill
  // posts the flow at a granularity well below sample_interval's worth of
  // line rate — with one flow-sized message the goodput sampler would see
  // nothing until the very end.
  std::uint64_t msg_bytes = 64 * 1024;
  Time max_time = milliseconds(100);
  std::uint64_t seed = 1;
  std::uint64_t fault_seed = 0xfa017;
  Time sample_interval = microseconds(20);
  /// Arms the InvariantOracle for the whole run; violations land in
  /// FaultDrillResult::violations.  Off by default (≈ zero-cost hooks).
  bool oracle = false;

  static ClosParams small_drill_clos() {
    ClosParams c;
    c.spines = 2;
    c.leaves = 2;
    c.hosts_per_leaf = 2;
    return c;
  }
};

struct FaultDrillResult {
  double goodput_gbps = 0.0;
  bool completed = false;
  Time elapsed = 0;
  SenderStats sender;
  ReceiverStats receiver;
  Switch::Stats sw;
  std::vector<RecoveryStats::Episode> fault_episodes;
  FaultInjector::Counters wire;
  CorePerf core;
  std::vector<InvariantViolation> violations;  // only when params.oracle
};

FaultDrillResult run_fault_drill(const FaultDrillParams& p);

// ---------------------------------------------------------------------------
// WAN cross-region flow (bench_fig18): lossy long-haul links
// ---------------------------------------------------------------------------
//
// One flow from region 0 to region 1 over the WAN mesh.  Ambient wire loss
// comes from the topology's per-direction ChannelFault substreams, which
// are shard-safe (each is drawn only by its channel's source-side thread),
// so these runs shard by region and stay bit-identical across DCP_SHARDS.

struct WanFlowParams {
  SchemeKind scheme = SchemeKind::kFec;
  SchemeOptions opt;
  WanParams wan;
  std::uint64_t flow_bytes = 25ull * 1000 * 1000;
  Time max_time = seconds(10);
  std::uint64_t seed = 1;
  /// Derive base_rtt / RTO / NACK timers from the WAN round trip instead
  /// of the datacenter defaults (a 320 us RTO under a 50 ms RTT would
  /// retransmit the whole flow many times over before the first ACK).
  bool auto_scale_timers = true;
  bool oracle = false;
};

struct WanFlowResult {
  double goodput_gbps = 0.0;
  bool completed = false;
  Time elapsed = 0;
  SenderStats sender;
  ReceiverStats receiver;
  std::uint64_t wire_dropped = 0;  // random WAN-loss drops across the mesh
  CorePerf core;
  std::vector<InvariantViolation> violations;  // only when params.oracle
};

WanFlowResult run_wan_flow(const WanFlowParams& p);

// ---------------------------------------------------------------------------
// Collectives (Figs. 12, 14)
// ---------------------------------------------------------------------------

enum class CollectiveKind { kAllReduce, kAllToAll };

struct CollectiveExpParams {
  SchemeKind scheme = SchemeKind::kDcp;
  SchemeOptions opt;
  CollectiveKind kind = CollectiveKind::kAllReduce;
  int groups = 4;
  int members_per_group = 4;
  std::uint64_t total_bytes = 16ull * 1024 * 1024;  // per collective op
  bool use_clos = true;      // false: the 2-switch testbed (Fig. 12)
  ClosParams clos;
  Time max_time = seconds(5);
};

struct CollectiveResult {
  std::vector<double> jct_ms;        // one per group
  std::vector<double> flow_fct_ms;   // all individual flows (CDF source)
  double ideal_jct_ms = 0.0;
  bool all_done = false;
  CorePerf core;
};

CollectiveResult run_collectives(const CollectiveExpParams& p);

}  // namespace dcp
