#pragma once
// Text-file experiment configuration: a small `key = value` format (with
// `#` comments) that maps onto the harness runners, so experiments can be
// scripted without recompiling.  Used by `examples/run_config`.
//
//   experiment = websearch        # websearch | longflow | collective | unequal_paths
//                                 # | fault_drill | wanflow
//   scheme     = dcp              # dcp irn irn-ecmp pfc mprdma cx5 timeout racktlp tcp fec
//   with_cc    = true
//   cc         = timely           # dcqcn | timely
//   load       = 0.5
//   flows      = 800
//   spines     = 4
//   leaves     = 4
//   hosts_per_leaf = 4
//   incast     = true
//   incast_fan_in = 12
//   ...
//
// An optional `[faults]` section switches to one-action-per-line fault
// syntax (see fault_plan.h); the resulting FaultPlan applies to the
// websearch, longflow and fault_drill experiments:
//
//   [faults]
//   link_flap at=2ms dur=500us sw=0 port=1
//   drop at=5ms dur=1ms rate=0.01
//
// An optional `[scheme]` section carries scheme-specific knobs (today: the
// FEC tier's group geometry and stream window); scheme_config_text()
// serializes it back, and parsing that text reproduces the same values —
// the same round-trip contract FaultPlan::to_config_text() provides:
//
//   [scheme]
//   kind = fec
//   fec_k = 8
//   fec_m = 2
//   fec_stream_window_bytes = 0    # 0 = 2 x BDP
//   fec_nack_delay_us = 0          # 0 = max(rto_low, base_rtt / 2)
//
// The `wanflow` experiment drives the WAN topology (topo/wan.h):
//
//   experiment = wanflow
//   regions = 3
//   hosts_per_region = 4
//   wan_delay_ms = 25
//   wan_loss_rate = 0.05

#include <optional>
#include <string>

#include "harness/experiment.h"

namespace dcp {

struct ExperimentConfig {
  enum class Kind { kWebSearch, kLongFlow, kCollective, kUnequalPaths, kFaultDrill, kWanFlow };
  Kind kind = Kind::kWebSearch;

  WebSearchParams websearch;
  LongFlowParams longflow;
  CollectiveExpParams collective;
  FaultDrillParams faultdrill;
  WanFlowParams wanflow;
  double unequal_ratio = 4.0;
  FaultPlan faults;  // parsed [faults] section; copied into the params above
};

/// Serializes the scheme + its `[scheme]`-section knobs back to config
/// text; parse_experiment_config() round-trips it exactly.
std::string scheme_config_text(SchemeKind kind, const SchemeOptions& opt);

/// Parses config text.  On failure returns nullopt and, if `error` is
/// non-null, a message naming the offending line/key.
std::optional<ExperimentConfig> parse_experiment_config(const std::string& text,
                                                        std::string* error = nullptr);

/// Reads and parses a config file.
std::optional<ExperimentConfig> load_experiment_config(const std::string& path,
                                                       std::string* error = nullptr);

/// Runs the configured experiment and returns a printable report.
std::string run_configured_experiment(const ExperimentConfig& cfg);

}  // namespace dcp
