#include "harness/checkpoint.h"

#include <algorithm>
#include <cstring>

#include "topo/fattree.h"

namespace dcp {

namespace {

// Feeds a trivially-copyable record into the digest as 64-bit lanes
// (tail bytes zero-padded).  All digested structs are u64/i64/double
// aggregates, so there is no padding to leak.
template <typename T>
void hash_pod(Fnv64& h, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  std::size_t i = 0;
  for (; i + 8 <= sizeof v; i += 8) {
    std::uint64_t lane;
    std::memcpy(&lane, p + i, 8);
    h.u64(lane);
  }
  if (i < sizeof v) {
    std::uint64_t lane = 0;
    std::memcpy(&lane, p + i, sizeof v - i);
    h.u64(lane);
  }
}

int resolve_shards(const WorldSpec& spec) {
  if (spec.force_shards > 0) return spec.force_shards;
  // run_fuzz policy: fault-free scenarios honour DCP_SHARDS (bit-identical
  // to serial by construction); fault plans run serial — the injector has
  // no shard ordering story.  The clamp is the partition-unit count: leaf
  // groups on CLOS, pods on a fat-tree.
  int nshards = 1;
  if (!spec.scenario.faults.has_effect()) {
    if (const char* e = std::getenv("DCP_SHARDS")) {
      const int units = spec.scenario.fattree_k > 0 ? spec.scenario.fattree_k
                                                    : spec.scenario.leaves;
      nshards = std::max(1, std::min(std::atoi(e), units));
    }
  }
  return nshards;
}

}  // namespace

std::uint64_t WorldSpec::fingerprint() const {
  Fnv64 h;
  const FuzzScenario& s = scenario;
  h.u64(s.seed);
  h.u64(static_cast<std::uint64_t>(s.scheme));
  h.u64(static_cast<std::uint64_t>(s.spines));
  h.u64(static_cast<std::uint64_t>(s.leaves));
  h.u64(static_cast<std::uint64_t>(s.hosts_per_leaf));
  // Appended past the CLOS fields: 0 for every pre-fat-tree spec, so CLOS
  // fingerprints shift uniformly and never collide with fat-tree ones.
  h.u64(static_cast<std::uint64_t>(s.fattree_k));
  h.i64(s.max_time);
  h.u64(s.flows.size());
  for (const FuzzFlow& f : s.flows) {
    h.u64(static_cast<std::uint64_t>(f.src));
    h.u64(static_cast<std::uint64_t>(f.dst));
    h.u64(f.bytes);
    h.u64(f.msg_bytes);
    h.i64(f.start);
  }
  h.u64(s.faults.actions.size());
  for (const FaultAction& a : s.faults.actions) {
    h.u64(static_cast<std::uint64_t>(a.kind));
    h.i64(a.at);
    h.i64(a.duration);
    h.u64(a.sw);
    h.u64(a.port);
    h.f64(a.rate);
    h.f64(a.frac);
    h.u64(a.drop_in_flight ? 1 : 0);
  }
  h.u64(injector_seed);
  h.u64(factory_override != nullptr ? 1 : 0);
  h.u64(oracle ? 1 : 0);
  return h.value();
}

SimWorld::SimWorld(const WorldSpec& spec) : spec_(spec) {
  // Mirrors run_fuzz_scenario's construction order exactly; any deviation
  // breaks the rebuild's bit-identity with the run the image was saved
  // from.
  shards_ = std::make_unique<ShardGroup>(resolve_shards(spec_));
  log_ = std::make_unique<Logger>(LogLevel::kError);
  net_ = std::make_unique<Network>(*shards_, *log_);

  const FuzzScenario& s = spec_.scenario;
  SchemeSetup setup = make_scheme(s.scheme);
  if (s.fattree_k > 0) {
    FatTreeParams ft;
    ft.k = s.fattree_k;
    ft.sw = setup.sw;
    hosts_ = build_fattree(*net_, ft).hosts;
  } else {
    ClosParams clos;
    clos.spines = s.spines;
    clos.leaves = s.leaves;
    clos.hosts_per_leaf = s.hosts_per_leaf;
    clos.sw = setup.sw;
    hosts_ = build_clos(*net_, clos).hosts;
  }
  apply_scheme(*net_, setup);
  if (spec_.factory_override) net_->set_factory(spec_.factory_override);

  for (const FuzzFlow& f : s.flows) {
    FlowSpec fs;
    fs.src = hosts_.at(static_cast<std::size_t>(f.src))->id();
    fs.dst = hosts_.at(static_cast<std::size_t>(f.dst))->id();
    fs.bytes = f.bytes;
    fs.msg_bytes = f.msg_bytes;
    fs.start_time = f.start;
    net_->start_flow(fs);
  }

  if (spec_.oracle) oracle_ = std::make_unique<InvariantOracle>(*net_);
  // Unconditional: with a no-effect plan the injector arms nothing and
  // draws nothing, so it is event-stream-neutral — but its presence keeps
  // the snapshot stream layout identical across ddmin candidates, letting
  // the empty-plan probe (ddmin removing every action) restore too.
  inj_ = std::make_unique<FaultInjector>(*net_, s.faults, spec_.injector_seed);

  // First sequence after the deterministic setup phase: the boundary of
  // runtime-seq translation for prefix-isomorphic restores.
  setup_seq_end_ = shards_->sim(0).snapshot_next_seq();
}

SimWorld::~SimWorld() = default;

std::uint64_t SimWorld::events_processed() const {
  return shards_->events_processed();
}

void SimWorld::run_to(Time t) {
  at_ = net_->run_to_paused(t, spec_.scenario.max_time);
}

void SimWorld::run_until_done() { net_->run_until_done(spec_.scenario.max_time); }

FuzzVerdict SimWorld::finalize_verdict(std::size_t trace_events) {
  FuzzVerdict v;
  v.all_complete = net_->all_flows_done();
  if (oracle_ == nullptr) return v;
  oracle_->finalize();
  v.violated = !oracle_->ok();
  v.num_violations = oracle_->violations().size();
  if (const InvariantViolation* first = oracle_->first()) {
    v.invariant = first->invariant;
    v.at = first->at;
    v.message = oracle_->summary();
    v.trace = oracle_->trace_slice(trace_events);
  }
  return v;
}

bool SimWorld::save(SnapshotImage& out, std::string* error) {
  auto fail = [&](const std::string& m) {
    if (error != nullptr) *error = m;
    return false;
  };
  if (!snapshot_supported(spec_.scenario.scheme)) {
    return fail(std::string("scheme not snapshottable: ") + scheme_name(spec_.scenario.scheme));
  }
  out = SnapshotImage{};
  out.fingerprint = spec_.fingerprint();
  out.shards = static_cast<std::uint32_t>(shards_->size());
  Simulator& s0 = shards_->sim(0);
  out.lanes = s0.use_lanes() ? 1 : 0;
  out.devirt = s0.use_devirt() ? 1 : 0;
  out.at = at_;
  out.setup_seq_end = setup_seq_end_;
  out.next_seq = s0.snapshot_next_seq();
  out.clocks.resize(static_cast<std::size_t>(shards_->size()));
  for (int i = 0; i < shards_->size(); ++i) {
    const Simulator& s = shards_->sim(i);
    SnapshotClock& c = out.clocks[static_cast<std::size_t>(i)];
    c.now = s.now();
    c.events = s.events_processed();
    c.cur_time = s.current_event_time();
    c.cur_seq = s.current_event_seq();
  }

  StateIO io = StateIO::saver(out.state);
  net_->checkpoint(io);
  if (inj_ != nullptr) inj_->checkpoint(io);
  if (oracle_ != nullptr) oracle_->checkpoint(io);
  if (!io.ok()) return fail("snapshot save: " + io.error());
  return true;
}

bool SimWorld::restore(const SnapshotImage& img, bool allow_spec_delta, std::string* error) {
  auto fail = [&](const std::string& m) {
    if (error != nullptr) *error = m;
    return false;
  };
  if (!snapshot_supported(spec_.scenario.scheme)) {
    return fail(std::string("scheme not snapshottable: ") + scheme_name(spec_.scenario.scheme));
  }
  if (!allow_spec_delta && img.fingerprint != spec_.fingerprint()) {
    return fail("snapshot restore: spec fingerprint mismatch");
  }
  if (static_cast<int>(img.shards) != shards_->size()) {
    return fail("snapshot restore: shard count mismatch");
  }
  Simulator& s0 = shards_->sim(0);
  if ((img.lanes != 0) != s0.use_lanes() || (img.devirt != 0) != s0.use_devirt()) {
    return fail("snapshot restore: lane/devirt mode mismatch");
  }
  if (img.clocks.size() != static_cast<std::size_t>(shards_->size())) {
    return fail("snapshot restore: clock shape mismatch");
  }

  // Runtime sequences shift by the setup-phase length difference between
  // the image's spec and ours (zero when the specs match).
  const std::int64_t delta = static_cast<std::int64_t>(img.setup_seq_end) -
                             static_cast<std::int64_t>(setup_seq_end_);

  // Rebuild-side prep, mirroring what the saved run had already done by
  // its snapshot point: flip shard-run mode on (the saved run's first
  // window did), drop the start events of flows that had already started
  // (their effects are overlaid below), and re-execute the fault timeline
  // so pointer-identity structures (hook registrations, ChannelFault
  // records) exist in creation order before their values are overlaid.
  net_->prepare_shard_run();
  net_->cancel_started_flows(img.at);
  if (inj_ != nullptr) inj_->replay_to(img.at);

  StateIO io = StateIO::loader(img.state);
  io.set_seq_context(img.setup_seq_end, delta);
  net_->checkpoint(io);
  if (inj_ != nullptr) inj_->checkpoint(io);
  if (oracle_ != nullptr) oracle_->checkpoint(io);
  if (!io.ok()) return fail("snapshot restore: " + io.error());
  if (io.bytes_consumed() != img.state.size()) {
    return fail("snapshot restore: trailing state bytes");
  }

  for (int i = 0; i < shards_->size(); ++i) {
    Simulator& s = shards_->sim(i);
    const SnapshotClock& c = img.clocks[static_cast<std::size_t>(i)];
    s.restore_clock(c.now, c.events);
    s.restore_current_event(c.cur_time, io.translate_seq(c.cur_seq));
    s.settle_deadline_top();
  }
  // One shared allocator across the group: restore once, translated.
  s0.restore_next_seq(io.translate_seq(img.next_seq));
  at_ = img.at;
  return true;
}

WorldDigest SimWorld::digest() const {
  Fnv64 h;
  for (const FlowRecord& r : net_->records()) {
    h.i64(r.rx_done);
    h.i64(r.tx_done);
    hash_pod(h, r.sender);
    hash_pod(h, r.receiver);
  }
  hash_pod(h, net_->total_switch_stats());
  const std::uint64_t ev = events_processed();
  h.u64(ev);
  WorldDigest d;
  d.value = h.value();
  d.events = ev;
  return d;
}

WarmBoot::WarmBoot(const WorldSpec& spec, Time t) : spec_(spec) {
  SimWorld w(spec_);
  w.run_to(t);
  ok_ = w.save(img_, &err_);
}

std::unique_ptr<SimWorld> WarmBoot::boot(std::string* error) const {
  auto w = std::make_unique<SimWorld>(spec_);
  if (!w->restore(img_, /*allow_spec_delta=*/false, error)) return nullptr;
  return w;
}

}  // namespace dcp
