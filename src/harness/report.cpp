#include "harness/report.h"

#include <algorithm>
#include <cstdlib>

namespace dcp {

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      std::fprintf(out, "%c %-*s", c == 0 ? '|' : '|', static_cast<int>(width[c]), s.c_str());
    }
    std::fprintf(out, "|\n");
  };
  line(headers_);
  for (std::size_t c = 0; c < width.size(); ++c) {
    std::fprintf(out, "|%s", std::string(width[c] + 1, '-').c_str());
  }
  std::fprintf(out, "|\n");
  for (const auto& row : rows_) line(row);
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::bytes_human(std::uint64_t b) {
  char buf[64];
  if (b >= 1024ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2fGB", static_cast<double>(b) / (1024.0 * 1024 * 1024));
  } else if (b >= 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2fMB", static_cast<double>(b) / (1024.0 * 1024));
  } else if (b >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.2fKB", static_cast<double>(b) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB", static_cast<unsigned long long>(b));
  }
  return buf;
}

void banner(const std::string& title, std::FILE* out) {
  std::fprintf(out, "\n== %s ==\n", title.c_str());
}

bool full_scale() {
  const char* v = std::getenv("DCP_FULL_SCALE");
  return v != nullptr && v[0] == '1';
}

}  // namespace dcp
