#include "harness/experiment.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <unordered_map>

namespace dcp {

namespace {

// Shard count for a run: DCP_SHARDS (default 1 — the serial escape hatch),
// clamped to the topology's natural partition count.  Fault plans force
// serial: the injector mutates switches/channels from timer events with no
// shard-ordering story, and fault runs are not on the hot benchmark path.
int resolve_shards(int topo_max, bool has_faults) {
  if (has_faults) return 1;
  // Re-read per run (not cached): the digest tests flip the variable
  // between calls inside one process.
  const char* s = std::getenv("DCP_SHARDS");
  const int v = s != nullptr ? std::atoi(s) : 1;
  return std::min(v < 1 ? 1 : v, topo_max);
}

// Attaches a FaultInjector + RecoveryStats pair to a run when the plan has
// any effect.  Plans whose actions are all no-ops attach nothing, keeping
// the event sequence bit-identical to a fault-free run.
struct FaultHarness {
  std::unique_ptr<FaultInjector> injector;
  std::unique_ptr<RecoveryStats> recovery;
  std::unordered_map<std::size_t, std::size_t> episode_of_action;

  void attach(Network& net, const FaultPlan& plan, std::uint64_t fault_seed,
              Time sample_interval = microseconds(20)) {
    if (!plan.has_effect()) return;
    injector = std::make_unique<FaultInjector>(net, plan, fault_seed);
    recovery = std::make_unique<RecoveryStats>(net, sample_interval);
    injector->on_fault_start = [this](std::size_t i, const FaultAction& a, Time t) {
      episode_of_action[i] = recovery->begin_episode(fault_kind_name(a.kind), t);
    };
    injector->on_fault_end = [this](std::size_t i, const FaultAction&, Time t) {
      auto it = episode_of_action.find(i);
      if (it != episode_of_action.end()) recovery->end_episode(it->second, t);
    };
  }

  // Finalizes the collector and copies episodes + wire counters out.
  void finish(std::vector<RecoveryStats::Episode>& episodes, FaultInjector::Counters& wire) {
    if (!injector) return;
    recovery->finalize();
    episodes = recovery->episodes();
    wire = injector->counters();
  }
};

}  // namespace

LongFlowResult run_long_flow(const LongFlowParams& p) {
  ShardGroup shards(resolve_shards(/*topo_max=*/2, p.faults.has_effect()));
  Simulator& sim = shards.sim(0);
  Logger log(LogLevel::kError);
  Network net(shards, log);

  SchemeSetup setup = make_scheme(p.scheme, p.opt);
  TestbedParams tb;
  tb.sw = setup.sw;
  tb.cross_link_delay = p.cross_link_delay;
  TestbedTopology topo = build_testbed(net, tb);
  // Loss is injected at switch 1 only (the paper manipulates one switch).
  topo.sw1->config().inject_loss_rate = p.loss_rate;
  apply_scheme(net, setup);

  FlowSpec spec;
  spec.src = topo.hosts[0]->id();
  spec.dst = topo.hosts[tb.hosts_per_switch]->id();  // cross-switch
  spec.bytes = p.flow_bytes;
  spec.start_time = 0;
  spec.msg_bytes = p.opt.msg_bytes;
  const FlowId id = net.start_flow(spec);

  FaultHarness faults;
  faults.attach(net, p.faults, /*fault_seed=*/p.seed ^ 0xfa017);

  CorePerfTimer timer(shards);
  net.run_until_done(p.max_time);

  LongFlowResult r;
  r.core = timer.finish();
  faults.finish(r.fault_episodes, r.wire);
  const FlowRecord& rec = net.record(id);
  r.completed = rec.complete();
  r.elapsed = r.completed ? rec.fct() : sim.now();
  // Live stats if the flow did not finish inside the budget.
  Host* dst = net.host(spec.dst);
  Host* src = net.host(spec.src);
  r.receiver = rec.complete() ? rec.receiver : dst->receiver(id)->stats();
  r.sender = rec.complete() ? rec.sender : src->sender(id)->stats();
  if (r.elapsed > 0) {
    r.goodput_gbps = static_cast<double>(r.receiver.bytes_received) * 8.0 /
                     (static_cast<double>(r.elapsed) / kSecond) / 1e9;
  }
  r.sw = net.total_switch_stats();
  return r;
}

UnequalPathsResult run_unequal_paths(SchemeKind scheme, double ratio, std::uint64_t flow_bytes,
                                     const SchemeOptions& opt, std::uint16_t sport_base) {
  Simulator sim;
  Logger log(LogLevel::kError);
  Network net(sim, log);
  net.set_sport_base(sport_base);

  SchemeSetup setup = make_scheme(scheme, opt);
  TestbedParams tb;
  tb.sw = setup.sw;
  // Two cross links with capacities 1 : 1/ratio (the paper modifies port
  // capacities to 1:1, 1:4, 1:10).
  tb.cross_links = {Bandwidth::gbps(100), Bandwidth::gbps(100.0 / ratio)};
  TestbedTopology topo = build_testbed(net, tb);
  apply_scheme(net, setup);

  // Two senders on switch 1, two receivers on switch 2.
  std::vector<FlowId> ids;
  for (int i = 0; i < 2; ++i) {
    FlowSpec spec;
    spec.src = topo.hosts[static_cast<std::size_t>(i)]->id();
    spec.dst = topo.hosts[static_cast<std::size_t>(tb.hosts_per_switch + i)]->id();
    spec.bytes = flow_bytes;
    spec.start_time = 0;
    spec.msg_bytes = opt.msg_bytes;
    ids.push_back(net.start_flow(spec));
  }
  CorePerfTimer timer(sim);
  net.run_until_done(milliseconds(500));

  UnequalPathsResult r;
  r.core = timer.finish();
  for (int i = 0; i < 2; ++i) {
    const FlowRecord& rec = net.record(ids[static_cast<std::size_t>(i)]);
    double g = 0.0;
    if (rec.complete()) {
      g = static_cast<double>(rec.spec.bytes) * 8.0 /
          (static_cast<double>(rec.fct()) / kSecond) / 1e9;
    } else {
      Host* dst = net.host(rec.spec.dst);
      const auto& st = dst->receiver(rec.spec.id)->stats();
      g = static_cast<double>(st.bytes_received) * 8.0 /
          (static_cast<double>(sim.now()) / kSecond) / 1e9;
    }
    r.flow_goodputs[i] = g;
  }
  r.avg_goodput_gbps = (r.flow_goodputs[0] + r.flow_goodputs[1]) / 2.0;
  return r;
}

FaultDrillResult run_fault_drill(const FaultDrillParams& p) {
  Simulator sim;
  Logger log(LogLevel::kError);
  Network net(sim, log);

  SchemeSetup setup = make_scheme(p.scheme, p.opt);
  ClosParams clos = p.clos;
  clos.sw = setup.sw;
  if (setup.sw.pfc.enabled) clos.sw.pfc.enabled = true;
  ClosTopology topo = build_clos(net, clos);
  apply_scheme(net, setup);

  // One long cross-rack flow: first host of the first leaf to the first
  // host of the last leaf, so every leaf-spine link is a candidate path.
  FlowSpec spec;
  spec.src = topo.hosts.front()->id();
  spec.dst = topo.hosts[static_cast<std::size_t>(clos.num_hosts() - clos.hosts_per_leaf)]->id();
  spec.bytes = p.flow_bytes;
  spec.start_time = 0;
  spec.msg_bytes = p.msg_bytes;
  const FlowId id = net.start_flow(spec);

  std::unique_ptr<InvariantOracle> oracle;
  if (p.oracle) oracle = std::make_unique<InvariantOracle>(net);

  FaultHarness faults;
  faults.attach(net, p.faults, p.fault_seed ^ p.seed, p.sample_interval);

  CorePerfTimer timer(sim);
  net.run_until_done(p.max_time);

  FaultDrillResult r;
  r.core = timer.finish();
  if (oracle) {
    oracle->finalize();
    r.violations = oracle->violations();
  }
  faults.finish(r.fault_episodes, r.wire);
  const FlowRecord& rec = net.record(id);
  r.completed = rec.complete();
  r.elapsed = r.completed ? rec.fct() : sim.now();
  Host* dst = net.host(spec.dst);
  Host* src = net.host(spec.src);
  r.receiver = rec.complete() ? rec.receiver : dst->receiver(id)->stats();
  r.sender = rec.complete() ? rec.sender : src->sender(id)->stats();
  if (r.elapsed > 0) {
    r.goodput_gbps = static_cast<double>(r.receiver.bytes_received) * 8.0 /
                     (static_cast<double>(r.elapsed) / kSecond) / 1e9;
  }
  r.sw = net.total_switch_stats();
  return r;
}

WanFlowResult run_wan_flow(const WanFlowParams& p) {
  ShardGroup shards(resolve_shards(p.wan.regions, /*has_faults=*/false));
  Simulator& sim = shards.sim(0);
  Logger log(LogLevel::kError);
  Network net(shards, log);

  SchemeOptions opt = p.opt;
  WanParams wan = p.wan;
  wan.wan_seed = p.seed;
  if (p.auto_scale_timers) {
    const Time rtt = 2 * (2 * wan.host_link_delay + wan.wan_delay);
    opt.base_rtt = rtt;
    opt.rto_high = 2 * rtt + microseconds(320);
    opt.rto_low = rtt / 2 + microseconds(100);
    opt.dcp_msg_timeout = 2 * rtt + milliseconds(1);
    opt.line_rate = wan.wan_link;
  }
  SchemeSetup setup = make_scheme(p.scheme, opt);
  wan.sw = setup.sw;
  // The long pipe must fit in the region switch: size buffers to the BDP
  // (a 25 ms 100G span is ~312 MB of in-flight data per direction).
  const std::uint64_t bdp = bdp_bytes(wan.wan_link, 2 * wan.wan_delay);
  wan.sw.buffer_bytes = std::max(wan.sw.buffer_bytes, 2 * bdp);
  wan.sw.max_data_queue_bytes = std::max(wan.sw.max_data_queue_bytes, 2 * bdp);
  WanTopology topo = build_wan(net, wan);
  apply_scheme(net, setup);

  FlowSpec spec;
  spec.src = topo.hosts[0]->id();
  spec.dst = topo.hosts[static_cast<std::size_t>(wan.hosts_per_region)]->id();  // region 1
  spec.bytes = p.flow_bytes;
  spec.start_time = 0;
  spec.msg_bytes = opt.msg_bytes;
  const FlowId id = net.start_flow(spec);

  std::unique_ptr<InvariantOracle> oracle;
  if (p.oracle) oracle = std::make_unique<InvariantOracle>(net);

  CorePerfTimer timer(shards);
  net.run_until_done(p.max_time);

  WanFlowResult r;
  r.core = timer.finish();
  if (oracle) {
    oracle->finalize();
    r.violations = oracle->violations();
  }
  const FlowRecord& rec = net.record(id);
  r.completed = rec.complete();
  r.elapsed = r.completed ? rec.fct() : sim.now();
  Host* dst = net.host(spec.dst);
  Host* src = net.host(spec.src);
  r.receiver = rec.complete() ? rec.receiver : dst->receiver(id)->stats();
  r.sender = rec.complete() ? rec.sender : src->sender(id)->stats();
  if (r.elapsed > 0) {
    r.goodput_gbps = static_cast<double>(r.receiver.bytes_received) * 8.0 /
                     (static_cast<double>(r.elapsed) / kSecond) / 1e9;
  }
  r.wire_dropped = topo.wire_dropped();
  return r;
}

WebSearchResult run_websearch(const WebSearchParams& p) {
  ShardGroup shards(resolve_shards(p.clos.leaves, p.faults.has_effect()));
  Logger log(LogLevel::kError);
  Network net(shards, log);

  SchemeSetup setup = make_scheme(p.scheme, p.opt);
  ClosParams clos = p.clos;
  clos.sw = setup.sw;
  if (setup.sw.pfc.enabled) clos.sw.pfc.enabled = true;
  ClosTopology topo = build_clos(net, clos);
  apply_scheme(net, setup);

  FlowGenParams fg;
  fg.load = p.load;
  fg.host_rate = clos.link;
  fg.num_flows = p.num_flows;
  fg.seed = p.seed;
  fg.msg_bytes = p.opt.msg_bytes;
  generate_poisson_flows(
      net, topo.hosts,
      p.dist == WorkloadDist::kDataMining ? SizeDist::datamining() : SizeDist::websearch(), fg);

  if (p.with_incast) {
    IncastParams ip = p.incast;
    ip.host_rate = clos.link;
    ip.msg_bytes = p.opt.msg_bytes;
    generate_incast(net, topo.hosts, ip);
  }

  FaultHarness faults;
  faults.attach(net, p.faults, /*fault_seed=*/p.seed ^ 0xfa017);

  CorePerfTimer timer(shards);
  net.run_until_done(p.max_time);

  WebSearchResult r;
  r.core = timer.finish();
  faults.finish(r.fault_episodes, r.wire);
  for (const FlowRecord& rec : net.records()) {
    r.flows_total++;
    if (!rec.complete()) continue;
    r.flows_completed++;
    const Time ideal = net.ideal_fct(rec.spec.src, rec.spec.dst, rec.spec.bytes);
    if (rec.spec.background) {
      r.background.add(rec, ideal);
      r.timeouts_background += rec.sender.timeouts;
      r.timeouts_per_flow_bg.push_back(rec.sender.timeouts);
    } else {
      r.incast_flows.add(rec, ideal);
      r.timeouts_incast += rec.sender.timeouts;
      r.timeouts_per_flow_incast.push_back(rec.sender.timeouts);
    }
    if (rec.sender.data_packets_sent > 0) {
      r.retrans.push_back(RetransSample{
          rec.spec.bytes,
          static_cast<double>(rec.sender.retransmitted_packets) /
              static_cast<double>(rec.sender.data_packets_sent),
          rec.spec.background});
    }
  }
  r.sw = net.total_switch_stats();
  const std::uint64_t ho_total = r.sw.ho_seen + r.sw.dropped_ho;
  r.ho_loss_ratio =
      ho_total == 0 ? 0.0 : static_cast<double>(r.sw.dropped_ho) / static_cast<double>(ho_total);
  return r;
}

CollectiveResult run_collectives(const CollectiveExpParams& p) {
  Simulator sim;
  Logger log(LogLevel::kError);
  Network net(sim, log);

  SchemeSetup setup = make_scheme(p.scheme, p.opt);
  std::vector<Host*> hosts;
  Bandwidth rate = Bandwidth::gbps(100);
  if (p.use_clos) {
    ClosParams clos = p.clos;
    clos.sw = setup.sw;
    if (setup.sw.pfc.enabled) clos.sw.pfc.enabled = true;
    ClosTopology topo = build_clos(net, clos);
    hosts = topo.hosts;
    rate = clos.link;
  } else {
    TestbedParams tb;
    tb.sw = setup.sw;
    TestbedTopology topo = build_testbed(net, tb);
    hosts = topo.hosts;
    rate = tb.host_link;
  }
  apply_scheme(net, setup);

  const int total_members = p.groups * p.members_per_group;
  (void)total_members;
  std::vector<std::unique_ptr<Collective>> collectives;
  CollectiveParams cp_template;
  cp_template.total_bytes = p.total_bytes;
  cp_template.msg_bytes = p.opt.msg_bytes;

  for (int g = 0; g < p.groups; ++g) {
    CollectiveParams cp = cp_template;
    cp.group_tag = g;
    for (int m = 0; m < p.members_per_group; ++m) {
      // Spread members across the topology: member m of group g is host
      // m * groups + g, interleaving groups across racks like a real job
      // placement would.
      const std::size_t idx =
          (static_cast<std::size_t>(m) * static_cast<std::size_t>(p.groups) +
           static_cast<std::size_t>(g)) %
          hosts.size();
      cp.members.push_back(hosts[idx]->id());
    }
    if (p.kind == CollectiveKind::kAllReduce) {
      collectives.push_back(std::make_unique<RingAllReduce>(net, cp));
    } else {
      collectives.push_back(std::make_unique<AllToAll>(net, cp));
    }
  }

  // Collectives create flows dynamically; run until every group reports
  // completion or the budget expires.
  CorePerfTimer timer(sim);
  while (sim.now() < p.max_time) {
    bool all = true;
    for (const auto& c : collectives) all = all && c->done();
    if (all) break;
    sim.run(std::min(p.max_time, sim.now() + milliseconds(1)));
    if (sim.idle()) break;
  }

  CollectiveResult r;
  r.core = timer.finish();
  r.all_done = true;
  for (const auto& c : collectives) {
    r.all_done = r.all_done && c->done();
    r.jct_ms.push_back(to_ms(c->jct()));
  }
  for (const FlowRecord& rec : net.records()) {
    if (rec.complete()) r.flow_fct_ms.push_back(to_ms(rec.fct()));
  }
  CollectiveParams ideal_cp = cp_template;
  ideal_cp.members.resize(static_cast<std::size_t>(p.members_per_group));
  r.ideal_jct_ms = to_ms(p.kind == CollectiveKind::kAllReduce
                             ? RingAllReduce::ideal_jct(ideal_cp, rate)
                             : AllToAll::ideal_jct(ideal_cp, rate));
  return r;
}

}  // namespace dcp
