#pragma once
// Plain-text table/series printing so every bench binary emits the same
// rows the paper's tables and figures report.

#include <cstdio>
#include <string>
#include <vector>

namespace dcp {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }
  void print(std::FILE* out = stdout) const;

  static std::string num(double v, int precision = 2);
  static std::string bytes_human(std::uint64_t b);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints "== <title> ==" banners so bench output is self-describing.
void banner(const std::string& title, std::FILE* out = stdout);

/// True when DCP_FULL_SCALE=1: benches run at paper scale instead of the
/// fast default.
bool full_scale();

}  // namespace dcp
