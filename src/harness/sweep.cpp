#include "harness/sweep.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace dcp {

namespace {

/// Progress goes through one mutex so concurrent workers never tear the
/// stderr line ("\r" keeps it to a single line on a terminal; piped logs
/// see the same text, just with carriage returns).
void print_progress(std::size_t k, std::size_t n) {
  static std::mutex io;
  std::lock_guard<std::mutex> lk(io);
  std::fprintf(stderr, "\r[%zu/%zu] trials done%s", k, n, k == n ? "\n" : "");
  std::fflush(stderr);
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

unsigned sweep_jobs() {
  if (const char* v = std::getenv("DCP_JOBS")) {
    char* end = nullptr;
    const long n = std::strtol(v, &end, 10);
    if (end != v && *end == '\0') return n < 1 ? 1u : static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

SweepRunner::SweepRunner(unsigned jobs) : jobs_(jobs < 1 ? 1 : jobs) {
  // jobs_ == 1 is the serial path: no pool at all, trials run inline on
  // the caller.  Otherwise spawn jobs_ - 1 workers; the caller is worker 0.
  worker_stats_.resize(jobs_);
  threads_.reserve(jobs_ - 1);
  for (unsigned w = 1; w < jobs_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

SweepRunner::~SweepRunner() {
  {
    std::lock_guard<std::mutex> lk(m_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void SweepRunner::worker_loop(unsigned worker) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_work_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    work(worker);
  }
}

void SweepRunner::work(unsigned worker) {
  WorkerStats ws;
  ws.worker = worker;
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) break;
    const auto t0 = std::chrono::steady_clock::now();
    (*job_)(i);
    ws.busy_seconds += seconds_since(t0);
    ++ws.trials;
    const std::size_t k = done_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (progress_) print_progress(k, n_);
  }
  // Pool stats are thread-local, so only this worker can snapshot its own.
  ws.pool = PacketPool::local().stats();
  {
    std::lock_guard<std::mutex> lk(m_);
    worker_stats_[worker] = ws;
    if (++workers_idle_ == jobs_) cv_done_.notify_all();
  }
}

void SweepRunner::run_indexed(std::size_t n, const std::function<void(std::size_t)>& job) {
  const auto t0 = std::chrono::steady_clock::now();
  if (n == 0) {
    last_wall_seconds_ = 0.0;
    return;
  }

  if (jobs_ == 1) {
    // Serial path: identical to the loops the bench binaries used to run.
    WorkerStats ws;
    for (std::size_t i = 0; i < n; ++i) {
      const auto s0 = std::chrono::steady_clock::now();
      job(i);
      ws.busy_seconds += seconds_since(s0);
      ++ws.trials;
      if (progress_) print_progress(i + 1, n);
    }
    ws.pool = PacketPool::local().stats();
    worker_stats_[0] = ws;
    last_wall_seconds_ = seconds_since(t0);
    return;
  }

  {
    std::lock_guard<std::mutex> lk(m_);
    job_ = &job;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    workers_idle_ = 0;
    for (WorkerStats& ws : worker_stats_) ws = WorkerStats{};
    ++generation_;
  }
  cv_work_.notify_all();
  work(0);  // the caller pulls trials too
  {
    std::unique_lock<std::mutex> lk(m_);
    cv_done_.wait(lk, [&] { return workers_idle_ == jobs_; });
    job_ = nullptr;
  }
  last_wall_seconds_ = seconds_since(t0);
}

void report_sweep(const SweepRunner& pool, const CorePerfAggregator& agg) {
  const CorePerf total = agg.total();
  const double wall = pool.last_wall_seconds();
  std::fprintf(stderr,
               "[sweep] %llu trials, %u jobs, %.2fs wall, %llu events "
               "(%.3gM ev/s aggregate, %.3gM ev/s effective)\n",
               static_cast<unsigned long long>(agg.trials()), pool.jobs(), wall,
               static_cast<unsigned long long>(total.events_processed),
               total.events_per_sec() / 1e6,
               wall > 0.0 ? static_cast<double>(total.events_processed) / wall / 1e6 : 0.0);
}

}  // namespace dcp
