#pragma once
// Parallel sweep engine: runs independent simulation trials across a
// fixed-size thread pool and returns results indexed by trial, so a
// parallel sweep is bit-identical to the serial loop it replaces.
//
// Discrete-event replications are embarrassingly parallel: every trial
// builds its own Simulator + Network, PacketPool and the EventCallback
// heap-fallback counter are thread-local, and Logger's emit path is
// mutex-guarded, so trials share no mutable state.  The only ordering a
// sweep imposes is on the *results* vector, which is keyed by trial index
// no matter which worker finishes first.
//
// Worker count comes from DCP_JOBS when set; DCP_JOBS=1 forces the classic
// serial path (no threads are created, every trial runs on the caller).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "net/packet_pool.h"
#include "stats/core_perf.h"

namespace dcp {

/// Worker count for sweeps: DCP_JOBS when set (values < 1 clamp to 1),
/// otherwise std::thread::hardware_concurrency().
unsigned sweep_jobs();

class SweepRunner {
 public:
  /// Per-worker observability: how many trials each pool thread executed,
  /// how long it was busy, and what its thread-local PacketPool looks like
  /// afterwards — per-thread allocation behaviour is invisible in a plain
  /// results vector, so the runner surfaces it here.
  struct WorkerStats {
    unsigned worker = 0;        // 0 = the calling thread
    std::uint64_t trials = 0;
    double busy_seconds = 0.0;  // wall time spent inside trial bodies
    PacketPool::Stats pool;     // the worker's thread-local PacketPool
  };

  explicit SweepRunner(unsigned jobs = sweep_jobs());
  ~SweepRunner();

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  unsigned jobs() const { return jobs_; }

  /// The "[k/n] trials done" stderr line; on by default.
  void set_progress(bool on) { progress_ = on; }

  /// Runs fn(0) .. fn(n-1) across the pool and returns the results in
  /// trial order.  The calling thread participates as worker 0, so
  /// jobs=1 degenerates to a plain serial loop.  Trials must not throw.
  template <typename Fn, typename R = std::invoke_result_t<Fn&, std::size_t>>
  std::vector<R> run(std::size_t n, Fn fn) {
    static_assert(!std::is_void_v<R>, "a trial must return its measurements");
    std::vector<R> out(n);
    run_indexed(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Type-erased core: executes job(i) for every i in [0, n), each exactly
  /// once, and returns once all have finished.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& job);

  /// Wall-clock seconds of the most recent run_indexed().
  double last_wall_seconds() const { return last_wall_seconds_; }

  /// Worker stats of the most recent run_indexed(), indexed by worker
  /// (worker 0 is the calling thread).
  const std::vector<WorkerStats>& worker_stats() const { return worker_stats_; }

 private:
  void worker_loop(unsigned worker);
  void work(unsigned worker);  // pull trial indices until the sweep drains

  const unsigned jobs_;
  bool progress_ = true;
  double last_wall_seconds_ = 0.0;

  // Sweep state, published under m_ and consumed by the pool.  Workers
  // claim trial indices from next_ lock-free; generation_ tells a waking
  // worker that a new sweep started.
  std::mutex m_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  std::size_t n_ = 0;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> done_{0};
  unsigned workers_idle_ = 0;
  bool shutdown_ = false;
  std::vector<WorkerStats> worker_stats_;
  std::vector<std::thread> threads_;
};

/// One-line sweep summary on stderr: trials, jobs, sweep wall clock, and
/// the aggregate simulator-substrate throughput across all workers.
void report_sweep(const SweepRunner& pool, const CorePerfAggregator& agg);

}  // namespace dcp
