#pragma once
// Scheme registry: maps each evaluated transport scheme to its transport
// factory, switch configuration (PFC / trimming / ECN / load balancing)
// and end-host congestion-control configuration, exactly as §6 deploys
// them:
//
//   PFC      : RNIC-GBN  + PFC switches            + ECMP
//   IRN      : IRN       + lossy switches          + AR (default) or ECMP
//   MP-RDMA  : MP-RDMA   + PFC switches + ECN      + source-routed paths
//   DCP      : DCP-RNIC  + trimming switches       + AR
//   CX5      : RNIC-GBN  + lossy switches          + ECMP (testbed baseline)
//   Timeout  : timeout-only + lossy                + ECMP
//   RACK-TLP : RACK-TLP  + lossy                   + ECMP
//   TCP      : TcpLite   + lossy                   + ECMP
//   FEC      : erasure-coded streaming + lossy     + ECMP (WAN tier)

#include <memory>
#include <string>

#include "host/transport.h"
#include "switch/switch.h"
#include "topo/network.h"

namespace dcp {

enum class SchemeKind {
  kPfc,
  kIrn,
  kIrnEcmp,
  kMpRdma,
  kDcp,
  kCx5,
  kTimeout,
  kRackTlp,
  kTcp,
  kFec,
};

const char* scheme_name(SchemeKind k);

struct SchemeOptions {
  bool with_cc = false;               // integrate congestion control (§6.3)
  // Which CC to integrate when with_cc: DCQCN (the paper's choice) or
  // TIMELY (delay-based; exercises DCP's any-CC compatibility claim).
  CcConfig::Type cc_type = CcConfig::Type::kDcqcn;
  Bandwidth line_rate = Bandwidth::gbps(100);
  Time base_rtt = microseconds(8);    // for BDP window sizing
  std::uint64_t buffer_bytes = 32ull * 1024 * 1024;
  double control_weight = 4.0;        // DCP WRR weight
  Time rto_high = microseconds(320);
  Time rto_low = microseconds(100);
  Time dcp_msg_timeout = milliseconds(1);  // scale with RTT in cross-DC runs
  // Message granularity for DCP's per-message tracking.  14-bit counters
  // support up to 16 MB per message at 1 KB MTU (§4.5); general RPC-style
  // flows post large messages, collectives use their own chunk size.
  std::uint64_t msg_bytes = 4 * 1024 * 1024;
  // FEC geometry and stream window (transports/fec.h).  A zero stream
  // window defaults to 2 BDP so the sender keeps the long pipe full while
  // group ACKs are still in flight; a zero NACK delay defaults to
  // max(rto_low, base_rtt / 2) — long enough to ride out reordering,
  // short enough to beat the RTO backstop.
  std::uint32_t fec_k = 8;
  std::uint32_t fec_m = 2;
  std::uint64_t fec_stream_window_bytes = 0;
  Time fec_nack_delay = 0;
};

struct SchemeSetup {
  SchemeKind kind;
  std::shared_ptr<TransportFactory> factory;
  SwitchConfig sw;       // apply to every switch in the topology
  TransportConfig tcfg;  // apply via Network::set_transport_config
};

std::uint64_t bdp_bytes(Bandwidth rate, Time rtt);

SchemeSetup make_scheme(SchemeKind kind, const SchemeOptions& opt = {});

/// Installs the scheme's factory + transport config into the network (the
/// switch config must be passed to the topology builder beforehand).
void apply_scheme(Network& net, const SchemeSetup& s);

}  // namespace dcp
