#include "harness/config.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness/report.h"

namespace dcp {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

bool parse_bool(const std::string& v, bool& out) {
  const std::string l = lower(v);
  if (l == "true" || l == "yes" || l == "1" || l == "on") {
    out = true;
    return true;
  }
  if (l == "false" || l == "no" || l == "0" || l == "off") {
    out = false;
    return true;
  }
  return false;
}

bool parse_scheme(const std::string& v, SchemeKind& out) {
  const std::string l = lower(v);
  if (l == "dcp") out = SchemeKind::kDcp;
  else if (l == "irn") out = SchemeKind::kIrn;
  else if (l == "irn-ecmp") out = SchemeKind::kIrnEcmp;
  else if (l == "pfc") out = SchemeKind::kPfc;
  else if (l == "mprdma" || l == "mp-rdma") out = SchemeKind::kMpRdma;
  else if (l == "cx5" || l == "gbn") out = SchemeKind::kCx5;
  else if (l == "timeout") out = SchemeKind::kTimeout;
  else if (l == "racktlp" || l == "rack-tlp") out = SchemeKind::kRackTlp;
  else if (l == "tcp") out = SchemeKind::kTcp;
  else if (l == "fec") out = SchemeKind::kFec;
  else return false;
  return true;
}

}  // namespace

std::optional<ExperimentConfig> parse_experiment_config(const std::string& text,
                                                        std::string* error) {
  ExperimentConfig cfg;
  auto fail = [&](int line_no, const std::string& msg) -> std::optional<ExperimentConfig> {
    if (error != nullptr) *error = "line " + std::to_string(line_no) + ": " + msg;
    return std::nullopt;
  };

  SchemeKind scheme = SchemeKind::kDcp;
  SchemeOptions opt;
  bool in_faults = false;
  bool in_scheme = false;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') return fail(line_no, "unterminated section header");
      const std::string section = lower(trim(line.substr(1, line.size() - 2)));
      in_faults = false;
      in_scheme = false;
      if (section == "faults") in_faults = true;
      else if (section == "scheme") in_scheme = true;
      else if (section != "general" && section != "experiment") {
        return fail(line_no, "unknown section '" + section + "'");
      }
      continue;
    }
    if (in_faults) {
      std::string ferr;
      std::optional<FaultAction> a = parse_fault_action(line, &ferr);
      if (!a) return fail(line_no, ferr);
      cfg.faults.actions.push_back(*a);
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return fail(line_no, "expected key = value");
    const std::string key = lower(trim(line.substr(0, eq)));
    const std::string val = trim(line.substr(eq + 1));
    if (val.empty()) return fail(line_no, "empty value for '" + key + "'");

    if (in_scheme) {
      try {
        if (key == "kind" || key == "scheme") {
          if (!parse_scheme(val, scheme)) return fail(line_no, "unknown scheme '" + val + "'");
        } else if (key == "fec_k") {
          opt.fec_k = static_cast<std::uint32_t>(std::stoul(val));
          if (opt.fec_k == 0) return fail(line_no, "fec_k must be >= 1");
        } else if (key == "fec_m") {
          opt.fec_m = static_cast<std::uint32_t>(std::stoul(val));
          if (opt.fec_m == 0) return fail(line_no, "fec_m must be >= 1");
        } else if (key == "fec_stream_window_bytes") {
          opt.fec_stream_window_bytes = std::stoull(val);
        } else if (key == "fec_nack_delay_us") {
          opt.fec_nack_delay = microseconds(std::stod(val));
        } else {
          return fail(line_no, "unknown [scheme] key '" + key + "'");
        }
      } catch (const std::exception&) {
        return fail(line_no, "bad numeric value '" + val + "' for '" + key + "'");
      }
      if (opt.fec_k + opt.fec_m > 256) return fail(line_no, "fec_k + fec_m must be <= 256");
      continue;
    }

    try {
      if (key == "experiment") {
        const std::string l = lower(val);
        if (l == "websearch") cfg.kind = ExperimentConfig::Kind::kWebSearch;
        else if (l == "longflow") cfg.kind = ExperimentConfig::Kind::kLongFlow;
        else if (l == "collective") cfg.kind = ExperimentConfig::Kind::kCollective;
        else if (l == "unequal_paths") cfg.kind = ExperimentConfig::Kind::kUnequalPaths;
        else if (l == "fault_drill" || l == "faultdrill") {
          cfg.kind = ExperimentConfig::Kind::kFaultDrill;
        } else if (l == "wanflow" || l == "wan_flow") {
          cfg.kind = ExperimentConfig::Kind::kWanFlow;
        } else return fail(line_no, "unknown experiment '" + val + "'");
      } else if (key == "scheme") {
        if (!parse_scheme(val, scheme)) return fail(line_no, "unknown scheme '" + val + "'");
      } else if (key == "with_cc") {
        if (!parse_bool(val, opt.with_cc)) return fail(line_no, "bad bool '" + val + "'");
      } else if (key == "cc") {
        const std::string l = lower(val);
        if (l == "dcqcn") opt.cc_type = CcConfig::Type::kDcqcn;
        else if (l == "timely") opt.cc_type = CcConfig::Type::kTimely;
        else return fail(line_no, "unknown cc '" + val + "'");
      } else if (key == "load") {
        cfg.websearch.load = std::stod(val);
      } else if (key == "flows") {
        cfg.websearch.num_flows = std::stoul(val);
      } else if (key == "seed") {
        cfg.websearch.seed = std::stoull(val);
        cfg.longflow.seed = std::stoull(val);
        cfg.faultdrill.seed = std::stoull(val);
        cfg.wanflow.seed = std::stoull(val);
      } else if (key == "dist") {
        const std::string l = lower(val);
        if (l == "websearch") cfg.websearch.dist = WorkloadDist::kWebSearch;
        else if (l == "datamining") cfg.websearch.dist = WorkloadDist::kDataMining;
        else return fail(line_no, "unknown dist '" + val + "'");
      } else if (key == "spines") {
        cfg.websearch.clos.spines = std::stoi(val);
        cfg.collective.clos.spines = std::stoi(val);
        cfg.faultdrill.clos.spines = std::stoi(val);
      } else if (key == "leaves") {
        cfg.websearch.clos.leaves = std::stoi(val);
        cfg.collective.clos.leaves = std::stoi(val);
        cfg.faultdrill.clos.leaves = std::stoi(val);
      } else if (key == "hosts_per_leaf") {
        cfg.websearch.clos.hosts_per_leaf = std::stoi(val);
        cfg.collective.clos.hosts_per_leaf = std::stoi(val);
        cfg.faultdrill.clos.hosts_per_leaf = std::stoi(val);
      } else if (key == "leaf_spine_delay_us") {
        cfg.websearch.clos.leaf_spine_delay = microseconds(std::stod(val));
      } else if (key == "incast") {
        if (!parse_bool(val, cfg.websearch.with_incast)) {
          return fail(line_no, "bad bool '" + val + "'");
        }
      } else if (key == "incast_fan_in") {
        cfg.websearch.incast.fan_in = std::stoi(val);
      } else if (key == "incast_load") {
        cfg.websearch.incast.load = std::stod(val);
      } else if (key == "incast_bytes") {
        cfg.websearch.incast.bytes_per_sender = std::stoull(val);
      } else if (key == "loss_rate") {
        cfg.longflow.loss_rate = std::stod(val);
      } else if (key == "flow_bytes") {
        cfg.longflow.flow_bytes = std::stoull(val);
        cfg.faultdrill.flow_bytes = std::stoull(val);
        cfg.wanflow.flow_bytes = std::stoull(val);
      } else if (key == "regions") {
        cfg.wanflow.wan.regions = std::stoi(val);
      } else if (key == "hosts_per_region") {
        cfg.wanflow.wan.hosts_per_region = std::stoi(val);
      } else if (key == "wan_delay_ms") {
        cfg.wanflow.wan.wan_delay = milliseconds(std::stod(val));
      } else if (key == "wan_loss_rate") {
        cfg.wanflow.wan.wan_loss_rate = std::stod(val);
      } else if (key == "collective_kind") {
        const std::string l = lower(val);
        if (l == "allreduce") cfg.collective.kind = CollectiveKind::kAllReduce;
        else if (l == "alltoall") cfg.collective.kind = CollectiveKind::kAllToAll;
        else return fail(line_no, "unknown collective '" + val + "'");
      } else if (key == "groups") {
        cfg.collective.groups = std::stoi(val);
      } else if (key == "members") {
        cfg.collective.members_per_group = std::stoi(val);
      } else if (key == "collective_bytes") {
        cfg.collective.total_bytes = std::stoull(val);
      } else if (key == "ratio") {
        cfg.unequal_ratio = std::stod(val);
      } else if (key == "max_time_ms") {
        const Time t = milliseconds(std::stod(val));
        cfg.websearch.max_time = t;
        cfg.longflow.max_time = t;
        cfg.collective.max_time = t;
        cfg.faultdrill.max_time = t;
        cfg.wanflow.max_time = t;
      } else {
        return fail(line_no, "unknown key '" + key + "'");
      }
    } catch (const std::exception&) {
      return fail(line_no, "bad numeric value '" + val + "' for '" + key + "'");
    }
  }

  cfg.websearch.scheme = scheme;
  cfg.websearch.opt = opt;
  cfg.longflow.scheme = scheme;
  cfg.longflow.opt = opt;
  cfg.collective.scheme = scheme;
  cfg.collective.opt = opt;
  cfg.faultdrill.scheme = scheme;
  cfg.faultdrill.opt = opt;
  cfg.wanflow.scheme = scheme;
  cfg.wanflow.opt = opt;
  cfg.websearch.faults = cfg.faults;
  cfg.longflow.faults = cfg.faults;
  cfg.faultdrill.faults = cfg.faults;
  return cfg;
}

std::string scheme_config_text(SchemeKind kind, const SchemeOptions& opt) {
  std::string name = lower(scheme_name(kind));
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "[scheme]\nkind = %s\nfec_k = %u\nfec_m = %u\n"
                "fec_stream_window_bytes = %llu\nfec_nack_delay_us = %.9g\n",
                name.c_str(), opt.fec_k, opt.fec_m,
                static_cast<unsigned long long>(opt.fec_stream_window_bytes),
                static_cast<double>(opt.fec_nack_delay) / kMicrosecond);
  return buf;
}

std::optional<ExperimentConfig> load_experiment_config(const std::string& path,
                                                       std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return parse_experiment_config(ss.str(), error);
}

namespace {

// Renders the per-episode recovery table into the report string.
std::string recovery_table_text(const std::vector<RecoveryStats::Episode>& episodes) {
  if (episodes.empty()) return {};
  std::vector<std::vector<std::string>> rows = RecoveryStats::table_rows(episodes);
  std::vector<std::string> headers = RecoveryStats::table_headers();
  std::vector<std::size_t> width(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) width[c] = headers[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::string out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      if (c + 1 < cells.size()) out.append(width[c] - cells[c].size() + 2, ' ');
    }
    out += '\n';
  };
  emit(headers);
  for (const auto& row : rows) emit(row);
  return out;
}

}  // namespace

std::string run_configured_experiment(const ExperimentConfig& cfg) {
  char buf[256];
  std::string out;
  switch (cfg.kind) {
    case ExperimentConfig::Kind::kWebSearch: {
      WebSearchResult r = run_websearch(cfg.websearch);
      std::snprintf(buf, sizeof(buf),
                    "websearch %s: flows %zu/%zu  P50 %.2f  P95 %.2f  P99 %.2f  "
                    "timeouts %llu  trims %llu\n",
                    scheme_name(cfg.websearch.scheme), r.flows_completed, r.flows_total,
                    r.background.overall().percentile(50), r.background.overall().percentile(95),
                    r.background.overall().percentile(99),
                    static_cast<unsigned long long>(r.timeouts_background + r.timeouts_incast),
                    static_cast<unsigned long long>(r.sw.trimmed));
      out = buf;
      break;
    }
    case ExperimentConfig::Kind::kLongFlow: {
      LongFlowResult r = run_long_flow(cfg.longflow);
      std::snprintf(buf, sizeof(buf), "longflow %s: goodput %.2f Gbps  completed=%s\n",
                    scheme_name(cfg.longflow.scheme), r.goodput_gbps, r.completed ? "yes" : "no");
      out = buf;
      break;
    }
    case ExperimentConfig::Kind::kCollective: {
      CollectiveResult r = run_collectives(cfg.collective);
      double worst = 0;
      for (double j : r.jct_ms) worst = std::max(worst, j);
      std::snprintf(buf, sizeof(buf),
                    "collective %s: groups %zu  worst JCT %.2f ms  ideal %.2f ms  done=%s\n",
                    scheme_name(cfg.collective.scheme), r.jct_ms.size(), worst, r.ideal_jct_ms,
                    r.all_done ? "yes" : "no");
      out = buf;
      break;
    }
    case ExperimentConfig::Kind::kUnequalPaths: {
      UnequalPathsResult r =
          run_unequal_paths(cfg.longflow.scheme, cfg.unequal_ratio, cfg.longflow.flow_bytes);
      std::snprintf(buf, sizeof(buf), "unequal_paths %s ratio 1:%g: avg goodput %.2f Gbps\n",
                    scheme_name(cfg.longflow.scheme), cfg.unequal_ratio, r.avg_goodput_gbps);
      out = buf;
      break;
    }
    case ExperimentConfig::Kind::kWanFlow: {
      WanFlowResult r = run_wan_flow(cfg.wanflow);
      std::snprintf(buf, sizeof(buf),
                    "wanflow %s: goodput %.2f Gbps  completed=%s  wire drops %llu  "
                    "decode-recovered %llu  nack-recovered %llu\n",
                    scheme_name(cfg.wanflow.scheme), r.goodput_gbps, r.completed ? "yes" : "no",
                    static_cast<unsigned long long>(r.wire_dropped),
                    static_cast<unsigned long long>(r.receiver.decode_recovered_packets),
                    static_cast<unsigned long long>(r.receiver.nack_recovered_packets));
      out = buf;
      break;
    }
    case ExperimentConfig::Kind::kFaultDrill: {
      FaultDrillResult r = run_fault_drill(cfg.faultdrill);
      std::snprintf(buf, sizeof(buf),
                    "fault_drill %s: goodput %.2f Gbps  completed=%s  episodes %zu  "
                    "wire drops %llu  corrupt %llu  blackholed %llu\n",
                    scheme_name(cfg.faultdrill.scheme), r.goodput_gbps,
                    r.completed ? "yes" : "no", r.fault_episodes.size(),
                    static_cast<unsigned long long>(r.wire.dropped),
                    static_cast<unsigned long long>(r.wire.corrupted),
                    static_cast<unsigned long long>(r.wire.blackholed));
      out = buf;
      out += recovery_table_text(r.fault_episodes);
      break;
    }
  }
  return out;
}

}  // namespace dcp
