// Failure-injection tests: link cuts lose in-flight packets and remove
// paths; transports must still deliver every byte (DCP via its coarse
// timeout fallback — the §4.5 "lossless control plane violated" case).

#include <gtest/gtest.h>

#include "harness/scheme.h"
#include "topo/clos.h"
#include "topo/dumbbell.h"
#include "topo/testbed.h"

namespace dcp {
namespace {

struct FailFixture {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
};

TEST(Channel, DownChannelDiscards) {
  FailFixture f;
  BackToBack t = [&] {
    Network& net = f.net;
    BackToBack bb;
    bb.a = net.add_host("a", Bandwidth::gbps(100), microseconds(1));
    bb.b = net.add_host("b", Bandwidth::gbps(100), microseconds(1));
    net.direct_link(bb.a, bb.b);
    return bb;
  }();
  t.a->nic().channel().set_up(false);
  Packet p;
  p.wire_bytes = 100;
  t.a->nic().channel().deliver(p, 0);
  f.sim.run();
  EXPECT_EQ(t.a->nic().channel().delivered_packets(), 0u);
  EXPECT_EQ(t.a->nic().channel().discarded_packets(), 1u);
}

TEST(Channel, CutInFlightPolicy) {
  // Default cut semantics: set_up(false) discards only traffic handed to
  // the wire *after* the cut; packets already propagating still arrive.
  // The MidFlightLinkCut tests below rely on this — their in-flight losses
  // happen at the dead switch's egress, not mid-wire.
  FailFixture f;
  BackToBack t = [&] {
    Network& net = f.net;
    BackToBack bb;
    bb.a = net.add_host("a", Bandwidth::gbps(100), microseconds(1));
    bb.b = net.add_host("b", Bandwidth::gbps(100), microseconds(1));
    net.direct_link(bb.a, bb.b);
    return bb;
  }();
  Channel& ch = t.a->nic().channel();
  Packet p;
  p.wire_bytes = 100;

  ch.deliver(p, 0);   // on the wire...
  ch.set_up(false);   // ...then the fiber is cut
  f.sim.run();
  EXPECT_EQ(ch.delivered_packets(), 1u);
  EXPECT_EQ(ch.in_flight_dropped(), 0u);  // the photons are past the cut

  // Opt-in drop-in-flight (what FaultInjector's link_flap uses with
  // drop_inflight=true): the same sequence kills the wire-borne packet.
  ch.set_up(true);
  ch.set_drop_in_flight_on_cut(true);
  ch.deliver(p, 0);
  ch.set_up(false);
  f.sim.run();
  EXPECT_EQ(ch.in_flight_dropped(), 1u);
}

TEST(SwitchFailure, DownPortExcludedFromCandidates) {
  FailFixture f;
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  TestbedParams tb;
  tb.sw = s.sw;
  tb.cross_links = std::vector<Bandwidth>(4, Bandwidth::gbps(100));
  TestbedTopology topo = build_testbed(f.net, tb);
  apply_scheme(f.net, s);

  // Kill cross links 0 and 1 on switch 1 (ports 8, 9).
  topo.sw1->set_link_up(8, false);
  topo.sw1->set_link_up(9, false);

  FlowSpec spec;
  spec.src = topo.hosts[0]->id();
  spec.dst = topo.hosts[8]->id();
  spec.bytes = 2'000'000;
  const FlowId id = f.net.start_flow(spec);
  f.net.run_until_done(seconds(2));
  ASSERT_TRUE(f.net.record(id).complete());
  EXPECT_EQ(topo.sw1->port(8).stats().tx_packets, 0u);
  EXPECT_EQ(topo.sw1->port(9).stats().tx_packets, 0u);
  EXPECT_GT(topo.sw1->port(10).stats().tx_packets + topo.sw1->port(11).stats().tx_packets, 0u);
}

class MidFlightLinkCut : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(MidFlightLinkCut, FlowsSurviveASpineFailure) {
  FailFixture f;
  SchemeSetup s = make_scheme(GetParam());
  ClosParams cp;
  cp.spines = 2;
  cp.leaves = 2;
  cp.hosts_per_leaf = 2;
  cp.sw = s.sw;
  ClosTopology topo = build_clos(f.net, cp);
  apply_scheme(f.net, s);

  FlowSpec spec;
  spec.src = topo.hosts[0]->id();
  spec.dst = topo.hosts[3]->id();  // cross-rack
  spec.bytes = 4'000'000;
  spec.msg_bytes = 512 * 1024;
  const FlowId id = f.net.start_flow(spec);

  // Cut every link touching spine 0 mid-transfer: packets in flight are
  // lost, and the withdrawn routes force everything over spine 1.
  f.sim.schedule(microseconds(60), [&] {
    for (std::uint32_t p = 0; p < topo.spines[0]->num_ports(); ++p) {
      topo.spines[0]->set_link_up(p, false);
    }
    for (auto* leaf : topo.leaves) {
      // The leaf uplinks to spine 0 are the first spine port on each leaf
      // (ports are allocated hosts-first, then one uplink per spine).
      leaf->set_link_up(cp.hosts_per_leaf, false);
    }
  });

  f.net.run_until_done(seconds(5));
  const FlowRecord& rec = f.net.record(id);
  ASSERT_TRUE(rec.complete()) << scheme_name(GetParam());
  EXPECT_EQ(rec.receiver.bytes_received, 4'000'000u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, MidFlightLinkCut,
                         ::testing::Values(SchemeKind::kDcp, SchemeKind::kIrn,
                                           SchemeKind::kCx5, SchemeKind::kTimeout),
                         [](const auto& info) {
                           std::string n = scheme_name(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(MidFlightLinkCutDcp, CoarseTimeoutCoversLostInFlight) {
  // Same cut, but assert the recovery mechanism: the in-flight packets on
  // the dead spine die silently (no HO is generated for them), so DCP must
  // use its coarse-grained timeout fallback at least once.
  FailFixture f;
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  ClosParams cp;
  cp.spines = 2;
  cp.leaves = 2;
  cp.hosts_per_leaf = 2;
  cp.sw = s.sw;
  ClosTopology topo = build_clos(f.net, cp);
  apply_scheme(f.net, s);

  FlowSpec spec;
  spec.src = topo.hosts[0]->id();
  spec.dst = topo.hosts[3]->id();
  spec.bytes = 8'000'000;
  spec.msg_bytes = 1024 * 1024;
  const FlowId id = f.net.start_flow(spec);

  f.sim.schedule(microseconds(100), [&] {
    for (auto* leaf : topo.leaves) leaf->set_link_up(cp.hosts_per_leaf, false);
    for (std::uint32_t p = 0; p < topo.spines[0]->num_ports(); ++p) {
      topo.spines[0]->set_link_up(p, false);
    }
  });
  f.net.run_until_done(seconds(5));
  const FlowRecord& rec = f.net.record(id);
  ASSERT_TRUE(rec.complete());
  EXPECT_GE(rec.sender.timeouts, 1u);  // fallback actually exercised
  EXPECT_EQ(rec.receiver.bytes_received, 8'000'000u);
}

TEST(SwitchFailure, LinkRestoreRejoinsCandidates) {
  FailFixture f;
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  TestbedParams tb;
  tb.sw = s.sw;
  tb.cross_links = std::vector<Bandwidth>(2, Bandwidth::gbps(100));
  TestbedTopology topo = build_testbed(f.net, tb);
  apply_scheme(f.net, s);

  topo.sw1->set_link_up(8, false);
  EXPECT_FALSE(topo.sw1->link_up(8));
  topo.sw1->set_link_up(8, true);
  EXPECT_TRUE(topo.sw1->link_up(8));

  FlowSpec spec;
  spec.src = topo.hosts[0]->id();
  spec.dst = topo.hosts[8]->id();
  spec.bytes = 4'000'000;
  const FlowId id = f.net.start_flow(spec);
  f.net.run_until_done(seconds(2));
  ASSERT_TRUE(f.net.record(id).complete());
  // Both cross links carry traffic again.
  EXPECT_GT(topo.sw1->port(8).stats().tx_packets, 0u);
}

}  // namespace
}  // namespace dcp
