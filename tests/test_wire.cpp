// Byte-exact wire-format tests: encoded sizes match the paper's header
// arithmetic (57-byte header-only packets!), fields round-trip through
// encode/decode, checksums validate, and corrupted input is rejected.

#include <gtest/gtest.h>

#include <set>

#include "core/dcp_transport.h"
#include "net/wire.h"
#include "sim/rng.h"

namespace dcp {
namespace {

Packet data_packet(RdmaOp op) {
  Packet p;
  p.type = PktType::kData;
  p.tag = DcpTag::kData;
  p.op = op;
  p.src = 3;
  p.dst = 7;
  p.sport = 12345;
  p.flow = 0xABCDE;
  p.psn = 1234567;
  p.msn = 42;
  p.ssn = 42;
  p.retry_no = 2;
  p.remote_addr = 0x1122334455667788ull;
  p.payload_bytes = 1000;
  p.wire_bytes = wire::header_bytes(p) + p.payload_bytes;
  p.ecn_capable = true;
  p.last_of_msg = true;
  return p;
}

TEST(Wire, HeaderSizesMatchPaperArithmetic) {
  // Fig. 4 footnote: 57 B = 14 MAC + 20 IP + 8 UDP + 12 BTH + 3 MSN.
  Packet ho;
  ho.type = PktType::kHeaderOnly;
  ho.tag = DcpTag::kHeaderOnly;
  EXPECT_EQ(wire::header_bytes(ho), 57u);
  EXPECT_EQ(wire::encode(ho).size(), 57u);

  // DCP data packets: +RETH (one-sided, every packet) and/or +SSN.
  EXPECT_EQ(wire::header_bytes(data_packet(RdmaOp::kWrite)),
            dcp_data_header_bytes(RdmaOp::kWrite));
  EXPECT_EQ(wire::header_bytes(data_packet(RdmaOp::kSend)),
            dcp_data_header_bytes(RdmaOp::kSend));
  EXPECT_EQ(wire::header_bytes(data_packet(RdmaOp::kWriteWithImm)),
            dcp_data_header_bytes(RdmaOp::kWriteWithImm));

  // DCP ACK: 58 RoCE ACK + 3 eMSN = 61.
  Packet ack;
  ack.type = PktType::kAck;
  EXPECT_EQ(wire::header_bytes(ack), HeaderSizes::kDcpAck);
}

TEST(Wire, DataPacketRoundTripsAllFields) {
  for (RdmaOp op : {RdmaOp::kWrite, RdmaOp::kSend, RdmaOp::kWriteWithImm}) {
    const Packet p = data_packet(op);
    const auto bytes = wire::encode(p, /*include_payload=*/true);
    EXPECT_EQ(bytes.size(), wire::header_bytes(p) + 1000u);
    const auto q = wire::decode(bytes);
    ASSERT_TRUE(q.has_value()) << static_cast<int>(op);
    EXPECT_EQ(q->type, PktType::kData);
    EXPECT_EQ(q->op, op);
    EXPECT_EQ(q->src, p.src);
    EXPECT_EQ(q->dst, p.dst);
    EXPECT_EQ(q->sport, p.sport);
    EXPECT_EQ(q->flow, p.flow & 0xFFFFFF);  // 24-bit QPN on the wire
    EXPECT_EQ(q->psn, p.psn);
    EXPECT_EQ(q->msn, p.msn);
    EXPECT_EQ(q->retry_no, p.retry_no);
    EXPECT_EQ(q->tag, DcpTag::kData);
    EXPECT_TRUE(q->last_of_msg);
    if (op != RdmaOp::kSend) {
      EXPECT_EQ(q->remote_addr, p.remote_addr);
      EXPECT_EQ(q->payload_bytes, 1000u);  // RETH length field
    }
    if (op != RdmaOp::kWrite) {
      EXPECT_EQ(q->ssn, p.ssn);
    }
  }
}

TEST(Wire, HeaderOnlyRoundTrip) {
  Packet ho;
  ho.type = PktType::kHeaderOnly;
  ho.tag = DcpTag::kHeaderOnly;
  ho.src = 1;
  ho.dst = 2;
  ho.flow = 99;
  ho.psn = 555;
  ho.msn = 3;
  ho.retry_no = 1;
  const auto bytes = wire::encode(ho);
  ASSERT_EQ(bytes.size(), 57u);
  const auto q = wire::decode(bytes);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->type, PktType::kHeaderOnly);
  EXPECT_EQ(q->tag, DcpTag::kHeaderOnly);
  EXPECT_EQ(q->psn, 555u);
  EXPECT_EQ(q->msn, 3u);
  EXPECT_EQ(q->retry_no, 1);
  EXPECT_EQ(q->queue_class, QueueClass::kControl);
  EXPECT_EQ(q->wire_bytes, 57u);
}

TEST(Wire, AckSackNackRoundTrip) {
  Packet ack;
  ack.type = PktType::kAck;
  ack.tag = DcpTag::kAck;
  ack.src = 2;
  ack.dst = 1;
  ack.flow = 99;
  ack.ack_psn = 777;
  ack.emsn = 5;
  auto q = wire::decode(wire::encode(ack));
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->type, PktType::kAck);
  EXPECT_EQ(q->ack_psn, 777u);
  EXPECT_EQ(q->emsn, 5u);

  Packet sack = ack;
  sack.type = PktType::kSack;
  sack.sack_psn = 901;
  q = wire::decode(wire::encode(sack));
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->type, PktType::kSack);
  EXPECT_EQ(q->sack_psn, 901u);

  Packet nack = ack;
  nack.type = PktType::kNack;
  q = wire::decode(wire::encode(nack));
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->type, PktType::kNack);
}

TEST(Wire, CnpRoundTrip) {
  Packet cnp;
  cnp.type = PktType::kCnp;
  cnp.src = 4;
  cnp.dst = 9;
  cnp.flow = 1234;
  const auto q = wire::decode(wire::encode(cnp));
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->type, PktType::kCnp);
  EXPECT_EQ(q->flow, 1234u);
}

TEST(Wire, EcnBitsSurvive) {
  Packet p = data_packet(RdmaOp::kWrite);
  p.ecn_ce = true;
  auto q = wire::decode(wire::encode(p));
  ASSERT_TRUE(q.has_value());
  EXPECT_TRUE(q->ecn_ce);
  p.ecn_ce = false;
  p.ecn_capable = true;
  q = wire::decode(wire::encode(p));
  ASSERT_TRUE(q.has_value());
  EXPECT_FALSE(q->ecn_ce);
  EXPECT_TRUE(q->ecn_capable);
}

TEST(Wire, ChecksumCorruptionRejected) {
  const auto bytes = wire::encode(data_packet(RdmaOp::kWrite));
  for (std::size_t byte : {14u, 20u, 26u, 30u}) {  // inside the IP header
    auto bad = bytes;
    bad[byte] ^= 0xFF;
    EXPECT_FALSE(wire::decode(bad).has_value()) << "byte " << byte;
  }
}

TEST(Wire, TruncationRejected) {
  const auto bytes = wire::encode(data_packet(RdmaOp::kWrite));
  for (std::size_t len : {0u, 10u, 20u, 40u, 55u, 60u}) {
    EXPECT_FALSE(
        wire::decode(std::span<const std::uint8_t>(bytes.data(), len)).has_value())
        << "len " << len;
  }
}

TEST(Wire, Ipv4ChecksumKnownVector) {
  // RFC 1071 style check on a classic example header.
  const std::uint8_t hdr[20] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
                                0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7};
  EXPECT_EQ(wire::ipv4_checksum(hdr), 0xb861);
}

TEST(Wire, AddressingIsInjectiveForSmallIds) {
  std::set<std::uint32_t> ips;
  std::set<std::uint64_t> macs;
  for (NodeId id = 0; id < 1024; ++id) {
    ips.insert(wire::ip_of_node(id));
    macs.insert(wire::mac_of_node(id));
  }
  EXPECT_EQ(ips.size(), 1024u);
  EXPECT_EQ(macs.size(), 1024u);
}

TEST(Wire, FuzzRandomizedRoundTrip) {
  Rng rng(2026);
  for (int i = 0; i < 500; ++i) {
    Packet p;
    const int kind = static_cast<int>(rng.uniform_int(0, 4));
    p.type = kind == 0   ? PktType::kData
             : kind == 1 ? PktType::kHeaderOnly
             : kind == 2 ? PktType::kAck
             : kind == 3 ? PktType::kSack
                         : PktType::kCnp;
    p.op = static_cast<RdmaOp>(rng.uniform_int(0, 2));
    p.src = static_cast<NodeId>(rng.uniform_int(0, 65535));
    p.dst = static_cast<NodeId>(rng.uniform_int(0, 65535));
    p.sport = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    p.flow = static_cast<FlowId>(rng.uniform_int(0, 0xFFFFFF));
    p.psn = static_cast<std::uint32_t>(rng.uniform_int(0, 0xFFFFFF));
    p.msn = static_cast<std::uint32_t>(rng.uniform_int(0, 0xFFFFFF));
    p.ssn = p.msn;
    p.ack_psn = static_cast<std::uint32_t>(rng.uniform_int(0, 0xFFFFFF));
    p.sack_psn = static_cast<std::uint32_t>(rng.uniform_int(0, 0xFFFFFF));
    p.emsn = static_cast<std::uint32_t>(rng.uniform_int(0, 0xFFFFFF));
    p.retry_no = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    p.remote_addr = static_cast<std::uint64_t>(rng.uniform_int(0, INT64_MAX));
    p.payload_bytes =
        p.type == PktType::kData ? static_cast<std::uint32_t>(rng.uniform_int(0, 1000)) : 0;

    const auto bytes = wire::encode(p);
    EXPECT_EQ(bytes.size(), wire::header_bytes(p));
    const auto q = wire::decode(bytes);
    ASSERT_TRUE(q.has_value()) << "iteration " << i;
    EXPECT_EQ(q->type, p.type);
    EXPECT_EQ(q->src, p.src);
    EXPECT_EQ(q->dst, p.dst);
    EXPECT_EQ(q->flow, p.flow);
    EXPECT_EQ(q->psn, p.psn);
  }
}

}  // namespace
}  // namespace dcp

// ---------------------------------------------------------------------------
// Live-traffic integration: every packet the simulator moves (except
// hop-local PFC frames) must survive an encode/decode round trip with its
// protocol-relevant fields intact — ties the metadata model to the wire
// codec under real DCP traffic including trims, HO bounces and ACKs.
// ---------------------------------------------------------------------------

#include "harness/scheme.h"
#include "topo/dumbbell.h"

namespace dcp {
namespace {

TEST(WireLive, AllSimulatedPacketsRoundTrip) {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  s.sw.inject_loss_rate = 0.1;  // force trims -> HO -> retransmissions
  Star star = build_star(net, 3, s.sw);
  apply_scheme(net, s);

  std::uint64_t checked = 0, failed = 0;
  auto hook = [&](const Node&, const Packet& pkt, std::uint32_t) {
    if (pkt.type == PktType::kPfcPause || pkt.type == PktType::kPfcResume) return;
    const auto bytes = wire::encode(pkt);
    const auto q = wire::decode(bytes);
    ++checked;
    if (!q.has_value() || q->type != pkt.type || q->psn != (pkt.psn & 0xFFFFFF) ||
        q->flow != (pkt.flow & 0xFFFFFF) || q->msn != (pkt.msn & 0xFFFFFF) ||
        q->retry_no != pkt.retry_no) {
      ++failed;
    }
  };
  for (const auto& h : net.hosts()) h->trace_hook = hook;
  for (const auto& sw : net.switches()) sw->trace_hook = hook;

  FlowSpec spec;
  spec.src = star.hosts[0]->id();
  spec.dst = star.hosts[2]->id();
  spec.bytes = 300'000;
  spec.msg_bytes = 64 * 1024;
  const FlowId id = net.start_flow(spec);
  net.run_until_done(seconds(5));
  ASSERT_TRUE(net.record(id).complete());
  EXPECT_GT(checked, 600u);  // data + HOs + ACKs all passed through
  EXPECT_EQ(failed, 0u);
}

TEST(WireLive, HeaderOnlySizeOnLiveTraffic) {
  // Every HO packet observed on the wire is exactly 57 bytes and its
  // encoding matches the simulator's accounting.
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  SchemeSetup s = make_scheme(SchemeKind::kDcp);
  s.sw.inject_loss_rate = 0.3;
  Star star = build_star(net, 3, s.sw);
  apply_scheme(net, s);

  std::uint64_t ho_seen = 0;
  auto hook = [&](const Node&, const Packet& pkt, std::uint32_t) {
    if (pkt.type != PktType::kHeaderOnly) return;
    ++ho_seen;
    EXPECT_EQ(pkt.wire_bytes, 57u);
    EXPECT_EQ(wire::encode(pkt).size(), 57u);
  };
  for (const auto& h : net.hosts()) h->trace_hook = hook;
  for (const auto& sw : net.switches()) sw->trace_hook = hook;

  FlowSpec spec;
  spec.src = star.hosts[0]->id();
  spec.dst = star.hosts[2]->id();
  spec.bytes = 100'000;
  const FlowId id = net.start_flow(spec);
  net.run_until_done(seconds(5));
  ASSERT_TRUE(net.record(id).complete());
  EXPECT_GT(ho_seen, 10u);
}

}  // namespace
}  // namespace dcp
