// Tests for the ibverbs-flavoured public API.

#include <gtest/gtest.h>

#include "core/verbs.h"
#include "harness/scheme.h"
#include "topo/dumbbell.h"

namespace dcp {
namespace {

struct VerbsFixture {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  Star star;
  std::unique_ptr<verbs::Device> dev;

  VerbsFixture() {
    SchemeSetup s = make_scheme(SchemeKind::kDcp);
    star = build_star(net, 3, s.sw);
    apply_scheme(net, s);
    dev = std::make_unique<verbs::Device>(net);
  }
};

TEST(Verbs, PostAndPollCompletion) {
  VerbsFixture f;
  auto& qp = f.dev->create_qp(f.star.hosts[0]->id(), f.star.hosts[1]->id());
  qp.post(100'000, /*wr_id=*/7);
  EXPECT_EQ(qp.outstanding(), 1u);
  f.net.run_until_done(seconds(1));

  verbs::WorkCompletion wc;
  ASSERT_TRUE(qp.poll_cq(wc));
  EXPECT_EQ(wc.wr_id, 7u);
  EXPECT_EQ(wc.bytes, 100'000u);
  EXPECT_EQ(qp.outstanding(), 0u);
  EXPECT_FALSE(qp.poll_cq(wc));
}

TEST(Verbs, MultipleWorkRequestsCompleteInPostOrder) {
  VerbsFixture f;
  auto& qp = f.dev->create_qp(f.star.hosts[0]->id(), f.star.hosts[1]->id());
  for (std::uint64_t i = 0; i < 5; ++i) qp.post(50'000, i);
  f.net.run_until_done(seconds(1));
  verbs::WorkCompletion wc;
  std::vector<std::uint64_t> order;
  while (qp.poll_cq(wc)) order.push_back(wc.wr_id);
  ASSERT_EQ(order.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(order[i], i);
}

TEST(Verbs, IndependentQpsDoNotCrossTalk) {
  VerbsFixture f;
  auto& qp1 = f.dev->create_qp(f.star.hosts[0]->id(), f.star.hosts[1]->id());
  auto& qp2 = f.dev->create_qp(f.star.hosts[0]->id(), f.star.hosts[2]->id());
  qp1.post(10'000, 1);
  qp2.post(20'000, 2);
  f.net.run_until_done(seconds(1));
  verbs::WorkCompletion wc;
  ASSERT_TRUE(qp1.poll_cq(wc));
  EXPECT_EQ(wc.wr_id, 1u);
  EXPECT_FALSE(qp1.poll_cq(wc));
  ASSERT_TRUE(qp2.poll_cq(wc));
  EXPECT_EQ(wc.wr_id, 2u);
}

TEST(Verbs, SendOpCarriesSsnSizedHeaders) {
  VerbsFixture f;
  auto& qp = f.dev->create_qp(f.star.hosts[0]->id(), f.star.hosts[1]->id());
  const FlowId id = qp.post(5'000, 1, RdmaOp::kSend);
  f.net.run_until_done(seconds(1));
  EXPECT_EQ(f.net.record(id).spec.op, RdmaOp::kSend);
  verbs::WorkCompletion wc;
  ASSERT_TRUE(qp.poll_cq(wc));
  EXPECT_EQ(wc.op, RdmaOp::kSend);
}

// ---------------------------------------------------------------------------
// QP lifecycle state machine
// ---------------------------------------------------------------------------

TEST(VerbsLifecycle, AutoConnectedQpIsRts) {
  VerbsFixture f;
  auto& qp = f.dev->create_qp(f.star.hosts[0]->id(), f.star.hosts[1]->id());
  EXPECT_EQ(qp.state(), verbs::QpState::kRts);
}

TEST(VerbsLifecycle, LegalTransitionChain) {
  VerbsFixture f;
  auto& qp = f.dev->create_qp(f.star.hosts[0]->id(), f.star.hosts[1]->id(), 1024 * 1024,
                              /*auto_connect=*/false);
  EXPECT_EQ(qp.state(), verbs::QpState::kReset);
  EXPECT_TRUE(qp.modify(verbs::QpState::kInit));
  EXPECT_TRUE(qp.modify(verbs::QpState::kRtr));
  EXPECT_TRUE(qp.modify(verbs::QpState::kRts));
  EXPECT_EQ(qp.state(), verbs::QpState::kRts);
}

TEST(VerbsLifecycle, IllegalTransitionsRejected) {
  VerbsFixture f;
  auto& qp = f.dev->create_qp(f.star.hosts[0]->id(), f.star.hosts[1]->id(), 1024 * 1024, false);
  EXPECT_FALSE(qp.modify(verbs::QpState::kRts));   // RESET -> RTS skips states
  EXPECT_FALSE(qp.modify(verbs::QpState::kRtr));   // RESET -> RTR too
  EXPECT_EQ(qp.state(), verbs::QpState::kReset);
  EXPECT_TRUE(qp.modify(verbs::QpState::kError));  // any -> ERROR is legal
  EXPECT_TRUE(qp.modify(verbs::QpState::kReset));  // ERROR -> RESET recycles
}

TEST(VerbsLifecycle, PostRejectedBeforeRts) {
  VerbsFixture f;
  auto& qp = f.dev->create_qp(f.star.hosts[0]->id(), f.star.hosts[1]->id(), 1024 * 1024, false);
  EXPECT_EQ(qp.post(1000, 1), 0u);  // rejected in RESET
  qp.modify(verbs::QpState::kInit);
  EXPECT_EQ(qp.post(1000, 2), 0u);  // rejected in INIT
  EXPECT_TRUE(qp.post_recv(10));    // but Recv WQEs are legal from INIT
  EXPECT_EQ(qp.rejected_posts(), 2u);
}

TEST(VerbsLifecycle, ConnectHandshakeTakesOneRtt) {
  VerbsFixture f;
  auto& qp = f.dev->create_qp(f.star.hosts[0]->id(), f.star.hosts[1]->id(), 1024 * 1024, false);
  bool connected = false;
  qp.connect([&] { connected = true; });
  EXPECT_EQ(qp.state(), verbs::QpState::kInit);
  f.sim.run(microseconds(1));
  EXPECT_FALSE(connected);  // handshake in flight
  f.sim.run(microseconds(20));
  EXPECT_TRUE(connected);
  EXPECT_EQ(qp.state(), verbs::QpState::kRts);
  // And the QP is immediately usable.
  EXPECT_NE(qp.post(10'000, 7), 0u);
  f.net.run_until_done(seconds(1));
  verbs::WorkCompletion wc;
  EXPECT_TRUE(qp.poll_cq(wc));
}

TEST(VerbsLifecycle, ErrorStateFreezesQp) {
  VerbsFixture f;
  auto& qp = f.dev->create_qp(f.star.hosts[0]->id(), f.star.hosts[1]->id());
  qp.modify(verbs::QpState::kError);
  EXPECT_EQ(qp.post(1000, 1), 0u);
  EXPECT_FALSE(qp.post_recv(2));
}

TEST(VerbsLifecycle, StateNames) {
  EXPECT_STREQ(verbs::qp_state_name(verbs::QpState::kReset), "RESET");
  EXPECT_STREQ(verbs::qp_state_name(verbs::QpState::kRts), "RTS");
  EXPECT_STREQ(verbs::qp_state_name(verbs::QpState::kError), "ERROR");
}

}  // namespace
}  // namespace dcp
