// Unit tests for the host-memory retransmission queue (paper §4.3).

#include <gtest/gtest.h>

#include "core/retransq.h"

namespace dcp {
namespace {

TEST(RetransQ, PushPopThroughStaging) {
  RetransQ q;
  q.push({1, 10});
  q.push({1, 11});
  q.push({2, 20});
  EXPECT_EQ(q.len(), 3u);
  EXPECT_TRUE(q.staging_empty());

  EXPECT_EQ(q.fetch_to_staging(2), 2u);
  EXPECT_EQ(q.len(), 1u);
  EXPECT_EQ(q.staging_len(), 2u);

  auto e = q.pop_staged();
  EXPECT_EQ(e.msn, 1u);
  EXPECT_EQ(e.psn, 10u);
  e = q.pop_staged();
  EXPECT_EQ(e.psn, 11u);
  EXPECT_TRUE(q.staging_empty());
}

TEST(RetransQ, FetchLimitedByHostQueue) {
  RetransQ q;
  q.push({0, 1});
  EXPECT_EQ(q.fetch_to_staging(16), 1u);
  EXPECT_EQ(q.fetch_to_staging(16), 0u);
}

TEST(RetransQ, OnePcieFetchPerBatch) {
  RetransQ q;
  for (std::uint32_t i = 0; i < 32; ++i) q.push({0, i});
  q.fetch_to_staging(16);
  q.fetch_to_staging(16);
  EXPECT_EQ(q.pcie_fetches(), 2u);  // 32 entries, 2 PCIe round trips
  EXPECT_EQ(q.total_pushed(), 32u);
}

TEST(RetransQ, TracksMaxDepth) {
  RetransQ q;
  for (std::uint32_t i = 0; i < 5; ++i) q.push({0, i});
  q.fetch_to_staging(5);
  q.push({0, 99});
  EXPECT_EQ(q.max_len(), 5u);
}

TEST(RetransQ, FifoOrderPreserved) {
  RetransQ q;
  for (std::uint32_t i = 0; i < 10; ++i) q.push({0, i});
  q.fetch_to_staging(10);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(q.pop_staged().psn, i);
}

}  // namespace
}  // namespace dcp
