// Unit tests for workload generation: the WebSearch size distribution,
// Poisson arrivals, and incast bursts.

#include <gtest/gtest.h>

#include <map>

#include "topo/dumbbell.h"
#include "transports/gbn.h"
#include "workload/flowgen.h"
#include "workload/incast.h"
#include "workload/size_dist.h"

namespace dcp {
namespace {

TEST(SizeDist, WebSearchMatchesPaperSplit) {
  const SizeDist ws = SizeDist::websearch();
  // "60% of flows below 200 KB, 37% between 200 KB and 10 MB, 3% above."
  EXPECT_NEAR(ws.cdf_at(200'000), 0.60, 0.03);
  EXPECT_NEAR(ws.cdf_at(10'000'000), 0.97, 0.01);
  EXPECT_DOUBLE_EQ(ws.cdf_at(30'000'000), 1.0);
}

TEST(SizeDist, SamplesFollowCdf) {
  const SizeDist ws = SizeDist::websearch();
  Rng rng(5);
  int below_200k = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (ws.sample(rng) <= 200'000) ++below_200k;
  }
  EXPECT_NEAR(static_cast<double>(below_200k) / n, ws.cdf_at(200'000), 0.02);
}

TEST(SizeDist, MeanConsistentWithSampling) {
  const SizeDist ws = SizeDist::websearch();
  Rng rng(6);
  double sum = 0;
  const int n = 40'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(ws.sample(rng));
  EXPECT_NEAR(sum / n / ws.mean_bytes(), 1.0, 0.05);
}

TEST(SizeDist, FixedAlwaysReturnsSame) {
  const SizeDist f = SizeDist::fixed(4096);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(f.sample(rng), 4096u);
  EXPECT_DOUBLE_EQ(f.mean_bytes(), 4096.0);
}

struct WorkloadFixture {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  Star star;

  WorkloadFixture() {
    star = build_star(net, 8, SwitchConfig{});
    net.set_factory(std::make_shared<GbnFactory>());
  }
};

TEST(FlowGen, GeneratesRequestedCountWithDistinctEndpoints) {
  WorkloadFixture f;
  FlowGenParams p;
  p.num_flows = 50;
  const auto ids = generate_poisson_flows(f.net, f.star.hosts, SizeDist::fixed(10'000), p);
  EXPECT_EQ(ids.size(), 50u);
  Time prev = 0;
  for (FlowId id : ids) {
    const auto& spec = f.net.record(id).spec;
    EXPECT_NE(spec.src, spec.dst);
    EXPECT_GE(spec.start_time, prev);  // arrivals non-decreasing
    prev = spec.start_time;
  }
}

TEST(FlowGen, ArrivalRateTracksLoad) {
  WorkloadFixture f;
  FlowGenParams p;
  p.num_flows = 2000;
  p.load = 0.5;
  const auto ids = generate_poisson_flows(f.net, f.star.hosts, SizeDist::fixed(100'000), p);
  const Time span = f.net.record(ids.back()).spec.start_time;
  // Offered bits / (capacity * span) should be ~load.
  const double offered = 2000.0 * 100'000 * 8;
  const double cap = 8 * 100e9 * (static_cast<double>(span) / kSecond);
  EXPECT_NEAR(offered / cap, 0.5, 0.08);
}

TEST(FlowGen, DeterministicForSeed) {
  WorkloadFixture f1, f2;
  FlowGenParams p;
  p.num_flows = 20;
  p.seed = 99;
  const auto a = generate_poisson_flows(f1.net, f1.star.hosts, SizeDist::websearch(), p);
  const auto b = generate_poisson_flows(f2.net, f2.star.hosts, SizeDist::websearch(), p);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(f1.net.record(a[i]).spec.bytes, f2.net.record(b[i]).spec.bytes);
    EXPECT_EQ(f1.net.record(a[i]).spec.start_time, f2.net.record(b[i]).spec.start_time);
  }
}

TEST(Incast, AllBurstsTargetVictim) {
  WorkloadFixture f;
  IncastParams p;
  p.fan_in = 6;
  p.bursts = 3;
  p.victim_index = 2;
  const auto ids = generate_incast(f.net, f.star.hosts, p);
  EXPECT_EQ(ids.size(), 18u);
  for (FlowId id : ids) {
    const auto& spec = f.net.record(id).spec;
    EXPECT_EQ(spec.dst, f.star.hosts[2]->id());
    EXPECT_NE(spec.src, spec.dst);
    EXPECT_FALSE(spec.background);
    EXPECT_GE(spec.group, 0);
  }
}

TEST(Incast, BurstsSeparatedByLoadInterval) {
  WorkloadFixture f;
  IncastParams p;
  p.fan_in = 4;
  p.bursts = 2;
  p.load = 0.1;
  p.bytes_per_sender = 64 * 1024;
  const auto ids = generate_incast(f.net, f.star.hosts, p);
  const Time t0 = f.net.record(ids[0]).spec.start_time;
  const Time t1 = f.net.record(ids[4]).spec.start_time;
  // Mean interval = burst_bits / (load * rate) ~ 2.1 ms at these numbers;
  // with exponential jitter just check it is "large".
  EXPECT_GT(t1 - t0, microseconds(50));
}

TEST(Permutation, EveryHostSendsAndReceivesExactlyOnce) {
  WorkloadFixture f;
  const auto ids = generate_permutation(f.net, f.star.hosts, 10'000);
  ASSERT_EQ(ids.size(), f.star.hosts.size());
  std::map<NodeId, int> tx, rx;
  for (FlowId id : ids) {
    const auto& spec = f.net.record(id).spec;
    EXPECT_NE(spec.src, spec.dst);  // derangement: no self-flows
    tx[spec.src]++;
    rx[spec.dst]++;
  }
  for (auto* h : f.star.hosts) {
    EXPECT_EQ(tx[h->id()], 1);
    EXPECT_EQ(rx[h->id()], 1);
  }
}

TEST(Permutation, AdmissibleLoadRunsNearLineRate) {
  // On a non-blocking star, a permutation is perfectly admissible: every
  // flow should finish in roughly the serialization time of its bytes.
  WorkloadFixture f;
  f.net.set_factory(std::make_shared<GbnFactory>());
  const std::uint64_t bytes = 1'000'000;
  const auto ids = generate_permutation(f.net, f.star.hosts, bytes);
  f.net.run_until_done(seconds(2));
  for (FlowId id : ids) {
    const FlowRecord& rec = f.net.record(id);
    ASSERT_TRUE(rec.complete());
    // 1 MB at 100G ~ 85 us; allow generous scheduling slack.
    EXPECT_LT(rec.fct(), microseconds(200));
  }
}

TEST(Permutation, DeterministicForSeed) {
  WorkloadFixture f1, f2;
  const auto a = generate_permutation(f1.net, f1.star.hosts, 1000, 0, 123);
  const auto b = generate_permutation(f2.net, f2.star.hosts, 1000, 0, 123);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(f1.net.record(a[i]).spec.dst, f2.net.record(b[i]).spec.dst);
  }
}

}  // namespace
}  // namespace dcp
