// Tests for the three-tier fat-tree topology.

#include <gtest/gtest.h>

#include "harness/scheme.h"
#include "topo/fattree.h"
#include "workload/flowgen.h"

namespace dcp {
namespace {

struct Fixture {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
};

TEST(FatTree, DimensionsForK4) {
  Fixture f;
  FatTreeParams p;
  p.k = 4;
  p.sw = make_scheme(SchemeKind::kDcp).sw;
  FatTreeTopology t = build_fattree(f.net, p);
  EXPECT_EQ(t.hosts.size(), 16u);
  EXPECT_EQ(t.core.size(), 4u);
  EXPECT_EQ(t.edge.size(), 4u);
  EXPECT_EQ(t.agg.size(), 4u);
  EXPECT_EQ(t.edge[0].size(), 2u);
  // Edge switch: 2 host ports + 2 agg uplinks.
  EXPECT_EQ(t.edge[0][0]->num_ports(), 4u);
  // Core switch: one port per pod.
  EXPECT_EQ(t.core[0]->num_ports(), 4u);
}

TEST(FatTree, RoutesOfferFullMultipath) {
  Fixture f;
  FatTreeParams p;
  p.k = 4;
  p.sw = make_scheme(SchemeKind::kDcp).sw;
  FatTreeTopology t = build_fattree(f.net, p);
  // Cross-pod destination: edge offers k/2 uplinks, agg offers k/2 core
  // uplinks -> 4 distinct paths for k=4.
  const NodeId far = t.hosts[15]->id();
  EXPECT_EQ(t.edge[0][0]->routes().candidates(far).size(), 2u);
  EXPECT_EQ(t.agg[0][0]->routes().candidates(far).size(), 2u);
  // Same-pod, different edge: up one level only.
  const NodeId near = t.hosts[2]->id();  // pod 0, edge 1
  EXPECT_EQ(t.edge[0][0]->routes().candidates(near).size(), 2u);
  EXPECT_EQ(t.agg[0][0]->routes().candidates(near).size(), 1u);  // down
}

TEST(FatTree, PathInfoTiers) {
  Fixture f;
  FatTreeParams p;
  p.k = 4;
  p.sw = make_scheme(SchemeKind::kDcp).sw;
  FatTreeTopology t = build_fattree(f.net, p);
  EXPECT_EQ(f.net.path_info(t.hosts[0]->id(), t.hosts[1]->id()).hops, 2);   // same edge
  EXPECT_EQ(f.net.path_info(t.hosts[0]->id(), t.hosts[2]->id()).hops, 4);   // same pod
  EXPECT_EQ(f.net.path_info(t.hosts[0]->id(), t.hosts[15]->id()).hops, 6);  // cross pod
}

TEST(FatTree, DcpTrafficFlowsAcrossPods) {
  Fixture f;
  FatTreeParams p;
  p.k = 4;
  p.sw = make_scheme(SchemeKind::kDcp).sw;
  FatTreeTopology t = build_fattree(f.net, p);
  apply_scheme(f.net, make_scheme(SchemeKind::kDcp));

  FlowGenParams fg;
  fg.num_flows = 40;
  fg.load = 0.3;
  generate_poisson_flows(f.net, t.hosts, SizeDist::websearch(), fg);
  f.net.run_until_done(seconds(10));
  EXPECT_TRUE(f.net.all_flows_done());
  EXPECT_EQ(f.net.total_switch_stats().no_route, 0u);
}

TEST(FatTree, SurvivesCoreFailure) {
  Fixture f;
  FatTreeParams p;
  p.k = 4;
  p.sw = make_scheme(SchemeKind::kDcp).sw;
  FatTreeTopology t = build_fattree(f.net, p);
  apply_scheme(f.net, make_scheme(SchemeKind::kDcp));

  FlowSpec spec;
  spec.src = t.hosts[0]->id();
  spec.dst = t.hosts[15]->id();
  spec.bytes = 4'000'000;
  spec.msg_bytes = 512 * 1024;
  const FlowId id = f.net.start_flow(spec);
  f.sim.schedule(microseconds(50), [&] {
    // Kill core 0 and withdraw the agg uplinks toward it.
    for (std::uint32_t port = 0; port < t.core[0]->num_ports(); ++port) {
      t.core[0]->set_link_up(port, false);
    }
    for (int pod = 0; pod < 4; ++pod) {
      // agg a=0's first core uplink leads to core 0 (ports: 2 edge links
      // then 2 core links).
      t.agg[static_cast<std::size_t>(pod)][0]->set_link_up(2, false);
    }
  });
  f.net.run_until_done(seconds(5));
  ASSERT_TRUE(f.net.record(id).complete());
  EXPECT_EQ(f.net.record(id).receiver.bytes_received, 4'000'000u);
}

TEST(SizeDistExtra, DataminingShape) {
  const SizeDist dm = SizeDist::datamining();
  EXPECT_NEAR(dm.cdf_at(10'000), 0.80, 0.01);
  EXPECT_NEAR(dm.cdf_at(1'000'000), 0.90, 0.01);
  // Heavy tail: the mean dwarfs the median.
  Rng rng(3);
  std::uint64_t median_ish = dm.sample(rng);
  (void)median_ish;
  EXPECT_GT(dm.mean_bytes(), 5'000'000.0);
}

}  // namespace
}  // namespace dcp
