// Behavioural tests for the baseline transports: GBN go-back semantics,
// IRN selective repeat + loss-recovery mode, timeout-only recovery,
// RACK-TLP loss detection, and MP-RDMA multipath windowing.

#include <gtest/gtest.h>

#include "harness/scheme.h"
#include "topo/clos.h"
#include "topo/dumbbell.h"
#include "topo/testbed.h"
#include "transports/irn.h"
#include "transports/mprdma.h"

namespace dcp {
namespace {

struct Fixture {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  Star star;

  Fixture(SchemeKind kind, double loss, int hosts = 3) {
    SchemeSetup s = make_scheme(kind);
    s.sw.inject_loss_rate = loss;
    star = build_star(net, hosts, s.sw);
    apply_scheme(net, s);
  }

  FlowId flow(int from, int to, std::uint64_t bytes) {
    FlowSpec spec;
    spec.src = star.hosts[static_cast<std::size_t>(from)]->id();
    spec.dst = star.hosts[static_cast<std::size_t>(to)]->id();
    spec.bytes = bytes;
    return net.start_flow(spec);
  }
};

TEST(Gbn, LossCausesFullWindowRetransmissions) {
  Fixture f(SchemeKind::kCx5, 0.02);
  const FlowId id = f.flow(0, 2, 1'000'000);
  f.net.run_until_done(seconds(2));
  const FlowRecord& rec = f.net.record(id);
  ASSERT_TRUE(rec.complete());
  // GBN resends everything after the loss point: retransmissions far
  // exceed the ~20 packets actually lost.
  EXPECT_GT(rec.sender.retransmitted_packets, 40u);
  EXPECT_GT(rec.receiver.duplicate_packets + rec.receiver.out_of_order_packets, 0u);
}

TEST(Gbn, CleanPathSendsExactlyOncePerPacket) {
  Fixture f(SchemeKind::kCx5, 0.0);
  const FlowId id = f.flow(0, 2, 500'000);
  f.net.run_until_done(seconds(1));
  const FlowRecord& rec = f.net.record(id);
  ASSERT_TRUE(rec.complete());
  EXPECT_EQ(rec.sender.retransmitted_packets, 0u);
  EXPECT_EQ(rec.sender.data_packets_sent, 500u);
}

TEST(Irn, SelectiveRepeatRetransmitsOnlyLosses) {
  Fixture f(SchemeKind::kIrn, 0.02);
  const FlowId id = f.flow(0, 2, 1'000'000);
  f.net.run_until_done(seconds(2));
  const FlowRecord& rec = f.net.record(id);
  ASSERT_TRUE(rec.complete());
  // 2% of 1000 packets ~ 20 losses; selective repeat stays near that, far
  // below GBN's full-window resends.
  EXPECT_LT(rec.sender.retransmitted_packets, 80u);
  EXPECT_GT(rec.sender.retransmitted_packets, 0u);
  EXPECT_EQ(rec.receiver.bytes_received, 1'000'000u);
}

TEST(Irn, TailLossNeedsRto) {
  // Single-packet flow whose only packet is lost: no SACK can ever be
  // generated, so recovery must come from a timeout (§2.2 Issue #2).
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  SchemeSetup s = make_scheme(SchemeKind::kIrn);
  // Drop the very first data packet deterministically via 100% loss, then
  // heal the switch so the retransmission gets through.
  s.sw.inject_loss_rate = 1.0;
  Star star = build_star(net, 2, s.sw);
  apply_scheme(net, s);
  FlowSpec spec;
  spec.src = star.hosts[0]->id();
  spec.dst = star.hosts[1]->id();
  spec.bytes = 800;
  const FlowId id = net.start_flow(spec);
  sim.run(microseconds(50));
  star.sw->config().inject_loss_rate = 0.0;
  net.run_until_done(seconds(1));
  const FlowRecord& rec = net.record(id);
  ASSERT_TRUE(rec.complete());
  EXPECT_GE(rec.sender.timeouts, 1u);
}

TEST(Irn, SpuriousRetransmissionsUnderReordering) {
  // Reordering without loss: on a CLOS, the leaf's AR decision sees only
  // its uplink queues, not the spine *downlink* queues, so consecutive
  // packets routed via different spines can overtake each other.  IRN's
  // SACK logic misreads the OOO arrivals as loss (paper Fig. 1).
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  SchemeSetup s = make_scheme(SchemeKind::kIrn);  // AR by default
  ClosParams cp;
  cp.spines = 4;
  cp.leaves = 4;
  cp.hosts_per_leaf = 4;
  cp.sw = s.sw;
  ClosTopology topo = build_clos(net, cp);
  apply_scheme(net, s);
  std::vector<FlowId> ids;
  // Several racks converge on rack 0: spine downlinks toward leaf 0 queue
  // unevenly.
  for (int i = 0; i < 8; ++i) {
    FlowSpec spec;
    spec.src = topo.hosts[static_cast<std::size_t>(4 + i)]->id();  // racks 1-2
    spec.dst = topo.hosts[static_cast<std::size_t>(i % 4)]->id();  // rack 0
    spec.bytes = 2'000'000;
    ids.push_back(net.start_flow(spec));
  }
  net.run_until_done(seconds(2));
  std::uint64_t retx = 0, dups = 0, drops = 0;
  for (FlowId id : ids) {
    const FlowRecord& rec = net.record(id);
    ASSERT_TRUE(rec.complete());
    retx += rec.sender.retransmitted_packets;
    dups += rec.receiver.duplicate_packets;
    drops += 0;
  }
  drops = net.total_switch_stats().dropped_data + net.total_switch_stats().injected_drops;
  EXPECT_EQ(drops, 0u);  // no packet was actually lost...
  EXPECT_GT(retx, 0u);   // ...yet IRN retransmitted
  // Nearly every retransmission is spurious (a small tail is still in
  // flight when the sender-side stats snapshot is taken).
  EXPECT_GT(dups, retx * 9 / 10);
}

TEST(Timeout, RecoversOnlyViaRto) {
  Fixture f(SchemeKind::kTimeout, 0.02);
  const FlowId id = f.flow(0, 2, 500'000);
  f.net.run_until_done(seconds(2));
  const FlowRecord& rec = f.net.record(id);
  ASSERT_TRUE(rec.complete());
  EXPECT_GE(rec.sender.timeouts, 1u);
}

TEST(RackTlp, RecoversWithoutRtoUnderScatteredLoss) {
  Fixture f(SchemeKind::kRackTlp, 0.01);
  const FlowId id = f.flow(0, 2, 1'000'000);
  f.net.run_until_done(seconds(2));
  const FlowRecord& rec = f.net.record(id);
  ASSERT_TRUE(rec.complete());
  // RACK detects losses via later deliveries; RTOs should be rare.
  EXPECT_LE(rec.sender.timeouts, 1u);
  EXPECT_GT(rec.sender.retransmitted_packets, 0u);
}

TEST(MpRdma, SpraysAcrossVirtualPaths) {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  SchemeSetup s = make_scheme(SchemeKind::kMpRdma);
  TestbedParams tb;
  tb.sw = s.sw;
  TestbedTopology topo = build_testbed(net, tb);
  apply_scheme(net, s);
  FlowSpec spec;
  spec.src = topo.hosts[0]->id();
  spec.dst = topo.hosts[8]->id();
  spec.bytes = 4'000'000;
  const FlowId id = net.start_flow(spec);
  net.run_until_done(seconds(2));
  ASSERT_TRUE(net.record(id).complete());
  int used = 0;
  for (std::uint32_t p = 8; p < topo.sw1->num_ports(); ++p) {
    if (topo.sw1->port(p).stats().tx_packets > 50) ++used;
  }
  EXPECT_GE(used, 4);  // one flow spread over many cross links
}

TEST(MpRdma, EcnShrinksWindow) {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  SchemeSetup s = make_scheme(SchemeKind::kMpRdma);
  s.sw.ecn_kmin_bytes = 5'000;  // mark aggressively
  s.sw.ecn_kmax_bytes = 20'000;
  s.sw.ecn_pmax = 1.0;
  Star star = build_star(net, 4, s.sw);
  apply_scheme(net, s);
  std::vector<FlowId> ids;
  for (int i = 0; i < 3; ++i) {
    FlowSpec spec;
    spec.src = star.hosts[static_cast<std::size_t>(i)]->id();
    spec.dst = star.hosts[3]->id();
    spec.bytes = 2'000'000;
    ids.push_back(net.start_flow(spec));
  }
  // Let congestion develop, then inspect a live window.
  sim.run(microseconds(300));
  auto* snd = dynamic_cast<MpRdmaSender*>(net.host(star.hosts[0]->id())->sender(ids[0]));
  ASSERT_NE(snd, nullptr);
  const double bdp_pkts = 100'000.0 / 1000.0;
  EXPECT_LT(snd->cwnd_pkts(), bdp_pkts);  // shrunk below initial window
  net.run_until_done(seconds(2));
  for (FlowId id : ids) ASSERT_TRUE(net.record(id).complete());
}

}  // namespace
}  // namespace dcp
