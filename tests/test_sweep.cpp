// The parallel sweep engine: results are indexed by trial (never by
// completion order), every trial runs exactly once, DCP_JOBS semantics
// hold, and — the property the whole evaluation suite rests on — a sweep
// run with 8 workers is bit-identical to the same sweep run serially.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "harness/experiment.h"
#include "harness/sweep.h"

namespace dcp {
namespace {

TEST(Sweep, ResultsIndexedByTrialNotCompletionOrder) {
  SweepRunner pool(4);
  pool.set_progress(false);
  // Trials finish in scrambled order (later indices do less work), but the
  // results vector must still map i -> f(i).
  const std::vector<std::size_t> out = pool.run(64, [](std::size_t i) {
    volatile std::size_t spin = (64 - i) * 1000;
    while (spin > 0) --spin;
    return i * i;
  });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Sweep, EveryTrialRunsExactlyOnce) {
  SweepRunner pool(8);
  pool.set_progress(false);
  std::vector<std::atomic<int>> hits(100);
  pool.run_indexed(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << "trial " << i;
}

TEST(Sweep, SingleJobRunsEverythingOnCallerThread) {
  SweepRunner pool(1);
  pool.set_progress(false);
  const std::thread::id caller = std::this_thread::get_id();
  const std::vector<bool> on_caller =
      pool.run(16, [&](std::size_t) { return std::this_thread::get_id() == caller; });
  for (bool b : on_caller) EXPECT_TRUE(b);
}

TEST(Sweep, PoolIsReusableAcrossSweeps) {
  SweepRunner pool(4);
  pool.set_progress(false);
  for (int round = 0; round < 3; ++round) {
    const std::vector<int> out =
        pool.run(10, [round](std::size_t i) { return round * 100 + static_cast<int>(i); });
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], round * 100 + static_cast<int>(i));
    }
  }
}

TEST(Sweep, WorkerStatsCoverAllTrials) {
  SweepRunner pool(4);
  pool.set_progress(false);
  pool.run_indexed(33, [](std::size_t) {});
  std::uint64_t total = 0;
  for (const SweepRunner::WorkerStats& ws : pool.worker_stats()) total += ws.trials;
  EXPECT_EQ(total, 33u);
  EXPECT_EQ(pool.worker_stats().size(), 4u);
}

TEST(Sweep, HandlesMoreJobsThanTrials) {
  SweepRunner pool(8);
  pool.set_progress(false);
  const std::vector<int> out = pool.run(3, [](std::size_t i) { return static_cast<int>(i) + 1; });
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(Sweep, ZeroTrialsIsANoOp) {
  SweepRunner pool(4);
  pool.set_progress(false);
  pool.run_indexed(0, [](std::size_t) { FAIL() << "no trial should run"; });
}

TEST(SweepJobs, EnvOverrideAndClamp) {
  ASSERT_EQ(setenv("DCP_JOBS", "6", 1), 0);
  EXPECT_EQ(sweep_jobs(), 6u);
  ASSERT_EQ(setenv("DCP_JOBS", "1", 1), 0);
  EXPECT_EQ(sweep_jobs(), 1u);
  ASSERT_EQ(setenv("DCP_JOBS", "0", 1), 0);
  EXPECT_EQ(sweep_jobs(), 1u);  // < 1 clamps to serial
  ASSERT_EQ(unsetenv("DCP_JOBS"), 0);
  EXPECT_GE(sweep_jobs(), 1u);  // hardware_concurrency fallback
}

TEST(SweepAggregator, ConcurrentAddsSumExactly) {
  CorePerfAggregator agg;
  SweepRunner pool(8);
  pool.set_progress(false);
  pool.run_indexed(200, [&](std::size_t i) {
    CorePerf p;
    p.events_processed = i;
    p.wall_seconds = 0.5;
    p.pool_acquires = 2 * i;
    p.pool_slots = i;  // max-merged
    p.event_slots = 7;
    agg.add(p);
  });
  const CorePerf total = agg.total();
  EXPECT_EQ(agg.trials(), 200u);
  EXPECT_EQ(total.events_processed, 199u * 200u / 2);
  EXPECT_DOUBLE_EQ(total.wall_seconds, 100.0);
  EXPECT_EQ(total.pool_acquires, 199u * 200u);
  EXPECT_EQ(total.pool_slots, 199u);
  EXPECT_EQ(total.event_slots, 7u);
}

// ---------------------------------------------------------------------------
// The determinism regression the evaluation suite rests on: a Fig 17-style
// scheme x loss matrix gives bit-identical measurements whether it runs
// serially or across 8 workers.
// ---------------------------------------------------------------------------

struct TrialDigest {
  double goodput = 0.0;
  Time elapsed = 0;
  bool completed = false;
  std::uint64_t retransmitted = 0;
  std::uint64_t events = 0;

  bool operator==(const TrialDigest&) const = default;
};

std::vector<TrialDigest> fig17_matrix(unsigned jobs) {
  const SchemeKind kinds[] = {SchemeKind::kDcp, SchemeKind::kRackTlp, SchemeKind::kIrn,
                              SchemeKind::kTimeout};
  const double rates[] = {0.0, 0.005, 0.02};

  struct Trial {
    SchemeKind k;
    double rate;
  };
  std::vector<Trial> trials;
  for (double rate : rates) {
    for (SchemeKind k : kinds) trials.push_back({k, rate});
  }

  SweepRunner pool(jobs);
  pool.set_progress(false);
  return pool.run(trials.size(), [&](std::size_t i) {
    LongFlowParams p;
    p.scheme = trials[i].k;
    p.loss_rate = trials[i].rate;
    p.flow_bytes = 2ull * 1000 * 1000;
    p.max_time = milliseconds(20);
    const LongFlowResult r = run_long_flow(p);
    TrialDigest d;
    d.goodput = r.goodput_gbps;
    d.elapsed = r.elapsed;
    d.completed = r.completed;
    d.retransmitted = r.sender.retransmitted_packets;
    d.events = r.core.events_processed;
    return d;
  });
}

TEST(SweepDeterminism, Fig17MatrixBitIdenticalAcrossJobCounts) {
  const std::vector<TrialDigest> serial = fig17_matrix(1);
  const std::vector<TrialDigest> parallel = fig17_matrix(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "trial " << i;
  }
  // The matrix did real work: at least one trial saw loss and recovered.
  bool any_retx = false;
  for (const TrialDigest& d : serial) any_retx = any_retx || d.retransmitted > 0;
  EXPECT_TRUE(any_retx);
}

TEST(SweepDeterminism, FaultDrillMatrixBitIdenticalAcrossJobCounts) {
  // The robustness-bench shape: fault kind x scheme cells, each a fault
  // drill with its own injector + recovery collector.  Fault RNG streams
  // are per-trial state, so DCP_JOBS=8 must reproduce DCP_JOBS=1 exactly.
  auto matrix = [](unsigned jobs) {
    const SchemeKind kinds[] = {SchemeKind::kDcp, SchemeKind::kIrn};
    const FaultKind faults[] = {FaultKind::kDrop, FaultKind::kLinkFlap, FaultKind::kHoLoss};
    SweepRunner pool(jobs);
    pool.set_progress(false);
    return pool.run(6, [&](std::size_t i) {
      FaultDrillParams p;
      p.scheme = kinds[i % 2];
      p.flow_bytes = 2ull * 1000 * 1000;
      p.max_time = milliseconds(50);
      FaultAction a;
      a.kind = faults[i / 2];
      a.at = microseconds(100);
      a.duration = microseconds(200);
      a.rate = 0.02;
      a.sw = 0;
      if (a.kind == FaultKind::kLinkFlap) a.port = 0;
      p.faults.actions.push_back(a);
      const FaultDrillResult r = run_fault_drill(p);
      TrialDigest d;
      d.goodput = r.goodput_gbps;
      d.elapsed = r.elapsed;
      d.completed = r.completed;
      d.retransmitted = r.sender.retransmitted_packets;
      d.events = r.core.events_processed;
      return d;
    });
  };
  const std::vector<TrialDigest> serial = matrix(1);
  const std::vector<TrialDigest> parallel = matrix(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "trial " << i;
  }
}

TEST(SweepDeterminism, WebsearchSweepMatchesSerial) {
  auto sweep = [](unsigned jobs) {
    const std::uint64_t seeds[] = {11, 23};
    const SchemeKind kinds[] = {SchemeKind::kDcp, SchemeKind::kIrn};
    SweepRunner pool(jobs);
    pool.set_progress(false);
    return pool.run(4, [&](std::size_t i) {
      WebSearchParams p;
      p.scheme = kinds[i % 2];
      p.seed = seeds[i / 2];
      p.clos.spines = 2;
      p.clos.leaves = 2;
      p.clos.hosts_per_leaf = 4;
      p.load = 0.4;
      p.num_flows = 100;
      const WebSearchResult r = run_websearch(p);
      return std::pair<std::uint64_t, std::size_t>(r.core.events_processed, r.flows_completed);
    });
  };
  EXPECT_EQ(sweep(1), sweep(4));
}

}  // namespace
}  // namespace dcp
