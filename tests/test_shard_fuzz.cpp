// Oracle-armed fuzz under sharding: 200 random scenarios run with
// DCP_SHARDS=4 must produce verdicts identical to the serial run, with
// every invariant in the catalogue armed on every shard's simulator.
// Scenarios whose fault plans have effect silently fall back to serial
// inside run_fuzz_scenario — their digests then match trivially, which is
// exactly the escape-hatch contract.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "check/fuzzer.h"

namespace dcp {
namespace {

class ScopedShardsEnv {
 public:
  explicit ScopedShardsEnv(int shards) {
    const char* prev = std::getenv("DCP_SHARDS");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    setenv("DCP_SHARDS", std::to_string(shards).c_str(), 1);
  }
  ~ScopedShardsEnv() {
    if (had_prev_) {
      setenv("DCP_SHARDS", prev_.c_str(), 1);
    } else {
      unsetenv("DCP_SHARDS");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

struct FuzzDigest {
  bool violated = false;
  std::string invariant;
  Time at = 0;
  std::size_t num_violations = 0;
  bool all_complete = false;

  bool operator==(const FuzzDigest&) const = default;
};

std::vector<FuzzDigest> fuzz_batch(int shards) {
  ScopedShardsEnv env(shards);
  std::vector<FuzzDigest> out;
  for (std::size_t i = 0; i < 200; ++i) {
    const FuzzScenario s = generate_fuzz_scenario(/*seed=*/2000 + i);
    const FuzzVerdict v = run_fuzz_scenario(s);
    out.push_back(FuzzDigest{v.violated, v.invariant, v.at, v.num_violations, v.all_complete});
  }
  return out;
}

TEST(ShardFuzz, TwoHundredSeedsCleanAndIdenticalToSerial) {
  const std::vector<FuzzDigest> sharded = fuzz_batch(4);
  const std::vector<FuzzDigest> serial = fuzz_batch(1);
  ASSERT_EQ(sharded.size(), serial.size());
  for (std::size_t i = 0; i < sharded.size(); ++i) {
    EXPECT_EQ(sharded[i], serial[i]) << "seed " << 2000 + i;
    EXPECT_FALSE(sharded[i].violated) << "seed " << 2000 + i << ": " << sharded[i].invariant;
  }
}

}  // namespace
}  // namespace dcp
