// Unit + property tests for the three packet-tracking structures of §4.5.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/tracking.h"
#include "sim/rng.h"

namespace dcp {
namespace {

TEST(BdpBitmap, ConstantTwoStepAccess) {
  BdpBitmapTracker t(512);
  EXPECT_EQ(t.on_packet(0), 2);
  EXPECT_EQ(t.on_packet(511), 2);
  EXPECT_EQ(t.on_packet(63), 2);
}

TEST(BdpBitmap, MarksAndClears) {
  BdpBitmapTracker t(128);
  EXPECT_FALSE(t.is_received(5));
  t.on_packet(5);
  EXPECT_TRUE(t.is_received(5));
  t.advance_head(10);
  // Slot 5 recycled for PSN 133 (5 + 128).
  EXPECT_FALSE(t.is_received(133));
  t.on_packet(133);
  EXPECT_TRUE(t.is_received(133));
}

TEST(BdpBitmap, MemoryIsWindowBits) {
  BdpBitmapTracker t(512);
  EXPECT_EQ(t.memory_bytes(), 512u / 8);
}

TEST(LinkedChunk, StepsGrowWithOooDegree) {
  LinkedChunkTracker t;
  const int near = t.on_packet(0);
  LinkedChunkTracker t2;
  const int far = t2.on_packet(10 * LinkedChunkTracker::kChunkBits);
  EXPECT_LT(near, far);
  EXPECT_EQ(far - near, 10);  // one pointer chase per chunk
}

TEST(LinkedChunk, MemoryGrowsAndShrinksWithWindow) {
  LinkedChunkTracker t;
  const auto base = t.memory_bytes();
  t.on_packet(5 * LinkedChunkTracker::kChunkBits);
  EXPECT_GT(t.memory_bytes(), base);
  t.advance_head(5 * LinkedChunkTracker::kChunkBits);
  EXPECT_LT(t.memory_bytes(), 5 * base);
}

TEST(LinkedChunk, TracksBitsCorrectlyAcrossChunks) {
  LinkedChunkTracker t;
  for (std::uint32_t psn : {0u, 127u, 128u, 300u, 511u}) {
    EXPECT_FALSE(t.is_received(psn));
    t.on_packet(psn);
    EXPECT_TRUE(t.is_received(psn)) << psn;
  }
  EXPECT_FALSE(t.is_received(1));
  EXPECT_FALSE(t.is_received(129));
}

TEST(MessageCounter, CompletesExactlyAtMessageSize) {
  MessageCounterTracker t({3, 2}, 8);
  EXPECT_FALSE(t.message_complete(0));
  t.count_packet(0);
  t.count_packet(0);
  EXPECT_FALSE(t.message_complete(0));
  t.count_packet(0);
  EXPECT_TRUE(t.message_complete(0));
  EXPECT_EQ(t.emsn(), 1u);
}

TEST(MessageCounter, OutOfOrderMessageCompletionHoldsEmsn) {
  MessageCounterTracker t({2, 2, 2}, 8);
  // Complete message 1 first; eMSN must stay 0 (in-order CQE delivery).
  t.count_packet(1);
  t.count_packet(1);
  EXPECT_TRUE(t.message_complete(1));
  EXPECT_EQ(t.emsn(), 0u);
  t.count_packet(0);
  t.count_packet(0);
  // Completing 0 releases both 0 and 1.
  EXPECT_EQ(t.emsn(), 2u);
}

TEST(MessageCounter, RejectsOutOfWindowAndStale) {
  MessageCounterTracker t(std::vector<std::uint32_t>(20, 1), 4);
  EXPECT_FALSE(t.count_packet(7));  // beyond eMSN + outstanding
  t.count_packet(0);
  EXPECT_EQ(t.emsn(), 1u);
  EXPECT_FALSE(t.count_packet(0));  // below eMSN: stale
}

TEST(MessageCounter, ResetRestartsCounting) {
  MessageCounterTracker t({3}, 8);
  t.count_packet(0);
  t.count_packet(0);
  t.reset_message(0);
  t.count_packet(0);
  t.count_packet(0);
  EXPECT_FALSE(t.message_complete(0));
  t.count_packet(0);
  EXPECT_TRUE(t.message_complete(0));
}

TEST(MessageCounter, ConstantSingleStep) {
  MessageCounterTracker t(std::vector<std::uint32_t>(64, 1000), 8);
  EXPECT_EQ(t.on_packet(0), 1);
  EXPECT_EQ(t.on_packet(999), 1);
}

TEST(MessageCounter, MemoryIsTwoBytesPerTrackedMessage) {
  MessageCounterTracker t(std::vector<std::uint32_t>(100, 5), 8);
  EXPECT_EQ(t.memory_bytes(), 16u);  // paper: 2 B per message × 8
}

TEST(PacketRateModel, MatchesClockOverSteps) {
  EXPECT_DOUBLE_EQ(packet_rate_mpps(300.0, 2.0), 150.0);
  EXPECT_DOUBLE_EQ(packet_rate_mpps(300.0, 1.0), 300.0);
}

// ---------------------------------------------------------------------------
// Property: under any random arrival order, the bitmap-free tracker reports
// message completion exactly when a reference per-packet bitmap does.
// ---------------------------------------------------------------------------

class TrackerEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrackerEquivalence, MessageCompletionMatchesReferenceBitmap) {
  Rng rng(GetParam());
  const std::uint32_t num_msgs = 1 + static_cast<std::uint32_t>(rng.uniform_int(1, 6));
  std::vector<std::uint32_t> msg_pkts;
  std::uint32_t total = 0;
  for (std::uint32_t m = 0; m < num_msgs; ++m) {
    msg_pkts.push_back(1 + static_cast<std::uint32_t>(rng.uniform_int(0, 9)));
    total += msg_pkts.back();
  }
  MessageCounterTracker dcp_tracker(msg_pkts, 8);

  // Reference: exact per-packet bitmap.
  std::vector<bool> ref(total, false);
  auto msg_of = [&](std::uint32_t psn) {
    std::uint32_t acc = 0;
    for (std::uint32_t m = 0; m < num_msgs; ++m) {
      acc += msg_pkts[m];
      if (psn < acc) return m;
    }
    return num_msgs - 1;
  };
  auto ref_msg_complete = [&](std::uint32_t m) {
    std::uint32_t start = 0;
    for (std::uint32_t i = 0; i < m; ++i) start += msg_pkts[i];
    for (std::uint32_t p = start; p < start + msg_pkts[m]; ++p) {
      if (!ref[p]) return false;
    }
    return true;
  };

  // Exactly-once random-order delivery (the lossless-CP guarantee).
  std::vector<std::uint32_t> order(total);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());

  for (std::uint32_t psn : order) {
    const std::uint32_t m = msg_of(psn);
    ref[psn] = true;
    dcp_tracker.count_packet(m);
    for (std::uint32_t q = 0; q < num_msgs; ++q) {
      // Within the active window the two views must agree exactly.
      if (q >= dcp_tracker.emsn() && q < dcp_tracker.emsn() + 8) {
        EXPECT_EQ(dcp_tracker.message_complete(q), ref_msg_complete(q))
            << "msg " << q << " seed " << GetParam();
      }
    }
  }
  EXPECT_EQ(dcp_tracker.emsn(), num_msgs);
}

INSTANTIATE_TEST_SUITE_P(RandomOrders, TrackerEquivalence, ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace dcp
