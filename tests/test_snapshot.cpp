// Deterministic checkpoint/restore (sim/snapshot.h, harness/checkpoint.h):
// a run resumed from a snapshot at time T must be BIT-IDENTICAL to the run
// that never stopped — same WorldDigest (per-flow completion stamps and
// stats, switch counters) and same events_processed — across every
// snapshottable scheme, serial and sharded event cores, lane-coalesced and
// per-packet heaps, devirtualized and virtual dispatch.  Also covers
// re-save byte-equality (save(restore(img)) == img), the TcpLite
// unsupported-scheme refusal, warm-booted sweeps, a 200-seed oracle-armed
// fuzz batch through the restore path, and snapshot-accelerated ddmin
// shrink equivalence on the injected-bug needle.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "check/broken.h"
#include "check/fuzzer.h"
#include "harness/checkpoint.h"
#include "harness/sweep.h"

namespace dcp {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* prev = std::getenv(name);
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_prev_) {
      setenv(name_, prev_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_prev_ = false;
  std::string prev_;
};

constexpr SchemeKind kSnapshottable[] = {
    SchemeKind::kPfc,     SchemeKind::kIrn,  SchemeKind::kIrnEcmp,
    SchemeKind::kMpRdma,  SchemeKind::kDcp,  SchemeKind::kCx5,
    SchemeKind::kTimeout, SchemeKind::kRackTlp, SchemeKind::kFec};

FuzzScenario clean_scenario(SchemeKind k) {
  FuzzScenario s;
  s.seed = 42;
  s.scheme = k;
  s.spines = 2;
  s.leaves = 4;
  s.hosts_per_leaf = 2;
  s.max_time = milliseconds(5);
  s.flows = {
      {0, 5, 64 * 1024, 4096, microseconds(5)},
      {2, 7, 24 * 1024, 0, microseconds(20)},
      {6, 1, 96 * 1024, 16384, microseconds(40)},
      {4, 3, 8 * 1024, 4096, microseconds(120)},
  };
  return s;
}

FuzzScenario faulted_scenario(SchemeKind k) {
  FuzzScenario s = clean_scenario(k);
  auto add = [&](FaultKind kind, double at_us, double dur_us, double rate) {
    FaultAction a;
    a.kind = kind;
    a.at = microseconds(at_us);
    a.duration = microseconds(dur_us);
    a.rate = rate;
    s.faults.actions.push_back(a);
  };
  add(FaultKind::kDrop, 30, 120, 0.05);
  add(FaultKind::kHoLoss, 50, 80, 0.3);
  add(FaultKind::kCorrupt, 80, 60, 0.02);
  s.faults.actions.push_back([] {
    FaultAction a;
    a.kind = FaultKind::kLinkFlap;
    a.at = microseconds(70);
    a.duration = microseconds(50);
    a.drop_in_flight = true;
    a.sw = 2;  // a leaf
    return a;
  }());
  s.faults.actions.push_back([] {
    FaultAction a;
    a.kind = FaultKind::kBufferShrink;
    a.at = microseconds(45);
    a.duration = microseconds(150);
    a.frac = 0.3;
    return a;
  }());
  return s;
}

WorldSpec spec_for(const FuzzScenario& s) { return fuzz_world_spec(s, FuzzOptions{}); }

WorldDigest cold_digest(const WorldSpec& ws) {
  SimWorld w(ws);
  w.run_until_done();
  return w.digest();
}

/// Pauses a run at T, snapshots, restores into a FRESH world, finishes it,
/// and returns the resumed digest.  Also asserts re-save byte-equality:
/// saving the restored world again must reproduce the image exactly.
WorldDigest resumed_digest(const WorldSpec& ws, Time t, const char* what) {
  SimWorld a(ws);
  a.run_to(t);
  SnapshotImage img;
  std::string err;
  EXPECT_TRUE(a.save(img, &err)) << what << ": save failed: " << err;

  SimWorld b(ws);
  EXPECT_TRUE(b.restore(img, /*allow_spec_delta=*/false, &err))
      << what << ": restore failed: " << err;

  SnapshotImage resaved;
  EXPECT_TRUE(b.save(resaved, &err)) << what << ": re-save failed: " << err;
  EXPECT_TRUE(img == resaved) << what << ": re-save is not byte-identical (state "
                              << img.state.size() << " vs " << resaved.state.size()
                              << " bytes)";

  b.run_until_done();
  return b.digest();
}

// ---------------------------------------------------------------------------

TEST(Snapshot, CleanResumeBitIdenticalAcrossSchemes) {
  for (SchemeKind k : kSnapshottable) {
    const WorldSpec ws = spec_for(clean_scenario(k));
    const WorldDigest cold = cold_digest(ws);
    ASSERT_GT(cold.events, 0u);
    for (double t_us : {15.0, 60.0, 200.0}) {
      const WorldDigest warm = resumed_digest(ws, microseconds(t_us), scheme_name(k));
      EXPECT_EQ(cold.value, warm.value)
          << scheme_name(k) << ": digest drift after resume at " << t_us << "us";
      EXPECT_EQ(cold.events, warm.events)
          << scheme_name(k) << ": events_processed drift after resume at " << t_us << "us";
    }
  }
}

TEST(Snapshot, FaultedOracleArmedResumeBitIdentical) {
  for (SchemeKind k : kSnapshottable) {
    const FuzzScenario s = faulted_scenario(k);
    const WorldSpec ws = spec_for(s);

    SimWorld cold(ws);
    cold.run_until_done();
    const WorldDigest cd = cold.digest();
    const FuzzVerdict cv = cold.finalize_verdict();

    // T=60us sits inside every fault window of the plan: drop and buffer
    // shrink active, HO-loss just armed, the flap and corrupt still ahead.
    for (double t_us : {60.0, 130.0}) {
      SimWorld a(ws);
      a.run_to(microseconds(t_us));
      SnapshotImage img;
      std::string err;
      ASSERT_TRUE(a.save(img, &err)) << scheme_name(k) << ": " << err;

      SimWorld b(ws);
      ASSERT_TRUE(b.restore(img, false, &err)) << scheme_name(k) << ": " << err;
      b.run_until_done();
      const WorldDigest wd = b.digest();
      const FuzzVerdict wv = b.finalize_verdict();

      EXPECT_EQ(cd.value, wd.value) << scheme_name(k) << " at " << t_us << "us";
      EXPECT_EQ(cd.events, wd.events) << scheme_name(k) << " at " << t_us << "us";
      EXPECT_EQ(cv.violated, wv.violated) << scheme_name(k);
      EXPECT_EQ(cv.invariant, wv.invariant) << scheme_name(k);
      EXPECT_EQ(cv.num_violations, wv.num_violations) << scheme_name(k);
      EXPECT_EQ(cv.all_complete, wv.all_complete) << scheme_name(k);
    }
  }
}

TEST(Snapshot, ShardLanesDevirtMatrix) {
  // Fault-free scenario (fault plans force serial); leaves=4 admits 4
  // shards.  Every (shards, lanes, devirt) combination must resume
  // bit-identically to its own uninterrupted run.
  for (SchemeKind k : {SchemeKind::kDcp, SchemeKind::kIrn}) {
    const FuzzScenario s = clean_scenario(k);
    for (int shards : {1, 4}) {
      for (const char* lanes : {"0", "1"}) {
        for (const char* devirt : {"0", "1"}) {
          ScopedEnv e1("DCP_SHARDS", std::to_string(shards));
          ScopedEnv e2("DCP_LANES", lanes);
          ScopedEnv e3("DCP_DEVIRT", devirt);
          const WorldSpec ws = spec_for(s);
          const std::string what = std::string(scheme_name(k)) + " shards=" +
                                   std::to_string(shards) + " lanes=" + lanes +
                                   " devirt=" + devirt;
          const WorldDigest cold = cold_digest(ws);
          const WorldDigest warm = resumed_digest(ws, microseconds(75), what.c_str());
          EXPECT_EQ(cold.value, warm.value) << what;
          EXPECT_EQ(cold.events, warm.events) << what;
        }
      }
    }
  }
}

TEST(Snapshot, ShardedResumeMatchesSerialDigest) {
  // The sharded resume must agree not only with its own cold run but with
  // the serial world entirely (sharding is bit-identical by construction,
  // and snapshots must not break that).
  const FuzzScenario s = clean_scenario(SchemeKind::kDcp);
  WorldDigest serial;
  {
    ScopedEnv e("DCP_SHARDS", "1");
    serial = cold_digest(spec_for(s));
  }
  {
    ScopedEnv e("DCP_SHARDS", "4");
    const WorldDigest sharded = resumed_digest(spec_for(s), microseconds(75), "sharded");
    EXPECT_EQ(serial.value, sharded.value);
    EXPECT_EQ(serial.events, sharded.events);
  }
}

TEST(Snapshot, ImageEncodeDecodeRoundTrip) {
  const WorldSpec ws = spec_for(faulted_scenario(SchemeKind::kDcp));
  SimWorld w(ws);
  w.run_to(microseconds(90));
  SnapshotImage img;
  std::string err;
  ASSERT_TRUE(w.save(img, &err)) << err;
  ASSERT_FALSE(img.state.empty());

  const std::vector<std::uint8_t> bytes = img.encode();
  SnapshotImage back;
  ASSERT_TRUE(SnapshotImage::decode(bytes, back));
  EXPECT_TRUE(img == back);

  // Truncation and corruption must be rejected, not misparsed.
  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.end() - 9);
  EXPECT_FALSE(SnapshotImage::decode(truncated, back));
  std::vector<std::uint8_t> corrupt = bytes;
  corrupt[0] ^= 0xff;  // magic
  EXPECT_FALSE(SnapshotImage::decode(corrupt, back));
}

TEST(Snapshot, TcpSchemeRefusesSnapshot) {
  FuzzScenario s = clean_scenario(SchemeKind::kTcp);
  const WorldSpec ws = spec_for(s);
  SimWorld w(ws);
  w.run_to(microseconds(50));
  SnapshotImage img;
  std::string err;
  EXPECT_FALSE(w.save(img, &err));
  EXPECT_NE(err.find("not snapshottable"), std::string::npos) << err;
  // The refused world keeps running normally.
  w.run_until_done();
  EXPECT_TRUE(w.net().all_flows_done());
}

TEST(Snapshot, RestoreRefusesMismatchedSpec) {
  const WorldSpec ws = spec_for(faulted_scenario(SchemeKind::kDcp));
  SimWorld a(ws);
  a.run_to(microseconds(60));
  SnapshotImage img;
  std::string err;
  ASSERT_TRUE(a.save(img, &err)) << err;

  FuzzScenario other = faulted_scenario(SchemeKind::kDcp);
  other.flows[0].bytes += 1024;  // different world
  SimWorld b(spec_for(other));
  EXPECT_FALSE(b.restore(img, /*allow_spec_delta=*/false, &err));
  EXPECT_NE(err.find("fingerprint"), std::string::npos) << err;
}

TEST(Snapshot, WarmBootSweepMatchesColdRuns) {
  const WorldSpec ws = spec_for(clean_scenario(SchemeKind::kDcp));
  const WorldDigest cold = cold_digest(ws);

  WarmBoot wb(ws, microseconds(60));
  ASSERT_TRUE(wb.ok()) << wb.error();

  SweepRunner pool(4);
  pool.set_progress(false);
  auto digests = pool.run(8, [&](std::size_t) {
    std::string err;
    std::unique_ptr<SimWorld> w = wb.boot(&err);
    EXPECT_NE(w, nullptr) << err;
    if (w == nullptr) return WorldDigest{};
    w->run_until_done();
    return w->digest();
  });
  for (const WorldDigest& d : digests) {
    EXPECT_EQ(cold.value, d.value);
    EXPECT_EQ(cold.events, d.events);
  }
}

TEST(Snapshot, FuzzBatch200ThroughRestorePath) {
  // 200 oracle-armed random scenarios: whatever the seed draws (scheme,
  // topology, flows, faults), pausing at T and restoring into a fresh
  // world must reproduce the uninterrupted verdict and digest exactly.
  std::size_t restored = 0;
  for (std::uint64_t seed = 3000; seed < 3200; ++seed) {
    const FuzzScenario s = generate_fuzz_scenario(seed);
    const WorldSpec ws = spec_for(s);

    SimWorld cold(ws);
    cold.run_until_done();
    const WorldDigest cd = cold.digest();
    const FuzzVerdict cv = cold.finalize_verdict();

    SimWorld a(ws);
    a.run_to(microseconds(150));
    SnapshotImage img;
    std::string err;
    if (!a.save(img, &err)) {
      // TcpLite scenarios are the only legitimate refusal.
      EXPECT_EQ(s.scheme, SchemeKind::kTcp) << "seed " << seed << ": " << err;
      continue;
    }
    SimWorld b(ws);
    ASSERT_TRUE(b.restore(img, false, &err)) << "seed " << seed << ": " << err;
    b.run_until_done();
    const WorldDigest wd = b.digest();
    const FuzzVerdict wv = b.finalize_verdict();

    ASSERT_EQ(cd.value, wd.value) << "seed " << seed << " (" << scheme_name(s.scheme) << ")";
    ASSERT_EQ(cd.events, wd.events) << "seed " << seed;
    ASSERT_EQ(cv.violated, wv.violated) << "seed " << seed;
    ASSERT_EQ(cv.invariant, wv.invariant) << "seed " << seed;
    ASSERT_EQ(cv.all_complete, wv.all_complete) << "seed " << seed;
    ++restored;
  }
  // The batch must actually exercise the restore path, not skip everything.
  EXPECT_GE(restored, 150u);
}

// ---------------------------------------------------------------------------
// Snapshot-accelerated ddmin: shrinking with prefix snapshots must produce
// a byte-identical repro to cold shrinking, while executing at least 3x
// fewer simulation events (both counts are deterministic).

FuzzScenario needle_scenario() {
  // The injected duplicate-completion bug (BrokenDcpFactory) trips on the
  // first retransmitted data packet.  One essential wire-drop burst guts a
  // small late flow's initial transmission; the sender's coarse fallback
  // timer (quiet >= dcp_msg_timeout, backed off) eventually retransmits,
  // and the retry lands the violation at ~4.4ms.  A large clean bulk flow
  // packs ~19k events into the first ~320us — BEFORE every fault action,
  // so every ddmin probe's restore bound (min `at` over the removed chunk,
  // >= 398us) lets the snapshot ring skip that whole prefix.  49 late
  // low-rate chaff actions pad the plan to 50 entries; they share 7
  // distinct start times so the ring (<= 8 distinct boundaries) keeps a
  // snapshot at or before EVERY probe's bound.
  FuzzScenario s;
  s.seed = 7;
  s.scheme = SchemeKind::kDcp;
  s.spines = 1;
  s.leaves = 2;
  s.hosts_per_leaf = 2;
  s.max_time = milliseconds(8);
  s.flows = {{0, 2, 2 * 1024 * 1024, 0, microseconds(5)},  // bulk prefix
             {1, 3, 8192, 4096, microseconds(400)}};       // needle
  FaultAction drop;
  drop.kind = FaultKind::kDrop;
  drop.at = microseconds(398);
  drop.duration = microseconds(45);
  drop.rate = 0.95;
  s.faults.actions.push_back(drop);

  for (int i = 0; i < 49; ++i) {
    FaultAction chaff;
    chaff.kind = FaultKind::kDrop;
    chaff.at = microseconds(500.0 + 10.0 * (i % 7));
    chaff.duration = microseconds(5);
    chaff.rate = 0.001;
    s.faults.actions.push_back(chaff);
  }
  return s;
}

TEST(Snapshot, DdminShrinkEquivalentAndAtLeast3xCheaper) {
  FuzzOptions with, without;
  with.factory_override = std::make_shared<BrokenDcpFactory>();
  without.factory_override = with.factory_override;
  with.use_snapshots = true;
  without.use_snapshots = false;

  const FuzzScenario s = needle_scenario();
  const FuzzVerdict base = run_fuzz_scenario(s, with);
  ASSERT_TRUE(base.violated) << "needle scenario does not trip the injected bug";
  ASSERT_EQ(base.invariant, "exactly-once-completion") << base.message;

  ShrinkStats snap_st, cold_st;
  const FuzzScenario snap_min = shrink_fuzz_scenario(s, with, &snap_st);
  const FuzzScenario cold_min = shrink_fuzz_scenario(s, without, &cold_st);

  // Identical shrink decisions => identical minimal scenario and repro.
  EXPECT_TRUE(snap_min == cold_min);
  EXPECT_EQ(snap_st.runs, cold_st.runs);
  const FuzzVerdict sv = run_fuzz_scenario(snap_min, with);
  const FuzzVerdict cv = run_fuzz_scenario(cold_min, without);
  EXPECT_EQ(write_fuzz_repro(snap_min, sv), write_fuzz_repro(cold_min, cv));
  EXPECT_LE(snap_min.faults.actions.size(), 3u);

  // Cold shrink restores nothing.
  EXPECT_EQ(cold_st.events_skipped, 0u);
  // Snapshot shrink reaches the same verdicts while executing >= 3x fewer
  // events.  Cold total == snap executed + snap skipped: every restored
  // probe is bit-identical to its cold twin, so the skipped prefix events
  // are exactly the ones the cold shrink re-executes.
  EXPECT_EQ(cold_st.events_executed, snap_st.events_executed + snap_st.events_skipped);
  EXPECT_GE(cold_st.events_executed, 3 * snap_st.events_executed)
      << "snapshot ddmin executed " << snap_st.events_executed << " events, cold "
      << cold_st.events_executed << " (skipped " << snap_st.events_skipped << ")";
}

}  // namespace
}  // namespace dcp
