// Tests for the collective workloads: ring AllReduce dependencies and
// AllToAll fan-out.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "check/invariant_oracle.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "harness/scheme.h"
#include "topo/dumbbell.h"
#include "workload/collective.h"

namespace dcp {
namespace {

struct CollFixture {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  Star star;

  explicit CollFixture(int hosts) {
    SchemeSetup s = make_scheme(SchemeKind::kDcp);
    star = build_star(net, hosts, s.sw);
    apply_scheme(net, s);
  }

  CollectiveParams params(int n, std::uint64_t bytes) {
    CollectiveParams p;
    for (int i = 0; i < n; ++i) p.members.push_back(star.hosts[static_cast<std::size_t>(i)]->id());
    p.total_bytes = bytes;
    p.msg_bytes = 256 * 1024;
    return p;
  }
};

TEST(RingAllReduceTest, RunsAllStepsAndFinishes) {
  CollFixture f(4);
  RingAllReduce ar(f.net, f.params(4, 4 * 1024 * 1024));
  EXPECT_EQ(ar.steps(), 6);  // 2*(4-1)
  f.net.run_until_done(seconds(5));
  EXPECT_TRUE(ar.done());
  // 4 members x 6 steps = 24 flows of total/4 bytes each.
  EXPECT_EQ(ar.flows().size(), 24u);
  for (FlowId id : ar.flows()) {
    EXPECT_EQ(f.net.record(id).spec.bytes, 1024u * 1024);
    EXPECT_TRUE(f.net.record(id).complete());
  }
  EXPECT_GT(ar.jct(), 0);
}

TEST(RingAllReduceTest, StepDependenciesRespected) {
  CollFixture f(3);
  RingAllReduce ar(f.net, f.params(3, 3 * 1024 * 1024));
  f.net.run_until_done(seconds(5));
  ASSERT_TRUE(ar.done());
  // A member's step-s flow must start only after its step-(s-1) flow ended
  // (sender side); verify via record timestamps per (member = src host).
  std::map<NodeId, std::vector<const FlowRecord*>> by_src;
  for (FlowId id : ar.flows()) by_src[f.net.record(id).spec.src].push_back(&f.net.record(id));
  for (auto& [src, recs] : by_src) {
    std::sort(recs.begin(), recs.end(), [](const FlowRecord* a, const FlowRecord* b) {
      return a->spec.start_time < b->spec.start_time;
    });
    for (std::size_t i = 1; i < recs.size(); ++i) {
      EXPECT_GE(recs[i]->spec.start_time, recs[i - 1]->tx_done);
    }
  }
}

TEST(RingAllReduceTest, JctAboveIdealLowerBound) {
  CollFixture f(4);
  const auto p = f.params(4, 8 * 1024 * 1024);
  RingAllReduce ar(f.net, p);
  f.net.run_until_done(seconds(5));
  ASSERT_TRUE(ar.done());
  EXPECT_GE(ar.jct(), RingAllReduce::ideal_jct(p, Bandwidth::gbps(100)));
}

TEST(AllToAllTest, EveryPairGetsAFlow) {
  CollFixture f(4);
  AllToAll a2a(f.net, f.params(4, 4 * 1024 * 1024));
  f.net.run_until_done(seconds(5));
  EXPECT_TRUE(a2a.done());
  EXPECT_EQ(a2a.flows().size(), 12u);  // 4*3 ordered pairs
  std::set<std::pair<NodeId, NodeId>> pairs;
  for (FlowId id : a2a.flows()) {
    const auto& spec = f.net.record(id).spec;
    pairs.insert({spec.src, spec.dst});
  }
  EXPECT_EQ(pairs.size(), 12u);
}

TEST(AllToAllTest, IdealJctBelowMeasured) {
  CollFixture f(4);
  const auto p = f.params(4, 8 * 1024 * 1024);
  AllToAll a2a(f.net, p);
  f.net.run_until_done(seconds(5));
  ASSERT_TRUE(a2a.done());
  EXPECT_GE(a2a.jct(), AllToAll::ideal_jct(p, Bandwidth::gbps(100)));
}

// Oracle-armed collectives under an adverse fault plan: the invariant
// oracle (exactly-once completion, no stuck flows, monotonic stats) must
// stay green while DCP retries carry a RingAllReduce and an AllToAll
// through drops, HO loss, and a mid-collective link flap.
struct FaultedCollFixture : CollFixture {
  InvariantOracle oracle;
  FaultInjector inj;

  FaultedCollFixture(int hosts, FaultPlan plan, std::uint64_t seed)
      : CollFixture(hosts), oracle(net), inj(net, std::move(plan), seed) {}
};

FaultPlan adverse_plan() {
  FaultPlan plan;
  FaultAction drop;
  drop.kind = FaultKind::kDrop;
  drop.at = microseconds(10);
  drop.duration = microseconds(300);
  drop.rate = 0.05;
  plan.actions.push_back(drop);

  FaultAction ho;
  ho.kind = FaultKind::kHoLoss;
  ho.at = microseconds(50);
  ho.duration = microseconds(200);
  ho.rate = 0.25;
  plan.actions.push_back(ho);

  FaultAction flap;
  flap.kind = FaultKind::kLinkFlap;
  flap.at = microseconds(150);
  flap.duration = microseconds(40);
  flap.sw = 0;  // the star's single switch
  flap.port = 1;
  flap.drop_in_flight = true;
  plan.actions.push_back(flap);
  return plan;
}

TEST(CollectiveFaults, RingAllReduceSurvivesOracleArmed) {
  FaultedCollFixture f(4, adverse_plan(), /*seed=*/0xc011ec7);
  RingAllReduce ar(f.net, f.params(4, 2 * 1024 * 1024));
  f.net.run_until_done(seconds(5));
  ASSERT_TRUE(ar.done());
  for (FlowId id : ar.flows()) EXPECT_TRUE(f.net.record(id).complete());
  f.oracle.finalize();
  EXPECT_TRUE(f.oracle.ok()) << f.oracle.summary() << "\n" << f.oracle.trace_slice();
  // The plan must have actually perturbed the run, or this test proves
  // nothing.  Under DCP the switch converts injected data loss into trims,
  // so count every injected-loss form: trims, drops (data/HO/ctrl), and the
  // channel-level fault counters (wire drops, flap-killed in-flight packets).
  const auto sw = f.net.total_switch_stats();
  const auto fc = f.inj.counters();
  EXPECT_GT(sw.injected_trims + sw.injected_drops + sw.injected_ho_drops +
                sw.injected_ctrl_drops + fc.dropped + fc.in_flight_dropped,
            0u);
}

TEST(CollectiveFaults, AllToAllSurvivesOracleArmed) {
  FaultedCollFixture f(4, adverse_plan(), /*seed=*/0xa17a11);
  AllToAll a2a(f.net, f.params(4, 2 * 1024 * 1024));
  f.net.run_until_done(seconds(5));
  ASSERT_TRUE(a2a.done());
  f.oracle.finalize();
  EXPECT_TRUE(f.oracle.ok()) << f.oracle.summary() << "\n" << f.oracle.trace_slice();
  // Faulted JCT cannot beat the clean ideal.
  EXPECT_GE(a2a.jct(), AllToAll::ideal_jct(f.params(4, 2 * 1024 * 1024), Bandwidth::gbps(100)));
}

TEST(CollectiveIdeal, FormulaSanity) {
  CollectiveParams p;
  p.members = {1, 2, 3, 4};
  p.total_bytes = 4 * 1000 * 1000;
  // AllReduce moves 2(n-1)/n * total per member = 6 MB at 100 Gb/s = 480 us.
  EXPECT_EQ(RingAllReduce::ideal_jct(p, Bandwidth::gbps(100)), microseconds(480));
  // AllToAll moves (n-1)/n * total = 3 MB = 240 us.
  EXPECT_EQ(AllToAll::ideal_jct(p, Bandwidth::gbps(100)), microseconds(240));
}

}  // namespace
}  // namespace dcp
