// Tests for the collective workloads: ring AllReduce dependencies and
// AllToAll fan-out.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "harness/scheme.h"
#include "topo/dumbbell.h"
#include "workload/collective.h"

namespace dcp {
namespace {

struct CollFixture {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  Star star;

  explicit CollFixture(int hosts) {
    SchemeSetup s = make_scheme(SchemeKind::kDcp);
    star = build_star(net, hosts, s.sw);
    apply_scheme(net, s);
  }

  CollectiveParams params(int n, std::uint64_t bytes) {
    CollectiveParams p;
    for (int i = 0; i < n; ++i) p.members.push_back(star.hosts[static_cast<std::size_t>(i)]->id());
    p.total_bytes = bytes;
    p.msg_bytes = 256 * 1024;
    return p;
  }
};

TEST(RingAllReduceTest, RunsAllStepsAndFinishes) {
  CollFixture f(4);
  RingAllReduce ar(f.net, f.params(4, 4 * 1024 * 1024));
  EXPECT_EQ(ar.steps(), 6);  // 2*(4-1)
  f.net.run_until_done(seconds(5));
  EXPECT_TRUE(ar.done());
  // 4 members x 6 steps = 24 flows of total/4 bytes each.
  EXPECT_EQ(ar.flows().size(), 24u);
  for (FlowId id : ar.flows()) {
    EXPECT_EQ(f.net.record(id).spec.bytes, 1024u * 1024);
    EXPECT_TRUE(f.net.record(id).complete());
  }
  EXPECT_GT(ar.jct(), 0);
}

TEST(RingAllReduceTest, StepDependenciesRespected) {
  CollFixture f(3);
  RingAllReduce ar(f.net, f.params(3, 3 * 1024 * 1024));
  f.net.run_until_done(seconds(5));
  ASSERT_TRUE(ar.done());
  // A member's step-s flow must start only after its step-(s-1) flow ended
  // (sender side); verify via record timestamps per (member = src host).
  std::map<NodeId, std::vector<const FlowRecord*>> by_src;
  for (FlowId id : ar.flows()) by_src[f.net.record(id).spec.src].push_back(&f.net.record(id));
  for (auto& [src, recs] : by_src) {
    std::sort(recs.begin(), recs.end(), [](const FlowRecord* a, const FlowRecord* b) {
      return a->spec.start_time < b->spec.start_time;
    });
    for (std::size_t i = 1; i < recs.size(); ++i) {
      EXPECT_GE(recs[i]->spec.start_time, recs[i - 1]->tx_done);
    }
  }
}

TEST(RingAllReduceTest, JctAboveIdealLowerBound) {
  CollFixture f(4);
  const auto p = f.params(4, 8 * 1024 * 1024);
  RingAllReduce ar(f.net, p);
  f.net.run_until_done(seconds(5));
  ASSERT_TRUE(ar.done());
  EXPECT_GE(ar.jct(), RingAllReduce::ideal_jct(p, Bandwidth::gbps(100)));
}

TEST(AllToAllTest, EveryPairGetsAFlow) {
  CollFixture f(4);
  AllToAll a2a(f.net, f.params(4, 4 * 1024 * 1024));
  f.net.run_until_done(seconds(5));
  EXPECT_TRUE(a2a.done());
  EXPECT_EQ(a2a.flows().size(), 12u);  // 4*3 ordered pairs
  std::set<std::pair<NodeId, NodeId>> pairs;
  for (FlowId id : a2a.flows()) {
    const auto& spec = f.net.record(id).spec;
    pairs.insert({spec.src, spec.dst});
  }
  EXPECT_EQ(pairs.size(), 12u);
}

TEST(AllToAllTest, IdealJctBelowMeasured) {
  CollFixture f(4);
  const auto p = f.params(4, 8 * 1024 * 1024);
  AllToAll a2a(f.net, p);
  f.net.run_until_done(seconds(5));
  ASSERT_TRUE(a2a.done());
  EXPECT_GE(a2a.jct(), AllToAll::ideal_jct(p, Bandwidth::gbps(100)));
}

TEST(CollectiveIdeal, FormulaSanity) {
  CollectiveParams p;
  p.members = {1, 2, 3, 4};
  p.total_bytes = 4 * 1000 * 1000;
  // AllReduce moves 2(n-1)/n * total per member = 6 MB at 100 Gb/s = 480 us.
  EXPECT_EQ(RingAllReduce::ideal_jct(p, Bandwidth::gbps(100)), microseconds(480));
  // AllToAll moves (n-1)/n * total = 3 MB = 240 us.
  EXPECT_EQ(AllToAll::ideal_jct(p, Bandwidth::gbps(100)), microseconds(240));
}

}  // namespace
}  // namespace dcp
