// Static dispatch (DCP_DEVIRT) must be OUTPUT-INVISIBLE: the {kind, ptr}
// dispatch into Switch::receive_fast / Host::receive_fast runs the same
// bodies as the virtual Node::receive hop, so every digest — goodputs,
// FCTs, retransmit counts, events_processed, fuzz verdicts — must be bit
// for bit identical with DCP_DEVIRT=0 and 1, alone and crossed with the
// sharded substrate (DCP_SHARDS=2).  Mechanism tests pin down the kind
// tags and the custom-node fallback; the digest suites prove equality
// end-to-end across the Fig 1/10/17 experiment shapes and a 200-seed
// oracle-armed fuzz batch.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "check/fuzzer.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "net/channel.h"
#include "net/node.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "switch/switch.h"

namespace dcp {
namespace {

/// Scoped DCP_DEVIRT override: Simulator reads the variable at
/// construction, so set it before building the fixture / experiment.
class ScopedDevirtEnv {
 public:
  explicit ScopedDevirtEnv(bool devirt_on) {
    const char* prev = std::getenv("DCP_DEVIRT");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    setenv("DCP_DEVIRT", devirt_on ? "1" : "0", 1);
  }
  ~ScopedDevirtEnv() {
    if (had_prev_) {
      setenv("DCP_DEVIRT", prev_.c_str(), 1);
    } else {
      unsetenv("DCP_DEVIRT");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

/// Scoped DCP_SHARDS override, for crossing the two escape hatches.
class ScopedShardsEnv {
 public:
  explicit ScopedShardsEnv(int shards) {
    const char* prev = std::getenv("DCP_SHARDS");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    setenv("DCP_SHARDS", std::to_string(shards).c_str(), 1);
  }
  ~ScopedShardsEnv() {
    if (had_prev_) {
      setenv("DCP_SHARDS", prev_.c_str(), 1);
    } else {
      unsetenv("DCP_SHARDS");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

// ---------------------------------------------------------------------------
// Mechanism: kind tags and the custom-node fallback
// ---------------------------------------------------------------------------

class CustomSink final : public Node {
 public:
  CustomSink(Simulator& sim, Logger& log) : Node(sim, log, 0, "sink") {}
  using Node::receive;
  void receive(PacketPtr pkt, std::uint32_t in_port) override {
    arrivals.push_back({sim_.now(), pkt->psn, in_port});
  }
  struct Arrival {
    Time t;
    std::uint32_t psn;
    std::uint32_t port;
    bool operator==(const Arrival&) const = default;
  };
  std::vector<Arrival> arrivals;
};

TEST(Devirt, ConcreteEndpointsCarryTheirKindTags) {
  Simulator sim;
  Logger log(LogLevel::kOff);
  Switch sw(sim, log, 1, "sw", SwitchConfig{}, /*seed=*/1);
  CustomSink sink(sim, log);
  EXPECT_EQ(sw.kind(), NodeKind::kSwitch);
  EXPECT_EQ(sink.kind(), NodeKind::kOther);  // test nodes keep the virtual hop
}

TEST(Devirt, CustomNodeDeliveriesIdenticalOnBothPaths) {
  // A kOther endpoint always takes the virtual hop; flipping DCP_DEVIRT
  // must change nothing about what arrives, when, or on which port.
  auto run = [](bool devirt) {
    Simulator sim;
    sim.set_use_devirt(devirt);
    Logger log(LogLevel::kOff);
    CustomSink sink(sim, log);
    Channel ch(sim, Bandwidth::gbps(100), microseconds(1));
    ch.connect(&sink, 7);
    const Time ser = ch.serialization(1000);
    for (int i = 0; i < 4; ++i) {
      Packet p;
      p.type = PktType::kData;
      p.wire_bytes = 1000;
      p.psn = static_cast<std::uint32_t>(i);
      ch.deliver(p, (i + 1) * ser);
    }
    sim.run();
    return std::pair(sink.arrivals, sim.events_processed());
  };
  EXPECT_EQ(run(true), run(false));
}

// ---------------------------------------------------------------------------
// Digest equality: devirt on == devirt off, bit for bit
// ---------------------------------------------------------------------------

struct TrialDigest {
  double goodput = 0.0;
  Time elapsed = 0;
  bool completed = false;
  std::uint64_t retransmitted = 0;
  std::uint64_t events = 0;

  bool operator==(const TrialDigest&) const = default;
};

/// Fig 10/17 shape: scheme x injected-loss matrix of long testbed flows.
std::vector<TrialDigest> long_flow_matrix(bool devirt, unsigned jobs) {
  ScopedDevirtEnv env(devirt);
  const SchemeKind kinds[] = {SchemeKind::kDcp, SchemeKind::kRackTlp, SchemeKind::kIrn,
                              SchemeKind::kTimeout};
  const double rates[] = {0.0, 0.005, 0.02};
  struct Trial {
    SchemeKind k;
    double rate;
  };
  std::vector<Trial> trials;
  for (double rate : rates) {
    for (SchemeKind k : kinds) trials.push_back({k, rate});
  }
  SweepRunner pool(jobs);
  pool.set_progress(false);
  return pool.run(trials.size(), [&](std::size_t i) {
    LongFlowParams p;
    p.scheme = trials[i].k;
    p.loss_rate = trials[i].rate;
    p.flow_bytes = 2ull * 1000 * 1000;
    p.max_time = milliseconds(20);
    const LongFlowResult r = run_long_flow(p);
    TrialDigest d;
    d.goodput = r.goodput_gbps;
    d.elapsed = r.elapsed;
    d.completed = r.completed;
    d.retransmitted = r.sender.retransmitted_packets;
    d.events = r.core.events_processed;
    return d;
  });
}

TEST(DevirtDigest, LongFlowMatrixDevirtOnOffBitIdentical) {
  const std::vector<TrialDigest> on = long_flow_matrix(true, 1);
  const std::vector<TrialDigest> off = long_flow_matrix(false, 1);
  ASSERT_EQ(on.size(), off.size());
  for (std::size_t i = 0; i < on.size(); ++i) {
    EXPECT_EQ(on[i], off[i]) << "trial " << i;
  }
  // The matrix exercised recovery, not just clean delivery.
  bool any_retx = false;
  for (const TrialDigest& d : on) any_retx = any_retx || d.retransmitted > 0;
  EXPECT_TRUE(any_retx);
}

/// Fig 1 shape: WebSearch background load on the CLOS fabric.
std::vector<TrialDigest> websearch_matrix(bool devirt, unsigned jobs) {
  ScopedDevirtEnv env(devirt);
  const std::uint64_t seeds[] = {11, 23};
  const SchemeKind kinds[] = {SchemeKind::kDcp, SchemeKind::kIrn};
  SweepRunner pool(jobs);
  pool.set_progress(false);
  return pool.run(4, [&](std::size_t i) {
    WebSearchParams p;
    p.scheme = kinds[i % 2];
    p.seed = seeds[i / 2];
    p.clos.spines = 2;
    p.clos.leaves = 2;
    p.clos.hosts_per_leaf = 4;
    p.load = 0.4;
    p.num_flows = 100;
    WebSearchResult r = run_websearch(p);
    TrialDigest d;
    d.goodput = r.background.overall().percentile(99.0);
    d.completed = r.flows_completed == r.flows_total;
    d.retransmitted = r.timeouts_background;
    d.events = r.core.events_processed;
    return d;
  });
}

TEST(DevirtDigest, WebsearchDevirtOnOffBitIdenticalAcrossJobCounts) {
  const std::vector<TrialDigest> baseline = websearch_matrix(true, 1);
  EXPECT_EQ(baseline, websearch_matrix(false, 1));
  EXPECT_EQ(baseline, websearch_matrix(true, 8));
  EXPECT_EQ(baseline, websearch_matrix(false, 8));
}

TEST(DevirtDigest, CrossedWithShardsStaysBitIdentical) {
  // The two escape hatches compose: static dispatch also runs on cut-edge
  // arrivals executed by the destination shard's simulator, so all four
  // {devirt} x {serial, DCP_SHARDS=2} corners must produce one digest.
  const std::vector<TrialDigest> baseline = websearch_matrix(true, 1);
  {
    ScopedShardsEnv shards(2);
    EXPECT_EQ(baseline, websearch_matrix(true, 1));
    EXPECT_EQ(baseline, websearch_matrix(false, 1));
  }
  EXPECT_EQ(baseline, websearch_matrix(false, 1));
}

// ---------------------------------------------------------------------------
// 200-seed fuzz batch: verdicts identical devirt on/off, oracle clean
// ---------------------------------------------------------------------------

struct FuzzDigest {
  bool violated = false;
  std::string invariant;
  Time at = 0;
  std::size_t num_violations = 0;
  bool all_complete = false;

  bool operator==(const FuzzDigest&) const = default;
};

std::vector<FuzzDigest> fuzz_batch(bool devirt, unsigned jobs) {
  ScopedDevirtEnv env(devirt);
  SweepRunner pool(jobs);
  pool.set_progress(false);
  return pool.run(200, [&](std::size_t i) {
    const FuzzScenario s = generate_fuzz_scenario(/*seed=*/1000 + i);
    const FuzzVerdict v = run_fuzz_scenario(s);
    return FuzzDigest{v.violated, v.invariant, v.at, v.num_violations, v.all_complete};
  });
}

TEST(DevirtFuzz, TwoHundredSeedsCleanAndIdenticalDevirtOnOff) {
  // Crossed axes on purpose: devirt-on under the parallel pool vs devirt-off
  // serial.  Equality proves the dispatch mode AND the job count are both
  // invisible to the invariant oracle across 200 random scenarios.
  const std::vector<FuzzDigest> on = fuzz_batch(true, 8);
  const std::vector<FuzzDigest> off = fuzz_batch(false, 1);
  ASSERT_EQ(on.size(), off.size());
  for (std::size_t i = 0; i < on.size(); ++i) {
    EXPECT_EQ(on[i], off[i]) << "seed " << 1000 + i;
    EXPECT_FALSE(on[i].violated) << "seed " << 1000 + i << ": " << on[i].invariant;
  }
}

}  // namespace
}  // namespace dcp
