// Fault-injection engine tests: FaultPlan parsing/round-trip, FaultInjector
// hooks (drop, corrupt, blackhole, flap, buffer shrink), the zero-intensity
// == baseline guarantee, and RecoveryStats episode metrics.

#include <gtest/gtest.h>

#include <string>

#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "harness/experiment.h"
#include "harness/scheme.h"
#include "topo/clos.h"

namespace dcp {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan parsing
// ---------------------------------------------------------------------------

TEST(FaultPlan, ParsesEveryKind) {
  const char* text =
      "# catalogue\n"
      "link_flap at=100us dur=1ms sw=0 port=2 drop_inflight=true\n"
      "drop at=5ms dur=1ms rate=0.01\n"
      "corrupt at=0 rate=0.001 sw=1\n"
      "ho_loss at=2ms dur=500us rate=0.2\n"
      "buffer_shrink at=1ms dur=2ms frac=0.25 sw=all\n"
      "blackhole at=3ms dur=200us sw=0 port=0\n";
  std::string err;
  auto plan = parse_fault_plan(text, &err);
  ASSERT_TRUE(plan.has_value()) << err;
  ASSERT_EQ(plan->actions.size(), 6u);

  const FaultAction& flap = plan->actions[0];
  EXPECT_EQ(flap.kind, FaultKind::kLinkFlap);
  EXPECT_EQ(flap.at, microseconds(100));
  EXPECT_EQ(flap.duration, milliseconds(1));
  EXPECT_EQ(flap.sw, 0u);
  EXPECT_EQ(flap.port, 2u);
  EXPECT_TRUE(flap.drop_in_flight);

  const FaultAction& drop = plan->actions[1];
  EXPECT_EQ(drop.sw, FaultAction::kAll);
  EXPECT_EQ(drop.port, FaultAction::kAll);
  EXPECT_DOUBLE_EQ(drop.rate, 0.01);
  EXPECT_EQ(drop.end(), milliseconds(5) + milliseconds(1));

  // Rate fault with no duration lasts until the end of the run.
  EXPECT_EQ(plan->actions[2].end(), kTimeInfinity);
  EXPECT_DOUBLE_EQ(plan->actions[4].frac, 0.25);
}

TEST(FaultPlan, RoundTripsThroughConfigText) {
  const char* text =
      "link_flap at=100us dur=1ms sw=0 port=2 drop_inflight=true\n"
      "drop at=5ms dur=1ms rate=0.01\n"
      "ho_loss at=2ms rate=0.2\n"
      "buffer_shrink at=1ms dur=2ms frac=0.25\n"
      "blackhole at=3ms dur=200us sw=1 port=3\n";
  auto plan = parse_fault_plan(text);
  ASSERT_TRUE(plan.has_value());
  auto again = parse_fault_plan(plan->to_config_text());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*plan, *again);
}

TEST(FaultPlan, RejectsBadInput) {
  std::string err;
  EXPECT_FALSE(parse_fault_action("warp_core_breach at=1ms", &err).has_value());
  EXPECT_FALSE(parse_fault_action("drop at=1ms rate=1.5", &err).has_value());
  EXPECT_FALSE(parse_fault_action("drop at=-1ms rate=0.1", &err).has_value());
  EXPECT_FALSE(parse_fault_action("drop at=1ms rate=abc", &err).has_value());
  EXPECT_FALSE(parse_fault_action("buffer_shrink at=0 frac=2", &err).has_value());
}

TEST(FaultPlan, NoopDetection) {
  FaultAction a;
  a.kind = FaultKind::kDrop;
  a.rate = 0.0;
  EXPECT_TRUE(a.is_noop());
  a.rate = 0.1;
  EXPECT_FALSE(a.is_noop());

  FaultAction flap;
  flap.kind = FaultKind::kLinkFlap;
  flap.duration = 0;
  EXPECT_TRUE(flap.is_noop());
  flap.duration = microseconds(1);
  EXPECT_FALSE(flap.is_noop());

  FaultAction shrink;
  shrink.kind = FaultKind::kBufferShrink;
  shrink.frac = 1.0;
  EXPECT_TRUE(shrink.is_noop());

  FaultPlan plan;
  plan.actions = {a, flap, shrink};
  EXPECT_TRUE(plan.has_effect());
  plan.actions = {shrink};
  EXPECT_FALSE(plan.has_effect());
}

// ---------------------------------------------------------------------------
// FaultInjector against a live fabric
// ---------------------------------------------------------------------------

struct FaultFixture {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  ClosTopology topo;
  FlowId id = 0;

  // 2x2x2 clos with one cross-rack DCP flow, same shape as run_fault_drill.
  void build(std::uint64_t bytes = 4'000'000) {
    SchemeSetup s = make_scheme(SchemeKind::kDcp);
    ClosParams cp;
    cp.spines = 2;
    cp.leaves = 2;
    cp.hosts_per_leaf = 2;
    cp.sw = s.sw;
    topo = build_clos(net, cp);
    apply_scheme(net, s);
    FlowSpec spec;
    spec.src = topo.hosts[0]->id();
    spec.dst = topo.hosts[3]->id();
    spec.bytes = bytes;
    id = net.start_flow(spec);
  }
};

TEST(FaultInjector, RandomDropRecovers) {
  FaultFixture f;
  f.build();
  FaultPlan plan;
  {
    FaultAction a;
    a.kind = FaultKind::kDrop;
    a.at = microseconds(50);
    a.duration = microseconds(200);
    a.rate = 0.05;
    a.sw = 0;  // spine 0, every port
    plan.actions.push_back(a);
  }
  FaultInjector inj(f.net, plan);
  f.net.run_until_done(seconds(5));
  ASSERT_TRUE(f.net.record(f.id).complete());
  EXPECT_EQ(f.net.record(f.id).receiver.bytes_received, 4'000'000u);
  EXPECT_GT(inj.counters().dropped, 0u);
}

TEST(FaultInjector, CorruptionRecovers) {
  FaultFixture f;
  f.build();
  FaultPlan plan;
  {
    FaultAction a;
    a.kind = FaultKind::kCorrupt;
    a.at = microseconds(50);
    a.duration = microseconds(200);
    a.rate = 0.05;
    a.sw = 0;
    plan.actions.push_back(a);
  }
  FaultInjector inj(f.net, plan);
  f.net.run_until_done(seconds(5));
  ASSERT_TRUE(f.net.record(f.id).complete());
  EXPECT_GT(inj.counters().corrupted, 0u);
}

TEST(FaultInjector, BlackholePortStaysInCandidates) {
  FaultFixture f;
  f.build();
  FaultPlan plan;
  {
    FaultAction a;
    a.kind = FaultKind::kBlackhole;
    a.at = microseconds(50);
    a.duration = microseconds(150);
    a.sw = 0;
    a.port = 0;
    plan.actions.push_back(a);
  }
  Switch* spine0 = f.topo.spines[0];
  FaultInjector inj(f.net, plan);
  bool was_up_during_fault = false;
  f.sim.schedule(microseconds(100), [&] {
    // The defining property of a blackhole: routing never notices.
    was_up_during_fault = spine0->link_up(0);
  });
  f.net.run_until_done(seconds(5));
  ASSERT_TRUE(f.net.record(f.id).complete());
  EXPECT_TRUE(was_up_during_fault);
  EXPECT_GT(inj.counters().blackholed, 0u);
}

TEST(FaultInjector, LinkFlapDropsInFlightAndRestores) {
  FaultFixture f;
  f.build(8'000'000);
  FaultPlan plan;
  {
    FaultAction a;
    a.kind = FaultKind::kLinkFlap;
    a.at = microseconds(60);
    a.duration = microseconds(300);
    a.sw = 0;  // spine 0, every port: the whole spine goes dark
    a.drop_in_flight = true;
    plan.actions.push_back(a);
  }
  Switch* spine0 = f.topo.spines[0];
  FaultInjector inj(f.net, plan);
  bool down_during = true;
  f.sim.schedule(microseconds(200), [&] {
    for (std::uint32_t p = 0; p < spine0->num_ports(); ++p) {
      down_during = down_during && !spine0->link_up(p);
    }
  });
  f.net.run_until_done(seconds(5));
  ASSERT_TRUE(f.net.record(f.id).complete());
  EXPECT_EQ(f.net.record(f.id).receiver.bytes_received, 8'000'000u);
  EXPECT_TRUE(down_during);
  // Links are back up after the flap window.
  for (std::uint32_t p = 0; p < spine0->num_ports(); ++p) {
    EXPECT_TRUE(spine0->link_up(p)) << "port " << p;
  }
  const FaultInjector::Counters c = inj.counters();
  EXPECT_GT(c.link_cuts, 0u);
  EXPECT_EQ(c.link_cuts, c.link_restores);
}

TEST(FaultInjector, BufferShrinkRestoresCapacity) {
  FaultFixture f;
  f.build();
  const std::uint64_t cap0 = f.topo.spines[0]->buffer().capacity();
  ASSERT_GT(cap0, 0u);
  FaultPlan plan;
  {
    FaultAction a;
    a.kind = FaultKind::kBufferShrink;
    a.at = microseconds(50);
    a.duration = microseconds(200);
    a.frac = 0.1;
    a.sw = 0;
    plan.actions.push_back(a);
  }
  FaultInjector inj(f.net, plan);
  std::uint64_t cap_during = cap0;
  f.sim.schedule(microseconds(100), [&] { cap_during = f.topo.spines[0]->buffer().capacity(); });
  f.net.run_until_done(seconds(5));
  ASSERT_TRUE(f.net.record(f.id).complete());
  EXPECT_EQ(cap_during, static_cast<std::uint64_t>(static_cast<double>(cap0) * 0.1));
  EXPECT_EQ(f.topo.spines[0]->buffer().capacity(), cap0);  // restored bit-exactly
}

// ---------------------------------------------------------------------------
// Harness integration
// ---------------------------------------------------------------------------

std::string drill_digest(const FaultDrillResult& r) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%d|%lld|%a|%llu|%llu|%llu|%llu", r.completed ? 1 : 0,
                static_cast<long long>(r.elapsed), r.goodput_gbps,
                static_cast<unsigned long long>(r.receiver.bytes_received),
                static_cast<unsigned long long>(r.sender.retransmitted_packets),
                static_cast<unsigned long long>(r.sender.timeouts),
                static_cast<unsigned long long>(r.sw.dropped_data));
  return buf;
}

TEST(FaultDrill, ZeroIntensityPlanMatchesBaselineBitExactly) {
  FaultDrillParams base;
  base.flow_bytes = 2'000'000;

  FaultDrillParams zeroed = base;
  {
    FaultAction drop;  // rate 0: no-op
    drop.kind = FaultKind::kDrop;
    drop.at = microseconds(100);
    zeroed.faults.actions.push_back(drop);
    FaultAction flap;  // dur 0: no-op
    flap.kind = FaultKind::kLinkFlap;
    flap.at = microseconds(100);
    zeroed.faults.actions.push_back(flap);
    FaultAction shrink;  // frac 1: no-op
    shrink.kind = FaultKind::kBufferShrink;
    shrink.at = microseconds(100);
    zeroed.faults.actions.push_back(shrink);
  }
  ASSERT_FALSE(zeroed.faults.has_effect());

  const FaultDrillResult a = run_fault_drill(base);
  const FaultDrillResult b = run_fault_drill(zeroed);
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(drill_digest(a), drill_digest(b));
  EXPECT_TRUE(b.fault_episodes.empty());  // nothing armed, nothing measured
}

TEST(FaultDrill, RecoveryEpisodeMetricsAreSane) {
  FaultDrillParams p;
  p.flow_bytes = 8'000'000;
  FaultAction a;
  a.kind = FaultKind::kDrop;
  a.at = microseconds(200);
  a.duration = microseconds(200);
  a.rate = 0.05;
  a.sw = 0;
  p.faults.actions.push_back(a);

  const FaultDrillResult r = run_fault_drill(p);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.fault_episodes.size(), 1u);
  const RecoveryStats::Episode& e = r.fault_episodes.front();
  EXPECT_EQ(e.label, std::string("drop"));
  EXPECT_EQ(e.start, microseconds(200));
  EXPECT_EQ(e.end, microseconds(400));
  EXPECT_GT(e.baseline_gbps, 0.0);
  EXPECT_GE(e.dip_frac, 0.0);
  EXPECT_LE(e.dip_frac, 1.0);
  EXPECT_GT(r.wire.dropped, 0u);
}

// ---------------------------------------------------------------------------
// Scheme x fault matrix gaps: GBN and MP-RDMA under ho_loss and blackhole.
// All four run oracle-armed — the drill must ride the fault out without
// breaking any protocol invariant.
// ---------------------------------------------------------------------------

FaultDrillParams matrix_params(SchemeKind scheme) {
  FaultDrillParams p;
  p.scheme = scheme;
  p.flow_bytes = 2'000'000;
  p.oracle = true;
  return p;
}

FaultAction ho_loss_action() {
  FaultAction a;
  a.kind = FaultKind::kHoLoss;
  a.at = microseconds(50);
  a.rate = 0.5;  // would be devastating for DCP's control plane
  return a;
}

FaultAction blackhole_action() {
  FaultAction a;
  a.kind = FaultKind::kBlackhole;
  a.at = microseconds(50);
  a.duration = microseconds(200);
  // Every switch, every port: a single-path scheme (CX5's ECMP draw) can
  // hash around a one-switch blackhole and never cross it.
  a.sw = FaultAction::kAll;
  return a;
}

// GBN and MP-RDMA carry their ACKs/NACKs in the ordinary data queue, so a
// control-queue loss fault has nothing to bite on: the run must match the
// fault-free baseline bit-exactly and count zero injected control drops.
class HoLossVacuousSweep : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(HoLossVacuousSweep, MatchesBaselineBitExactly) {
  FaultDrillParams base = matrix_params(GetParam());
  FaultDrillParams faulted = base;
  faulted.faults.actions.push_back(ho_loss_action());
  ASSERT_TRUE(faulted.faults.has_effect());

  const FaultDrillResult a = run_fault_drill(base);
  const FaultDrillResult b = run_fault_drill(faulted);
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(drill_digest(a), drill_digest(b));
  EXPECT_EQ(b.sw.injected_ho_drops, 0u);
  EXPECT_EQ(b.sw.injected_ctrl_drops, 0u);
  EXPECT_TRUE(b.violations.empty()) << b.violations.front().invariant << ": "
                                    << b.violations.front().detail;
}

INSTANTIATE_TEST_SUITE_P(Schemes, HoLossVacuousSweep,
                         ::testing::Values(SchemeKind::kCx5, SchemeKind::kPfc,
                                           SchemeKind::kMpRdma));

class BlackholeSweep : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(BlackholeSweep, RecoversWithInvariantsIntact) {
  FaultDrillParams p = matrix_params(GetParam());
  p.faults.actions.push_back(blackhole_action());

  const FaultDrillResult r = run_fault_drill(p);
  ASSERT_TRUE(r.completed) << scheme_name(GetParam());
  EXPECT_EQ(r.receiver.bytes_received, 2'000'000u);
  EXPECT_GT(r.wire.blackholed, 0u);
  EXPECT_TRUE(r.violations.empty()) << r.violations.front().invariant << ": "
                                    << r.violations.front().detail;
}

INSTANTIATE_TEST_SUITE_P(Schemes, BlackholeSweep,
                         ::testing::Values(SchemeKind::kCx5, SchemeKind::kMpRdma));

TEST(FaultDrill, SameSeedSamePlanIsDeterministic) {
  FaultDrillParams p;
  p.flow_bytes = 2'000'000;
  FaultAction a;
  a.kind = FaultKind::kDrop;
  a.at = microseconds(100);
  a.rate = 0.02;
  p.faults.actions.push_back(a);

  const FaultDrillResult r1 = run_fault_drill(p);
  const FaultDrillResult r2 = run_fault_drill(p);
  EXPECT_EQ(drill_digest(r1), drill_digest(r2));
  EXPECT_EQ(r1.wire.dropped, r2.wire.dropped);
}

}  // namespace
}  // namespace dcp
