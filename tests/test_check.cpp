// Oracle + fuzzer self-tests.
//
// The InvariantOracle is itself load-bearing test infrastructure, so this
// suite checks the checker: deliberately broken transports (check/broken.h)
// must each trip *exactly* the invariant their bug violates, clean runs must
// stay clean, and the scenario fuzzer must be a pure function of its seed —
// generation, verdict and repro file alike — with a shrinker that reduces a
// padded 50-action plan to the handful of actions that matter.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "check/broken.h"
#include "check/fuzzer.h"
#include "check/invariant_oracle.h"
#include "harness/sweep.h"
#include "sim/logger.h"
#include "sim/simulator.h"
#include "switch/buffer.h"
#include "topo/network.h"

namespace dcp {
namespace {

// ---------------------------------------------------------------------------
// Broken toys: each must trip exactly its intended invariant
// ---------------------------------------------------------------------------

// Minimal fabric for the toy protocol: two hosts under one spine, one flow,
// loss-free (CX5 switch config: no trimming, no injected loss).
FuzzScenario toy_scenario() {
  FuzzScenario s;
  s.seed = 0;
  s.scheme = SchemeKind::kCx5;
  s.spines = 1;
  s.leaves = 2;
  s.hosts_per_leaf = 1;
  s.max_time = milliseconds(50);
  FuzzFlow f;
  f.src = 0;
  f.dst = 1;
  f.bytes = 8000;
  f.msg_bytes = 0;
  s.flows.push_back(f);
  return s;
}

FuzzVerdict run_toy(ToyBug bug) {
  FuzzOptions opt;
  opt.factory_override = std::make_shared<ToyFactory>(bug);
  return run_fuzz_scenario(toy_scenario(), opt);
}

TEST(BrokenToys, CleanToyPassesTheOracle) {
  const FuzzVerdict v = run_toy(ToyBug::kNone);
  EXPECT_FALSE(v.violated) << v.message << "\n" << v.trace;
  EXPECT_TRUE(v.all_complete);
}

TEST(BrokenToys, DuplicateCompletionTripsExactlyOnceCompletion) {
  const FuzzVerdict v = run_toy(ToyBug::kDupComplete);
  ASSERT_TRUE(v.violated);
  EXPECT_EQ(v.invariant, "exactly-once-completion") << v.message;
  EXPECT_EQ(v.num_violations, 1u) << v.message;
}

TEST(BrokenToys, PsnRegressionTripsPsnMonotonic) {
  const FuzzVerdict v = run_toy(ToyBug::kPsnRegress);
  ASSERT_TRUE(v.violated);
  EXPECT_EQ(v.invariant, "psn-monotonic") << v.message;
  EXPECT_EQ(v.num_violations, 1u) << v.message;
}

TEST(BrokenToys, ForgedHoTripsHoConservation) {
  const FuzzVerdict v = run_toy(ToyBug::kForgedHo);
  ASSERT_TRUE(v.violated);
  EXPECT_EQ(v.invariant, "ho-conservation") << v.message;
  EXPECT_EQ(v.num_violations, 1u) << v.message;
}

TEST(BrokenToys, VerdictCarriesTraceAndTimestamp) {
  const FuzzVerdict v = run_toy(ToyBug::kDupComplete);
  ASSERT_TRUE(v.violated);
  EXPECT_FALSE(v.trace.empty());
  EXPECT_GT(v.at, 0);
}

// ---------------------------------------------------------------------------
// Buffer-conservation: direct SharedBuffer drives
// ---------------------------------------------------------------------------

TEST(BufferConservation, LeakedCellIsFlaggedAtQuiesce) {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  InvariantOracle oracle(net);
  SharedBuffer buf(64 * 1024, 4);
  oracle.watch_buffer(buf);
  ASSERT_TRUE(buf.alloc(0, 0, 1000));  // never released
  oracle.finalize();
  ASSERT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.first()->invariant, "buffer-conservation") << oracle.summary();
}

TEST(BufferConservation, ReleaseWithoutAllocIsImmediate) {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  InvariantOracle oracle(net);
  SharedBuffer buf(64 * 1024, 4);
  oracle.watch_buffer(buf);
  ASSERT_TRUE(buf.alloc(1, 0, 500));
  buf.release(2, 0, 500);  // wrong ingress key: nothing was charged there
  ASSERT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.first()->invariant, "buffer-conservation") << oracle.summary();
}

TEST(BufferConservation, BalancedTrafficStaysClean) {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  InvariantOracle oracle(net);
  SharedBuffer buf(64 * 1024, 4);
  oracle.watch_buffer(buf);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(buf.alloc(static_cast<std::uint32_t>(i % 4), 1, 1500));
  }
  for (int i = 0; i < 8; ++i) {
    buf.release(static_cast<std::uint32_t>(i % 4), 1, 1500);
  }
  oracle.finalize();
  EXPECT_TRUE(oracle.ok()) << oracle.summary();
}

// ---------------------------------------------------------------------------
// Fuzzer determinism
// ---------------------------------------------------------------------------

TEST(Fuzzer, GenerationIsAPureFunctionOfTheSeed) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1234567ull}) {
    EXPECT_EQ(generate_fuzz_scenario(seed), generate_fuzz_scenario(seed)) << "seed " << seed;
  }
}

TEST(Fuzzer, GeneratedScenariosAreValid) {
  bool saw_faults = false;
  bool saw_multi_flow = false;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const FuzzScenario s = generate_fuzz_scenario(seed);
    ASSERT_GE(s.flows.size(), 1u) << "seed " << seed;
    for (const FuzzFlow& f : s.flows) {
      ASSERT_GE(f.src, 0);
      ASSERT_LT(f.src, s.num_hosts());
      ASSERT_GE(f.dst, 0);
      ASSERT_LT(f.dst, s.num_hosts());
      ASSERT_NE(f.src, f.dst) << "seed " << seed;
      ASSERT_GE(f.bytes, 1u);
    }
    saw_faults |= !s.faults.empty();
    saw_multi_flow |= s.flows.size() > 1;
  }
  EXPECT_TRUE(saw_faults);      // the fault substream actually produces plans
  EXPECT_TRUE(saw_multi_flow);  // and the workload substream varies
}

TEST(Fuzzer, VerdictAndReproAreDeterministic) {
  for (std::uint64_t seed : {3ull, 11ull}) {
    const FuzzScenario s = generate_fuzz_scenario(seed);
    const FuzzVerdict a = run_fuzz_scenario(s);
    const FuzzVerdict b = run_fuzz_scenario(s);
    EXPECT_EQ(a.violated, b.violated);
    EXPECT_EQ(a.invariant, b.invariant);
    EXPECT_EQ(a.all_complete, b.all_complete);
    EXPECT_EQ(write_fuzz_repro(s, a), write_fuzz_repro(s, b));
  }
}

TEST(Fuzzer, ReproFileRoundTrips) {
  for (std::uint64_t seed : {2ull, 9ull, 58ull}) {
    const FuzzScenario s = generate_fuzz_scenario(seed);
    FuzzVerdict v;  // round-trip must not depend on the verdict comments
    v.violated = true;
    v.invariant = "exactly-once-completion";
    v.trace = "  1.000us send psn=0\n";
    const std::string text = write_fuzz_repro(s, v);
    std::string err;
    const auto parsed = parse_fuzz_scenario(text, &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    EXPECT_EQ(*parsed, s) << "seed " << seed;
  }
}

TEST(Fuzzer, SchemeNamesRoundTrip) {
  for (SchemeKind k : {SchemeKind::kPfc, SchemeKind::kIrn, SchemeKind::kIrnEcmp,
                       SchemeKind::kMpRdma, SchemeKind::kDcp, SchemeKind::kCx5,
                       SchemeKind::kTimeout, SchemeKind::kRackTlp, SchemeKind::kTcp}) {
    const auto back = scheme_from_name(scheme_name(k));
    ASSERT_TRUE(back.has_value()) << scheme_name(k);
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(scheme_from_name("no-such-scheme").has_value());
}

// Parallel fuzz batches must report exactly what the serial loop reports:
// per-seed repro text is compared byte for byte between a 1-worker and a
// 4-worker pool.
TEST(Fuzzer, PoolSizeDoesNotChangeVerdicts) {
  constexpr std::size_t kCount = 6;
  constexpr std::uint64_t kBase = 21;
  auto trial = [](std::size_t i) {
    const FuzzScenario s = generate_fuzz_scenario(kBase + i);
    return write_fuzz_repro(s, run_fuzz_scenario(s));
  };
  SweepRunner serial(1);
  serial.set_progress(false);
  SweepRunner pool(4);
  pool.set_progress(false);
  const std::vector<std::string> a = serial.run(kCount, trial);
  const std::vector<std::string> b = pool.run(kCount, trial);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Injected bug: the fuzzer finds it, the shrinker minimizes it
// ---------------------------------------------------------------------------

TEST(InjectedBug, FuzzerFindsDuplicateCompletion) {
  FuzzOptions opt;
  opt.factory_override = std::make_shared<BrokenDcpFactory>();
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    FuzzScenario s = generate_fuzz_scenario(seed);
    s.scheme = SchemeKind::kDcp;  // what run_fuzz --inject-bug does
    const FuzzVerdict v = run_fuzz_scenario(s, opt);
    if (v.violated) {
      EXPECT_EQ(v.invariant, "exactly-once-completion") << v.message;
      SUCCEED() << "found at seed " << seed;
      return;
    }
  }
  FAIL() << "no scenario in 200 seeds provoked a retransmission";
}

// A handcrafted haystack: one blackhole that provokes retransmissions (and
// with the broken receiver, the duplicate completion) buried under 49 filler
// actions that barely perturb the run.  ddmin must strip the padding.
TEST(InjectedBug, ShrinkerReducesFiftyActionsToAtMostThree) {
  FuzzScenario s;
  s.seed = 0;
  s.scheme = SchemeKind::kDcp;
  s.spines = 1;
  s.leaves = 2;
  s.hosts_per_leaf = 1;
  s.max_time = milliseconds(50);
  FuzzFlow f;
  f.src = 0;
  f.dst = 1;
  f.bytes = 32 * 1024;
  f.msg_bytes = 4096;
  s.flows.push_back(f);

  FaultAction needle;
  needle.kind = FaultKind::kBlackhole;
  needle.at = microseconds(3);
  needle.duration = microseconds(200);
  needle.sw = 0;  // the lone spine: every path crosses it
  needle.port = FaultAction::kAll;
  for (int i = 0; i < 49; ++i) {
    FaultAction filler;
    filler.kind = FaultKind::kCorrupt;
    filler.at = microseconds(500 + 10 * i);
    filler.duration = microseconds(1);
    filler.rate = 0.0001;
    filler.sw = 0;
    filler.port = FaultAction::kAll;
    s.faults.actions.push_back(filler);
    if (i == 24) s.faults.actions.push_back(needle);  // bury it mid-plan
  }
  ASSERT_EQ(s.faults.actions.size(), 50u);

  FuzzOptions opt;
  opt.factory_override = std::make_shared<BrokenDcpFactory>();
  const FuzzVerdict before = run_fuzz_scenario(s, opt);
  ASSERT_TRUE(before.violated) << "the needle did not provoke a retransmission";
  ASSERT_EQ(before.invariant, "exactly-once-completion") << before.message;

  ShrinkStats stats;
  const FuzzScenario min = shrink_fuzz_scenario(s, opt, &stats);
  EXPECT_EQ(stats.actions_before, 50u);
  EXPECT_LE(stats.actions_after, 3u);
  EXPECT_LE(min.faults.actions.size(), 3u);
  EXPECT_GT(stats.runs, 0u);

  // The minimized scenario still reproduces the same violation…
  const FuzzVerdict after = run_fuzz_scenario(min, opt);
  ASSERT_TRUE(after.violated);
  EXPECT_EQ(after.invariant, "exactly-once-completion");
  // …and shrinking is itself deterministic.
  EXPECT_EQ(shrink_fuzz_scenario(s, opt), min);
}

TEST(InjectedBug, ShrinkReturnsCleanScenariosUnchanged) {
  const FuzzScenario s = toy_scenario();  // stock transports, loss-free
  ShrinkStats stats;
  const FuzzScenario out = shrink_fuzz_scenario(s, {}, &stats);
  EXPECT_EQ(out, s);
  EXPECT_EQ(stats.runs, 1u);  // one probe run, no shrink attempts
}

}  // namespace
}  // namespace dcp
