// Tests for the CSV exporters.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness/scheme.h"
#include "stats/csv_export.h"
#include "topo/dumbbell.h"

namespace dcp {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int count_lines(const std::string& s) {
  int n = 0;
  for (char c : s) n += c == '\n';
  return n;
}

struct Fixture {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  Star star;

  Fixture() {
    SchemeSetup s = make_scheme(SchemeKind::kDcp);
    star = build_star(net, 3, s.sw);
    apply_scheme(net, s);
  }
};

TEST(CsvExport, FlowRecordsOneRowPerFlow) {
  Fixture f;
  for (int i = 0; i < 4; ++i) {
    FlowSpec spec;
    spec.src = f.star.hosts[static_cast<std::size_t>(i % 2)]->id();
    spec.dst = f.star.hosts[2]->id();
    spec.bytes = 50'000 + static_cast<std::uint64_t>(i) * 1000;
    f.net.start_flow(spec);
  }
  f.net.run_until_done(seconds(1));
  const std::string path = "/tmp/dcp_test_flows.csv";
  ASSERT_TRUE(export_flow_records_csv(f.net, path));
  const std::string out = slurp(path);
  EXPECT_EQ(count_lines(out), 5);  // header + 4 flows
  EXPECT_NE(out.find("flow,src,dst,bytes"), std::string::npos);
  EXPECT_NE(out.find("50000"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvExport, FctBucketsSkipEmpty) {
  FctStats st({1000, 1'000'000});
  FlowRecord r;
  r.spec.bytes = 500;
  r.spec.start_time = 0;
  r.rx_done = r.tx_done = microseconds(4);
  st.add(r, microseconds(2));
  const std::string path = "/tmp/dcp_test_buckets.csv";
  ASSERT_TRUE(export_fct_buckets_csv(st, path, {50, 99}));
  const std::string out = slurp(path);
  EXPECT_EQ(count_lines(out), 2);  // header + the one non-empty bucket
  EXPECT_NE(out.find("1000,1,2.0000,2.0000"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvExport, TelemetrySeries) {
  Fixture f;
  FabricTelemetry tel(f.net, microseconds(10));
  FlowSpec spec;
  spec.src = f.star.hosts[0]->id();
  spec.dst = f.star.hosts[1]->id();
  spec.bytes = 500'000;
  f.net.start_flow(spec);
  f.net.run_until_done(seconds(1));
  tel.stop();
  const std::string path = "/tmp/dcp_test_telemetry.csv";
  ASSERT_TRUE(export_telemetry_csv(tel, path));
  const std::string out = slurp(path);
  EXPECT_GE(count_lines(out), 3);
  EXPECT_NE(out.find("t_us,max_data_queue"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvExport, UnwritablePathReturnsFalse) {
  Fixture f;
  EXPECT_FALSE(export_flow_records_csv(f.net, "/nonexistent_dir/x.csv"));
}

}  // namespace
}  // namespace dcp
