// Tests for the report/table utilities and the logger.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "harness/report.h"
#include "sim/logger.h"

namespace dcp {
namespace {

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

TEST(TableTest, BytesHumanUnits) {
  EXPECT_EQ(Table::bytes_human(512), "512B");
  EXPECT_EQ(Table::bytes_human(2048), "2.00KB");
  EXPECT_EQ(Table::bytes_human(3 * 1024 * 1024), "3.00MB");
  EXPECT_EQ(Table::bytes_human(5ull * 1024 * 1024 * 1024), "5.00GB");
}

TEST(TableTest, PrintsAlignedColumns) {
  Table t({"A", "LongHeader"});
  t.add_row({"x", "1"});
  t.add_row({"yyyy", "22"});
  char buf[512] = {};
  std::FILE* mem = fmemopen(buf, sizeof(buf), "w");
  ASSERT_NE(mem, nullptr);
  t.print(mem);
  std::fclose(mem);
  const std::string out(buf);
  EXPECT_NE(out.find("LongHeader"), std::string::npos);
  EXPECT_NE(out.find("yyyy"), std::string::npos);
  // Header, separator, two rows — all padded to identical widths.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (true) {
    const std::size_t nl = out.find('\n', pos);
    if (nl == std::string::npos) break;
    lines.push_back(out.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_EQ(lines.size(), 4u);
  for (const auto& l : lines) EXPECT_EQ(l.size(), lines[0].size());
}

TEST(FullScaleFlag, ReadsEnvironment) {
  unsetenv("DCP_FULL_SCALE");
  EXPECT_FALSE(full_scale());
  setenv("DCP_FULL_SCALE", "1", 1);
  EXPECT_TRUE(full_scale());
  setenv("DCP_FULL_SCALE", "0", 1);
  EXPECT_FALSE(full_scale());
  unsetenv("DCP_FULL_SCALE");
}

TEST(LoggerTest, LevelGatesOutput) {
  char buf[512] = {};
  std::FILE* mem = fmemopen(buf, sizeof(buf), "w");
  ASSERT_NE(mem, nullptr);
  Logger log(LogLevel::kWarn, mem);
  log.debug(microseconds(1), "comp", "hidden");
  log.warn(microseconds(2), "comp", "visible");
  std::fflush(mem);
  std::fclose(mem);
  const std::string out(buf);
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("visible"), std::string::npos);
  EXPECT_NE(out.find("WARN"), std::string::npos);
}

TEST(LoggerTest, OffSilencesEverything) {
  char buf[256] = {};
  std::FILE* mem = fmemopen(buf, sizeof(buf), "w");
  Logger log(LogLevel::kOff, mem);
  log.error(0, "comp", "nope");
  std::fflush(mem);
  std::fclose(mem);
  EXPECT_EQ(std::string(buf), "");
}

TEST(LoggerTest, EnabledPredicate) {
  Logger log(LogLevel::kInfo);
  EXPECT_FALSE(log.enabled(LogLevel::kDebug));
  EXPECT_TRUE(log.enabled(LogLevel::kInfo));
  EXPECT_TRUE(log.enabled(LogLevel::kError));
  log.set_level(LogLevel::kTrace);
  EXPECT_TRUE(log.enabled(LogLevel::kTrace));
}

}  // namespace
}  // namespace dcp
