// Integration tests for the experiment harness: scheme wiring, the
// WebSearch/CLOS runner, long-flow goodput, and collective runners.

#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace dcp {
namespace {

TEST(Scheme, FactoriesMatchKinds) {
  EXPECT_EQ(make_scheme(SchemeKind::kDcp).factory->name(), "DCP");
  EXPECT_EQ(make_scheme(SchemeKind::kIrn).factory->name(), "IRN");
  EXPECT_EQ(make_scheme(SchemeKind::kPfc).factory->name(), "RNIC-GBN");
  EXPECT_EQ(make_scheme(SchemeKind::kCx5).factory->name(), "RNIC-GBN");
  EXPECT_EQ(make_scheme(SchemeKind::kMpRdma).factory->name(), "MP-RDMA");
  EXPECT_EQ(make_scheme(SchemeKind::kRackTlp).factory->name(), "RACK-TLP");
}

TEST(Scheme, SwitchConfigReflectsScheme) {
  EXPECT_TRUE(make_scheme(SchemeKind::kDcp).sw.trimming);
  EXPECT_FALSE(make_scheme(SchemeKind::kIrn).sw.trimming);
  EXPECT_TRUE(make_scheme(SchemeKind::kPfc).sw.pfc.enabled);
  EXPECT_TRUE(make_scheme(SchemeKind::kMpRdma).sw.pfc.enabled);
  EXPECT_EQ(make_scheme(SchemeKind::kDcp).sw.lb, LbPolicy::kAdaptive);
  EXPECT_EQ(make_scheme(SchemeKind::kIrnEcmp).sw.lb, LbPolicy::kEcmp);
  EXPECT_EQ(make_scheme(SchemeKind::kMpRdma).sw.lb, LbPolicy::kSourcePath);
}

TEST(Scheme, DcqcnIntegrationTogglesEcn) {
  SchemeOptions cc;
  cc.with_cc = true;
  EXPECT_TRUE(make_scheme(SchemeKind::kDcp, cc).sw.ecn);
  EXPECT_FALSE(make_scheme(SchemeKind::kDcp).sw.ecn);
  EXPECT_EQ(make_scheme(SchemeKind::kDcp, cc).tcfg.cc.type, CcConfig::Type::kDcqcn);
}

TEST(Scheme, BdpMatchesRateTimesRtt) {
  // 100 Gb/s * 8 us = 100 KB.
  EXPECT_EQ(bdp_bytes(Bandwidth::gbps(100), microseconds(8)), 100'000u);
}

TEST(HarnessLongFlow, DcpHoldsGoodputAtOnePercentLoss) {
  LongFlowParams p;
  p.scheme = SchemeKind::kDcp;
  p.loss_rate = 0.01;
  p.flow_bytes = 10'000'000;
  LongFlowResult r = run_long_flow(p);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.goodput_gbps, 50.0);
}

TEST(HarnessLongFlow, GbnCollapsesAtOnePercentLoss) {
  LongFlowParams p;
  p.scheme = SchemeKind::kCx5;
  p.loss_rate = 0.01;
  p.flow_bytes = 10'000'000;
  p.max_time = milliseconds(50);
  LongFlowResult r = run_long_flow(p);
  // GBN should be far below line rate under loss.
  EXPECT_LT(r.goodput_gbps, 50.0);
}

TEST(HarnessWebSearch, SmallClosRunCompletesAllFlows) {
  WebSearchParams p;
  p.scheme = SchemeKind::kDcp;
  p.num_flows = 60;
  p.load = 0.3;
  WebSearchResult r = run_websearch(p);
  EXPECT_EQ(r.flows_completed, r.flows_total);
  EXPECT_GT(r.background.flows(), 0u);
  EXPECT_EQ(r.sw.dropped_ho, 0u);
}

TEST(HarnessWebSearch, AllSchemesCompleteSmallRun) {
  for (SchemeKind k : {SchemeKind::kPfc, SchemeKind::kIrn, SchemeKind::kMpRdma}) {
    WebSearchParams p;
    p.scheme = k;
    p.num_flows = 40;
    WebSearchResult r = run_websearch(p);
    EXPECT_EQ(r.flows_completed, r.flows_total) << scheme_name(k);
  }
}

TEST(HarnessUnequalPaths, DcpAdaptsUnderSkew) {
  const auto dcp_even = run_unequal_paths(SchemeKind::kDcp, 1.0, 4'000'000);
  const auto dcp_skew = run_unequal_paths(SchemeKind::kDcp, 10.0, 4'000'000);
  EXPECT_GT(dcp_even.avg_goodput_gbps, 30.0);
  // Adaptive routing keeps DCP's goodput within a sane band under skew.
  EXPECT_GT(dcp_skew.avg_goodput_gbps, 0.4 * dcp_even.avg_goodput_gbps);
}

TEST(HarnessCollective, AllReduceFinishesOnTestbed) {
  CollectiveExpParams p;
  p.scheme = SchemeKind::kDcp;
  p.use_clos = false;
  p.groups = 4;
  p.members_per_group = 4;
  p.total_bytes = 4 * 1024 * 1024;
  CollectiveResult r = run_collectives(p);
  EXPECT_TRUE(r.all_done);
  ASSERT_EQ(r.jct_ms.size(), 4u);
  for (double j : r.jct_ms) EXPECT_GT(j, 0.0);
  EXPECT_GT(r.ideal_jct_ms, 0.0);
}

TEST(HarnessCollective, AllToAllFinishesOnClos) {
  CollectiveExpParams p;
  p.scheme = SchemeKind::kDcp;
  p.kind = CollectiveKind::kAllToAll;
  p.use_clos = true;
  p.groups = 2;
  p.members_per_group = 4;
  p.total_bytes = 4 * 1024 * 1024;
  CollectiveResult r = run_collectives(p);
  EXPECT_TRUE(r.all_done);
  EXPECT_EQ(r.jct_ms.size(), 2u);
}

}  // namespace
}  // namespace dcp
