// The two-level scheduler: delivery lanes, deadline-class timers and far
// events must reproduce the plain one-heap-entry-per-packet schedule BIT
// FOR BIT.  Mechanism tests pin down lane FIFO order, same-time
// coalescing, lazy dooming on mid-flight cuts and the deadline heap's lazy
// extend/cancel; the digest suites then prove equality end-to-end across
// the Fig 1/10/17 experiment shapes and a 200-seed fuzz batch, with the
// DCP_LANES=0 escape hatch selecting the plain path.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "check/fuzzer.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "net/channel.h"
#include "net/node.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace dcp {
namespace {

/// Scoped DCP_LANES override: Simulator reads the variable at construction,
/// so set it before building the fixture / running the experiment.
class ScopedLanesEnv {
 public:
  explicit ScopedLanesEnv(bool lanes_on) {
    const char* prev = std::getenv("DCP_LANES");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    setenv("DCP_LANES", lanes_on ? "1" : "0", 1);
  }
  ~ScopedLanesEnv() {
    if (had_prev_) {
      setenv("DCP_LANES", prev_.c_str(), 1);
    } else {
      unsetenv("DCP_LANES");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

class SinkNode final : public Node {
 public:
  SinkNode(Simulator& sim, Logger& log) : Node(sim, log, 0, "sink") {}
  using Node::receive;
  void receive(PacketPtr pkt, std::uint32_t in_port) override {
    arrivals.push_back({sim_.now(), std::move(*pkt), in_port});
  }
  struct Arrival {
    Time t;
    Packet pkt;
    std::uint32_t port;
  };
  std::vector<Arrival> arrivals;
};

Packet data_packet(std::uint32_t bytes) {
  Packet p;
  p.type = PktType::kData;
  p.wire_bytes = bytes;
  p.payload_bytes = bytes;
  return p;
}

struct LaneFixture {
  Simulator sim;
  Logger log{LogLevel::kOff};
};

// ---------------------------------------------------------------------------
// Lane mechanics
// ---------------------------------------------------------------------------

TEST(Lane, BackToBackMtuOnSaturatedLink) {
  // The Channel::deliver precondition regression: a saturated 100 Gbps link
  // hands the wire one MTU packet exactly as the previous one finishes
  // serializing (extra == serialization, gap zero).  All three must arrive,
  // in order, spaced exactly one serialization time apart.
  LaneFixture f;
  f.sim.set_use_lanes(true);
  SinkNode sink(f.sim, f.log);
  Channel ch(f.sim, Bandwidth::gbps(100), microseconds(1));
  ch.connect(&sink, 3);
  const Time ser = ch.serialization(1000);
  ASSERT_GT(ser, 0);

  for (int i = 0; i < 3; ++i) {
    f.sim.schedule_at(i * ser, [&ch, i] {
      Packet p = data_packet(1000);
      p.psn = static_cast<std::uint32_t>(i);
      ch.deliver(p, ch.serialization(1000));
    });
  }
  f.sim.run();

  ASSERT_EQ(sink.arrivals.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sink.arrivals[i].pkt.psn, static_cast<std::uint32_t>(i));
    EXPECT_EQ(sink.arrivals[i].t, (i + 1) * ser + microseconds(1));
    EXPECT_EQ(sink.arrivals[i].port, 3u);
  }
  EXPECT_EQ(ch.delivered_packets(), 3u);
  EXPECT_EQ(ch.lane_pending(), 0u);
}

TEST(Lane, HoldsFifoWithOnlyHeadInHeap) {
  LaneFixture f;
  f.sim.set_use_lanes(true);
  SinkNode sink(f.sim, f.log);
  Channel ch(f.sim, Bandwidth::gbps(100), microseconds(5));
  ch.connect(&sink, 0);
  const Time ser = ch.serialization(1000);

  // Queue four packets up front (a port bursting into the wire): they park
  // in the lane, not the heap.
  for (int i = 0; i < 4; ++i) {
    Packet p = data_packet(1000);
    p.psn = static_cast<std::uint32_t>(i);
    ch.deliver(p, (i + 1) * ser);
  }
  EXPECT_EQ(ch.lane_pending(), 4u);

  f.sim.run();
  ASSERT_EQ(sink.arrivals.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sink.arrivals[i].pkt.psn, static_cast<std::uint32_t>(i));
    EXPECT_EQ(sink.arrivals[i].t, (i + 1) * ser + microseconds(5));
  }
}

TEST(Lane, SameTimeDeliveriesCoalesceInIssueOrder) {
  // Two wires funneling into one sink with identical delivery instants:
  // arrivals keep issue order, and the lane path charges exactly as many
  // events as the plain path would have popped.
  auto run = [](bool lanes) {
    LaneFixture f;
    f.sim.set_use_lanes(lanes);
    SinkNode sink(f.sim, f.log);
    Channel ch(f.sim, Bandwidth::gbps(100), microseconds(1));
    ch.connect(&sink, 0);
    for (int i = 0; i < 3; ++i) {
      Packet p = data_packet(64);
      p.psn = static_cast<std::uint32_t>(i);
      ch.deliver(p, 0);  // all three arrive at exactly propagation time
    }
    f.sim.run();
    std::vector<std::uint32_t> psns;
    for (const auto& a : sink.arrivals) {
      EXPECT_EQ(a.t, microseconds(1));
      psns.push_back(a.pkt.psn);
    }
    return std::pair<std::vector<std::uint32_t>, std::uint64_t>(psns, f.sim.events_processed());
  };
  const auto lanes_on = run(true);
  const auto lanes_off = run(false);
  EXPECT_EQ(lanes_on.first, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(lanes_on, lanes_off);
}

TEST(Lane, MidFlightCutDoomsLazily) {
  // Drop-in-flight cut: O(1) epoch bump, no heap surgery.  Parked records
  // are doomed lazily and account as in-flight losses when they surface.
  LaneFixture f;
  f.sim.set_use_lanes(true);
  SinkNode sink(f.sim, f.log);
  Channel ch(f.sim, Bandwidth::gbps(100), microseconds(1));
  ch.connect(&sink, 0);
  ch.set_drop_in_flight_on_cut(true);
  const Time ser = ch.serialization(1000);

  ch.deliver(data_packet(1000), ser);
  ch.deliver(data_packet(1000), 2 * ser);
  ASSERT_EQ(ch.lane_pending(), 2u);
  ch.set_up(false);
  EXPECT_EQ(ch.lane_doomed_pending(), 2u);

  f.sim.run();
  EXPECT_TRUE(sink.arrivals.empty());
  // delivered_packets counts wire hand-off at deliver() time (same as the
  // plain path); the mid-flight kills show up only as in_flight_dropped.
  EXPECT_EQ(ch.delivered_packets(), 2u);
  EXPECT_EQ(ch.in_flight_dropped(), 2u);
  EXPECT_EQ(ch.lane_pending(), 0u);
  EXPECT_EQ(ch.lane_doomed_pending(), 0u);
}

TEST(Lane, DefaultCutPolicyDeliversInFlight) {
  // PR 3's cut semantics through the lane path: without drop-in-flight the
  // photons past the cut still arrive; only subsequent traffic is lost.
  LaneFixture f;
  f.sim.set_use_lanes(true);
  SinkNode sink(f.sim, f.log);
  Channel ch(f.sim, Bandwidth::gbps(100), microseconds(1));
  ch.connect(&sink, 0);

  ch.deliver(data_packet(1000), 0);  // on the wire...
  ch.set_up(false);                  // ...then the cut
  ch.deliver(data_packet(1000), 0);  // handed to a dead wire
  f.sim.run();
  EXPECT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(ch.delivered_packets(), 1u);
  EXPECT_EQ(ch.in_flight_dropped(), 0u);
  EXPECT_EQ(ch.discarded_packets(), 1u);
}

// ---------------------------------------------------------------------------
// Deadline-class timers (the second-level heap)
// ---------------------------------------------------------------------------

TEST(DeadlineTimer, LazyExtendFiresOnceAtLatestDeadline) {
  Simulator sim;
  int fires = 0;
  Time fired_at = -1;
  Timer rto(sim, [&] {
    ++fires;
    fired_at = sim.now();
  });
  rto.arm_deadline(microseconds(10));
  // Per-ACK pushes: each re-arm extends the deadline; the parked entry goes
  // stale and must NOT fire at its old key.
  sim.schedule(microseconds(4), [&] { rto.arm_deadline(microseconds(10)); });
  sim.schedule(microseconds(8), [&] { rto.arm_deadline(microseconds(12)); });
  sim.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(fired_at, microseconds(20));
}

TEST(DeadlineTimer, LazyCancelNeverFires) {
  Simulator sim;
  int fires = 0;
  Timer rto(sim, [&] { ++fires; });
  rto.arm_deadline(microseconds(10));
  EXPECT_TRUE(rto.pending());
  rto.cancel();
  EXPECT_FALSE(rto.pending());
  rto.cancel();  // double-cancel is harmless
  sim.run();
  EXPECT_EQ(fires, 0);
}

TEST(DeadlineTimer, ShrinkFiresAtTheEarlierDeadline) {
  Simulator sim;
  Time fired_at = -1;
  Timer rto(sim, [&] { fired_at = sim.now(); });
  rto.arm_deadline(microseconds(50));
  rto.arm_deadline(microseconds(5));  // deadline moves BACK: eager re-key
  sim.run();
  EXPECT_EQ(fired_at, microseconds(5));
}

TEST(DeadlineTimer, DestroyWhileStaleEntryParked) {
  Simulator sim;
  int other_fires = 0;
  Timer survivor(sim, [&] { ++other_fires; });
  survivor.arm_deadline(microseconds(30));
  {
    Timer doomed(sim, [] { FAIL() << "destroyed timer fired"; });
    doomed.arm_deadline(microseconds(10));
    doomed.arm_deadline(microseconds(20));  // parked entry now stale
  }  // destroyed with the stale entry still in the deadline heap
  sim.run();
  EXPECT_EQ(other_fires, 1);
}

TEST(DeadlineTimer, ReArmFromOwnCallbackKeepsRunning) {
  Simulator sim;
  int fires = 0;
  Timer* tp = nullptr;
  Timer self(sim, [&] {
    if (++fires < 3) tp->arm_deadline(microseconds(1));
  });
  tp = &self;
  self.arm_deadline(microseconds(1));
  sim.run();
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(self.pending());
}

TEST(DeadlineTimer, EqualTimeOrderAcrossHeapsFollowsAllocation) {
  // A main-heap event and a deadline entry at the same instant fire in
  // sequence-allocation order — the global (t, seq) merge is heap-blind.
  {
    Simulator sim;
    std::vector<char> order;
    sim.schedule(microseconds(10), [&] { order.push_back('a'); });  // seq first
    Timer t(sim, [&] { order.push_back('b'); });
    t.arm_deadline(microseconds(10));
    sim.run();
    EXPECT_EQ(order, (std::vector<char>{'a', 'b'}));
  }
  {
    Simulator sim;
    std::vector<char> order;
    Timer t(sim, [&] { order.push_back('b'); });
    t.arm_deadline(microseconds(10));  // seq first this time
    sim.schedule(microseconds(10), [&] { order.push_back('a'); });
    sim.run();
    EXPECT_EQ(order, (std::vector<char>{'b', 'a'}));
  }
}

// ---------------------------------------------------------------------------
// Far events (one-shots parked in the deadline heap)
// ---------------------------------------------------------------------------

TEST(FarEvents, InterleaveWithNearEventsInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at_far(microseconds(20), [&] { order.push_back(2); });
  sim.schedule_at(microseconds(10), [&] { order.push_back(1); });
  sim.schedule_at_far(microseconds(30), [&] { order.push_back(4); });
  sim.schedule_at(microseconds(30), [&] { order.push_back(5); });  // later seq, same t
  sim.schedule_at(microseconds(25), [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(FarEvents, CancelRemovesExactlyOnce) {
  Simulator sim;
  int fires = 0;
  const EventId id = sim.schedule_at_far(microseconds(10), [&] { ++fires; });
  const EventId keep = sim.schedule_at_far(microseconds(20), [&] { ++fires; });
  sim.cancel(id);
  sim.cancel(id);  // stale handle: no-op
  sim.run();
  EXPECT_EQ(fires, 1);
  sim.cancel(keep);  // cancel-after-fire: no-op (generation stamped)
}

TEST(FarEvents, SlotRecyclesCleanlyIntoMainHeap) {
  // A slot that held a far event must come back as an ordinary main-heap
  // slot with no deadline-heap residue.
  Simulator sim;
  int fires = 0;
  for (int round = 0; round < 100; ++round) {
    sim.schedule_at_far(sim.now() + microseconds(1), [&] { ++fires; });
    sim.schedule(microseconds(2), [&] { ++fires; });
    sim.run();
  }
  EXPECT_EQ(fires, 200);
  EXPECT_TRUE(sim.idle());
}

// ---------------------------------------------------------------------------
// Digest equality: lanes on == lanes off, bit for bit
// ---------------------------------------------------------------------------

struct TrialDigest {
  double goodput = 0.0;
  Time elapsed = 0;
  bool completed = false;
  std::uint64_t retransmitted = 0;
  std::uint64_t events = 0;

  bool operator==(const TrialDigest&) const = default;
};

/// Fig 10/17 shape: scheme x injected-loss matrix of long testbed flows.
std::vector<TrialDigest> long_flow_matrix(bool lanes, unsigned jobs) {
  ScopedLanesEnv env(lanes);
  const SchemeKind kinds[] = {SchemeKind::kDcp, SchemeKind::kRackTlp, SchemeKind::kIrn,
                              SchemeKind::kTimeout};
  const double rates[] = {0.0, 0.005, 0.02};
  struct Trial {
    SchemeKind k;
    double rate;
  };
  std::vector<Trial> trials;
  for (double rate : rates) {
    for (SchemeKind k : kinds) trials.push_back({k, rate});
  }
  SweepRunner pool(jobs);
  pool.set_progress(false);
  return pool.run(trials.size(), [&](std::size_t i) {
    LongFlowParams p;
    p.scheme = trials[i].k;
    p.loss_rate = trials[i].rate;
    p.flow_bytes = 2ull * 1000 * 1000;
    p.max_time = milliseconds(20);
    const LongFlowResult r = run_long_flow(p);
    TrialDigest d;
    d.goodput = r.goodput_gbps;
    d.elapsed = r.elapsed;
    d.completed = r.completed;
    d.retransmitted = r.sender.retransmitted_packets;
    d.events = r.core.events_processed;
    return d;
  });
}

TEST(LaneDigest, LongFlowMatrixLanesOnOffBitIdentical) {
  const std::vector<TrialDigest> on = long_flow_matrix(true, 1);
  const std::vector<TrialDigest> off = long_flow_matrix(false, 1);
  ASSERT_EQ(on.size(), off.size());
  for (std::size_t i = 0; i < on.size(); ++i) {
    EXPECT_EQ(on[i], off[i]) << "trial " << i;
  }
  // The matrix exercised recovery, not just clean delivery.
  bool any_retx = false;
  for (const TrialDigest& d : on) any_retx = any_retx || d.retransmitted > 0;
  EXPECT_TRUE(any_retx);
}

TEST(LaneDigest, LongFlowMatrixLanesOnOffBitIdenticalUnderParallelSweep) {
  // DCP_JOBS=8 shape: worker threads each build their own Simulator, so the
  // lane/heap choice must be equal per-trial regardless of scheduling.
  const std::vector<TrialDigest> on = long_flow_matrix(true, 8);
  const std::vector<TrialDigest> off = long_flow_matrix(false, 8);
  ASSERT_EQ(on.size(), off.size());
  for (std::size_t i = 0; i < on.size(); ++i) {
    EXPECT_EQ(on[i], off[i]) << "trial " << i;
  }
  EXPECT_EQ(on, long_flow_matrix(true, 1));  // and jobs are digest-invisible
}

/// Fig 1 shape: WebSearch background load on the CLOS fabric.
std::vector<TrialDigest> websearch_matrix(bool lanes, unsigned jobs) {
  ScopedLanesEnv env(lanes);
  const std::uint64_t seeds[] = {11, 23};
  const SchemeKind kinds[] = {SchemeKind::kDcp, SchemeKind::kIrn};
  SweepRunner pool(jobs);
  pool.set_progress(false);
  return pool.run(4, [&](std::size_t i) {
    WebSearchParams p;
    p.scheme = kinds[i % 2];
    p.seed = seeds[i / 2];
    p.clos.spines = 2;
    p.clos.leaves = 2;
    p.clos.hosts_per_leaf = 4;
    p.load = 0.4;
    p.num_flows = 100;
    WebSearchResult r = run_websearch(p);
    TrialDigest d;
    d.goodput = r.background.overall().percentile(99.0);
    d.completed = r.flows_completed == r.flows_total;
    d.retransmitted = r.timeouts_background;
    d.events = r.core.events_processed;
    return d;
  });
}

TEST(LaneDigest, WebsearchLanesOnOffBitIdenticalAcrossJobCounts) {
  const std::vector<TrialDigest> baseline = websearch_matrix(true, 1);
  EXPECT_EQ(baseline, websearch_matrix(false, 1));
  EXPECT_EQ(baseline, websearch_matrix(true, 8));
  EXPECT_EQ(baseline, websearch_matrix(false, 8));
}

// ---------------------------------------------------------------------------
// 200-seed fuzz batch: verdicts identical lanes on/off, oracle clean
// ---------------------------------------------------------------------------

struct FuzzDigest {
  bool violated = false;
  std::string invariant;
  Time at = 0;
  std::size_t num_violations = 0;
  bool all_complete = false;

  bool operator==(const FuzzDigest&) const = default;
};

std::vector<FuzzDigest> fuzz_batch(bool lanes, unsigned jobs) {
  ScopedLanesEnv env(lanes);
  SweepRunner pool(jobs);
  pool.set_progress(false);
  return pool.run(200, [&](std::size_t i) {
    const FuzzScenario s = generate_fuzz_scenario(/*seed=*/1000 + i);
    const FuzzVerdict v = run_fuzz_scenario(s);
    return FuzzDigest{v.violated, v.invariant, v.at, v.num_violations, v.all_complete};
  });
}

TEST(LaneFuzz, TwoHundredSeedsCleanAndIdenticalLanesOnOff) {
  // Crossed axes on purpose: lanes-on under the parallel pool vs lanes-off
  // serial.  Equality proves the lane scheduler AND the job count are both
  // invisible to the invariant oracle across 200 random scenarios.
  const std::vector<FuzzDigest> on = fuzz_batch(true, 8);
  const std::vector<FuzzDigest> off = fuzz_batch(false, 1);
  ASSERT_EQ(on.size(), off.size());
  for (std::size_t i = 0; i < on.size(); ++i) {
    EXPECT_EQ(on[i], off[i]) << "seed " << 1000 + i;
    EXPECT_FALSE(on[i].violated) << "seed " << 1000 + i << ": " << on[i].invariant;
  }
}

}  // namespace
}  // namespace dcp
