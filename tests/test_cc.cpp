// Unit tests for the congestion-control module: static window, the DCQCN
// reaction point, and the receiver-side CNP pacing.

#include <gtest/gtest.h>

#include "cc/cc.h"
#include "cc/dcqcn.h"
#include "cc/timely.h"
#include "harness/scheme.h"
#include "topo/dumbbell.h"

namespace dcp {
namespace {

TEST(StaticWindow, ExposesConfiguredRateAndWindow) {
  StaticWindowCc cc(Bandwidth::gbps(100), 123'456);
  EXPECT_EQ(cc.window_bytes(), 123'456u);
  EXPECT_DOUBLE_EQ(cc.rate().as_gbps(), 100.0);
}

TEST(MakeCc, BuildsRequestedType) {
  Simulator sim;
  CcConfig cfg;
  cfg.type = CcConfig::Type::kStaticWindow;
  EXPECT_NE(make_cc(sim, cfg), nullptr);
  cfg.type = CcConfig::Type::kDcqcn;
  auto cc = make_cc(sim, cfg);
  ASSERT_NE(cc, nullptr);
  EXPECT_DOUBLE_EQ(cc->rate().as_gbps(), cfg.line_rate.as_gbps());
}

TEST(Dcqcn, CnpCutsRate) {
  Simulator sim;
  DcqcnRp cc(sim, Bandwidth::gbps(100), 100'000, DcqcnParams{});
  EXPECT_DOUBLE_EQ(cc.current_rate_gbps(), 100.0);
  cc.on_cnp();
  // alpha starts at 1, g=1/16: alpha' ~ 1, cut ~ rc*(1-alpha/2) ~ 50%.
  EXPECT_LT(cc.current_rate_gbps(), 60.0);
  EXPECT_GT(cc.current_rate_gbps(), 40.0);
}

TEST(Dcqcn, RepeatedCnpsConvergeTowardMinRate) {
  Simulator sim;
  DcqcnParams p;
  DcqcnRp cc(sim, Bandwidth::gbps(100), 100'000, p);
  for (int i = 0; i < 50; ++i) cc.on_cnp();
  EXPECT_LE(cc.current_rate_gbps(), 1.0);
  EXPECT_GE(cc.current_rate_gbps(), p.min_rate_gbps);
}

TEST(Dcqcn, RateRecoversViaTimers) {
  Simulator sim;
  DcqcnRp cc(sim, Bandwidth::gbps(100), 100'000, DcqcnParams{});
  cc.on_cnp();
  const double cut = cc.current_rate_gbps();
  sim.run(milliseconds(20));
  EXPECT_GT(cc.current_rate_gbps(), cut);
  // Eventually back at (or near) line rate, and the event queue drains so
  // simulations can terminate.
  sim.run(seconds(1));
  EXPECT_GT(cc.current_rate_gbps(), 99.0);
  EXPECT_TRUE(sim.idle());
}

TEST(Dcqcn, AlphaDecaysWithoutCnps) {
  Simulator sim;
  DcqcnRp cc(sim, Bandwidth::gbps(100), 100'000, DcqcnParams{});
  cc.on_cnp();
  const double a0 = cc.alpha();
  sim.run(milliseconds(2));
  EXPECT_LT(cc.alpha(), a0);
}

TEST(Dcqcn, ByteCounterTriggersIncrease) {
  Simulator sim;
  DcqcnParams p;
  p.byte_counter = 10'000;
  DcqcnRp cc(sim, Bandwidth::gbps(100), 100'000, p);
  cc.on_cnp();
  const double cut = cc.current_rate_gbps();
  for (int i = 0; i < 20; ++i) cc.on_ack(10'000);
  EXPECT_GT(cc.current_rate_gbps(), cut);
}

TEST(Dcqcn, TimeoutResetsAggressively) {
  Simulator sim;
  DcqcnRp cc(sim, Bandwidth::gbps(100), 100'000, DcqcnParams{});
  cc.on_timeout();
  EXPECT_LE(cc.current_rate_gbps(), 51.0);
  EXPECT_DOUBLE_EQ(cc.alpha(), 1.0);
  sim.run(seconds(1));  // timers must still drain
  EXPECT_TRUE(sim.idle());
}

TEST(CnpGenerator, PacesToOnePerInterval) {
  CnpGenerator g(microseconds(50));
  EXPECT_TRUE(g.should_send(0));
  EXPECT_FALSE(g.should_send(microseconds(10)));
  EXPECT_FALSE(g.should_send(microseconds(49)));
  EXPECT_TRUE(g.should_send(microseconds(50)));
  EXPECT_FALSE(g.should_send(microseconds(51)));
}

}  // namespace
}  // namespace dcp

// ---------------------------------------------------------------------------
// TIMELY (RTT-gradient CC)
// ---------------------------------------------------------------------------

namespace dcp {
namespace {

TEST(Timely, StartsAtLineRate) {
  TimelyCc cc(Bandwidth::gbps(100), 100'000, TimelyParams{});
  EXPECT_DOUBLE_EQ(cc.current_rate_gbps(), 100.0);
}

TEST(Timely, LowRttAdditiveIncreaseCapsAtLine) {
  TimelyParams p;
  TimelyCc cc(Bandwidth::gbps(100), 100'000, p);
  cc.on_timeout();  // knock the rate down first
  const double down = cc.current_rate_gbps();
  EXPECT_LT(down, 100.0);
  for (int i = 0; i < 200; ++i) cc.on_rtt_sample(microseconds(10));  // < t_low
  EXPECT_DOUBLE_EQ(cc.current_rate_gbps(), 100.0);
  EXPECT_GT(cc.current_rate_gbps(), down);
}

TEST(Timely, HighRttMultiplicativeDecrease) {
  TimelyParams p;
  TimelyCc cc(Bandwidth::gbps(100), 100'000, p);
  for (int i = 0; i < 20; ++i) cc.on_rtt_sample(microseconds(400));  // > t_high
  EXPECT_LT(cc.current_rate_gbps(), 50.0);
  EXPECT_GE(cc.current_rate_gbps(), p.min_rate_gbps);
}

TEST(Timely, RisingGradientInBandDecreases) {
  TimelyParams p;
  TimelyCc cc(Bandwidth::gbps(100), 100'000, p);
  // RTTs inside [t_low, t_high] but steadily rising: positive gradient.
  for (int i = 0; i < 30; ++i) {
    cc.on_rtt_sample(microseconds(40) + i * microseconds(3));
  }
  EXPECT_GT(cc.normalized_gradient(), 0.0);
  EXPECT_LT(cc.current_rate_gbps(), 100.0);
}

TEST(Timely, FlatInBandRttRecovers) {
  TimelyParams p;
  TimelyCc cc(Bandwidth::gbps(100), 100'000, p);
  for (int i = 0; i < 20; ++i) cc.on_rtt_sample(microseconds(400));
  const double low = cc.current_rate_gbps();
  // Stable in-band RTT: zero gradient -> additive (then hyper) increase.
  for (int i = 0; i < 100; ++i) cc.on_rtt_sample(microseconds(60));
  EXPECT_GT(cc.current_rate_gbps(), low);
}

TEST(Timely, MakeCcBuildsIt) {
  Simulator sim;
  CcConfig cfg;
  cfg.type = CcConfig::Type::kTimely;
  auto cc = make_cc(sim, cfg);
  ASSERT_NE(cc, nullptr);
  EXPECT_DOUBLE_EQ(cc->rate().as_gbps(), cfg.line_rate.as_gbps());
}

TEST(TimelyIntegration, DcpWithTimelyCompletesAndThrottles) {
  // DCP + TIMELY end to end on an incast: flows finish and trims shrink
  // versus no-CC (delay-based throttling works without ECN).
  auto run = [](bool with_cc) {
    Simulator sim;
    Logger log{LogLevel::kOff};
    Network net{sim, log};
    SchemeOptions opt;
    opt.with_cc = with_cc;
    opt.cc_type = CcConfig::Type::kTimely;
    SchemeSetup s = make_scheme(SchemeKind::kDcp, opt);
    s.sw.trim_threshold_bytes = 64 * 1024;
    Star star = build_star(net, 7, s.sw);
    apply_scheme(net, s);
    for (int i = 0; i < 6; ++i) {
      FlowSpec spec;
      spec.src = star.hosts[static_cast<std::size_t>(i)]->id();
      spec.dst = star.hosts[6]->id();
      spec.bytes = 1'000'000;
      spec.msg_bytes = 256 * 1024;
      net.start_flow(spec);
    }
    net.run_until_done(seconds(10));
    EXPECT_TRUE(net.all_flows_done());
    return net.total_switch_stats().trimmed;
  };
  const auto no_cc = run(false);
  const auto timely = run(true);
  EXPECT_GT(no_cc, 0u);
  EXPECT_LT(timely, no_cc);
}

}  // namespace
}  // namespace dcp
