// Two-sided verbs semantics (§4.4): Send / Write-with-Imm consume Receive
// WQEs in posting order; RDMA Write does not; un-posted receives wait
// (RNR) and complete as soon as a WQE appears.

#include <gtest/gtest.h>

#include <set>

#include "core/verbs.h"
#include "harness/scheme.h"
#include "topo/dumbbell.h"

namespace dcp {
namespace {

struct Fixture {
  Simulator sim;
  Logger log{LogLevel::kOff};
  Network net{sim, log};
  Star star;
  std::unique_ptr<verbs::Device> dev;

  Fixture() {
    SchemeSetup s = make_scheme(SchemeKind::kDcp);
    star = build_star(net, 3, s.sw);
    apply_scheme(net, s);
    dev = std::make_unique<verbs::Device>(net);
  }
};

TEST(VerbsTwoSided, SendConsumesRecvWqeInOrder) {
  Fixture f;
  auto& qp = f.dev->create_qp(f.star.hosts[0]->id(), f.star.hosts[1]->id());
  qp.post_recv(101);
  qp.post_recv(102);
  qp.post_recv(103);
  qp.post(10'000, 1, RdmaOp::kSend);
  qp.post(20'000, 2, RdmaOp::kSend);
  f.net.run_until_done(seconds(1));

  verbs::WorkCompletion wc;
  ASSERT_TRUE(qp.poll_recv_cq(wc));
  EXPECT_EQ(wc.wr_id, 101u);  // first posted Recv matches first Send
  EXPECT_EQ(wc.bytes, 10'000u);
  ASSERT_TRUE(qp.poll_recv_cq(wc));
  EXPECT_EQ(wc.wr_id, 102u);
  EXPECT_EQ(wc.bytes, 20'000u);
  EXPECT_FALSE(qp.poll_recv_cq(wc));
  EXPECT_EQ(qp.recv_wqes_posted(), 1u);  // 103 still available
}

TEST(VerbsTwoSided, WriteDoesNotConsumeRecvWqes) {
  Fixture f;
  auto& qp = f.dev->create_qp(f.star.hosts[0]->id(), f.star.hosts[1]->id());
  qp.post_recv(7);
  qp.post(50'000, 1, RdmaOp::kWrite);
  f.net.run_until_done(seconds(1));
  verbs::WorkCompletion wc;
  ASSERT_TRUE(qp.poll_cq(wc));  // requester CQE fires
  EXPECT_FALSE(qp.poll_recv_cq(wc));
  EXPECT_EQ(qp.recv_wqes_posted(), 1u);  // untouched
}

TEST(VerbsTwoSided, WriteWithImmConsumesRecvWqe) {
  Fixture f;
  auto& qp = f.dev->create_qp(f.star.hosts[0]->id(), f.star.hosts[1]->id());
  qp.post_recv(55);
  qp.post(30'000, 1, RdmaOp::kWriteWithImm);
  f.net.run_until_done(seconds(1));
  verbs::WorkCompletion wc;
  ASSERT_TRUE(qp.poll_recv_cq(wc));
  EXPECT_EQ(wc.wr_id, 55u);
  EXPECT_EQ(wc.op, RdmaOp::kWriteWithImm);
}

TEST(VerbsTwoSided, RnrWaitsUntilRecvPosted) {
  Fixture f;
  auto& qp = f.dev->create_qp(f.star.hosts[0]->id(), f.star.hosts[1]->id());
  qp.post(10'000, 1, RdmaOp::kSend);  // no Recv WQE posted yet
  f.net.run_until_done(seconds(1));

  verbs::WorkCompletion wc;
  EXPECT_FALSE(qp.poll_recv_cq(wc));
  EXPECT_EQ(qp.rnr_waiting(), 1u);  // message arrived, waiting for a WQE

  qp.post_recv(200);  // posting the buffer releases the completion
  ASSERT_TRUE(qp.poll_recv_cq(wc));
  EXPECT_EQ(wc.wr_id, 200u);
  EXPECT_EQ(qp.rnr_waiting(), 0u);
}

TEST(VerbsTwoSided, MixedOpsMatchOnlySends) {
  Fixture f;
  auto& qp = f.dev->create_qp(f.star.hosts[0]->id(), f.star.hosts[1]->id());
  qp.post_recv(1);
  qp.post_recv(2);
  qp.post(5'000, 10, RdmaOp::kWrite);
  qp.post(5'000, 11, RdmaOp::kSend);
  qp.post(5'000, 12, RdmaOp::kWrite);
  qp.post(5'000, 13, RdmaOp::kWriteWithImm);
  f.net.run_until_done(seconds(1));

  verbs::WorkCompletion wc;
  std::vector<std::uint64_t> recv_order;
  while (qp.poll_recv_cq(wc)) recv_order.push_back(wc.wr_id);
  EXPECT_EQ(recv_order, (std::vector<std::uint64_t>{1, 2}));
  int req_cqes = 0;
  while (qp.poll_cq(wc)) ++req_cqes;
  EXPECT_EQ(req_cqes, 4);
}

// ---------------------------------------------------------------------------
// Shared Receive Queue
// ---------------------------------------------------------------------------

TEST(VerbsSrq, MultipleQpsShareOnePool) {
  Fixture f;
  verbs::SharedReceiveQueue srq;
  auto& qp1 = f.dev->create_qp(f.star.hosts[0]->id(), f.star.hosts[2]->id());
  auto& qp2 = f.dev->create_qp(f.star.hosts[1]->id(), f.star.hosts[2]->id());
  qp1.bind_srq(&srq);
  qp2.bind_srq(&srq);
  srq.post_recv(100);
  srq.post_recv(101);
  srq.post_recv(102);

  qp1.post(10'000, 1, RdmaOp::kSend);
  qp2.post(20'000, 2, RdmaOp::kSend);
  f.net.run_until_done(seconds(1));

  // Both QPs drew their WQEs from the shared pool (one left over).
  EXPECT_EQ(srq.posted(), 1u);
  verbs::WorkCompletion wc;
  int total = 0;
  std::set<std::uint64_t> wr_ids;
  while (qp1.poll_recv_cq(wc)) {
    ++total;
    wr_ids.insert(wc.wr_id);
  }
  while (qp2.poll_recv_cq(wc)) {
    ++total;
    wr_ids.insert(wc.wr_id);
  }
  EXPECT_EQ(total, 2);
  for (std::uint64_t id : wr_ids) {
    EXPECT_GE(id, 100u);
    EXPECT_LE(id, 102u);
  }
}

TEST(VerbsSrq, RnrWaitReleasedByLaterSrqPost) {
  Fixture f;
  verbs::SharedReceiveQueue srq;
  auto& qp = f.dev->create_qp(f.star.hosts[0]->id(), f.star.hosts[1]->id());
  qp.bind_srq(&srq);
  qp.post(5'000, 1, RdmaOp::kSend);
  f.net.run_until_done(seconds(1));
  EXPECT_EQ(qp.rnr_waiting(), 1u);  // message arrived; pool empty
  srq.post_recv(55);                // posting releases it immediately
  verbs::WorkCompletion wc;
  ASSERT_TRUE(qp.poll_recv_cq(wc));
  EXPECT_EQ(wc.wr_id, 55u);
  EXPECT_EQ(qp.rnr_waiting(), 0u);
  EXPECT_EQ(srq.posted(), 0u);
}

TEST(VerbsSrq, PerQpRqUnusedWhenSrqBound) {
  Fixture f;
  verbs::SharedReceiveQueue srq;
  auto& qp = f.dev->create_qp(f.star.hosts[0]->id(), f.star.hosts[1]->id());
  qp.bind_srq(&srq);
  srq.post_recv(7);
  qp.post(1'000, 1, RdmaOp::kSend);
  f.net.run_until_done(seconds(1));
  verbs::WorkCompletion wc;
  ASSERT_TRUE(qp.poll_recv_cq(wc));
  EXPECT_EQ(wc.wr_id, 7u);  // came from the SRQ
}

}  // namespace
}  // namespace dcp
